package hef_test

import (
	"strings"
	"testing"

	"hef"
)

// The public API surface: build a template, optimize it, inspect the result
// — the quickstart flow, end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	fw, err := hef.New("silver", hef.WithTestElems(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	b := hef.NewTemplate("api", hef.U64)
	in := b.Stream("in", hef.ReadStream)
	out := b.Stream("out", hef.WriteStream)
	c := b.Const("c", 3)
	x := b.Load("x", in)
	y := b.Mul("y", x, c)
	z := b.Xor("z", y, x)
	b.Store(out, z)
	tmpl, err := b.Build(hef.KnownOp)
	if err != nil {
		t.Fatal(err)
	}

	opt, err := fw.OptimizeOperator(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Node.Valid() {
		t.Errorf("invalid optimal node %v", opt.Node)
	}
	if opt.SecondsPerElem() <= 0 {
		t.Error("optimum should have positive cost")
	}
	if !strings.Contains(opt.Source, "void api(") {
		t.Errorf("generated source malformed:\n%s", opt.Source)
	}

	res, err := fw.Measure(tmpl, hef.Node{V: 1, S: 0, P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.IPC() <= 0 {
		t.Errorf("Measure returned empty counters: %+v", res)
	}
}

func TestPublicAPITemplatesFile(t *testing.T) {
	f, err := hef.ParseTemplates(`
template t u64 (a:stream, b:wstream) {
    x = load(a);
    y = add(x, x);
    store(b, y);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.List) != 1 || f.List[0] != "t" {
		t.Errorf("List = %v", f.List)
	}
}

func TestPublicAPIConstantsAndHelpers(t *testing.T) {
	if hef.SearchSpaceSize(2, 3, 4) != 22 {
		t.Error("SearchSpaceSize re-export broken")
	}
	if !hef.KnownOp("mul") || hef.KnownOp("frobnicate") {
		t.Error("KnownOp re-export broken")
	}
	if hef.AVX2 == hef.AVX512 {
		t.Error("width constants must differ")
	}
	if hef.Version == "" {
		t.Error("Version must be set")
	}
	if _, err := hef.New("epyc"); err == nil {
		t.Error("unknown CPU must be rejected")
	}
}

// The ISA-portability path of Section III-B: the same template optimizes on
// the ARM Neoverse model at Neon width, where gather has no vector form.
func TestPublicAPIOtherISAs(t *testing.T) {
	for _, cpu := range []string{"neoverse", "zen"} {
		fw, err := hef.New(cpu, hef.WithTestElems(1<<11))
		if err != nil {
			t.Fatal(err)
		}
		b := hef.NewTemplate("port", hef.U64)
		in := b.Stream("in", hef.ReadStream)
		out := b.Stream("out", hef.WriteStream)
		c := b.Const("c", 17)
		x := b.Load("x", in)
		y := b.Mul("y", x, c)
		b.Store(out, y)
		tmpl, err := b.Build(hef.KnownOp)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := fw.OptimizeOperator(tmpl)
		if err != nil {
			t.Fatalf("%s: %v", cpu, err)
		}
		if !opt.Node.Valid() {
			t.Errorf("%s: invalid node %v", cpu, opt.Node)
		}
	}
}
