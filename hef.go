// Package hef is the public API of the Hybrid Execution Framework (HEF), a
// reproduction of "Co-Utilizing SIMD and Scalar to Accelerate the Data
// Analytics Workloads" (Sun, Li, Weng; ICDE 2023).
//
// HEF co-schedules SIMD and scalar execution units: an operator is written
// once in the hybrid intermediate description (HID) and the framework finds,
// per processor, the optimal mix of v SIMD statements and s scalar
// statements replicated into packs of size p. Packing isomorphic statements
// eliminates the data dependencies between adjacent instructions, shrinking
// execution intervals from instruction latency to instruction throughput.
//
// Because Go exposes neither SIMD intrinsics nor issue-port scheduling, the
// "hardware" of this reproduction is a cycle-approximate out-of-order core
// simulator with Skylake-SP port layouts (Xeon Silver 4110 / Gold 6240R
// models); the search, translation, and code generation are the paper's
// algorithms in full. See DESIGN.md for the substitution rationale and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	fw, _ := hef.New("silver")
//	b := hef.NewTemplate("scale", hef.U64)
//	in := b.Stream("in", hef.ReadStream)
//	out := b.Stream("out", hef.WriteStream)
//	c := b.Const("c", 3)
//	x := b.Load("x", in)
//	y := b.Mul("y", x, c)
//	b.Store(out, y)
//	tmpl, _ := b.Build(hef.KnownOp)
//	opt, _ := fw.OptimizeOperator(tmpl)
//	fmt.Println(opt.Node, opt.Source)
package hef

import (
	"context"

	"hef/internal/core"
	"hef/internal/hef"
	"hef/internal/hid"
	"hef/internal/isa"
	"hef/internal/obs"
	"hef/internal/robust"
	"hef/internal/translator"
	"hef/internal/uarch"
)

// Framework is a configured HEF instance for one target processor.
type Framework = core.Framework

// Optimized is the outcome of optimizing one operator.
type Optimized = core.Optimized

// Node is a candidate implementation: v SIMD statements, s scalar
// statements, pack size p.
type Node = translator.Node

// Template is an operator written in the hybrid intermediate description.
type Template = hid.Template

// Builder constructs templates programmatically.
type Builder = hid.Builder

// Result is a simulator measurement (cycles, instructions, IPC, cache
// counters, µops-per-cycle histogram, effective frequency).
type Result = uarch.Result

// SearchResult records a pruning search (tested nodes, candidate and end
// lists, pruning savings).
type SearchResult = hef.Result

// Stalls is the top-down attribution of a measurement's cycles: every cycle
// lands in exactly one bucket (retiring, frontend-, backend-port-, memory-,
// or dependency-bound), so the buckets sum to Result.Cycles.
type Stalls = uarch.Stalls

// OccHist is a coarse occupancy histogram (ROB and load-queue residency)
// recorded per simulated cycle.
type OccHist = uarch.OccHist

// TraceLog records per-instruction lifecycle events (dispatch, issue,
// complete, retire) when attached to a simulator; export it with
// ChromeTrace.
type TraceLog = uarch.TraceLog

// TraceEvent is one recorded lifecycle event.
type TraceEvent = uarch.TraceEvent

// TraceSection names one run's events inside a Chrome trace export.
type TraceSection = obs.TraceSection

// RunReport is the versioned machine-readable report schema emitted by the
// command-line tools behind -json.
type RunReport = obs.RunReport

// SearchReport is the machine-readable form of a pruning search.
type SearchReport = obs.SearchReport

// Option configures New.
type Option = core.Option

// OptimizeOptions tunes Framework.OptimizeOperatorContext: an optional
// node-evaluation budget for graceful degradation.
type OptimizeOptions = core.OptimizeOptions

// SearchOpts configures the low-level SearchContext degradation behaviour.
type SearchOpts = hef.SearchOpts

// ErrBudgetExhausted marks a search stopped by its node-evaluation budget;
// test with errors.Is. The accompanying result holds the best node found
// within the budget and has Partial set.
var ErrBudgetExhausted = hef.ErrBudgetExhausted

// PanicError is a translator or simulator panic recovered inside the search
// and surfaced as an error; match with errors.As.
type PanicError = hef.PanicError

// Perturb is the seeded, deterministic fault-injection model for
// sensitivity analysis: relative jitter on instruction latencies and
// occupancies, cache hit latencies, and AVX-license frequencies, plus
// transient port-unavailable cycles.
type Perturb = uarch.Perturb

// SensConfig configures a sensitivity analysis (Sensitivity driver).
type SensConfig = robust.SensConfig

// Sensitivity reports how stable an operator's optimum is across an
// ensemble of perturbed machine models: optimum stability, the cycle-cost
// regret of the unperturbed pick, and candidate rank churn.
type Sensitivity = robust.Sensitivity

// SensitivityReport is the versioned, byte-deterministic JSON document the
// hefsens tool emits (schema "hef.robust.sensitivity-report").
type SensitivityReport = robust.Report

// Element types of the hybrid intermediate description (Table II).
const (
	I16 = hid.I16
	U16 = hid.U16
	I32 = hid.I32
	U32 = hid.U32
	I64 = hid.I64
	U64 = hid.U64
	F32 = hid.F32
	F64 = hid.F64
)

// Memory patterns for template parameters.
const (
	ReadStream   = hid.ReadStream
	WriteStream  = hid.WriteStream
	RandomRegion = hid.RandomRegion
)

// SIMD widths.
const (
	Neon   = isa.W128
	AVX2   = isa.W256
	AVX512 = isa.W512
)

// New builds a framework for the named CPU model: "silver" (Xeon Silver
// 4110, one AVX-512 unit per core), "gold" (Xeon Gold 6240R, two),
// "neoverse" (ARM Neoverse N1, 128-bit Neon — where gather falls back to
// scalar statements), or "zen" (AMD Zen 2, 256-bit). The SIMD width
// defaults to the part's native width.
func New(cpuName string, opts ...Option) (*Framework, error) {
	return core.New(cpuName, opts...)
}

// WithWidth selects the SIMD width (default AVX-512).
func WithWidth(w isa.Width) Option { return core.WithWidth(w) }

// WithTestElems overrides the synthetic test size used per evaluation in
// the offline search.
func WithTestElems(n int64) Option { return core.WithTestElems(n) }

// NewTemplate starts building an operator template.
func NewTemplate(name string, elem hid.Type) *Builder { return hid.NewTemplate(name, elem) }

// ParseTemplates reads an operator-template file (the paper's operator list
// and dictionary form).
func ParseTemplates(src string) (*hid.File, error) { return core.ParseTemplates(src) }

// KnownOp reports whether a HID operation exists in the built-in ISA
// description table; pass it to Builder.Build.
func KnownOp(op string) bool {
	_, err := isa.Describe(op)
	return err == nil
}

// SearchSpaceSize evaluates the paper's Eq. 2 for the candidate-space size.
func SearchSpaceSize(v, s, p int) int { return hef.SearchSpaceSize(v, s, p) }

// Analyze runs a sensitivity analysis: a baseline pruning search plus
// cfg.Trials searches on perturbed machine models, scored against the
// baseline. Deterministic for a fixed SensConfig.
func Analyze(ctx context.Context, cfg SensConfig) (*Sensitivity, error) {
	return robust.Analyze(ctx, cfg)
}

// NewReport starts an empty run report for the named tool.
func NewReport(tool string) *RunReport { return obs.NewReport(tool) }

// RunFromResult converts one simulator measurement into a report run.
func RunFromResult(name, engine, node string, res *Result, seconds float64) obs.Run {
	return obs.RunFromResult(name, engine, node, res, seconds)
}

// ChromeTrace exports recorded lifecycle events as Chrome trace-event JSON
// (open at https://ui.perfetto.dev or chrome://tracing).
func ChromeTrace(sections []TraceSection) ([]byte, error) { return obs.ChromeTrace(sections) }

// SearchDOT renders a pruning search as a Graphviz digraph.
func SearchDOT(r *SearchResult) string { return obs.SearchDOT(r) }

// SearchJSON renders a pruning search as an indented RunReport document.
func SearchJSON(r *SearchResult) ([]byte, error) { return obs.SearchJSON(r) }

// Version identifies the library release.
const Version = core.Version
