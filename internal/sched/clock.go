package sched

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time so the runner's backoff timers and breaker cooldowns
// are testable without real sleeps. The zero Config selects RealClock.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// RealClock delegates to the time package.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced Clock for tests: time moves only through
// Advance, which fires every timer that has come due.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock. A non-positive d fires on the next Advance (or
// immediately relative to the current time).
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- c.now
		return t.ch
	}
	c.timers = append(c.timers, t)
	return t.ch
}

// Advance moves the clock forward and fires due timers in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	sort.SliceStable(c.timers, func(i, j int) bool { return c.timers[i].at.Before(c.timers[j].at) })
	var keep []*fakeTimer
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			keep = append(keep, t)
		}
	}
	c.timers = keep
}

// Waiting reports how many timers are pending, so tests can synchronize
// with a goroutine that is about to block on After.
func (c *FakeClock) Waiting() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}
