// Chaos harness: deterministic fault injection against the supervised
// runner and the checkpoint/resume sweep. Seeded worker panics, slow
// workers, and mid-run cancellations are injected into real HEF workloads
// (sensitivity analyses, SSB figure runs), and the tests assert the
// supervision contract: zero lost or duplicated jobs, every retry bounded
// by the configured maximum, and a killed-and-resumed sweep producing a
// report byte-identical to an uninterrupted run.
//
// `make chaos` runs this file (plus the drain tests) with -race; the
// CHAOS_SEED environment variable reseeds the injected faults, and
// CHAOS_ARTIFACT_DIR redirects checkpoint files somewhere CI can upload on
// failure.
package sched_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hef/internal/experiments"
	"hef/internal/isa"
	"hef/internal/leakcheck"
	"hef/internal/obs"
	"hef/internal/queries"
	"hef/internal/robust"
	"hef/internal/sched"
)

// chaosSeed seeds every injected fault; override with CHAOS_SEED.
func chaosSeed(t *testing.T) uint64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return 20230401
}

// artifactDir places checkpoints under CHAOS_ARTIFACT_DIR when set (so CI
// uploads them on failure), else in the test's temp dir.
func artifactDir(t *testing.T) string {
	if dir := os.Getenv("CHAOS_ARTIFACT_DIR"); dir != "" {
		sub := filepath.Join(dir, t.Name())
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	return t.TempDir()
}

// chaosRand is the same splitmix64 draw the backoff jitter uses, so the
// fault plan is a pure function of the seed.
func chaosRand(seed uint64, k int) uint64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(k+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestChaosSupervisedPool floods a small pool with jobs whose first
// attempts panic or stall per a seeded plan and asserts the supervision
// invariants: every job reaches exactly one terminal outcome, every job
// eventually succeeds within the retry bound, and the retry count matches
// the injected-fault plan exactly.
func TestChaosSupervisedPool(t *testing.T) {
	leakcheck.Check(t)
	const jobs = 60
	const maxRetries = 2
	seed := chaosSeed(t)

	// Fault plan: panicsFor[i] first attempts of job i panic; slow jobs
	// stall a worker for a few hundred microseconds before succeeding.
	panicsFor := make([]int, jobs)
	slow := make([]time.Duration, jobs)
	wantRetries := 0
	for i := range panicsFor {
		panicsFor[i] = int(chaosRand(seed, i) % (maxRetries + 1)) // 0..2
		wantRetries += panicsFor[i]
		slow[i] = time.Duration(chaosRand(seed, i+jobs)%300) * time.Microsecond
	}

	r := sched.New(sched.Config{
		Workers:     8,
		QueueSize:   4, // force backpressure through SubmitWait
		MaxRetries:  maxRetries,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  500 * time.Microsecond,
		JitterSeed:  seed,
	})
	defer r.Stop()

	attempts := make([]atomic.Int32, jobs)
	for i := 0; i < jobs; i++ {
		i := i
		err := r.SubmitWait(context.Background(), sched.Job{
			ID: fmt.Sprintf("chaos-%02d", i),
			Run: func(context.Context) (any, error) {
				n := int(attempts[i].Add(1))
				time.Sleep(slow[i])
				if n <= panicsFor[i] {
					panic(fmt.Sprintf("chaos panic %d/%d", n, panicsFor[i]))
				}
				return i * i, nil
			},
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	outs := r.Drain()
	if len(outs) != jobs {
		t.Fatalf("lost jobs: %d outcomes, want %d", len(outs), jobs)
	}
	seen := map[string]bool{}
	for _, o := range outs {
		if seen[o.ID] {
			t.Errorf("%s: duplicate outcome", o.ID)
		}
		seen[o.ID] = true
		if o.State != sched.StateDone {
			t.Errorf("%s: %v (err %v), want done within the retry budget", o.ID, o.State, o.Err)
		}
		if o.Attempts > 1+maxRetries {
			t.Errorf("%s: %d attempts, exceeds bound %d", o.ID, o.Attempts, 1+maxRetries)
		}
	}
	st := r.Stats()
	if st.Retries != wantRetries {
		t.Errorf("retries = %d, want %d from the seeded fault plan", st.Retries, wantRetries)
	}
	if st.Done != jobs || st.Failed != 0 || st.Shed != 0 {
		t.Errorf("stats %+v", st)
	}
}

// chaosify wraps a sweep task so its first attempt panics when the seeded
// plan selects it, counting invocations per job in calls.
func chaosify[T any](tasks []sched.Task[T], seed uint64, calls *sync.Map) []sched.Task[T] {
	out := make([]sched.Task[T], len(tasks))
	for i, task := range tasks {
		i, task := i, task
		shouldPanic := chaosRand(seed, 1000+i)%2 == 0
		out[i] = sched.Task[T]{ID: task.ID, Key: task.Key, Run: func(ctx context.Context) (T, error) {
			c, _ := calls.LoadOrStore(task.ID, new(atomic.Int32))
			if n := c.(*atomic.Int32).Add(1); n == 1 && shouldPanic {
				panic("chaos: injected evaluator panic in " + task.ID)
			}
			return task.Run(ctx)
		}}
	}
	return out
}

// hefsensTasks builds the same (cpu, op) sensitivity jobs cmd/hefsens
// sweeps, at a budget small enough for a fast test.
func hefsensTasks(t *testing.T, cpus, ops []string, seed uint64) []sched.Task[*robust.Sensitivity] {
	var tasks []sched.Task[*robust.Sensitivity]
	for _, cpuName := range cpus {
		cpu, err := isa.ByName(cpuName)
		if err != nil {
			t.Fatal(err)
		}
		for _, opName := range ops {
			tmpl, err := experiments.OpTemplate(opName)
			if err != nil {
				t.Fatal(err)
			}
			cfg := robust.SensConfig{
				CPU: cpu, Template: tmpl,
				Elems: 256, Seed: seed, Trials: 2, Jitter: 0.05, Budget: 3,
			}
			tasks = append(tasks, sched.Task[*robust.Sensitivity]{
				ID:  cpuName + "/" + opName,
				Key: cpuName,
				Run: func(ctx context.Context) (*robust.Sensitivity, error) {
					return robust.Analyze(ctx, cfg)
				},
			})
		}
	}
	return tasks
}

// hefsensReport assembles the byte-deterministic sensitivity report from a
// sweep's results in task order, as cmd/hefsens does.
func hefsensReport(t *testing.T, tasks []sched.Task[*robust.Sensitivity], results map[string]*robust.Sensitivity, seed uint64) []byte {
	rep := robust.NewReport(seed, 2, 0.05, 0)
	for _, task := range tasks {
		s, ok := results[task.ID]
		if !ok {
			t.Fatalf("missing result for %s", task.ID)
		}
		rep.Add(s)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestChaosKillResumeHefsens runs a sensitivity sweep three ways — clean,
// and killed-mid-run-then-resumed with injected first-attempt panics — and
// asserts the resumed run's final report is byte-identical to the clean
// run's, with no job executed twice after checkpointing.
func TestChaosKillResumeHefsens(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("chaos equivalence runs real searches")
	}
	seed := chaosSeed(t)
	cpus, ops := []string{"silver", "gold"}, []string{"murmur", "probe"}
	tasks := hefsensTasks(t, cpus, ops, seed)

	// Uninterrupted baseline, no supervision chaos.
	base, err := sched.RunSweep(context.Background(), sched.SweepConfig{
		Tool: "hefsens", Fingerprint: "chaos", Runner: sched.Config{Workers: 2},
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	want := hefsensReport(t, tasks, base.Results, seed)

	// Chaotic run: first attempts panic per the seeded plan, and the run
	// is cancelled after two completions (a mid-run kill).
	cp := filepath.Join(artifactDir(t), "hefsens.checkpoint.json")
	var calls sync.Map
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int32
	killed, err := sched.RunSweep(ctx, sched.SweepConfig{
		Tool: "hefsens", Fingerprint: "chaos",
		CheckpointPath: cp,
		Runner: sched.Config{
			Workers: 2, MaxRetries: 2,
			BaseBackoff: 50 * time.Microsecond, MaxBackoff: 500 * time.Microsecond,
			JitterSeed: seed,
			OnOutcome: func(o sched.Outcome) {
				if o.State == sched.StateDone && done.Add(1) == 2 {
					cancel()
				}
			},
		},
	}, chaosify(tasks, seed, &calls))
	if err == nil || !killed.Interrupted {
		t.Fatalf("killed run: err=%v interrupted=%v, want interrupted", err, killed.Interrupted)
	}
	if len(killed.Results) == 0 || len(killed.Results) == len(tasks) {
		t.Fatalf("killed run completed %d/%d jobs; the kill should land mid-run", len(killed.Results), len(tasks))
	}

	// Resume continues exactly where the kill stopped.
	resumed, err := sched.RunSweep(context.Background(), sched.SweepConfig{
		Tool: "hefsens", Fingerprint: "chaos",
		CheckpointPath: cp, ResumePath: cp,
		Runner: sched.Config{
			Workers: 2, MaxRetries: 2,
			BaseBackoff: 50 * time.Microsecond, MaxBackoff: 500 * time.Microsecond,
			JitterSeed: seed,
		},
	}, chaosify(tasks, seed, &calls))
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed.Resumed != len(killed.Results) {
		t.Errorf("resumed %d jobs from checkpoint, want %d", resumed.Resumed, len(killed.Results))
	}
	if resumed.Resumed+resumed.Executed != len(tasks) {
		t.Errorf("resumed %d + executed %d != %d tasks", resumed.Resumed, resumed.Executed, len(tasks))
	}
	// No duplicated work: a job checkpointed before the kill never ran in
	// the resume (its call count stays at what the killed run recorded,
	// and every count respects the retry bound).
	calls.Range(func(k, v any) bool {
		id, n := k.(string), v.(*atomic.Int32).Load()
		if _, wasDone := killed.Results[id]; wasDone && n > 1+2 {
			t.Errorf("%s: %d attempts across both runs, exceeds one run's retry bound — duplicated work", id, n)
		}
		return true
	})

	got := hefsensReport(t, tasks, resumed.Results, seed)
	if !bytes.Equal(want, got) {
		t.Errorf("resumed report differs from uninterrupted baseline:\nbaseline %d bytes, resumed %d bytes", len(want), len(got))
	}
}

// ssbTasks builds per-(cpu, figure) SSB jobs as cmd/ssbbench -all sweeps
// them, restricted to one query and two engines for speed.
func ssbTasks(t *testing.T) []sched.Task[*obs.RunReport] {
	q, err := queries.Get("Q2.1")
	if err != nil {
		t.Fatal(err)
	}
	var tasks []sched.Task[*obs.RunReport]
	for _, cpu := range []string{"silver", "gold"} {
		for _, sf := range []float64{10, 20} {
			cfg := experiments.FigureConfig{
				CPUName: cpu, NominalSF: sf, SampleSF: 0.01, Seed: 20230401,
				Queries: []queries.Query{q},
				Engines: []experiments.EngineKind{experiments.KindScalar, experiments.KindHybrid},
			}
			tasks = append(tasks, sched.Task[*obs.RunReport]{
				ID:  fmt.Sprintf("%s/sf%g", cpu, sf),
				Key: cpu,
				Run: func(ctx context.Context) (*obs.RunReport, error) {
					fig, err := experiments.RunFigure(cfg)
					if err != nil {
						return nil, err
					}
					return fig.Report(), nil
				},
			})
		}
	}
	return tasks
}

// ssbReport merges per-figure reports in task order, as cmd/ssbbench -all
// -json does.
func ssbReport(t *testing.T, tasks []sched.Task[*obs.RunReport], results map[string]*obs.RunReport) []byte {
	reports := make([]*obs.RunReport, 0, len(tasks))
	for _, task := range tasks {
		rep, ok := results[task.ID]
		if !ok {
			t.Fatalf("missing result for %s", task.ID)
		}
		reports = append(reports, rep)
	}
	data, err := experiments.MergeReports("ssbbench", reports...).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestChaosKillResumeSSB is the SSB-figure analogue of the hefsens
// equivalence test: kill after the first completed figure, resume, and
// require the merged -all report to match the uninterrupted run's bytes.
func TestChaosKillResumeSSB(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("chaos equivalence runs real figure simulations")
	}
	seed := chaosSeed(t)

	tasks := ssbTasks(t)
	base, err := sched.RunSweep(context.Background(), sched.SweepConfig{
		Tool: "ssbbench", Fingerprint: "chaos", Runner: sched.Config{Workers: 1},
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	want := ssbReport(t, tasks, base.Results)

	cp := filepath.Join(artifactDir(t), "ssbbench.checkpoint.json")
	var calls sync.Map
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int32
	killed, err := sched.RunSweep(ctx, sched.SweepConfig{
		Tool: "ssbbench", Fingerprint: "chaos",
		CheckpointPath: cp,
		Runner: sched.Config{
			Workers: 1, MaxRetries: 1,
			BaseBackoff: 50 * time.Microsecond,
			JitterSeed:  seed,
			OnOutcome: func(o sched.Outcome) {
				if o.State == sched.StateDone && done.Add(1) == 1 {
					cancel()
				}
			},
		},
	}, chaosify(tasks, seed, &calls))
	if err == nil || !killed.Interrupted {
		t.Fatalf("killed run: err=%v interrupted=%v", err, killed.Interrupted)
	}
	if len(killed.Results) == 0 || len(killed.Results) == len(tasks) {
		t.Fatalf("killed run completed %d/%d figures; the kill should land mid-run", len(killed.Results), len(tasks))
	}

	resumed, err := sched.RunSweep(context.Background(), sched.SweepConfig{
		Tool: "ssbbench", Fingerprint: "chaos",
		CheckpointPath: cp, ResumePath: cp,
		Runner: sched.Config{
			Workers: 1, MaxRetries: 1,
			BaseBackoff: 50 * time.Microsecond,
			JitterSeed:  seed,
		},
	}, chaosify(tasks, seed, &calls))
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed.Resumed != len(killed.Results) {
		t.Errorf("resumed %d, want %d", resumed.Resumed, len(killed.Results))
	}
	got := ssbReport(t, tasks, resumed.Results)
	if !bytes.Equal(want, got) {
		t.Errorf("resumed -all report differs from uninterrupted baseline (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosResumeRefusesMismatchedConfig guards the checkpoint identity
// contract: a checkpoint taken under one configuration must not silently
// seed a sweep with different flags.
func TestChaosResumeRefusesMismatchedConfig(t *testing.T) {
	leakcheck.Check(t)
	cp := filepath.Join(t.TempDir(), "cp.json")
	tasks := []sched.Task[int]{{ID: "a", Run: func(context.Context) (int, error) { return 1, nil }}}
	if _, err := sched.RunSweep(context.Background(), sched.SweepConfig{
		Tool: "tool", Fingerprint: "seed=1", CheckpointPath: cp,
	}, tasks); err != nil {
		t.Fatal(err)
	}
	_, err := sched.RunSweep(context.Background(), sched.SweepConfig{
		Tool: "tool", Fingerprint: "seed=2", ResumePath: cp,
	}, tasks)
	if err == nil {
		t.Fatal("sweep resumed a checkpoint with a different fingerprint")
	}
}
