package sched

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

const (
	// CheckpointSchema identifies sweep checkpoint documents.
	CheckpointSchema = "hef.sched.checkpoint"
	// CheckpointVersion follows the repo's schema policy: additive fields
	// (new optional keys) do not bump the version; renaming, removing, or
	// re-typing a field does. Load rejects other versions.
	CheckpointVersion = 1
)

// ErrCheckpointMismatch marks a checkpoint whose tool or fingerprint does
// not match the resuming sweep — resuming it would silently mix results
// from different configurations.
var ErrCheckpointMismatch = errors.New("sched: checkpoint does not match this sweep")

// Checkpoint is the crash-safe persistence format of a sweep: the results
// of every completed job, keyed by job ID, plus enough identity to refuse a
// resume under a different configuration. It contains no timestamps or
// other run-varying state, and encoding/json sorts the Done map's keys, so
// the same set of completed jobs always marshals to identical bytes.
type Checkpoint struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Tool names the producing sweep ("ssbbench", "hefsens", "hefopt").
	Tool string `json:"tool"`
	// Fingerprint encodes every flag that shapes job identity and results;
	// Match refuses a checkpoint whose fingerprint differs.
	Fingerprint string `json:"fingerprint"`
	// Done maps job ID to that job's marshalled result.
	Done map[string]json.RawMessage `json:"done"`
}

// NewCheckpoint starts an empty checkpoint for one sweep configuration.
func NewCheckpoint(tool, fingerprint string) *Checkpoint {
	return &Checkpoint{
		Schema: CheckpointSchema, Version: CheckpointVersion,
		Tool: tool, Fingerprint: fingerprint,
		Done: map[string]json.RawMessage{},
	}
}

// Put records a completed job's result.
func (c *Checkpoint) Put(id string, result any) error {
	data, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("sched: checkpoint result %q: %w", id, err)
	}
	c.Done[id] = data
	return nil
}

// Get unmarshals the stored result of a job into out, reporting whether the
// job was present.
func (c *Checkpoint) Get(id string, out any) (bool, error) {
	raw, ok := c.Done[id]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("sched: checkpoint result %q: %w", id, err)
	}
	return true, nil
}

// Match verifies the checkpoint belongs to the given sweep configuration.
func (c *Checkpoint) Match(tool, fingerprint string) error {
	if c.Tool != tool {
		return fmt.Errorf("%w: tool %q, want %q", ErrCheckpointMismatch, c.Tool, tool)
	}
	if c.Fingerprint != fingerprint {
		return fmt.Errorf("%w: fingerprint %q, want %q", ErrCheckpointMismatch, c.Fingerprint, fingerprint)
	}
	return nil
}

// Marshal renders the checkpoint as indented JSON with sorted keys and a
// trailing newline — byte-deterministic for a fixed result set.
func (c *Checkpoint) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Save writes the checkpoint atomically: a temp file in the target
// directory, fsynced, then renamed over path, so a crash mid-write leaves
// either the old checkpoint or the new one, never a torn file.
func (c *Checkpoint) Save(path string) error {
	data, err := c.Marshal()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("sched: checkpoint save: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("sched: checkpoint save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sched: checkpoint save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sched: checkpoint save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("sched: checkpoint save: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file: the schema and
// version must be ones this code understands. Configuration matching is
// separate (Match), so callers can distinguish a corrupt file from a
// mismatched one.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sched: checkpoint load: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("sched: checkpoint load %s: %w", path, err)
	}
	if c.Schema != CheckpointSchema {
		return nil, fmt.Errorf("sched: checkpoint %s: schema %q, want %q", path, c.Schema, CheckpointSchema)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("sched: checkpoint %s: version %d, want %d", path, c.Version, CheckpointVersion)
	}
	if c.Done == nil {
		c.Done = map[string]json.RawMessage{}
	}
	return &c, nil
}
