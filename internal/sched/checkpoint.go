package sched

import (
	"bytes"
	"encoding/json"
	"fmt"

	"hef/internal/store"
)

const (
	// CheckpointSchema identifies sweep checkpoint documents.
	CheckpointSchema = "hef.sched.checkpoint"
	// CheckpointVersion follows the repo's schema policy: additive fields
	// (new optional keys) do not bump the version; renaming, removing, or
	// re-typing a field does. Load rejects other versions.
	CheckpointVersion = 1
)

// ErrCheckpointMismatch marks a checkpoint whose tool or fingerprint does
// not match the resuming sweep — resuming it would silently mix results
// from different configurations. It is the store layer's fingerprint
// sentinel, so errors.Is works against either name.
var ErrCheckpointMismatch = store.ErrFingerprintMismatch

// Checkpoint is the crash-safe persistence format of a sweep: the results
// of every completed job, keyed by job ID, plus enough identity to refuse a
// resume under a different configuration. It contains no timestamps or
// other run-varying state, and encoding/json sorts the Done map's keys, so
// the same set of completed jobs always marshals to identical bytes.
type Checkpoint struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Tool names the producing sweep ("ssbbench", "hefsens", "hefopt").
	Tool string `json:"tool"`
	// Fingerprint encodes every flag that shapes job identity and results;
	// Match refuses a checkpoint whose fingerprint differs.
	Fingerprint string `json:"fingerprint"`
	// Done maps job ID to that job's marshalled result.
	Done map[string]json.RawMessage `json:"done"`
}

// NewCheckpoint starts an empty checkpoint for one sweep configuration.
func NewCheckpoint(tool, fingerprint string) *Checkpoint {
	return &Checkpoint{
		Schema: CheckpointSchema, Version: CheckpointVersion,
		Tool: tool, Fingerprint: fingerprint,
		Done: map[string]json.RawMessage{},
	}
}

// Put records a completed job's result.
func (c *Checkpoint) Put(id string, result any) error {
	data, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("sched: checkpoint result %q: %w", id, err)
	}
	c.Done[id] = data
	return nil
}

// Get unmarshals the stored result of a job into out, reporting whether the
// job was present.
func (c *Checkpoint) Get(id string, out any) (bool, error) {
	raw, ok := c.Done[id]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("sched: checkpoint result %q: %w", id, err)
	}
	return true, nil
}

// Match verifies the checkpoint belongs to the given sweep configuration.
func (c *Checkpoint) Match(tool, fingerprint string) error {
	if c.Tool != tool {
		return fmt.Errorf("%w: tool %q, want %q", ErrCheckpointMismatch, c.Tool, tool)
	}
	if c.Fingerprint != fingerprint {
		return fmt.Errorf("%w: fingerprint %q, want %q", ErrCheckpointMismatch, c.Fingerprint, fingerprint)
	}
	return nil
}

// Marshal renders the checkpoint as indented JSON with sorted keys and a
// trailing newline — byte-deterministic for a fixed result set.
func (c *Checkpoint) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Save writes the checkpoint with rotation: the bytes land atomically
// (temp file, fsync, rename) and the previous generation survives as
// path+".bak", so even a save whose rename tears on a dying disk leaves a
// loadable generation behind.
func (c *Checkpoint) Save(path string) error { return c.SaveFS(store.OS, path) }

// SaveFS is Save on an injectable filesystem (degraded-I/O tests).
func (c *Checkpoint) SaveFS(fsys store.FS, path string) error {
	data, err := c.Marshal()
	if err != nil {
		return err
	}
	if err := store.SaveRotate(fsys, path, data); err != nil {
		return fmt.Errorf("sched: checkpoint save: %w", err)
	}
	return nil
}

// ParseCheckpoint decodes and strictly validates checkpoint bytes. The
// failure modes are typed: undecodable JSON or a foreign schema is
// store.ErrCorrupt; a schema version this build does not read is
// store.ErrVersionSkew (regenerate the checkpoint, or run the matching
// build). Configuration matching stays separate (Match) so callers can
// distinguish a damaged file from a mismatched one.
func ParseCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: checkpoint: %v", store.ErrCorrupt, err)
	}
	if c.Schema != CheckpointSchema {
		return nil, fmt.Errorf("%w: checkpoint schema %q, want %q", store.ErrCorrupt, c.Schema, CheckpointSchema)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: checkpoint version %d, this build reads %d", store.ErrVersionSkew, c.Version, CheckpointVersion)
	}
	if c.Done == nil {
		c.Done = map[string]json.RawMessage{}
	}
	return &c, nil
}

// LoadCheckpoint reads and validates the newest loadable generation of a
// checkpoint: the primary file, or — when the primary is missing, torn, or
// corrupt — its ".bak" rotation.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	c, _, err := LoadCheckpointFS(store.OS, path)
	return c, err
}

// LoadCheckpointFS is LoadCheckpoint on an injectable filesystem; it also
// reports whether the backup generation served the load (the primary was
// unusable, so up to one flush interval of progress was lost).
func LoadCheckpointFS(fsys store.FS, path string) (*Checkpoint, bool, error) {
	data, fromBackup, err := store.LoadFallback(fsys, path, func(d []byte) error {
		_, perr := ParseCheckpoint(d)
		return perr
	})
	if err != nil {
		return nil, false, fmt.Errorf("sched: checkpoint load %s: %w", path, err)
	}
	c, err := ParseCheckpoint(data)
	if err != nil {
		return nil, false, fmt.Errorf("sched: checkpoint load %s: %w", path, err)
	}
	return c, fromBackup, nil
}
