package sched

import (
	"errors"
	"testing"

	"hef/internal/store"
)

// FuzzCheckpointLoad drives the checkpoint parser with arbitrary bytes.
// The contract: ParseCheckpoint never panics; every rejection is one of
// the typed sentinels (ErrCorrupt for undecodable or foreign documents,
// ErrVersionSkew for versions this build does not read); and every
// accepted document round-trips through Marshal and back.
func FuzzCheckpointLoad(f *testing.F) {
	cp := NewCheckpoint("ssbbench", "sf=10 seed=1")
	if err := cp.Put("silver/sf10", map[string]int{"v": 1}); err != nil {
		f.Fatal(err)
	}
	valid, err := cp.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"schema":"hef.sched.checkpoint","version":1}`))
	f.Add([]byte(`{"schema":"hef.sched.checkpoint","version":99,"done":{}}`))
	f.Add([]byte(`{"schema":"hef.obs.run-report","version":1,"done":{}}`))
	f.Add([]byte(`{"schema":"hef.sched.checkpoint","version":1,"done":{"j":
		{"deep":[[[[[[1]]]]]]}}}`))
	f.Add([]byte{0xef, 0xbb, 0xbf, '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := ParseCheckpoint(data)
		if err != nil {
			if !errors.Is(err, store.ErrCorrupt) && !errors.Is(err, store.ErrVersionSkew) {
				t.Fatalf("rejection is not typed: %v", err)
			}
			return
		}
		if cp.Done == nil {
			t.Fatal("accepted checkpoint has a nil Done map")
		}
		out, err := cp.Marshal()
		if err != nil {
			t.Fatalf("accepted checkpoint does not re-marshal: %v", err)
		}
		again, err := ParseCheckpoint(out)
		if err != nil {
			t.Fatalf("re-marshalled checkpoint does not re-parse: %v", err)
		}
		if len(again.Done) != len(cp.Done) || again.Tool != cp.Tool || again.Fingerprint != cp.Fingerprint {
			t.Fatalf("round trip changed the document: %+v vs %+v", cp, again)
		}
	})
}
