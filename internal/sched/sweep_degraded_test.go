package sched

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hef/internal/store"
)

// enospcFS is the real filesystem with checkpoint writes failing: every
// CreateTemp (the first step of a rotated save) reports a full disk.
type enospcFS struct{ store.FS }

func (enospcFS) CreateTemp(dir, pattern string) (store.File, error) {
	return nil, errors.New("no space left on device")
}

func degradedTasks(n int) []Task[int] {
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			ID:  fmt.Sprintf("job-%02d", i),
			Key: "k",
			Run: func(context.Context) (int, error) { return i * i, nil },
		}
	}
	return tasks
}

// A sweep whose checkpoint writes all fail must still complete with every
// result, reporting the failure once via PersistWarning — degraded
// durability, not a failed run.
func TestSweepCompletesWithoutPersistence(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "cp.json")
	res, err := RunSweep(context.Background(), SweepConfig{
		Tool: "tool", Fingerprint: "fp",
		CheckpointPath: cp,
		FS:             enospcFS{store.OS},
		Runner:         Config{Workers: 2},
	}, degradedTasks(8))
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	if len(res.Results) != 8 {
		t.Fatalf("got %d results, want 8", len(res.Results))
	}
	for i := 0; i < 8; i++ {
		if v := res.Results[fmt.Sprintf("job-%02d", i)]; v != i*i {
			t.Errorf("job %d = %d, want %d", i, v, i*i)
		}
	}
	if res.PersistWarning == "" {
		t.Error("expected a PersistWarning after checkpoint failures")
	}
	if _, err := os.Stat(cp); !os.IsNotExist(err) {
		t.Errorf("no checkpoint should exist: %v", err)
	}
}

// Resume-load failures are the opposite case: the caller asked to reuse
// prior progress, so an unusable resume file must stay fatal.
func TestSweepResumeLoadFailureIsFatal(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "cp.json")
	if err := os.WriteFile(bad, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := RunSweep(context.Background(), SweepConfig{
		Tool: "tool", Fingerprint: "fp",
		ResumePath: bad,
		Runner:     Config{Workers: 1},
	}, degradedTasks(2))
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("corrupt resume file: err=%v, want ErrCorrupt", err)
	}
}

// A torn primary with an intact .bak resumes from the rotation and says so.
func TestSweepResumesFromBackupGeneration(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "cp.json")
	tasks := degradedTasks(4)

	res1, err := RunSweep(context.Background(), SweepConfig{
		Tool: "tool", Fingerprint: "fp",
		CheckpointPath: cp,
		Runner:         Config{Workers: 1},
	}, tasks)
	if err != nil || len(res1.Results) != 4 {
		t.Fatalf("seed sweep: %v (%d results)", err, len(res1.Results))
	}
	// The final flush rotated the second-to-last generation to .bak. Tear
	// the primary; resume must use the backup and re-run only what it lacks.
	if err := os.WriteFile(cp, []byte(`{"schema":"hef.sched.checkpoint",`), 0o644); err != nil {
		t.Fatal(err)
	}
	res2, err := RunSweep(context.Background(), SweepConfig{
		Tool: "tool", Fingerprint: "fp",
		CheckpointPath: cp, ResumePath: cp,
		Runner: Config{Workers: 1},
	}, tasks)
	if err != nil {
		t.Fatalf("resume sweep: %v", err)
	}
	if !res2.RestoredFromBackup {
		t.Error("resume did not report the backup generation")
	}
	if res2.Resumed == 0 || res2.Resumed+res2.Executed != 4 {
		t.Errorf("resumed=%d executed=%d, want them to partition 4 jobs", res2.Resumed, res2.Executed)
	}
	for i := 0; i < 4; i++ {
		if v := res2.Results[fmt.Sprintf("job-%02d", i)]; v != i*i {
			t.Errorf("job %d = %d, want %d", i, v, i*i)
		}
	}
}
