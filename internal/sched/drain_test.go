package sched_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hef/internal/leakcheck"
	"hef/internal/sched"
)

// TestGracefulDrainOnSignal exercises the shutdown path the CLI tools wire
// up: a SIGTERM mid-sweep (delivered to this process, caught by
// signal.NotifyContext exactly as cmd/hefsens and cmd/ssbbench catch it)
// must stop submission, interrupt the in-flight jobs, flush the checkpoint
// with every completed result, leak no goroutines, and return cleanly with
// the interruption reported.
func TestGracefulDrainOnSignal(t *testing.T) {
	leakcheck.Check(t)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	cp := filepath.Join(t.TempDir(), "drain.checkpoint.json")
	const total = 8
	var tasks []sched.Task[string]
	for i := 0; i < total; i++ {
		i := i
		tasks = append(tasks, sched.Task[string]{
			ID: fmt.Sprintf("drain-%d", i),
			Run: func(jctx context.Context) (string, error) {
				select {
				case <-jctx.Done():
					return "", jctx.Err()
				case <-time.After(time.Duration(i) * 2 * time.Millisecond):
					return fmt.Sprintf("value-%d", i), nil
				}
			},
		})
	}

	// The first completion sends the shutdown signal to our own process —
	// the real delivery path, not a synthetic cancel.
	var done atomic.Int32
	res, err := sched.RunSweep(ctx, sched.SweepConfig{
		Tool: "drain-test", Fingerprint: "fp",
		CheckpointPath: cp,
		Runner: sched.Config{
			Workers: 2,
			OnOutcome: func(o sched.Outcome) {
				if o.State == sched.StateDone && done.Add(1) == 1 {
					if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
						t.Errorf("self-SIGTERM: %v", err)
					}
				}
			},
		},
	}, tasks)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep returned %v, want context.Canceled from the signal", err)
	}
	if !res.Interrupted {
		t.Fatal("sweep did not report the interruption")
	}
	if len(res.Results) == 0 || len(res.Results) == total {
		t.Fatalf("drain landed with %d/%d results; the signal should stop a mid-sweep run", len(res.Results), total)
	}
	// Interrupted jobs surface as failures, so nothing is silently lost.
	if got := len(res.Results) + len(res.Failed); got != total {
		t.Errorf("results %d + interrupted %d = %d, want %d — jobs lost in the drain",
			len(res.Results), len(res.Failed), got, total)
	}

	// The checkpoint was flushed and holds exactly the completed results.
	saved, err := sched.LoadCheckpoint(cp)
	if err != nil {
		t.Fatalf("checkpoint not flushed on drain: %v", err)
	}
	if err := saved.Match("drain-test", "fp"); err != nil {
		t.Fatal(err)
	}
	if len(saved.Done) != len(res.Results) {
		t.Errorf("checkpoint has %d jobs, sweep completed %d", len(saved.Done), len(res.Results))
	}
	for id, want := range res.Results {
		var got string
		if ok, err := saved.Get(id, &got); err != nil || !ok || got != want {
			t.Errorf("checkpoint %s: got %q ok=%v err=%v, want %q", id, got, ok, err, want)
		}
	}

	// A resumed sweep (fresh context — the old one stays cancelled) picks
	// up the remainder and completes.
	res2, err := sched.RunSweep(context.Background(), sched.SweepConfig{
		Tool: "drain-test", Fingerprint: "fp",
		CheckpointPath: cp, ResumePath: cp,
		Runner: sched.Config{Workers: 2},
	}, tasks)
	if err != nil {
		t.Fatalf("resume after drain: %v", err)
	}
	if len(res2.Results) != total {
		t.Fatalf("resume completed %d/%d", len(res2.Results), total)
	}

	// No goroutine leaks: the worker pools, retry timers, and watchers of
	// both sweeps must all have exited — asserted exactly by the leakcheck
	// snapshot diff registered at the top of the test.
	stop()
}

// TestDrainWithoutCheckpointStillClean covers the drain path when no
// checkpoint is configured: the sweep must still interrupt cleanly and
// account for every job.
func TestDrainWithoutCheckpointStillClean(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var tasks []sched.Task[int]
	for i := 0; i < 6; i++ {
		i := i
		tasks = append(tasks, sched.Task[int]{
			ID: fmt.Sprintf("nc-%d", i),
			Run: func(jctx context.Context) (int, error) {
				select {
				case <-jctx.Done():
					return 0, jctx.Err()
				case <-time.After(time.Duration(i) * time.Millisecond):
					return i, nil
				}
			},
		})
	}
	var done atomic.Int32
	res, err := sched.RunSweep(ctx, sched.SweepConfig{
		Tool: "nc", Fingerprint: "fp",
		Runner: sched.Config{
			Workers: 2,
			OnOutcome: func(o sched.Outcome) {
				if o.State == sched.StateDone && done.Add(1) == 1 {
					cancel()
				}
			},
		},
	}, tasks)
	if !errors.Is(err, context.Canceled) || !res.Interrupted {
		t.Fatalf("err=%v interrupted=%v", err, res.Interrupted)
	}
	if got := len(res.Results) + len(res.Failed); got != len(tasks) {
		t.Errorf("accounted %d/%d jobs", got, len(tasks))
	}
}
