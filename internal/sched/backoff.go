package sched

import (
	"hash/fnv"
	"time"
)

// backoffState carries the previous delay of one job's retry chain, the
// input the decorrelated-jitter rule feeds forward.
type backoffState struct {
	prev time.Duration
}

// next draws the delay before the given attempt's retry using decorrelated
// jitter (Brooker, "Exponential Backoff And Jitter"): uniform in
// [base, 3*prev], capped at max. The draw is deterministic — it hashes
// (seed, jobID, attempt) — so retry schedules reproduce exactly under a
// fixed JitterSeed, which the chaos harness relies on.
func (b *backoffState) next(base, max time.Duration, seed uint64, jobID string, attempt int) time.Duration {
	if b.prev < base {
		b.prev = base
	}
	hi := 3 * b.prev
	if hi > max {
		hi = max
	}
	d := base
	if hi > base {
		span := uint64(hi - base)
		d = base + time.Duration(splitmix64(seed^hashID(jobID)+uint64(attempt))%(span+1))
	}
	b.prev = d
	return d
}

// hashID folds a job ID into the jitter seed.
func hashID(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// splitmix64 scrambles x into an unrelated draw (same finalizer the
// sensitivity driver uses for trial seeds).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
