package sched

import "fmt"

// Range is a half-open span [Start, End) over a sweep's task list, the unit
// the distributed coordinator leases out. Tasks are addressed by position
// in the deterministic task order, so a range plus the sweep fingerprint
// names exactly the same work on every machine.
type Range struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len is the number of tasks the range covers.
func (r Range) Len() int { return r.End - r.Start }

// Valid reports whether the range is well-formed and inside a task list of
// n entries.
func (r Range) Valid(n int) bool {
	return r.Start >= 0 && r.Start < r.End && r.End <= n
}

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// ShardRanges cuts n tasks into contiguous ranges of at most size tasks,
// in task order. size <= 0 selects 1. The split depends only on (n, size),
// so every participant in a distributed sweep derives the same shards.
func ShardRanges(n, size int) []Range {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = 1
	}
	out := make([]Range, 0, (n+size-1)/size)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, Range{Start: start, End: end})
	}
	return out
}

// TaskIDs extracts the ID of every task, refusing duplicates or blanks:
// IDs key checkpoints and distributed result merges, so a collision would
// silently drop work.
func TaskIDs[T any](tasks []Task[T]) ([]string, error) {
	ids := make([]string, len(tasks))
	seen := make(map[string]int, len(tasks))
	for i, t := range tasks {
		if t.ID == "" {
			return nil, fmt.Errorf("sched: task %d has an empty ID", i)
		}
		if prev, dup := seen[t.ID]; dup {
			return nil, fmt.Errorf("sched: task ID %q duplicated at positions %d and %d", t.ID, prev, i)
		}
		seen[t.ID] = i
		ids[i] = t.ID
	}
	return ids, nil
}

// SliceRange returns the sub-list of tasks a range covers.
func SliceRange[T any](tasks []Task[T], r Range) ([]Task[T], error) {
	if !r.Valid(len(tasks)) {
		return nil, fmt.Errorf("sched: range %s outside task list of %d", r, len(tasks))
	}
	return tasks[r.Start:r.End], nil
}
