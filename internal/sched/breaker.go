package sched

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-key circuit breaker. The zero value disables
// it.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// open (<= 0 disables the breaker entirely).
	Threshold int
	// Cooldown is how long the breaker stays open before half-opening to
	// admit a single probe attempt (<= 0 selects 1s).
	Cooldown time.Duration
}

// breaker is a three-state circuit breaker: closed (normal), open (all
// attempts denied), half-open (one probe admitted after the cooldown). A
// probe success closes the circuit; a probe failure re-opens it for
// another cooldown.
type breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func newBreaker(cfg BreakerConfig) *breaker {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	return &breaker{cfg: cfg}
}

// Allow reports whether an attempt may proceed at the given time,
// transitioning open → half-open once the cooldown has elapsed.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful attempt: a half-open probe (or any success)
// closes the circuit and resets the failure count.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// isOpen reports whether the breaker is currently denying all attempts.
// Half-open counts as not open: a probe is admitted.
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen
}

// Failure records a failed attempt: it re-opens a half-open circuit
// immediately and trips a closed one once the consecutive-failure count
// reaches the threshold.
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
	case breakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.state = breakerOpen
			b.openedAt = now
		}
	}
}
