package sched

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// fastConfig keeps retry delays far below test timeouts.
func fastConfig() Config {
	return Config{
		Workers:     4,
		QueueSize:   8,
		MaxRetries:  2,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		JitterSeed:  1,
	}
}

func TestRunnerRunsJobs(t *testing.T) {
	r := New(fastConfig())
	defer r.Stop()
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("job-%d", i)
		if err := r.SubmitWait(context.Background(), Job{ID: id, Run: func(context.Context) (any, error) {
			return id + "-value", nil
		}}); err != nil {
			t.Fatalf("SubmitWait(%s): %v", id, err)
		}
	}
	outs := r.Drain()
	if len(outs) != 10 {
		t.Fatalf("got %d outcomes, want 10", len(outs))
	}
	for _, o := range outs {
		if o.State != StateDone {
			t.Errorf("%s: state %v err %v, want done", o.ID, o.State, o.Err)
		}
		if o.Value != o.ID+"-value" {
			t.Errorf("%s: value %v", o.ID, o.Value)
		}
		if o.Attempts != 1 {
			t.Errorf("%s: %d attempts, want 1", o.ID, o.Attempts)
		}
	}
	st := r.Stats()
	if st.Done != 10 || st.Failed != 0 || st.Submitted != 10 {
		t.Errorf("stats %+v", st)
	}
}

func TestRetryBoundedAndSucceeds(t *testing.T) {
	r := New(fastConfig()) // MaxRetries=2 → up to 3 attempts
	defer r.Stop()
	var calls atomic.Int32
	if err := r.SubmitWait(context.Background(), Job{ID: "flaky", Run: func(context.Context) (any, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	}}); err != nil {
		t.Fatal(err)
	}
	outs := r.Drain()
	if outs[0].State != StateDone || outs[0].Attempts != 3 {
		t.Fatalf("outcome %+v, want done after 3 attempts", outs[0])
	}
	if got := r.Stats().Retries; got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	r := New(fastConfig())
	defer r.Stop()
	sentinel := errors.New("permanent")
	var calls atomic.Int32
	if err := r.SubmitWait(context.Background(), Job{ID: "doomed", Run: func(context.Context) (any, error) {
		calls.Add(1)
		return nil, sentinel
	}}); err != nil {
		t.Fatal(err)
	}
	outs := r.Drain()
	o := outs[0]
	if o.State != StateFailed || !errors.Is(o.Err, sentinel) {
		t.Fatalf("outcome %+v, want failed with sentinel", o)
	}
	if o.Attempts != 3 || calls.Load() != 3 {
		t.Errorf("attempts=%d calls=%d, want 3 (1 + MaxRetries)", o.Attempts, calls.Load())
	}
}

func TestPanicIsolation(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxRetries = 0
	r := New(cfg)
	defer r.Stop()
	if err := r.SubmitWait(context.Background(), Job{ID: "boom", Run: func(context.Context) (any, error) {
		panic("kaboom")
	}}); err != nil {
		t.Fatal(err)
	}
	// The pool survives the panic and keeps executing jobs.
	if err := r.SubmitWait(context.Background(), Job{ID: "after", Run: func(context.Context) (any, error) {
		return 42, nil
	}}); err != nil {
		t.Fatal(err)
	}
	outs := r.Drain()
	byID := map[string]Outcome{}
	for _, o := range outs {
		byID[o.ID] = o
	}
	boom := byID["boom"]
	var pe *PanicError
	if boom.State != StateFailed || !errors.As(boom.Err, &pe) || !boom.Panicked {
		t.Fatalf("boom outcome %+v, want failed *PanicError", boom)
	}
	if pe.JobID != "boom" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError %+v", pe)
	}
	if byID["after"].State != StateDone {
		t.Errorf("pool did not survive the panic: %+v", byID["after"])
	}
}

func TestPanicErrorUnwraps(t *testing.T) {
	cause := errors.New("root cause")
	pe := &PanicError{JobID: "x", Value: cause}
	if !errors.Is(pe, cause) {
		t.Error("PanicError should unwrap an error panic value")
	}
}

func TestQueueFullSheds(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 1
	cfg.QueueSize = 1
	r := New(cfg)
	defer r.Stop()

	block := make(chan struct{})
	// Occupy the single worker, then fill the single queue slot.
	if err := r.Submit(Job{ID: "running", Run: func(context.Context) (any, error) {
		<-block
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	// The worker may not have picked the job up yet; wait until it has.
	deadline := time.Now().Add(2 * time.Second)
	for r.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started the blocking job")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := r.Submit(Job{ID: "queued", Run: func(context.Context) (any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	err := r.Submit(Job{ID: "shed", Run: func(context.Context) (any, error) { return nil, nil }})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue: %v, want ErrQueueFull", err)
	}
	if got := r.Stats().Shed; got != 1 {
		t.Errorf("shed count = %d, want 1", got)
	}
	close(block)
	outs := r.Drain()
	if len(outs) != 2 {
		t.Errorf("%d outcomes, want 2 (shed job records none)", len(outs))
	}
}

func TestPerJobDeadline(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxRetries = 1
	cfg.JobTimeout = 2 * time.Millisecond
	r := New(cfg)
	defer r.Stop()
	if err := r.SubmitWait(context.Background(), Job{ID: "slow", Run: func(ctx context.Context) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return "too late", nil
		}
	}}); err != nil {
		t.Fatal(err)
	}
	outs := r.Drain()
	o := outs[0]
	if o.State != StateFailed || !errors.Is(o.Err, context.DeadlineExceeded) {
		t.Fatalf("outcome %+v, want failed with DeadlineExceeded", o)
	}
	if o.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (deadline failures retry)", o.Attempts)
	}
}

func TestStopInterruptsInFlightAndQueued(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 1
	cfg.QueueSize = 4
	r := New(cfg)

	started := make(chan struct{})
	if err := r.Submit(Job{ID: "inflight", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.Submit(Job{ID: fmt.Sprintf("queued-%d", i), Run: func(context.Context) (any, error) {
			return nil, nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	r.Stop()
	outs := r.Drain()
	if len(outs) != 4 {
		t.Fatalf("%d outcomes, want 4 — no accepted job may be lost on Stop", len(outs))
	}
	for _, o := range outs {
		if o.State != StateFailed || !errors.Is(o.Err, ErrInterrupted) {
			t.Errorf("%s: %v / %v, want interrupted failure", o.ID, o.State, o.Err)
		}
	}
	if err := r.Submit(Job{ID: "late", Run: func(context.Context) (any, error) { return nil, nil }}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Stop: %v, want ErrClosed", err)
	}
	if err := r.SubmitWait(context.Background(), Job{ID: "late2"}); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitWait after Stop: %v, want ErrClosed", err)
	}
}

func TestSubmitWaitBackpressure(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 1
	cfg.QueueSize = 1
	r := New(cfg)
	defer r.Stop()
	// 20 jobs through a queue of 1: SubmitWait must block, not shed.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if err := r.SubmitWait(context.Background(), Job{ID: fmt.Sprintf("bp-%d", i), Run: func(context.Context) (any, error) {
				return nil, nil
			}}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	outs := r.Drain()
	if len(outs) != 20 {
		t.Fatalf("%d outcomes, want 20", len(outs))
	}
	if shed := r.Stats().Shed; shed != 0 {
		t.Errorf("SubmitWait shed %d jobs", shed)
	}
}

func TestSubmitWaitHonoursCallerContext(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 1
	cfg.QueueSize = 1
	r := New(cfg)
	defer r.Stop()
	block := make(chan struct{})
	defer close(block)
	r.Submit(Job{ID: "a", Run: func(context.Context) (any, error) { <-block; return nil, nil }})
	deadline := time.Now().Add(2 * time.Second)
	for r.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(100 * time.Microsecond)
	}
	r.Submit(Job{ID: "b", Run: func(context.Context) (any, error) { return nil, nil }})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- r.SubmitWait(ctx, Job{ID: "c", Run: func(context.Context) (any, error) { return nil, nil }})
	}()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitWait under cancelled ctx: %v", err)
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	cfg := Config{
		Workers:     1,
		QueueSize:   8,
		MaxRetries:  0,
		BaseBackoff: time.Microsecond,
		Breaker:     BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		Clock:       clk,
	}
	r := New(cfg)
	defer r.Stop()

	failing := func(context.Context) (any, error) { return nil, errors.New("model broken") }
	run := func(id string, fn func(context.Context) (any, error)) Outcome {
		if err := r.SubmitWait(context.Background(), Job{ID: id, Key: "silver", Run: fn}); err != nil {
			t.Fatal(err)
		}
		outs := r.Drain()
		return outs[len(outs)-1]
	}

	// Two consecutive failures trip the breaker...
	run("f1", failing)
	run("f2", failing)
	// ...so the next attempt is denied without running.
	var ran atomic.Bool
	o := run("denied", func(context.Context) (any, error) { ran.Store(true); return nil, nil })
	if o.State != StateFailed || !errors.Is(o.Err, ErrCircuitOpen) {
		t.Fatalf("outcome under open breaker: %+v", o)
	}
	if ran.Load() {
		t.Error("job ran under an open breaker")
	}
	// Another key is unaffected.
	if err := r.SubmitWait(context.Background(), Job{ID: "other", Key: "gold", Run: func(context.Context) (any, error) {
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	outs := r.Drain()
	if o := outs[len(outs)-1]; o.State != StateDone {
		t.Fatalf("other-key outcome %+v", o)
	}
	// After the cooldown the breaker half-opens: the probe runs, and its
	// success closes the circuit again.
	clk.Advance(2 * time.Minute)
	o = run("probe", func(context.Context) (any, error) { return "recovered", nil })
	if o.State != StateDone {
		t.Fatalf("half-open probe: %+v", o)
	}
	o = run("closed", func(context.Context) (any, error) { return nil, nil })
	if o.State != StateDone {
		t.Fatalf("after recovery: %+v", o)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	t0 := time.Unix(0, 0)
	b.Failure(t0) // trips at threshold 1
	if b.Allow(t0.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker allowed before cooldown")
	}
	if !b.Allow(t0.Add(2 * time.Second)) {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if b.Allow(t0.Add(2 * time.Second)) {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	b.Failure(t0.Add(2 * time.Second)) // probe failed → open again
	if b.Allow(t0.Add(2500 * time.Millisecond)) {
		t.Fatal("breaker allowed during the second cooldown")
	}
	if !b.Allow(t0.Add(4 * time.Second)) {
		t.Fatal("breaker did not half-open again")
	}
	b.Success()
	if !b.Allow(t0.Add(4 * time.Second)) {
		t.Fatal("closed breaker denied")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	base, max := 10*time.Millisecond, 200*time.Millisecond
	var a, b backoffState
	var prevA []time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		da := a.next(base, max, 42, "job", attempt)
		db := b.next(base, max, 42, "job", attempt)
		if da != db {
			t.Fatalf("attempt %d: %v != %v — backoff must be deterministic", attempt, da, db)
		}
		if da < base || da > max {
			t.Fatalf("attempt %d: %v outside [%v, %v]", attempt, da, base, max)
		}
		prevA = append(prevA, da)
	}
	// A different job ID draws a different schedule (jitter decorrelates).
	var c backoffState
	same := true
	for attempt := 1; attempt <= 6; attempt++ {
		if c.next(base, max, 42, "other-job", attempt) != prevA[attempt-1] {
			same = false
		}
	}
	if same {
		t.Error("two jobs drew identical backoff schedules; jitter is not decorrelating")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		StateQueued: "queued", StateRunning: "running", StateRetrying: "retrying",
		StateDone: "done", StateFailed: "failed", StateShed: "shed",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}
