// Package sched is the supervision layer of the reproduction: a worker-pool
// job runner that executes HEF optimization, simulation, and sensitivity
// jobs with per-job deadlines, panic isolation, bounded retries with
// exponential backoff and decorrelated jitter, a per-key circuit breaker,
// and admission control that sheds load when the bounded queue saturates.
// On top of the runner, RunSweep adds crash-safe checkpoint/resume for long
// sweeps: results persist periodically as a versioned, byte-deterministic
// checkpoint, a cancelled context drains gracefully and flushes the
// checkpoint, and a resumed sweep skips completed jobs so the final report
// is byte-identical to an uninterrupted run.
//
// Job lifecycle (see DESIGN.md §7):
//
//	queued → running → done
//	               ↘ retrying → queued (bounded by MaxRetries)
//	               ↘ failed
//	submit ↛ queued: shed (ErrQueueFull) when the queue is full
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hef/internal/telemetry"
)

// defaultMetrics is the process-wide instrument set runners adopt when
// their Config leaves Metrics nil. The tools install it once at startup so
// every pool in the process — the sweep runner, the wave-search evaluator
// pools, the per-figure premeasure pools — composes onto the same gauges.
var defaultMetrics atomic.Pointer[telemetry.SchedMetrics]

// SetDefaultMetrics installs the instrument set future runners inherit.
// Pass nil to restore the uninstrumented default. Runners created before
// the call are unaffected.
func SetDefaultMetrics(m *telemetry.SchedMetrics) {
	defaultMetrics.Store(m)
}

// Typed sentinel errors of the runner; match with errors.Is.
var (
	// ErrQueueFull is returned by Submit when admission control sheds the
	// job because the bounded queue is saturated.
	ErrQueueFull = errors.New("sched: queue full, job shed")
	// ErrClosed is returned by Submit/SubmitWait after Stop.
	ErrClosed = errors.New("sched: runner closed")
	// ErrInterrupted marks a job outcome cut short by runner shutdown (a
	// drain or Stop) rather than by the job itself failing.
	ErrInterrupted = errors.New("sched: job interrupted by shutdown")
	// ErrCircuitOpen marks an attempt denied by an open circuit breaker;
	// the attempt is retried like any other failure, so the job survives
	// if the breaker half-opens within its retry budget.
	ErrCircuitOpen = errors.New("sched: circuit breaker open")
)

// PanicError is a panic recovered from inside a job's Run function: the job
// fails (and may retry), the worker and the process survive. It unwraps to
// the panic value when that value was itself an error.
type PanicError struct {
	// JobID is the job whose Run panicked.
	JobID string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job %q panicked: %v", e.JobID, e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// State is a job's position in the lifecycle state machine. Outcomes carry
// only terminal states (StateDone, StateFailed); the transient states are
// observable through Stats.
type State int

const (
	StateQueued State = iota
	StateRunning
	StateRetrying
	StateDone
	StateFailed
	// StateShed is the admission-control rejection: the job never entered
	// the queue. Submit reports it synchronously as ErrQueueFull; no
	// Outcome is recorded.
	StateShed
)

// String renders the state for logs and reports.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateRetrying:
		return "retrying"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateShed:
		return "shed"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Job is one unit of supervised work.
type Job struct {
	// ID identifies the job in outcomes and checkpoints; it must be unique
	// within a runner's lifetime and deterministic across runs for
	// checkpoint/resume to recognise completed work.
	ID string
	// Key groups jobs under one circuit breaker (e.g. the CPU model a
	// simulation runs on). Empty disables the breaker for this job.
	Key string
	// Run does the work. It must honour ctx (the runner cancels it on
	// shutdown and on the per-job deadline) and may panic: panics are
	// recovered into *PanicError failures.
	Run func(ctx context.Context) (any, error)
}

// Outcome is the terminal record of one accepted job.
type Outcome struct {
	// ID is the job's identifier and Key its breaker key.
	ID  string
	Key string
	// State is StateDone or StateFailed.
	State State
	// Value is Run's result when State is StateDone.
	Value any
	// Err is the last attempt's error when State is StateFailed. A job cut
	// short by shutdown wraps ErrInterrupted.
	Err error
	// Attempts counts Run invocations (and breaker denials), 1-based.
	Attempts int
	// Panicked is true when any attempt ended in a recovered panic.
	Panicked bool
}

// Stats is a snapshot of the runner's counters and gauges.
type Stats struct {
	// Submitted counts accepted jobs; Shed counts admission rejections.
	Submitted int
	Shed      int
	// Queued, Running, and Retrying are point-in-time gauges.
	Queued   int
	Running  int
	Retrying int
	// Done and Failed count terminal outcomes; Retries counts backoff
	// re-queues across all jobs.
	Done    int
	Failed  int
	Retries int
}

// Config tunes a Runner. The zero value is usable: 1 worker, a queue of 16,
// no retries, no breaker, no per-job deadline.
type Config struct {
	// Workers is the pool size (<= 0 selects 1).
	Workers int
	// QueueSize bounds the admission queue (<= 0 selects 16). Submit sheds
	// (ErrQueueFull) when the queue is full; SubmitWait blocks instead.
	QueueSize int
	// MaxRetries caps re-executions after the first attempt (0 = fail on
	// the first error).
	MaxRetries int
	// BaseBackoff and MaxBackoff bound the exponential backoff with
	// decorrelated jitter between retries (defaults 10ms and 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed makes the backoff jitter deterministic; the draw for a
	// retry hashes (JitterSeed, job ID, attempt).
	JitterSeed uint64
	// JobTimeout is the per-attempt deadline (0 = none). A timed-out
	// attempt fails with context.DeadlineExceeded and retries normally.
	JobTimeout time.Duration
	// Breaker configures the per-Key circuit breaker (zero disables).
	Breaker BreakerConfig
	// Clock abstracts time for tests (nil selects the real clock).
	Clock Clock
	// OnOutcome, when non-nil, observes every terminal outcome. Calls are
	// serialized; the callback may call Submit but must not call Drain or
	// Stop.
	OnOutcome func(Outcome)
	// Metrics receives lifecycle events for live observability. Nil adopts
	// the process default (SetDefaultMetrics); telemetry.SchedMetrics is
	// nil-receiver-safe, so with neither set every bump is one branch.
	// Metrics never influence scheduling, results, or checkpoints.
	Metrics *telemetry.SchedMetrics
	// Tracer, when non-nil, records a queue-wait span and a run span per
	// job attempt. Unlike Metrics it is never defaulted process-wide: span
	// volume is per-job, so only the top-level sweep runner sets it.
	Tracer *telemetry.Tracer
}

type task struct {
	job        Job
	attempt    int
	backoff    backoffState
	paniced    bool
	enqueuedAt time.Time // when the task last entered the queue, for the wait span
}

// Runner is a supervised worker pool. Create with New, feed with
// Submit/SubmitWait, wait with Drain, and release with Stop.
type Runner struct {
	cfg   Config
	clock Clock

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *task

	mu         sync.Mutex
	cond       *sync.Cond
	stats      Stats
	pending    int // accepted jobs not yet terminal
	submitting int // SubmitWait calls blocked on the queue
	outcomes   []Outcome
	breakers   map[string]*breaker
	stopped    bool

	cbMu    sync.Mutex // serializes OnOutcome callbacks
	wg      sync.WaitGroup
	retryWG sync.WaitGroup
}

// New starts a runner with cfg's worker pool.
func New(cfg Config) *Runner {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 16
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	clk := cfg.Clock
	if clk == nil {
		clk = RealClock{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = defaultMetrics.Load()
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{
		cfg:      cfg,
		clock:    clk,
		ctx:      ctx,
		cancel:   cancel,
		queue:    make(chan *task, cfg.QueueSize),
		breakers: map[string]*breaker{},
	}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go r.worker()
	}
	return r
}

// Submit offers a job with admission control: when the queue is full the
// job is shed and ErrQueueFull returned — nothing is recorded beyond the
// Shed counter. After Stop it returns ErrClosed.
func (r *Runner) Submit(j Job) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return ErrClosed
	}
	t := &task{job: j, attempt: 1, enqueuedAt: r.clock.Now()}
	select {
	case r.queue <- t:
		r.stats.Submitted++
		r.stats.Queued++
		r.pending++
		r.cfg.Metrics.OnSubmit()
		return nil
	default:
		r.stats.Shed++
		r.cfg.Metrics.OnShed()
		return fmt.Errorf("sched: job %q: %w", j.ID, ErrQueueFull)
	}
}

// SubmitWait is Submit with backpressure instead of shedding: it blocks
// until a queue slot frees, ctx is done, or the runner stops. Sweeps use it
// so their own jobs are never shed.
func (r *Runner) SubmitWait(ctx context.Context, j Job) error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return ErrClosed
	}
	r.pending++
	r.submitting++
	r.mu.Unlock()

	t := &task{job: j, attempt: 1, enqueuedAt: r.clock.Now()}
	var err error
	select {
	case r.queue <- t:
	case <-ctx.Done():
		err = ctx.Err()
	case <-r.ctx.Done():
		err = ErrClosed
	}

	r.mu.Lock()
	r.submitting--
	if err == nil {
		r.stats.Submitted++
		r.stats.Queued++
		r.cfg.Metrics.OnSubmit()
	} else {
		r.pending--
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	return err
}

// Drain blocks until every accepted job has a terminal outcome and returns
// the outcomes in completion order. It does not stop the workers; call Stop
// (possibly concurrently, to interrupt in-flight jobs) to release them.
func (r *Runner) Drain() []Outcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.pending > 0 {
		r.cond.Wait()
	}
	out := make([]Outcome, len(r.outcomes))
	copy(out, r.outcomes)
	return out
}

// Stop cancels in-flight jobs, waits for the workers and retry timers to
// exit, and records an ErrInterrupted failure for every job still queued,
// so no accepted job is ever lost. Safe to call more than once.
func (r *Runner) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.stopped = true
	r.mu.Unlock()

	r.cancel()
	r.wg.Wait()      // workers finish their in-flight attempt
	r.retryWG.Wait() // retry timers resolve against the cancelled context

	// Blocked SubmitWait calls resolve against the cancelled context too;
	// wait them out so the queue stops growing, then flush what is left.
	r.mu.Lock()
	for r.submitting > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
	for {
		select {
		case t := <-r.queue:
			r.finish(t, Outcome{
				ID: t.job.ID, Key: t.job.Key, State: StateFailed,
				Err: fmt.Errorf("sched: job %q never started: %w", t.job.ID, ErrInterrupted), Attempts: t.attempt - 1, Panicked: t.paniced,
			}, true)
		default:
			return
		}
	}
}

// Outcomes returns a snapshot of the terminal outcomes so far, in
// completion order.
func (r *Runner) Outcomes() []Outcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Outcome, len(r.outcomes))
	copy(out, r.outcomes)
	return out
}

// Stats returns a snapshot of the counters and gauges.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func (r *Runner) worker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.ctx.Done():
			return
		case t := <-r.queue:
			r.execute(t)
		}
	}
}

// execute runs one attempt of a task and routes the result: success,
// retry-with-backoff, or terminal failure.
func (r *Runner) execute(t *task) {
	if r.ctx.Err() != nil {
		// The runner is shutting down: don't start new attempts; resolve
		// the job as interrupted so it is re-run on resume, not lost.
		r.finish(t, Outcome{
			ID: t.job.ID, Key: t.job.Key, State: StateFailed,
			Err: fmt.Errorf("sched: job %q not started: %w", t.job.ID, ErrInterrupted), Attempts: t.attempt - 1, Panicked: t.paniced,
		}, true)
		return
	}
	r.mu.Lock()
	r.stats.Queued--
	r.stats.Running++
	br := r.breakerLocked(t.job.Key)
	r.mu.Unlock()
	r.cfg.Metrics.OnStart()
	started := r.clock.Now()
	if r.cfg.Tracer != nil {
		r.cfg.Tracer.Record("queue", t.job.ID, t.enqueuedAt, started.Sub(t.enqueuedAt))
	}

	var val any
	var err error
	if br != nil && !br.Allow(started) {
		err = fmt.Errorf("sched: job %q key %q: %w", t.job.ID, t.job.Key, ErrCircuitOpen)
		r.cfg.Metrics.OnBreakerDenial()
	} else {
		val, err = r.runAttempt(t)
		if br != nil {
			if err == nil {
				br.Success()
			} else if r.ctx.Err() == nil {
				// Shutdown cancellations say nothing about the key's
				// health, so they don't count against the breaker.
				br.Failure(r.clock.Now())
			}
		}
	}
	if br != nil {
		r.publishBreakers()
	}

	ended := r.clock.Now()
	r.mu.Lock()
	r.stats.Running--
	r.mu.Unlock()
	r.cfg.Metrics.OnAttemptEnd(ended.Sub(started).Seconds())
	if r.cfg.Tracer != nil {
		r.cfg.Tracer.Record("run", t.job.ID, started, ended.Sub(started))
	}

	switch {
	case err == nil:
		r.finish(t, Outcome{ID: t.job.ID, Key: t.job.Key, State: StateDone,
			Value: val, Attempts: t.attempt, Panicked: t.paniced}, false)
	case r.ctx.Err() != nil:
		r.finish(t, Outcome{ID: t.job.ID, Key: t.job.Key, State: StateFailed,
			Err: fmt.Errorf("%w: %w", ErrInterrupted, err), Attempts: t.attempt, Panicked: t.paniced}, false)
	case t.attempt <= r.cfg.MaxRetries:
		r.retry(t, err)
	default:
		r.finish(t, Outcome{ID: t.job.ID, Key: t.job.Key, State: StateFailed,
			Err: err, Attempts: t.attempt, Panicked: t.paniced}, false)
	}
}

// runAttempt invokes the job under the per-attempt deadline with panic
// recovery.
func (r *Runner) runAttempt(t *task) (val any, err error) {
	ctx := r.ctx
	if r.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.JobTimeout)
		defer cancel()
	}
	defer func() {
		if rec := recover(); rec != nil {
			t.paniced = true
			err = &PanicError{JobID: t.job.ID, Value: rec, Stack: debug.Stack()}
		}
	}()
	return t.job.Run(ctx)
}

// retry schedules the task's next attempt after a backoff delay. The
// re-queue bypasses admission control (retries are never shed); a shutdown
// during the wait resolves the job as interrupted.
func (r *Runner) retry(t *task, cause error) {
	delay := t.backoff.next(r.cfg.BaseBackoff, r.cfg.MaxBackoff, r.cfg.JitterSeed, t.job.ID, t.attempt)
	t.attempt++
	r.mu.Lock()
	r.stats.Retries++
	r.stats.Retrying++
	r.mu.Unlock()
	r.cfg.Metrics.OnRetry()
	r.retryWG.Add(1)
	go func() {
		defer r.retryWG.Done()
		interrupted := func() {
			r.mu.Lock()
			r.stats.Retrying--
			r.mu.Unlock()
			r.cfg.Metrics.OnRetryResolved(false)
			r.finish(t, Outcome{ID: t.job.ID, Key: t.job.Key, State: StateFailed,
				Err:      fmt.Errorf("%w: retry abandoned after: %w", ErrInterrupted, cause),
				Attempts: t.attempt - 1, Panicked: t.paniced}, false)
		}
		select {
		case <-r.clock.After(delay):
		case <-r.ctx.Done():
			interrupted()
			return
		}
		t.enqueuedAt = r.clock.Now()
		select {
		case r.queue <- t:
			r.mu.Lock()
			r.stats.Retrying--
			r.stats.Queued++
			r.mu.Unlock()
			r.cfg.Metrics.OnRetryResolved(true)
		case <-r.ctx.Done():
			interrupted()
		}
	}()
}

// finish records a terminal outcome. queuedGauge compensates the Queued
// gauge for tasks flushed straight out of the queue by Stop. The OnOutcome
// callback completes before the job counts as terminal, so Drain returning
// guarantees every callback has run.
func (r *Runner) finish(t *task, o Outcome, queuedGauge bool) {
	r.mu.Lock()
	if queuedGauge {
		r.stats.Queued--
		if m := r.cfg.Metrics; m != nil {
			m.QueueDepth.Add(-1)
		}
	}
	switch o.State {
	case StateDone:
		r.stats.Done++
	default:
		r.stats.Failed++
	}
	r.outcomes = append(r.outcomes, o)
	cb := r.cfg.OnOutcome
	r.mu.Unlock()
	r.cfg.Metrics.OnOutcome(o.State == StateDone)
	if cb != nil {
		r.cbMu.Lock()
		cb(o)
		r.cbMu.Unlock()
	}
	r.mu.Lock()
	r.pending--
	r.cond.Broadcast()
	r.mu.Unlock()
}

// publishBreakers recounts open breakers and publishes the gauge. Called
// after every breaker-routed attempt; keys are CPU-model names, so the walk
// is a handful of entries.
func (r *Runner) publishBreakers() {
	if r.cfg.Metrics == nil {
		return
	}
	r.mu.Lock()
	open := 0
	for _, b := range r.breakers {
		if b.isOpen() {
			open++
		}
	}
	r.mu.Unlock()
	r.cfg.Metrics.SetBreakersOpen(open)
}

// breakerLocked returns the circuit breaker for key, creating it on first
// use. Callers hold r.mu.
func (r *Runner) breakerLocked(key string) *breaker {
	if key == "" || r.cfg.Breaker.Threshold <= 0 {
		return nil
	}
	b, ok := r.breakers[key]
	if !ok {
		b = newBreaker(r.cfg.Breaker)
		r.breakers[key] = b
	}
	return b
}
