package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// A half-open breaker admits exactly one probe even when many goroutines
// race through Allow at the same instant. Run under -race this also proves
// the transition open → half-open → probing is free of data races.
func TestBreakerConcurrentHalfOpenAdmitsExactlyOne(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	t0 := time.Unix(0, 0)
	b.Failure(t0) // trips at threshold 1
	probeTime := t0.Add(2 * time.Second)

	const racers = 64
	var (
		start    = make(chan struct{})
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted int
	)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow(probeTime) {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	close(start)
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("half-open breaker admitted %d of %d concurrent probes, want exactly 1", admitted, racers)
	}
	// The losing racers must not have corrupted the probe slot: the probe's
	// verdict still drives the state machine.
	b.Success()
	if !b.Allow(probeTime.Add(time.Millisecond)) {
		t.Fatal("breaker did not close after the winning probe succeeded")
	}
}

// A probe that panics is a failed probe: the recovered panic must count
// against the breaker exactly like an error return, re-opening the circuit
// so the next attempt is denied with ErrCircuitOpen rather than running
// against a key whose probe just blew up.
func TestBreakerReopensAfterProbePanic(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	r := New(Config{
		Workers:     1,
		QueueSize:   8,
		MaxRetries:  0,
		BaseBackoff: time.Microsecond,
		Breaker:     BreakerConfig{Threshold: 1, Cooldown: time.Minute},
		Clock:       clk,
	})
	defer r.Stop()

	run := func(id string, fn func(context.Context) (any, error)) Outcome {
		t.Helper()
		if err := r.SubmitWait(context.Background(), Job{ID: id, Key: "silver", Run: fn}); err != nil {
			t.Fatal(err)
		}
		outs := r.Drain()
		return outs[len(outs)-1]
	}

	// Trip the breaker, wait out the cooldown, then panic inside the probe.
	run("trip", func(context.Context) (any, error) { return nil, errors.New("model broken") })
	clk.Advance(2 * time.Minute)
	o := run("probe", func(context.Context) (any, error) { panic("probe exploded") })
	if o.State != StateFailed || !o.Panicked {
		t.Fatalf("panicking probe outcome: %+v", o)
	}
	var pe *PanicError
	if !errors.As(o.Err, &pe) {
		t.Fatalf("probe error is not a PanicError: %v", o.Err)
	}

	// The panic re-opened the circuit: within the fresh cooldown nothing
	// runs under this key.
	o = run("denied", func(context.Context) (any, error) {
		t.Error("job ran under a breaker re-opened by a panicking probe")
		return nil, nil
	})
	if o.State != StateFailed || !errors.Is(o.Err, ErrCircuitOpen) {
		t.Fatalf("outcome after probe panic: %+v", o)
	}

	// And the re-open started a full cooldown from the panic, not a stale
	// timestamp: a later probe is admitted and can close the circuit.
	clk.Advance(2 * time.Minute)
	o = run("recover", func(context.Context) (any, error) { return "ok", nil })
	if o.State != StateDone {
		t.Fatalf("recovery probe after panic cooldown: %+v", o)
	}
}
