package sched

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hef/internal/telemetry"
)

// TestRunnerMetrics checks the runner's lifecycle events reach the
// instrument set and every gauge settles back to zero once the pool is
// idle, whatever mix of successes, retries, and failures ran.
func TestRunnerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	r := New(Config{
		Workers: 2, MaxRetries: 1,
		Metrics: telemetry.NewSchedMetrics(reg),
		Tracer:  tr,
	})
	flaky := 0
	jobs := []Job{
		{ID: "ok", Run: func(context.Context) (any, error) { return 1, nil }},
		{ID: "flaky", Run: func(context.Context) (any, error) {
			if flaky++; flaky == 1 {
				return nil, errors.New("transient")
			}
			return 2, nil
		}},
		{ID: "doomed", Run: func(context.Context) (any, error) { return nil, errors.New("always") }},
	}
	for _, j := range jobs {
		if err := r.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	r.Drain()
	r.Stop()

	vals := reg.Values()
	want := map[string]float64{
		telemetry.MetricSubmitted:    3,
		telemetry.MetricJobsDone:     2,
		telemetry.MetricJobsFailed:   1,
		telemetry.MetricRetries:      2, // one for flaky, one for doomed
		telemetry.MetricQueueDepth:   0,
		telemetry.MetricInflight:     0,
		telemetry.MetricRetryingJobs: 0,
		// 5 attempts total: ok, flaky ×2, doomed ×2.
		telemetry.MetricJobSeconds + "_count": 5,
	}
	for name, w := range want {
		if got := vals[name]; got != w {
			t.Errorf("%s = %g, want %g (all: %v)", name, got, w, vals)
		}
	}

	// Every attempt leaves one queue-wait span and one run span.
	queueSpans, runSpans := 0, 0
	for _, s := range tr.Spans() {
		switch s.Track {
		case "queue":
			queueSpans++
		case "run":
			runSpans++
		}
	}
	if queueSpans != 5 || runSpans != 5 {
		t.Errorf("spans queue=%d run=%d, want 5 each", queueSpans, runSpans)
	}
}

// TestDefaultMetricsAdopted: a runner whose config leaves Metrics nil picks
// up the process default, so inner pools (wave search, premeasure) land on
// the same gauges the tools install at startup.
func TestDefaultMetricsAdopted(t *testing.T) {
	reg := telemetry.NewRegistry()
	SetDefaultMetrics(telemetry.NewSchedMetrics(reg))
	defer SetDefaultMetrics(nil)

	r := New(Config{Workers: 1})
	if err := r.Submit(Job{ID: "j", Run: func(context.Context) (any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	r.Drain()
	r.Stop()
	if got, _ := reg.Value(telemetry.MetricJobsDone); got != 1 {
		t.Fatalf("default-metrics runner recorded done=%g, want 1", got)
	}
}

// TestSweepTelemetryByteInvariance is the determinism contract in test
// form: the same sweep run instrumented (metrics + tracer + heartbeat-ready
// registry) and uninstrumented, at different worker counts, must produce
// byte-identical checkpoints — telemetry is emit-time-only state.
func TestSweepTelemetryByteInvariance(t *testing.T) {
	mkTasks := func() []Task[int] {
		var tasks []Task[int]
		for i := 0; i < 12; i++ {
			i := i
			tasks = append(tasks, Task[int]{
				ID:  fmt.Sprintf("job-%02d", i),
				Run: func(context.Context) (int, error) { return i * i, nil },
			})
		}
		return tasks
	}
	dir := t.TempDir()

	plain := filepath.Join(dir, "plain.json")
	if _, err := RunSweep(context.Background(), SweepConfig{
		Tool: "tool", Fingerprint: "fp", CheckpointPath: plain,
		Runner: Config{Workers: 1},
	}, mkTasks()); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	instr := filepath.Join(dir, "instr.json")
	res, err := RunSweep(context.Background(), SweepConfig{
		Tool: "tool", Fingerprint: "fp", CheckpointPath: instr,
		Runner:  Config{Workers: 8, Metrics: telemetry.NewSchedMetrics(reg)},
		Metrics: telemetry.NewSweepMetrics(reg),
		Tracer:  tr,
	}, mkTasks())
	if err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(instr)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("instrumented checkpoint differs from plain one:\n%s\nvs\n%s", a, b)
	}

	vals := reg.Values()
	if vals[telemetry.MetricSweepTasks] != 12 || vals[telemetry.MetricSweepDone] != 12 {
		t.Errorf("sweep progress series = %v", vals)
	}
	if vals[telemetry.MetricSweepFlushes] < 1 {
		t.Error("no checkpoint flush recorded")
	}
	if tr.Len() == 0 {
		t.Error("no spans recorded")
	}
	if res.Executed != 12 {
		t.Errorf("executed = %d, want 12", res.Executed)
	}

	// A resumed sweep reports resumed tasks as already done at plan time.
	reg2 := telemetry.NewRegistry()
	if _, err := RunSweep(context.Background(), SweepConfig{
		Tool: "tool", Fingerprint: "fp", ResumePath: instr,
		Metrics: telemetry.NewSweepMetrics(reg2),
	}, mkTasks()); err != nil {
		t.Fatal(err)
	}
	vals = reg2.Values()
	if vals[telemetry.MetricSweepResumed] != 12 || vals[telemetry.MetricSweepDone] != 12 {
		t.Errorf("resumed sweep series = %v", vals)
	}
}
