package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hef/internal/store"
	"hef/internal/telemetry"
)

// ErrJobsFailed marks a sweep that completed its drain but left jobs in
// StateFailed after exhausting their retries.
var ErrJobsFailed = errors.New("sched: sweep jobs failed")

// Task is one typed unit of a sweep. ID must be unique within the sweep
// and deterministic across runs (it keys the checkpoint); Key selects the
// circuit breaker; Run must be deterministic for checkpoint/resume to
// reproduce an uninterrupted run byte-for-byte.
type Task[T any] struct {
	ID  string
	Key string
	Run func(ctx context.Context) (T, error)
}

// SweepConfig parameterises RunSweep.
type SweepConfig struct {
	// Tool and Fingerprint identify the sweep configuration; a resumed
	// checkpoint must carry the same pair.
	Tool        string
	Fingerprint string
	// CheckpointPath enables periodic and final checkpointing ("" disables).
	CheckpointPath string
	// ResumePath loads a prior checkpoint and skips its completed jobs
	// ("" starts fresh).
	ResumePath string
	// CheckpointEvery flushes the checkpoint after every N completions
	// (<= 0 selects 1, i.e. after every job).
	CheckpointEvery int
	// FS is the filesystem checkpoints are written to; nil selects the real
	// one (store.OS). Tests inject failing filesystems here.
	FS store.FS
	// Runner tunes the worker pool; its OnOutcome is invoked after the
	// sweep's own bookkeeping.
	Runner Config
	// Metrics receives sweep progress events (task totals, completions,
	// checkpoint flushes). Nil-safe; never read back into sweep decisions,
	// so checkpoints and results are identical with or without it.
	Metrics *telemetry.SweepMetrics
	// Tracer records sweep-lifecycle spans (submit, checkpoint flushes, the
	// sweep itself) and is handed to the runner for per-job queue/run spans
	// when the Runner config has none of its own.
	Tracer *telemetry.Tracer
}

// SweepResult is the outcome of RunSweep.
type SweepResult[T any] struct {
	// Results holds every completed job's value, resumed or executed.
	Results map[string]T
	// Resumed counts jobs satisfied from the resume checkpoint; Executed
	// counts jobs that ran (to completion) in this process.
	Resumed  int
	Executed int
	// Failed lists terminal failures (retries exhausted), and, after an
	// interrupted drain, jobs cut short by the shutdown.
	Failed []Outcome
	// Interrupted is true when ctx was cancelled before the sweep
	// completed; the checkpoint (if configured) was still flushed.
	Interrupted bool
	// RestoredFromBackup is true when the resume checkpoint's primary file
	// was unusable and the ".bak" rotation served the load (up to one flush
	// interval of prior progress was lost and will be re-executed).
	RestoredFromBackup bool
	// PersistWarning is non-empty when checkpoint persistence failed
	// mid-sweep (disk full, read-only volume). The sweep completed anyway —
	// results are returned in memory — but further flushes were disabled;
	// this string carries the first failure for the tool's single warning.
	PersistWarning string
	// Stats snapshots the runner's counters at the end of the sweep.
	Stats Stats
}

// RunSweep executes tasks on a supervised runner with crash-safe
// checkpoint/resume and graceful drain:
//
//   - With cfg.ResumePath, completed jobs are loaded from the checkpoint
//     and not re-submitted — no job runs twice.
//   - With cfg.CheckpointPath, the set of completed results is persisted
//     after every CheckpointEvery completions and once more before
//     returning, whatever the reason for returning.
//   - When ctx is cancelled mid-sweep (deadline, SIGINT/SIGTERM via
//     signal.NotifyContext), submission stops, in-flight jobs are
//     cancelled, queued jobs resolve as interrupted failures, the
//     checkpoint is flushed, and the result reports Interrupted — so a
//     later -resume run continues exactly where this one stopped.
//
// Tasks must be deterministic: a resumed sweep's Results map is then
// value-identical to an uninterrupted run's, and a report assembled from
// it in task order is byte-identical. RunSweep returns the result plus
// ctx.Err() when interrupted, an ErrJobsFailed wrap when jobs failed
// terminally, or nil when every task completed.
func RunSweep[T any](ctx context.Context, cfg SweepConfig, tasks []Task[T]) (*SweepResult[T], error) {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.FS == nil {
		cfg.FS = store.OS
	}
	defer cfg.Tracer.Begin("sweep", cfg.Tool)()
	res := &SweepResult[T]{Results: make(map[string]T, len(tasks))}

	// skip records the jobs satisfied from the resume checkpoint; the
	// submit loop consults it (not Results, which workers mutate).
	skip := make(map[string]bool, len(tasks))
	cp := NewCheckpoint(cfg.Tool, cfg.Fingerprint)
	if cfg.ResumePath != "" {
		// A missing or unloadable resume file is fatal, not degraded:
		// silently starting fresh would throw away the progress the caller
		// explicitly asked to reuse.
		prior, fromBackup, err := LoadCheckpointFS(cfg.FS, cfg.ResumePath)
		if err != nil {
			return nil, err
		}
		res.RestoredFromBackup = fromBackup
		if err := prior.Match(cfg.Tool, cfg.Fingerprint); err != nil {
			return nil, err
		}
		for _, t := range tasks {
			var v T
			ok, err := prior.Get(t.ID, &v)
			if err != nil {
				return nil, err
			}
			if ok {
				res.Results[t.ID] = v
				if err := cp.Put(t.ID, v); err != nil {
					return nil, err
				}
				skip[t.ID] = true
				res.Resumed++
			}
		}
	}

	// The sweep's bookkeeping hooks every outcome; results are recorded
	// and checkpointed as they complete so an abrupt kill -9 loses at most
	// CheckpointEvery-1 finished jobs.
	var (
		mu         sync.Mutex
		sinceFlush int
	)
	// A flush failure (disk full, volume gone read-only) must not fail the
	// sweep: the results are all still in memory and perfectly good. The
	// first failure disables further checkpointing and is surfaced once via
	// PersistWarning; only durability degrades.
	flush := func() {
		if cfg.CheckpointPath == "" || res.PersistWarning != "" {
			return
		}
		start := time.Now()
		if err := cp.SaveFS(cfg.FS, cfg.CheckpointPath); err != nil {
			res.PersistWarning = fmt.Sprintf("checkpointing disabled: %v", err)
		}
		dur := time.Since(start)
		cfg.Metrics.OnFlush(dur.Seconds())
		cfg.Tracer.Record("checkpoint", "flush", start, dur)
		sinceFlush = 0
	}
	userHook := cfg.Runner.OnOutcome
	rcfg := cfg.Runner
	rcfg.OnOutcome = func(o Outcome) {
		if o.State == StateDone {
			cfg.Metrics.OnTaskDone()
			mu.Lock()
			res.Results[o.ID] = o.Value.(T)
			res.Executed++
			if err := cp.Put(o.ID, o.Value); err != nil && res.PersistWarning == "" {
				res.PersistWarning = fmt.Sprintf("checkpointing disabled: %v", err)
			}
			sinceFlush++
			if sinceFlush >= cfg.CheckpointEvery {
				flush()
			}
			mu.Unlock()
		}
		if userHook != nil {
			userHook(o)
		}
	}

	cfg.Metrics.OnPlan(len(tasks), res.Resumed)
	if rcfg.Tracer == nil {
		rcfg.Tracer = cfg.Tracer
	}
	r := New(rcfg)
	// A cancelled context stops the runner: in-flight attempts see their
	// job context close, queued and retrying work resolves as interrupted.
	stopOnce := sync.OnceFunc(r.Stop)
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			cfg.Metrics.OnInterrupt()
			stopOnce()
		case <-watchDone:
		}
	}()

	endSubmit := cfg.Tracer.Begin("sweep", "submit")
	for _, t := range tasks {
		if skip[t.ID] {
			continue
		}
		t := t
		err := r.SubmitWait(ctx, Job{ID: t.ID, Key: t.Key, Run: func(jctx context.Context) (any, error) {
			return t.Run(jctx)
		}})
		if err != nil {
			break // cancelled or runner stopped; drain below
		}
	}
	endSubmit()

	outcomes := r.Drain()
	close(watchDone)
	stopOnce()

	res.Interrupted = ctx.Err() != nil
	res.Stats = r.Stats()
	for _, o := range outcomes {
		if o.State != StateDone {
			res.Failed = append(res.Failed, o)
		}
	}
	sort.Slice(res.Failed, func(i, j int) bool { return res.Failed[i].ID < res.Failed[j].ID })

	mu.Lock()
	flush()
	mu.Unlock()
	if res.Interrupted {
		return res, ctx.Err()
	}
	if len(res.Failed) > 0 {
		ids := make([]string, len(res.Failed))
		for i, o := range res.Failed {
			ids[i] = o.ID
		}
		return res, fmt.Errorf("%w: %s", ErrJobsFailed, strings.Join(ids, ", "))
	}
	return res, nil
}
