package sched

import "testing"

func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, size int
		want    []Range
	}{
		{0, 4, nil},
		{1, 4, []Range{{0, 1}}},
		{4, 4, []Range{{0, 4}}},
		{5, 4, []Range{{0, 4}, {4, 5}}},
		{9, 3, []Range{{0, 3}, {3, 6}, {6, 9}}},
		{3, 0, []Range{{0, 1}, {1, 2}, {2, 3}}}, // size <= 0 selects 1
	}
	for _, c := range cases {
		got := ShardRanges(c.n, c.size)
		if len(got) != len(c.want) {
			t.Fatalf("ShardRanges(%d,%d) = %v, want %v", c.n, c.size, got, c.want)
		}
		covered := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ShardRanges(%d,%d)[%d] = %v, want %v", c.n, c.size, i, got[i], c.want[i])
			}
			if !got[i].Valid(c.n) {
				t.Fatalf("range %v invalid for n=%d", got[i], c.n)
			}
			covered += got[i].Len()
		}
		if covered != c.n {
			t.Fatalf("ShardRanges(%d,%d) covers %d tasks", c.n, c.size, covered)
		}
	}
}

func TestTaskIDsRejectsDuplicatesAndBlanks(t *testing.T) {
	mk := func(ids ...string) []Task[int] {
		out := make([]Task[int], len(ids))
		for i, id := range ids {
			out[i] = Task[int]{ID: id}
		}
		return out
	}
	ids, err := TaskIDs(mk("a", "b", "c"))
	if err != nil || len(ids) != 3 || ids[1] != "b" {
		t.Fatalf("TaskIDs = %v, %v", ids, err)
	}
	if _, err := TaskIDs(mk("a", "", "c")); err == nil {
		t.Fatal("blank ID accepted")
	}
	if _, err := TaskIDs(mk("a", "b", "a")); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestSliceRangeBounds(t *testing.T) {
	tasks := []Task[int]{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	sub, err := SliceRange(tasks, Range{1, 3})
	if err != nil || len(sub) != 2 || sub[0].ID != "b" {
		t.Fatalf("SliceRange = %v, %v", sub, err)
	}
	for _, r := range []Range{{-1, 2}, {2, 2}, {2, 1}, {0, 4}} {
		if _, err := SliceRange(tasks, r); err == nil {
			t.Fatalf("range %v accepted", r)
		}
	}
}
