package sched

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"testing"

	"hef/internal/store"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cp := NewCheckpoint("hefsens", "seed=1 trials=2")
	type result struct {
		Name  string  `json:"name"`
		Score float64 `json:"score"`
	}
	if err := cp.Put("silver/murmur", result{"n(v=1,s=3,p=3)", 1.25}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Put("gold/murmur", result{"n(v=2,s=1,p=2)", 0.75}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Match("hefsens", "seed=1 trials=2"); err != nil {
		t.Fatal(err)
	}
	var r result
	ok, err := got.Get("silver/murmur", &r)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if r.Name != "n(v=1,s=3,p=3)" || r.Score != 1.25 {
		t.Errorf("round-tripped result %+v", r)
	}
	if ok, _ := got.Get("missing", &r); ok {
		t.Error("Get reported a missing job as present")
	}
}

func TestCheckpointByteDeterministic(t *testing.T) {
	build := func(order []string) []byte {
		cp := NewCheckpoint("tool", "fp")
		for _, id := range order {
			if err := cp.Put(id, map[string]int{"v": len(id)}); err != nil {
				t.Fatal(err)
			}
		}
		data, err := cp.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := build([]string{"a", "b", "c"})
	b := build([]string{"c", "a", "b"})
	if !bytes.Equal(a, b) {
		t.Fatalf("insertion order leaked into checkpoint bytes:\n%s\nvs\n%s", a, b)
	}
}

func TestCheckpointMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cp := NewCheckpoint("ssbbench", "sf=10")
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Match("ssbbench", "sf=20"); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("fingerprint mismatch: %v, want ErrCheckpointMismatch", err)
	}
	if err := got.Match("hefsens", "sf=10"); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("tool mismatch: %v, want ErrCheckpointMismatch", err)
	}
}

func TestCheckpointRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"schema.json":  `{"schema":"hef.obs.run-report","version":1,"done":{}}`,
		"version.json": `{"schema":"hef.sched.checkpoint","version":99,"done":{}}`,
		"corrupt.json": `{"schema":`,
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil {
			t.Errorf("%s: LoadCheckpoint accepted a bad document", name)
		}
	}
	if _, err := LoadCheckpoint(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("LoadCheckpoint accepted a missing file")
	}
}

func TestCheckpointSaveAtomic(t *testing.T) {
	// Save over an existing file must leave exactly the primary and the
	// rotated previous generation — no temp debris.
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	cp := NewCheckpoint("tool", "fp")
	for i := 0; i < 3; i++ {
		if err := cp.Put("job", i); err != nil {
			t.Fatal(err)
		}
		if err := cp.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if want := []string{"cp.json", "cp.json.bak"}; !slices.Equal(names, want) {
		t.Errorf("directory holds %v after repeated saves, want %v", names, want)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var v int
	if ok, _ := got.Get("job", &v); !ok || v != 2 {
		t.Errorf("final checkpoint holds %d (present=%v), want 2", v, ok)
	}
	// The rotation is the previous generation.
	bak, err := LoadCheckpoint(path + ".bak")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := bak.Get("job", &v); !ok || v != 1 {
		t.Errorf("backup generation holds %d (present=%v), want 1", v, ok)
	}
}

func TestCheckpointTornPrimaryFallsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	cp := NewCheckpoint("tool", "fp")
	if err := cp.Put("job", 1); err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := cp.Put("job2", 2); err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}

	// Tear the primary mid-file: load must fall back to the .bak rotation
	// and report it did.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, fromBackup, err := LoadCheckpointFS(store.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if !fromBackup {
		t.Error("load did not report the backup generation")
	}
	var v int
	if ok, _ := got.Get("job", &v); !ok || v != 1 {
		t.Errorf("fallback generation holds job=%d (present=%v), want 1", v, ok)
	}
	if ok, _ := got.Get("job2", &v); ok {
		t.Error("fallback generation should predate job2")
	}

	// Both generations torn: the typed corruption error surfaces.
	if err := os.WriteFile(path+".bak", []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpointFS(store.OS, path); !errors.Is(err, store.ErrCorrupt) {
		t.Errorf("both-torn load: %v, want ErrCorrupt", err)
	}
}

func TestCheckpointTypedErrors(t *testing.T) {
	if _, err := ParseCheckpoint([]byte(`{"schema":`)); !errors.Is(err, store.ErrCorrupt) {
		t.Errorf("truncated JSON: %v, want ErrCorrupt", err)
	}
	if _, err := ParseCheckpoint([]byte(`{"schema":"hef.obs.run-report","version":1}`)); !errors.Is(err, store.ErrCorrupt) {
		t.Errorf("foreign schema: %v, want ErrCorrupt", err)
	}
	if _, err := ParseCheckpoint([]byte(`{"schema":"hef.sched.checkpoint","version":99}`)); !errors.Is(err, store.ErrVersionSkew) {
		t.Errorf("future version: %v, want ErrVersionSkew", err)
	}
	if _, err := ParseCheckpoint([]byte(`{"schema":"hef.sched.checkpoint","version":1,"done":{}}`)); err != nil {
		t.Errorf("valid checkpoint rejected: %v", err)
	}
}
