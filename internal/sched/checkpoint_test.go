package sched

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cp := NewCheckpoint("hefsens", "seed=1 trials=2")
	type result struct {
		Name  string  `json:"name"`
		Score float64 `json:"score"`
	}
	if err := cp.Put("silver/murmur", result{"n(v=1,s=3,p=3)", 1.25}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Put("gold/murmur", result{"n(v=2,s=1,p=2)", 0.75}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Match("hefsens", "seed=1 trials=2"); err != nil {
		t.Fatal(err)
	}
	var r result
	ok, err := got.Get("silver/murmur", &r)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if r.Name != "n(v=1,s=3,p=3)" || r.Score != 1.25 {
		t.Errorf("round-tripped result %+v", r)
	}
	if ok, _ := got.Get("missing", &r); ok {
		t.Error("Get reported a missing job as present")
	}
}

func TestCheckpointByteDeterministic(t *testing.T) {
	build := func(order []string) []byte {
		cp := NewCheckpoint("tool", "fp")
		for _, id := range order {
			if err := cp.Put(id, map[string]int{"v": len(id)}); err != nil {
				t.Fatal(err)
			}
		}
		data, err := cp.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := build([]string{"a", "b", "c"})
	b := build([]string{"c", "a", "b"})
	if !bytes.Equal(a, b) {
		t.Fatalf("insertion order leaked into checkpoint bytes:\n%s\nvs\n%s", a, b)
	}
}

func TestCheckpointMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cp := NewCheckpoint("ssbbench", "sf=10")
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Match("ssbbench", "sf=20"); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("fingerprint mismatch: %v, want ErrCheckpointMismatch", err)
	}
	if err := got.Match("hefsens", "sf=10"); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("tool mismatch: %v, want ErrCheckpointMismatch", err)
	}
}

func TestCheckpointRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"schema.json":  `{"schema":"hef.obs.run-report","version":1,"done":{}}`,
		"version.json": `{"schema":"hef.sched.checkpoint","version":99,"done":{}}`,
		"corrupt.json": `{"schema":`,
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil {
			t.Errorf("%s: LoadCheckpoint accepted a bad document", name)
		}
	}
	if _, err := LoadCheckpoint(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("LoadCheckpoint accepted a missing file")
	}
}

func TestCheckpointSaveAtomic(t *testing.T) {
	// Save over an existing file must not leave temp debris behind.
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	cp := NewCheckpoint("tool", "fp")
	for i := 0; i < 3; i++ {
		if err := cp.Put("job", i); err != nil {
			t.Fatal(err)
		}
		if err := cp.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cp.json" {
		t.Errorf("directory has %d entries after repeated saves: %v", len(entries), entries)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var v int
	if ok, _ := got.Get("job", &v); !ok || v != 2 {
		t.Errorf("final checkpoint holds %d (present=%v), want 2", v, ok)
	}
}
