// Package vec is a small software vector library over 8 lanes of 64-bit
// integers — the functional counterpart of the AVX-512 instruction forms in
// the ISA description table. The runnable engines (scalar / SIMD / hybrid)
// use it so that all three produce bit-identical results; the timing of the
// corresponding hardware forms comes from the microarchitecture simulator.
package vec

// Lanes is the vector width in 64-bit elements (AVX-512).
const Lanes = 8

// U64x8 is one 512-bit vector of eight uint64 lanes.
type U64x8 [Lanes]uint64

// Mask is an 8-bit lane mask, one bit per lane (AVX-512 k-register).
type Mask uint8

// MaskAll has every lane set.
const MaskAll Mask = 0xff

// Load reads 8 consecutive elements from s.
func Load(s []uint64) U64x8 {
	var v U64x8
	copy(v[:], s[:Lanes])
	return v
}

// Store writes the 8 lanes to dst.
func (v U64x8) Store(dst []uint64) {
	copy(dst[:Lanes], v[:])
}

// Broadcast fills all lanes with x (hi_broadcast / set1).
func Broadcast(x uint64) U64x8 {
	var v U64x8
	for i := range v {
		v[i] = x
	}
	return v
}

// Iota returns {base, base+1, ..., base+7}.
func Iota(base uint64) U64x8 {
	var v U64x8
	for i := range v {
		v[i] = base + uint64(i)
	}
	return v
}

// Add returns lane-wise a+b.
func Add(a, b U64x8) U64x8 {
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// Sub returns lane-wise a-b.
func Sub(a, b U64x8) U64x8 {
	for i := range a {
		a[i] -= b[i]
	}
	return a
}

// Mul returns lane-wise a*b (low 64 bits, vpmullq).
func Mul(a, b U64x8) U64x8 {
	for i := range a {
		a[i] *= b[i]
	}
	return a
}

// And, Or, Xor return lane-wise bitwise operations.
func And(a, b U64x8) U64x8 {
	for i := range a {
		a[i] &= b[i]
	}
	return a
}

func Or(a, b U64x8) U64x8 {
	for i := range a {
		a[i] |= b[i]
	}
	return a
}

func Xor(a, b U64x8) U64x8 {
	for i := range a {
		a[i] ^= b[i]
	}
	return a
}

// Srl and Sll return lane-wise logical shifts by a shared count.
func Srl(a U64x8, n uint) U64x8 {
	for i := range a {
		a[i] >>= n
	}
	return a
}

func Sll(a U64x8, n uint) U64x8 {
	for i := range a {
		a[i] <<= n
	}
	return a
}

// Gather loads base[idx[i]] per lane (vpgatherqq).
func Gather(base []uint64, idx U64x8) U64x8 {
	var v U64x8
	for i := range v {
		v[i] = base[idx[i]]
	}
	return v
}

// MaskGather loads base[idx[i]] for set lanes, keeping def's lanes otherwise.
func MaskGather(def U64x8, m Mask, base []uint64, idx U64x8) U64x8 {
	for i := range def {
		if m&(1<<i) != 0 {
			def[i] = base[idx[i]]
		}
	}
	return def
}

// CmpEq, CmpGt, CmpLt, CmpGe, CmpLe return lane masks (vpcmpq).
func CmpEq(a, b U64x8) Mask { return cmp(a, b, func(x, y uint64) bool { return x == y }) }
func CmpGt(a, b U64x8) Mask { return cmp(a, b, func(x, y uint64) bool { return x > y }) }
func CmpLt(a, b U64x8) Mask { return cmp(a, b, func(x, y uint64) bool { return x < y }) }
func CmpGe(a, b U64x8) Mask { return cmp(a, b, func(x, y uint64) bool { return x >= y }) }
func CmpLe(a, b U64x8) Mask { return cmp(a, b, func(x, y uint64) bool { return x <= y }) }

func cmp(a, b U64x8, f func(x, y uint64) bool) Mask {
	var m Mask
	for i := range a {
		if f(a[i], b[i]) {
			m |= 1 << i
		}
	}
	return m
}

// Blend returns b's lanes where the mask is set, a's lanes otherwise
// (vpblendmq).
func Blend(m Mask, a, b U64x8) U64x8 {
	for i := range a {
		if m&(1<<i) != 0 {
			a[i] = b[i]
		}
	}
	return a
}

// Compress writes the lanes of v selected by m contiguously into dst and
// returns how many lanes were written (vpcompressq). dst must have space
// for m.Count() elements.
func Compress(dst []uint64, m Mask, v U64x8) int {
	n := 0
	for i := range v {
		if m&(1<<i) != 0 {
			dst[n] = v[i]
			n++
		}
	}
	return n
}

// Count returns the number of set lanes (kpopcnt).
func (m Mask) Count() int {
	n := 0
	for x := uint8(m); x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Test reports whether lane i is set.
func (m Mask) Test(i int) bool { return m&(1<<i) != 0 }

// ReduceAdd sums all lanes.
func ReduceAdd(v U64x8) uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}

// Srlv returns lane-wise a[i] >> n[i] (vpsrlvq, per-lane variable shift).
func Srlv(a, n U64x8) U64x8 {
	for i := range a {
		a[i] >>= n[i] & 63
	}
	return a
}
