package vec

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	src := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	v := Load(src)
	dst := make([]uint64, Lanes)
	v.Store(dst)
	for i := 0; i < Lanes; i++ {
		if dst[i] != src[i] {
			t.Errorf("lane %d: got %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestBroadcastIota(t *testing.T) {
	b := Broadcast(7)
	for i := range b {
		if b[i] != 7 {
			t.Fatalf("broadcast lane %d = %d", i, b[i])
		}
	}
	io := Iota(10)
	for i := range io {
		if io[i] != uint64(10+i) {
			t.Fatalf("iota lane %d = %d", i, io[i])
		}
	}
}

// Property: every lane-wise arithmetic op equals the scalar op per lane.
func TestLaneWiseOpsMatchScalar(t *testing.T) {
	f := func(a, b U64x8, n8 uint8) bool {
		n := uint(n8 % 64)
		add, sub, mul := Add(a, b), Sub(a, b), Mul(a, b)
		and, or, xor := And(a, b), Or(a, b), Xor(a, b)
		srl, sll := Srl(a, n), Sll(a, n)
		for i := 0; i < Lanes; i++ {
			if add[i] != a[i]+b[i] || sub[i] != a[i]-b[i] || mul[i] != a[i]*b[i] {
				return false
			}
			if and[i] != a[i]&b[i] || or[i] != a[i]|b[i] || xor[i] != a[i]^b[i] {
				return false
			}
			if srl[i] != a[i]>>n || sll[i] != a[i]<<n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompares(t *testing.T) {
	a := U64x8{1, 2, 3, 4, 5, 6, 7, 8}
	b := Broadcast(4)
	if m := CmpEq(a, b); m != 0b00001000 {
		t.Errorf("CmpEq = %08b", m)
	}
	if m := CmpLt(a, b); m != 0b00000111 {
		t.Errorf("CmpLt = %08b", m)
	}
	if m := CmpGt(a, b); m != 0b11110000 {
		t.Errorf("CmpGt = %08b", m)
	}
	if m := CmpGe(a, b); m != 0b11111000 {
		t.Errorf("CmpGe = %08b", m)
	}
	if m := CmpLe(a, b); m != 0b00001111 {
		t.Errorf("CmpLe = %08b", m)
	}
}

func TestGather(t *testing.T) {
	base := []uint64{100, 101, 102, 103, 104, 105, 106, 107, 108, 109}
	idx := U64x8{9, 0, 3, 3, 7, 1, 2, 8}
	g := Gather(base, idx)
	want := U64x8{109, 100, 103, 103, 107, 101, 102, 108}
	if g != want {
		t.Errorf("Gather = %v, want %v", g, want)
	}
	def := Broadcast(42)
	mg := MaskGather(def, 0b00000101, base, idx)
	if mg[0] != 109 || mg[1] != 42 || mg[2] != 103 || mg[3] != 42 {
		t.Errorf("MaskGather = %v", mg)
	}
}

func TestBlendCompress(t *testing.T) {
	a, b := Iota(0), Iota(100)
	bl := Blend(0b10100101, a, b)
	want := U64x8{100, 1, 102, 3, 4, 105, 6, 107}
	if bl != want {
		t.Errorf("Blend = %v, want %v", bl, want)
	}
	dst := make([]uint64, Lanes)
	n := Compress(dst, 0b10100101, a)
	if n != 4 || dst[0] != 0 || dst[1] != 2 || dst[2] != 5 || dst[3] != 7 {
		t.Errorf("Compress n=%d dst=%v", n, dst)
	}
}

func TestMaskHelpers(t *testing.T) {
	m := Mask(0b10110001)
	if m.Count() != 4 {
		t.Errorf("Count = %d", m.Count())
	}
	if !m.Test(0) || m.Test(1) || !m.Test(7) {
		t.Error("Test bits wrong")
	}
	if MaskAll.Count() != Lanes {
		t.Error("MaskAll should have all lanes")
	}
}

func TestReduceAdd(t *testing.T) {
	if got := ReduceAdd(Iota(1)); got != 36 {
		t.Errorf("ReduceAdd(1..8) = %d, want 36", got)
	}
}
