package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter no-ops, so
// instrumented code bumps unconditionally and disabled telemetry costs one
// branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer point-in-time metric. Add/Sub compose across
// concurrent owners (several runners sharing one queue-depth gauge sum
// their contributions). A nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a float64 point-in-time metric (best-so-far cost, rates).
// A nil *FloatGauge no-ops.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bounded cumulative-bucket histogram: observations land in
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket, plus a running count and sum. Bounds are fixed at creation
// — the memory is bounded no matter how many observations arrive. A nil
// *Histogram no-ops.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefBuckets is the default latency bucket ladder, in seconds.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the bucket upper bounds and their (non-cumulative)
// counts; the final count is the +Inf bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// kind tags a registered series for exposition.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindFloatGauge
	kindHistogram
	kindFunc
)

// series is one registered metric.
type series struct {
	name, help string
	kind       kind
	counter    *Counter
	gauge      *Gauge
	fgauge     *FloatGauge
	hist       *Histogram
	fn         func() float64
}

// value returns the series' scalar value (histograms report their count).
func (s *series) value() float64 {
	switch s.kind {
	case kindCounter:
		return float64(s.counter.Value())
	case kindGauge:
		return float64(s.gauge.Value())
	case kindFloatGauge:
		return s.fgauge.Value()
	case kindHistogram:
		return float64(s.hist.Count())
	default:
		return s.fn()
	}
}

// Registry holds named metrics for exposition. Registration is idempotent
// by name: re-registering a name returns the existing instrument (or, for
// GaugeFunc, replaces the callback), so package-level wiring can run more
// than once. All methods are safe on a nil *Registry, returning nil
// instruments — the disabled-telemetry mode.
type Registry struct {
	mu     sync.Mutex
	order  []*series
	byName map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*series{}}
}

// register installs (or finds) a series by name.
func (r *Registry) register(name, help string, k kind) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byName[name]; ok {
		return s
	}
	s := &series{name: name, help: help, kind: k}
	r.byName[name] = s
	r.order = append(r.order, s)
	return s
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, help, kindCounter)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or returns) the named integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, help, kindGauge)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// FloatGauge registers (or returns) the named float gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	if r == nil {
		return nil
	}
	s := r.register(name, help, kindFloatGauge)
	if s.fgauge == nil {
		s.fgauge = &FloatGauge{}
	}
	return s.fgauge
}

// Histogram registers (or returns) the named histogram with the given
// bucket upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(name, help, kindHistogram)
	if s.hist == nil {
		s.hist = newHistogram(bounds)
	}
	return s.hist
}

// GaugeFunc registers a callback gauge evaluated at exposition time — the
// polling hook for counters owned elsewhere (memo totals, simulator
// totals, store stats). Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	s := r.register(name, help, kindFunc)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// snapshotSeries returns the registered series sorted by name.
func (r *Registry) snapshotSeries() []*series {
	r.mu.Lock()
	out := make([]*series, len(r.order))
	copy(out, r.order)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Values returns every series' current scalar value by name, sorted by the
// map's keys when marshalled. Histograms contribute NAME_count and
// NAME_sum entries. Nil-safe: a nil registry returns nil.
func (r *Registry) Values() map[string]float64 {
	if r == nil {
		return nil
	}
	out := map[string]float64{}
	for _, s := range r.snapshotSeries() {
		if s.kind == kindHistogram {
			out[s.name+"_count"] = float64(s.hist.Count())
			out[s.name+"_sum"] = s.hist.Sum()
			continue
		}
		out[s.name] = s.value()
	}
	return out
}

// Value returns one series' scalar value by name (histograms: the
// observation count) and whether the name is registered.
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	s, ok := r.byName[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return s.value(), true
}

// formatFloat renders a metric value the way the Prometheus text format
// expects (no exponent for integers, %g otherwise).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
