package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsNoOp(t *testing.T) {
	// The disabled-telemetry contract: every instrument, registry, tracer,
	// and metric set is nil-safe.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var fg *FloatGauge
	fg.Set(1.5)
	if fg.Value() != 0 {
		t.Fatal("nil float gauge value")
	}
	var h *Histogram
	h.Observe(0.1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil ||
		r.FloatGauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry returned a live instrument")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if r.Values() != nil {
		t.Fatal("nil registry values")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	tr.Begin("t", "n")()
	tr.Record("t", "n", time.Now(), time.Second)
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer recorded")
	}
	var sm *SchedMetrics
	sm.OnSubmit()
	sm.OnStart()
	sm.OnAttemptEnd(0.1)
	sm.OnOutcome(true)
	sm.OnRetry()
	sm.OnRetryResolved(true)
	sm.OnShed()
	sm.OnBreakerDenial()
	sm.SetBreakersOpen(1)
	var wm *SweepMetrics
	wm.OnPlan(10, 2)
	wm.OnTaskDone()
	wm.OnFlush(0.01)
	wm.OnInterrupt()
	var xm *SearchMetrics
	xm.OnWave(4)
	xm.OnEvaluated(true)
	xm.OnBest(1.23)
	xm.OnSearchEnd()
	if NewSchedMetrics(nil) != nil || NewSweepMetrics(nil) != nil || NewSearchMetrics(nil) != nil {
		t.Fatal("nil registry produced a metric set")
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if again := r.Counter("test_total", "dup"); again != c {
		t.Fatal("re-registering a counter returned a new instrument")
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Add(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	fg := r.FloatGauge("test_float", "a float gauge")
	fg.Set(2.5)
	if got := fg.Value(); got != 2.5 {
		t.Fatalf("float gauge = %g, want 2.5", got)
	}
	h := r.Histogram("test_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("hist sum = %g, want %g", got, want)
	}
	_, counts := h.Buckets()
	wantCounts := []uint64{1, 2, 1, 1}
	for i, w := range wantCounts {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
	polled := 7.0
	r.GaugeFunc("test_func", "a callback", func() float64 { return polled })

	vals := r.Values()
	if vals["test_total"] != 4 || vals["test_gauge"] != 3 || vals["test_float"] != 2.5 || vals["test_func"] != 7 {
		t.Fatalf("values = %v", vals)
	}
	if vals["test_seconds_count"] != 5 {
		t.Fatalf("hist count in values = %v", vals["test_seconds_count"])
	}
	if v, ok := r.Value("test_total"); !ok || v != 4 {
		t.Fatalf("Value(test_total) = %v, %v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Fatal("Value(missing) found")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("hef_b_total", "second by name").Add(2)
	r.Gauge("hef_a_depth", "first by name").Set(-1)
	h := r.Histogram("hef_c_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# HELP hef_a_depth first by name",
		"# TYPE hef_a_depth gauge",
		"hef_a_depth -1",
		"# TYPE hef_b_total counter",
		"hef_b_total 2",
		"# TYPE hef_c_seconds histogram",
		`hef_c_seconds_bucket{le="0.5"} 1`,
		`hef_c_seconds_bucket{le="1"} 2`,
		`hef_c_seconds_bucket{le="+Inf"} 3`,
		"hef_c_seconds_sum 3.9",
		"hef_c_seconds_count 3",
	}
	pos := 0
	for _, w := range want {
		i := strings.Index(out[pos:], w)
		if i < 0 {
			t.Fatalf("exposition missing (or out of order) %q in:\n%s", w, out)
		}
		pos += i + len(w)
	}
}

func TestInstrumentsConcurrent(t *testing.T) {
	// Counters, gauges, and histograms must be exact under concurrency —
	// this test runs under -race in CI.
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_seconds", "", []float64{1})
	fg := r.FloatGauge("conc_float", "")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.5)
				fg.Set(1)
				_ = r.Values()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), float64(workers*per)*0.5; got != want {
		t.Fatalf("hist sum = %g, want %g", got, want)
	}
}

func TestTracer(t *testing.T) {
	tr := NewTracer()
	end := tr.Begin("sweep", "figure")
	end()
	tr.Record("queue", "wait", time.Now(), 5*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 || tr.Len() != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Track != "sweep" || spans[0].Name != "figure" {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Dur != 5*time.Millisecond {
		t.Fatalf("span 1 dur = %v", spans[1].Dur)
	}

	// The cap bounds memory: spans beyond it are dropped, not appended.
	small := NewTracer()
	small.maxLen = 2
	for i := 0; i < 5; i++ {
		small.Record("t", "n", time.Now(), 0)
	}
	if small.Len() != 2 {
		t.Fatalf("capped tracer len = %d, want 2", small.Len())
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		addr    string
		hbSet   bool
		hb      time.Duration
		wantErr bool
	}{
		{"", false, 0, false},
		{":0", false, 0, false},
		{"127.0.0.1:9090", true, time.Second, false},
		{"localhost:http", false, 0, false}, // named ports resolve at listen time
		{"no-port", false, 0, true},
		{"127.0.0.1:", false, 0, true},
		{"", true, 0, true},
		{"", true, -time.Second, true},
	}
	for _, c := range cases {
		err := ValidateFlags(c.addr, c.hbSet, c.hb)
		if (err != nil) != c.wantErr {
			t.Errorf("ValidateFlags(%q, %v, %v) = %v, wantErr=%v", c.addr, c.hbSet, c.hb, err, c.wantErr)
		}
	}
}
