package mount

import (
	"context"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"hef/internal/memo"
	"hef/internal/obs"
	"hef/internal/sched"
	"hef/internal/telemetry"
	"hef/internal/uarch"
)

func TestDisabledSessionIsNil(t *testing.T) {
	s, err := Start(Options{Tool: "t"})
	if err != nil || s != nil {
		t.Fatalf("disabled Start = %v, %v", s, err)
	}
	// All methods no-op on nil.
	s.SetReady()
	s.SetDraining()
	s.ObserveStore(nil)
	s.AttachReport(nil)
	if s.Registry() != nil || s.Tracer() != nil || s.SweepMetrics() != nil || s.Spans() != nil {
		t.Fatal("nil session leaked live instruments")
	}
	s.Close()
}

func TestMountedSession(t *testing.T) {
	memo.ResetTotals()
	uarch.ResetTotals()

	var log strings.Builder
	s, err := Start(Options{Tool: "mount-test", MetricsAddr: "127.0.0.1:0", LogW: &log})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.Contains(log.String(), "telemetry serving on 127.0.0.1:") {
		t.Fatalf("missing serving line: %q", log.String())
	}
	addr := strings.TrimSpace(strings.TrimPrefix(log.String(), "mount-test: telemetry serving on "))

	// Drive the bridged sources: a memo miss/hit pair and a scheduler job
	// through the installed process default.
	c := memo.NewCache()
	k := memo.Key{1}
	c.Get(k)
	c.Put(k, &uarch.Result{Cycles: 1})
	c.Get(k)
	r := sched.New(sched.Config{Workers: 1})
	if err := r.Submit(sched.Job{ID: "j", Run: func(context.Context) (any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	r.Drain()
	r.Stop()

	s.SetReady()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		telemetry.MetricMemoHits + " 1",
		telemetry.MetricMemoMisses + " 1",
		telemetry.MetricMemoHitRate + " 0.5",
		telemetry.MetricJobsDone + " 1",
		telemetry.MetricUptime,
		telemetry.MetricSimInstr,
		telemetry.MetricSimIdleSkipped,
		telemetry.MetricSimSkelHits,
		telemetry.MetricSimSkelMisses,
		telemetry.MetricSimReplayPeriods,
		telemetry.MetricSimBatchForks,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	rep := obs.NewReport("mount-test")
	s.AttachReport(rep)
	if rep.Telemetry == nil || rep.Telemetry.Series[telemetry.MetricJobsDone] != 1 {
		t.Fatalf("report telemetry block = %+v", rep.Telemetry)
	}
	if rep.Telemetry.UptimeSeconds <= 0 {
		t.Fatal("no uptime in report block")
	}
}

// TestWriteTrace: a Trace-only session (no server, no heartbeat) is live,
// records lifecycle spans, and exports them as Chrome trace-event JSON.
func TestWriteTrace(t *testing.T) {
	s, err := Start(Options{Tool: "t", Trace: true, LogW: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("trace-only session should be live")
	}
	defer s.Close()
	s.Tracer().Begin("sweep", "all")()

	path := t.TempDir() + "/trace.json"
	if err := s.WriteTrace(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"all"`) {
		t.Fatalf("trace missing sweep span:\n%s", data)
	}
	if err := s.WriteTrace(""); err != nil {
		t.Fatalf("empty path should no-op: %v", err)
	}
}

// TestCloseUninstallsDefaults: after Close, new runners and searches are
// uninstrumented again — sessions don't leak into later test code.
func TestCloseUninstallsDefaults(t *testing.T) {
	s, err := Start(Options{Tool: "t", Heartbeat: time.Hour, LogW: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("heartbeat-only session should be live")
	}
	s.Close()

	r := sched.New(sched.Config{Workers: 1})
	if err := r.Submit(sched.Job{ID: "j", Run: func(context.Context) (any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	r.Drain()
	r.Stop()
	if got, _ := s.Registry().Value(telemetry.MetricJobsDone); got != 0 {
		t.Fatalf("closed session still collecting: done=%g", got)
	}
}
