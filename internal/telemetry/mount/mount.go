// Package mount wires the telemetry substrate into a running tool in one
// call: it builds the registry and tracer, registers the polled series that
// bridge the dependency-free hot packages (memo, uarch, store) into the
// registry, installs the process-wide instrument sets for the scheduler and
// the HEF search, starts the /metrics server and the heartbeat, and tears
// everything down in order on Close.
//
// The package exists so the three command-line tools stay thin: each parses
// -metrics-addr/-heartbeat, calls Start, and threads the returned session's
// sweep instruments into its RunSweep config. A nil *Session (telemetry
// disabled) is fully usable — every method no-ops — so the tools carry no
// enabled/disabled branches.
package mount

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"hef/internal/hef"
	"hef/internal/memo"
	"hef/internal/obs"
	"hef/internal/sched"
	"hef/internal/store"
	"hef/internal/telemetry"
	"hef/internal/uarch"
)

// Options parameterises Start.
type Options struct {
	// Tool names the process in /status, heartbeats, and log lines.
	Tool string
	// MetricsAddr is the -metrics-addr flag: a host:port to serve /metrics,
	// /healthz, /readyz, and /status on ("" disables the server).
	MetricsAddr string
	// Heartbeat is the -heartbeat flag: the interval between structured
	// progress lines on stderr (0 disables).
	Heartbeat time.Duration
	// LogW receives the "serving on ADDR" line and the heartbeats (default
	// os.Stderr). Telemetry never writes to stdout: report bytes must be
	// identical with telemetry on or off.
	LogW io.Writer
	// Trace keeps the session live even with no server and no heartbeat, so
	// lifecycle spans are recorded for a WriteTrace export (-trace-out).
	Trace bool
	// Embedded builds the /metrics, /healthz, /readyz, and /status endpoints
	// without binding a listener: a daemon (cmd/hefd) mounts Session.Handler
	// on its own hardened HTTP server and still drives readiness through
	// SetReady/SetDraining. Mutually exclusive with MetricsAddr.
	Embedded bool
}

// Session is a mounted telemetry stack. The zero of the type is never used;
// a disabled stack is a nil *Session, on which every method no-ops.
type Session struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	srv    *telemetry.Server
	hb     *telemetry.Heartbeat
	start  time.Time
	logW   io.Writer
}

// Start mounts telemetry per opts. With neither a metrics address nor a
// heartbeat interval it returns (nil, nil): disabled. On success the
// process-wide scheduler and search instrument sets are installed, so every
// runner and search created afterwards reports into the session's registry.
func Start(opts Options) (*Session, error) {
	if opts.MetricsAddr == "" && opts.Heartbeat <= 0 && !opts.Trace && !opts.Embedded {
		return nil, nil
	}
	if opts.LogW == nil {
		opts.LogW = os.Stderr
	}
	s := &Session{
		reg:    telemetry.NewRegistry(),
		tracer: telemetry.NewTracer(),
		start:  time.Now(),
		logW:   opts.LogW,
	}

	// The hot packages (memo, uarch) stay free of telemetry imports; their
	// package-level totals are bridged in as polled series, computed only
	// when something scrapes.
	s.reg.GaugeFunc(telemetry.MetricMemoHits, "measurement memo hits across all caches", func() float64 {
		h, _ := memo.Totals()
		return float64(h)
	})
	s.reg.GaugeFunc(telemetry.MetricMemoMisses, "measurement memo misses across all caches", func() float64 {
		_, m := memo.Totals()
		return float64(m)
	})
	s.reg.GaugeFunc(telemetry.MetricMemoHitRate, "memo hits / (hits + misses)", func() float64 {
		h, m := memo.Totals()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	s.reg.GaugeFunc(telemetry.MetricSimInstr, "instructions retired by the simulator", func() float64 {
		return float64(uarch.Totals().Instructions)
	})
	s.reg.GaugeFunc(telemetry.MetricSimFastCycles, "cycles fast-forwarded by steady-state detection", func() float64 {
		return float64(uarch.Totals().FastCycles)
	})
	s.reg.GaugeFunc(telemetry.MetricSimSlowCycles, "cycles stepped one at a time", func() float64 {
		return float64(uarch.Totals().SlowCycles)
	})
	s.reg.GaugeFunc(telemetry.MetricSimRuns, "completed simulator runs", func() float64 {
		return float64(uarch.Totals().Runs)
	})
	s.reg.GaugeFunc(telemetry.MetricSimMinstrRate, "simulated instruction throughput since start, Minstr/s", func() float64 {
		if up := time.Since(s.start).Seconds(); up > 0 {
			return float64(uarch.Totals().Instructions) / up / 1e6
		}
		return 0
	})
	s.reg.GaugeFunc(telemetry.MetricSimIdleSkipped, "slow-path cycles jumped by the event-driven idle skip", func() float64 {
		return float64(uarch.Totals().IdleSkipped)
	})
	s.reg.GaugeFunc(telemetry.MetricSimSkelHits, "schedule-skeleton cache hits", func() float64 {
		return float64(uarch.Totals().SkeletonHits)
	})
	s.reg.GaugeFunc(telemetry.MetricSimSkelMisses, "schedule-skeleton cache misses (skeleton builds)", func() float64 {
		return float64(uarch.Totals().SkeletonMisses)
	})
	s.reg.GaugeFunc(telemetry.MetricSimReplayPeriods, "loop periods fast-forwarded by response-verified replay", func() float64 {
		return float64(uarch.Totals().ReplayPeriods)
	})
	s.reg.GaugeFunc(telemetry.MetricSimBatchForks, "batch evaluations forked from a shared warm-cache snapshot", func() float64 {
		return float64(hef.BatchForks())
	})
	s.reg.GaugeFunc(telemetry.MetricUptime, "process uptime in seconds", func() float64 {
		return time.Since(s.start).Seconds()
	})

	sched.SetDefaultMetrics(telemetry.NewSchedMetrics(s.reg))
	hef.SetMetrics(telemetry.NewSearchMetrics(s.reg))

	if opts.Embedded {
		s.srv = telemetry.NewServer(opts.Tool, s.reg, s.tracer)
	} else if opts.MetricsAddr != "" {
		srv, err := telemetry.Serve(opts.MetricsAddr, opts.Tool, s.reg, s.tracer)
		if err != nil {
			sched.SetDefaultMetrics(nil)
			hef.SetMetrics(nil)
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		s.srv = srv
		// The smoke tests parse this line to find an ephemeral (:0) port.
		fmt.Fprintf(opts.LogW, "%s: telemetry serving on %s\n", opts.Tool, srv.Addr())
	}
	s.hb = telemetry.StartHeartbeat(telemetry.HeartbeatConfig{
		Tool: opts.Tool, Interval: opts.Heartbeat, Registry: s.reg, Out: opts.LogW,
	})
	return s, nil
}

// Registry exposes the session's registry (nil when disabled).
func (s *Session) Registry() *telemetry.Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer exposes the session's span tracer (nil when disabled); pass it to
// SweepConfig.Tracer.
func (s *Session) Tracer() *telemetry.Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// SweepMetrics builds the sweep instrument set on the session's registry
// (nil when disabled); pass it to SweepConfig.Metrics.
func (s *Session) SweepMetrics() *telemetry.SweepMetrics {
	if s == nil {
		return nil
	}
	return telemetry.NewSweepMetrics(s.reg)
}

// Handler returns the telemetry endpoint mux of an Embedded session for the
// daemon to mount on its own server (nil when disabled or not embedded).
func (s *Session) Handler() http.Handler {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Handler()
}

// SetReady flips /healthz and /readyz from starting to ready — call once
// flags are validated and the run is underway.
func (s *Session) SetReady() {
	if s == nil {
		return
	}
	s.srv.SetReady()
}

// SetDraining flips health to draining (503) while /metrics keeps serving.
// Hook it to the run context: context.AfterFunc(ctx, tel.SetDraining).
func (s *Session) SetDraining() {
	if s == nil {
		return
	}
	s.srv.SetDraining()
}

// ObserveStore bridges a durable memo store's counters into the registry as
// polled series. MemoStore.Stats is mutex-guarded, so polling mid-run from
// the scrape path is safe.
func (s *Session) ObserveStore(st *store.MemoStore) {
	if s == nil || st == nil {
		return
	}
	s.reg.GaugeFunc(telemetry.MetricStoreLoaded, "memo records restored from disk at open", func() float64 {
		return float64(st.Stats().Loaded)
	})
	s.reg.GaugeFunc(telemetry.MetricStorePersist, "memo records appended by this process", func() float64 {
		return float64(st.Stats().Persisted)
	})
	s.reg.GaugeFunc(telemetry.MetricStoreQuar, "memo store corruption events quarantined at open", func() float64 {
		return float64(st.Stats().Quarantined)
	})
	s.reg.GaugeFunc(telemetry.MetricStoreDegraded, "1 when memo persistence has failed and entries stay in memory", func() float64 {
		if st.Stats().Degraded != "" {
			return 1
		}
		return 0
	})
}

// AttachReport adds the emit-time telemetry block to a report about to be
// serialised. Reports headed for checkpoints must not pass through here —
// the block is emit-time-only state.
func (s *Session) AttachReport(rep *obs.RunReport) {
	if s == nil || rep == nil {
		return
	}
	rep.Telemetry = obs.TelemetryFromRegistry(s.reg, s.tracer, time.Since(s.start).Seconds())
}

// WriteTrace renders the recorded lifecycle spans as Chrome trace-event
// JSON at path — call it once the sweep has completed. No-op on a nil
// session or an empty path.
func (s *Session) WriteTrace(path string) error {
	if s == nil || path == "" {
		return nil
	}
	data, err := obs.ChromeTraceWith(nil, s.tracer.Spans())
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Spans returns the recorded lifecycle spans for trace export (nil when
// disabled).
func (s *Session) Spans() []telemetry.Span {
	if s == nil {
		return nil
	}
	return s.tracer.Spans()
}

// Close stops the heartbeat (emitting its final line), shuts the server
// down, and uninstalls the process-wide instrument sets.
func (s *Session) Close() {
	if s == nil {
		return
	}
	s.hb.Stop()
	if s.srv != nil {
		if err := s.srv.Close(); err != nil {
			fmt.Fprintf(s.logW, "telemetry: server close: %v\n", err)
		}
	}
	sched.SetDefaultMetrics(nil)
	hef.SetMetrics(nil)
}
