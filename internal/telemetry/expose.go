package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// promType maps a series kind to its Prometheus exposition type.
func (k kind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by name so consecutive scrapes
// diff cleanly. Nil-safe: a nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, s := range r.snapshotSeries() {
		if s.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, strings.ReplaceAll(s.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind.promType()); err != nil {
			return err
		}
		if s.kind == kindHistogram {
			if err := writeHistogram(w, s.name, s.hist); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", s.name, formatFloat(s.value())); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders the cumulative bucket series plus _sum and _count.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	bounds, counts := h.Buckets()
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}
