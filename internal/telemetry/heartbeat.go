package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"
)

// HeartbeatConfig parameterises StartHeartbeat.
type HeartbeatConfig struct {
	// Tool names the emitting driver.
	Tool string
	// Interval is the emission period; it must be positive.
	Interval time.Duration
	// Registry supplies the series the heartbeat summarises.
	Registry *Registry
	// Out receives the structured lines (default os.Stderr). Heartbeats go
	// to stderr, never stdout: the report/figure output must stay
	// byte-identical with telemetry on or off.
	Out io.Writer
}

// Heartbeat emits one structured log/slog line per interval summarising
// the run: completed/total tasks, an ETA extrapolated from the completion
// rate, the memo hit rate, worker-pool states, and the simulator's
// windowed Minstr/s. Stop emits a final line flagged final=true.
type Heartbeat struct {
	cfg    HeartbeatConfig
	log    *slog.Logger
	stop   chan struct{}
	wg     sync.WaitGroup
	start  time.Time
	mu     sync.Mutex
	last   map[string]float64
	lastAt time.Time
}

// StartHeartbeat launches the heartbeat loop. A non-positive interval or
// nil registry returns nil (and a nil *Heartbeat's Stop no-ops), so
// disabled heartbeats cost nothing.
func StartHeartbeat(cfg HeartbeatConfig) *Heartbeat {
	if cfg.Interval <= 0 || cfg.Registry == nil {
		return nil
	}
	if cfg.Out == nil {
		cfg.Out = os.Stderr
	}
	h := &Heartbeat{
		cfg:   cfg,
		log:   slog.New(slog.NewTextHandler(cfg.Out, nil)),
		stop:  make(chan struct{}),
		start: time.Now(),
	}
	h.last = cfg.Registry.Values()
	h.lastAt = h.start
	h.wg.Add(1)
	go h.loop()
	return h
}

func (h *Heartbeat) loop() {
	defer h.wg.Done()
	t := time.NewTicker(h.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.emit(false)
		}
	}
}

// Stop ends the loop and emits the final line.
func (h *Heartbeat) Stop() {
	if h == nil {
		return
	}
	close(h.stop)
	h.wg.Wait()
	h.emit(true)
}

// emit renders one heartbeat line from the registry's current values.
func (h *Heartbeat) emit(final bool) {
	now := time.Now()
	vals := h.cfg.Registry.Values()

	h.mu.Lock()
	prev, prevAt := h.last, h.lastAt
	h.last, h.lastAt = vals, now
	h.mu.Unlock()

	elapsed := now.Sub(h.start)
	done := vals[MetricSweepDone]
	total := vals[MetricSweepTasks]
	attrs := []any{
		slog.String("tool", h.cfg.Tool),
		slog.Duration("elapsed", elapsed.Round(time.Second)),
		slog.Int("done", int(done)),
		slog.Int("total", int(total)),
	}
	if done > 0 && total > done {
		eta := time.Duration(float64(elapsed) / done * (total - done))
		attrs = append(attrs, slog.Duration("eta", eta.Round(time.Second)))
	}
	if hits, misses := vals[MetricMemoHits], vals[MetricMemoMisses]; hits+misses > 0 {
		attrs = append(attrs, slog.String("memo_hit_rate", fmt.Sprintf("%.2f", hits/(hits+misses))))
	}
	attrs = append(attrs,
		slog.Int("queued", int(vals[MetricQueueDepth])),
		slog.Int("running", int(vals[MetricInflight])),
		slog.Int("retrying", int(vals[MetricRetryingJobs])),
	)
	// Windowed simulator throughput: instructions retired since the last
	// beat over the wall time between beats.
	if dt := now.Sub(prevAt).Seconds(); dt > 0 {
		if di := vals[MetricSimInstr] - prev[MetricSimInstr]; di > 0 {
			attrs = append(attrs, slog.String("minstr_per_sec", fmt.Sprintf("%.1f", di/dt/1e6)))
		}
	}
	if f := vals[MetricFrontierSize]; f > 0 {
		attrs = append(attrs, slog.Int("frontier", int(f)))
	}
	if final {
		attrs = append(attrs, slog.Bool("final", true))
	}
	h.log.Info("heartbeat", attrs...)
}
