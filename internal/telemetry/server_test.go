package telemetry

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// get fetches path from the live server and returns status code and body.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricSimInstr, "instructions").Add(42)
	reg.Gauge(MetricQueueDepth, "queue").Set(3)
	tr := NewTracer()
	tr.Begin("sweep", "all")()

	s, err := Serve("127.0.0.1:0", "testtool", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() == "" {
		t.Fatal("no bound address")
	}

	// Starting: live but not ready.
	if code, body := get(t, s, "/healthz"); code != 200 || !strings.Contains(body, "starting") {
		t.Fatalf("healthz starting = %d %q", code, body)
	}
	if code, _ := get(t, s, "/readyz"); code != 503 {
		t.Fatalf("readyz starting = %d, want 503", code)
	}

	s.SetReady()
	if code, body := get(t, s, "/healthz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("healthz ready = %d %q", code, body)
	}
	if code, _ := get(t, s, "/readyz"); code != 200 {
		t.Fatalf("readyz ready = %d, want 200", code)
	}

	code, body := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE " + MetricSimInstr + " counter",
		MetricSimInstr + " 42",
		MetricQueueDepth + " 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, s, "/status")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var doc StatusDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("status json: %v", err)
	}
	if doc.Tool != "testtool" || doc.State != "ready" || doc.Spans != 1 {
		t.Fatalf("status doc = %+v", doc)
	}
	if doc.Series[MetricSimInstr] != 42 {
		t.Fatalf("status series = %v", doc.Series)
	}

	// Draining: healthz and readyz flip to 503; metrics keep serving.
	s.SetDraining()
	if code, body := get(t, s, "/healthz"); code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("healthz draining = %d %q", code, body)
	}
	if code, _ := get(t, s, "/readyz"); code != 503 {
		t.Fatalf("readyz draining = %d", code)
	}
	if code, _ := get(t, s, "/metrics"); code != 200 {
		t.Fatalf("metrics while draining = %d", code)
	}
	// SetReady must not resurrect a draining server.
	s.SetReady()
	if s.State() != HealthDraining {
		t.Fatal("SetReady resurrected a draining server")
	}
}

// TestServerHardenedTimeouts: Serve must apply every hardened limit, not
// just the header timeout — a slowloris that got its header in on time
// could otherwise hold a connection open forever with a dripped body or an
// unread response.
func TestServerHardenedTimeouts(t *testing.T) {
	s, err := Serve("127.0.0.1:0", "testtool", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.srv.ReadHeaderTimeout; got != ReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", got, ReadHeaderTimeout)
	}
	if got := s.srv.ReadTimeout; got != ReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", got, ReadTimeout)
	}
	if got := s.srv.WriteTimeout; got != WriteTimeout {
		t.Errorf("WriteTimeout = %v, want %v", got, WriteTimeout)
	}
	if got := s.srv.IdleTimeout; got != IdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", got, IdleTimeout)
	}
	if got := s.srv.MaxHeaderBytes; got != MaxHeaderBytes {
		t.Errorf("MaxHeaderBytes = %d, want %d", got, MaxHeaderBytes)
	}
}

// TestStalledClientDisconnected: a client that opens a connection and never
// finishes its request header is cut off once the read deadline passes,
// instead of pinning a server goroutine until the heat death of CI. The
// test shrinks the timeout on a NewHTTPServer-built server so the reap is
// observable in milliseconds; production keeps the package defaults.
func TestStalledClientDisconnected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer("testtool", NewRegistry(), nil)
	srv := NewHTTPServer(s.Handler())
	srv.ReadHeaderTimeout = 150 * time.Millisecond
	srv.ReadTimeout = 150 * time.Millisecond
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request line, then stall: the server must hang up on its own.
	if _, err := conn.Write([]byte("GET /metrics HT")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("expected server-side close (EOF), got read error %v", err)
	}
}

func TestServerNil(t *testing.T) {
	var s *Server
	if s.Addr() != "" || s.State() != HealthStarting {
		t.Fatal("nil server state")
	}
	s.SetReady()
	s.SetDraining()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeat(t *testing.T) {
	reg := NewRegistry()
	NewSweepMetrics(reg).OnPlan(6, 2)
	reg.Counter(MetricMemoHits, "").Add(81)
	reg.Counter(MetricMemoMisses, "").Add(19)
	reg.Gauge(MetricInflight, "").Set(2)
	reg.Counter(MetricSimInstr, "").Add(5_000_000)

	var buf syncBuffer
	h := StartHeartbeat(HeartbeatConfig{
		Tool: "testtool", Interval: 10 * time.Millisecond, Registry: reg, Out: &buf,
	})
	if h == nil {
		t.Fatal("heartbeat did not start")
	}
	deadline := time.Now().Add(5 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	reg.Counter(MetricSimInstr, "").Add(1_000_000)
	h.Stop()

	out := buf.String()
	for _, want := range []string{
		"msg=heartbeat", "tool=testtool", "done=2", "total=6",
		"memo_hit_rate=0.81", "running=2", "final=true",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("heartbeat missing %q in:\n%s", want, out)
		}
	}

	// Disabled configurations return nil, and nil Stop no-ops.
	if StartHeartbeat(HeartbeatConfig{Interval: 0, Registry: reg}) != nil {
		t.Fatal("zero interval started a heartbeat")
	}
	if StartHeartbeat(HeartbeatConfig{Interval: time.Second}) != nil {
		t.Fatal("nil registry started a heartbeat")
	}
	var none *Heartbeat
	none.Stop()
}

// syncBuffer is a goroutine-safe strings.Builder for capturing heartbeat
// output.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Len()
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
