// Package telemetry is the live-observability substrate of the
// reproduction: a dependency-free metrics registry (atomic counters,
// gauges, and bounded histograms), Prometheus text exposition with
// health/readiness/status HTTP endpoints, periodic structured heartbeat
// lines, and span-based tracing of the sweep lifecycle. The long-running
// tools (hefopt, hefsens, ssbbench — and eventually the hefd daemon) mount
// it behind -metrics-addr and -heartbeat so a multi-hour sweep is
// observable while it runs, not only through the obs.RunReport it emits at
// the end.
//
// Determinism contract (see DESIGN.md §10): telemetry is emit-time-only
// state. Metric values and spans never enter checkpoints, fingerprints, or
// any checkpointed report — the byte-determinism guarantees of the sweep
// layer (reports identical across worker counts, resume identical to an
// uninterrupted run) hold with telemetry on or off. The only output that
// may carry telemetry is the final emitted report's optional "telemetry"
// block and the live endpoints themselves.
//
// Overhead contract: every instrument is nil-safe — a nil *Counter,
// *Gauge, *Histogram, or *Tracer no-ops — so instrumented code paths pay a
// single predictable branch when telemetry is disabled. The telemetry
// overhead benchmark (make bench-json → BENCH_3.json) tracks the
// instrumented-but-disabled cost of the full offline optimization phase.
package telemetry
