package telemetry

// Canonical series names. The heartbeat and the smoke tests read these, so
// they live here rather than being retyped at every wiring site.
const (
	// Scheduler (internal/sched) — shared by every runner in the process:
	// the sweep pool, the wave-search evaluator pools, and the per-figure
	// stage premeasure pools all Add/Sub the same gauges.
	MetricQueueDepth     = "hef_sched_queue_depth"
	MetricInflight       = "hef_sched_inflight_jobs"
	MetricRetryingJobs   = "hef_sched_retrying_jobs"
	MetricSubmitted      = "hef_sched_jobs_submitted_total"
	MetricJobsDone       = "hef_sched_jobs_done_total"
	MetricJobsFailed     = "hef_sched_jobs_failed_total"
	MetricJobsShed       = "hef_sched_jobs_shed_total"
	MetricRetries        = "hef_sched_retries_total"
	MetricBreakerDenials = "hef_sched_breaker_denials_total"
	MetricBreakersOpen   = "hef_sched_breakers_open"
	MetricJobSeconds     = "hef_sched_job_seconds"

	// Sweep driver (sched.RunSweep).
	MetricSweepTasks       = "hef_sweep_tasks"
	MetricSweepDone        = "hef_sweep_tasks_done_total"
	MetricSweepResumed     = "hef_sweep_tasks_resumed_total"
	MetricSweepFlushes     = "hef_sweep_checkpoint_flushes_total"
	MetricCheckpointSecs   = "hef_sweep_checkpoint_seconds"
	MetricSweepInterrupted = "hef_sweep_interrupted"

	// Measurement memo (internal/memo + internal/store).
	MetricMemoHits      = "hef_memo_hits_total"
	MetricMemoMisses    = "hef_memo_misses_total"
	MetricMemoHitRate   = "hef_memo_hit_rate"
	MetricStoreLoaded   = "hef_store_loaded_total"
	MetricStorePersist  = "hef_store_persisted_total"
	MetricStoreQuar     = "hef_store_quarantined_total"
	MetricStoreDegraded = "hef_store_degraded"

	// HEF pruning search (internal/hef).
	MetricFrontierSize = "hef_search_frontier_size"
	MetricEvaluated    = "hef_search_candidates_evaluated_total"
	MetricPruned       = "hef_search_pruned_total"
	MetricWaves        = "hef_search_waves_total"
	MetricBestNS       = "hef_search_best_ns_per_elem"

	// Simulator (internal/uarch).
	MetricSimInstr         = "hef_uarch_instructions_total"
	MetricSimFastCycles    = "hef_uarch_fastpath_cycles_total"
	MetricSimSlowCycles    = "hef_uarch_slowpath_cycles_total"
	MetricSimRuns          = "hef_uarch_runs_total"
	MetricSimMinstrRate    = "hef_uarch_minstr_per_sec"
	MetricSimIdleSkipped   = "hef_uarch_idle_skipped_cycles_total"
	MetricSimSkelHits      = "hef_uarch_skeleton_hits_total"
	MetricSimSkelMisses    = "hef_uarch_skeleton_misses_total"
	MetricSimReplayPeriods = "hef_uarch_replay_periods_total"
	MetricSimBatchForks    = "hef_uarch_batch_forks_total"

	// Process.
	MetricUptime = "hef_uptime_seconds"

	// hefd daemon (cmd/hefd bridges Manager.Counts as polled gauges).
	MetricHefdQueued      = "hefd_jobs_queued"
	MetricHefdRunning     = "hefd_jobs_running"
	MetricHefdDone        = "hefd_jobs_done"
	MetricHefdFailed      = "hefd_jobs_failed"
	MetricHefdAccepted    = "hefd_jobs_accepted_total"
	MetricHefdShed        = "hefd_jobs_shed_total"
	MetricHefdRecovered   = "hefd_jobs_recovered_total"
	MetricHefdExpired     = "hefd_jobs_expired_total"
	MetricHefdCompactions = "hefd_wal_compactions_total"
	MetricHefdWALBytes    = "hefd_wal_bytes"
	MetricHefdAuthDenied  = "hefd_auth_denied_total"
	MetricHefdKeyReloads  = "hefd_key_reloads_total"

	// Distributed sweep coordinator (internal/dist via cmd/hefsweep).
	MetricDistRanges      = "hef_dist_ranges"
	MetricDistRangesDone  = "hef_dist_ranges_done"
	MetricDistLeases      = "hef_dist_leases_active"
	MetricDistGranted     = "hef_dist_leases_granted_total"
	MetricDistExpired     = "hef_dist_leases_expired_total"
	MetricDistSpeculative = "hef_dist_speculative_grants_total"
	MetricDistCommitted   = "hef_dist_ranges_committed_total"
	MetricDistDuplicates  = "hef_dist_duplicate_commits_total"
	MetricDistHeartbeats  = "hef_dist_heartbeats_total"
	MetricDistFailures    = "hef_dist_range_failures_total"
	MetricDistViolations  = "hef_dist_determinism_violations_total"
)

// SchedMetrics is the instrument set a sched.Runner bumps. Every method is
// nil-receiver-safe, so an uninstrumented runner pays one branch per event.
type SchedMetrics struct {
	QueueDepth, Inflight, Retrying, BreakersOpen *Gauge
	Submitted, Done, Failed, Shed, RetriesTotal  *Counter
	BreakerDenials                               *Counter
	JobSeconds                                   *Histogram
}

// NewSchedMetrics registers the scheduler series on r (nil r → nil set).
func NewSchedMetrics(r *Registry) *SchedMetrics {
	if r == nil {
		return nil
	}
	return &SchedMetrics{
		QueueDepth:     r.Gauge(MetricQueueDepth, "jobs admitted but not yet running, across every runner"),
		Inflight:       r.Gauge(MetricInflight, "jobs currently executing"),
		Retrying:       r.Gauge(MetricRetryingJobs, "jobs waiting out a retry backoff"),
		BreakersOpen:   r.Gauge(MetricBreakersOpen, "circuit breakers currently open"),
		Submitted:      r.Counter(MetricSubmitted, "jobs accepted by admission control"),
		Done:           r.Counter(MetricJobsDone, "jobs that reached a successful terminal state"),
		Failed:         r.Counter(MetricJobsFailed, "jobs that failed terminally (retries exhausted or interrupted)"),
		Shed:           r.Counter(MetricJobsShed, "jobs rejected because the bounded queue was full"),
		RetriesTotal:   r.Counter(MetricRetries, "retry re-queues across all jobs"),
		BreakerDenials: r.Counter(MetricBreakerDenials, "attempts denied by an open circuit breaker"),
		JobSeconds:     r.Histogram(MetricJobSeconds, "job attempt latency in seconds", nil),
	}
}

// OnSubmit records an accepted job entering the queue.
func (m *SchedMetrics) OnSubmit() {
	if m == nil {
		return
	}
	m.Submitted.Inc()
	m.QueueDepth.Add(1)
}

// OnShed records an admission-control rejection.
func (m *SchedMetrics) OnShed() {
	if m == nil {
		return
	}
	m.Shed.Inc()
}

// OnStart records a job leaving the queue for a worker.
func (m *SchedMetrics) OnStart() {
	if m == nil {
		return
	}
	m.QueueDepth.Add(-1)
	m.Inflight.Add(1)
}

// OnAttemptEnd records an attempt finishing after sec seconds.
func (m *SchedMetrics) OnAttemptEnd(sec float64) {
	if m == nil {
		return
	}
	m.Inflight.Add(-1)
	m.JobSeconds.Observe(sec)
}

// OnOutcome records a terminal state.
func (m *SchedMetrics) OnOutcome(done bool) {
	if m == nil {
		return
	}
	if done {
		m.Done.Inc()
	} else {
		m.Failed.Inc()
	}
}

// OnRetry records a job entering its backoff wait.
func (m *SchedMetrics) OnRetry() {
	if m == nil {
		return
	}
	m.RetriesTotal.Inc()
	m.Retrying.Add(1)
}

// OnRetryResolved records the backoff wait ending; requeued reports whether
// the job re-entered the queue (as opposed to being interrupted).
func (m *SchedMetrics) OnRetryResolved(requeued bool) {
	if m == nil {
		return
	}
	m.Retrying.Add(-1)
	if requeued {
		m.QueueDepth.Add(1)
	}
}

// OnBreakerDenial records an attempt denied by an open breaker.
func (m *SchedMetrics) OnBreakerDenial() {
	if m == nil {
		return
	}
	m.BreakerDenials.Inc()
}

// SetBreakersOpen publishes the current open-breaker count.
func (m *SchedMetrics) SetBreakersOpen(n int) {
	if m == nil {
		return
	}
	m.BreakersOpen.Set(int64(n))
}

// SweepMetrics is the instrument set sched.RunSweep bumps.
type SweepMetrics struct {
	Tasks, Interrupted          *Gauge
	TasksDone, Resumed, Flushes *Counter
	CheckpointSeconds           *Histogram
}

// NewSweepMetrics registers the sweep series on r (nil r → nil set).
func NewSweepMetrics(r *Registry) *SweepMetrics {
	if r == nil {
		return nil
	}
	return &SweepMetrics{
		Tasks:             r.Gauge(MetricSweepTasks, "tasks planned for the current sweep"),
		Interrupted:       r.Gauge(MetricSweepInterrupted, "1 while the sweep is draining after an interrupt"),
		TasksDone:         r.Counter(MetricSweepDone, "sweep tasks completed, resumed-from-checkpoint included"),
		Resumed:           r.Counter(MetricSweepResumed, "sweep tasks satisfied from the resume checkpoint"),
		Flushes:           r.Counter(MetricSweepFlushes, "checkpoint flushes"),
		CheckpointSeconds: r.Histogram(MetricCheckpointSecs, "checkpoint flush latency in seconds", nil),
	}
}

// OnPlan publishes the sweep's task total and resumed count.
func (m *SweepMetrics) OnPlan(total, resumed int) {
	if m == nil {
		return
	}
	m.Tasks.Set(int64(total))
	m.Resumed.Add(uint64(resumed))
	m.TasksDone.Add(uint64(resumed))
}

// OnTaskDone records one task completing in this process.
func (m *SweepMetrics) OnTaskDone() {
	if m == nil {
		return
	}
	m.TasksDone.Inc()
}

// OnFlush records one checkpoint flush taking sec seconds.
func (m *SweepMetrics) OnFlush(sec float64) {
	if m == nil {
		return
	}
	m.Flushes.Inc()
	m.CheckpointSeconds.Observe(sec)
}

// OnInterrupt flags the sweep as draining.
func (m *SweepMetrics) OnInterrupt() {
	if m == nil {
		return
	}
	m.Interrupted.Set(1)
}

// DistMetrics is the instrument set the distributed sweep coordinator
// bumps: the lease lifecycle (grants, heartbeats, expiries, speculative
// re-dispatch) and the commit path (commits, byte-identical duplicates,
// determinism violations).
type DistMetrics struct {
	Ranges, RangesDone, LeasesActive *Gauge
	Granted, Expired, Speculative    *Counter
	Committed, Duplicates            *Counter
	Heartbeats, Failures, Violations *Counter
}

// NewDistMetrics registers the dist series on r (nil r → nil set).
func NewDistMetrics(r *Registry) *DistMetrics {
	if r == nil {
		return nil
	}
	return &DistMetrics{
		Ranges:       r.Gauge(MetricDistRanges, "task ranges in the registered sweep plan"),
		RangesDone:   r.Gauge(MetricDistRangesDone, "task ranges durably committed"),
		LeasesActive: r.Gauge(MetricDistLeases, "live leases held by workers"),
		Granted:      r.Counter(MetricDistGranted, "leases granted, speculative included"),
		Expired:      r.Counter(MetricDistExpired, "leases lapsed without a heartbeat"),
		Speculative:  r.Counter(MetricDistSpeculative, "speculative re-dispatches of straggling ranges"),
		Committed:    r.Counter(MetricDistCommitted, "ranges committed durably for the first time"),
		Duplicates:   r.Counter(MetricDistDuplicates, "byte-identical duplicate commits deduped"),
		Heartbeats:   r.Counter(MetricDistHeartbeats, "lease renewals received"),
		Failures:     r.Counter(MetricDistFailures, "worker failure reports for a range"),
		Violations:   r.Counter(MetricDistViolations, "duplicate commits whose bytes differed"),
	}
}

// OnGrant records a lease grant.
func (m *DistMetrics) OnGrant(speculative bool) {
	if m == nil {
		return
	}
	m.Granted.Inc()
	if speculative {
		m.Speculative.Inc()
	}
}

// OnExpire records n leases lapsing.
func (m *DistMetrics) OnExpire(n int) {
	if m == nil {
		return
	}
	m.Expired.Add(uint64(n))
}

// OnHeartbeat records one lease renewal.
func (m *DistMetrics) OnHeartbeat() {
	if m == nil {
		return
	}
	m.Heartbeats.Inc()
}

// OnCommit records a range commit; duplicate marks a byte-identical replay.
func (m *DistMetrics) OnCommit(duplicate bool) {
	if m == nil {
		return
	}
	if duplicate {
		m.Duplicates.Inc()
	} else {
		m.Committed.Inc()
	}
}

// OnRangeFailure records a worker failure report.
func (m *DistMetrics) OnRangeFailure() {
	if m == nil {
		return
	}
	m.Failures.Inc()
}

// OnViolation records a duplicate commit whose bytes differed.
func (m *DistMetrics) OnViolation() {
	if m == nil {
		return
	}
	m.Violations.Inc()
}

// SetRanges publishes the plan's range total and committed count.
func (m *DistMetrics) SetRanges(total, done int) {
	if m == nil {
		return
	}
	m.Ranges.Set(int64(total))
	m.RangesDone.Set(int64(done))
}

// SetLeasesActive publishes the live lease count.
func (m *DistMetrics) SetLeasesActive(n int) {
	if m == nil {
		return
	}
	m.LeasesActive.Set(int64(n))
}

// SearchMetrics is the instrument set the HEF pruning search bumps. With
// several searches running concurrently (a multi-operator batch) the
// counters aggregate and the gauges carry the most recent wave's values.
type SearchMetrics struct {
	FrontierSize      *Gauge
	Evaluated, Pruned *Counter
	Waves             *Counter
	BestNSPerElem     *FloatGauge
}

// NewSearchMetrics registers the search series on r (nil r → nil set).
func NewSearchMetrics(r *Registry) *SearchMetrics {
	if r == nil {
		return nil
	}
	return &SearchMetrics{
		FrontierSize:  r.Gauge(MetricFrontierSize, "candidates in the current search frontier"),
		Evaluated:     r.Counter(MetricEvaluated, "candidate nodes evaluated across all searches"),
		Pruned:        r.Counter(MetricPruned, "candidate nodes pruned to the end list"),
		Waves:         r.Counter(MetricWaves, "search frontiers expanded"),
		BestNSPerElem: r.FloatGauge(MetricBestNS, "best per-element cost found so far, nanoseconds"),
	}
}

// OnWave records a frontier of the given size being expanded.
func (m *SearchMetrics) OnWave(frontier int) {
	if m == nil {
		return
	}
	m.Waves.Inc()
	m.FrontierSize.Set(int64(frontier))
}

// OnEvaluated records one candidate evaluation and whether it was pruned.
func (m *SearchMetrics) OnEvaluated(pruned bool) {
	if m == nil {
		return
	}
	m.Evaluated.Inc()
	if pruned {
		m.Pruned.Inc()
	}
}

// OnBest publishes a new best-so-far per-element cost in nanoseconds.
func (m *SearchMetrics) OnBest(nsPerElem float64) {
	if m == nil {
		return
	}
	m.BestNSPerElem.Set(nsPerElem)
}

// OnSearchEnd clears the frontier gauge.
func (m *SearchMetrics) OnSearchEnd() {
	if m == nil {
		return
	}
	m.FrontierSize.Set(0)
}
