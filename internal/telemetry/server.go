package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Health is the server's readiness state machine: starting → ready →
// draining. /healthz and /readyz report it; SIGTERM handling flips ready →
// draining so an orchestrator stops routing to a sweep that is flushing
// its checkpoint.
type Health int32

const (
	HealthStarting Health = iota
	HealthReady
	HealthDraining
)

// String renders the state for endpoint bodies and logs.
func (h Health) String() string {
	switch h {
	case HealthReady:
		return "ready"
	case HealthDraining:
		return "draining"
	default:
		return "starting"
	}
}

// Server serves the live-telemetry endpoints over HTTP:
//
//	/metrics  Prometheus text exposition of the registry
//	/healthz  200 while the process serves, 503 once draining
//	/readyz   200 only in the ready state
//	/status   JSON snapshot: state, uptime, every series value, span count
//
// All methods are safe on a nil *Server, so tools wire it unconditionally.
type Server struct {
	reg    *Registry
	tracer *Tracer
	tool   string
	ln     net.Listener
	srv    *http.Server
	state  atomic.Int32
	start  time.Time
}

// Hardened HTTP server limits, shared by the telemetry endpoints and the
// hefd API server. Every limit bounds what one misbehaving client can pin:
// a slowloris drip-feeding its header or body hits the read timeouts, an
// abandoned response hits the write timeout, an idle keep-alive connection
// is reaped, and an oversized header is rejected before it buffers.
const (
	ReadHeaderTimeout = 5 * time.Second
	ReadTimeout       = 30 * time.Second
	WriteTimeout      = 30 * time.Second
	IdleTimeout       = 2 * time.Minute
	MaxHeaderBytes    = 1 << 20
)

// NewHTTPServer wraps a handler in an http.Server with the hardened limits
// above. Daemons (cmd/hefd) use it for their API listener so slow or
// abandoned connections cannot accumulate.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		WriteTimeout:      WriteTimeout,
		IdleTimeout:       IdleTimeout,
		MaxHeaderBytes:    MaxHeaderBytes,
	}
}

// NewServer builds the endpoint state machine without binding a listener:
// the daemon embeds Handler() in its own (hardened) HTTP server and drives
// SetReady/SetDraining itself. tracer may be nil.
func NewServer(tool string, reg *Registry, tracer *Tracer) *Server {
	return &Server{reg: reg, tracer: tracer, tool: tool, start: time.Now()}
}

// Serve binds addr (host:port; :0 picks a free port) and serves the
// endpoints on a background goroutine until Close. tracer may be nil.
func Serve(addr, tool string, reg *Registry, tracer *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := NewServer(tool, reg, tracer)
	s.ln = ln
	s.srv = NewHTTPServer(s.Handler())
	go func() {
		// ErrServerClosed is the normal Close path; anything else would have
		// surfaced at Listen time.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Handler returns the endpoint mux — the piece a daemon (cmd/hefd) mounts
// on its own server instead of calling Serve.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/status", s.handleStatus)
	return mux
}

// Addr returns the bound address ("" on nil), so tools started with :0 can
// log where they are scrapeable.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// State returns the current health state.
func (s *Server) State() Health {
	if s == nil {
		return HealthStarting
	}
	return Health(s.state.Load())
}

// SetReady marks the server ready (idempotent; a draining server stays
// draining).
func (s *Server) SetReady() {
	if s == nil {
		return
	}
	s.state.CompareAndSwap(int32(HealthStarting), int32(HealthReady))
}

// SetDraining flips the server to draining: /readyz and /healthz turn 503
// while /metrics and /status keep serving, so the final moments of a drain
// stay observable.
func (s *Server) SetDraining() {
	if s == nil {
		return
	}
	s.state.Store(int32(HealthDraining))
}

// Close stops the listener. In-flight scrapes are abandoned — the process
// is exiting and the run report carries the final numbers.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := s.reg.WritePrometheus(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.State()
	code := http.StatusOK
	if st == HealthDraining {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintln(w, st.String())
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := s.State()
	code := http.StatusOK
	if st != HealthReady {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintln(w, st.String())
}

// StatusDoc is the /status JSON document.
type StatusDoc struct {
	Tool          string             `json:"tool"`
	State         string             `json:"state"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	Series        map[string]float64 `json:"series,omitempty"`
	Spans         int                `json:"spans,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	doc := StatusDoc{
		Tool:          s.tool,
		State:         s.State().String(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Series:        s.reg.Values(),
		Spans:         s.tracer.Len(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
