package telemetry

import (
	"fmt"
	"net"
	"time"
)

// ValidateFlags checks the shared -metrics-addr/-heartbeat flag contract
// the tools enforce with exit 2 + usage: a non-empty metrics address must
// parse as host:port (":0" and "127.0.0.1:9090" are fine), and a heartbeat
// interval the user set explicitly must be positive — "-heartbeat 0" or a
// negative interval is a usage error, while leaving the flag unset simply
// disables heartbeats. heartbeatSet reports whether the flag appeared on
// the command line (flag.Visit).
func ValidateFlags(metricsAddr string, heartbeatSet bool, heartbeat time.Duration) error {
	if metricsAddr != "" {
		host, port, err := net.SplitHostPort(metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics-addr must be host:port, got %q: %w", metricsAddr, err)
		}
		_ = host // empty host binds all interfaces
		if port == "" {
			return fmt.Errorf("-metrics-addr must name a port (use :0 for an ephemeral one), got %q", metricsAddr)
		}
	}
	if heartbeatSet && heartbeat <= 0 {
		return fmt.Errorf("-heartbeat must be positive, got %v", heartbeat)
	}
	return nil
}
