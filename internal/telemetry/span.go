package telemetry

import (
	"sync"
	"time"
)

// Span is one completed interval of the sweep lifecycle (submit → queue →
// eval → memo → checkpoint). Times are offsets from the tracer's start, so
// a trace carries no absolute timestamps. Spans are emit-time-only state:
// they feed the Chrome-trace export and the /status endpoint, never a
// checkpoint or a fingerprint.
type Span struct {
	// Name labels the interval ("run silver/sf10", "checkpoint", ...).
	Name string
	// Track groups spans onto one timeline row ("sweep", "queue", "jobs").
	Track string
	// Start and Dur locate the interval relative to the tracer's creation.
	Start, Dur time.Duration
}

// Tracer records spans. All methods are safe on a nil *Tracer (no-ops), so
// instrumented code traces unconditionally. Safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	spans  []Span
	epoch  time.Time
	now    func() time.Time
	maxLen int
}

// maxSpans bounds a tracer's memory: a sweep records a handful of spans
// per task, so the cap is generous; beyond it new spans are dropped and
// Dropped counts them.
const maxSpans = 1 << 16

// NewTracer starts a tracer; offsets are measured from this call.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now, maxLen: maxSpans}
	t.epoch = t.now()
	return t
}

// Begin opens a span on the given track and returns the closure that ends
// it. On a nil tracer the closure is a no-op.
func (t *Tracer) Begin(track, name string) func() {
	if t == nil {
		return func() {}
	}
	start := t.now()
	return func() {
		end := t.now()
		t.Record(track, name, start, end.Sub(start))
	}
}

// Record adds a completed span with an explicit start time and duration.
func (t *Tracer) Record(track, name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.maxLen {
		return
	}
	off := start.Sub(t.epoch)
	if off < 0 {
		off = 0
	}
	t.spans = append(t.spans, Span{Name: name, Track: track, Start: off, Dur: dur})
}

// Spans returns a copy of the recorded spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len reports how many spans are recorded (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
