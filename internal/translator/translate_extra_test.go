package translator

import (
	"strings"
	"testing"

	"hef/internal/hid"
	"hef/internal/isa"
	"hef/internal/uarch"
)

func knownOps(op string) bool {
	_, err := isa.Describe(op)
	return err == nil
}

// accumulator template: sum += load(in) per element.
func sumTemplate(t *testing.T) *hid.Template {
	t.Helper()
	b := hid.NewTemplate("sum", hid.U64)
	in := b.Stream("in", hid.ReadStream)
	acc := b.Acc("acc")
	x := b.Load("x", in)
	b.Op("acc", "add", acc, x)
	tmpl, err := b.Build(knownOps)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

// Each instance of an accumulator gets its own register, carried across
// iterations — the simulator must see a per-instance serial chain, not a
// fresh value per iteration.
func TestAccumulatorTranslation(t *testing.T) {
	tmpl := sumTemplate(t)
	out := MustTranslate(tmpl, Node{V: 0, S: 2, P: 2}, Options{})
	// 4 accumulator instances expected; the adds write them.
	writers := map[int16]int{}
	for _, u := range out.Program.Body {
		if u.Instr.Name == "add" && u.Dst != uarch.NoReg {
			writers[u.Dst]++
		}
	}
	// 4 instance adds plus the loop counter add.
	if len(writers) != 5 {
		t.Errorf("expected 5 distinct add destinations (4 accumulators + loop), got %d", len(writers))
	}

	// The chain must serialize per instance: with 4 instances and a 1-cycle
	// add, ~1 cycle per 4 elements plus load throughput.
	cpu := isa.XeonSilver4110()
	res := mustRun(t, uarch.NewSim(cpu), out.Program, 4000)
	if cpi := float64(res.Cycles) / 4000; cpi > 4 {
		t.Errorf("accumulator loop %.2f cycles/iter, expected pipelined (<4)", cpi)
	}
}

// The same accumulator at (0,1,1) is a serial 1-cycle add chain: exactly
// ~1 cycle per element.
func TestAccumulatorSerialChain(t *testing.T) {
	tmpl := sumTemplate(t)
	out := MustTranslate(tmpl, Node{V: 0, S: 1, P: 1}, Options{})
	cpu := isa.XeonSilver4110()
	res := mustRun(t, uarch.NewSim(cpu), out.Program, 4000)
	cpi := float64(res.Cycles) / 4000
	if cpi < 0.9 || cpi > 1.5 {
		t.Errorf("serial accumulator: %.2f cycles/iter, want ~1 (add latency)", cpi)
	}
}

// Gather instances must draw from distinct address streams (different
// packs/instances probe different buckets), while a prefetch covering a
// gather shares its stream exactly.
func TestGatherSeedsDistinct(t *testing.T) {
	b := hid.NewTemplate("g2", hid.U64)
	in := b.Stream("in", hid.ReadStream)
	tab := b.Table("tab", 1<<20)
	x := b.Load("x", in)
	g1 := b.Gather("g1", tab, x)
	g2 := b.Gather("g2", tab, g1)
	b.Store(hid.ParamOp("in"), g2) // structurally fine for this test
	tmpl, err := b.Build(knownOps)
	if err != nil {
		t.Fatal(err)
	}
	out := MustTranslate(tmpl, Node{V: 1, S: 0, P: 2}, Options{})
	seeds := map[uint64]bool{}
	for _, u := range out.Program.Body {
		if u.Instr.Class == isa.GatherOp {
			if seeds[u.Addr.Seed] {
				t.Fatalf("duplicate gather seed %#x", u.Addr.Seed)
			}
			seeds[u.Addr.Seed] = true
		}
	}
	if len(seeds) != 4 { // 2 statements x 2 packs
		t.Errorf("expected 4 distinct gather seeds, got %d", len(seeds))
	}
}

func TestPrefetchMatchesGatherAddresses(t *testing.T) {
	b := hid.NewTemplate("pfg", hid.U64)
	in := b.Stream("in", hid.ReadStream)
	out := b.Stream("out", hid.WriteStream)
	tab := b.Table("tab", 1<<20)
	x := b.Load("x", in)
	b.Op("pf", "prefetch", hid.ParamOp("tab"))
	g := b.Gather("g", tab, x)
	b.Store(out, g)
	tmpl, err := b.Build(knownOps)
	if err != nil {
		t.Fatal(err)
	}
	o := MustTranslate(tmpl, Node{V: 1, S: 0, P: 1}, Options{})
	var pf []uarch.AddrSpec
	var gather *uarch.AddrSpec
	for i := range o.Program.Body {
		u := &o.Program.Body[i]
		switch u.Instr.Class {
		case isa.Prefetch:
			if u.Addr.Kind == uarch.AddrRandom {
				pf = append(pf, u.Addr)
			}
		case isa.GatherOp:
			gather = &u.Addr
		}
	}
	if gather == nil || len(pf) != 8 {
		t.Fatalf("want 8 lane prefetches and a gather, got %d and %v", len(pf), gather)
	}
	for _, p := range pf {
		if p.Seed != gather.Seed || p.Region != gather.Region || p.Base != gather.Base {
			t.Errorf("prefetch stream %+v does not match gather %+v", p, *gather)
		}
	}
	lanes := map[uint8]bool{}
	for _, p := range pf {
		lanes[p.LaneSel] = true
	}
	if len(lanes) != 8 {
		t.Errorf("prefetches must cover all 8 lanes, got %d", len(lanes))
	}
}

// Spilled programs still validate and run.
func TestSpilledProgramRuns(t *testing.T) {
	tmpl := mustMurmur(t)
	out := MustTranslate(tmpl, Node{V: 2, S: 4, P: 8}, Options{})
	if out.SpillStores == 0 {
		t.Fatal("expected spills at v=2 s=4 p=8")
	}
	res := mustRun(t, uarch.NewSim(isa.XeonSilver4110()), out.Program, 50)
	if res.Instructions == 0 {
		t.Error("spilled program produced no instructions")
	}
	// Spill code must appear in the instruction stream as stack traffic.
	spillOps := 0
	for _, u := range out.Program.Body {
		if u.Addr.Kind == uarch.AddrStack {
			spillOps++
		}
	}
	if spillOps != out.SpillStores+out.SpillLoads {
		t.Errorf("stack ops %d != reported spills %d", spillOps, out.SpillStores+out.SpillLoads)
	}
}

func mustMurmur(t *testing.T) *hid.Template {
	t.Helper()
	b := hid.NewTemplate("m", hid.U64)
	in := b.Stream("in", hid.ReadStream)
	out := b.Stream("out", hid.WriteStream)
	c := b.Const("c", 0xc6a4a7935bd1e995)
	x := b.Load("x", in)
	var cur hid.Operand = x
	for i := 0; i < 6; i++ {
		m := b.Mul("m"+string(rune('0'+i)), cur, c)
		s := b.Srl("s"+string(rune('0'+i)), m, 29)
		cur = b.Xor("x"+string(rune('0'+i)), m, s)
	}
	b.Store(out, cur)
	tmpl, err := b.Build(knownOps)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

// Scatter stores to random regions must carry random address specs.
func TestScatterStore(t *testing.T) {
	b := hid.NewTemplate("scatter", hid.U64)
	in := b.Stream("in", hid.ReadStream)
	grp := b.Table("grp", 8192)
	x := b.Load("x", in)
	b.Store(grp, x)
	tmpl, err := b.Build(knownOps)
	if err != nil {
		t.Fatal(err)
	}
	out := MustTranslate(tmpl, Node{V: 1, S: 1, P: 1}, Options{})
	found := false
	for _, u := range out.Program.Body {
		if u.Instr.Class == isa.Store && u.Addr.Kind == uarch.AddrRandom {
			found = true
			if u.Addr.Region != 8192 {
				t.Errorf("scatter region = %d", u.Addr.Region)
			}
		}
	}
	if !found {
		t.Error("store to a random region should scatter")
	}
}

func TestParamBase(t *testing.T) {
	tmpl := mustMurmur(t)
	if ParamBase(tmpl, "in") != 1<<32 || ParamBase(tmpl, "out") != 2<<32 {
		t.Error("ParamBase should assign sequential 4GB windows")
	}
	if ParamBase(tmpl, "nope") != 0 {
		t.Error("unknown parameter should map to 0")
	}
}

// Scalar source rendering covers select and gather forms.
func TestSourceRenderingScalarForms(t *testing.T) {
	b := hid.NewTemplate("sel", hid.U64)
	in := b.Stream("in", hid.ReadStream)
	out := b.Stream("out", hid.WriteStream)
	tab := b.Table("tab", 2048)
	c := b.Const("c", 7)
	x := b.Load("x", in)
	m := b.CmpGt("m", x, c)
	g := b.Gather("g", tab, x)
	r := b.Select("r", m, g, x)
	b.Store(out, r)
	tmpl, err := b.Build(knownOps)
	if err != nil {
		t.Fatal(err)
	}
	src := MustTranslate(tmpl, Node{V: 1, S: 1, P: 1}, Options{}).Source
	for _, want := range []string{
		"g_s0_p0 = *(tab + x_s0_p0);",
		"r_s0_p0 = m_s0_p0 ? g_s0_p0 : x_s0_p0;",
		"_mm512_i64gather_epi64",
		"_mm512_mask_blend_epi64",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q\n%s", want, src)
		}
	}
}
