package translator

import (
	"testing"

	"hef/internal/hid"
	"hef/internal/isa"
)

// FuzzTranslate drives the translator with fuzzed candidate nodes, widths,
// and template sources. The contract under test: Translate never panics —
// malformed nodes, hostile templates, and bogus widths all come back as
// errors.
func FuzzTranslate(f *testing.F) {
	fixed := `template t u64 (a:stream, tab:random[65536], o:wstream) {
    const m = 0xc6a4a7935bd1e995;
    x = load(a);
    k = mul(x, m);
    g = gather(tab, k);
    h = xor(g, k);
    store(o, h);
}
`
	f.Add(fixed, 1, 1, 3, uint16(512))
	f.Add(fixed, 0, 1, 1, uint16(512))
	f.Add(fixed, 1, 0, 1, uint16(256))
	f.Add(fixed, -1, 5, 0, uint16(128))
	f.Add(fixed, 100, 100, 100, uint16(7))
	f.Add("template e u64 (o:wstream) {\n}\n", 1, 1, 1, uint16(512))
	f.Fuzz(func(t *testing.T, src string, v, s, p int, w uint16) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Translate panicked (node v=%d s=%d p=%d w=%d): %v", v, s, p, w, r)
			}
		}()

		knownOps := func(op string) bool { _, err := isa.Describe(op); return err == nil }
		file, err := hid.Parse(src, knownOps)
		if err != nil {
			// Unparseable source: still exercise the node/width edges on the
			// fixed template so every input tests something.
			if file, err = hid.Parse(fixed, knownOps); err != nil {
				t.Fatalf("fixed template failed to parse: %v", err)
			}
		}
		for _, name := range file.List {
			tmpl, err := file.Get(name)
			if err != nil {
				t.Fatalf("listed template %q missing: %v", name, err)
			}
			node := Node{V: v, S: s, P: p}
			out, err := Translate(tmpl, node, Options{Width: isa.Width(w)})
			if err != nil {
				continue // rejections are the expected path for wild inputs
			}
			if out.Program == nil || len(out.Program.Body) == 0 {
				t.Fatalf("accepted translation of %q at %v has no program", name, node)
			}
			if err := out.Program.Validate(); err != nil {
				t.Fatalf("accepted translation of %q at %v fails validation: %v", name, node, err)
			}
		}
	})
}
