package translator

import (
	"testing"

	"hef/internal/uarch"
)

// mustRun simulates prog for iters iterations, failing the test on error.
func mustRun(t testing.TB, s *uarch.Sim, prog *uarch.Program, iters int64) *uarch.Result {
	t.Helper()
	r, err := s.Run(prog, iters)
	if err != nil {
		t.Fatalf("Run(%s, %d): %v", prog.Name, iters, err)
	}
	return r
}
