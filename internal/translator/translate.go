// Package translator implements the core component of HEF (Section IV-B,
// Algorithm 1): it translates an operator template written in the hybrid
// intermediate description into concrete code for a candidate node
// (v SIMD statements, s scalar statements, pack size p), using the ISA
// description tables. The output is both a register-allocated instruction
// trace for the microarchitecture simulator (the analogue of the compiled
// binary the paper benchmarks) and a C-like source rendering (the analogue
// of Fig. 6's generated code).
package translator

import (
	"fmt"
	"math"
	"sort"

	"hef/internal/hid"
	"hef/internal/isa"
	"hef/internal/uarch"
)

// Node is one candidate point of the search space: the number of vector and
// scalar statements within a pack, and the pack size p. The paper writes it
// n_{vsp}.
type Node struct {
	V int // SIMD statements per pack
	S int // scalar statements per pack
	P int // pack size
}

func (n Node) String() string { return fmt.Sprintf("n(v=%d,s=%d,p=%d)", n.V, n.S, n.P) }

// Valid reports whether the node lies in the search space (v,s >= 0,
// v+s >= 1, p >= 1).
func (n Node) Valid() bool { return n.V >= 0 && n.S >= 0 && n.V+n.S >= 1 && n.P >= 1 }

// Options configure a translation.
type Options struct {
	// Width is the SIMD width to target; defaults to AVX-512.
	Width isa.Width
	// CPU provides the architectural register budgets; defaults to the
	// Silver 4110 model.
	CPU *isa.CPU
	// NoLoopOverhead omits the loop-control instructions (offset increment,
	// compare, branch) from the emitted body.
	NoLoopOverhead bool
}

// Output is the result of translating a template at a node.
type Output struct {
	// Program is the simulator trace.
	Program *uarch.Program
	// Source is a C-like rendering of the generated code (Fig. 6 analogue).
	Source string
	// Node echoes the candidate.
	Node Node
	// SpillStores and SpillLoads count the register-pressure spill code the
	// allocator had to insert; non-zero values signal that the node exceeds
	// the register budget (the effect that makes runtime increase past the
	// optimum, Section IV-C).
	SpillStores int
	SpillLoads  int
	// ElemsPerIter is p*(v*lanes + s).
	ElemsPerIter int
}

// absOp is an abstract instruction over SSA value ids, before spill
// insertion.
type absOp struct {
	instr   *isa.Instr
	dst     int // SSA value id, -1 for none
	srcs    [3]int
	addr    uarch.AddrSpec
	vector  bool // dst/srcs register class
	comment string
}

const noVal = -1

// streamPrefetchAheadElems is the prefetch distance, in elements, for
// software prefetches of sequential streams (8 cache lines of 64-bit
// elements).
const streamPrefetchAheadElems = 64

// emitter accumulates abstract ops and SSA values during expansion.
type emitter struct {
	ops      []absOp
	isVector []bool // per value id
	pinned   []bool // per value id (accumulators: never spilled)
	numVals  int
}

func (e *emitter) newVal(vector, pinned bool) int {
	id := e.numVals
	e.numVals++
	e.isVector = append(e.isVector, vector)
	e.pinned = append(e.pinned, pinned)
	return id
}

// Translate expands tmpl at node per Algorithm 1.
func Translate(tmpl *hid.Template, node Node, opt Options) (*Output, error) {
	if !node.Valid() {
		return nil, fmt.Errorf("translator: invalid node %v", node)
	}
	if opt.Width == 0 {
		opt.Width = isa.W512
	}
	if opt.Width != isa.W512 && opt.Width != isa.W256 && opt.Width != isa.W128 {
		return nil, fmt.Errorf("translator: unsupported SIMD width %d", opt.Width)
	}
	if opt.CPU == nil {
		opt.CPU = isa.XeonSilver4110()
	}
	if err := tmpl.Validate(func(op string) bool {
		_, err := isa.Describe(op)
		return err == nil
	}); err != nil {
		return nil, err
	}

	lanes := int(opt.Width) / 64
	elemsPerIter := node.P * (node.V*lanes + node.S)
	em := &emitter{}

	// Constants unroll to exactly one scalar and one vector register each,
	// independent of v, s, and p (Section IV-B). They are loop-invariant:
	// no defining op in the body, so the simulator treats them as
	// always-ready; they still consume architectural registers, accounted
	// for in the spill budgets below.
	// Iterate in sorted name order: map order would renumber the constants'
	// SSA ids from run to run — semantically neutral, but it would make the
	// emitted program (and its content fingerprint) nondeterministic.
	constScalar := map[string]int{}
	constVector := map[string]int{}
	for _, name := range sortedConstNames(tmpl) {
		constScalar[name] = em.newVal(false, true)
		if node.V > 0 {
			constVector[name] = em.newVal(true, true)
		}
	}

	// Accumulators are pinned loop-carried registers, one per instance.
	accVals := map[instKey]int{}
	for _, acc := range tmpl.Accumulators() {
		forEachInstance(node, func(k instKey) {
			accVals[instKey{acc, k.vec, k.idx, k.pack}] = em.newVal(k.vec, true)
		})
	}

	// vals maps (variable, instance) to its current SSA id.
	vals := map[instKey]int{}
	for k, v := range accVals {
		vals[k] = v
	}

	paramBase := func(name string) uint64 { return ParamBase(tmpl, name) }

	// A software prefetch of a random region covers the next gather on the
	// same parameter: it must generate the same address stream, so it
	// borrows that gather's seed statement index.
	seedIdx := make([]int, len(tmpl.Body))
	for i, stmt := range tmpl.Body {
		seedIdx[i] = i
		if stmt.Op != "prefetch" || len(stmt.Args) == 0 {
			continue
		}
		p, ok := tmpl.Param(stmt.Args[0].Name)
		if !ok || p.Pattern != hid.RandomRegion {
			continue
		}
		for j := i + 1; j < len(tmpl.Body); j++ {
			g := tmpl.Body[j]
			if g.Op == "gather" && len(g.Args) > 0 && g.Args[0].Name == p.Name {
				seedIdx[i] = j
				break
			}
		}
	}

	// Expand each HID statement per Algorithm 1 lines 21-25: packs outermost
	// within the statement, vector instances before scalar instances.
	for si, stmt := range tmpl.Body {
		var err error
		forEachInstance(node, func(k instKey) {
			if err != nil {
				return
			}
			err = emitInstance(em, tmpl, stmt, seedIdx[si], k, node, opt, lanes, elemsPerIter, vals, constScalar, constVector, paramBase)
		})
		if err != nil {
			return nil, err
		}
	}

	// Loop control: offset increment, bound compare, branch.
	if !opt.NoLoopOverhead {
		ofs := em.newVal(false, true)
		em.ops = append(em.ops,
			absOp{instr: isa.MustScalar("add"), dst: ofs, srcs: [3]int{ofs, noVal, noVal}, comment: "ofs += elems"},
			absOp{instr: isa.MustScalar("cmp"), dst: noVal, srcs: [3]int{ofs, noVal, noVal}, comment: "ofs < n"},
			absOp{instr: isa.MustScalar("jcc"), dst: noVal, srcs: [3]int{noVal, noVal, noVal}, comment: "loop"},
		)
	}

	// Register budgets: both files reserve registers for constants, pointer
	// parameters, the loop counter, and pinned accumulators.
	scalarBudget := opt.CPU.GPRegs - len(constScalar) - len(tmpl.Params) - 2
	vectorBudget := opt.CPU.VecRegs - len(constVector)
	for id := 0; id < em.numVals; id++ {
		if em.pinned[id] {
			if em.isVector[id] {
				vectorBudget--
			} else {
				scalarBudget--
			}
		}
	}
	const minBudget = 4
	if scalarBudget < minBudget {
		scalarBudget = minBudget
	}
	if vectorBudget < minBudget {
		vectorBudget = minBudget
	}

	// Value ids become int16 register numbers in uarch.UOp; a node with
	// enough statement instances to overflow that space cannot be
	// represented, only refused (spilling reuses ids, so the count is
	// final here).
	if em.numVals > math.MaxInt16 {
		return nil, fmt.Errorf("translator: %s@%s needs %d values, exceeding the int16 register id space", tmpl.Name, node, em.numVals)
	}

	ops, stores, loads := insertSpills(em, scalarBudget, vectorBudget)

	prog := &uarch.Program{
		Name:         fmt.Sprintf("%s@%s", tmpl.Name, node),
		NumRegs:      em.numVals,
		ElemsPerIter: elemsPerIter,
	}
	if node.V > 0 {
		prog.VectorStatements = node.V
		prog.VectorWidth = opt.Width
	}
	for _, op := range ops {
		u := uarch.UOp{Instr: op.instr, Dst: int16(op.dst), Addr: op.addr, Comment: op.comment}
		if op.dst == noVal {
			u.Dst = uarch.NoReg
		}
		for i, s := range op.srcs {
			if s == noVal {
				u.Srcs[i] = uarch.NoReg
			} else {
				u.Srcs[i] = int16(s)
			}
		}
		prog.Body = append(prog.Body, u)
	}
	out := &Output{
		Program:      prog,
		Node:         node,
		SpillStores:  stores,
		SpillLoads:   loads,
		ElemsPerIter: elemsPerIter,
	}
	out.Source = renderSource(tmpl, node, opt, lanes)
	return out, nil
}

// ParamBase returns the virtual base address the translator assigns to a
// pointer parameter of the template — the address the experiment harness
// warms in the cache hierarchy before timing a stage.
// sortedConstNames returns the template's constant names in sorted order —
// the canonical iteration order for everything derived from the Consts map.
func sortedConstNames(tmpl *hid.Template) []string {
	names := make([]string, 0, len(tmpl.Consts))
	for name := range tmpl.Consts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func ParamBase(tmpl *hid.Template, name string) uint64 {
	for i := range tmpl.Params {
		if tmpl.Params[i].Name == name {
			return uint64(i+1) << 32
		}
	}
	return 0
}

// MustTranslate panics on error, for statically-known templates and nodes.
func MustTranslate(tmpl *hid.Template, node Node, opt Options) *Output {
	out, err := Translate(tmpl, node, opt)
	if err != nil {
		panic(fmt.Sprintf("translator: MustTranslate(%s, %s): %v", tmpl.Name, node, err))
	}
	return out
}

// instKey identifies one statement instance: vector-or-scalar, the instance
// index within the pack, and the pack index.
type instKey struct {
	name string
	vec  bool
	idx  int
	pack int
}

// forEachInstance visits the pack/vector/scalar instance grid in Algorithm 1
// order (pack outermost, vector instances before scalar ones). The name field
// of the visited key is empty; callers fill it per variable.
func forEachInstance(node Node, f func(instKey)) {
	for j := 0; j < node.P; j++ {
		for k := 0; k < node.V; k++ {
			f(instKey{vec: true, idx: k, pack: j})
		}
		for n := 0; n < node.S; n++ {
			f(instKey{vec: false, idx: n, pack: j})
		}
	}
}

// elemOffset returns the element offset of an instance within one iteration,
// matching Fig. 6: packs are laid out contiguously, vector instances first.
func elemOffset(node Node, lanes int, k instKey) int {
	packStride := node.V*lanes + node.S
	off := k.pack * packStride
	if k.vec {
		return off + k.idx*lanes
	}
	return off + node.V*lanes + k.idx
}

// emitInstance lowers one HID statement instance to an abstract op.
func emitInstance(
	em *emitter, tmpl *hid.Template, stmt hid.Stmt, stmtIdx int, k instKey,
	node Node, opt Options, lanes, elemsPerIter int,
	vals map[instKey]int, constScalar, constVector map[string]int,
	paramBase func(string) uint64,
) error {
	desc, err := isa.Describe(stmt.Op)
	if err != nil {
		return err
	}
	var in *isa.Instr
	if k.vec {
		in, err = desc.VectorInstr(opt.Width)
	} else {
		in, err = desc.ScalarInstr()
	}
	if err != nil {
		return fmt.Errorf("translator: %s: lowering %q: %w", tmpl.Name, stmt.Op, err)
	}

	// Resolve register sources.
	srcs := [3]int{noVal, noVal, noVal}
	nsrc := 0
	addSrc := func(id int) {
		if nsrc < 3 {
			srcs[nsrc] = id
			nsrc++
		}
	}
	resolve := func(o hid.Operand) (int, error) {
		switch o.Kind {
		case hid.VarRef:
			id, ok := vals[instKey{o.Name, k.vec, k.idx, k.pack}]
			if !ok {
				return 0, fmt.Errorf("translator: %s: no instance value for %q (%+v)", tmpl.Name, o.Name, k)
			}
			return id, nil
		case hid.ConstRef:
			if k.vec {
				return constVector[o.Name], nil
			}
			return constScalar[o.Name], nil
		case hid.ImmVal:
			return noVal, nil
		}
		return 0, fmt.Errorf("translator: %s: operand %v cannot be a register", tmpl.Name, o)
	}

	suffix := fmt.Sprintf("%s_%d_p%d", map[bool]string{true: "v", false: "s"}[k.vec], k.idx, k.pack)
	op := absOp{instr: in, dst: noVal, vector: k.vec, comment: stmt.Dst + "_" + suffix}

	defineDst := func() {
		if stmt.Dst == "" {
			return
		}
		key := instKey{stmt.Dst, k.vec, k.idx, k.pack}
		if id, ok := vals[key]; ok && em.pinned[id] {
			op.dst = id // accumulator: redefine the pinned register
			return
		}
		op.dst = em.newVal(k.vec, false)
		vals[key] = op.dst
	}

	switch stmt.Op {
	case "load":
		p, _ := tmpl.Param(stmt.Args[0].Name)
		op.addr = uarch.AddrSpec{
			Kind:   uarch.AddrStride,
			Base:   paramBase(p.Name),
			Stride: uint64(tmpl.Elem.Bytes()),
			Offset: uint64(elemOffset(node, lanes, k)),
		}
		defineDst()
	case "store":
		p, _ := tmpl.Param(stmt.Args[0].Name)
		id, err := resolve(stmt.Args[1])
		if err != nil {
			return err
		}
		addSrc(id)
		if p.Pattern == hid.RandomRegion {
			// Scatter into a randomly-addressed region (e.g. a group-by
			// table update).
			region := p.Region
			if region == 0 {
				region = 1 << 20
			}
			op.addr = uarch.AddrSpec{
				Kind:   uarch.AddrRandom,
				Base:   paramBase(p.Name),
				Region: region,
				Seed:   uint64(stmtIdx)<<21 ^ uint64(k.pack)<<9 ^ uint64(k.idx)<<3 ^ boolBit(k.vec),
				Offset: uint64(elemOffset(node, lanes, k)),
			}
		} else {
			op.addr = uarch.AddrSpec{
				Kind:   uarch.AddrStride,
				Base:   paramBase(p.Name),
				Stride: uint64(tmpl.Elem.Bytes()),
				Offset: uint64(elemOffset(node, lanes, k)),
			}
		}
	case "gather":
		p, _ := tmpl.Param(stmt.Args[0].Name)
		region := p.Region
		if region == 0 {
			region = 1 << 20
		}
		id, err := resolve(stmt.Args[1])
		if err != nil {
			return err
		}
		addSrc(id)
		spec := uarch.AddrSpec{
			Kind:   uarch.AddrRandom,
			Base:   paramBase(p.Name),
			Region: region,
			Seed:   uint64(stmtIdx)<<20 ^ uint64(k.pack)<<10 ^ uint64(k.idx)<<4 ^ boolBit(k.vec),
			Offset: uint64(elemOffset(node, lanes, k)),
		}
		if k.vec && in.Lanes == 1 {
			// The target ISA has no gather (the paper's Neon example): a
			// vector instance lowers to one scalar load per lane, "multiple
			// scalar instructions ... to achieve the purpose of interface
			// consistency". The last load defines the instance's value.
			op.srcs = srcs
			for l := 0; l < lanes; l++ {
				laneOp := op
				laneSpec := spec
				laneSpec.LaneSel = uint8(l)
				laneOp.addr = laneSpec
				laneOp.dst = em.newVal(true, false)
				if l == lanes-1 && stmt.Dst != "" {
					vals[instKey{stmt.Dst, k.vec, k.idx, k.pack}] = laneOp.dst
				}
				em.ops = append(em.ops, laneOp)
			}
			return nil
		}
		op.addr = spec
		defineDst()
	case "prefetch":
		p, _ := tmpl.Param(stmt.Args[0].Name)
		region := p.Region
		spec := uarch.AddrSpec{Base: paramBase(p.Name), Offset: uint64(elemOffset(node, lanes, k))}
		if p.Pattern == hid.RandomRegion {
			// Match the covered gather's address stream exactly (same seed
			// formula, same instance coordinates) and emit one prefetch per
			// lane of the covered gather: a vector instance must prefetch
			// the bucket lines of all of its lanes.
			spec.Kind = uarch.AddrRandom
			spec.Region = region
			spec.Seed = uint64(stmtIdx)<<20 ^ uint64(k.pack)<<10 ^ uint64(k.idx)<<4 ^ boolBit(k.vec)
			nLanes := 1
			if k.vec {
				nLanes = lanes
			}
			for l := 0; l < nLanes; l++ {
				laneSpec := spec
				laneSpec.LaneSel = uint8(l)
				laneOp := op
				laneOp.addr = laneSpec
				laneOp.srcs = srcs
				em.ops = append(em.ops, laneOp)
			}
			return nil
		}
		// Stream prefetches run ahead of the demand accesses (the
		// prefetch distance software engines use), so the lines are
		// resident before the loads arrive.
		spec.Kind = uarch.AddrStride
		spec.Stride = uint64(tmpl.Elem.Bytes())
		spec.Offset += streamPrefetchAheadElems
		op.addr = spec
	default: // compute ops
		for _, a := range stmt.Args {
			id, err := resolve(a)
			if err != nil {
				return err
			}
			if id != noVal {
				addSrc(id)
			}
		}
		defineDst()
	}
	op.srcs = srcs
	em.ops = append(em.ops, op)
	return nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
