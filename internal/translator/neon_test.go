package translator

import (
	"testing"

	"hef/internal/hashes"
	"hef/internal/isa"
	"hef/internal/uarch"
)

// The HID is ISA-portable: the murmur template translates unchanged to Neon
// width on the Neoverse model, and the hybrid execution still wins there.
func TestNeonTranslationAndHybridWin(t *testing.T) {
	cpu := isa.NeoverseN1()
	tmpl := hashes.MurmurTemplate()

	out := MustTranslate(tmpl, Node{V: 1, S: 0, P: 1}, Options{Width: isa.W128, CPU: cpu})
	if out.ElemsPerIter != 2 {
		t.Errorf("Neon lanes: ElemsPerIter = %d, want 2", out.ElemsPerIter)
	}
	sawNeon := false
	for _, u := range out.Program.Body {
		if u.Instr.Width == isa.W128 {
			sawNeon = true
		}
		if u.Instr.Width == isa.W256 || u.Instr.Width == isa.W512 {
			t.Fatalf("Neon program contains %s (width %d)", u.Instr.Name, u.Instr.Width)
		}
	}
	if !sawNeon {
		t.Fatal("no 128-bit instructions emitted")
	}

	run := func(n Node) float64 {
		o := MustTranslate(tmpl, n, Options{Width: isa.W128, CPU: cpu})
		res := mustRun(t, uarch.NewSim(cpu), o.Program, 4000)
		return res.Seconds() / float64(res.Elems)
	}
	scalar := run(Node{V: 0, S: 1, P: 1})
	simd := run(Node{V: 1, S: 0, P: 1})
	hybrid := run(Node{V: 2, S: 3, P: 2})
	if hybrid >= scalar || hybrid >= simd {
		t.Errorf("Neon hybrid (%.3g) should beat scalar (%.3g) and SIMD (%.3g)", hybrid, scalar, simd)
	}
}

// Gather on Neon lowers to one scalar load per lane (the paper's interface-
// consistency rule), so a "vector" CRC64 on Neoverse contains scalar loads
// where the AVX-512 build has vpgatherqq.
func TestNeonGatherFallback(t *testing.T) {
	cpu := isa.NeoverseN1()
	tmpl := hashes.CRC64Template()
	out := MustTranslate(tmpl, Node{V: 1, S: 0, P: 1}, Options{Width: isa.W128, CPU: cpu})

	gathers, scalarLoads := 0, 0
	laneSels := map[uint8]bool{}
	for _, u := range out.Program.Body {
		switch u.Instr.Class {
		case isa.GatherOp:
			gathers++
		case isa.Load:
			if u.Instr.Width == isa.W64 && u.Addr.Kind == uarch.AddrRandom {
				scalarLoads++
				laneSels[u.Addr.LaneSel] = true
			}
		}
	}
	if gathers != 0 {
		t.Errorf("Neon build contains %d gather instructions, want 0", gathers)
	}
	// 8 CRC rounds x 2 lanes of scalar fallback loads.
	if scalarLoads != 16 {
		t.Errorf("scalar fallback loads = %d, want 16 (8 rounds x 2 lanes)", scalarLoads)
	}
	if len(laneSels) != 2 {
		t.Errorf("fallback loads should cover both lanes, got %v", laneSels)
	}

	// And the program still runs.
	res := mustRun(t, uarch.NewSim(cpu), out.Program, 500)
	if res.Instructions == 0 {
		t.Error("Neon CRC64 produced no instructions")
	}
}

// The candidate generator adapts to the Neoverse: two Neon pipes, three
// exclusive scalar pipes.
func TestZenTranslation(t *testing.T) {
	cpu := isa.AMDZen2()
	tmpl := hashes.MurmurTemplate()
	out := MustTranslate(tmpl, Node{V: 1, S: 1, P: 2}, Options{Width: isa.W256, CPU: cpu})
	if out.ElemsPerIter != 10 {
		t.Errorf("Zen AVX2: ElemsPerIter = %d, want 2*(4+1)=10", out.ElemsPerIter)
	}
	res := mustRun(t, uarch.NewSim(cpu), out.Program, 1000)
	if res.FreqGHz != cpu.Freq.ScalarGHz {
		t.Errorf("Zen frequency = %.2f, want flat %.2f", res.FreqGHz, cpu.Freq.ScalarGHz)
	}
}
