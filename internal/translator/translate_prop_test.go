package translator

import (
	"testing"
	"testing/quick"

	"hef/internal/hashes"
	"hef/internal/isa"
	"hef/internal/uarch"
)

// Properties that must hold for every valid candidate node.
func TestTranslationInvariants(t *testing.T) {
	tmpl := hashes.MurmurTemplate()
	cpu := isa.XeonSilver4110()
	f := func(v8, s8, p8 uint8) bool {
		n := Node{V: int(v8 % 4), S: int(s8 % 5), P: int(p8%6) + 1}
		if !n.Valid() {
			_, err := Translate(tmpl, n, Options{CPU: cpu})
			return err != nil // invalid nodes must be rejected
		}
		out, err := Translate(tmpl, n, Options{CPU: cpu})
		if err != nil {
			return false
		}
		// Invariant 1: elements per iteration follow the pack formula.
		if out.ElemsPerIter != n.P*(n.V*8+n.S) {
			return false
		}
		// Invariant 2: the program validates and runs.
		if out.Program.Validate() != nil {
			return false
		}
		// Invariant 3: instruction count = instances * statements
		// + loop overhead + spill code.
		want := 13*n.P*(n.V+n.S) + 3 + out.SpillStores + out.SpillLoads
		if len(out.Program.Body) != want {
			return false
		}
		// Invariant 4: vector statements appear iff v > 0.
		hasVec := false
		for _, u := range out.Program.Body {
			if u.Instr.Class.IsVector() {
				hasVec = true
			}
		}
		return hasVec == (n.V > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Simulated work scales with iteration count: running 2k iterations retires
// exactly twice the instructions of k iterations and takes proportionally
// more cycles.
func TestSimulationScalesWithIterations(t *testing.T) {
	tmpl := hashes.MurmurTemplate()
	cpu := isa.XeonSilver4110()
	out := MustTranslate(tmpl, Node{V: 1, S: 2, P: 2}, Options{CPU: cpu})
	sim := uarch.NewSim(cpu)
	if _, err := sim.Run(out.Program, 500); err != nil { // warm-up
		t.Fatal(err)
	}
	r1 := mustRun(t, sim, out.Program, 2000)
	r2 := mustRun(t, sim, out.Program, 4000)
	if r2.Instructions != 2*r1.Instructions {
		t.Errorf("instructions: %d vs %d, want exact 2x", r2.Instructions, r1.Instructions)
	}
	ratio := float64(r2.Cycles) / float64(r1.Cycles)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("cycles ratio = %.3f, want ~2", ratio)
	}
}

// Determinism: translating and simulating the same node twice gives
// identical counters.
func TestSimulationDeterminism(t *testing.T) {
	tmpl := hashes.CRC64Template()
	cpu := isa.XeonGold6240R()
	run := func() *uarch.Result {
		out := MustTranslate(tmpl, Node{V: 2, S: 1, P: 2}, Options{CPU: cpu})
		return mustRun(t, uarch.NewSim(cpu), out.Program, 300)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions ||
		a.Cache.LLCMisses != b.Cache.LLCMisses || a.Hist != b.Hist {
		t.Errorf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}
