package translator

import (
	"sort"

	"hef/internal/isa"
	"hef/internal/uarch"
)

// stackBase is the virtual address of the spill area. It is small and hot,
// so spills mostly hit the L1 cache — their cost is the extra instructions
// and the store/load latency, which is exactly the "register and cache data
// swapping" effect the paper attributes to oversized packs.
const stackBase = uint64(0xF) << 40

// insertSpills rewrites the abstract op list so that at no point more than
// scalarBudget scalar (or vectorBudget vector) non-pinned values are live in
// registers, inserting stack stores and reloads using a furthest-next-use
// eviction policy.
func insertSpills(em *emitter, scalarBudget, vectorBudget int) (out []absOp, stores, loads int) {
	ops := em.ops

	// Collect use positions per value.
	uses := make([][]int32, em.numVals)
	for i := range ops {
		for _, s := range ops[i].srcs {
			if s != noVal {
				uses[s] = append(uses[s], int32(i))
			}
		}
	}
	usePtr := make([]int, em.numVals)

	// nextUse returns the next op index at which id is used after pos, or -1.
	nextUse := func(id int, pos int) int32 {
		u := uses[id]
		p := usePtr[id]
		for p < len(u) && u[p] < int32(pos) {
			p++
		}
		usePtr[id] = p
		if p == len(u) {
			return -1
		}
		return u[p]
	}

	type regSet map[int]struct{}
	inReg := [2]regSet{{}, {}} // [0]=scalar, [1]=vector
	inMem := make([]bool, em.numVals)
	budget := [2]int{scalarBudget, vectorBudget}

	classOf := func(id int) int {
		if em.isVector[id] {
			return 1
		}
		return 0
	}

	spillAddr := func(id int) uarch.AddrSpec {
		return uarch.AddrSpec{Kind: uarch.AddrStack, Base: stackBase, Offset: uint64(id) * 8}
	}

	emitStore := func(id int) {
		in := isa.MustScalar("movq.st")
		if em.isVector[id] {
			in = isa.MustAVX512("vmovdqu64.st")
		}
		out = append(out, absOp{instr: in, dst: noVal, srcs: [3]int{id, noVal, noVal},
			addr: spillAddr(id), vector: em.isVector[id], comment: "spill"})
		stores++
		inMem[id] = true
	}

	emitReload := func(id int) {
		in := isa.MustScalar("movq")
		if em.isVector[id] {
			in = isa.MustAVX512("vmovdqu64")
		}
		out = append(out, absOp{instr: in, dst: id, srcs: [3]int{noVal, noVal, noVal},
			addr: spillAddr(id), vector: em.isVector[id], comment: "reload"})
		loads++
	}

	// evictOne frees a register of class c, preferring the value whose next
	// use is furthest away; keep lists the values that must stay resident.
	// Residents are visited in id order: the victim choice (and with it the
	// emitted spill code) must not depend on map iteration order, or repeated
	// translations of the same node produce different programs.
	evictOne := func(c, pos int, keep [3]int) bool {
		resident := make([]int, 0, len(inReg[c]))
		for id := range inReg[c] {
			resident = append(resident, id)
		}
		sort.Ints(resident)
		victim, victimNext := -1, int32(-2)
		for _, id := range resident {
			if id == keep[0] || id == keep[1] || id == keep[2] {
				continue
			}
			nu := nextUse(id, pos)
			if nu == -1 { // dead: free without spilling
				victim, victimNext = id, -1
				break
			}
			if victimNext != -1 && nu > victimNext {
				victim, victimNext = id, nu
			}
		}
		if victim < 0 {
			return false
		}
		if victimNext != -1 && !inMem[victim] {
			emitStore(victim)
		}
		delete(inReg[c], victim)
		return true
	}

	// ensure brings id into a register before position pos; defining marks a
	// fresh definition (no reload needed).
	ensure := func(id, pos int, keep [3]int, defining bool) {
		if em.pinned[id] {
			return // pinned values have reserved registers
		}
		c := classOf(id)
		if _, ok := inReg[c][id]; ok {
			if defining {
				inMem[id] = false // redefinition invalidates the stack copy
			}
			return
		}
		for len(inReg[c]) >= budget[c] {
			if !evictOne(c, pos, keep) {
				break // everything is kept; allow transient overflow
			}
		}
		if !defining && inMem[id] {
			emitReload(id)
		}
		inReg[c][id] = struct{}{}
		if defining {
			inMem[id] = false
		}
	}

	for i := range ops {
		op := ops[i]
		keep := op.srcs
		for _, s := range op.srcs {
			if s != noVal {
				ensure(s, i, keep, false)
			}
		}
		// Drop sources that die at this op.
		for _, s := range op.srcs {
			if s != noVal && !em.pinned[s] && nextUse(s, i+1) == -1 {
				delete(inReg[classOf(s)], s)
			}
		}
		if op.dst != noVal {
			ensure(op.dst, i, keep, true)
		}
		out = append(out, op)
	}
	return out, stores, loads
}
