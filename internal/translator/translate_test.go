package translator

import (
	"strings"
	"testing"

	"hef/internal/hashes"
	"hef/internal/hid"
	"hef/internal/isa"
	"hef/internal/uarch"
)

func murmur() *hid.Template { return hashes.MurmurTemplate() }

func TestNodeValidity(t *testing.T) {
	valid := []Node{{1, 0, 1}, {0, 1, 1}, {1, 3, 2}, {8, 0, 1}, {0, 4, 8}}
	for _, n := range valid {
		if !n.Valid() {
			t.Errorf("%v should be valid", n)
		}
	}
	invalid := []Node{{0, 0, 1}, {1, 0, 0}, {-1, 1, 1}, {1, -1, 2}}
	for _, n := range invalid {
		if n.Valid() {
			t.Errorf("%v should be invalid", n)
		}
	}
	if _, err := Translate(murmur(), Node{0, 0, 3}, Options{}); err == nil {
		t.Error("Translate should reject invalid nodes")
	}
}

func TestElemsPerIter(t *testing.T) {
	cases := []struct {
		node Node
		want int
	}{
		{Node{1, 0, 1}, 8},  // pure SIMD
		{Node{0, 1, 1}, 1},  // pure scalar
		{Node{1, 3, 2}, 22}, // the paper's Silver murmur optimum
		{Node{2, 3, 2}, 38}, // Fig. 6(c)
		{Node{1, 1, 3}, 27}, // the paper's SSB optimum
	}
	for _, c := range cases {
		out, err := Translate(murmur(), c.node, Options{})
		if err != nil {
			t.Fatalf("Translate(%v): %v", c.node, err)
		}
		if out.ElemsPerIter != c.want {
			t.Errorf("%v: ElemsPerIter = %d, want %d", c.node, out.ElemsPerIter, c.want)
		}
		if out.Program.ElemsPerIter != c.want {
			t.Errorf("%v: Program.ElemsPerIter = %d, want %d", c.node, out.Program.ElemsPerIter, c.want)
		}
	}
}

func TestInstructionCountsScaleWithNode(t *testing.T) {
	// The murmur template has 13 statements. Each becomes p*(v+s) instances,
	// plus 3 loop-control instructions, assuming no spills.
	for _, n := range []Node{{1, 0, 1}, {0, 1, 1}, {1, 3, 2}, {1, 1, 3}} {
		out := MustTranslate(murmur(), n, Options{})
		if out.SpillStores != 0 || out.SpillLoads != 0 {
			t.Errorf("%v: unexpected spills (%d stores, %d loads)", n, out.SpillStores, out.SpillLoads)
		}
		want := 13*n.P*(n.V+n.S) + 3
		if got := len(out.Program.Body); got != want {
			t.Errorf("%v: %d instructions, want %d", n, got, want)
		}
	}
}

func TestLargePackSpills(t *testing.T) {
	// With enough instances live at once, the 32-register budgets must
	// overflow and spill code must appear (the post-optimum slowdown).
	out := MustTranslate(murmur(), Node{1, 3, 12}, Options{})
	if out.SpillStores == 0 && out.SpillLoads == 0 {
		t.Error("v=1 s=3 p=12 should exceed the scalar register budget and spill")
	}
	small := MustTranslate(murmur(), Node{1, 3, 2}, Options{})
	if small.SpillStores != 0 || small.SpillLoads != 0 {
		t.Errorf("v=1 s=3 p=2 should not spill, got %d stores %d loads", small.SpillStores, small.SpillLoads)
	}
}

func TestFig6SourceRendering(t *testing.T) {
	// Fig. 6(b): v=1, s=3, p=2. The generated source must contain the
	// instance naming and offsets shown in the paper.
	out := MustTranslate(murmur(), Node{1, 3, 2}, Options{})
	src := out.Source
	for _, want := range []string{
		"data_v0_p0 = _mm512_loadu_epi64(val + ofs + 0);",
		"data_s0_p0 = *(val + ofs + 8);",
		"data_s1_p0 = *(val + ofs + 9);",
		"data_s2_p0 = *(val + ofs + 10);",
		"data_v0_p1 = _mm512_loadu_epi64(val + ofs + 11);",
		"data_s2_p1 = *(val + ofs + 21);",
		"_mm512_mullo_epi64(data_v0_p0, m_v)",
		"k1_s0_p0 = data_s0_p0 * m_s;",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q\n%s", want, src)
		}
	}

	// Fig. 6(c): v=2, s=3, p=2 shifts the second pack's offsets.
	out = MustTranslate(murmur(), Node{2, 3, 2}, Options{})
	for _, want := range []string{
		"data_v0_p0 = _mm512_loadu_epi64(val + ofs + 0);",
		"data_v1_p0 = _mm512_loadu_epi64(val + ofs + 8);",
		"data_s0_p0 = *(val + ofs + 16);",
		"data_v0_p1 = _mm512_loadu_epi64(val + ofs + 19);",
		"data_v1_p1 = _mm512_loadu_epi64(val + ofs + 27);",
	} {
		if !strings.Contains(out.Source, want) {
			t.Errorf("source missing %q", want)
		}
	}
}

func TestPureScalarHasNoVectorInstructions(t *testing.T) {
	out := MustTranslate(murmur(), Node{0, 2, 2}, Options{})
	for _, u := range out.Program.Body {
		if u.Instr.Class.IsVector() || u.Instr.Width != isa.W64 {
			t.Fatalf("pure scalar program contains vector instruction %s", u.Instr.Name)
		}
	}
	if out.Program.VectorStatements != 0 {
		t.Errorf("VectorStatements = %d, want 0", out.Program.VectorStatements)
	}
}

func TestAVX2Width(t *testing.T) {
	out := MustTranslate(murmur(), Node{1, 0, 1}, Options{Width: isa.W256})
	if out.ElemsPerIter != 4 {
		t.Errorf("AVX2 lanes: ElemsPerIter = %d, want 4", out.ElemsPerIter)
	}
	sawYmm := false
	for _, u := range out.Program.Body {
		if u.Instr.Width == isa.W256 {
			sawYmm = true
		}
		if u.Instr.Width == isa.W512 {
			t.Fatalf("AVX2 program contains 512-bit instruction %s", u.Instr.Name)
		}
	}
	if !sawYmm {
		t.Error("AVX2 program contains no 256-bit instructions")
	}
	if _, err := Translate(murmur(), Node{1, 0, 1}, Options{Width: isa.W64}); err == nil {
		t.Error("W64 should be rejected as a SIMD width")
	}
}

func TestProgramsRunOnSimulator(t *testing.T) {
	cpu := isa.XeonSilver4110()
	for _, n := range []Node{{0, 1, 1}, {1, 0, 1}, {1, 3, 2}, {2, 2, 4}} {
		out := MustTranslate(murmur(), n, Options{CPU: cpu})
		sim := uarch.NewSim(cpu)
		res, err := sim.Run(out.Program, 200)
		if err != nil {
			t.Fatalf("%v: %v", n, err)
		}
		if res.Cycles == 0 || res.Instructions == 0 {
			t.Errorf("%v: empty result %+v", n, res)
		}
	}
}

// The paper's central claim, end to end: on the Silver 4110, the hybrid
// murmur implementation (1 SIMD + 3 scalar statements, pack 2) outperforms
// both the purely scalar and the purely SIMD implementations.
func TestHybridMurmurBeatsBothBaselines(t *testing.T) {
	cpu := isa.XeonSilver4110()
	run := func(n Node) float64 {
		out := MustTranslate(murmur(), n, Options{CPU: cpu})
		res := mustRun(t, uarch.NewSim(cpu), out.Program, 4000)
		return res.Seconds() / float64(res.Elems)
	}
	scalar := run(Node{0, 1, 1})
	simd := run(Node{1, 0, 1})
	hybrid := run(Node{1, 3, 2})
	if hybrid >= scalar {
		t.Errorf("hybrid (%.3g s/elem) should beat scalar (%.3g s/elem)", hybrid, scalar)
	}
	if hybrid >= simd {
		t.Errorf("hybrid (%.3g s/elem) should beat SIMD (%.3g s/elem)", hybrid, simd)
	}
}

// The pack optimisation on CRC64: packing independent gather chains converts
// the 26-cycle latency chain into 5-cycle-throughput streaming (Fig. 3).
func TestPackAcceleratesCRC64(t *testing.T) {
	cpu := isa.XeonSilver4110()
	tmpl := hashes.CRC64Template()
	run := func(n Node) float64 {
		out := MustTranslate(tmpl, n, Options{CPU: cpu})
		res := mustRun(t, uarch.NewSim(cpu), out.Program, 600)
		return res.Seconds() / float64(res.Elems)
	}
	unpacked := run(Node{1, 0, 1})
	packed := run(Node{1, 0, 8})
	if packed >= unpacked/1.5 {
		t.Errorf("packed CRC64 (%.3g s/elem) should be at least 1.5x faster than unpacked (%.3g s/elem)", packed, unpacked)
	}
}

func TestTranslateRejectsBadTemplate(t *testing.T) {
	b := hid.NewTemplate("bad", hid.U64)
	v := b.Stream("v", hid.ReadStream)
	b.Op("x", "nosuchop", v)
	tmpl := &hid.Template{Name: "bad", Elem: hid.U64,
		Params: []hid.Param{{Name: "v", Pattern: hid.ReadStream}},
		Consts: map[string]uint64{},
		Body:   []hid.Stmt{{Dst: "x", Op: "nosuchop", Args: []hid.Operand{hid.Var("y")}}}}
	_ = b
	if _, err := Translate(tmpl, Node{1, 0, 1}, Options{}); err == nil {
		t.Error("Translate should reject templates with unknown ops")
	}
	_ = v
}
