package store

import (
	"fmt"
	"path/filepath"
	"strings"
)

// RewriteFile atomically replaces path with data: temp file in the same
// directory, write, fsync, close, then a single rename into place. It is
// the compaction primitive — the caller's data is derived from the current
// file contents, so unlike SaveRotate no .bak generation is kept: a crash
// at any byte leaves either the old file untouched (the rename never ran)
// or the new file complete (rename is atomic), never a mix of the two.
func RewriteFile(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".compact-*")
	if err != nil {
		return fmt.Errorf("store: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { fsys.Remove(tmpName) }
	if n, err := tmp.Write(data); err != nil || n != len(data) {
		tmp.Close()
		cleanup()
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(data))
		}
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("store: closing temp for %s: %w", path, err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("store: replacing %s: %w", path, err)
	}
	return nil
}

// RemoveStaleTemps deletes leftover RewriteFile temp files for path — the
// residue of a process killed between CreateTemp and the rename. Callers
// run it at open time, before any rewrite of their own is in flight, so a
// bounded directory stays bounded across any number of crashed rewrites.
func RemoveStaleTemps(fsys FS, path string) {
	dir := filepath.Dir(path)
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	prefix := filepath.Base(path) + ".compact-"
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			_ = fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
