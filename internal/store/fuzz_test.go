package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hef/internal/memo"
	"hef/internal/uarch"
)

// FuzzStoreLoad drives the record-log decoder and the full shard-salvage
// path with arbitrary bytes. The contract under test: the decoder never
// panics and never over-reads (the valid prefix is always within the
// input); Open on a directory holding those bytes always yields a usable
// store — arbitrary damage degrades to quarantine + salvage, never to a
// failure or a crash.
func FuzzStoreLoad(f *testing.F) {
	// Seed with a healthy two-record shard and systematic damage to it.
	var k1, k2 memo.Key
	k1[0], k2[0] = 7, 23
	body1, _ := json.Marshal(&uarch.Result{Cycles: 100, Instructions: 400})
	body2, _ := json.Marshal(&uarch.Result{Cycles: 7, Elems: 1})
	healthy := []byte(MemoMagic)
	healthy = AppendRecord(healthy, append(append([]byte(nil), k1[:]...), body1...))
	healthy = AppendRecord(healthy, append(append([]byte(nil), k2[:]...), body2...))

	f.Add([]byte(nil))
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])       // torn final frame
	f.Add(healthy[:len(MemoMagic)+4])     // torn first header
	f.Add([]byte("HEFMEMO1"))             // header only
	f.Add([]byte("NOTMAGIC01234567"))     // bad magic
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // implausible length fields
	flipped := append([]byte(nil), healthy...)
	flipped[len(healthy)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The decoder alone: valid prefix in bounds, typed error, and the
		// prefix property — rescanning the valid prefix is clean.
		n, err := ScanRecords(data, func(payload []byte) error {
			_, _, derr := DecodeMemoPayload(payload)
			return derr
		})
		if n < 0 || n > len(data) {
			t.Fatalf("valid prefix %d out of bounds (input %d bytes)", n, len(data))
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("scan error is not typed ErrCorrupt: %v", err)
		}
		if err == nil && n != len(data) {
			t.Fatalf("clean scan stopped early: %d of %d bytes", n, len(data))
		}
		if m, rerr := ScanRecords(data[:n], nil); rerr != nil || m != n {
			t.Fatalf("valid prefix does not rescan cleanly: len %d err %v (want %d, nil)", m, rerr, n)
		}

		// The full salvage path: a shard holding these bytes must open into
		// a usable store whose accounting covers the whole file.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "memo-00.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on fuzzed shard failed: %v", err)
		}
		defer st.Close()
		stats := st.Stats()
		if stats.Degraded != "" {
			t.Fatalf("fuzzed shard degraded persistence: %s", stats.Degraded)
		}
		// After salvage the shard on disk must be exactly the valid prefix
		// (magic + records), which a second Open loads without quarantining.
		st2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen failed: %v", err)
		}
		defer st2.Close()
		s2 := st2.Stats()
		if s2.Quarantined != 0 {
			t.Fatalf("salvaged shard quarantined again on reopen: %+v", s2)
		}
		if s2.Loaded != stats.Loaded {
			t.Fatalf("reopen loaded %d records, first open loaded %d", s2.Loaded, stats.Loaded)
		}
	})
}

// FuzzSaveRotateLoadFallback fuzzes the torn-primary fallback: whatever
// bytes land in the primary, a LoadFallback with an intact backup must
// return a validating generation and never panic.
func FuzzSaveRotateLoadFallback(f *testing.F) {
	good := []byte(`{"ok":true}`)
	f.Add([]byte(nil))
	f.Add(good)
	f.Add([]byte(`{"ok":`))
	f.Add([]byte{0x00, 0xff})
	f.Fuzz(func(t *testing.T, primary []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "cp.json")
		if err := SaveRotate(OS, path, good); err != nil {
			t.Fatal(err)
		}
		if err := SaveRotate(OS, path, good); err != nil { // rotate a .bak into place
			t.Fatal(err)
		}
		if err := os.WriteFile(path, primary, 0o644); err != nil {
			t.Fatal(err)
		}
		validate := func(d []byte) error {
			if !json.Valid(d) || len(d) == 0 {
				return ErrCorrupt
			}
			return nil
		}
		data, _, err := LoadFallback(OS, path, validate)
		if err != nil {
			t.Fatalf("LoadFallback with an intact backup failed: %v", err)
		}
		if verr := validate(data); verr != nil {
			t.Fatalf("LoadFallback returned a non-validating generation: %q", data)
		}
	})
}
