package store

import "errors"

// The store's typed failure modes. Loaders wrap these so callers can
// distinguish a damaged artifact (restore the backup, quarantine, re-run)
// from a version mismatch (regenerate with the current tool) from a
// configuration mismatch (refuse to mix results) without string matching.
var (
	// ErrCorrupt marks an artifact whose bytes do not decode: torn or
	// truncated writes, bit flips, or a file that is not the claimed format.
	ErrCorrupt = errors.New("store: artifact corrupt")
	// ErrVersionSkew marks an artifact written under a schema version this
	// code does not understand.
	ErrVersionSkew = errors.New("store: artifact version skew")
	// ErrFingerprintMismatch marks an artifact bound to a different
	// configuration fingerprint than the one resuming it.
	ErrFingerprintMismatch = errors.New("store: artifact fingerprint mismatch")
)
