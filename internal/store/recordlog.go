package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record framing. Each record is self-validating:
//
//	u32 LE payload length | u32 LE CRC32C(payload) | payload
//
// A reader that hits a frame whose length is implausible, whose body runs
// past the end of the file, or whose checksum does not match stops there:
// everything before the bad frame is the longest valid prefix (each earlier
// frame checked out independently), everything from it on is unreachable
// and gets quarantined. A torn append — the usual kill -9 artifact — is a
// truncated final frame and costs exactly the record being written.

const (
	// recordHeader is the per-record framing overhead in bytes.
	recordHeader = 8
	// MaxRecordLen bounds a single record's payload; a length field above it
	// is treated as corruption rather than an allocation request, which keeps
	// the decoder safe on adversarial input (see FuzzStoreLoad).
	MaxRecordLen = 1 << 26
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord frames payload onto buf and returns the extended buffer.
func AppendRecord(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// ScanRecords walks the framed records in data, calling fn with each valid
// payload. It returns the length of the valid prefix — the offset of the
// first frame that failed validation, or len(data) when every frame checked
// out — and the error that stopped the scan: nil at a clean end, a wrapped
// ErrCorrupt for a bad frame, or fn's error (which also stops the scan,
// with the offending record excluded from the valid prefix).
//
// The payload passed to fn aliases data; fn must not retain it.
func ScanRecords(data []byte, fn func(payload []byte) error) (validLen int, err error) {
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < recordHeader {
			return off, fmt.Errorf("%w: truncated record header at offset %d (%d trailing bytes)", ErrCorrupt, off, rest)
		}
		n := binary.LittleEndian.Uint32(data[off:])
		if n == 0 || n > MaxRecordLen {
			return off, fmt.Errorf("%w: implausible record length %d at offset %d", ErrCorrupt, n, off)
		}
		if uint32(rest-recordHeader) < n {
			return off, fmt.Errorf("%w: truncated record body at offset %d (need %d, have %d)", ErrCorrupt, off, n, rest-recordHeader)
		}
		want := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+recordHeader : off+recordHeader+int(n)]
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return off, fmt.Errorf("%w: CRC mismatch at offset %d (stored %08x, computed %08x)", ErrCorrupt, off, want, got)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, err
			}
		}
		off += recordHeader + int(n)
	}
	return off, nil
}
