package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sync"
)

// faultFS wraps the real filesystem with switchable failure modes, standing
// in for a disk that fills up (ENOSPC), tears writes short, or is mounted
// read-only. It lives in the store package's tests but is exercised through
// the public FS seam, the same one production code uses.
type faultFS struct {
	mu sync.Mutex
	// failWrites makes every File.Write return ENOSPC.
	failWrites bool
	// shortWrites makes every File.Write report half the bytes with no error
	// once, then ENOSPC (the kernel's short-write-then-fail pattern).
	shortWrites bool
	// readOnly fails every mutating operation with EROFS.
	readOnly bool
	// failTruncate fails only Truncate (a shard whose bad tail can't be
	// trimmed in place must be compacted wholesale at Close).
	failTruncate bool
}

var errNoSpace = errors.New("no space left on device")
var errReadOnly = errors.New("read-only file system")

func (f *faultFS) set(mode func(*faultFS)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mode(f)
}

func (f *faultFS) state() (failWrites, shortWrites, readOnly bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failWrites, f.shortWrites, f.readOnly
}

func (f *faultFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (f *faultFS) OpenAppend(path string) (File, error) {
	if _, _, ro := f.state(); ro {
		return nil, errReadOnly
	}
	file, err := OS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	if _, _, ro := f.state(); ro {
		return nil, errReadOnly
	}
	file, err := OS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *faultFS) Rename(oldPath, newPath string) error {
	if _, _, ro := f.state(); ro {
		return errReadOnly
	}
	return os.Rename(oldPath, newPath)
}

func (f *faultFS) Remove(path string) error {
	if _, _, ro := f.state(); ro {
		return errReadOnly
	}
	return os.Remove(path)
}

func (f *faultFS) MkdirAll(dir string) error {
	if _, _, ro := f.state(); ro {
		return errReadOnly
	}
	return os.MkdirAll(dir, 0o755)
}

func (f *faultFS) Truncate(path string, size int64) error {
	f.mu.Lock()
	ro, ft := f.readOnly, f.failTruncate
	f.mu.Unlock()
	if ro || ft {
		return errReadOnly
	}
	return os.Truncate(path, size)
}

func (f *faultFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

func (f *faultFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

type faultFile struct {
	File
	fs       *faultFS
	shortHit bool
}

func (f *faultFile) Write(p []byte) (int, error) {
	failWrites, shortWrites, readOnly := f.fs.state()
	if readOnly {
		return 0, errReadOnly
	}
	if failWrites {
		return 0, errNoSpace
	}
	if shortWrites {
		if f.shortHit {
			return 0, errNoSpace
		}
		// Half the bytes land on disk, then the failure surfaces — the torn
		// frame is what the next Open must salvage around.
		f.shortHit = true
		n, _ := f.File.Write(p[:len(p)/2])
		return n, io.ErrShortWrite
	}
	return f.File.Write(p)
}
