// Package store is the crash- and corruption-tolerant on-disk artifact
// layer shared by the measurement memo cache and the sweep checkpoints.
//
// Two durability primitives live here:
//
//   - A sharded, append-only record log with per-record CRC32C framing
//     (recordlog.go) backing the persistent memo store (memostore.go). Load
//     salvages the longest valid prefix of each shard; everything after the
//     first bad frame is moved into a `.quarantine` sidecar and the shard is
//     truncated, so a corrupt entry costs a cache miss, never a failed
//     sweep.
//
//   - Rotated atomic file replacement with torn-primary fallback
//     (safefile.go) backing checkpoint persistence: every save keeps the
//     previous generation as `.bak`, and load falls back to it when the
//     primary is torn, truncated, or bit-flipped.
//
// All filesystem access goes through the FS interface so tests can inject
// ENOSPC, short writes, and read-only directories.
package store

import (
	"io/fs"
	"os"
)

// File is the writable-file surface the store needs: sequential writes,
// fsync, close, and the name for rename-into-place.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS abstracts the few filesystem operations the store performs, so tests
// can simulate degraded I/O (ENOSPC, short writes, read-only directories)
// without touching the real disk's failure modes.
type FS interface {
	ReadFile(path string) ([]byte, error)
	OpenAppend(path string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	MkdirAll(dir string) error
	Truncate(path string, size int64) error
	Stat(path string) (fs.FileInfo, error)
	ReadDir(dir string) ([]fs.DirEntry, error)
}

// OS is the production FS, backed by the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }
