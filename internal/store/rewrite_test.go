package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRewriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	if err := os.WriteFile(path, []byte("old generation"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RewriteFile(OS, path, []byte("new generation")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new generation" {
		t.Fatalf("content = %q", got)
	}
	// The temp is renamed, not copied: nothing else remains in the dir.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries after rewrite, want only the target", len(entries))
	}

	// Rewrite also creates a file that does not exist yet.
	fresh := filepath.Join(dir, "fresh")
	if err := RewriteFile(OS, fresh, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal(err)
	}
}

// A failed rewrite leaves the old generation untouched and no temp behind.
func TestRewriteFileFailureKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	if err := os.WriteFile(path, []byte("old generation"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := &faultFS{}
	fsys.set(func(f *faultFS) { f.failWrites = true })
	if err := RewriteFile(fsys, path, []byte("doomed")); err == nil {
		t.Fatal("rewrite succeeded with every write failing")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old generation" {
		t.Fatalf("old generation damaged: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("failed rewrite left %d entries, want only the target", len(entries))
	}
}

// RemoveStaleTemps clears exactly the crashed-rewrite residue for its path:
// same-prefix temps go, the target and unrelated files stay.
func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.log")
	keep := map[string]bool{"jobs.log": true, "jobs.log.quarantine": true, "other.compact-1": true}
	files := []string{"jobs.log", "jobs.log.quarantine", "other.compact-1",
		"jobs.log.compact-123", "jobs.log.compact-9xyz"}
	for _, name := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	RemoveStaleTemps(OS, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !keep[e.Name()] {
			t.Errorf("stale temp survived: %s", e.Name())
		}
		delete(keep, e.Name())
	}
	for name := range keep {
		t.Errorf("non-temp file removed: %s", name)
	}
	// A missing directory is a no-op, not a panic.
	RemoveStaleTemps(OS, filepath.Join(dir, "absent", "jobs.log"))
	// And the prefix match is anchored at the base name.
	if strings.HasPrefix("jobs.log2.compact-1", filepath.Base(path)+".compact-") {
		t.Fatal("prefix would misfire on a sibling file")
	}
}
