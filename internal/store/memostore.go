package store

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"

	"hef/internal/memo"
	"hef/internal/uarch"
)

// MemoMagic is the 8-byte header of a memo shard file: format name plus a
// one-digit format version. Bumping the record or payload layout bumps the
// digit, and Open quarantines whole shards written under another one.
const MemoMagic = "HEFMEMO1"

// MemoShards is the number of record-log files a memo store spreads its
// entries over (by the first fingerprint byte), bounding the cost of
// rewriting any one of them during compaction.
const MemoShards = 16

// MemoStats counts what the durable layer did, alongside the in-memory
// cache's hit/miss counters (memo.Stats).
type MemoStats struct {
	// Loaded counts records restored from disk at Open.
	Loaded uint64
	// Persisted counts records appended by this process.
	Persisted uint64
	// Quarantined counts corruption events handled at Open; each event moved
	// the invalid suffix of one shard into its .quarantine sidecar.
	Quarantined uint64
	// QuarantinedBytes is the total size of those suffixes, and
	// SalvagedBytes the valid prefixes kept in the affected shards.
	QuarantinedBytes uint64
	SalvagedBytes    uint64
	// Degraded describes the first persistence failure (ENOSPC, read-only
	// directory, ...); non-empty means later entries stay in memory only.
	Degraded string
}

// Summary renders the counters as the one-line form the CLI tools print to
// stderr after a -memo-dir run.
func (s MemoStats) Summary() string {
	out := fmt.Sprintf("%d loaded, %d persisted", s.Loaded, s.Persisted)
	if s.Quarantined > 0 {
		out += fmt.Sprintf(", %d corrupt region(s) quarantined (%d bytes, %d salvaged)",
			s.Quarantined, s.QuarantinedBytes, s.SalvagedBytes)
	}
	if s.Degraded != "" {
		out += "; persistence degraded: " + s.Degraded
	}
	return out
}

// MemoStore is a persistent backing for the content-addressed measurement
// memo: a directory of sharded, append-only record logs. Open salvages
// whatever is valid on disk into a fresh memo.Cache and subscribes to its
// Puts, so every new measurement is appended durably as it is made; a later
// Open — in this process or the next — starts warm.
//
// Corruption is never fatal: a bad frame costs the entries at and after it
// in that one shard (they become cache misses and are re-measured), and the
// bad bytes are preserved in a `.quarantine` sidecar for post-mortem.
// Likewise I/O failure is never fatal: the first append error switches the
// store into a degraded, memory-only mode recorded in Stats().Degraded.
type MemoStore struct {
	dir string
	fs  FS

	cache *memo.Cache

	mu        sync.Mutex
	appenders [MemoShards]File
	compact   [MemoShards]bool
	buf       []byte
	stats     MemoStats
	closed    bool
}

// memoRecord is the JSON payload of one persisted measurement (after the
// 16-byte raw fingerprint that prefixes it inside the record frame).
//
// Additive fields in uarch.Result are forward-compatible; renamed or
// re-typed fields must bump MemoMagic instead.

// Open opens (creating if needed) the persistent memo store in dir, loading
// every salvageable record. It fails only when the directory itself is
// unusable — damaged or unreadable shard contents degrade or quarantine
// instead — so callers treat an error as "run without persistence".
func Open(dir string) (*MemoStore, error) { return OpenFS(OS, dir) }

// OpenFS is Open with an injectable filesystem (for degraded-I/O tests).
func OpenFS(fsys FS, dir string) (*MemoStore, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		if _, statErr := fsys.Stat(dir); statErr != nil {
			return nil, fmt.Errorf("store: memo dir %s: %w", dir, err)
		}
		// The directory exists but is not writable (read-only volume):
		// loading still works, persistence degrades on first append.
	}
	s := &MemoStore{dir: dir, fs: fsys, cache: memo.NewCache()}
	for shard := 0; shard < MemoShards; shard++ {
		s.loadShard(shard)
	}
	s.cache.OnPut(s.persist)
	return s, nil
}

// Cache returns the in-memory cache view of the store. It is the value
// handed to evaluators and experiment drivers; the store persists its Puts
// transparently.
func (s *MemoStore) Cache() *memo.Cache { return s.cache }

// Dir returns the store's directory.
func (s *MemoStore) Dir() string { return s.dir }

// Stats snapshots the durable layer's counters.
func (s *MemoStore) Stats() MemoStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// shardPath names shard i's record log.
func (s *MemoStore) shardPath(shard int) string {
	return filepath.Join(s.dir, fmt.Sprintf("memo-%02x.log", shard))
}

// shardOf maps a fingerprint to its shard.
func shardOf(k memo.Key) int { return int(k[0]) % MemoShards }

// loadShard salvages one shard file: decode the longest valid prefix into
// the cache, quarantine anything after it, and truncate the file back to
// the valid prefix so later appends land on a clean tail.
func (s *MemoStore) loadShard(shard int) {
	path := s.shardPath(shard)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		// Missing shard files are the common case (fresh store, sparse key
		// space); other read errors degrade persistence for safety — we
		// cannot append to a file we cannot account for.
		if _, statErr := s.fs.Stat(path); statErr != nil {
			return
		}
		s.degrade(fmt.Sprintf("reading %s: %v", path, err))
		return
	}
	validLen := 0
	if len(data) < len(MemoMagic) || string(data[:len(MemoMagic)]) != MemoMagic {
		if len(data) > 0 {
			s.quarantine(shard, path, 0, data, fmt.Sprintf("%v: bad shard header", ErrCorrupt))
		}
	} else {
		n, scanErr := ScanRecords(data[len(MemoMagic):], func(payload []byte) error {
			if len(payload) <= len(memo.Key{}) {
				return fmt.Errorf("%w: record payload too short for a fingerprint (%d bytes)", ErrCorrupt, len(payload))
			}
			var k memo.Key
			copy(k[:], payload)
			var res uarch.Result
			if err := json.Unmarshal(payload[len(k):], &res); err != nil {
				return fmt.Errorf("%w: undecodable result payload: %v", ErrCorrupt, err)
			}
			s.cache.Put(k, &res)
			s.stats.Loaded++
			return nil
		})
		validLen = len(MemoMagic) + n
		if scanErr != nil {
			s.quarantine(shard, path, validLen, data[validLen:], scanErr.Error())
		}
	}
	if validLen < len(data) {
		s.stats.SalvagedBytes += uint64(validLen)
		if err := s.fs.Truncate(path, int64(validLen)); err != nil {
			// Can't trim the bad tail in place (read-only volume): remember
			// to rewrite the whole shard from memory at Close instead, so
			// appends never land after garbage.
			s.compact[shard] = true
		}
	}
}

// quarantine preserves the invalid suffix of a shard in its sidecar file:
// a one-line JSON header describing the event, then the raw bytes.
func (s *MemoStore) quarantine(shard int, path string, offset int, bad []byte, reason string) {
	s.stats.Quarantined++
	s.stats.QuarantinedBytes += uint64(len(bad))
	side, err := s.fs.OpenAppend(path + ".quarantine")
	if err != nil {
		s.degrade(fmt.Sprintf("opening quarantine sidecar for %s: %v", path, err))
		return
	}
	meta, _ := json.Marshal(map[string]any{
		"shard": shard, "offset": offset, "bytes": len(bad), "reason": reason,
	})
	if _, err := side.Write(append(append(meta, '\n'), bad...)); err != nil {
		s.degrade(fmt.Sprintf("writing quarantine sidecar for %s: %v", path, err))
	}
	if err := side.Close(); err != nil && s.stats.Degraded == "" {
		s.degrade(fmt.Sprintf("closing quarantine sidecar for %s: %v", path, err))
	}
}

// degrade records the first persistence failure and stops writing. The
// in-memory cache keeps serving hits; only durability is lost.
func (s *MemoStore) degrade(reason string) {
	if s.stats.Degraded == "" {
		s.stats.Degraded = reason
	}
}

// persist appends one new cache entry to its shard. It is the cache's OnPut
// hook, so it runs on whatever goroutine measured the entry; the store's
// mutex serialises the appends.
func (s *MemoStore) persist(k memo.Key, r *uarch.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.stats.Degraded != "" {
		return
	}
	body, err := json.Marshal(r)
	if err != nil {
		s.degrade(fmt.Sprintf("encoding result %x: %v", k, err))
		return
	}
	shard := shardOf(k)
	if s.compact[shard] {
		// The shard still carries a bad tail Open could not trim; appending
		// after it would be unreachable. The entry stays in memory and lands
		// on disk when Close rewrites the shard wholesale.
		return
	}
	f, err := s.appender(shard)
	if err != nil {
		s.degrade(err.Error())
		return
	}
	s.buf = s.buf[:0]
	payload := append(append(s.buf, k[:]...), body...)
	s.buf = AppendRecord(payload[:0:0], payload)
	// One Write call per record: an interrupted process tears at most the
	// final frame, which the next Open's CRC scan drops and quarantines.
	if n, err := f.Write(s.buf); err != nil || n != len(s.buf) {
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(s.buf))
		}
		s.degrade(fmt.Sprintf("appending to %s: %v", s.shardPath(shard), err))
		return
	}
	s.stats.Persisted++
}

// appender returns shard's open append handle, creating the file (with its
// header) on first use. The header is also (re)written when the file exists
// but is empty — the state a bad-magic shard is left in after its whole
// content was quarantined and truncated away.
func (s *MemoStore) appender(shard int) (File, error) {
	if f := s.appenders[shard]; f != nil {
		return f, nil
	}
	path := s.shardPath(shard)
	info, statErr := s.fs.Stat(path)
	f, err := s.fs.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("opening %s for append: %v", path, err)
	}
	if statErr != nil || info.Size() == 0 {
		if _, err := f.Write([]byte(MemoMagic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("writing header of %s: %v", path, err)
		}
	}
	s.appenders[shard] = f
	return f, nil
}

// Close flushes and closes every shard, compacting the ones whose bad tail
// could not be truncated in place at Open (each is rewritten atomically
// from the in-memory entries). Close is idempotent; the cache stays usable
// (memory-only) afterwards.
func (s *MemoStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for shard, f := range s.appenders {
		if f == nil {
			continue
		}
		if err := f.Sync(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("store: syncing %s: %w", s.shardPath(shard), err)
		}
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("store: closing %s: %w", s.shardPath(shard), err)
		}
		s.appenders[shard] = nil
	}
	for shard := 0; shard < MemoShards; shard++ {
		if !s.compact[shard] {
			continue
		}
		if err := s.compactShard(shard); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// compactShard rewrites one shard from the in-memory entries: temp file,
// fsync, rename — the same crash discipline as checkpoint saves.
func (s *MemoStore) compactShard(shard int) error {
	path := s.shardPath(shard)
	buf := []byte(MemoMagic)
	var encErr error
	s.cache.Range(func(k memo.Key, r *uarch.Result) {
		if shardOf(k) != shard || encErr != nil {
			return
		}
		body, err := json.Marshal(r)
		if err != nil {
			encErr = err
			return
		}
		buf = AppendRecord(buf, append(append([]byte(nil), k[:]...), body...))
	})
	if encErr != nil {
		return fmt.Errorf("store: compacting %s: %w", path, encErr)
	}
	if err := SaveRotate(s.fs, path, buf); err != nil {
		return fmt.Errorf("store: compacting %s: %w", path, err)
	}
	return nil
}

// IsShardFile reports whether name looks like a memo shard log (used by
// artifact-type detection in hefdoctor).
func IsShardFile(name string) bool {
	base := filepath.Base(name)
	return strings.HasPrefix(base, "memo-") && strings.HasSuffix(base, ".log")
}

// DecodeMemoPayload splits one shard record payload into its fingerprint
// and decoded result. It is the decoding step hefdoctor and the fuzz
// targets share with loadShard.
func DecodeMemoPayload(payload []byte) (memo.Key, *uarch.Result, error) {
	var k memo.Key
	if len(payload) <= len(k) {
		return k, nil, fmt.Errorf("%w: record payload too short for a fingerprint (%d bytes)", ErrCorrupt, len(payload))
	}
	copy(k[:], payload)
	var res uarch.Result
	if err := json.Unmarshal(payload[len(k):], &res); err != nil {
		return k, nil, fmt.Errorf("%w: undecodable result payload: %v", ErrCorrupt, err)
	}
	return k, &res, nil
}
