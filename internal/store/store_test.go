package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hef/internal/memo"
	"hef/internal/uarch"
)

// testKey returns a fingerprint that lands in shard (b % MemoShards) and is
// unique per (b, i).
func testKey(b byte, i int) memo.Key {
	var k memo.Key
	k[0] = b
	k[1] = byte(i)
	k[2] = byte(i >> 8)
	return k
}

func testResult(i int) *uarch.Result {
	return &uarch.Result{Cycles: uint64(1000 + i), Instructions: uint64(10 * i), Uops: uint64(12 * i)}
}

func TestRecordLogRoundTrip(t *testing.T) {
	var buf []byte
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("payload-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		want = append(want, p)
		buf = AppendRecord(buf, p)
	}
	var got [][]byte
	n, err := ScanRecords(buf, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil || n != len(buf) {
		t.Fatalf("clean scan: n=%d want %d, err=%v", n, len(buf), err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestRecordLogStopsAtCorruption(t *testing.T) {
	var buf []byte
	var offsets []int
	for i := 0; i < 10; i++ {
		offsets = append(offsets, len(buf))
		buf = AppendRecord(buf, []byte(fmt.Sprintf("record-%d", i)))
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
		want   int // expected valid prefix: index into offsets, -1 for full length
	}{
		{"flip payload byte in record 6", func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[offsets[6]+recordHeader] ^= 0x01
			return b
		}, 6},
		{"flip CRC byte in record 3", func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[offsets[3]+4] ^= 0x80
			return b
		}, 3},
		{"truncate mid final record", func(b []byte) []byte {
			return b[:len(b)-3]
		}, 9},
		{"truncate mid header", func(b []byte) []byte {
			return b[:offsets[5]+4]
		}, 5},
		{"huge length field", func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[offsets[2]+3] = 0xFF
			return b
		}, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(buf)
			count := 0
			n, err := ScanRecords(data, func([]byte) error { count++; return nil })
			if err == nil {
				t.Fatal("want a corruption error")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v is not ErrCorrupt", err)
			}
			if n != offsets[tc.want] {
				t.Fatalf("valid prefix %d, want %d", n, offsets[tc.want])
			}
			if count != tc.want {
				t.Fatalf("delivered %d records, want %d", count, tc.want)
			}
		})
	}
}

func TestMemoStorePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		s.Cache().Put(testKey(byte(i), i), testResult(i))
	}
	if st := s.Stats(); st.Persisted != n || st.Degraded != "" {
		t.Fatalf("stats after puts: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Loaded != n || st.Quarantined != 0 {
		t.Fatalf("stats after reload: %+v", st)
	}
	for i := 0; i < n; i++ {
		r, ok := s2.Cache().Get(testKey(byte(i), i))
		if !ok {
			t.Fatalf("entry %d missing after reload", i)
		}
		if want := testResult(i); r.Cycles != want.Cycles || r.Uops != want.Uops {
			t.Fatalf("entry %d: got %+v want %+v", i, r, want)
		}
	}
}

// TestMemoStoreDedupesOverwrites checks Put of an existing key neither
// re-persists nor miscounts.
func TestMemoStoreDedupesOverwrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1, 1)
	s.Cache().Put(k, testResult(1))
	s.Cache().Put(k, testResult(1))
	s.Cache().Put(k, testResult(1))
	if st := s.Stats(); st.Persisted != 1 {
		t.Fatalf("persisted %d, want 1", st.Persisted)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Loaded != 1 {
		t.Fatalf("loaded %d, want 1", st.Loaded)
	}
}

func TestMemoStoreSalvagesCorruptShard(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 6 entries in shard 2, 4 in shard 5.
	for i := 0; i < 6; i++ {
		s.Cache().Put(testKey(2, i), testResult(i))
	}
	for i := 0; i < 4; i++ {
		s.Cache().Put(testKey(5, 100+i), testResult(100+i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of shard 2 (past the magic and a couple of
	// records) — everything from the damaged frame on must be quarantined.
	shard2 := filepath.Join(dir, "memo-02.log")
	data, err := os.ReadFile(shard2)
	if err != nil {
		t.Fatal(err)
	}
	origLen := len(data)
	data[origLen/2] ^= 0x40
	if err := os.WriteFile(shard2, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined events = %d, want 1 (stats %+v)", st.Quarantined, st)
	}
	if st.Loaded >= 10 || st.Loaded < 4 {
		t.Fatalf("loaded %d entries; want the 4 from shard 5 plus a strict subset of shard 2", st.Loaded)
	}
	if st.QuarantinedBytes == 0 || st.SalvagedBytes == 0 {
		t.Fatalf("byte accounting missing: %+v", st)
	}
	// Shard 5 untouched.
	for i := 0; i < 4; i++ {
		if _, ok := s2.Cache().Get(testKey(5, 100+i)); !ok {
			t.Fatalf("shard-5 entry %d lost", i)
		}
	}
	// Sidecar holds the bad suffix; shard file was truncated to the valid
	// prefix.
	side, err := os.ReadFile(shard2 + ".quarantine")
	if err != nil {
		t.Fatalf("quarantine sidecar: %v", err)
	}
	if len(side) == 0 {
		t.Fatal("empty quarantine sidecar")
	}
	fi, err := os.Stat(shard2)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(origLen) {
		t.Fatalf("shard not truncated: %d >= %d", fi.Size(), origLen)
	}

	// New entries appended after salvage must survive the next open: the
	// truncation put the append position at the end of the valid prefix.
	missing := 0
	for i := 0; i < 6; i++ {
		if _, ok := s2.Cache().Get(testKey(2, i)); !ok {
			missing++
			s2.Cache().Put(testKey(2, i), testResult(i))
		}
	}
	if missing == 0 {
		t.Fatal("corruption cost no entries?")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.Loaded != 10 || st.Quarantined != 0 {
		t.Fatalf("after repair reload: %+v", st)
	}
}

func TestMemoStoreQuarantinesBadMagic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Cache().Put(testKey(3, 0), testResult(7))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Join(dir, "memo-03.log")
	data, _ := os.ReadFile(shard)
	data[0] = 'X'
	os.WriteFile(shard, data, 0o644)

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Loaded != 0 || st.Quarantined != 1 || st.QuarantinedBytes != uint64(len(data)) {
		t.Fatalf("bad-magic stats: %+v", st)
	}
	if fi, err := os.Stat(shard); err != nil || fi.Size() != 0 {
		t.Fatalf("shard should be truncated to empty, got size=%v err=%v", fi, err)
	}
}

func TestSaveRotateAndLoadFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	okJSON := func(data []byte) error {
		if !bytes.HasPrefix(data, []byte("gen")) {
			return fmt.Errorf("%w: bad prefix", ErrCorrupt)
		}
		return nil
	}

	if err := SaveRotate(OS, path, []byte("gen1")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + BackupSuffix); !os.IsNotExist(err) {
		t.Fatalf("backup should not exist after first save: %v", err)
	}
	if err := SaveRotate(OS, path, []byte("gen2")); err != nil {
		t.Fatal(err)
	}
	bak, err := os.ReadFile(path + BackupSuffix)
	if err != nil || string(bak) != "gen1" {
		t.Fatalf("backup = %q, %v; want gen1", bak, err)
	}

	data, fromBackup, err := LoadFallback(OS, path, okJSON)
	if err != nil || fromBackup || string(data) != "gen2" {
		t.Fatalf("clean load: %q %v %v", data, fromBackup, err)
	}

	// Tear the primary: fallback serves gen1 and flags it.
	if err := os.WriteFile(path, []byte("torn!"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, fromBackup, err = LoadFallback(OS, path, okJSON)
	if err != nil || !fromBackup || string(data) != "gen1" {
		t.Fatalf("fallback load: %q %v %v", data, fromBackup, err)
	}

	// Both generations bad: the primary's error wins.
	if err := os.WriteFile(path+BackupSuffix, []byte("also torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadFallback(OS, path, okJSON)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}

	// Missing primary, valid backup.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+BackupSuffix, []byte("gen1"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, fromBackup, err = LoadFallback(OS, path, okJSON)
	if err != nil || !fromBackup || string(data) != "gen1" {
		t.Fatalf("backup-only load: %q %v %v", data, fromBackup, err)
	}
}

func TestMemoStoreDegradesOnENOSPC(t *testing.T) {
	dir := t.TempDir()
	fsys := &faultFS{}
	s, err := OpenFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Cache().Put(testKey(0, 0), testResult(0))
	if st := s.Stats(); st.Persisted != 1 || st.Degraded != "" {
		t.Fatalf("healthy stats: %+v", st)
	}

	fsys.set(func(f *faultFS) { f.failWrites = true })
	for i := 1; i < 5; i++ {
		s.Cache().Put(testKey(byte(i), i), testResult(i))
	}
	st := s.Stats()
	if st.Degraded == "" {
		t.Fatal("store should be degraded after ENOSPC")
	}
	if st.Persisted != 1 {
		t.Fatalf("persisted %d, want 1 (no appends after degrade)", st.Persisted)
	}
	// The cache itself keeps working — degraded means memory-only, not broken.
	for i := 0; i < 5; i++ {
		if _, ok := s.Cache().Get(testKey(byte(i), i)); !ok {
			t.Fatalf("in-memory entry %d lost after degrade", i)
		}
	}
}

func TestMemoStoreShortWriteTornFrameSalvaged(t *testing.T) {
	dir := t.TempDir()
	fsys := &faultFS{}
	s, err := OpenFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Cache().Put(testKey(4, 0), testResult(0))
	fsys.set(func(f *faultFS) { f.shortWrites = true })
	s.Cache().Put(testKey(4, 1), testResult(1)) // torn: half the frame lands
	if st := s.Stats(); st.Degraded == "" || st.Persisted != 1 {
		t.Fatalf("short-write stats: %+v", st)
	}
	fsys.set(func(f *faultFS) { f.shortWrites = false })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Loaded != 1 || st.Quarantined != 1 {
		t.Fatalf("salvage of torn frame: %+v", st)
	}
	if _, ok := s2.Cache().Get(testKey(4, 0)); !ok {
		t.Fatal("intact record lost")
	}
}

func TestMemoStoreReadOnlyDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Cache().Put(testKey(6, 0), testResult(3))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	fsys := &faultFS{}
	fsys.set(func(f *faultFS) { f.readOnly = true })
	s2, err := OpenFS(fsys, dir)
	if err != nil {
		t.Fatalf("read-only open must still load: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Loaded != 1 {
		t.Fatalf("read-only load: %+v", st)
	}
	if _, ok := s2.Cache().Get(testKey(6, 0)); !ok {
		t.Fatal("loaded entry missing")
	}
	s2.Cache().Put(testKey(7, 1), testResult(4))
	if st := s2.Stats(); st.Degraded == "" || st.Persisted != 0 {
		t.Fatalf("read-only put should degrade: %+v", st)
	}
}

// TestMemoStoreCorruptReadOnlyCompactsOnClose: a corrupt shard on a
// directory where Truncate fails is rewritten wholesale at Close.
func TestMemoStoreCorruptTruncateFailsCompactsOnClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Cache().Put(testKey(8, i), testResult(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Join(dir, "memo-08.log")
	data, _ := os.ReadFile(shard)
	data[len(data)-3] ^= 0xFF
	os.WriteFile(shard, data, 0o644)

	fsys := &faultFS{failTruncate: true}
	s2, err := OpenFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Quarantined != 1 || st.Loaded != 4 {
		t.Fatalf("salvage stats: %+v", st)
	}
	// Re-measure the lost entry, then close: the shard must be compacted so
	// the next open sees all five.
	s2.Cache().Put(testKey(8, 4), testResult(4))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.Loaded != 5 || st.Quarantined != 0 {
		t.Fatalf("post-compaction reload: %+v", st)
	}
}
