package store

import (
	"fmt"
	"path/filepath"
)

// BackupSuffix names the rotated previous generation of a safe-file.
const BackupSuffix = ".bak"

// SaveRotate atomically replaces path with data, keeping the previous
// generation as path+".bak". Write order is crash-safe at every step:
//
//  1. data goes to a temp file in the same directory, then fsync — a crash
//     here leaves the primary untouched;
//  2. the current primary (if any) is renamed to .bak — a crash here leaves
//     a valid generation at .bak and LoadFallback finds it;
//  3. the temp file is renamed over the primary — rename is atomic, so the
//     primary is always either absent, the old bytes, or the new bytes,
//     never a mix.
func SaveRotate(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir); err != nil {
		if _, statErr := fsys.Stat(dir); statErr != nil {
			return fmt.Errorf("store: creating %s: %w", dir, err)
		}
	}
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { fsys.Remove(tmpName) }
	if n, err := tmp.Write(data); err != nil || n != len(data) {
		tmp.Close()
		cleanup()
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(data))
		}
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("store: closing temp for %s: %w", path, err)
	}
	if _, err := fsys.Stat(path); err == nil {
		if err := fsys.Rename(path, path+BackupSuffix); err != nil {
			cleanup()
			return fmt.Errorf("store: rotating %s to backup: %w", path, err)
		}
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("store: replacing %s: %w", path, err)
	}
	return nil
}

// LoadFallback reads the newest valid generation of a safe-file. validate
// decodes and checks one candidate's bytes; LoadFallback tries the primary
// first and, if it is missing or invalid, the .bak rotation. The returned
// fromBackup flag tells the caller the primary was unusable (worth a
// warning: one generation of progress was lost to a torn write).
//
// When both generations fail, the primary's error is returned — it is the
// more recent artifact and its failure is the actionable one.
func LoadFallback(fsys FS, path string, validate func(data []byte) error) (data []byte, fromBackup bool, err error) {
	primary, primaryErr := fsys.ReadFile(path)
	if primaryErr == nil {
		if err := validate(primary); err == nil {
			return primary, false, nil
		} else {
			primaryErr = err
		}
	}
	backup, backupErr := fsys.ReadFile(path + BackupSuffix)
	if backupErr == nil {
		if err := validate(backup); err == nil {
			return backup, true, nil
		}
	}
	return nil, false, fmt.Errorf("store: loading %s: %w", path, primaryErr)
}
