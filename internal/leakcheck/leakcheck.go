// Package leakcheck asserts that a test leaves no goroutines behind. It
// snapshots the live goroutines at Check time and, at test cleanup, diffs
// against the snapshot with a settling retry — a just-cancelled worker gets
// a moment to unwind before it counts as leaked.
//
// The daemon's robustness claims are partly "no unbounded goroutines":
// shed submissions, drained servers, and closed managers must all return
// the scheduler to its starting population. This package turns that claim
// into a test assertion.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB Check needs, kept narrow so the package
// has no import cycle with test helpers.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// settle is how long cleanup waits for post-test goroutines to unwind
// before declaring them leaked.
const settle = 5 * time.Second

// Check snapshots the current goroutines and registers a cleanup that
// fails the test if goroutines created after the snapshot are still
// running when the test ends. Call it first in the test body.
func Check(t TB) {
	t.Helper()
	before := ids()
	t.Cleanup(func() {
		deadline := time.Now().Add(settle)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range stacks() {
				if !before[id] && !boring(stack) {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// ids returns the set of live goroutine IDs.
func ids() map[string]bool {
	set := map[string]bool{}
	for id := range stacks() {
		set[id] = true
	}
	return set
}

// stacks returns every live goroutine's full stack, keyed by goroutine ID.
func stacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := map[string]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		header, _, ok := strings.Cut(g, "\n")
		if !ok {
			continue
		}
		// Header shape: "goroutine 123 [running]:".
		fields := strings.Fields(header)
		if len(fields) < 2 || fields[0] != "goroutine" {
			continue
		}
		out[fields[1]] = g
	}
	return out
}

// boring reports whether a stack belongs to the runtime or test machinery
// rather than code under test: those goroutines exist independently of the
// test and churn freely.
func boring(stack string) bool {
	for _, marker := range []string{
		"runtime.Stack(",             // this snapshot itself
		"testing.tRunner(",           // sibling tests
		"testing.(*T).Run(",          // test spawning
		"testing.runTests(",          // the test main
		"testing.(*M).",              // test main machinery
		"os/signal.signal_recv(",     // signal delivery
		"os/signal.loop(",            // signal delivery
		"runtime.ensureSigM(",        // signal delivery setup
		"created by runtime.gc",      // collector helpers
		"runtime.bgsweep(",           // collector helpers
		"runtime.bgscavenge(",        // collector helpers
		"runtime.forcegchelper(",     // collector helpers
		"runtime.ReadTrace(",         // execution tracer
		"runtime/pprof.",             // profiler
		"net/http.(*connReader).backgroundRead(", // idle keep-alive read, dies with the conn
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}

// String renders the current goroutine population for debugging helpers.
func String() string {
	all := stacks()
	return fmt.Sprintf("%d goroutines", len(all))
}
