package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"hef/internal/memo"
	"hef/internal/store"
	"hef/internal/telemetry"
)

// TestMemoStatsOmittedWhenUnused: an unused cache converts to nil, so the
// report omits the memo key instead of emitting a block of zeros.
func TestMemoStatsOmittedWhenUnused(t *testing.T) {
	if MemoFromStats(memo.Stats{}) != nil {
		t.Fatal("zero memo stats produced a block")
	}
	rep := NewReport("t")
	rep.Memo = MemoFromStats(memo.Stats{})
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"memo"`) {
		t.Fatalf("report carries a memo key for an unused cache:\n%s", data)
	}
}

// TestStoreStatsMapping: every durable-layer counter — including the
// salvage/quarantine ones — lands in the report block under its JSON name.
func TestStoreStatsMapping(t *testing.T) {
	ss := StoreFromStats("/tmp/memo", store.MemoStats{
		Loaded: 10, Persisted: 4, Quarantined: 2,
		QuarantinedBytes: 512, SalvagedBytes: 2048, Degraded: "disk full",
	})
	if ss.Dir != "/tmp/memo" || ss.Loaded != 10 || ss.Persisted != 4 ||
		ss.Quarantined != 2 || ss.QuarantinedBytes != 512 ||
		ss.SalvagedBytes != 2048 || ss.Degraded != "disk full" {
		t.Fatalf("store block = %+v", ss)
	}
	data, err := json.Marshal(MemoStats{Hits: 1, Store: ss})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"dir"`, `"loaded"`, `"persisted"`, `"quarantined"`,
		`"quarantined_bytes"`, `"salvaged_bytes"`, `"degraded"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("store JSON missing %s: %s", key, data)
		}
	}
}

// TestEmitTimeAttachByteIdentity models the resume contract: the report
// body is assembled deterministically, and emit-time-only blocks (memo
// store counters, telemetry) attach to a copy at emit. Two runs whose
// deterministic bodies match must serialise identically however their
// emit-time state differed — a resumed run restored 10 entries from disk
// where the uninterrupted run persisted them, and only one ran with
// telemetry, yet the reports agree byte for byte once neither attaches.
func TestEmitTimeAttachByteIdentity(t *testing.T) {
	build := func() *RunReport {
		rep := NewReport("ssbbench")
		rep.CPU = "Intel Xeon Silver 4110"
		rep.Params["sf"] = "1"
		rep.Runs = append(rep.Runs, Run{Name: "Q1.1", Engine: "Hybrid", Elems: 100, Cycles: 200})
		return rep
	}

	// Uninterrupted run: persisted everything, telemetry disabled.
	uninterrupted := build()
	uninterrupted.Memo = MemoFromStats(memo.Stats{Hits: 3, Misses: 10, Entries: 10})
	uninterrupted.Memo.Store = StoreFromStats("d", store.MemoStats{Persisted: 10})

	// Resumed run: restored from disk, telemetry enabled.
	reg := telemetry.NewRegistry()
	reg.Counter(telemetry.MetricMemoHits, "").Add(3)
	resumed := build()
	resumed.Memo = MemoFromStats(memo.Stats{Hits: 3, Misses: 10, Entries: 10})
	resumed.Memo.Store = StoreFromStats("d", store.MemoStats{Loaded: 10})
	resumed.Telemetry = TelemetryFromRegistry(reg, nil, 1.5)

	strip := func(r *RunReport) []byte {
		cp := *r
		cp.Memo = MemoFromStats(memo.Stats{Hits: 3, Misses: 10, Entries: 10}) // body-level memo stays
		cp.Telemetry = nil
		b, err := cp.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := strip(uninterrupted), strip(resumed)
	if string(a) != string(b) {
		t.Fatalf("deterministic bodies differ:\n%s\nvs\n%s", a, b)
	}

	// And with the emit-time blocks attached, each full report round-trips.
	full, err := resumed.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var got RunReport
	if err := json.Unmarshal(full, &got); err != nil {
		t.Fatal(err)
	}
	if got.Memo.Store.Loaded != 10 || got.Telemetry == nil ||
		got.Telemetry.Series[telemetry.MetricMemoHits] != 3 {
		t.Fatalf("round-trip lost emit-time blocks: %+v", got)
	}
}

// TestTelemetryFromRegistry covers the emit-time telemetry block: nil
// registry → no block; a tracer contributes span counts and sorted tracks.
func TestTelemetryFromRegistry(t *testing.T) {
	if TelemetryFromRegistry(nil, telemetry.NewTracer(), 1) != nil {
		t.Fatal("nil registry produced a telemetry block")
	}
	reg := telemetry.NewRegistry()
	reg.Gauge(telemetry.MetricQueueDepth, "").Set(4)
	tr := telemetry.NewTracer()
	tr.Begin("sweep", "all")()
	tr.Begin("checkpoint", "flush")()
	ts := TelemetryFromRegistry(reg, tr, 2.5)
	if ts.Series[telemetry.MetricQueueDepth] != 4 || ts.Spans != 2 || ts.UptimeSeconds != 2.5 {
		t.Fatalf("telemetry block = %+v", ts)
	}
	if len(ts.SpanTracks) != 2 || ts.SpanTracks[0] != "checkpoint" || ts.SpanTracks[1] != "sweep" {
		t.Fatalf("span tracks = %v", ts.SpanTracks)
	}
}

// TestChromeTraceWithSpans: lifecycle spans render as duration events in
// their own process, alongside (and without disturbing) simulator sections.
func TestChromeTraceWithSpans(t *testing.T) {
	tr := telemetry.NewTracer()
	end := tr.Begin("run", "job-01")
	end()
	data, err := ChromeTraceWith(nil, tr.Spans())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  string `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var meta, span bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Tid == "meta":
			meta = true
		case ev.Ph == "X" && ev.Name == "job-01" && ev.Tid == "run":
			span = true
		}
	}
	if !meta || !span {
		t.Fatalf("trace missing meta=%v span=%v:\n%s", meta, span, data)
	}

	// Without spans the exporter matches plain ChromeTrace byte for byte.
	plain, err := ChromeTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	with, err := ChromeTraceWith(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != string(with) {
		t.Fatal("ChromeTraceWith(nil spans) diverged from ChromeTrace")
	}
}
