// Package obs is the observability layer of the reproduction: versioned
// machine-readable run reports (RunReport), Chrome trace-event export of the
// simulator's per-instruction lifecycle recorder, and DOT/JSON export of the
// HEF pruning-search walk. Every experiment driver and command-line tool
// emits its measurements through this package so runs are diffable over time
// and feed the BENCH_*.json perf snapshots.
package obs

import (
	"encoding/json"
	"fmt"

	"hef/internal/hef"
	"hef/internal/memo"
	"hef/internal/store"
	"hef/internal/uarch"
)

const (
	// Schema identifies RunReport documents.
	Schema = "hef.obs.run-report"
	// SchemaVersion is bumped on breaking changes to the RunReport layout.
	// Policy: additive fields (new optional keys) do not bump the version;
	// renaming, removing, or re-typing a field does.
	SchemaVersion = 1
)

// RunReport is the machine-readable record of one tool invocation: a set of
// measured runs plus, when a pruning search ran, its walk. It is the
// document behind every -json flag and the BENCH_*.json snapshots.
type RunReport struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Tool names the producing driver ("ssbbench", "uopshist", "hefopt").
	Tool string `json:"tool"`
	// CPU is the machine model all runs share (empty when mixed; then each
	// run carries its own).
	CPU string `json:"cpu,omitempty"`
	// Params records the invocation configuration (scale factor, seed, ...).
	Params map[string]string `json:"params,omitempty"`
	Runs   []Run             `json:"runs"`
	// Search is the HEF pruning walk when the tool ran one.
	Search *SearchReport `json:"search,omitempty"`
	// Memo holds the content-addressed measurement cache's counters when
	// the tool ran with memoization (additive field; absent otherwise).
	Memo *MemoStats `json:"memo,omitempty"`
	// Telemetry is the final live-telemetry snapshot when the tool ran with
	// -metrics-addr or -heartbeat (additive field; absent otherwise —
	// default runs stay byte-identical).
	Telemetry *TelemetryStats `json:"telemetry,omitempty"`
}

// MemoStats is the report form of the measurement memo cache's counters
// (see internal/memo). In merged reports the counters are summed over the
// per-task caches.
type MemoStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Entries uint64  `json:"entries"`
	HitRate float64 `json:"hit_rate"`
	// Store describes the persistent backing when the tool ran with
	// -memo-dir: what was restored, appended, and — after corruption —
	// quarantined. Attached at emit time only, never checkpointed, so
	// resumed and uninterrupted runs stay byte-identical elsewhere.
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats is the report form of the durable memo layer's counters (see
// internal/store). Quarantined > 0 means corrupt bytes were found at open
// and preserved in .quarantine sidecars; Degraded non-empty means
// persistence failed mid-run and later entries stayed in memory only.
type StoreStats struct {
	Dir              string `json:"dir"`
	Loaded           uint64 `json:"loaded"`
	Persisted        uint64 `json:"persisted"`
	Quarantined      uint64 `json:"quarantined"`
	QuarantinedBytes uint64 `json:"quarantined_bytes,omitempty"`
	SalvagedBytes    uint64 `json:"salvaged_bytes,omitempty"`
	Degraded         string `json:"degraded,omitempty"`
}

// MemoFromStats converts the memo package's counter snapshot, returning
// nil for an unused cache so reports omit the field rather than emit zeros.
func MemoFromStats(s memo.Stats) *MemoStats {
	if s == (memo.Stats{}) {
		return nil
	}
	return &MemoStats{Hits: s.Hits, Misses: s.Misses, Entries: s.Entries, HitRate: s.HitRate()}
}

// StoreFromStats converts the store package's counter snapshot.
func StoreFromStats(dir string, s store.MemoStats) *StoreStats {
	return &StoreStats{
		Dir: dir, Loaded: s.Loaded, Persisted: s.Persisted,
		Quarantined: s.Quarantined, QuarantinedBytes: s.QuarantinedBytes,
		SalvagedBytes: s.SalvagedBytes, Degraded: s.Degraded,
	}
}

// Run is one measured (workload, implementation) cell.
type Run struct {
	// Name identifies the workload (query ID, benchmark, stage).
	Name string `json:"name"`
	// Engine is the implementation label (Scalar, SIMD, Voila, Hybrid).
	Engine string `json:"engine,omitempty"`
	// Node is the candidate node string, e.g. "n(v=1,s=1,p=3)".
	Node string `json:"node,omitempty"`
	// CPU is the per-run machine model when the report mixes CPUs.
	CPU string `json:"cpu,omitempty"`

	Elems        uint64  `json:"elems"`
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	Uops         uint64  `json:"uops"`
	IPC          float64 `json:"ipc"`
	// CyclesPerElem is the scale-free per-element cost.
	CyclesPerElem float64 `json:"cycles_per_elem"`
	TimeMS        float64 `json:"time_ms"`
	FreqGHz       float64 `json:"freq_ghz"`
	// LLCMisses mirrors the perf LLC-misses event (demand + HW prefetch
	// fills from memory).
	LLCMisses uint64 `json:"llc_misses"`

	// UopsHist[i] counts cycles with exactly i issued µops (last: >=).
	UopsHist []uint64 `json:"uops_hist,omitempty"`
	// Stalls is the top-down cycle attribution (sums to Cycles).
	Stalls uarch.Stalls `json:"stalls"`
	// PortUtil[i] is issue-port i's utilization in [0, 1].
	PortUtil []float64 `json:"port_util,omitempty"`
	// ROBOcc and LoadQOcc are per-cycle occupancy histograms.
	ROBOcc   uarch.OccHist `json:"rob_occ"`
	LoadQOcc uarch.OccHist `json:"loadq_occ"`
}

// NewReport starts a report for the named tool.
func NewReport(tool string) *RunReport {
	return &RunReport{Schema: Schema, Version: SchemaVersion, Tool: tool, Params: map[string]string{}}
}

// RunFromResult flattens a simulator counter set into a report run. seconds
// is the extrapolated wall time of the run (pass res.Seconds() when the run
// is a single trace).
func RunFromResult(name, engine, node string, res *uarch.Result, seconds float64) Run {
	r := Run{
		Name:          name,
		Engine:        engine,
		Node:          node,
		Elems:         res.Elems,
		Cycles:        res.Cycles,
		Instructions:  res.Instructions,
		Uops:          res.Uops,
		IPC:           res.IPC(),
		CyclesPerElem: res.CyclesPerElem(),
		TimeMS:        seconds * 1e3,
		FreqGHz:       res.FreqGHz,
		LLCMisses:     res.Cache.LLCMissesReported(),
		UopsHist:      make([]uint64, len(res.Hist)),
		Stalls:        res.Stalls,
		ROBOcc:        res.ROBOcc,
		LoadQOcc:      res.LoadQOcc,
	}
	copy(r.UopsHist, res.Hist[:])
	for i := range res.PortBusy {
		r.PortUtil = append(r.PortUtil, res.PortUtil(i))
	}
	return r
}

// Validate checks the document identifies itself as a RunReport this code
// understands.
func (r *RunReport) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("obs: schema %q, want %q", r.Schema, Schema)
	}
	if r.Version != SchemaVersion {
		return fmt.Errorf("obs: schema version %d, want %d", r.Version, SchemaVersion)
	}
	return nil
}

// MarshalIndent renders the report as indented JSON with a trailing newline.
func (r *RunReport) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// SearchReport is the machine-readable record of one pruning search.
type SearchReport struct {
	Initial string `json:"initial"`
	Best    string `json:"best"`
	// BestNSPerElem is the per-element time at the optimum in nanoseconds.
	BestNSPerElem float64 `json:"best_ns_per_elem"`
	Tested        int     `json:"tested"`
	SpaceSize     int     `json:"space_size"`
	PrunedFrac    float64 `json:"pruned_fraction"`
	// Partial is true when the search stopped early (cancellation or
	// budget) and Best is only the best node found so far.
	Partial bool `json:"partial,omitempty"`
	// BestPath is the improving chain from initial to best.
	BestPath []string     `json:"best_path"`
	Steps    []SearchStep `json:"steps"`
}

// SearchStep is one evaluation of the walk.
type SearchStep struct {
	Node      string  `json:"node"`
	Parent    string  `json:"parent"`
	NSPerElem float64 `json:"ns_per_elem"`
	// Winner is true when the node beat its parent and stayed a candidate.
	Winner bool `json:"winner"`
}

// SearchFromResult converts a pruning-search record for a report.
func SearchFromResult(r *hef.Result) *SearchReport {
	sr := &SearchReport{
		Initial:       r.Initial.String(),
		Best:          r.Best.String(),
		BestNSPerElem: r.BestSeconds * 1e9,
		Tested:        r.Tested,
		SpaceSize:     r.SpaceSize,
		PrunedFrac:    r.PrunedFraction(),
		Partial:       r.Partial,
	}
	for _, n := range r.BestPath() {
		sr.BestPath = append(sr.BestPath, n.String())
	}
	for _, st := range r.Trace {
		sr.Steps = append(sr.Steps, SearchStep{
			Node:      st.Node.String(),
			Parent:    st.Parent.String(),
			NSPerElem: st.Seconds * 1e9,
			Winner:    st.Winner,
		})
	}
	return sr
}
