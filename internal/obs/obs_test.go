package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"hef/internal/hashes"
	"hef/internal/hef"
	"hef/internal/isa"
	"hef/internal/translator"
	"hef/internal/uarch"
)

// traceMurmur records a short Murmur run with the lifecycle recorder on.
func traceMurmur(t *testing.T, node translator.Node) (*uarch.TraceLog, *uarch.Result) {
	t.Helper()
	cpu, err := isa.ByName("silver")
	if err != nil {
		t.Fatal(err)
	}
	out, err := translator.Translate(hashes.MurmurTemplate(), node, translator.Options{CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	sim := uarch.NewSim(cpu)
	log := &uarch.TraceLog{}
	sim.SetTraceLog(log)
	res, err := sim.Run(out.Program, 16)
	if err != nil {
		t.Fatal(err)
	}
	return log, res
}

// TestChromeTraceGolden checks the exporter's structural contract: valid
// JSON in the Chrome object format, with monotonically non-decreasing ts
// over the whole document and one duration event per issued instruction.
func TestChromeTraceGolden(t *testing.T) {
	log, res := traceMurmur(t, translator.Node{V: 1, S: 1, P: 2})
	out, err := ChromeTrace([]TraceSection{{Name: "murmur hybrid", Events: log.Events}})
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out) {
		t.Fatalf("export is not valid JSON:\n%.200s", out)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  string         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}
	last := int64(-1)
	var durations uint64
	for i, ev := range doc.TraceEvents {
		if ev.Ts < last {
			t.Fatalf("event %d (%s): ts %d < previous %d — not monotonically non-decreasing", i, ev.Name, ev.Ts, last)
		}
		last = ev.Ts
		if ev.Ph == "X" {
			durations++
			if ev.Dur <= 0 {
				t.Errorf("duration event %s has dur %d", ev.Name, ev.Dur)
			}
			if !strings.HasPrefix(ev.Tid, "port ") {
				t.Errorf("duration event %s on track %q, want a port track", ev.Name, ev.Tid)
			}
		}
	}
	if durations != res.Instructions {
		t.Errorf("export has %d duration events, want one per instruction (%d)", durations, res.Instructions)
	}
}

// plantedEval scores nodes by distance from a planted optimum (monotone
// landscape, as in the hef package's own search tests).
type plantedEval struct{ opt hef.Node }

func (f *plantedEval) Evaluate(n hef.Node) (float64, error) {
	d := iabs(n.V-f.opt.V) + iabs(n.S-f.opt.S) + iabs(n.P-f.opt.P)
	return 1e-9 * float64(1+d), nil
}

func iabs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestSearchDOTNamesWinner checks the DOT export names the planted optimum
// as the search winner and marks pruned edges dashed.
func TestSearchDOTNamesWinner(t *testing.T) {
	opt := hef.Node{V: 1, S: 2, P: 3}
	res, err := hef.Search(&plantedEval{opt: opt}, hef.Node{V: 2, S: 3, P: 4}, hef.DefaultBounds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != opt {
		t.Fatalf("search found %v, want planted optimum %v", res.Best, opt)
	}
	dot := SearchDOT(res)
	if !strings.Contains(dot, "winner "+opt.String()) {
		t.Errorf("DOT does not name the planted optimum as winner:\n%.300s", dot)
	}
	if !strings.Contains(dot, "peripheries=2") {
		t.Error("DOT does not highlight the winning node")
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Error("DOT has no pruned (dashed) entries")
	}
	if !strings.HasPrefix(dot, "digraph ") {
		t.Errorf("DOT does not start a digraph: %.40q", dot)
	}

	// The JSON form must round-trip and agree on the winner.
	js, err := SearchJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var rep RunReport
	if err := json.Unmarshal(js, &rep); err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Search == nil || rep.Search.Best != opt.String() {
		t.Errorf("search JSON best = %+v, want %s", rep.Search, opt)
	}
	if rep.Search.Tested != res.Tested || len(rep.Search.Steps) != len(res.Trace) {
		t.Errorf("search JSON records %d tested / %d steps, want %d / %d",
			rep.Search.Tested, len(rep.Search.Steps), res.Tested, len(res.Trace))
	}
	if n := len(rep.Search.BestPath); n == 0 || rep.Search.BestPath[n-1] != opt.String() {
		t.Errorf("best path %v does not end at the optimum", rep.Search.BestPath)
	}
}

// TestRunReportRoundTrip checks a report built from real simulator counters
// survives encoding/json unchanged in its key fields, including the stall
// buckets.
func TestRunReportRoundTrip(t *testing.T) {
	_, res := traceMurmur(t, translator.Node{V: 0, S: 1, P: 1})

	rep := NewReport("obs-test")
	rep.CPU = "Intel Xeon Silver 4110"
	rep.Params["bench"] = "murmur"
	rep.Runs = append(rep.Runs, RunFromResult("murmur", "Scalar", "n(v=0,s=1,p=1)", res, res.Seconds()))

	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var got RunReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("round-trip has %d runs, want 1", len(got.Runs))
	}
	r := got.Runs[0]
	if r.Cycles != res.Cycles || r.Instructions != res.Instructions || r.Elems != res.Elems {
		t.Errorf("round-trip counters = %d/%d/%d, want %d/%d/%d",
			r.Cycles, r.Instructions, r.Elems, res.Cycles, res.Instructions, res.Elems)
	}
	if r.Stalls != res.Stalls {
		t.Errorf("round-trip stalls = %+v, want %+v", r.Stalls, res.Stalls)
	}
	if r.Stalls.Total() != r.Cycles {
		t.Errorf("round-trip stall buckets sum to %d, want %d", r.Stalls.Total(), r.Cycles)
	}
	if len(r.PortUtil) != len(res.PortBusy) {
		t.Errorf("round-trip has %d port-util entries, want %d", len(r.PortUtil), len(res.PortBusy))
	}
}

// TestValidateRejectsForeignDocuments checks the schema guard.
func TestValidateRejectsForeignDocuments(t *testing.T) {
	bad := RunReport{Schema: "something-else", Version: SchemaVersion}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a foreign schema")
	}
	bad = RunReport{Schema: Schema, Version: SchemaVersion + 1}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a future schema version")
	}
}
