package obs

import (
	"sort"

	"hef/internal/telemetry"
)

// TelemetryStats is the report form of the live-telemetry registry: a final
// snapshot of every series plus span bookkeeping. Like MemoStats.Store it
// attaches at emit time only — a run without -metrics-addr/-heartbeat
// carries no telemetry block, and checkpoints never do, so default runs
// stay byte-identical whatever the telemetry flags of a previous attempt.
type TelemetryStats struct {
	// Series maps every registered series name to its final value
	// (histograms appear as NAME_count/NAME_sum).
	Series map[string]float64 `json:"series"`
	// Spans counts recorded lifecycle spans; SpanTracks lists the tracks
	// they landed on, sorted.
	Spans      int      `json:"spans,omitempty"`
	SpanTracks []string `json:"span_tracks,omitempty"`
	// UptimeSeconds is the process wall time at emit.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// TelemetryFromRegistry snapshots reg (and tracer, which may be nil) for a
// report. Returns nil on a nil registry so disabled telemetry omits the
// block entirely.
func TelemetryFromRegistry(reg *telemetry.Registry, tracer *telemetry.Tracer, uptimeSeconds float64) *TelemetryStats {
	if reg == nil {
		return nil
	}
	ts := &TelemetryStats{Series: reg.Values(), UptimeSeconds: uptimeSeconds}
	if tracer != nil {
		spans := tracer.Spans()
		ts.Spans = len(spans)
		tracks := map[string]bool{}
		for _, s := range spans {
			tracks[s.Track] = true
		}
		for tr := range tracks {
			ts.SpanTracks = append(ts.SpanTracks, tr)
		}
		sort.Strings(ts.SpanTracks)
	}
	return ts
}

// ChromeTraceWith is ChromeTrace plus the sweep-lifecycle spans a telemetry
// tracer recorded: queue waits, job runs, checkpoint flushes, and the sweep
// itself render as duration events in one extra process, each span track a
// thread. Simulator sections keep cycle timestamps; span timestamps are
// microseconds since the tracer's epoch — different clocks, separate
// processes, one timeline document.
func ChromeTraceWith(sections []TraceSection, spans []telemetry.Span) ([]byte, error) {
	evs, err := chromeEvents(sections)
	if err != nil {
		return nil, err
	}
	if len(spans) > 0 {
		pid := len(sections)
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: "meta",
			Args: map[string]any{"name": "sweep lifecycle"},
		})
		for _, s := range spans {
			evs = append(evs, chromeEvent{
				Name: s.Name, Ph: "X",
				Ts:  s.Start.Microseconds(),
				Dur: s.Dur.Microseconds(),
				Pid: pid, Tid: s.Track,
			})
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	}
	return marshalChrome(evs)
}
