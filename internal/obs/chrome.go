package obs

import (
	"encoding/json"
	"sort"

	"hef/internal/cache"
	"hef/internal/uarch"
)

// Chrome trace-event export: the simulator's per-instruction lifecycle log
// rendered as the JSON object format Perfetto and chrome://tracing load.
// Each traced run becomes one process; each issue port becomes a thread, so
// the port-level schedule reads directly off the timeline. Timestamps are
// core cycles (the viewer displays them as microseconds).

// TraceSection is one traced run: a name (shown as the process name) and
// the events its simulator recorded.
type TraceSection struct {
	Name   string
	Events []uarch.TraceEvent
}

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  string         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON object format.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders one or more traced runs as Chrome trace-event JSON.
// Execution (issue → complete) becomes duration events on per-port tracks;
// dispatch and retire become instant events on a pipeline track. Events are
// sorted by timestamp, so ts is monotonically non-decreasing over the
// document.
func ChromeTrace(sections []TraceSection) ([]byte, error) {
	evs, err := chromeEvents(sections)
	if err != nil {
		return nil, err
	}
	return marshalChrome(evs)
}

// chromeEvents converts the traced runs to sorted trace events; extending
// exporters (ChromeTraceWith) append their own before marshalling.
func chromeEvents(sections []TraceSection) ([]chromeEvent, error) {
	var evs []chromeEvent
	for pid, sec := range sections {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: "meta",
			Args: map[string]any{"name": sec.Name},
		})
		for _, ev := range sec.Events {
			switch ev.Kind {
			case uarch.TraceIssue:
				args := map[string]any{"iter": ev.Iter, "body": ev.Body}
				if lvl := cache.LevelName(int(ev.Level)); lvl != "" {
					args["cache_level"] = lvl
				}
				evs = append(evs, chromeEvent{
					Name: ev.Name, Ph: "X", Ts: ev.Cycle, Dur: ev.Dur,
					Pid: pid, Tid: portTrack(ev.Port), Args: args,
				})
			case uarch.TraceDispatch, uarch.TraceRetire:
				evs = append(evs, chromeEvent{
					Name: ev.Kind.String() + " " + ev.Name, Ph: "i", Ts: ev.Cycle,
					Pid: pid, Tid: "pipeline", S: "t",
					Args: map[string]any{"iter": ev.Iter, "body": ev.Body},
				})
			case uarch.TraceComplete:
				// Redundant with the duration event's end; omitted to keep
				// exports lean.
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	return evs, nil
}

func marshalChrome(evs []chromeEvent) ([]byte, error) {
	return json.Marshal(chromeDoc{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

func portTrack(p int8) string {
	if p < 0 {
		return "pipeline"
	}
	return "port " + string(rune('0'+p))
}
