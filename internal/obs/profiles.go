package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles manages the command-line tools' optional -cpuprofile and
// -memprofile outputs. StartProfiles opens both files up front, so an
// unwritable path is a usage error before any work starts rather than a
// surprise after a long run; Stop (nil-safe, idempotent) flushes and closes
// them, and the tools call it on every exit path, not just the happy one.
type Profiles struct {
	cpu  *os.File
	mem  *os.File
	done bool
}

// StartProfiles opens the requested profile outputs and starts CPU
// profiling. Empty paths are skipped; with both empty it returns a nil
// *Profiles, whose Stop is a no-op.
func StartProfiles(cpuPath, memPath string) (*Profiles, error) {
	if cpuPath == "" && memPath == "" {
		return nil, nil
	}
	p := &Profiles{}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		p.cpu = f
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			if p.cpu != nil {
				p.cpu.Close()
			}
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
		p.mem = f
	}
	if p.cpu != nil {
		if err := pprof.StartCPUProfile(p.cpu); err != nil {
			p.cpu.Close()
			if p.mem != nil {
				p.mem.Close()
			}
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return p, nil
}

// Stop ends CPU profiling and writes the allocation profile. Safe to call
// on a nil receiver and more than once; only the first call does anything.
func (p *Profiles) Stop() {
	if p == nil || p.done {
		return
	}
	p.done = true
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
		}
	}
	if p.mem != nil {
		// Up-to-date allocation statistics require a completed GC cycle.
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(p.mem, 0); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		if err := p.mem.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
	}
}
