package obs

import (
	"fmt"
	"strings"

	"hef/internal/hef"
)

// Exporters for the Algorithm-2 pruning walk recorded in hef.Result.Trace:
// Graphviz DOT for visual inspection and JSON (SearchReport) for diffing.

// nodeID is a DOT-safe identifier for a candidate node.
func nodeID(n hef.Node) string {
	return fmt.Sprintf("v%ds%dp%d", n.V, n.S, n.P)
}

// SearchDOT renders the pruning search as a Graphviz digraph: every
// evaluation is an edge from its parent, winners (nodes that beat their
// parent and stayed candidates) drawn solid and pruned nodes dashed. The
// winner of the whole search is double-bordered and named in the graph
// label. Render with `dot -Tsvg`.
func SearchDOT(r *hef.Result) string {
	var b strings.Builder
	b.WriteString("digraph hef_search {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	fmt.Fprintf(&b, "  label=\"HEF pruning search: winner %s (%.3f ns/elem), tested %d of %d\";\n",
		r.Best.String(), r.BestSeconds*1e9, r.Tested, r.SpaceSize)

	onPath := map[hef.Node]bool{}
	for _, n := range r.BestPath() {
		onPath[n] = true
	}
	for _, st := range r.Trace {
		attrs := []string{fmt.Sprintf("label=\"%s\\n%.3f ns\"", st.Node.String(), st.Seconds*1e9)}
		switch {
		case st.Node == r.Best:
			attrs = append(attrs, "peripheries=2", "style=filled", "fillcolor=\"#b7e1cd\"")
		case st.Winner:
			attrs = append(attrs, "style=filled", "fillcolor=\"#e8f0fe\"")
		default:
			attrs = append(attrs, "style=dashed")
		}
		fmt.Fprintf(&b, "  %s [%s];\n", nodeID(st.Node), strings.Join(attrs, ", "))
		if st.Node == st.Parent {
			continue // the initial node has no incoming edge
		}
		style := "dashed"
		if st.Winner {
			style = "solid"
			if onPath[st.Node] && onPath[st.Parent] {
				style = "bold"
			}
		}
		fmt.Fprintf(&b, "  %s -> %s [style=%s];\n", nodeID(st.Parent), nodeID(st.Node), style)
	}
	b.WriteString("}\n")
	return b.String()
}

// SearchJSON renders the pruning search as indented JSON (the SearchReport
// schema), with a trailing newline.
func SearchJSON(r *hef.Result) ([]byte, error) {
	rep := NewReport("hef-search")
	rep.Search = SearchFromResult(r)
	return rep.MarshalIndent()
}
