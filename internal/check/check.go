// Package check gates the simulator's runtime self-check invariants.
//
// The conservation laws the simulator promises (every cycle lands in
// exactly one stall bucket, every issued µop retires, occupancy histograms
// integrate to the cycle count, the cache level counters chain) used to be
// asserted only in one test file; this package makes them executable at run
// time. The checks are always on under `go test` — any simulator change
// that breaks a law fails the whole suite, not just the one test that
// thought to assert it — and off by default in the tools, where the
// `-selfcheck` flag turns them on for production-run auditing at a few
// percent overhead.
package check

import (
	"sync/atomic"
	"testing"
)

var enabled atomic.Bool

func init() { enabled.Store(testing.Testing()) }

// Enabled reports whether invariant self-checks should run.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns the self-checks on or off; the tools' -selfcheck flag
// calls it. Tests need not: the checks default on under `go test`.
func SetEnabled(on bool) { enabled.Store(on) }
