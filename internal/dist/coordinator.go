package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"hef/internal/sched"
	"hef/internal/store"
	"hef/internal/telemetry"
)

// Config shapes a Coordinator.
type Config struct {
	// DataDir holds the sweep journal. Required: a coordinator that cannot
	// journal cannot promise crash recovery.
	DataDir string
	// FS is the filesystem (nil selects the real one).
	FS store.FS

	// RangeSize is the shard width in tasks (<= 0 selects 8). The value in
	// an existing journal wins over this, so a restart under a different
	// flag keeps the sharding the journal was recorded against.
	RangeSize int
	// LeaseTTL is how long a grant stays live without a heartbeat
	// (<= 0 selects 15s).
	LeaseTTL time.Duration
	// StragglerAfter is how long a range may stay leased-but-incomplete
	// before a speculative second lease is granted (<= 0 selects 3×LeaseTTL).
	StragglerAfter time.Duration
	// MaxLeasesPerRange bounds concurrent leases on one range
	// (<= 0 selects 2: the original plus one speculative).
	MaxLeasesPerRange int
	// FailLimit is how many failure reports a range absorbs before the
	// sweep is declared failed (<= 0 selects 3).
	FailLimit int
	// WaitHint is the poll delay suggested to workers when every range is
	// leased and healthy (<= 0 selects LeaseTTL/4).
	WaitHint time.Duration

	// Clock abstracts time (nil selects the real clock).
	Clock sched.Clock
	// LogW receives the coordinator's operational log (nil discards).
	LogW io.Writer
	// Metrics, when non-nil, receives the dist_* instrument updates.
	Metrics *telemetry.DistMetrics
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.RangeSize <= 0 {
		out.RangeSize = 8
	}
	if out.LeaseTTL <= 0 {
		out.LeaseTTL = 15 * time.Second
	}
	if out.StragglerAfter <= 0 {
		out.StragglerAfter = 3 * out.LeaseTTL
	}
	if out.MaxLeasesPerRange <= 0 {
		out.MaxLeasesPerRange = 2
	}
	if out.FailLimit <= 0 {
		out.FailLimit = 3
	}
	if out.WaitHint <= 0 {
		out.WaitHint = out.LeaseTTL / 4
	}
	if out.Clock == nil {
		out.Clock = sched.RealClock{}
	}
	if out.LogW == nil {
		out.LogW = io.Discard
	}
	return out
}

// plan is the journaled sweep identity: tool, fingerprint, and the
// deterministic task order, sharded once into ranges.
type plan struct {
	tool        string
	fingerprint string
	ids         []string
	hash        string
	rangeSize   int
	ranges      []sched.Range
}

// lease is one live grant of a range to a worker.
type lease struct {
	id          string
	worker      string
	rangeIdx    int
	expires     time.Time
	speculative bool
}

// rangeState tracks one shard's progress.
type rangeState struct {
	done     bool
	failures int
	// episodeStart is when the current leased episode began: the grant that
	// took the range from unleased to leased. Straggler detection measures
	// from here, so a re-grant after total lease loss restarts the clock.
	episodeStart time.Time
}

// Coordinator is the sweep's lease state machine: it shards the plan,
// leases ranges to workers, expires lapsed leases, speculatively
// re-dispatches stragglers, and commits content-addressed results — all
// behind a write-ahead journal so kill -9 resumes losslessly.
type Coordinator struct {
	cfg   Config
	clock sched.Clock
	logf  *log.Logger
	tel   *telemetry.DistMetrics

	mu       sync.Mutex
	jnl      *journal
	plan     *plan
	ranges   []rangeState
	results  map[string]json.RawMessage
	leases   map[string]*lease
	leaseSeq int
	doneN    int
	failed   string
	counts   Counts
	doneCh   chan struct{}
	closed   bool
}

// NewCoordinator opens (or resumes) a coordinator over cfg.DataDir. An
// existing journal is replayed: the plan and every committed range come
// back, the lease-ID sequence resumes above its high-water mark, and the
// most recent grant of each incomplete range is re-armed with a fresh TTL —
// its worker may still be alive and heartbeat, and if not the lease lapses
// and the range is reassigned.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("dist: coordinator requires a data directory")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		clock:   cfg.Clock,
		logf:    log.New(cfg.LogW, "dist: ", log.LstdFlags|log.LUTC),
		tel:     cfg.Metrics,
		results: map[string]json.RawMessage{},
		leases:  map[string]*lease{},
		doneCh:  make(chan struct{}),
	}

	// Replay: collect records first, then rebuild state, so grants and
	// results can be interpreted against the (earlier) plan record.
	var planRec *journalRecord
	type grantRec struct {
		seq, rangeIdx int
		worker        string
	}
	lastGrant := map[int]grantRec{} // rangeIdx → most recent grant
	var resultRecs []journalRecord
	jnl, err := openJournal(cfg.FS, cfg.DataDir, func(rec journalRecord) {
		switch rec.Kind {
		case jnlPlan:
			if planRec == nil {
				r := rec
				planRec = &r
			}
		case jnlGrant:
			if rec.Seq > c.leaseSeq {
				c.leaseSeq = rec.Seq
			}
			lastGrant[rec.RangeIdx] = grantRec{rec.Seq, rec.RangeIdx, rec.Worker}
		case jnlResult:
			resultRecs = append(resultRecs, rec)
		}
	})
	if err != nil {
		return nil, err
	}
	c.jnl = jnl
	if n := jnl.salvagedBytes(); n > 0 {
		c.logf.Printf("journal salvage: quarantined %d bytes of torn tail", n)
	}

	if planRec != nil {
		p, err := buildPlan(planRec.Tool, planRec.Fingerprint, planRec.TaskIDs, planRec.RangeSize)
		if err != nil {
			return nil, fmt.Errorf("dist: journaled plan: %w", err)
		}
		c.plan = p
		c.ranges = make([]rangeState, len(p.ranges))
		for _, rec := range resultRecs {
			if rec.RangeIdx < 0 || rec.RangeIdx >= len(p.ranges) {
				return nil, fmt.Errorf("dist: journaled result for range %d outside plan of %d ranges", rec.RangeIdx, len(p.ranges))
			}
			if c.ranges[rec.RangeIdx].done {
				continue
			}
			c.ranges[rec.RangeIdx].done = true
			c.doneN++
			for id, raw := range rec.Results {
				c.results[id] = raw
			}
		}
		now := c.clock.Now()
		for idx, g := range lastGrant {
			if idx < 0 || idx >= len(p.ranges) || c.ranges[idx].done {
				continue
			}
			l := &lease{
				id: leaseID(g.seq), worker: g.worker, rangeIdx: idx,
				expires: now.Add(cfg.LeaseTTL),
			}
			c.leases[l.id] = l
			c.ranges[idx].episodeStart = now
		}
		c.logf.Printf("resumed plan %s: %d/%d ranges done, %d leases re-armed",
			p.hash, c.doneN, len(p.ranges), len(c.leases))
		c.publishLocked()
		if c.doneN == len(p.ranges) {
			c.finishLocked("")
		}
	}
	return c, nil
}

func buildPlan(tool, fingerprint string, ids []string, rangeSize int) (*plan, error) {
	if tool == "" || fingerprint == "" || len(ids) == 0 {
		return nil, fmt.Errorf("plan missing tool, fingerprint, or tasks")
	}
	if rangeSize <= 0 {
		rangeSize = 1
	}
	return &plan{
		tool: tool, fingerprint: fingerprint, ids: ids,
		hash:      HashPlan(tool, fingerprint, ids),
		rangeSize: rangeSize,
		ranges:    sched.ShardRanges(len(ids), rangeSize),
	}, nil
}

func leaseID(seq int) string { return fmt.Sprintf("L%06d", seq) }

// RegisterPlan fixes the sweep plan on first call and verifies every later
// registration against it, so a worker running different flags is refused
// instead of silently mixing sweeps.
func (c *Coordinator) RegisterPlan(req *PlanRequest) (*PlanResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan == nil {
		p, err := buildPlan(req.Tool, req.Fingerprint, req.TaskIDs, c.cfg.RangeSize)
		if err != nil {
			return nil, errProto(http.StatusBadRequest, CodeInvalid, "%v", err)
		}
		if err := c.jnl.append(journalRecord{
			Kind: jnlPlan, Tool: p.tool, Fingerprint: p.fingerprint,
			TaskIDs: p.ids, RangeSize: p.rangeSize,
		}); err != nil {
			return nil, errProto(http.StatusServiceUnavailable, CodeStorage, "%v", err)
		}
		c.plan = p
		c.ranges = make([]rangeState, len(p.ranges))
		c.logf.Printf("plan %s registered by %s: tool=%s %d tasks in %d ranges of %d",
			p.hash, req.Worker, p.tool, len(p.ids), len(p.ranges), p.rangeSize)
		c.publishLocked()
	} else if err := c.matchPlanLocked(req); err != nil {
		return nil, err
	}
	return &PlanResponse{
		PlanHash: c.plan.hash, Ranges: len(c.plan.ranges),
		RangeSize: c.plan.rangeSize, Done: c.doneN == len(c.plan.ranges),
	}, nil
}

func (c *Coordinator) matchPlanLocked(req *PlanRequest) error {
	p := c.plan
	if req.Tool != p.tool || req.Fingerprint != p.fingerprint {
		return errProto(http.StatusConflict, CodePlanMismatch,
			"coordinator runs tool=%q fingerprint=%q, worker brought tool=%q fingerprint=%q",
			p.tool, p.fingerprint, req.Tool, req.Fingerprint)
	}
	if HashPlan(req.Tool, req.Fingerprint, req.TaskIDs) != p.hash {
		return errProto(http.StatusConflict, CodePlanMismatch,
			"task list differs from the registered plan (%d tasks, hash %s)", len(p.ids), p.hash)
	}
	return nil
}

// requirePlanLocked maps the plan-hash preamble every post-registration
// request carries.
func (c *Coordinator) requirePlanLocked(planHash string) error {
	if c.plan == nil {
		return errProto(http.StatusConflict, CodeNoPlan, "no plan registered; register and retry")
	}
	if planHash != c.plan.hash {
		return errProto(http.StatusConflict, CodePlanMismatch,
			"request names plan %s, coordinator runs %s", planHash, c.plan.hash)
	}
	return nil
}

// Lease grants the caller a range: the first unleased incomplete range in
// task order, else a speculative second lease on a straggling range, else a
// wait hint (or Done when the sweep is complete).
func (c *Coordinator) Lease(req *LeaseRequest) (*LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	if c.failed != "" {
		return nil, errProto(http.StatusConflict, CodeSweepFailed, "%s", c.failed)
	}
	if err := c.requirePlanLocked(req.PlanHash); err != nil {
		return nil, err
	}
	if c.doneN == len(c.plan.ranges) {
		return &LeaseResponse{Done: true}, nil
	}

	now := c.clock.Now()
	live := make(map[int][]*lease)
	for _, l := range c.leases {
		live[l.rangeIdx] = append(live[l.rangeIdx], l)
	}
	grant := func(idx int, speculative bool) (*LeaseResponse, error) {
		seq := c.leaseSeq + 1
		if err := c.jnl.append(journalRecord{
			Kind: jnlGrant, Seq: seq, RangeIdx: idx, Worker: req.Worker,
		}); err != nil {
			return nil, errProto(http.StatusServiceUnavailable, CodeStorage, "%v", err)
		}
		c.leaseSeq = seq
		l := &lease{
			id: leaseID(seq), worker: req.Worker, rangeIdx: idx,
			expires: now.Add(c.cfg.LeaseTTL), speculative: speculative,
		}
		c.leases[l.id] = l
		if len(live[idx]) == 0 {
			c.ranges[idx].episodeStart = now
		}
		c.counts.Granted++
		if speculative {
			c.counts.Speculative++
		}
		c.tel.OnGrant(speculative)
		c.publishLocked()
		r := c.plan.ranges[idx]
		c.logf.Printf("lease %s: range %d %s → %s%s", l.id, idx, r, req.Worker,
			map[bool]string{true: " (speculative)", false: ""}[speculative])
		return &LeaseResponse{
			LeaseID: l.id, RangeIdx: idx, Range: r,
			TaskIDs: c.plan.ids[r.Start:r.End],
			TTLMS:   c.cfg.LeaseTTL.Milliseconds(), Speculative: speculative,
		}, nil
	}

	for idx := range c.ranges {
		if !c.ranges[idx].done && len(live[idx]) == 0 {
			return grant(idx, false)
		}
	}
	for idx := range c.ranges {
		rs := &c.ranges[idx]
		if rs.done || len(live[idx]) >= c.cfg.MaxLeasesPerRange {
			continue
		}
		if now.Sub(rs.episodeStart) < c.cfg.StragglerAfter {
			continue
		}
		held := false
		for _, l := range live[idx] {
			if l.worker == req.Worker {
				held = true
				break
			}
		}
		if !held {
			return grant(idx, true)
		}
	}
	return &LeaseResponse{WaitMS: c.cfg.WaitHint.Milliseconds()}, nil
}

// Heartbeat renews a lease. A lapsed or unknown lease is a typed refusal:
// the worker keeps computing (its commit is still welcome — results
// dedupe), it just knows the range may be re-dispatched.
func (c *Coordinator) Heartbeat(req *HeartbeatRequest) (*HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	l, ok := c.leases[req.LeaseID]
	if !ok || l.worker != req.Worker {
		return nil, errProto(http.StatusConflict, CodeLeaseUnknown,
			"lease %s is not held by %s", req.LeaseID, req.Worker)
	}
	l.expires = c.clock.Now().Add(c.cfg.LeaseTTL)
	c.counts.Heartbeats++
	c.tel.OnHeartbeat()
	return &HeartbeatResponse{TTLMS: c.cfg.LeaseTTL.Milliseconds()}, nil
}

// Commit accepts a completed range. Commitment is lease-independent: the
// results are content-addressed by (fingerprint, task ID) and
// byte-deterministic, so work from a lapsed or speculative lease is as good
// as any. A range committed twice dedupes by byte comparison; a byte
// mismatch is a determinism violation and fails the sweep loudly — the
// merged report could no longer be trusted to equal a single-process run.
func (c *Coordinator) Commit(req *ResultRequest) (*ResultResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	if err := c.requirePlanLocked(req.PlanHash); err != nil {
		return nil, err
	}
	p := c.plan
	if req.RangeIdx < 0 || req.RangeIdx >= len(p.ranges) {
		return nil, errProto(http.StatusBadRequest, CodeInvalid,
			"range_idx %d outside plan of %d ranges", req.RangeIdx, len(p.ranges))
	}
	r := p.ranges[req.RangeIdx]
	if req.Range != r {
		return nil, errProto(http.StatusBadRequest, CodeInvalid,
			"range %s does not match plan range %d = %s", req.Range, req.RangeIdx, r)
	}
	for _, id := range p.ids[r.Start:r.End] {
		if _, ok := req.Results[id]; !ok {
			return nil, errProto(http.StatusBadRequest, CodeInvalid,
				"results missing task %q of range %d", id, req.RangeIdx)
		}
	}

	// The committing lease may have lapsed — that is the at-least-once
	// window working as designed, worth counting but not refusing.
	late := req.LeaseID != ""
	if _, ok := c.leases[req.LeaseID]; ok {
		late = false
	}

	if c.ranges[req.RangeIdx].done {
		for _, id := range p.ids[r.Start:r.End] {
			if !bytes.Equal(c.results[id], req.Results[id]) {
				c.counts.Violations++
				c.tel.OnViolation()
				c.failLocked(fmt.Sprintf("determinism violation: task %q of range %d committed twice with different bytes", id, req.RangeIdx))
				return nil, errProto(http.StatusInternalServerError, CodeDeterminism,
					"task %q: committed bytes differ from an earlier commit of range %d", id, req.RangeIdx)
			}
		}
		c.releaseLocked(req.LeaseID)
		c.counts.Duplicates++
		if late {
			c.counts.LateCommits++
		}
		c.tel.OnCommit(true)
		c.logf.Printf("range %d re-committed by %s: byte-identical, deduped", req.RangeIdx, req.Worker)
		return &ResultResponse{Committed: false, Duplicate: true}, nil
	}

	// Journal first, acknowledge after: the fsynced record is the commit.
	if err := c.jnl.append(journalRecord{
		Kind: jnlResult, RangeIdx: req.RangeIdx, Worker: req.Worker, Results: req.Results,
	}); err != nil {
		return nil, errProto(http.StatusServiceUnavailable, CodeStorage, "%v", err)
	}
	for id, raw := range req.Results {
		c.results[id] = raw
	}
	c.ranges[req.RangeIdx].done = true
	c.doneN++
	c.counts.Committed++
	if late {
		c.counts.LateCommits++
	}
	c.tel.OnCommit(false)
	// Drop every lease on the now-done range; any speculative twin will
	// learn on its own commit (deduped) or next lease request.
	for id, l := range c.leases {
		if l.rangeIdx == req.RangeIdx {
			delete(c.leases, id)
		}
	}
	c.publishLocked()
	c.logf.Printf("range %d committed by %s (%d/%d done)", req.RangeIdx, req.Worker, c.doneN, len(p.ranges))
	if c.doneN == len(p.ranges) {
		c.finishLocked("")
	}
	return &ResultResponse{Committed: true}, nil
}

// Fail records that a worker could not complete a leased range. The lease
// is released immediately so the range re-dispatches without waiting out
// the TTL; a range that exhausts its failure budget fails the sweep.
func (c *Coordinator) Fail(req *FailRequest) (*FailResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	if err := c.requirePlanLocked(req.PlanHash); err != nil {
		return nil, err
	}
	if req.RangeIdx < 0 || req.RangeIdx >= len(c.plan.ranges) {
		return nil, errProto(http.StatusBadRequest, CodeInvalid,
			"range_idx %d outside plan of %d ranges", req.RangeIdx, len(c.plan.ranges))
	}
	c.releaseLocked(req.LeaseID)
	rs := &c.ranges[req.RangeIdx]
	c.counts.Failures++
	c.tel.OnRangeFailure()
	remaining := c.cfg.FailLimit
	if !rs.done {
		rs.failures++
		remaining = c.cfg.FailLimit - rs.failures
		for id, msg := range req.Errors {
			c.logf.Printf("range %d task %q failed on %s: %s", req.RangeIdx, id, req.Worker, msg)
		}
		if remaining <= 0 {
			c.failLocked(fmt.Sprintf("range %d failed %d times (last on %s); failure budget exhausted",
				req.RangeIdx, rs.failures, req.Worker))
		}
	}
	c.publishLocked()
	if remaining < 0 {
		remaining = 0
	}
	return &FailResponse{Remaining: remaining}, nil
}

// Status snapshots the coordinator's public state.
func (c *Coordinator) Status() *StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	s := &StatusResponse{
		RangesDone: c.doneN, Leased: c.leasedRangesLocked(),
		Failed: c.failed, Counts: c.counts,
	}
	if c.plan != nil {
		s.Tool, s.Fingerprint, s.PlanHash = c.plan.tool, c.plan.fingerprint, c.plan.hash
		s.Tasks, s.Ranges = len(c.plan.ids), len(c.plan.ranges)
		s.Done = c.doneN == len(c.plan.ranges)
	}
	return s
}

// Counts snapshots the robustness counters.
func (c *Coordinator) Counts() Counts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// ExpireLeases expires lapsed leases now (they also expire lazily on every
// request); it returns the number of live leases left. A periodic caller
// keeps the lease gauge honest while workers are partitioned and silent.
func (c *Coordinator) ExpireLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	return len(c.leases)
}

// Done is closed when the sweep reaches a terminal state: every range
// committed, or the failure budget exhausted (check Err to distinguish).
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Err reports the terminal failure, nil while healthy or complete.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed == "" {
		return nil
	}
	return fmt.Errorf("dist: sweep failed: %s", c.failed)
}

// MergedCheckpoint assembles the completed sweep as a sched.Checkpoint —
// byte-identical to the checkpoint a single-process sched.RunSweep over the
// same plan would save, because both hold exactly json.Marshal(result) per
// task and the checkpoint encoder is deterministic.
func (c *Coordinator) MergedCheckpoint() (*sched.Checkpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan == nil {
		return nil, fmt.Errorf("dist: no plan registered")
	}
	if c.doneN != len(c.plan.ranges) {
		return nil, fmt.Errorf("dist: sweep incomplete: %d/%d ranges committed", c.doneN, len(c.plan.ranges))
	}
	cp := sched.NewCheckpoint(c.plan.tool, c.plan.fingerprint)
	for _, id := range c.plan.ids {
		raw, ok := c.results[id]
		if !ok {
			return nil, fmt.Errorf("dist: committed ranges cover all tasks but %q has no result", id)
		}
		cp.Done[id] = raw
	}
	return cp, nil
}

// Close releases the journal handle. Appends are fsynced individually, so
// Close is equivalent to kill -9 as far as durability is concerned — which
// is exactly what the chaos harness exploits.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.jnl.close()
}

// expireLocked drops every lapsed lease.
func (c *Coordinator) expireLocked() {
	now := c.clock.Now()
	expired := 0
	for id, l := range c.leases {
		if !l.expires.After(now) {
			delete(c.leases, id)
			expired++
			c.logf.Printf("lease %s expired: range %d held by %s lapsed", id, l.rangeIdx, l.worker)
		}
	}
	if expired > 0 {
		c.counts.Expired += expired
		c.tel.OnExpire(expired)
		c.publishLocked()
	}
}

// releaseLocked drops one lease without counting it as expired.
func (c *Coordinator) releaseLocked(id string) {
	if _, ok := c.leases[id]; ok {
		delete(c.leases, id)
		c.publishLocked()
	}
}

// leasedRangesLocked counts distinct ranges under at least one live lease.
func (c *Coordinator) leasedRangesLocked() int {
	seen := map[int]bool{}
	for _, l := range c.leases {
		seen[l.rangeIdx] = true
	}
	return len(seen)
}

// failLocked marks the sweep terminally failed.
func (c *Coordinator) failLocked(msg string) {
	if c.failed == "" {
		c.failed = msg
		c.logf.Printf("sweep failed: %s", msg)
	}
	c.finishLocked(msg)
}

// finishLocked closes the done channel once.
func (c *Coordinator) finishLocked(string) {
	select {
	case <-c.doneCh:
	default:
		close(c.doneCh)
	}
}

// publishLocked refreshes the gauge-shaped telemetry.
func (c *Coordinator) publishLocked() {
	if c.tel == nil {
		return
	}
	total := 0
	if c.plan != nil {
		total = len(c.plan.ranges)
	}
	c.tel.SetRanges(total, c.doneN)
	c.tel.SetLeasesActive(len(c.leases))
}
