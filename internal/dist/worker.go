package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"hef/internal/httpapi"
	"hef/internal/sched"
	"hef/internal/telemetry"
)

// WorkerConfig shapes RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:9931).
	Coordinator string
	// APIKey authenticates to the coordinator ("" when auth is off).
	APIKey string
	// Name identifies this worker in coordinator logs and lease state
	// ("" selects "worker").
	Name string

	// Tool and Fingerprint identify the sweep; they must match the
	// coordinator's registered plan or registration is refused.
	Tool        string
	Fingerprint string

	// Workers sizes the local pool a leased range runs on (<= 0 selects 1).
	Workers int
	// Retries caps local per-task retries before the range is reported
	// failed.
	Retries int

	// Client is the HTTP client (nil selects a 30s-timeout default).
	Client *http.Client
	// Clock abstracts time (nil selects the real clock).
	Clock sched.Clock
	// PollMax caps wait and retry backoff sleeps (<= 0 selects 2s).
	PollMax time.Duration
	// LogW receives the worker's operational log (nil discards).
	LogW io.Writer

	// Metrics and Tracer flow into the local sweep runs, so a worker's
	// /metrics shows the same sweep series a single-process run would;
	// RunnerMetrics instruments the local pool.
	Metrics       *telemetry.SweepMetrics
	Tracer        *telemetry.Tracer
	RunnerMetrics *telemetry.SchedMetrics
}

// WorkerStats summarizes one worker's participation in a sweep.
type WorkerStats struct {
	// Ranges and Tasks count work this worker completed and committed
	// (duplicates included — the work really ran here).
	Ranges int
	Tasks  int
	// Duplicates counts commits the coordinator deduped (another worker got
	// there first — the at-least-once window, not an error).
	Duplicates int
	// LapsedLeases counts leases that expired under this worker while it
	// kept computing.
	LapsedLeases int
	// Reconnects counts transport-level retries against the coordinator.
	Reconnects int
	// Failures counts ranges this worker reported as failed.
	Failures int
}

func (c *WorkerConfig) withDefaults() WorkerConfig {
	out := *c
	if out.Name == "" {
		out.Name = "worker"
	}
	if out.Workers <= 0 {
		out.Workers = 1
	}
	if out.Client == nil {
		out.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if out.Clock == nil {
		out.Clock = sched.RealClock{}
	}
	if out.PollMax <= 0 {
		out.PollMax = 2 * time.Second
	}
	if out.LogW == nil {
		out.LogW = io.Discard
	}
	return out
}

// client is the coordinator's HTTP client: typed envelope errors come back
// as *ProtoError, anything else (refused connection, timeout, torn
// response) as a plain error the caller treats as transient.
type client struct {
	base string
	key  string
	hc   *http.Client
}

func (cl *client) post(ctx context.Context, path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return errProto(http.StatusBadRequest, CodeBadJSON, "marshal request: %v", err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.base+path, bytes.NewReader(body))
	if err != nil {
		return errProto(http.StatusBadRequest, CodeInvalid, "build request: %v", err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if cl.key != "" {
		hr.Header.Set("Authorization", "Bearer "+cl.key)
	}
	resp, err := cl.hc.Do(hr)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
	if err != nil {
		return fmt.Errorf("dist: %s: read response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		if e, ok := httpapi.DecodeError(data); ok {
			return &ProtoError{Status: resp.StatusCode, Code: e.Code, Message: e.Message}
		}
		return fmt.Errorf("dist: %s: HTTP %d", path, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("dist: %s: decode response: %w", path, err)
		}
	}
	return nil
}

// fatalCode reports whether a typed refusal should stop the worker rather
// than be retried: protocol disagreements and auth refusals never heal by
// waiting, and a determinism violation or failed sweep is terminal by
// design.
func fatalCode(code string) bool {
	switch code {
	case CodePlanMismatch, CodeInvalid, CodeBadJSON,
		CodeSweepFailed, CodeDeterminism,
		httpapi.AuthMissing, httpapi.AuthForbidden:
		return true
	}
	return false
}

// worker is one RunWorker invocation's state.
type worker[T any] struct {
	cfg      WorkerConfig
	cl       *client
	logf     *log.Logger
	tasks    []sched.Task[T]
	ids      []string
	planHash string
	stats    *WorkerStats
}

// RunWorker participates in a distributed sweep until it is complete: it
// registers the plan derived from its own flags (so a misconfigured worker
// is refused, not mixed in), then leases ranges, runs them on a local
// sched.RunSweep pool, heartbeats while computing, and commits marshalled
// results. Transport errors back off and retry — commits are idempotent on
// the coordinator, so at-least-once delivery is safe. It returns when the
// coordinator reports the sweep done, the sweep fails, or ctx is cancelled.
func RunWorker[T any](ctx context.Context, cfg WorkerConfig, tasks []sched.Task[T]) (*WorkerStats, error) {
	cfg = cfg.withDefaults()
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("dist: worker requires a coordinator URL")
	}
	ids, err := sched.TaskIDs(tasks)
	if err != nil {
		return nil, err
	}
	w := &worker[T]{
		cfg:   cfg,
		cl:    &client{base: cfg.Coordinator, key: cfg.APIKey, hc: cfg.Client},
		logf:  log.New(cfg.LogW, "dist-worker: ", log.LstdFlags|log.LUTC),
		tasks: tasks, ids: ids,
		planHash: HashPlan(cfg.Tool, cfg.Fingerprint, ids),
		stats:    &WorkerStats{},
	}
	return w.stats, w.run(ctx)
}

// sleep waits d (capped at PollMax) or until ctx cancels.
func (w *worker[T]) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if d > w.cfg.PollMax {
		d = w.cfg.PollMax
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-w.cfg.Clock.After(d):
		return nil
	}
}

// backoff is the deterministic exponential schedule for transient errors.
func (w *worker[T]) backoff(attempt int) time.Duration {
	d := 50 * time.Millisecond << uint(min(attempt, 10))
	if d > w.cfg.PollMax {
		d = w.cfg.PollMax
	}
	return d
}

// register announces the plan until the coordinator accepts it (transport
// errors retry; typed refusals are fatal).
func (w *worker[T]) register(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		var pr PlanResponse
		err := w.cl.post(ctx, "/v1/plan", &PlanRequest{
			Version: ProtocolVersion, Tool: w.cfg.Tool, Fingerprint: w.cfg.Fingerprint,
			TaskIDs: w.ids, Worker: w.cfg.Name,
		}, &pr)
		if err == nil {
			if pr.PlanHash != w.planHash {
				return fmt.Errorf("dist: coordinator accepted plan %s, this worker computed %s", pr.PlanHash, w.planHash)
			}
			w.logf.Printf("registered plan %s: %d tasks in %d ranges", pr.PlanHash, len(w.ids), pr.Ranges)
			return nil
		}
		var pe *ProtoError
		if errors.As(err, &pe) && fatalCode(pe.Code) {
			return err
		}
		w.stats.Reconnects++
		w.logf.Printf("register: %v (retrying)", err)
		if serr := w.sleep(ctx, w.backoff(attempt)); serr != nil {
			return serr
		}
	}
}

// run is the lease loop.
func (w *worker[T]) run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	for attempt := 0; ; {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr LeaseResponse
		err := w.cl.post(ctx, "/v1/lease", &LeaseRequest{Worker: w.cfg.Name, PlanHash: w.planHash}, &lr)
		if err != nil {
			var pe *ProtoError
			switch {
			case errors.As(err, &pe) && pe.Code == CodeNoPlan:
				// The coordinator restarted from an empty data directory;
				// re-register and carry on.
				w.logf.Printf("coordinator lost the plan; re-registering")
				if rerr := w.register(ctx); rerr != nil {
					return rerr
				}
			case errors.As(err, &pe) && fatalCode(pe.Code):
				return err
			default:
				attempt++
				w.stats.Reconnects++
				w.logf.Printf("lease: %v (retrying)", err)
				if serr := w.sleep(ctx, w.backoff(attempt)); serr != nil {
					return serr
				}
			}
			continue
		}
		attempt = 0
		if lr.Done {
			w.logf.Printf("sweep complete: %d ranges, %d tasks run here", w.stats.Ranges, w.stats.Tasks)
			return nil
		}
		if lr.LeaseID == "" {
			wait := time.Duration(lr.WaitMS) * time.Millisecond
			if wait <= 0 {
				wait = 250 * time.Millisecond
			}
			if serr := w.sleep(ctx, wait); serr != nil {
				return serr
			}
			continue
		}
		if err := w.runLease(ctx, &lr); err != nil {
			return err
		}
	}
}

// runLease executes one leased range and commits (or fails) it.
func (w *worker[T]) runLease(ctx context.Context, lr *LeaseResponse) error {
	sub, err := sched.SliceRange(w.tasks, lr.Range)
	if err != nil {
		return fmt.Errorf("dist: lease %s: %w", lr.LeaseID, err)
	}
	// Double-check the shard against the coordinator's view of it; a
	// mismatch means the plans diverged and nothing should run.
	if len(lr.TaskIDs) != len(sub) {
		return fmt.Errorf("dist: lease %s names %d tasks, range %s covers %d", lr.LeaseID, len(lr.TaskIDs), lr.Range, len(sub))
	}
	for i, t := range sub {
		if lr.TaskIDs[i] != t.ID {
			return fmt.Errorf("dist: lease %s task %d is %q here, %q on the coordinator", lr.LeaseID, i, t.ID, lr.TaskIDs[i])
		}
	}
	spec := ""
	if lr.Speculative {
		spec = " (speculative)"
	}
	w.logf.Printf("lease %s: running range %d %s (%d tasks)%s", lr.LeaseID, lr.RangeIdx, lr.Range, len(sub), spec)

	// Heartbeat at a third of the TTL while the range computes. Heartbeat
	// failures never stop the work: commitment is lease-independent, so the
	// worst case is another worker duplicating byte-identical results.
	ttl := time.Duration(lr.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	hbCtx, hbStop := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-w.cfg.Clock.After(ttl / 3):
			}
			var hr HeartbeatResponse
			err := w.cl.post(hbCtx, "/v1/heartbeat", &HeartbeatRequest{Worker: w.cfg.Name, LeaseID: lr.LeaseID}, &hr)
			var pe *ProtoError
			switch {
			case err == nil:
			case errors.As(err, &pe) && pe.Code == CodeLeaseUnknown:
				// The lease lapsed (or the coordinator restarted and re-armed
				// a different grant). Keep computing — the commit dedupes.
				w.stats.LapsedLeases++
				w.logf.Printf("lease %s lapsed; finishing the range anyway", lr.LeaseID)
				return
			case hbCtx.Err() != nil:
				return
			default:
				w.logf.Printf("heartbeat %s: %v", lr.LeaseID, err)
			}
		}
	}()

	res, runErr := sched.RunSweep(ctx, sched.SweepConfig{
		Tool: w.cfg.Tool, Fingerprint: w.cfg.Fingerprint,
		Runner: sched.Config{
			Workers: w.cfg.Workers, MaxRetries: w.cfg.Retries,
			Clock: w.cfg.Clock, Metrics: w.cfg.RunnerMetrics,
		},
		Metrics: w.cfg.Metrics, Tracer: w.cfg.Tracer,
	}, sub)
	hbStop()
	<-hbDone
	if ctx.Err() != nil {
		return ctx.Err()
	}

	if runErr != nil {
		// Local failure after retries: report it so the range re-dispatches
		// immediately, and let the coordinator's failure budget decide
		// whether the sweep survives.
		w.stats.Failures++
		fails := map[string]string{}
		if res != nil {
			for _, o := range res.Failed {
				if o.Err != nil {
					fails[o.ID] = o.Err.Error()
				}
			}
		}
		var fr FailResponse
		if err := w.cl.post(ctx, "/v1/fail", &FailRequest{
			Worker: w.cfg.Name, PlanHash: w.planHash, LeaseID: lr.LeaseID,
			RangeIdx: lr.RangeIdx, Errors: fails,
		}, &fr); err != nil {
			w.logf.Printf("fail report for range %d: %v", lr.RangeIdx, err)
		}
		w.logf.Printf("range %d failed locally: %v (budget remaining %d)", lr.RangeIdx, runErr, fr.Remaining)
		return nil
	}

	results := make(map[string]json.RawMessage, len(sub))
	for _, t := range sub {
		v, ok := res.Results[t.ID]
		if !ok {
			return fmt.Errorf("dist: range %d completed but task %q has no result", lr.RangeIdx, t.ID)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("dist: marshal result %q: %w", t.ID, err)
		}
		results[t.ID] = raw
	}
	return w.commit(ctx, lr, sub, results)
}

// commit delivers a completed range, retrying through transport errors and
// coordinator restarts — the work is done and perfectly good, and the
// coordinator dedupes, so at-least-once delivery is the right policy.
func (w *worker[T]) commit(ctx context.Context, lr *LeaseResponse, sub []sched.Task[T], results map[string]json.RawMessage) error {
	for attempt := 0; ; attempt++ {
		var rr ResultResponse
		err := w.cl.post(ctx, "/v1/result", &ResultRequest{
			Worker: w.cfg.Name, PlanHash: w.planHash, LeaseID: lr.LeaseID,
			RangeIdx: lr.RangeIdx, Range: lr.Range, Results: results,
		}, &rr)
		if err == nil {
			w.stats.Ranges++
			w.stats.Tasks += len(sub)
			if rr.Duplicate {
				w.stats.Duplicates++
				w.logf.Printf("range %d already committed; deduped", lr.RangeIdx)
			} else {
				w.logf.Printf("range %d committed (%d tasks)", lr.RangeIdx, len(sub))
			}
			return nil
		}
		var pe *ProtoError
		switch {
		case errors.As(err, &pe) && pe.Code == CodeNoPlan:
			// Coordinator restarted empty mid-range: re-register, then
			// retry the commit.
			if rerr := w.register(ctx); rerr != nil {
				return rerr
			}
		case errors.As(err, &pe) && fatalCode(pe.Code):
			return err
		default:
			w.stats.Reconnects++
			w.logf.Printf("commit range %d: %v (retrying)", lr.RangeIdx, err)
			if serr := w.sleep(ctx, w.backoff(attempt)); serr != nil {
				return serr
			}
		}
	}
}
