// Chaos harness for the distributed sweep fabric. One stable listener
// fronts a coordinator that is kill -9'd and restarted from its journal
// mid-sweep, while seeded chaos kills workers mid-range and partitions one
// past its lease TTL so its range is reassigned and its eventual commit
// arrives late. The assertion is the tentpole contract: the merged sweep
// report is byte-identical to an uninterrupted single-process run, with
// zero lost tasks, zero double-counted tasks, and zero determinism
// violations — whatever the interleaving.
//
// `make dist-chaos` runs this file with -race; DIST_CHAOS_SEED reseeds the
// fault plan, DIST_CHAOS_ARTIFACT_DIR keeps the journal and both
// checkpoints for post-mortem (CI uploads them on failure).
package dist

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hef/internal/leakcheck"
	"hef/internal/sched"
)

// distChaosSeed seeds the fault plan; override with DIST_CHAOS_SEED.
func distChaosSeed(t *testing.T) uint64 {
	if s := os.Getenv("DIST_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("DIST_CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return 20230401
}

// distArtifactDir places the journal and checkpoints under
// DIST_CHAOS_ARTIFACT_DIR when set, else in the test's temp dir.
func distArtifactDir(t *testing.T) string {
	if dir := os.Getenv("DIST_CHAOS_ARTIFACT_DIR"); dir != "" {
		sub := filepath.Join(dir, t.Name())
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	return t.TempDir()
}

// distChaosRand is the same splitmix64 draw the runner's jitter uses, so
// the fault plan is a pure function of the seed.
func distChaosRand(seed uint64, k int) uint64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(k+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// partitionTransport simulates a network partition that provably lands
// mid-lease: it arms on the first heartbeat it carries (a worker only
// heartbeats while holding a lease and computing) and then fails every
// request — that heartbeat included — at the transport layer for window.
// The worker keeps computing, its heartbeats die, its lease lapses on the
// coordinator, and its commit can only arrive after the range has been
// reassigned.
type partitionTransport struct {
	window    time.Duration
	arm       sync.Once
	dropUntil atomic.Int64 // unix nanos; requests fail while now < dropUntil
}

func (p *partitionTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if strings.HasSuffix(r.URL.Path, "/v1/heartbeat") {
		p.arm.Do(func() { p.dropUntil.Store(time.Now().Add(p.window).UnixNano()) })
	}
	if time.Now().UnixNano() < p.dropUntil.Load() {
		return nil, fmt.Errorf("chaos: partitioned")
	}
	return http.DefaultTransport.RoundTrip(r)
}

func TestDistChaosMergedReportByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	seed := distChaosSeed(t)
	t.Logf("DIST_CHAOS_SEED=%d", seed)

	const (
		tool      = "chaossweep"
		fp        = "seed=11 chaos=1"
		nTasks    = 40
		rangeSize = 4
		leaseTTL  = 250 * time.Millisecond
	)
	// Tasks burn a few milliseconds each so kills and partitions land
	// mid-range, but the result depends only on the task index.
	tasks := make([]sched.Task[taskResult], nTasks)
	for i := 0; i < nTasks; i++ {
		i := i
		id := fmt.Sprintf("t%03d", i)
		tasks[i] = sched.Task[taskResult]{ID: id, Run: func(ctx context.Context) (taskResult, error) {
			select {
			case <-time.After(time.Duration(1+i%3) * time.Millisecond):
			case <-ctx.Done():
				return taskResult{}, ctx.Err()
			}
			return taskResult{ID: id, Value: float64(i) * 2.25, Tags: []int{i, i * 7}}, nil
		}}
	}
	want := serialCheckpointBytes(t, tool, fp, tasks)

	// The partitioned worker runs the same tasks slowed down, so it holds
	// each lease long enough to heartbeat (and so the partition outlives
	// the lease while it computes). The results are byte-identical — only
	// the schedule differs.
	slowTasks := make([]sched.Task[taskResult], len(tasks))
	copy(slowTasks, tasks)
	for i := range slowTasks {
		run := slowTasks[i].Run
		slowTasks[i].Run = func(ctx context.Context) (taskResult, error) {
			select {
			case <-time.After(60 * time.Millisecond):
			case <-ctx.Done():
				return taskResult{}, ctx.Err()
			}
			return run(ctx)
		}
	}

	artDir := distArtifactDir(t)
	dataDir := filepath.Join(artDir, "coordinator")
	logW := newTestLogWriter(t)
	newCoord := func() *Coordinator {
		c, err := NewCoordinator(Config{
			DataDir: dataDir, RangeSize: rangeSize,
			LeaseTTL: leaseTTL, StragglerAfter: 3 * leaseTTL,
			LogW: logW,
		})
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
		return c
	}

	// One stable listener whose backing coordinator is swapped across
	// kill -9 restarts, so workers keep one URL throughout. Counters from
	// killed incarnations are accumulated so the fault-injection proof
	// below survives the restarts (counts are in-memory, not journaled).
	var cmu sync.Mutex
	coord := newCoord()
	var acc Counts
	addCounts := func(a, b Counts) Counts {
		return Counts{
			Granted: a.Granted + b.Granted, Expired: a.Expired + b.Expired,
			Speculative: a.Speculative + b.Speculative, Committed: a.Committed + b.Committed,
			Duplicates: a.Duplicates + b.Duplicates, LateCommits: a.LateCommits + b.LateCommits,
			Heartbeats: a.Heartbeats + b.Heartbeats, Failures: a.Failures + b.Failures,
			Violations: a.Violations + b.Violations,
		}
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cmu.Lock()
		h := NewHandler(coord, nil, nil)
		cmu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()
	defer func() {
		cmu.Lock()
		_ = coord.Close()
		cmu.Unlock()
	}()

	// killCoordinator is the kill -9: drop the handle (appends are fsynced
	// record by record, so closing adds no durability) and restart from
	// the journal.
	killCoordinator := func() {
		cmu.Lock()
		acc = addCounts(acc, coord.Counts())
		_ = coord.Close()
		coord = newCoord()
		cmu.Unlock()
	}
	status := func() *StatusResponse {
		cmu.Lock()
		defer cmu.Unlock()
		return coord.Status()
	}

	// masterCtx stops every unbounded worker if the test bails out early;
	// its deferred cancel runs before srv.Close, so the listener can drain.
	masterCtx, masterCancel := context.WithCancel(context.Background())
	defer masterCancel()

	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		wErrs []string
	)
	spawn := func(name string, lifetime time.Duration, hc *http.Client, ts []sched.Task[taskResult]) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := masterCtx, context.CancelFunc(func() {})
			if lifetime > 0 {
				ctx, cancel = context.WithTimeout(masterCtx, lifetime)
			}
			defer cancel()
			_, err := RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL, Name: name,
				Tool: tool, Fingerprint: fp, Workers: 2,
				Client: hc, PollMax: 50 * time.Millisecond,
				LogW: logW,
			}, ts)
			// A killed worker returns its context error; anything else is a
			// contract violation.
			if err != nil && ctx.Err() == nil {
				errMu.Lock()
				wErrs = append(wErrs, fmt.Sprintf("worker %s: %v", name, err))
				errMu.Unlock()
			}
		}()
	}

	// The partitioned worker: starts healthy, loses the network at its
	// first mid-range heartbeat for 3.5 lease TTLs (lease lapses, range
	// reassigned), then heals and delivers its late, byte-identical commit.
	part := &partitionTransport{window: 7 * leaseTTL / 2}
	spawn("partitioned", 0, &http.Client{Timeout: 5 * time.Second, Transport: part}, slowTasks)

	// Seeded churn: short-lived workers killed mid-range, replacements
	// spawned, and the coordinator kill -9'd twice along the way.
	deadline := time.Now().Add(60 * time.Second)
	k := 1
	for round := 0; ; round++ {
		if st := status(); st.Done {
			break
		}
		if time.Now().After(deadline) {
			masterCancel()
			wg.Wait()
			t.Fatalf("sweep not done before deadline: %+v", status())
		}
		// Up to two churning workers per round with seeded lifetimes; a
		// lifetime under ~150ms dies mid-range with leases outstanding.
		for i := 0; i < int(distChaosRand(seed, k)%2+1); i++ {
			k++
			life := time.Duration(distChaosRand(seed, k)%400+60) * time.Millisecond
			spawn(fmt.Sprintf("churn-%d-%d", round, i), life, nil, tasks)
		}
		k++
		if round == 2 || round == 5 {
			killCoordinator()
		}
		time.Sleep(150 * time.Millisecond)
	}
	// The unbounded partitioned worker doubles as the finisher: it runs
	// until the coordinator reports the sweep done, so the loop above only
	// has to keep churning, not to guarantee completion.
	wg.Wait()
	errMu.Lock()
	for _, e := range wErrs {
		t.Error(e)
	}
	errMu.Unlock()

	// The partitioned worker and churners are gone; the sweep must be
	// complete with nothing lost and nothing double-counted.
	st := status()
	if !st.Done || st.RangesDone != st.Ranges {
		t.Fatalf("sweep incomplete after drain: %+v", st)
	}
	total := addCounts(acc, st.Counts)
	if total.Violations != 0 {
		t.Fatalf("determinism violations: %+v", total)
	}
	if st.Failed != "" {
		t.Fatalf("sweep failed: %s", st.Failed)
	}
	// The fault-injection proof: the partitioned worker's lease really
	// lapsed past its TTL, and its post-heal commit was really absorbed as
	// a late or duplicate delivery rather than double-counted.
	if total.Expired == 0 {
		t.Fatalf("no lease ever expired — the partition did not outlive a lease: %+v", total)
	}
	if total.Duplicates+total.LateCommits == 0 {
		t.Fatalf("no late or duplicate commit was absorbed: %+v", total)
	}

	cmu.Lock()
	cp, err := coord.MergedCheckpoint()
	cmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	mergedPath := filepath.Join(artDir, "merged.ckpt")
	if err := os.WriteFile(mergedPath, got, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(artDir, "baseline.ckpt"), want, 0o644); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("merged checkpoint differs from uninterrupted single-process run (see %s)", artDir)
	}
	if len(cp.Done) != nTasks {
		t.Fatalf("merged checkpoint holds %d tasks, want %d", len(cp.Done), nTasks)
	}
	t.Logf("chaos counts (all incarnations): %+v", total)
}

// testLogWriter routes coordinator/worker logs through t.Logf so a failed
// chaos run carries its own narrative; it goes quiet at test cleanup so a
// straggling goroutine cannot log into a finished test.
type testLogWriter struct {
	t  *testing.T
	mu sync.Mutex
	ok bool
}

func newTestLogWriter(t *testing.T) *testLogWriter {
	w := &testLogWriter{t: t, ok: true}
	t.Cleanup(func() {
		w.mu.Lock()
		w.ok = false
		w.mu.Unlock()
	})
	return w
}

func (w *testLogWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ok {
		w.t.Logf("%s", p)
	}
	return len(p), nil
}
