package dist

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzDistProtocol drives every coordinator wire-message decoder with
// arbitrary bytes. The decoders sit on the network boundary — any byte
// string a client can send must either decode into a validated message or
// come back as a typed bad_json/invalid_request refusal; panics,
// unvalidated messages, and untyped errors are all bugs.
func FuzzDistProtocol(f *testing.F) {
	f.Add(0, []byte(`{"version":1,"tool":"t","fingerprint":"f","task_ids":["a","b"],"worker":"w"}`))
	f.Add(1, []byte(`{"worker":"w","plan_hash":"abc"}`))
	f.Add(2, []byte(`{"worker":"w","lease_id":"L000001"}`))
	f.Add(3, []byte(`{"worker":"w","plan_hash":"abc","range_idx":0,"range":{"start":0,"end":1},"results":{"a":{"v":1}}}`))
	f.Add(4, []byte(`{"worker":"w","plan_hash":"abc","range_idx":2,"errors":{"a":"boom"}}`))
	f.Add(3, []byte(`{"worker":"w","plan_hash":"abc","range_idx":-1,"range":{"start":3,"end":1},"results":{"":null}}`))
	f.Add(0, []byte(`{"version":99}`))
	f.Add(1, []byte(`not json at all`))
	f.Add(2, []byte(``))

	f.Fuzz(func(t *testing.T, kind int, data []byte) {
		var msg interface{ Validate() error }
		var err error
		switch ((kind % 5) + 5) % 5 { // Go's % keeps the sign of kind
		case 0:
			msg, err = DecodePlanRequest(data)
		case 1:
			msg, err = DecodeLeaseRequest(data)
		case 2:
			msg, err = DecodeHeartbeatRequest(data)
		case 3:
			msg, err = DecodeResultRequest(data)
		case 4:
			msg, err = DecodeFailRequest(data)
		}
		if err != nil {
			// Refusals must be typed protocol errors from the closed set.
			var pe *ProtoError
			if !errors.As(err, &pe) {
				t.Fatalf("untyped decode error: %v", err)
			}
			if pe.Code != CodeBadJSON && pe.Code != CodeInvalid {
				t.Fatalf("decode refused with code %q, want bad_json or invalid_request", pe.Code)
			}
			return
		}
		// An accepted message must satisfy its own contract (Validate is
		// idempotent) and survive a marshal round-trip.
		if verr := msg.Validate(); verr != nil {
			t.Fatalf("decoder accepted a message its own Validate refuses: %v", verr)
		}
		if _, merr := json.Marshal(msg); merr != nil {
			t.Fatalf("accepted message does not re-marshal: %v", merr)
		}
	})
}
