package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hef/internal/leakcheck"
	"hef/internal/sched"
)

// testPlan builds a PlanRequest over n synthetic tasks.
func testPlan(n int) *PlanRequest {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("t%03d", i)
	}
	return &PlanRequest{
		Version: ProtocolVersion, Tool: "testsweep", Fingerprint: "seed=1",
		TaskIDs: ids, Worker: "w1",
	}
}

// resultsFor fabricates the deterministic result bytes for a range: what a
// worker's json.Marshal of the task value would produce.
func resultsFor(ids []string, r sched.Range) map[string]json.RawMessage {
	out := map[string]json.RawMessage{}
	for _, id := range ids[r.Start:r.End] {
		out[id] = json.RawMessage(fmt.Sprintf(`{"id":%q,"v":1}`, id))
	}
	return out
}

func newTestCoordinator(t *testing.T, dir string, clock sched.Clock) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(Config{
		DataDir: dir, RangeSize: 4,
		LeaseTTL: 10 * time.Second, StragglerAfter: 30 * time.Second,
		Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func wantCode(t *testing.T, err error, code string) {
	t.Helper()
	var pe *ProtoError
	if !errors.As(err, &pe) || pe.Code != code {
		t.Fatalf("error = %v, want code %s", err, code)
	}
}

func TestCoordinatorLeaseExpiryAndReassignment(t *testing.T) {
	leakcheck.Check(t)
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	c := newTestCoordinator(t, t.TempDir(), clock)

	plan := testPlan(8) // 2 ranges of 4
	pr, err := c.RegisterPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Ranges != 2 || pr.RangeSize != 4 {
		t.Fatalf("plan response %+v", pr)
	}

	l1, err := c.Lease(&LeaseRequest{Worker: "w1", PlanHash: pr.PlanHash})
	if err != nil || l1.LeaseID == "" || l1.RangeIdx != 0 {
		t.Fatalf("first lease %+v, %v", l1, err)
	}
	l2, err := c.Lease(&LeaseRequest{Worker: "w2", PlanHash: pr.PlanHash})
	if err != nil || l2.RangeIdx != 1 {
		t.Fatalf("second lease %+v, %v", l2, err)
	}
	// Both ranges leased and healthy: a third worker gets a wait hint.
	l3, err := c.Lease(&LeaseRequest{Worker: "w3", PlanHash: pr.PlanHash})
	if err != nil || l3.LeaseID != "" || l3.WaitMS <= 0 {
		t.Fatalf("third lease %+v, %v", l3, err)
	}

	// w1 heartbeats; w2 goes silent. After the TTL, w2's lease lapses and
	// its range is reassigned, while w1's renewed lease holds.
	clock.Advance(6 * time.Second)
	if _, err := c.Heartbeat(&HeartbeatRequest{Worker: "w1", LeaseID: l1.LeaseID}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(6 * time.Second) // w2 now 12s silent > 10s TTL
	l4, err := c.Lease(&LeaseRequest{Worker: "w3", PlanHash: pr.PlanHash})
	if err != nil || l4.RangeIdx != 1 || l4.Speculative {
		t.Fatalf("reassigned lease %+v, %v", l4, err)
	}
	if got := c.Counts().Expired; got != 1 {
		t.Fatalf("expired = %d, want 1", got)
	}
	// The lapsed worker's heartbeat is now a typed refusal.
	_, err = c.Heartbeat(&HeartbeatRequest{Worker: "w2", LeaseID: l2.LeaseID})
	wantCode(t, err, CodeLeaseUnknown)

	// The lapsed worker's commit is still welcome: lease-independent,
	// counted as a late commit.
	if _, err := c.Commit(&ResultRequest{
		Worker: "w2", PlanHash: pr.PlanHash, LeaseID: l2.LeaseID,
		RangeIdx: 1, Range: l2.Range, Results: resultsFor(plan.TaskIDs, l2.Range),
	}); err != nil {
		t.Fatal(err)
	}
	if counts := c.Counts(); counts.LateCommits != 1 || counts.Committed != 1 {
		t.Fatalf("counts after late commit: %+v", counts)
	}

	// w3's duplicate of the same range dedupes byte-identically.
	rr, err := c.Commit(&ResultRequest{
		Worker: "w3", PlanHash: pr.PlanHash, LeaseID: l4.LeaseID,
		RangeIdx: 1, Range: l4.Range, Results: resultsFor(plan.TaskIDs, l4.Range),
	})
	if err != nil || !rr.Duplicate || rr.Committed {
		t.Fatalf("duplicate commit %+v, %v", rr, err)
	}

	// Complete the sweep.
	if _, err := c.Commit(&ResultRequest{
		Worker: "w1", PlanHash: pr.PlanHash, LeaseID: l1.LeaseID,
		RangeIdx: 0, Range: l1.Range, Results: resultsFor(plan.TaskIDs, l1.Range),
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("done channel not closed after final commit")
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	lr, err := c.Lease(&LeaseRequest{Worker: "w1", PlanHash: pr.PlanHash})
	if err != nil || !lr.Done {
		t.Fatalf("lease after completion %+v, %v", lr, err)
	}
}

func TestCoordinatorSpeculativeRedispatch(t *testing.T) {
	leakcheck.Check(t)
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	c := newTestCoordinator(t, t.TempDir(), clock)
	plan := testPlan(4) // one range
	pr, _ := c.RegisterPlan(plan)

	l1, err := c.Lease(&LeaseRequest{Worker: "w1", PlanHash: pr.PlanHash})
	if err != nil || l1.LeaseID == "" {
		t.Fatal(err)
	}
	// w1 keeps heartbeating but never finishes. Before the straggler
	// deadline a second worker only gets a wait hint; after it, a
	// speculative lease on the same range — but never to w1 itself.
	for i := 0; i < 5; i++ {
		clock.Advance(6 * time.Second)
		if _, err := c.Heartbeat(&HeartbeatRequest{Worker: "w1", LeaseID: l1.LeaseID}); err != nil {
			t.Fatal(err)
		}
		if i == 1 { // 12s < 30s straggler deadline
			lr, err := c.Lease(&LeaseRequest{Worker: "w2", PlanHash: pr.PlanHash})
			if err != nil || lr.LeaseID != "" {
				t.Fatalf("premature speculative lease %+v, %v", lr, err)
			}
		}
	}
	// 30s elapsed: w1 asking again still gets a wait (it already holds the
	// range); w2 gets the speculative grant.
	self, err := c.Lease(&LeaseRequest{Worker: "w1", PlanHash: pr.PlanHash})
	if err != nil || self.LeaseID != "" {
		t.Fatalf("self-speculation %+v, %v", self, err)
	}
	spec, err := c.Lease(&LeaseRequest{Worker: "w2", PlanHash: pr.PlanHash})
	if err != nil || !spec.Speculative || spec.RangeIdx != 0 {
		t.Fatalf("speculative lease %+v, %v", spec, err)
	}
	// MaxLeasesPerRange (2) caps further speculation.
	lr, err := c.Lease(&LeaseRequest{Worker: "w3", PlanHash: pr.PlanHash})
	if err != nil || lr.LeaseID != "" {
		t.Fatalf("over-speculation %+v, %v", lr, err)
	}
	if got := c.Counts().Speculative; got != 1 {
		t.Fatalf("speculative = %d, want 1", got)
	}

	// The speculative twin commits first; w1's later duplicate dedupes.
	r := spec.Range
	if _, err := c.Commit(&ResultRequest{
		Worker: "w2", PlanHash: pr.PlanHash, LeaseID: spec.LeaseID,
		RangeIdx: 0, Range: r, Results: resultsFor(plan.TaskIDs, r),
	}); err != nil {
		t.Fatal(err)
	}
	rr, err := c.Commit(&ResultRequest{
		Worker: "w1", PlanHash: pr.PlanHash, LeaseID: l1.LeaseID,
		RangeIdx: 0, Range: r, Results: resultsFor(plan.TaskIDs, r),
	})
	if err != nil || !rr.Duplicate {
		t.Fatalf("first worker's commit %+v, %v", rr, err)
	}
}

func TestCoordinatorJournalReplayAfterKill(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	plan := testPlan(12) // 3 ranges of 4

	c1, err := NewCoordinator(Config{DataDir: dir, RangeSize: 4, LeaseTTL: 10 * time.Second, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := c1.RegisterPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	l0, _ := c1.Lease(&LeaseRequest{Worker: "w1", PlanHash: pr.PlanHash})
	if _, err := c1.Commit(&ResultRequest{
		Worker: "w1", PlanHash: pr.PlanHash, LeaseID: l0.LeaseID,
		RangeIdx: 0, Range: l0.Range, Results: resultsFor(plan.TaskIDs, l0.Range),
	}); err != nil {
		t.Fatal(err)
	}
	l1, _ := c1.Lease(&LeaseRequest{Worker: "w2", PlanHash: pr.PlanHash})
	if l1.RangeIdx != 1 {
		t.Fatalf("lease went to range %d", l1.RangeIdx)
	}
	// kill -9: no graceful shutdown beyond dropping the handle (appends
	// are fsynced individually, so Close adds no durability).
	_ = c1.Close()

	// Restart under a different -range-size: the journaled sharding wins.
	c2, err := NewCoordinator(Config{DataDir: dir, RangeSize: 99, LeaseTTL: 10 * time.Second, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := c2.Status()
	if st.PlanHash != pr.PlanHash || st.Ranges != 3 || st.RangesDone != 1 {
		t.Fatalf("restarted status %+v", st)
	}
	// w2's pre-crash lease was re-armed: its heartbeat still lands, and
	// range 1 is not handed to anyone else while it lives.
	if _, err := c2.Heartbeat(&HeartbeatRequest{Worker: "w2", LeaseID: l1.LeaseID}); err != nil {
		t.Fatalf("re-armed lease heartbeat: %v", err)
	}
	lr, err := c2.Lease(&LeaseRequest{Worker: "w3", PlanHash: pr.PlanHash})
	if err != nil || lr.RangeIdx != 2 {
		t.Fatalf("post-restart lease %+v, %v", lr, err)
	}
	// Registering the same plan again is idempotent; a different plan is
	// refused.
	if _, err := c2.RegisterPlan(plan); err != nil {
		t.Fatal(err)
	}
	other := testPlan(12)
	other.Fingerprint = "seed=2"
	_, err = c2.RegisterPlan(other)
	wantCode(t, err, CodePlanMismatch)

	// Finish ranges 1 and 2; a second restart then reports done and merges.
	for _, l := range []*LeaseResponse{l1, lr} {
		if _, err := c2.Commit(&ResultRequest{
			Worker: "wX", PlanHash: pr.PlanHash, LeaseID: l.LeaseID,
			RangeIdx: l.RangeIdx, Range: l.Range, Results: resultsFor(plan.TaskIDs, l.Range),
		}); err != nil {
			t.Fatal(err)
		}
	}
	_ = c2.Close()
	c3, err := NewCoordinator(Config{DataDir: dir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	select {
	case <-c3.Done():
	default:
		t.Fatal("restarted coordinator does not know the sweep is done")
	}
	cp, err := c3.MergedCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Done) != 12 {
		t.Fatalf("merged checkpoint holds %d tasks", len(cp.Done))
	}
	// The merged checkpoint is byte-identical to a serially-built one.
	serial := sched.NewCheckpoint("testsweep", "seed=1")
	for id, raw := range resultsFor(plan.TaskIDs, sched.Range{Start: 0, End: 12}) {
		serial.Done[id] = raw
	}
	a, _ := cp.Marshal()
	b, _ := serial.Marshal()
	if string(a) != string(b) {
		t.Fatalf("merged checkpoint differs from serial:\n%s\n----\n%s", a, b)
	}
}

func TestCoordinatorDeterminismViolationFailsSweep(t *testing.T) {
	leakcheck.Check(t)
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	c := newTestCoordinator(t, t.TempDir(), clock)
	plan := testPlan(4)
	pr, _ := c.RegisterPlan(plan)
	l, _ := c.Lease(&LeaseRequest{Worker: "w1", PlanHash: pr.PlanHash})
	good := resultsFor(plan.TaskIDs, l.Range)
	if _, err := c.Commit(&ResultRequest{
		Worker: "w1", PlanHash: pr.PlanHash, LeaseID: l.LeaseID,
		RangeIdx: 0, Range: l.Range, Results: good,
	}); err != nil {
		t.Fatal(err)
	}
	bad := resultsFor(plan.TaskIDs, l.Range)
	bad["t001"] = json.RawMessage(`{"id":"t001","v":2}`)
	_, err := c.Commit(&ResultRequest{
		Worker: "w2", PlanHash: pr.PlanHash,
		RangeIdx: 0, Range: l.Range, Results: bad,
	})
	wantCode(t, err, CodeDeterminism)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Fatalf("sweep not failed: %v", err)
	}
	_, err = c.Lease(&LeaseRequest{Worker: "w2", PlanHash: pr.PlanHash})
	wantCode(t, err, CodeSweepFailed)
}

func TestCoordinatorFailureBudget(t *testing.T) {
	leakcheck.Check(t)
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	c, err := NewCoordinator(Config{
		DataDir: t.TempDir(), RangeSize: 4, FailLimit: 2, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	plan := testPlan(4)
	pr, _ := c.RegisterPlan(plan)

	l, _ := c.Lease(&LeaseRequest{Worker: "w1", PlanHash: pr.PlanHash})
	fr, err := c.Fail(&FailRequest{
		Worker: "w1", PlanHash: pr.PlanHash, LeaseID: l.LeaseID, RangeIdx: 0,
		Errors: map[string]string{"t000": "boom"},
	})
	if err != nil || fr.Remaining != 1 {
		t.Fatalf("first failure %+v, %v", fr, err)
	}
	// The failure released the lease immediately — no TTL wait before
	// the range re-dispatches.
	l2, err := c.Lease(&LeaseRequest{Worker: "w2", PlanHash: pr.PlanHash})
	if err != nil || l2.RangeIdx != 0 {
		t.Fatalf("re-dispatch after failure %+v, %v", l2, err)
	}
	if _, err := c.Fail(&FailRequest{
		Worker: "w2", PlanHash: pr.PlanHash, LeaseID: l2.LeaseID, RangeIdx: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err == nil {
		t.Fatal("failure budget exhausted but sweep not failed")
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("done channel not closed on terminal failure")
	}
}

func TestCoordinatorJournalTornTailSalvage(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	plan := testPlan(8)
	c1, err := NewCoordinator(Config{DataDir: dir, RangeSize: 4, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := c1.RegisterPlan(plan)
	l, _ := c1.Lease(&LeaseRequest{Worker: "w1", PlanHash: pr.PlanHash})
	if _, err := c1.Commit(&ResultRequest{
		Worker: "w1", PlanHash: pr.PlanHash, LeaseID: l.LeaseID,
		RangeIdx: 0, Range: l.Range, Results: resultsFor(plan.TaskIDs, l.Range),
	}); err != nil {
		t.Fatal(err)
	}
	_ = c1.Close()

	// Tear the journal tail mid-record, the kill -9 artifact.
	path := filepath.Join(dir, JournalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, 0x30, 0x00, 0x00, 0x00, 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCoordinator(Config{DataDir: dir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := c2.Status()
	if st.RangesDone != 1 || st.Ranges != 2 {
		t.Fatalf("salvaged status %+v", st)
	}
	if _, err := os.ReadFile(path + ".quarantine"); err != nil {
		t.Fatalf("no quarantine sidecar: %v", err)
	}
	// The salvaged journal keeps accepting appends.
	l2, err := c2.Lease(&LeaseRequest{Worker: "w2", PlanHash: pr.PlanHash})
	if err != nil || l2.RangeIdx != 1 {
		t.Fatalf("lease after salvage %+v, %v", l2, err)
	}
}
