package dist

import (
	"errors"
	"io"
	"net/http"
	"strings"

	"hef/internal/httpapi"
)

// NewHandler builds the coordinator's HTTP API. keys supplies the current
// API keyring per request (hot-reloadable; nil func or empty ring turns
// auth off). tel, when non-nil, serves the telemetry endpoints on the same
// listener. The surface mirrors hefd's: Go 1.22 pattern routing, Bearer
// keys, and the shared typed error envelope — a scope=ro key may watch
// /v1/status but not drive the sweep.
func NewHandler(c *Coordinator, keys func() *httpapi.Keyring, tel http.Handler) http.Handler {
	auth := func(w http.ResponseWriter, r *http.Request, mutate bool) bool {
		if keys == nil {
			return true
		}
		ring := keys()
		if ring.Len() == 0 {
			return true
		}
		key, found := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !found || key == "" {
			httpapi.WriteAuth(w, &httpapi.AuthError{Code: httpapi.AuthMissing, Message: "missing or unrecognized API key"})
			return false
		}
		entry, ok := ring.Lookup(key)
		if !ok {
			httpapi.WriteAuth(w, &httpapi.AuthError{Code: httpapi.AuthMissing, Message: "missing or unrecognized API key"})
			return false
		}
		if mutate && entry.ReadOnly {
			httpapi.WriteAuth(w, &httpapi.AuthError{Code: httpapi.AuthForbidden, Message: "key is read-only (scope=ro)"})
			return false
		}
		return true
	}

	// handle wires one protocol POST: auth, bounded read, typed decode,
	// state-machine call, envelope on refusal.
	handle := func(mux *http.ServeMux, pattern string, call func(body []byte) (any, error)) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if !auth(w, r, true) {
				return
			}
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
			if err != nil {
				httpapi.WriteError(w, http.StatusBadRequest, httpapi.Error{Code: CodeBadJSON, Message: err.Error()})
				return
			}
			resp, err := call(body)
			if err != nil {
				writeProtoErr(w, err)
				return
			}
			httpapi.WriteJSON(w, http.StatusOK, resp)
		})
	}

	mux := http.NewServeMux()
	handle(mux, "POST /v1/plan", func(body []byte) (any, error) {
		req, err := DecodePlanRequest(body)
		if err != nil {
			return nil, err
		}
		return c.RegisterPlan(req)
	})
	handle(mux, "POST /v1/lease", func(body []byte) (any, error) {
		req, err := DecodeLeaseRequest(body)
		if err != nil {
			return nil, err
		}
		return c.Lease(req)
	})
	handle(mux, "POST /v1/heartbeat", func(body []byte) (any, error) {
		req, err := DecodeHeartbeatRequest(body)
		if err != nil {
			return nil, err
		}
		return c.Heartbeat(req)
	})
	handle(mux, "POST /v1/result", func(body []byte) (any, error) {
		req, err := DecodeResultRequest(body)
		if err != nil {
			return nil, err
		}
		return c.Commit(req)
	})
	handle(mux, "POST /v1/fail", func(body []byte) (any, error) {
		req, err := DecodeFailRequest(body)
		if err != nil {
			return nil, err
		}
		return c.Fail(req)
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		if !auth(w, r, false) {
			return
		}
		httpapi.WriteJSON(w, http.StatusOK, c.Status())
	})
	if tel != nil {
		for _, p := range []string{"/metrics", "/healthz", "/readyz", "/status"} {
			mux.Handle("GET "+p, tel)
		}
	}
	return mux
}

// writeProtoErr maps a state-machine refusal onto the shared envelope.
func writeProtoErr(w http.ResponseWriter, err error) {
	var pe *ProtoError
	if errors.As(err, &pe) {
		httpapi.WriteError(w, pe.Status, httpapi.Error{Code: pe.Code, Message: pe.Message})
		return
	}
	httpapi.WriteError(w, http.StatusInternalServerError, httpapi.Error{Code: CodeInternal, Message: err.Error()})
}
