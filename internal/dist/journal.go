package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"hef/internal/store"
)

// ErrStorage marks a journal append that could not be made durable. The
// coordinator refuses to grant or commit anything it cannot journal — its
// contract is that a kill -9 resumes the sweep with no lost and no
// double-counted work, so it never acknowledges state it could not persist.
var ErrStorage = errors.New("dist: sweep journal unavailable")

// JournalName is the coordinator's write-ahead log inside the data
// directory.
const JournalName = "sweep.log"

// Journal record kinds.
const (
	jnlPlan   = "plan"   // the sweep plan, fixed at first registration
	jnlGrant  = "grant"  // a lease grant: keeps the lease-ID sequence monotonic across restarts
	jnlResult = "result" // a committed range with its result bytes
)

// journalRecord is one framed record of the sweep journal. Every record is
// appended and fsynced before the effect it describes is acknowledged.
type journalRecord struct {
	Kind string `json:"kind"`

	// plan: the sharding inputs. RangeSize is journaled so a restart under a
	// different -range-size flag keeps the sharding the grants and results
	// were recorded against.
	Tool        string   `json:"tool,omitempty"`
	Fingerprint string   `json:"fingerprint,omitempty"`
	TaskIDs     []string `json:"task_ids,omitempty"`
	RangeSize   int      `json:"range_size,omitempty"`

	// grant / result.
	Seq      int    `json:"seq,omitempty"`
	RangeIdx int    `json:"range_idx"`
	Worker   string `json:"worker,omitempty"`

	// result: the range's result bytes, task ID → marshalled value.
	Results map[string]json.RawMessage `json:"results,omitempty"`
}

// jnlKindKnown reports whether kind is in the closed record-kind set.
func jnlKindKnown(kind string) bool {
	switch kind {
	case jnlPlan, jnlGrant, jnlResult:
		return true
	}
	return false
}

// journal is the coordinator's append-only, CRC-framed write-ahead log,
// with the same salvage discipline as hefd's job log: a torn or foreign
// tail is quarantined into a .quarantine sidecar and truncated away, so one
// interrupted append costs that record, never the log.
type journal struct {
	fs   store.FS
	path string

	mu       sync.Mutex
	f        store.File
	degraded string // first persistence failure; appends stop
	salvaged int    // bytes quarantined at open
}

// openJournal opens (creating if needed) the sweep journal in dir and
// replays its records in append order through replay.
func openJournal(fsys store.FS, dir string, replay func(journalRecord)) (*journal, error) {
	if fsys == nil {
		fsys = store.OS
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("dist: journal dir: %w", err)
	}
	j := &journal{fs: fsys, path: filepath.Join(dir, JournalName)}
	store.RemoveStaleTemps(fsys, j.path)

	data, err := fsys.ReadFile(j.path)
	if err != nil {
		// A missing journal is a fresh sweep; anything else (permission,
		// I/O) is fatal — silently starting empty would re-run committed
		// work and, worse, forget granted lease IDs.
		if _, statErr := fsys.Stat(j.path); statErr == nil {
			return nil, fmt.Errorf("dist: journal read: %w", err)
		}
		data = nil
	}
	validLen, scanErr := store.ScanRecords(data, func(payload []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("%w: journal record: %v", store.ErrCorrupt, err)
		}
		if !jnlKindKnown(rec.Kind) {
			return fmt.Errorf("%w: journal record kind %q unknown", store.ErrCorrupt, rec.Kind)
		}
		if replay != nil {
			replay(rec)
		}
		return nil
	})
	if scanErr != nil {
		j.quarantine(data[validLen:], validLen, scanErr)
		if err := fsys.Truncate(j.path, int64(validLen)); err != nil {
			return nil, fmt.Errorf("dist: journal truncate after salvage: %w", err)
		}
	}

	f, err := fsys.OpenAppend(j.path)
	if err != nil {
		return nil, fmt.Errorf("dist: journal open: %w", err)
	}
	j.f = f
	return j, nil
}

// quarantine preserves the invalid suffix in a sidecar: a one-line JSON
// header describing the event, then the raw bytes.
func (j *journal) quarantine(bad []byte, offset int, cause error) {
	j.salvaged = len(bad)
	side, err := j.fs.OpenAppend(j.path + ".quarantine")
	if err != nil {
		return // salvage still happened; only the post-mortem copy is lost
	}
	meta, _ := json.Marshal(map[string]any{
		"offset": offset, "bytes": len(bad), "reason": cause.Error(),
	})
	_, _ = side.Write(append(append(meta, '\n'), bad...))
	_ = side.Close()
}

// salvagedBytes reports how many bytes the open scan quarantined.
func (j *journal) salvagedBytes() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.salvaged
}

// append frames, writes, and fsyncs one record. The first failure degrades
// the journal — further appends return ErrStorage immediately.
func (j *journal) append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("%w: marshal: %w", ErrStorage, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded != "" {
		return fmt.Errorf("%w: %s", ErrStorage, j.degraded)
	}
	if j.f == nil {
		return fmt.Errorf("%w: closed", ErrStorage)
	}
	frame := store.AppendRecord(nil, payload)
	if _, err := j.f.Write(frame); err != nil {
		j.degraded = err.Error()
		return fmt.Errorf("%w: %w", ErrStorage, err)
	}
	if err := j.f.Sync(); err != nil {
		j.degraded = err.Error()
		return fmt.Errorf("%w: %w", ErrStorage, err)
	}
	return nil
}

// close releases the append handle. Every record is fsynced at append time,
// so close-without-sync is equivalent to a crash the journal already
// survives.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	return f.Close()
}
