package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hef/internal/httpapi"
	"hef/internal/leakcheck"
	"hef/internal/sched"
)

// taskResult is the synthetic task output for worker tests; a struct with
// nested data keeps the marshalling honest.
type taskResult struct {
	ID    string  `json:"id"`
	Value float64 `json:"value"`
	Tags  []int   `json:"tags"`
}

// e2eTasks builds n deterministic tasks whose results depend only on the
// task index — the byte-identity contract distributed execution rests on.
func e2eTasks(n int) []sched.Task[taskResult] {
	tasks := make([]sched.Task[taskResult], n)
	for i := 0; i < n; i++ {
		i := i
		id := fmt.Sprintf("t%03d", i)
		tasks[i] = sched.Task[taskResult]{ID: id, Run: func(context.Context) (taskResult, error) {
			return taskResult{ID: id, Value: float64(i) * 1.5, Tags: []int{i, i * i}}, nil
		}}
	}
	return tasks
}

// serialCheckpointBytes runs the sweep single-process and returns the saved
// checkpoint bytes — the baseline every distributed run must reproduce.
func serialCheckpointBytes(t *testing.T, tool, fp string, tasks []sched.Task[taskResult]) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "serial.ckpt")
	if _, err := sched.RunSweep(context.Background(), sched.SweepConfig{
		Tool: tool, Fingerprint: fp, CheckpointPath: path,
	}, tasks); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWorkerEndToEndMatchesSerial(t *testing.T) {
	leakcheck.Check(t)
	const tool, fp = "testsweep", "seed=7 n=20"
	tasks := e2eTasks(20)
	want := serialCheckpointBytes(t, tool, fp, tasks)

	c, err := NewCoordinator(Config{DataDir: t.TempDir(), RangeSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewHandler(c, nil, nil))
	defer srv.Close()

	var wg sync.WaitGroup
	stats := make([]*WorkerStats, 2)
	errs := make([]error, 2)
	for i := range stats {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[i], errs[i] = RunWorker(context.Background(), WorkerConfig{
				Coordinator: srv.URL, Name: fmt.Sprintf("w%d", i),
				Tool: tool, Fingerprint: fp, Workers: 2,
			}, tasks)
		}()
	}
	wg.Wait()
	ranTasks := 0
	for i := range stats {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		ranTasks += stats[i].Tasks
	}
	if ranTasks < 20 {
		t.Fatalf("workers ran %d tasks, plan has 20", ranTasks)
	}

	cp, err := c.MergedCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("merged checkpoint differs from serial run:\n%s\n----\n%s", got, want)
	}
	if c.Counts().Violations != 0 {
		t.Fatalf("determinism violations: %d", c.Counts().Violations)
	}
}

func TestWorkerFatalOnPlanMismatch(t *testing.T) {
	leakcheck.Check(t)
	c, err := NewCoordinator(Config{DataDir: t.TempDir(), RangeSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewHandler(c, nil, nil))
	defer srv.Close()

	tasks := e2eTasks(8)
	if _, err := c.RegisterPlan(&PlanRequest{
		Version: ProtocolVersion, Tool: "testsweep", Fingerprint: "seed=1",
		TaskIDs: taskIDsOf(tasks), Worker: "first",
	}); err != nil {
		t.Fatal(err)
	}
	// A worker whose flags produce a different fingerprint is refused up
	// front, before any work runs.
	_, err = RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv.URL, Tool: "testsweep", Fingerprint: "seed=2",
	}, tasks)
	wantCode(t, err, CodePlanMismatch)
}

func taskIDsOf(tasks []sched.Task[taskResult]) []string {
	ids, _ := sched.TaskIDs(tasks)
	return ids
}

func TestWorkerFailureReporting(t *testing.T) {
	leakcheck.Check(t)
	c, err := NewCoordinator(Config{DataDir: t.TempDir(), RangeSize: 2, FailLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewHandler(c, nil, nil))
	defer srv.Close()

	// One task fails deterministically: the worker reports the range, the
	// 1-report budget trips, and the worker exits on sweep_failed.
	tasks := e2eTasks(4)
	tasks[1].Run = func(context.Context) (taskResult, error) {
		return taskResult{}, fmt.Errorf("synthetic failure")
	}
	_, err = RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv.URL, Tool: "testsweep", Fingerprint: "seed=1",
	}, tasks)
	wantCode(t, err, CodeSweepFailed)
	if cErr := c.Err(); cErr == nil || !strings.Contains(cErr.Error(), "failed") {
		t.Fatalf("coordinator error: %v", cErr)
	}
	if c.Counts().Failures == 0 {
		t.Fatal("failure report not counted")
	}
}

func TestServerAuthScopes(t *testing.T) {
	leakcheck.Check(t)
	c, err := NewCoordinator(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ring, err := httpapi.ParseKeyring([]byte(
		"writer-key-123 ops\nreader-key-123 watch scope=ro\n"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c, func() *httpapi.Keyring { return ring }, nil))
	defer srv.Close()

	post := func(key, path, body string) (int, string) {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+path, strings.NewReader(body))
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Error struct{ Code string } `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env.Error.Code
	}
	leaseBody := `{"worker":"w1","plan_hash":"x"}`

	if code, ec := post("", "/v1/lease", leaseBody); code != 401 || ec != httpapi.AuthMissing {
		t.Fatalf("no key: %d %s", code, ec)
	}
	if code, ec := post("stolen-key-123", "/v1/lease", leaseBody); code != 401 || ec != httpapi.AuthMissing {
		t.Fatalf("unknown key: %d %s", code, ec)
	}
	// A read-only key cannot drive the sweep...
	if code, ec := post("reader-key-123", "/v1/lease", leaseBody); code != 403 || ec != httpapi.AuthForbidden {
		t.Fatalf("ro key on lease: %d %s", code, ec)
	}
	// ...but may watch it.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/status", nil)
	req.Header.Set("Authorization", "Bearer reader-key-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ro key on status: %d", resp.StatusCode)
	}
	// A writer key reaches the state machine (and gets its typed refusal,
	// since no plan is registered).
	if code, ec := post("writer-key-123", "/v1/lease", leaseBody); code != 409 || ec != CodeNoPlan {
		t.Fatalf("rw key on lease: %d %s", code, ec)
	}
	// Malformed bodies get the typed envelope, not a panic or a bare 500.
	if code, ec := post("writer-key-123", "/v1/lease", "{not json"); code != 400 || ec != CodeBadJSON {
		t.Fatalf("bad json: %d %s", code, ec)
	}
	if code, ec := post("writer-key-123", "/v1/plan", `{"version":99,"tool":"t","fingerprint":"f","task_ids":["a"],"worker":"w"}`); code != 400 || ec != CodeInvalid {
		t.Fatalf("bad version: %d %s", code, ec)
	}
}

func TestWorkerSurvivesCoordinatorRestart(t *testing.T) {
	leakcheck.Check(t)
	const tool, fp = "testsweep", "seed=3"
	tasks := e2eTasks(12)
	want := serialCheckpointBytes(t, tool, fp, tasks)
	dir := t.TempDir()

	c1, err := NewCoordinator(Config{DataDir: dir, RangeSize: 2})
	if err != nil {
		t.Fatal(err)
	}

	// A stable listener whose backing coordinator can be swapped: the
	// worker sees the same URL across the "kill -9" and restart.
	var mu sync.Mutex
	cur := c1
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h := NewHandler(cur, nil, nil)
		mu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	// Let one worker make some progress, then kill and restart the
	// coordinator from the same journal mid-sweep.
	half := make(chan struct{})
	var once sync.Once
	slowTasks := make([]sched.Task[taskResult], len(tasks))
	copy(slowTasks, tasks)
	done := 0
	var dmu sync.Mutex
	for i := range slowTasks {
		run := slowTasks[i].Run
		slowTasks[i].Run = func(ctx context.Context) (taskResult, error) {
			dmu.Lock()
			done++
			if done == 6 {
				once.Do(func() { close(half) })
			}
			dmu.Unlock()
			return run(ctx)
		}
	}
	workerDone := make(chan error, 1)
	go func() {
		_, err := RunWorker(context.Background(), WorkerConfig{
			Coordinator: srv.URL, Tool: tool, Fingerprint: fp,
			PollMax: 100 * time.Millisecond,
		}, slowTasks)
		workerDone <- err
	}()

	<-half
	mu.Lock()
	_ = c1.Close() // kill -9: appends were fsynced record-by-record
	c2, err := NewCoordinator(Config{DataDir: dir, RangeSize: 2})
	if err != nil {
		mu.Unlock()
		t.Fatal(err)
	}
	cur = c2
	mu.Unlock()
	defer c2.Close()

	if err := <-workerDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
	cp, err := c2.MergedCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("post-restart merged checkpoint differs from serial run")
	}
}
