// Package dist is the fault-tolerant distributed sweep fabric: a
// coordinator that shards a sweep's deterministic task list into
// fingerprint-addressed ranges and leases them to workers over a small
// HTTP/JSON protocol, and the worker loop the sweep tools run under their
// -coordinator flag.
//
// Robustness is the contract, not a feature:
//
//   - Ranges are held under expiring leases renewed by worker heartbeats. A
//     dead or partitioned worker's lease lapses and the range is reassigned.
//   - Execution is at-least-once, made safe because results are
//     content-addressed by (sweep fingerprint, task ID) and byte-identical
//     across runs — a duplicate commit dedupes by byte comparison, and a
//     byte mismatch is a determinism violation the coordinator refuses.
//   - The coordinator journals the plan, lease grants, and completed-range
//     results to a CRC-framed write-ahead log, so kill -9 at any byte
//     resumes with no lost and no double-counted work.
//   - Stragglers past a deadline are speculatively re-dispatched to a
//     second worker; the first durable commit wins.
//
// The merged output is a sched.Checkpoint holding every task's result in
// task order — byte-identical to the checkpoint a single-process
// sched.RunSweep would have written, which is what makes the final report
// bytes independent of how many machines (and crashes) produced them.
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"hef/internal/sched"
)

// ProtocolVersion gates the wire protocol: a coordinator refuses plans from
// a build speaking another version instead of guessing at field semantics.
const ProtocolVersion = 1

// MaxBodyBytes caps any protocol request body. A full range of result
// documents fits comfortably; a hostile or confused client cannot stream
// gigabytes into the decoder.
const MaxBodyBytes = 16 << 20

// MaxPlanTasks bounds a plan's task list; beyond it a request is treated as
// malformed rather than an allocation request.
const MaxPlanTasks = 1 << 20

// Typed refusal codes — the closed set carried in the shared error
// envelope's "code" field.
const (
	CodeBadJSON      = "bad_json"              // 400: body does not decode
	CodeInvalid      = "invalid_request"       // 400: decodes but violates the message contract
	CodeNoPlan       = "no_plan"               // 409: no plan registered yet; register and retry
	CodePlanMismatch = "plan_mismatch"         // 409: plan disagrees with the journaled one
	CodeLeaseUnknown = "lease_unknown"         // 409: heartbeat for a lease this coordinator no longer holds
	CodeSweepFailed  = "sweep_failed"          // 409: a range exhausted its failure budget; the sweep is terminal
	CodeDeterminism  = "determinism_violation" // 500: a duplicate commit disagreed byte-for-byte
	CodeStorage      = "storage_unavailable"   // 503: the journal cannot be appended; nothing is committed
	CodeInternal     = "internal"              // 500
)

// ProtoError is the typed protocol refusal, used symmetrically: the
// coordinator returns it from state-machine methods (the server maps it
// onto the envelope), and the worker's client reconstructs it from a
// response envelope so callers switch on Code, not substrings.
type ProtoError struct {
	Status  int
	Code    string
	Message string
}

func (e *ProtoError) Error() string { return fmt.Sprintf("dist: %s: %s", e.Code, e.Message) }

func errProto(status int, code, format string, args ...any) *ProtoError {
	return &ProtoError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// PlanRequest registers (or re-verifies) the sweep plan: the deterministic
// task order every participant derives from its own flags. The first
// registration fixes the plan; later ones must match it exactly, so a
// misconfigured worker is refused instead of silently mixing sweeps.
type PlanRequest struct {
	Version     int      `json:"version"`
	Tool        string   `json:"tool"`
	Fingerprint string   `json:"fingerprint"`
	TaskIDs     []string `json:"task_ids"`
	Worker      string   `json:"worker"`
}

// Validate enforces the message contract shared by server and fuzz target.
func (r *PlanRequest) Validate() error {
	if r.Version != ProtocolVersion {
		return fmt.Errorf("protocol version %d, this build speaks %d", r.Version, ProtocolVersion)
	}
	if r.Tool == "" || r.Fingerprint == "" || r.Worker == "" {
		return fmt.Errorf("tool, fingerprint, and worker must be non-empty")
	}
	if len(r.TaskIDs) == 0 {
		return fmt.Errorf("plan has no tasks")
	}
	if len(r.TaskIDs) > MaxPlanTasks {
		return fmt.Errorf("plan has %d tasks, limit %d", len(r.TaskIDs), MaxPlanTasks)
	}
	seen := make(map[string]int, len(r.TaskIDs))
	for i, id := range r.TaskIDs {
		if id == "" {
			return fmt.Errorf("task %d has an empty ID", i)
		}
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("task ID %q duplicated at positions %d and %d", id, prev, i)
		}
		seen[id] = i
	}
	return nil
}

// PlanResponse acknowledges a registration.
type PlanResponse struct {
	// PlanHash names the accepted plan; every later request carries it.
	PlanHash string `json:"plan_hash"`
	// Ranges and RangeSize describe the coordinator's sharding.
	Ranges    int  `json:"ranges"`
	RangeSize int  `json:"range_size"`
	Done      bool `json:"done,omitempty"`
}

// HashPlan is the content address of a sweep plan. Both sides compute it,
// so a worker detects a coordinator that somehow accepted a different plan
// before any work is wasted.
func HashPlan(tool, fingerprint string, taskIDs []string) string {
	h := sha256.New()
	h.Write([]byte(tool))
	h.Write([]byte{0})
	h.Write([]byte(fingerprint))
	h.Write([]byte{0})
	for _, id := range taskIDs {
		h.Write([]byte(id))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// LeaseRequest asks for a range to work on.
type LeaseRequest struct {
	Worker   string `json:"worker"`
	PlanHash string `json:"plan_hash"`
}

// Validate enforces the message contract.
func (r *LeaseRequest) Validate() error {
	if r.Worker == "" || r.PlanHash == "" {
		return fmt.Errorf("worker and plan_hash must be non-empty")
	}
	return nil
}

// LeaseResponse grants a range, asks the worker to wait, or declares the
// sweep complete. Exactly one of Done, WaitMS, or LeaseID is meaningful.
type LeaseResponse struct {
	Done bool `json:"done,omitempty"`
	// WaitMS is a poll hint when every range is leased and healthy.
	WaitMS int64 `json:"wait_ms,omitempty"`

	LeaseID  string      `json:"lease_id,omitempty"`
	RangeIdx int         `json:"range_idx,omitempty"`
	Range    sched.Range `json:"range,omitempty"`
	// TaskIDs double-checks the shard: the worker verifies them against its
	// own task order before running anything.
	TaskIDs []string `json:"task_ids,omitempty"`
	// TTLMS is the lease's renewal deadline: heartbeat at least this often
	// (workers renew at a third of it).
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Speculative marks a straggler re-dispatch: another worker still holds
	// a live lease on this range, and the first durable commit wins.
	Speculative bool `json:"speculative,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
}

// Validate enforces the message contract.
func (r *HeartbeatRequest) Validate() error {
	if r.Worker == "" || r.LeaseID == "" {
		return fmt.Errorf("worker and lease_id must be non-empty")
	}
	return nil
}

// HeartbeatResponse confirms the renewal.
type HeartbeatResponse struct {
	TTLMS int64 `json:"ttl_ms"`
}

// ResultRequest commits a completed range. Commitment is deliberately
// independent of lease state: the results are content-addressed and
// byte-deterministic, so a late commit from a lapsed lease is still
// perfectly good work — the coordinator dedupes, never double-counts.
type ResultRequest struct {
	Worker   string      `json:"worker"`
	PlanHash string      `json:"plan_hash"`
	LeaseID  string      `json:"lease_id,omitempty"`
	RangeIdx int         `json:"range_idx"`
	Range    sched.Range `json:"range"`
	// Results maps task ID to its marshalled result value — exactly the
	// bytes a single-process sweep's checkpoint would hold for that task.
	Results map[string]json.RawMessage `json:"results"`
}

// Validate enforces the message contract (range membership is the
// coordinator's to check — it owns the plan).
func (r *ResultRequest) Validate() error {
	if r.Worker == "" || r.PlanHash == "" {
		return fmt.Errorf("worker and plan_hash must be non-empty")
	}
	if r.RangeIdx < 0 {
		return fmt.Errorf("range_idx must be non-negative, got %d", r.RangeIdx)
	}
	if !r.Range.Valid(MaxPlanTasks) {
		return fmt.Errorf("range %s is malformed", r.Range)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("results must be non-empty")
	}
	if len(r.Results) != r.Range.Len() {
		return fmt.Errorf("results hold %d tasks, range %s covers %d", len(r.Results), r.Range, r.Range.Len())
	}
	for id, raw := range r.Results {
		if id == "" {
			return fmt.Errorf("result with empty task ID")
		}
		if !json.Valid(raw) {
			return fmt.Errorf("result %q is not valid JSON", id)
		}
	}
	return nil
}

// ResultResponse acknowledges a commit.
type ResultResponse struct {
	// Committed: this commit made the range durable. Duplicate: the range
	// was already committed with byte-identical results, nothing changed.
	Committed bool `json:"committed"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// FailRequest reports that a worker could not complete a leased range
// (task failures after local retries). The coordinator releases the lease
// immediately — no need to wait out the TTL — and re-dispatches; a range
// that keeps failing eventually fails the sweep.
type FailRequest struct {
	Worker   string            `json:"worker"`
	PlanHash string            `json:"plan_hash"`
	LeaseID  string            `json:"lease_id,omitempty"`
	RangeIdx int               `json:"range_idx"`
	Errors   map[string]string `json:"errors,omitempty"`
}

// Validate enforces the message contract.
func (r *FailRequest) Validate() error {
	if r.Worker == "" || r.PlanHash == "" {
		return fmt.Errorf("worker and plan_hash must be non-empty")
	}
	if r.RangeIdx < 0 {
		return fmt.Errorf("range_idx must be non-negative, got %d", r.RangeIdx)
	}
	return nil
}

// FailResponse acknowledges a failure report.
type FailResponse struct {
	// Remaining is the range's failure budget after this report.
	Remaining int `json:"remaining"`
}

// Counts are the coordinator's robustness counters, exposed on /v1/status
// and bridged into telemetry.
type Counts struct {
	Granted     int `json:"leases_granted"`
	Expired     int `json:"leases_expired"`
	Speculative int `json:"speculative_grants"`
	Committed   int `json:"ranges_committed"`
	Duplicates  int `json:"duplicate_commits"`
	LateCommits int `json:"late_commits"`
	Heartbeats  int `json:"heartbeats"`
	Failures    int `json:"range_failures"`
	Violations  int `json:"determinism_violations"`
}

// StatusResponse is the coordinator's public state.
type StatusResponse struct {
	Tool        string `json:"tool,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	PlanHash    string `json:"plan_hash,omitempty"`
	Tasks       int    `json:"tasks"`
	Ranges      int    `json:"ranges"`
	RangesDone  int    `json:"ranges_done"`
	Leased      int    `json:"ranges_leased"`
	Done        bool   `json:"done"`
	Failed      string `json:"failed,omitempty"`
	Counts      Counts `json:"counts"`
}

// decodeValidated is the one JSON entry point for protocol messages: strict
// decoding into the message type, then its Validate. The fuzz target drives
// it for every message kind.
func decodeValidated[T interface{ Validate() error }](data []byte, msg T) error {
	if err := json.Unmarshal(data, msg); err != nil {
		return errProto(http.StatusBadRequest, CodeBadJSON, "%v", err)
	}
	if err := msg.Validate(); err != nil {
		return errProto(http.StatusBadRequest, CodeInvalid, "%v", err)
	}
	return nil
}

// DecodePlanRequest decodes and validates a plan registration body.
func DecodePlanRequest(data []byte) (*PlanRequest, error) {
	var r PlanRequest
	if err := decodeValidated(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeLeaseRequest decodes and validates a lease request body.
func DecodeLeaseRequest(data []byte) (*LeaseRequest, error) {
	var r LeaseRequest
	if err := decodeValidated(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeHeartbeatRequest decodes and validates a heartbeat body.
func DecodeHeartbeatRequest(data []byte) (*HeartbeatRequest, error) {
	var r HeartbeatRequest
	if err := decodeValidated(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeResultRequest decodes and validates a result commit body.
func DecodeResultRequest(data []byte) (*ResultRequest, error) {
	var r ResultRequest
	if err := decodeValidated(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeFailRequest decodes and validates a failure report body.
func DecodeFailRequest(data []byte) (*FailRequest, error) {
	var r FailRequest
	if err := decodeValidated(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
