package httpapi

import (
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"strings"

	"hef/internal/store"
)

// Auth codes: the typed reasons a request is refused before it reaches the
// service's own logic. Services map them to HTTP statuses through the
// shared envelope.
const (
	// AuthMissing: no (or unrecognized) API key on a service that requires
	// one (HTTP 401).
	AuthMissing = "unauthenticated"
	// AuthForbidden: a valid key addressing resources outside its grant —
	// another tenant's objects, or a write through a read-only key
	// (HTTP 403).
	AuthForbidden = "forbidden"
)

// AuthError is the typed authentication/authorization refusal.
type AuthError struct {
	// Code is AuthMissing or AuthForbidden.
	Code string
	// Message is a human-readable explanation.
	Message string
}

func (e *AuthError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// MinKeyLen is the shortest admissible API key. Short keys are a key-file
// typo until proven otherwise, so loading refuses them outright.
const MinKeyLen = 8

// Entry is one authorized key. Only the SHA-256 digest of the key is kept
// in memory; the plaintext is dropped at parse time.
type Entry struct {
	digest [sha256.Size]byte
	// Tenant is the identity the key grants.
	Tenant string
	// ReadOnly marks a scope=ro key: it may read, never mutate. The
	// service's handler decides which routes count as mutations.
	ReadOnly bool
	// Ext carries service-specific per-key options (hefd stores its quota
	// override here), produced by the OptionFunc at parse time.
	Ext any
}

// Keyring maps API keys to entries. Immutable once built: a reload
// constructs a fresh ring and swaps it atomically, so in-flight requests
// see either the old or the new ring, never a mix.
type Keyring struct {
	entries []Entry
}

// Len reports the number of keys.
func (k *Keyring) Len() int {
	if k == nil {
		return 0
	}
	return len(k.entries)
}

// Lookup resolves an API key to its entry. The comparison is constant-time
// in both the key bytes and the match position: every entry is compared
// against the presented key's digest, with no early exit, so response
// timing reveals neither a near-miss nor where in the file the matching
// key lives.
func (k *Keyring) Lookup(key string) (*Entry, bool) {
	if k == nil {
		return nil, false
	}
	digest := sha256.Sum256([]byte(key))
	match := -1
	for i := range k.entries {
		if subtle.ConstantTimeCompare(digest[:], k.entries[i].digest[:]) == 1 {
			match = i
		}
	}
	if match < 0 {
		return nil, false
	}
	return &k.entries[match], true
}

// Find returns the first entry satisfying fn (nil when none does) —
// the primitive behind per-tenant option scans like hefd's QuotaFor.
func (k *Keyring) Find(fn func(*Entry) bool) *Entry {
	if k == nil {
		return nil
	}
	for i := range k.entries {
		if fn(&k.entries[i]) {
			return &k.entries[i]
		}
	}
	return nil
}

// OptionFunc consumes one service-specific name=value option from a key
// line, folding it into the entry's Ext value (which starts nil). It
// returns the updated Ext, or an error to fail the whole file. A nil
// OptionFunc rejects every non-scope option.
type OptionFunc func(ext any, name, value string) (any, error)

// ParseKeyring parses a key file. Each non-blank, non-comment line is
//
//	<key> <tenant> [scope=ro|rw] [service options...]
//
// where key is at least MinKeyLen characters. scope=ro marks the key
// read-only (scope=rw, the default, grants writes); every other option is
// handed to opt. Any malformed line fails the whole file — a partially
// loaded keyring would silently lock out the tenants on the bad half.
//
// Tenant syntax is the caller's concern: validTenant, when non-nil, vets
// the tenant field so each service keeps its own grammar.
func ParseKeyring(data []byte, validTenant func(string) error, opt OptionFunc) (*Keyring, error) {
	ring := &Keyring{}
	seen := map[[sha256.Size]byte]int{}
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("key file line %d: want \"<key> <tenant> [scope=ro] [options]\"", lineNo+1)
		}
		key, tenant := fields[0], fields[1]
		if len(key) < MinKeyLen {
			return nil, fmt.Errorf("key file line %d: key shorter than %d characters", lineNo+1, MinKeyLen)
		}
		if validTenant != nil {
			if err := validTenant(tenant); err != nil {
				return nil, fmt.Errorf("key file line %d: %v", lineNo+1, err)
			}
		}
		entry := Entry{digest: sha256.Sum256([]byte(key)), Tenant: tenant}
		for _, o := range fields[2:] {
			name, val, found := strings.Cut(o, "=")
			if !found {
				return nil, fmt.Errorf("key file line %d: option %q is not name=value", lineNo+1, o)
			}
			if name == "scope" {
				switch val {
				case "ro":
					entry.ReadOnly = true
				case "rw":
					entry.ReadOnly = false
				default:
					return nil, fmt.Errorf("key file line %d: scope must be ro or rw, got %q", lineNo+1, val)
				}
				continue
			}
			if opt == nil {
				return nil, fmt.Errorf("key file line %d: unknown option %q", lineNo+1, name)
			}
			ext, err := opt(entry.Ext, name, val)
			if err != nil {
				return nil, fmt.Errorf("key file line %d: %v", lineNo+1, err)
			}
			entry.Ext = ext
		}
		if prev, dup := seen[entry.digest]; dup {
			return nil, fmt.Errorf("key file line %d: key already declared on line %d", lineNo+1, prev)
		}
		seen[entry.digest] = lineNo + 1
		ring.entries = append(ring.entries, entry)
	}
	if len(ring.entries) == 0 {
		return nil, fmt.Errorf("key file declares no keys")
	}
	return ring, nil
}

// LoadKeyring reads and parses a key file.
func LoadKeyring(fsys store.FS, path string, validTenant func(string) error, opt OptionFunc) (*Keyring, error) {
	if fsys == nil {
		fsys = store.OS
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("key file: %w", err)
	}
	return ParseKeyring(data, validTenant, opt)
}
