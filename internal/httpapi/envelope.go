// Package httpapi holds the HTTP surface conventions shared by the repo's
// services — the hefd job daemon and the hefsweep distributed-sweep
// coordinator: the typed JSON error envelope every non-2xx response
// carries, and the API keyring with digest-only storage, constant-time
// lookup, and per-key scopes. Keeping them in one package means a client
// written against one service parses the other's refusals for free, and a
// hardening fix (a timing leak, an envelope change) lands everywhere at
// once.
package httpapi

import (
	"encoding/json"
	"net/http"
)

// Error is the envelope payload every non-2xx response carries:
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": 1500}}
//
// Code is drawn from a closed per-service set so clients can switch on it;
// Message is for humans; RetryAfterMS, when present, is the producing
// admission layer's backoff suggestion.
type Error struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// WriteJSON writes v as a JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the error envelope with the given status.
func WriteError(w http.ResponseWriter, status int, e Error) {
	WriteJSON(w, status, map[string]any{"error": e})
}

// WriteAuth maps an AuthError onto the envelope: 401 for AuthMissing, 403
// for AuthForbidden.
func WriteAuth(w http.ResponseWriter, e *AuthError) {
	status := http.StatusUnauthorized
	if e.Code == AuthForbidden {
		status = http.StatusForbidden
	}
	WriteError(w, status, Error{Code: e.Code, Message: e.Message})
}

// DecodeError recovers the envelope from a response body; ok reports
// whether the body actually was an envelope (clients fall back to the raw
// status otherwise).
func DecodeError(body []byte) (Error, bool) {
	var wrapped struct {
		Error *Error `json:"error"`
	}
	if err := json.Unmarshal(body, &wrapped); err != nil || wrapped.Error == nil || wrapped.Error.Code == "" {
		return Error{}, false
	}
	return *wrapped.Error, true
}
