package httpapi

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseKeyringScopesAndOptions(t *testing.T) {
	var seen []string
	ring, err := ParseKeyring([]byte(`
# comment
reader-key-1 alice scope=ro
writer-key-1 bob color=blue
`), nil, func(ext any, name, val string) (any, error) {
		seen = append(seen, name+"="+val)
		return val, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 2 {
		t.Fatalf("Len = %d", ring.Len())
	}
	e, ok := ring.Lookup("reader-key-1")
	if !ok || e.Tenant != "alice" || !e.ReadOnly {
		t.Fatalf("reader entry: %+v ok=%v", e, ok)
	}
	e, ok = ring.Lookup("writer-key-1")
	if !ok || e.ReadOnly || e.Ext != "blue" {
		t.Fatalf("writer entry: %+v ok=%v", e, ok)
	}
	if len(seen) != 1 || seen[0] != "color=blue" {
		t.Fatalf("option parser saw %v", seen)
	}
	if _, ok := ring.Lookup("stolen-key-1"); ok {
		t.Fatal("unknown key resolved")
	}
}

func TestParseKeyringRejectsMalformed(t *testing.T) {
	for _, file := range []string{
		"",                                   // no keys
		"lonely\n",                           // missing tenant
		"short t\n",                          // key too short
		"good-key-123 t x\n",                 // option not name=value
		"good-key-123 t x=1\n",               // unknown option, nil parser
		"good-key-123 t scope=z",             // bad scope
		"dup-key-00001 a\ndup-key-00001 b\n", // duplicate key
	} {
		if _, err := ParseKeyring([]byte(file), nil, nil); err == nil {
			t.Fatalf("accepted malformed file %q", file)
		}
	}
	// The tenant validator fails the file too.
	_, err := ParseKeyring([]byte("good-key-123 BAD\n"), func(tenant string) error {
		if strings.ToLower(tenant) != tenant {
			return &AuthError{Code: AuthForbidden, Message: "upper-case tenant"}
		}
		return nil
	}, nil)
	if err == nil {
		t.Fatal("tenant validator ignored")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteAuth(rec, &AuthError{Code: AuthMissing, Message: "no key"})
	if rec.Code != 401 {
		t.Fatalf("status = %d", rec.Code)
	}
	e, ok := DecodeError(rec.Body.Bytes())
	if !ok || e.Code != AuthMissing || e.Message != "no key" {
		t.Fatalf("decoded %+v ok=%v", e, ok)
	}
	rec = httptest.NewRecorder()
	WriteError(rec, 429, Error{Code: "quota", Message: "slow down", RetryAfterMS: 1500})
	e, ok = DecodeError(rec.Body.Bytes())
	if !ok || e.RetryAfterMS != 1500 {
		t.Fatalf("decoded %+v ok=%v", e, ok)
	}
	if _, ok := DecodeError([]byte("not json")); ok {
		t.Fatal("garbage decoded as envelope")
	}
}
