// Package fpenc holds the canonical byte-encoding primitives shared by every
// content fingerprint in the tree: the measurement memo keys in internal/memo
// and the schedule-skeleton cache keys in internal/uarch. It is dependency-free
// so the hot packages can use it without import cycles.
//
// The encoding is fixed: integers are little-endian uint64 (signed values go
// through int64 first), floats are their IEEE-754 bit patterns, booleans are
// one byte, and strings are length-prefixed. Changing any of these would
// silently invalidate every persisted memo store, so they are pinned by tests
// in internal/memo.
package fpenc

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// E accumulates a canonical encoding. Strings are length-prefixed and slices
// count-prefixed by callers, so adjacent variable-length fields can never
// alias each other's bytes.
type E struct {
	Buf []byte
}

// U64 appends v little-endian.
func (e *E) U64(v uint64) {
	e.Buf = binary.LittleEndian.AppendUint64(e.Buf, v)
}

// Int appends v as uint64(int64(v)).
func (e *E) Int(v int) { e.U64(uint64(int64(v))) }

// F64 appends the IEEE-754 bit pattern of v.
func (e *E) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a single 0/1 byte.
func (e *E) Bool(v bool) {
	if v {
		e.Buf = append(e.Buf, 1)
	} else {
		e.Buf = append(e.Buf, 0)
	}
}

// Str appends len(s) then the bytes of s.
func (e *E) Str(s string) {
	e.U64(uint64(len(s)))
	e.Buf = append(e.Buf, s...)
}

// Sum128 is the 128-bit content key of buf: the first half of its SHA-256.
func Sum128(buf []byte) [16]byte {
	sum := sha256.Sum256(buf)
	var k [16]byte
	copy(k[:], sum[:16])
	return k
}
