// Package cache implements the set-associative, LRU, three-level cache
// hierarchy the core simulator consults for every load, store, gather lane,
// and software prefetch. It provides the LLC-miss counters reported in the
// paper's Tables III–V and the latency inputs for the timing model.
package cache

import (
	"encoding/binary"
	"fmt"
	"slices"

	"hef/internal/isa"
)

// level is one cache level as an array of LRU sets.
type level struct {
	geom     isa.CacheGeom
	setShift uint
	setMask  uint64
	// sets[s] holds up to Ways line tags in LRU order, most recent first.
	sets [][]uint64

	hits   uint64
	misses uint64

	// jr points at the owning hierarchy's journal; gens[s] stamps the last
	// journal window that saved set s (allocated on first use).
	jr   *journal
	gens []uint32
}

func newLevel(g isa.CacheGeom) (*level, error) {
	if g.LineBytes <= 0 || g.SizeBytes <= 0 || g.Ways <= 0 {
		return nil, fmt.Errorf("cache: invalid geometry %+v", g)
	}
	lines := g.SizeBytes / g.LineBytes
	numSets := lines / g.Ways
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a positive power of two (size=%d ways=%d line=%d)",
			numSets, g.SizeBytes, g.Ways, g.LineBytes)
	}
	shift := uint(0)
	for 1<<shift < g.LineBytes {
		shift++
	}
	lv := &level{
		geom:     g,
		setShift: shift,
		setMask:  uint64(numSets - 1),
		sets:     make([][]uint64, numSets),
	}
	// Back every set with a slice of one flat arena at full associativity, so
	// fill never grows a set's backing array: occupancy changes are pure
	// length changes and the simulator's hot loop stays allocation-free even
	// as random-address programs keep touching cold sets.
	arena := make([]uint64, numSets*g.Ways)
	for i := range lv.sets {
		lv.sets[i] = arena[i*g.Ways : i*g.Ways : (i+1)*g.Ways]
	}
	return lv, nil
}

// lookup probes the level; on a hit the line is moved to MRU position.
func (l *level) lookup(lineAddr uint64) bool {
	s := lineAddr & l.setMask
	set := l.sets[s]
	for i, tag := range set {
		if tag == lineAddr {
			if i != 0 {
				if l.jr.open {
					l.jr.saveSet(l, s)
				}
				copy(set[1:i+1], set[:i])
				set[0] = lineAddr
			}
			l.hits++
			return true
		}
	}
	l.misses++
	return false
}

// present probes the level without updating counters or LRU order.
func (l *level) present(lineAddr uint64) bool {
	set := l.sets[lineAddr&l.setMask]
	for _, tag := range set {
		if tag == lineAddr {
			return true
		}
	}
	return false
}

// fill installs the line as MRU, evicting LRU if the set is full.
func (l *level) fill(lineAddr uint64) {
	s := lineAddr & l.setMask
	if l.jr.open {
		l.jr.saveSet(l, s)
	}
	set := l.sets[s]
	if len(set) < l.geom.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = lineAddr
	l.sets[s] = set
}

func (l *level) reset() {
	for i := range l.sets {
		l.sets[i] = l.sets[i][:0]
	}
	l.hits, l.misses = 0, 0
}

// Stats is the per-level hit/miss counters plus memory-access count.
type Stats struct {
	L1Hits, L1Misses   uint64
	L2Hits, L2Misses   uint64
	LLCHits, LLCMisses uint64
	// MemAccesses counts demand fills from main memory (equals demand LLC
	// misses; prefetch fills are counted separately).
	MemAccesses uint64
	// PrefetchFills counts lines installed by software prefetch.
	PrefetchFills uint64
	// HWPrefetchFills counts lines installed by the hardware stream
	// prefetcher; HWPrefetchMem counts those that came from memory.
	HWPrefetchFills uint64
	HWPrefetchMem   uint64
	// SWPrefetchMem counts software-prefetch fills from memory.
	SWPrefetchMem uint64
}

// LevelName names a fill level as numbered by Hierarchy.Access and
// Hierarchy.Prefetch: 1 → "L1", 2 → "L2", 3 → "LLC", 4 → "DRAM". Level 0
// (non-memory operations, or a prefetch of an already-resident line) is "".
func LevelName(level int) string {
	switch level {
	case 1:
		return "L1"
	case 2:
		return "L2"
	case 3:
		return "LLC"
	case 4:
		return "DRAM"
	}
	return ""
}

// LLCMissesReported mirrors the perf LLC-misses event the paper collects:
// demand misses plus hardware-prefetcher fills from memory. Software
// prefetches are counted by a separate event and therefore excluded — the
// accounting under which Voila's prefetch-everything strategy shows its
// characteristically low LLC-miss counts.
func (s Stats) LLCMissesReported() uint64 { return s.MemAccesses + s.HWPrefetchMem }

// stream tracks one sequential access stream for the hardware prefetcher.
type stream struct {
	nextLine uint64
	hits     int
	lastUsed uint64
}

// streamTableSize and streamDepth configure the hardware prefetcher: up to
// streamTableSize concurrent streams, running streamDepth lines ahead once a
// stream is confirmed (two consecutive lines), like the Skylake L2 streamer.
const (
	streamTableSize = 16
	streamDepth     = 8
)

// Hierarchy is a three-level inclusive cache hierarchy in front of main
// memory, with a stream-detecting hardware prefetcher.
type Hierarchy struct {
	l1, l2, llc *level
	memLatency  int
	lineShift   uint

	streams  [streamTableSize]stream
	accessNo uint64
	jr       journal

	memAccesses     uint64
	prefetchFills   uint64
	hwPrefetchFills uint64
	hwPrefetchMem   uint64
	swPrefetchMem   uint64
}

// New builds a hierarchy from a CPU description.
func New(cpu *isa.CPU) (*Hierarchy, error) {
	l1, err := newLevel(cpu.L1D)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	l2, err := newLevel(cpu.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	llc, err := newLevel(cpu.LLC)
	if err != nil {
		return nil, fmt.Errorf("LLC: %w", err)
	}
	shift := uint(0)
	for 1<<shift < cpu.L1D.LineBytes {
		shift++
	}
	h := &Hierarchy{l1: l1, l2: l2, llc: llc, memLatency: cpu.MemLatency, lineShift: shift}
	h.l1.jr, h.l2.jr, h.llc.jr = &h.jr, &h.jr, &h.jr
	return h, nil
}

// Access simulates a demand load or store of the byte at addr and returns
// the load-to-use latency in cycles. Stores are modelled as accesses too
// (write-allocate). Level returned: 1, 2, 3, or 4 for memory. Sequential
// streams are detected and run ahead by the hardware prefetcher, so steady
// streaming loads hit the L1 as they do on real parts.
func (h *Hierarchy) Access(addr uint64) (latency, levelHit int) {
	line := addr >> h.lineShift
	h.accessNo++
	h.runStreamPrefetcher(line)
	switch {
	case h.l1.lookup(line):
		return h.l1.geom.Latency, 1
	case h.l2.lookup(line):
		h.l1.fill(line)
		return h.l2.geom.Latency, 2
	case h.llc.lookup(line):
		h.l2.fill(line)
		h.l1.fill(line)
		return h.llc.geom.Latency, 3
	default:
		h.memAccesses++
		h.llc.fill(line)
		h.l2.fill(line)
		h.l1.fill(line)
		return h.memLatency, 4
	}
}

// runStreamPrefetcher matches line against the stream table; on a confirmed
// stream it installs lines ahead of the demand access.
func (h *Hierarchy) runStreamPrefetcher(line uint64) {
	for i := range h.streams {
		st := &h.streams[i]
		if st.nextLine != line || st.nextLine == 0 {
			continue
		}
		st.nextLine = line + 1
		st.hits++
		st.lastUsed = h.accessNo
		if st.hits >= 2 {
			for k := uint64(1); k <= streamDepth; k++ {
				if lvl := h.installIfAbsent(line + k); lvl > 0 {
					h.hwPrefetchFills++
					if lvl == 4 {
						h.hwPrefetchMem++
					}
				}
			}
		}
		return
	}
	// No stream matched: allocate one predicting line+1, replacing the
	// least-recently-used slot.
	victim := 0
	for i := 1; i < len(h.streams); i++ {
		if h.streams[i].lastUsed < h.streams[victim].lastUsed {
			victim = i
		}
	}
	h.streams[victim] = stream{nextLine: line + 1, lastUsed: h.accessNo}
}

// installIfAbsent brings a line into all levels without touching the demand
// counters. It returns the level the fill came from (2 = L2, 3 = LLC,
// 4 = memory) or 0 when the line was already L1-resident.
func (h *Hierarchy) installIfAbsent(line uint64) (fromLevel int) {
	if h.l1.present(line) {
		return 0
	}
	fromLevel = 2
	if !h.l2.present(line) {
		fromLevel = 3
		if !h.llc.present(line) {
			h.llc.fill(line)
			fromLevel = 4
		}
		h.l2.fill(line)
	}
	h.l1.fill(line)
	return fromLevel
}

// Prefetch installs the line containing addr into every level without
// counting a demand miss; a later demand access then hits. It models a
// software prefetch instruction and returns the level the fill came from
// (0 = already L1-resident, 2 = L2, 3 = LLC, 4 = memory), which the core
// simulator uses to hold a line-fill buffer for the fill duration.
func (h *Hierarchy) Prefetch(addr uint64) (fromLevel int) {
	line := addr >> h.lineShift
	lvl := h.installIfAbsent(line)
	if lvl > 0 {
		h.prefetchFills++
		if lvl == 4 {
			h.swPrefetchMem++
		}
	}
	return lvl
}

// Warm touches every line of [base, base+size) so that subsequent accesses
// reflect a steady-state working set rather than a cold cache.
func (h *Hierarchy) Warm(base, size uint64) {
	lineBytes := uint64(1) << h.lineShift
	for a := base &^ (lineBytes - 1); a < base+size; a += lineBytes {
		h.Access(a)
	}
	h.ResetStats()
}

// Stats returns a snapshot of the counters.
func (h *Hierarchy) Stats() Stats {
	return Stats{
		L1Hits: h.l1.hits, L1Misses: h.l1.misses,
		L2Hits: h.l2.hits, L2Misses: h.l2.misses,
		LLCHits: h.llc.hits, LLCMisses: h.llc.misses,
		MemAccesses:     h.memAccesses,
		PrefetchFills:   h.prefetchFills,
		HWPrefetchFills: h.hwPrefetchFills,
		HWPrefetchMem:   h.hwPrefetchMem,
		SWPrefetchMem:   h.swPrefetchMem,
	}
}

// ResetStats clears the counters but keeps cache contents and stream state.
func (h *Hierarchy) ResetStats() {
	h.l1.hits, h.l1.misses = 0, 0
	h.l2.hits, h.l2.misses = 0, 0
	h.llc.hits, h.llc.misses = 0, 0
	h.memAccesses, h.prefetchFills, h.hwPrefetchFills = 0, 0, 0
	h.hwPrefetchMem, h.swPrefetchMem = 0, 0
}

// LineShift returns log2 of the cache line size: addr >> LineShift() is the
// line number used throughout the hierarchy.
func (h *Hierarchy) LineShift() uint { return h.lineShift }

// AccessNo returns the demand-access counter that clocks the stream
// prefetcher's LRU ages.
func (h *Hierarchy) AccessNo() uint64 { return h.accessNo }

// SteadyLines appends to buf the set of cache lines a program restricted to
// the given (iteration-invariant) addresses can touch: the addressed lines
// plus the stream prefetcher's lookahead window behind each one. The result
// is sorted and deduplicated; it bounds the sets AppendSteadyState must
// digest.
func (h *Hierarchy) SteadyLines(addrs []uint64, buf []uint64) []uint64 {
	for _, a := range addrs {
		line := a >> h.lineShift
		for d := uint64(0); d <= streamDepth; d++ {
			buf = append(buf, line+d)
		}
	}
	slices.Sort(buf)
	return slices.Compact(buf)
}

// AppendSteadyState appends a canonical digest of all hierarchy state that
// can influence future accesses restricted to the given lines: for each
// level, the contents (tags in LRU order) of every set one of the lines maps
// to, and the stream-prefetcher table with slot ages taken relative to the
// access counter. Two hierarchies with equal digests behave identically on
// any access sequence confined to those lines.
func (h *Hierarchy) AppendSteadyState(buf []byte, lines []uint64) []byte {
	for _, l := range []*level{h.l1, h.l2, h.llc} {
		for i, ln := range lines {
			set := ln & l.setMask
			dup := false
			for _, prev := range lines[:i] {
				if prev&l.setMask == set {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			tags := l.sets[set]
			buf = binary.LittleEndian.AppendUint64(buf, uint64(len(tags)))
			for _, tag := range tags {
				buf = binary.LittleEndian.AppendUint64(buf, tag)
			}
		}
	}
	for i := range h.streams {
		st := &h.streams[i]
		hits := st.hits
		if hits > 2 {
			// The prefetch trigger only distinguishes <2 from >=2.
			hits = 2
		}
		buf = binary.LittleEndian.AppendUint64(buf, st.nextLine)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(hits))
		buf = binary.LittleEndian.AppendUint64(buf, h.accessNo-st.lastUsed)
	}
	return buf
}

// AdvanceSteady replays k repetitions of a measured steady-state period
// without touching any cache contents: counters advance by k times the
// period's deltas and the prefetcher clock (plus every live slot age) moves
// forward by k times the period's access count, preserving all relative
// LRU ages. The caller guarantees the hierarchy's contents are periodic with
// that period (see uarch's steady-state fast path).
func (h *Hierarchy) AdvanceSteady(k int64, d Stats, dAccess uint64) {
	kk := uint64(k)
	h.l1.hits += kk * d.L1Hits
	h.l1.misses += kk * d.L1Misses
	h.l2.hits += kk * d.L2Hits
	h.l2.misses += kk * d.L2Misses
	h.llc.hits += kk * d.LLCHits
	h.llc.misses += kk * d.LLCMisses
	h.memAccesses += kk * d.MemAccesses
	h.prefetchFills += kk * d.PrefetchFills
	h.hwPrefetchFills += kk * d.HWPrefetchFills
	h.hwPrefetchMem += kk * d.HWPrefetchMem
	h.swPrefetchMem += kk * d.SWPrefetchMem
	h.accessNo += kk * dAccess
	for i := range h.streams {
		if h.streams[i].lastUsed != 0 {
			h.streams[i].lastUsed += kk * dAccess
		}
	}
}

// Reset clears contents, counters, and prefetcher state.
func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.l2.reset()
	h.llc.reset()
	h.streams = [streamTableSize]stream{}
	h.memAccesses, h.prefetchFills, h.hwPrefetchFills = 0, 0, 0
	h.hwPrefetchMem, h.swPrefetchMem = 0, 0
}
