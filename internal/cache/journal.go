package cache

// Mutation journal and full-state snapshots.
//
// The journal gives the core simulator's steady-replay fast path a cheap
// undo: it opens a window, lets the replay issue real Access/Prefetch calls,
// and — when a response deviates from the recorded period — rolls the
// hierarchy back to the window's start as if those calls never happened.
// Only the first mutation of each cache set inside a window saves that set's
// prior contents (a per-set generation stamp makes the first-touch check one
// compare), and the scalar state (counters, stream table, access clock) is a
// single struct copy, so a committed window costs little more than the
// accesses themselves.
//
// Snapshots serve the evaluator's shared-warm-prefix batching: one deep copy
// of the post-warm state, restored per sibling candidate instead of
// re-running the warm loop.

// journalEntry records one set's contents before its first mutation inside
// the open window. The tags live in the journal's shared arena.
type journalEntry struct {
	lv  *level
	set uint64
	off int32
	n   int32
}

// journal is the undo log of one open window.
type journal struct {
	open bool
	gen  uint32

	entries []journalEntry
	tags    []uint64 // arena backing every entry's saved contents

	// Scalar state at BeginJournal, restored wholesale on rollback.
	streams  [streamTableSize]stream
	accessNo uint64
	stats    Stats
}

// saveSet records set s of level l before its first mutation in the window.
// Hot path: the generation compare rejects already-saved sets in one load.
func (j *journal) saveSet(l *level, s uint64) {
	if l.gens == nil {
		l.gens = make([]uint32, len(l.sets))
	} else if l.gens[s] == j.gen {
		return
	}
	l.gens[s] = j.gen
	set := l.sets[s]
	j.entries = append(j.entries, journalEntry{lv: l, set: s, off: int32(len(j.tags)), n: int32(len(set))})
	j.tags = append(j.tags, set...)
}

// BeginJournal opens an undo window. Every subsequent mutation is
// journaled until CommitJournal or RollbackJournal closes the window.
// Windows do not nest.
func (h *Hierarchy) BeginJournal() {
	j := &h.jr
	j.gen++
	if j.gen == 0 {
		// Generation counter wrapped: stale stamps could alias, so clear them.
		for _, l := range []*level{h.l1, h.l2, h.llc} {
			for i := range l.gens {
				l.gens[i] = 0
			}
		}
		j.gen = 1
	}
	j.entries = j.entries[:0]
	j.tags = j.tags[:0]
	j.streams = h.streams
	j.accessNo = h.accessNo
	j.stats = h.Stats()
	j.open = true
}

// CommitJournal closes the window keeping every mutation.
func (h *Hierarchy) CommitJournal() {
	h.jr.open = false
}

// RollbackJournal closes the window and restores the hierarchy to its state
// at BeginJournal.
func (h *Hierarchy) RollbackJournal() {
	j := &h.jr
	j.open = false
	h.streams = j.streams
	h.accessNo = j.accessNo
	h.setStats(j.stats)
	for i := range j.entries {
		e := &j.entries[i]
		// Sets only grow inside a window (fill appends, nothing shrinks), so
		// the live slice is at least as long as the saved one.
		s := e.lv.sets[e.set][:e.n]
		copy(s, j.tags[e.off:e.off+e.n])
		e.lv.sets[e.set] = s
	}
}

// setStats overwrites every counter from a snapshot.
func (h *Hierarchy) setStats(s Stats) {
	h.l1.hits, h.l1.misses = s.L1Hits, s.L1Misses
	h.l2.hits, h.l2.misses = s.L2Hits, s.L2Misses
	h.llc.hits, h.llc.misses = s.LLCHits, s.LLCMisses
	h.memAccesses = s.MemAccesses
	h.prefetchFills = s.PrefetchFills
	h.hwPrefetchFills = s.HWPrefetchFills
	h.hwPrefetchMem = s.HWPrefetchMem
	h.swPrefetchMem = s.SWPrefetchMem
}

// Snapshot is a deep copy of the full hierarchy state: contents, counters,
// stream table, and access clock. Its buffers are reused across Save calls.
type Snapshot struct {
	valid bool
	// Per level: flattened tags plus each set's length.
	tags [3][]uint64
	lens [3][]int32

	streams  [streamTableSize]stream
	accessNo uint64
	stats    Stats
}

// Valid reports whether the snapshot holds a saved state.
func (sn *Snapshot) Valid() bool { return sn.valid }

// Invalidate empties the snapshot.
func (sn *Snapshot) Invalidate() { sn.valid = false }

// Save deep-copies the hierarchy state into sn, reusing its buffers.
func (h *Hierarchy) Save(sn *Snapshot) {
	for li, l := range []*level{h.l1, h.l2, h.llc} {
		tags := sn.tags[li][:0]
		lens := sn.lens[li][:0]
		for _, set := range l.sets {
			tags = append(tags, set...)
			lens = append(lens, int32(len(set)))
		}
		sn.tags[li] = tags
		sn.lens[li] = lens
	}
	sn.streams = h.streams
	sn.accessNo = h.accessNo
	sn.stats = h.Stats()
	sn.valid = true
}

// Restore overwrites the hierarchy state from sn. The hierarchy must have
// the geometry sn was saved from.
func (h *Hierarchy) Restore(sn *Snapshot) {
	for li, l := range []*level{h.l1, h.l2, h.llc} {
		off := 0
		for si, n := range sn.lens[li] {
			n := int(n)
			set := l.sets[si]
			if cap(set) < n {
				set = make([]uint64, n)
			} else {
				set = set[:n]
			}
			copy(set, sn.tags[li][off:off+n])
			l.sets[si] = set
			off += n
		}
	}
	h.streams = sn.streams
	h.accessNo = sn.accessNo
	h.setStats(sn.stats)
}
