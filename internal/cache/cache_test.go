package cache

import (
	"testing"
	"testing/quick"

	"hef/internal/isa"
)

func TestAccessLevels(t *testing.T) {
	cpu := isa.XeonSilver4110()
	h := mustNew(cpu)

	lat, lvl := h.Access(0x1000)
	if lvl != 4 || lat != cpu.MemLatency {
		t.Errorf("cold access: level=%d lat=%d, want memory (4, %d)", lvl, lat, cpu.MemLatency)
	}
	lat, lvl = h.Access(0x1000)
	if lvl != 1 || lat != cpu.L1D.Latency {
		t.Errorf("hot access: level=%d lat=%d, want L1 (1, %d)", lvl, lat, cpu.L1D.Latency)
	}
	// Same line, different byte.
	_, lvl = h.Access(0x1004)
	if lvl != 1 {
		t.Errorf("same-line access: level=%d, want 1", lvl)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	cpu := isa.XeonSilver4110()
	h := mustNew(cpu)
	// Touch 9 lines mapping to the same L1 set (8-way): set stride is
	// 64 sets * 64B = 4KB.
	for i := uint64(0); i < 9; i++ {
		h.Access(i * 4096)
	}
	// First line evicted from L1 but resident in L2.
	lat, lvl := h.Access(0)
	if lvl != 2 || lat != cpu.L2.Latency {
		t.Errorf("evicted line: level=%d lat=%d, want L2 (2, %d)", lvl, lat, cpu.L2.Latency)
	}
}

func TestPrefetchHidesMiss(t *testing.T) {
	cpu := isa.XeonSilver4110()
	h := mustNew(cpu)
	before := h.Stats()
	h.Prefetch(0x9000)
	_, lvl := h.Access(0x9000)
	if lvl != 1 {
		t.Errorf("prefetched line should hit L1, got level %d", lvl)
	}
	st := h.Stats()
	if st.LLCMisses != before.LLCMisses {
		t.Errorf("prefetch counted as demand LLC miss: %d -> %d", before.LLCMisses, st.LLCMisses)
	}
	if st.PrefetchFills != 1 {
		t.Errorf("PrefetchFills = %d, want 1", st.PrefetchFills)
	}
	if st.MemAccesses != 0 {
		t.Errorf("demand MemAccesses = %d, want 0", st.MemAccesses)
	}
}

func TestWarmMakesRegionResident(t *testing.T) {
	cpu := isa.XeonSilver4110()
	h := mustNew(cpu)
	h.Warm(1<<20, 16<<10)
	_, lvl := h.Access(1 << 20)
	if lvl != 1 {
		t.Errorf("warmed region should hit L1, got level %d", lvl)
	}
	if st := h.Stats(); st.L1Misses != 0 || st.L1Hits != 1 {
		t.Errorf("Warm should reset stats, got %+v", st)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := mustNew(isa.XeonSilver4110())
	h.Access(0x4000)
	h.ResetStats()
	_, lvl := h.Access(0x4000)
	if lvl != 1 {
		t.Errorf("ResetStats should keep contents, got level %d", lvl)
	}
	if st := h.Stats(); st.L1Hits != 1 || st.L1Misses != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestResetClearsContents(t *testing.T) {
	h := mustNew(isa.XeonSilver4110())
	h.Access(0x4000)
	h.Reset()
	_, lvl := h.Access(0x4000)
	if lvl != 4 {
		t.Errorf("Reset should clear contents, got level %d", lvl)
	}
}

func TestInvalidGeometry(t *testing.T) {
	cpu := isa.XeonSilver4110()
	cpu.L1D.Ways = 3 // 32KB/64B/3 is not a power-of-two set count
	if _, err := New(cpu); err == nil {
		t.Error("New should reject non-power-of-two set counts")
	}
	cpu = isa.XeonSilver4110()
	cpu.L2.SizeBytes = 0
	if _, err := New(cpu); err == nil {
		t.Error("New should reject zero-size caches")
	}
}

// Property: hit+miss counters per level always equal the number of lookups
// reaching that level, and a second access to any address hits L1.
func TestAccessIdempotentProperty(t *testing.T) {
	h := mustNew(isa.XeonSilver4110())
	f := func(addr uint64) bool {
		addr %= 1 << 40
		h.Access(addr)
		_, lvl := h.Access(addr)
		return lvl == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: demand LLC misses equal demand memory accesses when no
// prefetches are issued.
func TestLLCMissEqualsMemAccess(t *testing.T) {
	h := mustNew(isa.XeonSilver4110())
	f := func(seeds []uint64) bool {
		h.Reset()
		for _, s := range seeds {
			h.Access(s % (1 << 38))
		}
		st := h.Stats()
		return st.LLCMisses == st.MemAccesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// mustNew is the test-side replacement for the removed production MustNew.
func mustNew(cpu *isa.CPU) *Hierarchy {
	h, err := New(cpu)
	if err != nil {
		panic(err)
	}
	return h
}
