// hefd artifact checks: the daemon's job write-ahead log (jobs.log) and
// its admission snapshot (admission.state). Both are CRC-framed record
// files, but their damage semantics differ: the log salvages its longest
// valid prefix (exactly like a memo shard), while the snapshot is
// all-or-nothing — a torn snapshot repairs to the empty file, which the
// daemon reads as the zero admission state.
package doctor

import (
	"fmt"

	"hef/internal/hefd"
	"hef/internal/store"
)

// checkJobLog diagnoses a hefd job write-ahead log: CRC-framed records
// whose payloads decode as known job-log kinds (spec/state/report plus the
// retention tombstone and compaction sequence marks). Repair is the same
// salvage OpenJobLog performs at daemon start — quarantine the invalid
// suffix, truncate to the valid prefix.
func checkJobLog(fsys store.FS, path string, data []byte, repair bool) Finding {
	f := Finding{Path: path, Kind: "job-log"}
	if len(data) == 0 {
		f.Status, f.Detail = StatusOK, "empty"
		return f
	}
	sum, validLen, scanErr := hefd.ScanJobLog(data)
	content := fmt.Sprintf("%d record(s): %d job(s), %d tombstone(s)", sum.Records, sum.Jobs, sum.Tombstones)
	if scanErr == nil && validLen == len(data) {
		f.Status, f.Detail = StatusOK, fmt.Sprintf("%s, %d bytes", content, len(data))
		return f
	}
	reason := "torn tail"
	if scanErr != nil {
		reason = scanErr.Error()
	}
	bad := len(data) - validLen
	diag := fmt.Sprintf("%s: %s in a %d-byte prefix, %d bytes invalid", reason, content, validLen, bad)
	if !repair {
		f.Status, f.Detail = StatusCorrupt, diag+" (repair would quarantine and truncate; the suffix may hold a job's last transition)"
		return f
	}
	if err := quarantineSuffix(fsys, path, validLen, data[validLen:], reason); err != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("%s; quarantine failed: %v", diag, err)
		return f
	}
	if err := fsys.Truncate(path, int64(validLen)); err != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("%s; truncate failed: %v", diag, err)
		return f
	}
	f.Status = StatusRepaired
	f.Detail = fmt.Sprintf("%s; suffix preserved in %s.quarantine, log truncated to %d bytes", diag, hefd.JobLogName, validLen)
	return f
}

// checkAdmissionState diagnoses a hefd admission snapshot: exactly one
// CRC-framed record carrying the schema-tagged bucket/breaker document.
// There is no salvageable prefix — repair resets the file to empty, which
// the daemon loads as the zero admission state (the same fallback it
// applies itself, minus the startup warning).
func checkAdmissionState(fsys store.FS, path string, data []byte, repair bool) Finding {
	f := Finding{Path: path, Kind: "admission-state"}
	st, err := hefd.ParseAdmissionState(data)
	if err == nil {
		if len(data) == 0 {
			f.Status, f.Detail = StatusOK, "empty (zero admission state)"
			return f
		}
		f.Status, f.Detail = StatusOK, fmt.Sprintf("%d bucket(s), %d breaker(s), %d bytes", len(st.Buckets), len(st.Breakers), len(data))
		return f
	}
	diag := err.Error()
	if !repair {
		f.Status, f.Detail = StatusCorrupt, diag+" (repair would quarantine it and reset to the zero state)"
		return f
	}
	if qerr := quarantineSuffix(fsys, path, 0, data, diag); qerr != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("%s; quarantine failed: %v", diag, qerr)
		return f
	}
	if terr := fsys.Truncate(path, 0); terr != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("%s; truncate failed: %v", diag, terr)
		return f
	}
	f.Status = StatusRepaired
	f.Detail = diag + "; snapshot preserved in " + hefd.AdmissionStateName + ".quarantine, reset to the zero state"
	return f
}
