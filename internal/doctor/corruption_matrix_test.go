// Corruption matrix: seeded damage against the durable artifacts of an
// interrupted sweep — bit flips, truncations, torn appends in the memo
// store; torn checkpoint primaries — followed by a resume. The contract
// under test is the robustness tentpole end to end:
//
//   - the resumed run completes (salvage never fails a sweep),
//   - corrupt records are quarantined into sidecars and surfaced through
//     the report's memo/store block,
//   - the final report is byte-identical to an uninterrupted baseline once
//     the (legitimately run-varying) memo block is stripped,
//   - hefdoctor's verifier flags the damage before the resume and finds a
//     clean store after it.
//
// `make corrupt` runs this file. CORRUPT_SEED reseeds the damage plan;
// CORRUPT_ARTIFACT_DIR keeps the damaged stores and quarantine sidecars
// for post-mortem (CI uploads them on failure).
package doctor

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"

	"hef/internal/memo"
	"hef/internal/obs"
	"hef/internal/sched"
	"hef/internal/store"
	"hef/internal/uarch"
)

func corruptSeed(t *testing.T) uint64 {
	if s := os.Getenv("CORRUPT_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("CORRUPT_SEED %q: %v", s, err)
		}
		return v
	}
	return 20230401
}

// corruptArtifactDir places the run's artifacts under CORRUPT_ARTIFACT_DIR
// when set (so CI can upload them on failure), else in the test's temp dir.
func corruptArtifactDir(t *testing.T) string {
	if dir := os.Getenv("CORRUPT_ARTIFACT_DIR"); dir != "" {
		sub := filepath.Join(dir, t.Name())
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	return t.TempDir()
}

// corruptRand is the repo's seeded splitmix64 draw, so the damage plan is a
// pure function of the seed.
func corruptRand(seed uint64, k int) uint64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(k+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// matrixJobs is the synthetic workload: each job "measures" a handful of
// results through the store-backed memo cache — get-or-compute, exactly how
// the evaluators use it — and returns a deterministic report row.
const matrixJobs = 12

func matrixKey(i, j int) memo.Key {
	var k memo.Key
	r := corruptRand(0xfee1dead, i*31+j)
	for b := 0; b < len(k); b++ {
		k[b] = byte(r >> (8 * (b % 8)))
		if b == 7 {
			r = corruptRand(r, b)
		}
	}
	return k
}

func matrixCompute(i, j int) *uarch.Result {
	r := corruptRand(0xabad1dea, i*31+j)
	return &uarch.Result{
		Cycles:       1000 + r%997,
		Instructions: 3000 + r%89,
		Uops:         3000 + r%89,
		Elems:        4096,
		FreqGHz:      2.1,
	}
}

// matrixRow is the checkpointable outcome of one job. It must be a pure
// function of the job index — cache warmth (hits vs recomputes) varies with
// interruption and salvage and must not leak into it.
type matrixRow struct {
	Name   string `json:"name"`
	Cycles uint64 `json:"cycles"`
}

// runMatrixSweep executes the workload against the memo store in dir,
// optionally interrupting after `stopAfter` completed jobs (0 = run to the
// end). It returns the sweep result and the store's final stats; the store
// is left WITHOUT a clean Close when interrupted, like a killed process.
func runMatrixSweep(t *testing.T, dir, cpPath, resumePath string, stopAfter int) (*sched.SweepResult[*matrixRow], store.MemoStats, *store.MemoStore) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	cache := st.Cache()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The interruption is task-side and counted at task start, not raced
	// against the shutdown watcher: exactly stopAfter tasks compute, the
	// next one cancels the sweep and blocks until its job context closes —
	// deterministic however loaded the machine is.
	var ran atomic.Int64
	var tasks []sched.Task[*matrixRow]
	for i := 0; i < matrixJobs; i++ {
		i := i
		tasks = append(tasks, sched.Task[*matrixRow]{
			ID:  fmt.Sprintf("job-%02d", i),
			Key: "k",
			Run: func(jctx context.Context) (*matrixRow, error) {
				if stopAfter > 0 && ran.Add(1) > int64(stopAfter) {
					cancel()
					<-jctx.Done()
					return nil, jctx.Err()
				}
				row := &matrixRow{Name: fmt.Sprintf("job-%02d", i)}
				for j := 0; j < 5; j++ {
					k := matrixKey(i, j)
					res, ok := cache.Get(k)
					if !ok {
						res = matrixCompute(i, j)
						cache.Put(k, res)
					}
					row.Cycles += res.Cycles
				}
				return row, nil
			},
		})
	}

	cfg := sched.SweepConfig{
		Tool: "corrupt-matrix", Fingerprint: "seeded",
		CheckpointPath: cpPath, ResumePath: resumePath,
		Runner: sched.Config{Workers: 1},
	}
	res, err := sched.RunSweep(ctx, cfg, tasks)
	if stopAfter == 0 && err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if stopAfter > 0 && (res == nil || !res.Interrupted) {
		t.Fatalf("sweep was not interrupted as planned: res=%+v err=%v", res, err)
	}
	return res, st.Stats(), st
}

// matrixReport assembles the emitted run report from a completed sweep,
// attaching the memo/store block the way the tools do — at emit time only.
func matrixReport(res *sched.SweepResult[*matrixRow], st *store.MemoStore, cache *memo.Cache) *obs.RunReport {
	rep := obs.NewReport("corrupt-matrix")
	for i := 0; i < matrixJobs; i++ {
		row := res.Results[fmt.Sprintf("job-%02d", i)]
		rep.Runs = append(rep.Runs, obs.Run{Name: row.Name, Cycles: row.Cycles})
	}
	m := obs.MemoFromStats(cache.Stats())
	if m == nil {
		m = &obs.MemoStats{}
	}
	m.Store = obs.StoreFromStats(st.Dir(), st.Stats())
	rep.Memo = m
	return rep
}

// stripMemo renders a report with the run-varying memo block removed; every
// other byte must be interruption- and corruption-invariant.
func stripMemo(t *testing.T, rep *obs.RunReport) []byte {
	t.Helper()
	clone := *rep
	clone.Memo = nil
	data, err := clone.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mutateStore applies one seeded damage case to the artifacts.
func mutateStore(t *testing.T, seed uint64, kind, storeDir, cpPath string) string {
	t.Helper()
	shards, err := filepath.Glob(filepath.Join(storeDir, "memo-*.log"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shards to corrupt in %s (err=%v)", storeDir, err)
	}
	pick := func(k int) string { return shards[corruptRand(seed, k)%uint64(len(shards))] }
	switch kind {
	case "flip":
		path := pick(1)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip inside the record region, past the magic, so the damage is a
		// CRC failure, not a header rejection.
		off := len(store.MemoMagic) + int(corruptRand(seed, 2)%uint64(len(data)-len(store.MemoMagic)))
		data[off] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("flipped byte %d of %s", off, filepath.Base(path))
	case "truncate":
		path := pick(3)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Cut mid-frame: the torn-append shape a kill -9 leaves behind.
		cut := int64(len(store.MemoMagic)) + int64(corruptRand(seed, 4)%uint64(info.Size()-int64(len(store.MemoMagic))))
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("truncated %s to %d bytes", filepath.Base(path), cut)
	case "garbage-append":
		path := pick(5)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, 32+corruptRand(seed, 6)%96)
		for i := range junk {
			junk[i] = byte(corruptRand(seed, 7+i))
		}
		if _, err := f.Write(junk); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return fmt.Sprintf("appended %d garbage bytes to %s", len(junk), filepath.Base(path))
	case "tear-checkpoint":
		data, err := os.ReadFile(cpPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cpPath, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		return "tore the checkpoint primary in half"
	default:
		t.Fatalf("unknown mutation %q", kind)
		return ""
	}
}

// TestCorruptionMatrix is the acceptance scenario: interrupt a sweep
// mid-flight (the store is abandoned without Close, like a kill -9),
// damage its artifacts per the seeded plan, resume, and require a complete
// run, quarantined corruption surfaced in the report, and byte-identical
// output outside the memo block.
func TestCorruptionMatrix(t *testing.T) {
	seed := corruptSeed(t)
	base := corruptArtifactDir(t)

	// Uninterrupted baseline.
	blDir := filepath.Join(base, "baseline")
	blStore := filepath.Join(blDir, "memo")
	res, _, st := runMatrixSweep(t, blStore, filepath.Join(blDir, "cp.json"), "", 0)
	baseline := stripMemo(t, matrixReport(res, st, st.Cache()))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	for _, kind := range []string{"flip", "truncate", "garbage-append", "tear-checkpoint"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			dir := filepath.Join(base, kind)
			storeDir := filepath.Join(dir, "memo")
			cp := filepath.Join(dir, "cp.json")

			// Phase 1: interrupted run; the store is deliberately NOT closed.
			res1, _, st1 := runMatrixSweep(t, storeDir, cp, "", matrixJobs/2)
			if len(res1.Results) == 0 || len(res1.Results) == matrixJobs {
				t.Fatalf("interruption landed at %d/%d jobs; cannot exercise resume", len(res1.Results), matrixJobs)
			}
			_ = st1 // abandoned, like a killed process

			what := mutateStore(t, seed, kind, storeDir, cp)
			t.Logf("damage: %s", what)

			// The verifier must see the damage before the resume.
			rep, err := Diagnose(store.OS, storeDir, false)
			if err != nil {
				t.Fatal(err)
			}
			storeCorrupt := rep.Corrupt()
			if kind != "tear-checkpoint" && !storeCorrupt {
				t.Fatalf("hefdoctor saw no corruption after: %s", what)
			}
			if kind == "tear-checkpoint" {
				cprep, err := Diagnose(store.OS, cp, false)
				if err != nil {
					t.Fatal(err)
				}
				if !cprep.Corrupt() {
					t.Fatalf("hefdoctor saw no corruption after: %s", what)
				}
			}

			// Phase 2: resume over the damage. Salvage must carry it.
			res2, stats2, st2 := runMatrixSweep(t, storeDir, cp, cp, 0)
			if len(res2.Results) != matrixJobs {
				t.Fatalf("resumed run completed %d/%d jobs", len(res2.Results), matrixJobs)
			}
			final := matrixReport(res2, st2, st2.Cache())
			if kind != "tear-checkpoint" {
				if stats2.Quarantined == 0 && kind != "truncate" {
					t.Errorf("no quarantine recorded after: %s", what)
				}
				if final.Memo == nil || final.Memo.Store == nil {
					t.Fatal("final report carries no memo/store block")
				}
				if final.Memo.Store.Quarantined != stats2.Quarantined {
					t.Errorf("report shows %d quarantined, store counted %d",
						final.Memo.Store.Quarantined, stats2.Quarantined)
				}
			} else if !res2.RestoredFromBackup {
				t.Error("torn checkpoint resume did not restore from the .bak generation")
			}

			// The deliverable: byte-identical output outside the memo block.
			if got := stripMemo(t, final); !bytes.Equal(got, baseline) {
				t.Errorf("final report differs from the uninterrupted baseline\n--- baseline ---\n%s--- corrupted+resumed ---\n%s", baseline, got)
			}
			if err := st2.Close(); err != nil {
				t.Fatal(err)
			}

			// After the salvaging run, the verifier must find a clean store.
			rep, err = Diagnose(store.OS, storeDir, false)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Corrupt() {
				t.Errorf("store still corrupt after the salvaging resume: %+v", rep.Findings)
			}
			// Quarantine sidecars survive as evidence when records were bad.
			if kind == "flip" || kind == "garbage-append" {
				side, _ := filepath.Glob(filepath.Join(storeDir, "*.quarantine"))
				if len(side) == 0 {
					t.Error("no quarantine sidecar preserved")
				}
			}
		})
	}
}

// TestCorruptionMatrixDoctorRepairEquivalence: repairing with hefdoctor
// before the resume must yield the same final bytes as letting the store
// salvage at open — the doctor is a front-loaded version of the same
// salvage, not a different one.
func TestCorruptionMatrixDoctorRepairEquivalence(t *testing.T) {
	seed := corruptSeed(t)
	base := corruptArtifactDir(t)

	run := func(name string, repairFirst bool) []byte {
		dir := filepath.Join(base, name)
		storeDir := filepath.Join(dir, "memo")
		cp := filepath.Join(dir, "cp.json")
		runMatrixSweep(t, storeDir, cp, "", matrixJobs/2)
		mutateStore(t, seed, "flip", storeDir, cp)
		if repairFirst {
			rep, err := Diagnose(store.OS, storeDir, true)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Corrupt() {
				t.Fatalf("doctor repair left corruption: %+v", rep.Findings)
			}
		}
		res, _, st := runMatrixSweep(t, storeDir, cp, cp, 0)
		out := stripMemo(t, matrixReport(res, st, st.Cache()))
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	viaSalvage := run("via-salvage", false)
	viaDoctor := run("via-doctor", true)
	if !bytes.Equal(viaSalvage, viaDoctor) {
		t.Errorf("doctor-repaired and open-salvaged runs diverge:\n%s\nvs\n%s", viaSalvage, viaDoctor)
	}
}
