// Package doctor verifies — and, on request, repairs — the artifacts the
// pipeline writes to disk: durable memo stores (internal/store shard logs),
// sweep checkpoints (internal/sched), machine-readable run reports
// (internal/obs, including the BENCH_*.json snapshots), and JSON-line
// streams (go test -json captures). It is the library behind cmd/hefdoctor.
//
// Verification is read-only and classifies each artifact by content, not
// file name, so a misnamed artifact is still diagnosed correctly. Repair
// applies the same salvage the runtime layers apply at open — truncate a
// record log to its longest valid prefix (preserving the bad suffix in a
// .quarantine sidecar), restore a torn checkpoint from its .bak rotation,
// trim a torn JSON-line stream to its last intact line — so a repaired
// artifact loads cleanly without further salvage work.
package doctor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"

	"hef/internal/hefd"
	"hef/internal/obs"
	"hef/internal/sched"
	"hef/internal/store"
)

// Status classifies one finding.
type Status string

const (
	// StatusOK marks a healthy artifact.
	StatusOK Status = "ok"
	// StatusCorrupt marks damage that was found and not fixed — either
	// repair was not requested, or the damage is unrepairable (regenerate
	// the artifact instead).
	StatusCorrupt Status = "corrupt"
	// StatusRepaired marks damage that was found and fixed in place.
	StatusRepaired Status = "repaired"
)

// Finding is the diagnosis of one artifact file.
type Finding struct {
	Path string
	// Kind is the detected artifact type: "memo-shard", "checkpoint",
	// "run-report", "json-lines", "job-log", "admission-state", or
	// "unknown".
	Kind   string
	Status Status
	// Detail explains the diagnosis (what was found, what a repair did or
	// would do).
	Detail string
}

// Report collects the findings of one Diagnose call.
type Report struct {
	Findings []Finding
}

// Corrupt reports whether any artifact remains damaged (StatusCorrupt).
// Repaired artifacts do not count: after a successful -repair pass the
// report is clean.
func (r *Report) Corrupt() bool {
	for _, f := range r.Findings {
		if f.Status == StatusCorrupt {
			return true
		}
	}
	return false
}

// Diagnose inspects one path — a memo store directory or a single artifact
// file — and returns a finding per artifact. With repair set, damaged
// artifacts are fixed in place where possible. The returned error covers
// unreachable paths only; damage is reported through findings.
func Diagnose(fsys store.FS, path string, repair bool) (*Report, error) {
	info, err := fsys.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("doctor: %v", err)
	}
	rep := &Report{}
	if info.IsDir() {
		entries, err := fsys.ReadDir(path)
		if err != nil {
			return nil, fmt.Errorf("doctor: %v", err)
		}
		found := false
		for _, e := range entries {
			if e.IsDir() || !store.IsShardFile(e.Name()) {
				continue
			}
			found = true
			rep.Findings = append(rep.Findings, checkShard(fsys, filepath.Join(path, e.Name()), repair))
		}
		if !found {
			return nil, fmt.Errorf("doctor: %s: no memo shard logs found", path)
		}
		return rep, nil
	}
	rep.Findings = append(rep.Findings, checkFile(fsys, path, repair))
	return rep, nil
}

// checkFile diagnoses a single artifact file by content.
func checkFile(fsys store.FS, path string, repair bool) Finding {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return Finding{Path: path, Kind: "unknown", Status: StatusCorrupt, Detail: fmt.Sprintf("unreadable: %v", err)}
	}
	if store.IsShardFile(path) || bytes.HasPrefix(data, []byte(store.MemoMagic)) {
		return checkShard(fsys, path, repair)
	}
	// The daemon's record files dispatch by name first: a torn jobs.log or
	// admission.state can lack any intact record to classify by, and the
	// names are fixed by the daemon rather than chosen by users.
	switch filepath.Base(path) {
	case hefd.JobLogName:
		return checkJobLog(fsys, path, data, repair)
	case hefd.AdmissionStateName:
		return checkAdmissionState(fsys, path, data, repair)
	}
	// A single JSON document with a schema field is a checkpoint or a run
	// report; which one decides the validation applied.
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err == nil {
		switch head.Schema {
		case sched.CheckpointSchema:
			return checkCheckpoint(fsys, path, data, repair)
		case obs.Schema:
			return checkRunReport(path, data)
		default:
			return Finding{Path: path, Kind: "unknown", Status: StatusCorrupt,
				Detail: fmt.Sprintf("well-formed JSON with unrecognized schema %q", head.Schema)}
		}
	}
	// Undecodable as one document: a torn checkpoint (recoverable from its
	// .bak rotation), a misnamed daemon record file, a JSON-line stream, or
	// a torn stream.
	if bak, err := fsys.ReadFile(path + store.BackupSuffix); err == nil {
		if _, perr := sched.ParseCheckpoint(bak); perr == nil {
			return repairCheckpointFromBackup(fsys, path, bak, repair)
		}
	}
	if sum, _, _ := hefd.ScanJobLog(data); sum.Records > 0 {
		return checkJobLog(fsys, path, data, repair)
	}
	if _, err := hefd.ParseAdmissionState(data); err == nil && len(data) > 0 {
		return checkAdmissionState(fsys, path, data, repair)
	}
	return checkJSONLines(fsys, path, data, repair)
}

// checkShard diagnoses one memo record log: magic header, then CRC-framed
// records whose payloads must decode as (fingerprint, result). Repair is
// the same salvage Open performs — quarantine the invalid suffix, truncate
// to the valid prefix.
func checkShard(fsys store.FS, path string, repair bool) Finding {
	f := Finding{Path: path, Kind: "memo-shard"}
	data, err := fsys.ReadFile(path)
	if err != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("unreadable: %v", err)
		return f
	}
	if len(data) == 0 {
		f.Status, f.Detail = StatusOK, "empty"
		return f
	}
	validLen, records := 0, 0
	reason := "bad shard header"
	if bytes.HasPrefix(data, []byte(store.MemoMagic)) {
		n, scanErr := store.ScanRecords(data[len(store.MemoMagic):], func(payload []byte) error {
			if _, _, err := store.DecodeMemoPayload(payload); err != nil {
				return err
			}
			records++
			return nil
		})
		validLen = len(store.MemoMagic) + n
		if scanErr != nil {
			reason = scanErr.Error()
		}
	}
	if validLen == len(data) {
		f.Status, f.Detail = StatusOK, fmt.Sprintf("%d record(s), %d bytes", records, len(data))
		return f
	}
	bad := len(data) - validLen
	diag := fmt.Sprintf("%s: %d valid record(s) in a %d-byte prefix, %d bytes invalid", reason, records, validLen, bad)
	if !repair {
		f.Status, f.Detail = StatusCorrupt, diag+" (repair would quarantine and truncate)"
		return f
	}
	if err := quarantineSuffix(fsys, path, validLen, data[validLen:], reason); err != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("%s; quarantine failed: %v", diag, err)
		return f
	}
	if err := fsys.Truncate(path, int64(validLen)); err != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("%s; truncate failed: %v", diag, err)
		return f
	}
	f.Status = StatusRepaired
	f.Detail = fmt.Sprintf("%s; suffix preserved in %s.quarantine, log truncated to %d bytes", diag, filepath.Base(path), validLen)
	return f
}

// quarantineSuffix preserves a shard's invalid suffix in its sidecar, in
// the same one-line-JSON-header-then-raw-bytes format the store writes.
func quarantineSuffix(fsys store.FS, path string, offset int, bad []byte, reason string) error {
	side, err := fsys.OpenAppend(path + ".quarantine")
	if err != nil {
		return err
	}
	meta, _ := json.Marshal(map[string]any{
		"offset": offset, "bytes": len(bad), "reason": reason, "tool": "hefdoctor",
	})
	if _, err := side.Write(append(append(meta, '\n'), bad...)); err != nil {
		side.Close()
		return err
	}
	return side.Close()
}

// checkCheckpoint validates a parseable checkpoint document (version skew
// and schema damage are typed by sched.ParseCheckpoint).
func checkCheckpoint(fsys store.FS, path string, data []byte, repair bool) Finding {
	f := Finding{Path: path, Kind: "checkpoint"}
	cp, err := sched.ParseCheckpoint(data)
	if err == nil {
		f.Status = StatusOK
		f.Detail = fmt.Sprintf("tool %q, %d completed job(s)", cp.Tool, len(cp.Done))
		return f
	}
	// The primary decodes as JSON but fails validation; an intact backup
	// generation can still serve a repair.
	if bak, rerr := fsys.ReadFile(path + store.BackupSuffix); rerr == nil {
		if _, perr := sched.ParseCheckpoint(bak); perr == nil {
			g := repairCheckpointFromBackup(fsys, path, bak, repair)
			g.Detail = fmt.Sprintf("%v; %s", err, g.Detail)
			return g
		}
	}
	f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("%v (no intact %s generation; regenerate or re-run the sweep)", err, store.BackupSuffix)
	return f
}

// repairCheckpointFromBackup reports a torn primary whose .bak rotation is
// intact and, with repair, copies the backup over the primary — leaving the
// .bak untouched so the repair itself is crash-safe.
func repairCheckpointFromBackup(fsys store.FS, path string, bak []byte, repair bool) Finding {
	f := Finding{Path: path, Kind: "checkpoint"}
	if !repair {
		f.Status = StatusCorrupt
		f.Detail = fmt.Sprintf("primary torn; intact %s generation available (repair would restore it)", store.BackupSuffix)
		return f
	}
	tmp, err := fsys.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("primary torn; restore failed: %v", err)
		return f
	}
	name := tmp.Name()
	if _, err := tmp.Write(bak); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(name, path)
	}
	if err != nil {
		fsys.Remove(name)
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("primary torn; restore failed: %v", err)
		return f
	}
	f.Status = StatusRepaired
	f.Detail = fmt.Sprintf("primary torn; restored from the %s generation (up to one flush interval of progress re-runs)", store.BackupSuffix)
	return f
}

// checkRunReport validates an obs.RunReport document.
func checkRunReport(path string, data []byte) Finding {
	f := Finding{Path: path, Kind: "run-report"}
	var rep obs.RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("undecodable: %v (unrepairable; regenerate with the producing tool's -json run)", err)
		return f
	}
	if err := rep.Validate(); err != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("%v (unrepairable; regenerate with the producing tool's -json run)", err)
		return f
	}
	f.Status = StatusOK
	f.Detail = fmt.Sprintf("tool %q, %d run(s)", rep.Tool, len(rep.Runs))
	return f
}

// checkJSONLines diagnoses a newline-delimited JSON stream (a go test -json
// capture): every line must decode on its own. Repair trims a torn tail to
// the last intact, newline-terminated line.
func checkJSONLines(fsys store.FS, path string, data []byte, repair bool) Finding {
	f := Finding{Path: path, Kind: "json-lines"}
	validLen, lines := 0, 0
	rest := data
	for len(rest) > 0 {
		line := rest
		nl := bytes.IndexByte(rest, '\n')
		terminated := nl >= 0
		if terminated {
			line = rest[:nl]
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 && !json.Valid(trimmed) {
			break
		}
		if !terminated {
			// A valid but unterminated final line counts: the stream was
			// simply not newline-terminated, which every consumer accepts.
			validLen = len(data)
			lines++
			break
		}
		rest = rest[nl+1:]
		validLen = len(data) - len(rest)
		lines++
	}
	if lines == 0 {
		f.Kind = "unknown"
		f.Status, f.Detail = StatusCorrupt, "not a recognized artifact (no JSON document, record log, or JSON-line stream)"
		return f
	}
	if validLen == len(data) {
		f.Status, f.Detail = StatusOK, fmt.Sprintf("%d JSON line(s), %d bytes", lines, len(data))
		return f
	}
	bad := len(data) - validLen
	diag := fmt.Sprintf("torn after %d intact line(s): %d trailing bytes invalid", lines, bad)
	if !repair {
		f.Status, f.Detail = StatusCorrupt, diag+" (repair would trim them)"
		return f
	}
	if err := fsys.Truncate(path, int64(validLen)); err != nil {
		f.Status, f.Detail = StatusCorrupt, fmt.Sprintf("%s; truncate failed: %v", diag, err)
		return f
	}
	f.Status, f.Detail = StatusRepaired, diag+"; trimmed to the last intact line"
	return f
}
