package doctor

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hef/internal/hefd"
	"hef/internal/store"
)

// seedJobLog frames a small, well-formed job write-ahead log: two jobs, one
// of them tombstoned by retention, plus the compaction sequence mark.
func seedJobLog(t *testing.T) []byte {
	t.Helper()
	var buf []byte
	for _, payload := range []string{
		`{"kind":"seq","seq":2}`,
		`{"kind":"spec","id":"j000001-aa","seq":1}`,
		`{"kind":"state","id":"j000001-aa","state":"done","at_ms":1000}`,
		`{"kind":"report","id":"j000001-aa","report":"{}"}`,
		`{"kind":"spec","id":"j000002-bb","seq":2}`,
		`{"kind":"tomb","id":"j000002-bb","at_ms":2000}`,
	} {
		buf = store.AppendRecord(buf, []byte(payload))
	}
	return buf
}

func TestDiagnoseJobLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, hefd.JobLogName)
	good := seedJobLog(t)
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	rep := diagnose(t, path, false)
	if rep.Corrupt() || rep.Findings[0].Kind != "job-log" {
		t.Fatalf("healthy log: %+v", rep.Findings)
	}
	if d := rep.Findings[0].Detail; !strings.Contains(d, "6 record(s): 2 job(s), 1 tombstone(s)") {
		t.Fatalf("summary detail = %q", d)
	}

	// A torn tail (the kill -9 artifact) is detected, then repaired by the
	// same quarantine+truncate salvage the daemon applies at open.
	if err := os.WriteFile(path, append(append([]byte{}, good...), good[:11]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if rep := diagnose(t, path, false); !rep.Corrupt() {
		t.Fatal("torn log not detected")
	}
	rep = diagnose(t, path, true)
	if rep.Corrupt() || rep.Findings[0].Status != StatusRepaired {
		t.Fatalf("repair: %+v", rep.Findings)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("no quarantine sidecar: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, good) {
		t.Fatalf("repair did not truncate to the valid prefix: %d bytes, want %d", len(got), len(good))
	}
	if rep := diagnose(t, path, false); rep.Corrupt() {
		t.Fatal("log corrupt again after repair")
	}

	// A record of an unknown kind is corruption, not a record to skip: the
	// log is the daemon's source of truth.
	alien := store.AppendRecord(append([]byte{}, good...), []byte(`{"kind":"alien"}`))
	if err := os.WriteFile(path, alien, 0o644); err != nil {
		t.Fatal(err)
	}
	if rep := diagnose(t, path, false); !rep.Corrupt() {
		t.Fatal("unknown record kind accepted")
	}

	// An empty log (first boot) is healthy.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if rep := diagnose(t, path, false); rep.Corrupt() || rep.Findings[0].Detail != "empty" {
		t.Fatalf("empty log: %+v", rep.Findings)
	}
}

// A job log under any other file name still classifies by content.
func TestDiagnoseJobLogByContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "archived.bin")
	if err := os.WriteFile(path, seedJobLog(t), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := diagnose(t, path, false)
	if rep.Corrupt() || rep.Findings[0].Kind != "job-log" {
		t.Fatalf("renamed log: %+v", rep.Findings)
	}
}

func TestDiagnoseAdmissionState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, hefd.AdmissionStateName)
	good, err := hefd.EncodeAdmissionState(hefd.AdmissionState{
		Buckets:  map[string]hefd.BucketState{"alice": {Tokens: 1, LastMS: 5}},
		Breakers: map[string]hefd.BreakerState{"mallory": {Open: true, OpenedAtMS: 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	rep := diagnose(t, path, false)
	if rep.Corrupt() || rep.Findings[0].Kind != "admission-state" {
		t.Fatalf("healthy snapshot: %+v", rep.Findings)
	}
	if d := rep.Findings[0].Detail; !strings.Contains(d, "1 bucket(s), 1 breaker(s)") {
		t.Fatalf("summary detail = %q", d)
	}

	// A torn snapshot has no salvageable prefix: repair quarantines the
	// whole file and resets it to empty — the zero admission state.
	if err := os.WriteFile(path, good[:len(good)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if rep := diagnose(t, path, false); !rep.Corrupt() {
		t.Fatal("torn snapshot not detected")
	}
	rep = diagnose(t, path, true)
	if rep.Corrupt() || rep.Findings[0].Status != StatusRepaired {
		t.Fatalf("repair: %+v", rep.Findings)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("no quarantine sidecar: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("repair left %d bytes, want the empty zero state", len(got))
	}
	rep = diagnose(t, path, false)
	if rep.Corrupt() || !strings.Contains(rep.Findings[0].Detail, "zero admission state") {
		t.Fatalf("post-repair snapshot: %+v", rep.Findings)
	}
}

// An admission snapshot under another name still classifies by content.
func TestDiagnoseAdmissionStateByContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.saved")
	good, err := hefd.EncodeAdmissionState(hefd.AdmissionState{
		Buckets: map[string]hefd.BucketState{"a": {Tokens: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	rep := diagnose(t, path, false)
	if rep.Corrupt() || rep.Findings[0].Kind != "admission-state" {
		t.Fatalf("renamed snapshot: %+v", rep.Findings)
	}
}
