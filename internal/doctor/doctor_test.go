package doctor

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hef/internal/memo"
	"hef/internal/obs"
	"hef/internal/sched"
	"hef/internal/store"
	"hef/internal/uarch"
)

// seedStore writes a small healthy memo store and returns its directory.
func seedStore(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var k memo.Key
		k[0] = byte(i)
		k[1] = byte(i * 7)
		st.Cache().Put(k, &uarch.Result{Cycles: uint64(100 + i), Instructions: uint64(10 * i)})
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func diagnose(t *testing.T, path string, repair bool) *Report {
	t.Helper()
	rep, err := Diagnose(store.OS, path, repair)
	if err != nil {
		t.Fatalf("Diagnose(%s): %v", path, err)
	}
	return rep
}

func TestDiagnoseHealthyStore(t *testing.T) {
	dir := seedStore(t, 8)
	rep := diagnose(t, dir, false)
	if rep.Corrupt() {
		t.Fatalf("healthy store diagnosed corrupt: %+v", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.Kind != "memo-shard" || f.Status != StatusOK {
			t.Errorf("finding %+v, want ok memo-shard", f)
		}
	}
}

func TestDiagnoseAndRepairCorruptShard(t *testing.T) {
	dir := seedStore(t, 16)
	// Flip a byte mid-file in the first non-trivial shard.
	var victim string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if info, _ := e.Info(); store.IsShardFile(e.Name()) && info.Size() > 100 {
			victim = filepath.Join(dir, e.Name())
			break
		}
	}
	if victim == "" {
		t.Fatal("no shard to corrupt")
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if rep := diagnose(t, dir, false); !rep.Corrupt() {
		t.Fatal("corrupt shard not detected")
	}
	rep := diagnose(t, dir, true)
	if rep.Corrupt() {
		t.Fatalf("repair left corruption: %+v", rep.Findings)
	}
	repaired := 0
	for _, f := range rep.Findings {
		if f.Status == StatusRepaired {
			repaired++
		}
	}
	if repaired != 1 {
		t.Errorf("%d repaired findings, want 1", repaired)
	}
	if _, err := os.Stat(victim + ".quarantine"); err != nil {
		t.Errorf("repair left no quarantine sidecar: %v", err)
	}
	// The repaired store must open with nothing left to salvage.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if s := st.Stats(); s.Quarantined != 0 {
		t.Errorf("post-repair open still quarantined %d regions", s.Quarantined)
	}
	if rep := diagnose(t, dir, false); rep.Corrupt() {
		t.Fatal("store corrupt again after repair + reopen")
	}
}

func TestDiagnoseCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	cp := sched.NewCheckpoint("tool", "fp")
	if err := cp.Put("job", 1); err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := cp.Put("job2", 2); err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	if rep := diagnose(t, path, false); rep.Corrupt() || rep.Findings[0].Kind != "checkpoint" {
		t.Fatalf("healthy checkpoint: %+v", rep.Findings)
	}

	// Tear the primary: detected, then repaired from the .bak rotation.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	rep := diagnose(t, path, false)
	if !rep.Corrupt() {
		t.Fatal("torn checkpoint not detected")
	}
	if !strings.Contains(rep.Findings[0].Detail, ".bak") {
		t.Errorf("detail does not mention the backup: %q", rep.Findings[0].Detail)
	}
	rep = diagnose(t, path, true)
	if rep.Corrupt() || rep.Findings[0].Status != StatusRepaired {
		t.Fatalf("repair from backup failed: %+v", rep.Findings)
	}
	got, err := sched.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var v int
	if ok, _ := got.Get("job", &v); !ok || v != 1 {
		t.Errorf("restored generation holds job=%d (present=%v), want 1", v, ok)
	}
	// The restore must not have clobbered the backup with torn bytes.
	if _, err := sched.LoadCheckpoint(path + store.BackupSuffix); err != nil {
		t.Errorf("backup generation damaged by the repair: %v", err)
	}
}

func TestDiagnoseRunReport(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "report.json")
	rep := obs.NewReport("uopshist")
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if d := diagnose(t, good, false); d.Corrupt() || d.Findings[0].Kind != "run-report" {
		t.Fatalf("healthy report: %+v", d.Findings)
	}

	// A torn report has no rotation: corrupt, and repair cannot clear it.
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if d := diagnose(t, torn, true); !d.Corrupt() {
		t.Fatalf("torn report not flagged: %+v", d.Findings)
	}

	// Wrong schema version is corruption the doctor reports, not accepts.
	skew := filepath.Join(dir, "skew.json")
	if err := os.WriteFile(skew, []byte(`{"schema":"hef.obs.run-report","version":99,"tool":"x","runs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if d := diagnose(t, skew, false); !d.Corrupt() {
		t.Fatalf("version skew not flagged: %+v", d.Findings)
	}
}

func TestDiagnoseJSONLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	content := `{"Action":"start","Package":"p"}` + "\n" + `{"Action":"pass","Package":"p"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if d := diagnose(t, path, false); d.Corrupt() || d.Findings[0].Kind != "json-lines" {
		t.Fatalf("healthy stream: %+v", d.Findings)
	}

	if err := os.WriteFile(path, []byte(content+`{"Action":"ou`), 0o644); err != nil {
		t.Fatal(err)
	}
	if d := diagnose(t, path, false); !d.Corrupt() {
		t.Fatal("torn stream not detected")
	}
	if d := diagnose(t, path, true); d.Corrupt() || d.Findings[0].Status != StatusRepaired {
		t.Fatalf("trim repair failed: %+v", d.Findings)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != content {
		t.Errorf("trimmed stream = %q, want the two intact lines", got)
	}
}

func TestDiagnoseUnknownAndMissing(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, []byte{0x01, 0x02, 0xfe, 0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	if d := diagnose(t, junk, false); !d.Corrupt() || d.Findings[0].Kind != "unknown" {
		t.Fatalf("junk file: %+v", d.Findings)
	}
	if _, err := Diagnose(store.OS, filepath.Join(dir, "absent"), false); err == nil {
		t.Error("missing path did not error")
	}
	if _, err := Diagnose(store.OS, dir, false); err == nil {
		t.Error("directory without shard logs did not error")
	}
}
