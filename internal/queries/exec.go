package queries

import (
	"fmt"

	"hef/internal/engine"
	"hef/internal/ssb"
)

// BatchSize is the pipelined fact-scan batch (selection vectors between
// stages, as in VIP's vectorized pipeline).
const BatchSize = 1024

// Stats records the per-stage cardinalities of one execution; the timing
// model multiplies these with per-element stage costs.
type Stats struct {
	// FactRows is the lineorder row count; FactPassed the rows surviving
	// the fact-local predicates.
	FactRows   int
	FactPassed int
	// DimRows and DimPassed are the dimension scan input/output per join.
	DimRows   []int
	DimPassed []int
	// HTBytes is each join's hash-table footprint (keys+values).
	HTBytes []uint64
	// ProbeIn and ProbeOut are the rows entering and surviving each probe.
	ProbeIn  []int
	ProbeOut []int
	// GroupCount is the number of result groups (1 for plain sums).
	GroupCount int
}

// Result is a query execution result.
type Result struct {
	Query Query
	// Sum is the total over all groups (and the entire result for Q1.x).
	Sum uint64
	// Groups maps the packed group key to its aggregate (nil for plain
	// sums). Keys pack each payload in 16-bit fields, probe order first.
	Groups map[uint64]uint64
	Stats  Stats
}

// dimTable returns the named dimension of the dataset.
func dimTable(d *ssb.Data, name string) (*ssb.Table, error) {
	switch name {
	case "date":
		return d.Date, nil
	case "customer":
		return d.Customer, nil
	case "supplier":
		return d.Supplier, nil
	case "part":
		return d.Part, nil
	}
	return nil, fmt.Errorf("queries: unknown dimension %q", name)
}

// Execute runs the query functionally in the given mode. All modes return
// identical results; the mode exercises the corresponding kernels.
func Execute(q Query, d *ssb.Data, mode engine.Mode) (*Result, error) {
	res := &Result{Query: q}
	fact := d.Lineorder
	res.Stats.FactRows = fact.N

	// Build phase: filter each dimension and build its hash table.
	type build struct {
		join DimJoin
		ht   *engine.LinearTable
	}
	builds := make([]build, 0, len(q.Joins))
	for _, j := range q.Joins {
		dim, err := dimTable(d, j.Dim)
		if err != nil {
			return nil, err
		}
		sel, err := engine.FilterTable(dim, j.Preds, mode)
		if err != nil {
			return nil, fmt.Errorf("queries: %s: dim %s: %w", q.ID, j.Dim, err)
		}
		keys, err := dim.Column(j.DimKey)
		if err != nil {
			return nil, fmt.Errorf("queries: %s: dim %s: %w", q.ID, j.Dim, err)
		}
		var payload []uint64
		if j.Payload != "" {
			payload, err = dim.Column(j.Payload)
			if err != nil {
				return nil, fmt.Errorf("queries: %s: dim %s: %w", q.ID, j.Dim, err)
			}
		}
		// The paper applies "a large linear hash table for hash join to
		// reduce the conflicts": the table is sized for the full dimension
		// cardinality regardless of how selective the dimension filter is,
		// which is what pushes probe working sets into the LLC and memory
		// at the larger scale factors.
		ht := engine.NewLinearTable(dim.N)
		for _, r := range sel {
			v := uint64(1)
			if payload != nil {
				v = payload[r]
			}
			if err := ht.Insert(keys[r], v); err != nil {
				return nil, fmt.Errorf("queries: %s: building %s: %w", q.ID, j.Dim, err)
			}
		}
		res.Stats.DimRows = append(res.Stats.DimRows, dim.N)
		res.Stats.DimPassed = append(res.Stats.DimPassed, len(sel))
		res.Stats.HTBytes = append(res.Stats.HTBytes, ht.Bytes())
		res.Stats.ProbeIn = append(res.Stats.ProbeIn, 0)
		res.Stats.ProbeOut = append(res.Stats.ProbeOut, 0)
		builds = append(builds, build{join: j, ht: ht})
	}

	// Probe phase: pipelined pass over the fact table with selection
	// vectors, probing each join in order.
	groups := map[uint64]uint64{}
	var total uint64

	// Resolve every fact column the probe and aggregate phases reference up
	// front, so a bad query fails with a wrapped ssb.ErrNoColumn before any
	// batch work starts.
	fkCache := make(map[string][]uint64, 4)
	resolveFact := func(name string) error {
		if _, ok := fkCache[name]; ok {
			return nil
		}
		c, err := fact.Column(name)
		if err != nil {
			return fmt.Errorf("queries: %s: %w", q.ID, err)
		}
		fkCache[name] = c
		return nil
	}
	for _, b := range builds {
		if err := resolveFact(b.join.FactFK); err != nil {
			return nil, err
		}
	}
	switch q.Measure {
	case SumRevenue:
		if err := resolveFact("revenue"); err != nil {
			return nil, err
		}
	case SumRevMinusCost:
		if err := resolveFact("revenue"); err != nil {
			return nil, err
		}
		if err := resolveFact("supplycost"); err != nil {
			return nil, err
		}
	case SumExtDisc:
		if err := resolveFact("extendedprice"); err != nil {
			return nil, err
		}
		if err := resolveFact("discount"); err != nil {
			return nil, err
		}
	}
	factCol := func(name string) []uint64 { return fkCache[name] }

	keysBuf := make([]uint64, BatchSize)
	valsBuf := make([]uint64, BatchSize)
	foundBuf := make([]bool, BatchSize)
	payloads := make([][]uint64, len(builds))
	for i := range payloads {
		payloads[i] = make([]uint64, BatchSize)
	}

	for lo := 0; lo < fact.N; lo += BatchSize {
		hi := lo + BatchSize
		if hi > fact.N {
			hi = fact.N
		}
		sel, err := engine.FilterRange(fact, q.FactPreds, lo, hi, mode)
		if err != nil {
			return nil, err
		}
		res.Stats.FactPassed += len(sel)

		for bi, b := range builds {
			if len(sel) == 0 {
				break
			}
			res.Stats.ProbeIn[bi] += len(sel)
			fk := factCol(b.join.FactFK)
			keys := keysBuf[:len(sel)]
			for i, r := range sel {
				keys[i] = fk[r]
			}
			vals := valsBuf[:len(sel)]
			found := foundBuf[:len(sel)]
			switch mode {
			case engine.Scalar:
				b.ht.LookupBatch(keys, vals, found)
			case engine.SIMD:
				b.ht.LookupBatchSIMD(keys, vals, found)
			case engine.Hybrid:
				b.ht.LookupBatchHybrid(keys, vals, found, engine.HybridScalarLanes)
			default:
				return nil, fmt.Errorf("queries: unknown mode %v", mode)
			}
			// Compact the selection and previously collected payloads.
			w := 0
			for i := range sel {
				if !found[i] {
					continue
				}
				sel[w] = sel[i]
				for k := 0; k < bi; k++ {
					payloads[k][w] = payloads[k][i]
				}
				payloads[bi][w] = vals[i]
				w++
			}
			sel = sel[:w]
			res.Stats.ProbeOut[bi] += w
		}
		if len(sel) == 0 {
			continue
		}

		// Aggregate the survivors of this batch.
		var m1, m2 []uint64
		switch q.Measure {
		case SumRevenue:
			m1 = factCol("revenue")
		case SumRevMinusCost:
			m1 = factCol("revenue")
			m2 = factCol("supplycost")
		case SumExtDisc:
			m1 = factCol("extendedprice")
			m2 = factCol("discount")
		}
		for i, r := range sel {
			var v uint64
			switch q.Measure {
			case SumRevenue:
				v = m1[r]
			case SumRevMinusCost:
				v = m1[r] - m2[r]
			case SumExtDisc:
				v = m1[r] * m2[r]
			}
			total += v
			if q.GroupBy() {
				var key uint64
				for bi, b := range builds {
					if b.join.Payload == "" {
						continue
					}
					key = key<<16 | (payloads[bi][i] & 0xffff)
				}
				groups[key] += v
			}
		}
	}

	res.Sum = total
	if q.GroupBy() {
		res.Groups = groups
		res.Stats.GroupCount = len(groups)
	} else {
		res.Stats.GroupCount = 1
	}
	return res, nil
}
