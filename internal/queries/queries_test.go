package queries

import (
	"testing"

	"hef/internal/engine"
	"hef/internal/ssb"
)

func testData(t *testing.T) *ssb.Data {
	t.Helper()
	return ssb.Generate(0.004, 12345) // 24k fact rows: fast but non-trivial
}

func TestAllQueriesDefined(t *testing.T) {
	qs := All()
	if len(qs) != 13 {
		t.Fatalf("All() returned %d queries, want 13", len(qs))
	}
	ids := map[string]bool{}
	for _, q := range qs {
		ids[q.ID] = true
	}
	for _, id := range []string{"Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3",
		"Q3.1", "Q3.2", "Q3.3", "Q3.4", "Q4.1", "Q4.2", "Q4.3"} {
		if !ids[id] {
			t.Errorf("missing query %s", id)
		}
	}
	if len(Evaluated()) != 10 {
		t.Errorf("Evaluated() returned %d queries, want 10 (Q2.x-Q4.x)", len(Evaluated()))
	}
	for _, q := range Evaluated() {
		if q.ID[1] == '1' {
			t.Errorf("Evaluated() includes flight query %s", q.ID)
		}
	}
}

func TestGet(t *testing.T) {
	q, err := Get("Q2.1")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumJoins() != 3 {
		t.Errorf("Q2.1 has %d joins, want 3", q.NumJoins())
	}
	if !q.GroupBy() {
		t.Error("Q2.1 should group")
	}
	if _, err := Get("Q9.9"); err == nil {
		t.Error("Get should fail for unknown IDs")
	}
}

func TestJoinCountsMatchPaper(t *testing.T) {
	// The paper: Q2.x and Q3.x have three joins, Q4.x four joins.
	for _, q := range All() {
		var want int
		switch q.ID[1] {
		case '1':
			want = 1
		case '2', '3':
			want = 3
		case '4':
			want = 4
		}
		if q.NumJoins() != want {
			t.Errorf("%s has %d joins, want %d", q.ID, q.NumJoins(), want)
		}
	}
}

// Q1.1 has a simple nested-loop oracle: verify the pipelined executor
// against a direct scan.
func TestQ11MatchesBruteForce(t *testing.T) {
	d := testData(t)
	q, _ := Get("Q1.1")
	res, err := Execute(q, d, engine.Scalar)
	if err != nil {
		t.Fatal(err)
	}

	year := map[uint64]uint64{}
	for i, dk := range d.Date.MustCol("datekey") {
		year[dk] = d.Date.MustCol("year")[i]
	}
	lo := d.Lineorder
	var want uint64
	for i := 0; i < lo.N; i++ {
		disc := lo.MustCol("discount")[i]
		qty := lo.MustCol("quantity")[i]
		if year[lo.MustCol("orderdate")[i]] == 1993 && disc >= 1 && disc <= 3 && qty < 25 {
			want += lo.MustCol("extendedprice")[i] * disc
		}
	}
	if res.Sum != want {
		t.Errorf("Q1.1 = %d, want %d (brute force)", res.Sum, want)
	}
	if res.Groups != nil {
		t.Error("Q1.1 should not group")
	}
	if res.Sum == 0 {
		t.Error("Q1.1 selected nothing; test data too small?")
	}
}

// Q2.1 oracle: brute-force join via maps.
func TestQ21MatchesBruteForce(t *testing.T) {
	d := testData(t)
	q, _ := Get("Q2.1")
	res, err := Execute(q, d, engine.Scalar)
	if err != nil {
		t.Fatal(err)
	}

	brand := map[uint64]uint64{}
	for i, pk := range d.Part.MustCol("partkey") {
		if d.Part.MustCol("category")[i] == 12 {
			brand[pk] = d.Part.MustCol("brand")[i]
		}
	}
	amer := map[uint64]bool{}
	for i, sk := range d.Supplier.MustCol("suppkey") {
		if d.Supplier.MustCol("region")[i] == ssb.America {
			amer[sk] = true
		}
	}
	year := map[uint64]uint64{}
	for i, dk := range d.Date.MustCol("datekey") {
		year[dk] = d.Date.MustCol("year")[i]
	}

	wantGroups := map[uint64]uint64{}
	var want uint64
	lo := d.Lineorder
	for i := 0; i < lo.N; i++ {
		b, okP := brand[lo.MustCol("partkey")[i]]
		if !okP || !amer[lo.MustCol("suppkey")[i]] {
			continue
		}
		y := year[lo.MustCol("orderdate")[i]]
		rev := lo.MustCol("revenue")[i]
		want += rev
		wantGroups[b<<16|y] += rev
	}
	if res.Sum != want {
		t.Errorf("Q2.1 sum = %d, want %d", res.Sum, want)
	}
	if len(res.Groups) != len(wantGroups) {
		t.Errorf("Q2.1 groups = %d, want %d", len(res.Groups), len(wantGroups))
	}
	for k, v := range wantGroups {
		if res.Groups[k] != v {
			t.Errorf("group %#x = %d, want %d", k, res.Groups[k], v)
		}
	}
}

// The central functional property: all three execution modes produce
// identical sums and groups for every evaluated query.
func TestModesAgreeOnAllQueries(t *testing.T) {
	d := testData(t)
	for _, q := range All() {
		base, err := Execute(q, d, engine.Scalar)
		if err != nil {
			t.Fatalf("%s scalar: %v", q.ID, err)
		}
		for _, mode := range []engine.Mode{engine.SIMD, engine.Hybrid} {
			got, err := Execute(q, d, mode)
			if err != nil {
				t.Fatalf("%s %v: %v", q.ID, mode, err)
			}
			if got.Sum != base.Sum {
				t.Errorf("%s: %v sum %d != scalar sum %d", q.ID, mode, got.Sum, base.Sum)
			}
			if len(got.Groups) != len(base.Groups) {
				t.Errorf("%s: %v group count %d != scalar %d", q.ID, mode, len(got.Groups), len(base.Groups))
			}
			for k, v := range base.Groups {
				if got.Groups[k] != v {
					t.Errorf("%s: %v group %#x = %d, want %d", q.ID, mode, k, got.Groups[k], v)
				}
			}
		}
	}
}

func TestStatsAreConsistent(t *testing.T) {
	d := testData(t)
	for _, q := range Evaluated() {
		res, err := Execute(q, d, engine.Scalar)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		st := res.Stats
		if st.FactRows != d.Lineorder.N {
			t.Errorf("%s: FactRows = %d", q.ID, st.FactRows)
		}
		if st.FactPassed != st.FactRows && len(q.FactPreds) == 0 {
			t.Errorf("%s: no fact preds but FactPassed=%d of %d", q.ID, st.FactPassed, st.FactRows)
		}
		if len(st.ProbeIn) != q.NumJoins() {
			t.Fatalf("%s: ProbeIn has %d stages", q.ID, len(st.ProbeIn))
		}
		prev := st.FactPassed
		for i := range st.ProbeIn {
			if st.ProbeIn[i] != prev {
				t.Errorf("%s stage %d: ProbeIn=%d, want %d (pipeline continuity)", q.ID, i, st.ProbeIn[i], prev)
			}
			if st.ProbeOut[i] > st.ProbeIn[i] {
				t.Errorf("%s stage %d: ProbeOut %d > ProbeIn %d", q.ID, i, st.ProbeOut[i], st.ProbeIn[i])
			}
			prev = st.ProbeOut[i]
		}
		for i := range st.DimRows {
			if st.DimPassed[i] > st.DimRows[i] {
				t.Errorf("%s dim %d: passed %d > rows %d", q.ID, i, st.DimPassed[i], st.DimRows[i])
			}
			if st.HTBytes[i] == 0 {
				t.Errorf("%s dim %d: zero hash table", q.ID, i)
			}
		}
		if q.GroupBy() && st.GroupCount == 0 && st.ProbeOut[len(st.ProbeOut)-1] > 0 {
			t.Errorf("%s: rows survived but no groups", q.ID)
		}
	}
}

// Selectivity sanity against the paper's discussion: Q2.3 and Q3.3 are
// highly selective (< 1% of fact rows survive), while Q2.1 passes more.
func TestSelectivityOrdering(t *testing.T) {
	d := ssb.Generate(0.02, 777)
	frac := func(id string) float64 {
		q, _ := Get(id)
		res, err := Execute(q, d, engine.Scalar)
		if err != nil {
			t.Fatal(err)
		}
		out := res.Stats.ProbeOut[len(res.Stats.ProbeOut)-1]
		return float64(out) / float64(res.Stats.FactRows)
	}
	q21, q23, q33 := frac("Q2.1"), frac("Q2.3"), frac("Q3.3")
	if q23 >= q21 {
		t.Errorf("Q2.3 final selectivity %.4f should be below Q2.1's %.4f", q23, q21)
	}
	if q33 >= 0.01 {
		t.Errorf("Q3.3 selectivity %.4f should be under 1%% (paper)", q33)
	}
	if q23 >= 0.01 {
		t.Errorf("Q2.3 selectivity %.4f should be under 1%%", q23)
	}
}

func TestMeasureString(t *testing.T) {
	if SumRevenue.String() != "sum(revenue)" ||
		SumRevMinusCost.String() != "sum(revenue-supplycost)" ||
		SumExtDisc.String() != "sum(extendedprice*discount)" {
		t.Error("measure names wrong")
	}
}

func TestExecuteUnknownDim(t *testing.T) {
	d := testData(t)
	bad := Query{ID: "X", Joins: []DimJoin{{Dim: "nope", FactFK: "custkey", DimKey: "custkey"}}}
	if _, err := Execute(bad, d, engine.Scalar); err == nil {
		t.Error("unknown dimension should error")
	}
}
