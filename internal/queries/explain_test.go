package queries

import (
	"strings"
	"testing"

	"hef/internal/engine"
	"hef/internal/ssb"
)

func TestExplain(t *testing.T) {
	q, _ := Get("Q2.1")
	out := Explain(q)
	for _, want := range []string{
		"Q2.1: sum(revenue)",
		"scan lineorder",
		"probe 1: lineorder.partkey = part.partkey where category = 12 -> part.brand",
		"probe 2: lineorder.suppkey = supplier.suppkey where region = 1",
		"probe 3: lineorder.orderdate = date.datekey -> date.year",
		"group by part.brand, date.year",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain(Q2.1) missing %q:\n%s", want, out)
		}
	}

	q11, _ := Get("Q1.1")
	out = Explain(q11)
	if !strings.Contains(out, "scan lineorder where 1 <= discount <= 3") {
		t.Errorf("Explain(Q1.1) missing fact predicates:\n%s", out)
	}
	if !strings.Contains(out, "aggregate to a single sum") {
		t.Errorf("Explain(Q1.1) should not group:\n%s", out)
	}
}

func TestExplainStats(t *testing.T) {
	d := ssb.Generate(0.002, 5)
	q, _ := Get("Q3.1")
	res, err := Execute(q, d, engine.Scalar)
	if err != nil {
		t.Fatal(err)
	}
	out := ExplainStats(res)
	for _, want := range []string{"probe 1 (customer)", "ht", "group(s)", "fact rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainStats missing %q:\n%s", want, out)
		}
	}
}
