package queries

import (
	"testing"

	"hef/internal/engine"
	"hef/internal/ssb"
)

func benchExec(b *testing.B, id string, mode engine.Mode) {
	d := ssb.Generate(0.01, 99)
	q, err := Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(d.Lineorder.N * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(q, d, mode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQ21Scalar(b *testing.B) { benchExec(b, "Q2.1", engine.Scalar) }
func BenchmarkQ21SIMD(b *testing.B)   { benchExec(b, "Q2.1", engine.SIMD) }
func BenchmarkQ21Hybrid(b *testing.B) { benchExec(b, "Q2.1", engine.Hybrid) }
func BenchmarkQ41Scalar(b *testing.B) { benchExec(b, "Q4.1", engine.Scalar) }
