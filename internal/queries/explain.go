package queries

import (
	"fmt"
	"strings"
)

// Explain renders the query plan in the pipeline form the executor runs:
// dimension filters feeding hash-table builds, the probe chain over the
// fact table in order, and the final aggregation.
func Explain(q Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", q.ID, q.Measure)
	if len(q.FactPreds) > 0 {
		preds := make([]string, len(q.FactPreds))
		for i, p := range q.FactPreds {
			preds[i] = p.String()
		}
		fmt.Fprintf(&b, "  scan lineorder where %s\n", strings.Join(preds, " and "))
	} else {
		fmt.Fprintf(&b, "  scan lineorder\n")
	}
	for i, j := range q.Joins {
		var preds []string
		for _, p := range j.Preds {
			preds = append(preds, p.String())
		}
		where := ""
		if len(preds) > 0 {
			where = " where " + strings.Join(preds, " and ")
		}
		payload := ""
		if j.Payload != "" {
			payload = fmt.Sprintf(" -> %s.%s", j.Dim, j.Payload)
		}
		fmt.Fprintf(&b, "  probe %d: lineorder.%s = %s.%s%s%s\n",
			i+1, j.FactFK, j.Dim, j.DimKey, where, payload)
	}
	if q.GroupBy() {
		var keys []string
		for _, j := range q.Joins {
			if j.Payload != "" {
				keys = append(keys, j.Dim+"."+j.Payload)
			}
		}
		fmt.Fprintf(&b, "  group by %s\n", strings.Join(keys, ", "))
	} else {
		fmt.Fprintf(&b, "  aggregate to a single sum\n")
	}
	return b.String()
}

// ExplainStats renders the measured per-stage cardinalities of an executed
// query (an EXPLAIN ANALYZE analogue).
func ExplainStats(res *Result) string {
	var b strings.Builder
	b.WriteString(Explain(res.Query))
	st := res.Stats
	fmt.Fprintf(&b, "  -- fact rows %d, after fact predicates %d\n", st.FactRows, st.FactPassed)
	for i, j := range res.Query.Joins {
		fmt.Fprintf(&b, "  -- probe %d (%s): dim %d -> %d entries, ht %d KiB, rows %d -> %d (%.3f%%)\n",
			i+1, j.Dim, st.DimRows[i], st.DimPassed[i], st.HTBytes[i]>>10,
			st.ProbeIn[i], st.ProbeOut[i],
			100*float64(st.ProbeOut[i])/float64(max(st.ProbeIn[i], 1)))
	}
	fmt.Fprintf(&b, "  -- result: %d group(s), total %d\n", st.GroupCount, res.Sum)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
