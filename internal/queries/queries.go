// Package queries defines the 13 SSB queries as operator pipelines over the
// engine package — dimension filters feeding linear-probe hash-join builds,
// a pipelined probe pass over the lineorder fact table, and a (grouped)
// aggregation — and executes them functionally in any engine mode. The
// executor also records per-stage cardinalities; the experiment harness
// feeds those into the timing model.
//
// Categorical constants use the dictionary encodings of package ssb:
// category "MFGR#12" is 12, brand "MFGR#2221" is 2221, regions are 0-4 in
// alphabetical order. Named nations and cities (UNITED STATES, "UNITED KI1")
// are fixed representatives within the right region, which preserves the
// selectivities the paper's analysis depends on.
package queries

import (
	"fmt"

	"hef/internal/engine"
	"hef/internal/ssb"
)

// Encoded constants for named SSB values.
const (
	// UnitedStates is a nation in the AMERICA region (nations 5-9).
	UnitedStates = 5
	// UnitedKingdom is a nation in the EUROPE region (nations 15-19).
	UnitedKingdom = 15
	// CityUK1 and CityUK5 are two cities of UnitedKingdom.
	CityUK1 = UnitedKingdom*ssb.CitiesPerNation + 1
	CityUK5 = UnitedKingdom*ssb.CitiesPerNation + 5
)

// Measure selects the aggregation of a query.
type Measure int

const (
	// SumRevenue computes sum(lo_revenue).
	SumRevenue Measure = iota
	// SumRevMinusCost computes sum(lo_revenue - lo_supplycost).
	SumRevMinusCost
	// SumExtDisc computes sum(lo_extendedprice * lo_discount), the Q1.x
	// measure.
	SumExtDisc
)

func (m Measure) String() string {
	switch m {
	case SumRevenue:
		return "sum(revenue)"
	case SumRevMinusCost:
		return "sum(revenue-supplycost)"
	case SumExtDisc:
		return "sum(extendedprice*discount)"
	}
	return fmt.Sprintf("Measure(%d)", int(m))
}

// DimJoin is one dimension join of a query: filter the dimension, build a
// hash table keyed by DimKey, probe it with the fact's FactFK column, and
// optionally carry Payload into the group-by key.
type DimJoin struct {
	// Dim names the dimension table: "date", "customer", "supplier", "part".
	Dim string
	// FactFK is the lineorder foreign-key column.
	FactFK string
	// DimKey is the dimension's key column.
	DimKey string
	// Preds filter the dimension before the build.
	Preds []engine.Pred
	// Payload names the dimension column carried as a group-by component;
	// empty means the join only filters.
	Payload string
}

// Query is one SSB query plan. Joins are listed in probe order (most
// selective first, as in hand-optimised SSB implementations).
type Query struct {
	ID string
	// FactPreds are predicates evaluated directly on lineorder columns
	// (only the Q1.x flight queries use them).
	FactPreds []engine.Pred
	// Joins lists the dimension joins in probe order.
	Joins []DimJoin
	// Measure selects the aggregate.
	Measure Measure
}

// NumJoins returns the number of dimension joins.
func (q Query) NumJoins() int { return len(q.Joins) }

// GroupBy reports whether the query aggregates per group (any join carries
// a payload).
func (q Query) GroupBy() bool {
	for _, j := range q.Joins {
		if j.Payload != "" {
			return true
		}
	}
	return false
}

// All returns the 13 SSB queries.
func All() []Query {
	return []Query{
		{
			ID: "Q1.1",
			FactPreds: []engine.Pred{
				engine.Between("discount", 1, 3),
				engine.Between("quantity", 1, 24),
			},
			Joins: []DimJoin{
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Preds: []engine.Pred{engine.Eq("year", 1993)}},
			},
			Measure: SumExtDisc,
		},
		{
			ID: "Q1.2",
			FactPreds: []engine.Pred{
				engine.Between("discount", 4, 6),
				engine.Between("quantity", 26, 35),
			},
			Joins: []DimJoin{
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Preds: []engine.Pred{engine.Eq("yearmonthnum", 199401)}},
			},
			Measure: SumExtDisc,
		},
		{
			ID: "Q1.3",
			FactPreds: []engine.Pred{
				engine.Between("discount", 5, 7),
				engine.Between("quantity", 26, 35),
			},
			Joins: []DimJoin{
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Preds: []engine.Pred{
						engine.Eq("weeknuminyear", 6),
						engine.Eq("year", 1994),
					}},
			},
			Measure: SumExtDisc,
		},
		{
			ID: "Q2.1",
			Joins: []DimJoin{
				{Dim: "part", FactFK: "partkey", DimKey: "partkey",
					Preds:   []engine.Pred{engine.Eq("category", 12)},
					Payload: "brand"},
				{Dim: "supplier", FactFK: "suppkey", DimKey: "suppkey",
					Preds: []engine.Pred{engine.Eq("region", ssb.America)}},
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Payload: "year"},
			},
			Measure: SumRevenue,
		},
		{
			ID: "Q2.2",
			Joins: []DimJoin{
				{Dim: "part", FactFK: "partkey", DimKey: "partkey",
					Preds:   []engine.Pred{engine.Between("brand", 2221, 2228)},
					Payload: "brand"},
				{Dim: "supplier", FactFK: "suppkey", DimKey: "suppkey",
					Preds: []engine.Pred{engine.Eq("region", ssb.Asia)}},
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Payload: "year"},
			},
			Measure: SumRevenue,
		},
		{
			ID: "Q2.3",
			Joins: []DimJoin{
				{Dim: "part", FactFK: "partkey", DimKey: "partkey",
					Preds:   []engine.Pred{engine.Eq("brand", 2239)},
					Payload: "brand"},
				{Dim: "supplier", FactFK: "suppkey", DimKey: "suppkey",
					Preds: []engine.Pred{engine.Eq("region", ssb.Europe)}},
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Payload: "year"},
			},
			Measure: SumRevenue,
		},
		{
			ID: "Q3.1",
			Joins: []DimJoin{
				{Dim: "customer", FactFK: "custkey", DimKey: "custkey",
					Preds:   []engine.Pred{engine.Eq("region", ssb.Asia)},
					Payload: "nation"},
				{Dim: "supplier", FactFK: "suppkey", DimKey: "suppkey",
					Preds:   []engine.Pred{engine.Eq("region", ssb.Asia)},
					Payload: "nation"},
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Preds:   []engine.Pred{engine.Between("year", 1992, 1997)},
					Payload: "year"},
			},
			Measure: SumRevenue,
		},
		{
			ID: "Q3.2",
			Joins: []DimJoin{
				{Dim: "customer", FactFK: "custkey", DimKey: "custkey",
					Preds:   []engine.Pred{engine.Eq("nation", UnitedStates)},
					Payload: "city"},
				{Dim: "supplier", FactFK: "suppkey", DimKey: "suppkey",
					Preds:   []engine.Pred{engine.Eq("nation", UnitedStates)},
					Payload: "city"},
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Preds:   []engine.Pred{engine.Between("year", 1992, 1997)},
					Payload: "year"},
			},
			Measure: SumRevenue,
		},
		{
			ID: "Q3.3",
			Joins: []DimJoin{
				{Dim: "customer", FactFK: "custkey", DimKey: "custkey",
					Preds:   []engine.Pred{engine.OneOf("city", CityUK1, CityUK5)},
					Payload: "city"},
				{Dim: "supplier", FactFK: "suppkey", DimKey: "suppkey",
					Preds:   []engine.Pred{engine.OneOf("city", CityUK1, CityUK5)},
					Payload: "city"},
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Preds:   []engine.Pred{engine.Between("year", 1992, 1997)},
					Payload: "year"},
			},
			Measure: SumRevenue,
		},
		{
			ID: "Q3.4",
			Joins: []DimJoin{
				{Dim: "customer", FactFK: "custkey", DimKey: "custkey",
					Preds:   []engine.Pred{engine.OneOf("city", CityUK1, CityUK5)},
					Payload: "city"},
				{Dim: "supplier", FactFK: "suppkey", DimKey: "suppkey",
					Preds:   []engine.Pred{engine.OneOf("city", CityUK1, CityUK5)},
					Payload: "city"},
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Preds:   []engine.Pred{engine.Eq("yearmonthnum", 199712)},
					Payload: "year"},
			},
			Measure: SumRevenue,
		},
		{
			ID: "Q4.1",
			Joins: []DimJoin{
				{Dim: "customer", FactFK: "custkey", DimKey: "custkey",
					Preds:   []engine.Pred{engine.Eq("region", ssb.America)},
					Payload: "nation"},
				{Dim: "supplier", FactFK: "suppkey", DimKey: "suppkey",
					Preds: []engine.Pred{engine.Eq("region", ssb.America)}},
				{Dim: "part", FactFK: "partkey", DimKey: "partkey",
					Preds: []engine.Pred{engine.Between("mfgr", 1, 2)}},
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Payload: "year"},
			},
			Measure: SumRevMinusCost,
		},
		{
			ID: "Q4.2",
			Joins: []DimJoin{
				{Dim: "customer", FactFK: "custkey", DimKey: "custkey",
					Preds: []engine.Pred{engine.Eq("region", ssb.America)}},
				{Dim: "supplier", FactFK: "suppkey", DimKey: "suppkey",
					Preds:   []engine.Pred{engine.Eq("region", ssb.America)},
					Payload: "nation"},
				{Dim: "part", FactFK: "partkey", DimKey: "partkey",
					Preds:   []engine.Pred{engine.Between("mfgr", 1, 2)},
					Payload: "category"},
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Preds:   []engine.Pred{engine.Between("year", 1997, 1998)},
					Payload: "year"},
			},
			Measure: SumRevMinusCost,
		},
		{
			ID: "Q4.3",
			Joins: []DimJoin{
				{Dim: "part", FactFK: "partkey", DimKey: "partkey",
					Preds:   []engine.Pred{engine.Eq("category", 14)},
					Payload: "brand"},
				{Dim: "supplier", FactFK: "suppkey", DimKey: "suppkey",
					Preds:   []engine.Pred{engine.Eq("nation", UnitedStates)},
					Payload: "city"},
				{Dim: "customer", FactFK: "custkey", DimKey: "custkey",
					Preds: []engine.Pred{engine.Eq("region", ssb.America)}},
				{Dim: "date", FactFK: "orderdate", DimKey: "datekey",
					Preds:   []engine.Pred{engine.Between("year", 1997, 1998)},
					Payload: "year"},
			},
			Measure: SumRevMinusCost,
		},
	}
}

// Get returns the query with the given ID.
func Get(id string) (Query, error) {
	for _, q := range All() {
		if q.ID == id {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("queries: unknown query %q", id)
}

// Evaluated returns the ten queries of the paper's evaluation (Q2.x, Q3.x,
// Q4.x — the Q1.x flight queries are excluded as memory-bandwidth-bound,
// matching "we do not select the queries which bottleneck lies in memory
// bandwidth").
func Evaluated() []Query {
	var out []Query
	for _, q := range All() {
		if q.ID[1] != '1' {
			out = append(out, q)
		}
	}
	return out
}
