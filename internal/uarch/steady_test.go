package uarch

import (
	"reflect"
	"testing"

	"hef/internal/isa"
)

// steadyCPUs is the four machine models the fast path must be bit-exact on.
func steadyCPUs(t *testing.T) []*isa.CPU {
	t.Helper()
	var cpus []*isa.CPU
	for _, name := range []string{"silver", "gold", "neoverse", "zen"} {
		cpu, err := isa.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		cpus = append(cpus, cpu)
	}
	return cpus
}

// stackSpillProg mixes arithmetic with stack spill traffic — eligible for
// the fast path, and it exercises the cache/prefetcher state digest.
func stackSpillProg(name string, n int) *Program {
	p := &Program{Name: name, NumRegs: int16Max(n+2, 4), ElemsPerIter: n}
	ld := isa.MustScalar("movq")
	st := isa.MustScalar("movq.st")
	add := isa.MustScalar("add")
	for i := 0; i < n; i++ {
		r := int16(i + 2)
		p.Body = append(p.Body,
			UOp{Instr: ld, Dst: r, Srcs: [3]int16{NoReg, NoReg, NoReg},
				Addr: AddrSpec{Kind: AddrStack, Base: 1 << 20, Offset: uint64(i)}},
			UOp{Instr: add, Dst: r, Srcs: [3]int16{r, 0, NoReg}},
			UOp{Instr: st, Dst: NoReg, Srcs: [3]int16{r, NoReg, NoReg},
				Addr: AddrSpec{Kind: AddrStack, Base: 1 << 20, Offset: uint64(i)}},
		)
	}
	return p
}

// hotProbeProg loads a single constant address (Region 0 degenerates to
// Base), the pattern of a hot single-entry lookup.
func hotProbeProg(name string) *Program {
	ld := isa.MustScalar("movq")
	add := isa.MustScalar("add")
	return &Program{Name: name, NumRegs: 4, ElemsPerIter: 1, Body: []UOp{
		{Instr: ld, Dst: 2, Srcs: [3]int16{NoReg, NoReg, NoReg},
			Addr: AddrSpec{Kind: AddrRandom, Base: 1 << 30, Region: 0, Seed: 7}},
		{Instr: add, Dst: 3, Srcs: [3]int16{2, 0, NoReg}},
	}}
}

func int16Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// eligibleProgs are programs whose addresses are iteration-invariant; the
// fast path must engage on them and stay bit-identical to the slow path.
// 512-bit vector programs are only runnable on CPUs with 512-bit units, so
// callers filter by model.
func eligibleProgs(cpu *isa.CPU) []*Program {
	progs := []*Program{
		indepProg("fp-indep-add", isa.MustScalar("add"), 8),
		chainProg("fp-chain-mul", isa.MustScalar("imul"), 4),
		stackSpillProg("fp-spill", 6),
		hotProbeProg("fp-hot-probe"),
	}
	if len(cpu.Vec512Ports) > 0 {
		progs = append(progs, indepProg("fp-vec", isa.MustAVX512("vpmullq"), 4))
	}
	return progs
}

// runBoth executes prog on fresh simulators with the fast path off and on
// and returns both results plus the fast simulator (for FastForwarded).
func runBoth(t *testing.T, cpu *isa.CPU, prog *Program, iters int64) (slow, fast *Result, fastSim *Sim) {
	t.Helper()
	ss := NewSim(cpu)
	ss.SetFastPath(false)
	slow, err := ss.Run(prog, iters)
	if err != nil {
		t.Fatalf("%s/%s slow: %v", cpu.Name, prog.Name, err)
	}
	fs := NewSim(cpu)
	fast, err = fs.Run(prog, iters)
	if err != nil {
		t.Fatalf("%s/%s fast: %v", cpu.Name, prog.Name, err)
	}
	return slow, fast, fs
}

// TestFastPathBitIdentical is the core differential: on every eligible
// program × CPU model the fast path must produce the identical Result and
// must actually have skipped work.
func TestFastPathBitIdentical(t *testing.T) {
	const iters = 4096
	for _, cpu := range steadyCPUs(t) {
		for _, prog := range eligibleProgs(cpu) {
			slow, fast, fs := runBoth(t, cpu, prog, iters)
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s/%s: fast path diverged\nslow: %+v\nfast: %+v", cpu.Name, prog.Name, slow, fast)
			}
			if fi, fc := fs.FastForwarded(); fi == 0 || fc == 0 {
				t.Errorf("%s/%s: fast path did not engage (skipped %d iters, %d cycles)", cpu.Name, prog.Name, fi, fc)
			}
		}
	}
}

// TestFastPathBackToBackRuns checks the hierarchy bookkeeping the skip
// leaves behind: a second Run on the same simulator (retained cache and
// prefetcher state, the evaluator's warm-up/measure pattern) must match the
// slow path too.
func TestFastPathBackToBackRuns(t *testing.T) {
	const iters = 2048
	for _, cpu := range steadyCPUs(t) {
		for _, prog := range eligibleProgs(cpu) {
			ss := NewSim(cpu)
			ss.SetFastPath(false)
			fs := NewSim(cpu)
			for run := 0; run < 2; run++ {
				slow := mustRun(t, ss, prog, iters)
				fast := mustRun(t, fs, prog, iters)
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("%s/%s run %d: diverged\nslow: %+v\nfast: %+v", cpu.Name, prog.Name, run, slow, fast)
				}
			}
		}
	}
}

// TestFastPathIrregularIters sweeps iteration counts (including ones that
// leave awkward tails) to pin the exact-tail arithmetic.
func TestFastPathIrregularIters(t *testing.T) {
	cpu := isa.XeonSilver4110()
	for _, prog := range eligibleProgs(cpu) {
		for _, iters := range []int64{1, 2, 63, 100, 1000, 1001, 4097} {
			slow, fast, _ := runBoth(t, cpu, prog, iters)
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s iters=%d: diverged", prog.Name, iters)
			}
		}
	}
}

// TestReplayIterDependentAddresses: streaming and region-random programs are
// ineligible for the wholesale state jump, but response-verified replay
// (replay.go) fast-forwards them — and must stay bit-identical to the slow
// path across back-to-back runs, where the second run inherits the first
// run's hierarchy state.
func TestReplayIterDependentAddresses(t *testing.T) {
	ld := isa.MustScalar("movq")
	stream := &Program{Name: "stream", NumRegs: 2, ElemsPerIter: 1, Body: []UOp{
		{Instr: ld, Dst: 1, Srcs: [3]int16{NoReg, NoReg, NoReg},
			Addr: AddrSpec{Kind: AddrStride, Base: 1 << 28, Stride: 8}},
	}}
	random := &Program{Name: "random", NumRegs: 2, ElemsPerIter: 1, Body: []UOp{
		{Instr: ld, Dst: 1, Srcs: [3]int16{NoReg, NoReg, NoReg},
			Addr: AddrSpec{Kind: AddrRandom, Base: 1 << 28, Region: 1 << 22, Seed: 3}},
	}}
	for _, prog := range []*Program{stream, random} {
		ss := NewSim(isa.XeonSilver4110())
		ss.SetFastPath(false)
		fs := NewSim(isa.XeonSilver4110())
		skipped := int64(0)
		for run := 0; run < 3; run++ {
			slow := mustRun(t, ss, prog, 2048)
			fast := mustRun(t, fs, prog, 2048)
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s run %d: replay diverged\nslow: %+v\nfast: %+v", prog.Name, run, slow, fast)
			}
			if ss.hier.AccessNo() != fs.hier.AccessNo() {
				t.Errorf("%s run %d: hierarchy access clocks diverged: slow %d fast %d",
					prog.Name, run, ss.hier.AccessNo(), fs.hier.AccessNo())
			}
			fi, _ := fs.FastForwarded()
			skipped += fi
		}
		if skipped == 0 {
			t.Errorf("%s: replay mode never engaged across 3 runs", prog.Name)
		}
	}
}

// TestFastPathUnderPerturbation: name-keyed latency/occupancy jitter keeps
// the trajectory periodic, so the fast path stays exact; port-fault
// injection hashes absolute cycles, so the fast path must decline.
func TestFastPathUnderPerturbation(t *testing.T) {
	cpu := isa.XeonSilver4110()
	prog := indepProg("fp-perturb", isa.MustScalar("add"), 8)
	jit := &Perturb{Seed: 99, LatJitter: 0.3, OccJitter: 0.3}
	ss := NewSim(cpu)
	ss.SetFastPath(false)
	ss.SetPerturb(jit)
	slow := mustRun(t, ss, prog, 4096)
	fs := NewSim(cpu)
	fs.SetPerturb(jit)
	fast := mustRun(t, fs, prog, 4096)
	if !reflect.DeepEqual(slow, fast) {
		t.Errorf("latency-jitter run diverged\nslow: %+v\nfast: %+v", slow, fast)
	}

	pf := NewSim(cpu)
	pf.SetPerturb(&Perturb{Seed: 99, PortFaultRate: 0.05})
	mustRun(t, pf, prog, 4096)
	if fi, _ := pf.FastForwarded(); fi != 0 {
		t.Errorf("fast path engaged under port-fault injection (skipped %d iters)", fi)
	}
}

// TestFastPathDeclinesTrace: attached trace logs record absolute cycles for
// every event, so extrapolation must be off.
func TestFastPathDeclinesTrace(t *testing.T) {
	s := NewSim(isa.XeonSilver4110())
	tl := &TraceLog{}
	s.SetTraceLog(tl)
	mustRun(t, s, indepProg("fp-trace", isa.MustScalar("add"), 4), 512)
	if fi, _ := s.FastForwarded(); fi != 0 {
		t.Errorf("fast path engaged with a trace log attached (skipped %d iters)", fi)
	}
}

// TestFastPathSpeedupObservable: the point of the exercise — the skip must
// cover the overwhelming majority of a long run.
func TestFastPathSpeedupObservable(t *testing.T) {
	s := NewSim(isa.XeonSilver4110())
	const iters = 1 << 16
	mustRun(t, s, indepProg("fp-speed", isa.MustScalar("add"), 8), iters)
	fi, _ := s.FastForwarded()
	if fi < iters*9/10 {
		t.Errorf("fast path skipped only %d of %d iterations", fi, iters)
	}
}
