package uarch

import (
	"testing"

	"hef/internal/isa"
)

// chainProg builds a loop body that is one long dependent chain: r0 = op(r0, r1).
func chainProg(name string, in *isa.Instr, n int) *Program {
	body := make([]UOp, n)
	for i := range body {
		body[i] = UOp{Instr: in, Dst: 0, Srcs: [3]int16{0, 1, NoReg}}
	}
	return &Program{Name: name, Body: body, NumRegs: 2, ElemsPerIter: n}
}

// indepProg builds a loop body of n independent ops r_i = op(r_inv, r_inv2).
func indepProg(name string, in *isa.Instr, n int) *Program {
	body := make([]UOp, n)
	for i := range body {
		body[i] = UOp{Instr: in, Dst: int16(2 + i), Srcs: [3]int16{0, 1, NoReg}}
	}
	return &Program{Name: name, Body: body, NumRegs: 2 + n, ElemsPerIter: n}
}

func cyclesPerIter(t *testing.T, cpu *isa.CPU, p *Program, iters int64) float64 {
	t.Helper()
	s := NewSim(cpu)
	res, err := s.Run(p, iters)
	if err != nil {
		t.Fatalf("Run(%s): %v", p.Name, err)
	}
	return float64(res.Cycles) / float64(iters)
}

func TestDependentAddChainIsLatencyBound(t *testing.T) {
	cpu := isa.XeonSilver4110()
	// Each iteration has 4 adds all chained through r0: 4 cycles/iter.
	got := cyclesPerIter(t, cpu, chainProg("chain-add", isa.MustScalar("add"), 4), 2000)
	if got < 3.9 || got > 4.6 {
		t.Errorf("dependent add chain: got %.2f cycles/iter, want ~4", got)
	}
}

func TestIndependentAddsAreThroughputBound(t *testing.T) {
	cpu := isa.XeonSilver4110()
	// 8 independent adds per iteration, 4 scalar ALU ports, decode width 5:
	// the front-end is the limit (8 uops / 5 per cycle = 1.6 cycles/iter).
	got := cyclesPerIter(t, cpu, indepProg("indep-add", isa.MustScalar("add"), 8), 2000)
	if got < 1.5 || got > 2.2 {
		t.Errorf("independent adds: got %.2f cycles/iter, want ~1.6", got)
	}
}

func TestScalarMulSinglePipe(t *testing.T) {
	cpu := isa.XeonSilver4110()
	// 4 independent imuls per iteration on a single multiply pipe: 4 cycles.
	got := cyclesPerIter(t, cpu, indepProg("indep-mul", isa.MustScalar("imul"), 4), 2000)
	if got < 3.8 || got > 4.6 {
		t.Errorf("independent imuls: got %.2f cycles/iter, want ~4", got)
	}
}

func TestDependentMulChainLatencyBound(t *testing.T) {
	cpu := isa.XeonSilver4110()
	// Chain of 4 imuls at latency 3: 12 cycles/iter.
	got := cyclesPerIter(t, cpu, chainProg("chain-mul", isa.MustScalar("imul"), 4), 2000)
	if got < 11.5 || got > 13.0 {
		t.Errorf("dependent imul chain: got %.2f cycles/iter, want ~12", got)
	}
}

func TestVecMulOccupancySilverVsGold(t *testing.T) {
	p := func() *Program {
		pr := indepProg("indep-vpmullq", isa.MustAVX512("vpmullq"), 4)
		pr.VectorStatements = 1
		pr.VectorWidth = isa.W512
		return pr
	}
	// Silver: one fused 512-bit unit, occupancy 3 => 12 cycles/iter.
	silver := cyclesPerIter(t, isa.XeonSilver4110(), p(), 2000)
	if silver < 11.5 || silver > 13.0 {
		t.Errorf("silver vpmullq: got %.2f cycles/iter, want ~12", silver)
	}
	// Gold: two 512-bit units => ~6 cycles/iter.
	gold := cyclesPerIter(t, isa.XeonGold6240R(), p(), 2000)
	if gold < 5.5 || gold > 7.0 {
		t.Errorf("gold vpmullq: got %.2f cycles/iter, want ~6", gold)
	}
}

func TestFused512BlocksSharedScalarPorts(t *testing.T) {
	cpu := isa.XeonSilver4110()
	// One 512-bit ALU op + four scalar adds per iteration: the 512-bit op
	// occupies p0 (the fused unit's anchor), leaving p1/p5/p6 for scalar.
	body := []UOp{
		{Instr: isa.MustAVX512("vpaddq"), Dst: 2, Srcs: [3]int16{0, 1, NoReg}},
		{Instr: isa.MustScalar("add"), Dst: 3, Srcs: [3]int16{0, 1, NoReg}},
		{Instr: isa.MustScalar("add"), Dst: 4, Srcs: [3]int16{0, 1, NoReg}},
		{Instr: isa.MustScalar("add"), Dst: 5, Srcs: [3]int16{0, 1, NoReg}},
		{Instr: isa.MustScalar("add"), Dst: 6, Srcs: [3]int16{0, 1, NoReg}},
	}
	p := &Program{Name: "fused-512", Body: body, NumRegs: 7, ElemsPerIter: 12,
		VectorStatements: 1, VectorWidth: isa.W512}
	got := cyclesPerIter(t, cpu, p, 2000)
	// 5 uops at decode 5 and: cycle A has vec on p0+p1 plus 2 adds on p5/p6,
	// 2 adds left over => slightly above 1 cycle/iter.
	if got < 1.0 || got > 2.0 {
		t.Errorf("fused 512 + scalar mix: got %.2f cycles/iter, want in [1,2]", got)
	}
}

func TestGatherDependentVsIndependent(t *testing.T) {
	cpu := isa.XeonSilver4110()
	g := isa.MustAVX512("vpgatherqq")
	small := uint64(2048) // an L1-resident lookup table, like CRC64's

	dep := &Program{Name: "gather-dep", NumRegs: 2, ElemsPerIter: 8 * 4,
		VectorStatements: 1, VectorWidth: isa.W512}
	for i := 0; i < 4; i++ {
		dep.Body = append(dep.Body, UOp{Instr: g, Dst: 0, Srcs: [3]int16{0, NoReg, NoReg},
			Addr: AddrSpec{Kind: AddrRandom, Base: 1 << 30, Region: small, Seed: uint64(i)}})
	}
	indep := &Program{Name: "gather-indep", NumRegs: 5, ElemsPerIter: 8 * 4,
		VectorStatements: 1, VectorWidth: isa.W512}
	for i := 0; i < 4; i++ {
		indep.Body = append(indep.Body, UOp{Instr: g, Dst: int16(1 + i), Srcs: [3]int16{0, NoReg, NoReg},
			Addr: AddrSpec{Kind: AddrRandom, Base: 1 << 30, Region: small, Seed: uint64(i)}})
	}
	cDep := cyclesPerIter(t, cpu, dep, 500)
	cIndep := cyclesPerIter(t, cpu, indep, 500)
	// Dependent gathers pay the 26-cycle latency each; independent gathers
	// stream at the 5-cycle reciprocal throughput.
	if cDep < 3*cIndep {
		t.Errorf("dependent gathers (%.1f c/iter) should be >=3x slower than independent (%.1f c/iter)", cDep, cIndep)
	}
	if cIndep < 14 || cIndep > 26 {
		t.Errorf("independent gathers: got %.1f cycles/iter, want ~16 (4 gathers x 4c)", cIndep)
	}
}

func TestCacheRegionAffectsLoadCost(t *testing.T) {
	cpu := isa.XeonSilver4110()
	mk := func(region uint64) *Program {
		return &Program{
			Name: "load-region", NumRegs: 2, ElemsPerIter: 1,
			Body: []UOp{{Instr: isa.MustScalar("movq"), Dst: 0, Srcs: [3]int16{1, NoReg, NoReg},
				Addr: AddrSpec{Kind: AddrRandom, Base: 1 << 31, Region: region, Seed: 7}}},
		}
	}
	smallC := cyclesPerIter(t, isa.XeonSilver4110(), mk(16<<10), 20000)
	largeC := cyclesPerIter(t, cpu, mk(256<<20), 20000)
	if largeC < 2*smallC {
		t.Errorf("random loads over 256MB (%.2f c/iter) should be much slower than over 16KB (%.2f c/iter)", largeC, smallC)
	}
}

func TestHistogramAccountsForAllCycles(t *testing.T) {
	cpu := isa.XeonSilver4110()
	s := NewSim(cpu)
	p := indepProg("hist", isa.MustScalar("add"), 6)
	res, err := s.Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, h := range res.Hist {
		sum += h
	}
	if sum != res.Cycles {
		t.Errorf("histogram sums to %d cycles, want %d", sum, res.Cycles)
	}
	if res.Instructions != 6000 {
		t.Errorf("retired %d instructions, want 6000", res.Instructions)
	}
}

func TestRunValidates(t *testing.T) {
	s := NewSim(isa.XeonSilver4110())
	if _, err := s.Run(&Program{Name: "empty", ElemsPerIter: 1}, 10); err == nil {
		t.Error("empty program should fail validation")
	}
	bad := &Program{Name: "bad-reg", ElemsPerIter: 1, NumRegs: 1,
		Body: []UOp{{Instr: isa.MustScalar("add"), Dst: 5, Srcs: [3]int16{NoReg, NoReg, NoReg}}}}
	if _, err := s.Run(bad, 10); err == nil {
		t.Error("out-of-range register should fail validation")
	}
	memless := &Program{Name: "memless", ElemsPerIter: 1, NumRegs: 1,
		Body: []UOp{{Instr: isa.MustScalar("movq"), Dst: 0, Srcs: [3]int16{NoReg, NoReg, NoReg}}}}
	if _, err := s.Run(memless, 10); err == nil {
		t.Error("memory op without AddrSpec should fail validation")
	}
	good := indepProg("good", isa.MustScalar("add"), 1)
	if _, err := s.Run(good, 0); err == nil {
		t.Error("zero iterations should be rejected")
	}
}

func TestFrequencyLicense(t *testing.T) {
	silver := isa.XeonSilver4110()
	gold := isa.XeonGold6240R()

	scalarProg := indepProg("s", isa.MustScalar("add"), 4)
	res := mustRun(t, NewSim(silver), scalarProg, 100)
	if res.FreqGHz != silver.Freq.ScalarGHz {
		t.Errorf("scalar-only freq = %.2f, want %.2f", res.FreqGHz, silver.Freq.ScalarGHz)
	}

	v1 := indepProg("v1", isa.MustAVX512("vpmullq"), 2)
	v1.VectorStatements = 1
	v1.VectorWidth = isa.W512
	res = mustRun(t, NewSim(silver), v1, 100)
	if res.FreqGHz != silver.Freq.AVX512GHz {
		t.Errorf("one 512-bit statement freq = %.2f, want %.2f", res.FreqGHz, silver.Freq.AVX512GHz)
	}

	// Two 512-bit statements only downclock parts with two 512-bit units.
	v2 := indepProg("v2", isa.MustAVX512("vpmullq"), 2)
	v2.VectorStatements = 2
	v2.VectorWidth = isa.W512
	res = mustRun(t, NewSim(silver), v2, 100)
	if res.FreqGHz != silver.Freq.AVX512GHz {
		t.Errorf("silver v=2 freq = %.2f, want %.2f (only one 512 unit)", res.FreqGHz, silver.Freq.AVX512GHz)
	}
	res = mustRun(t, NewSim(gold), v2, 100)
	if res.FreqGHz != gold.Freq.AVX512HeavyGHz {
		t.Errorf("gold v=2 freq = %.2f, want heavy license %.2f", res.FreqGHz, gold.Freq.AVX512HeavyGHz)
	}
}
