package uarch

import (
	"fmt"
	"reflect"
	"testing"

	"hef/internal/isa"
)

// skelTestSeq makes each invocation's program content unique, so counter
// assertions see a genuinely cold cache entry even under -count=N (the
// process-wide skeleton cache outlives a single test run).
var skelTestSeq int

func skelTestName(prefix string) string {
	skelTestSeq++
	return fmt.Sprintf("%s-%d", prefix, skelTestSeq)
}

// TestSkeletonCacheKeyEdges pins the cache-key contract: identical
// (program, LatJitter, OccJitter, Seed) triples share one skeleton, and any
// change to a timing input — either jitter amplitude or, once an amplitude
// is nonzero, the seed — yields a distinct skeleton. A perturbed model must
// never be handed tables built under someone else's latencies.
func TestSkeletonCacheKeyEdges(t *testing.T) {
	prog := indepProg("skel-key-edges", isa.MustScalar("add"), 8)
	base := lookupSkeleton(prog, 0, 0, 0)
	if again := lookupSkeleton(prog, 0, 0, 0); again != base {
		t.Fatal("identical key must return the cached skeleton")
	}

	lat := lookupSkeleton(prog, 0.3, 0, 7)
	occ := lookupSkeleton(prog, 0, 0.3, 7)
	seed := lookupSkeleton(prog, 0.3, 0, 8)
	if lat == base || occ == base {
		t.Fatal("nonzero timing jitter must not reuse the unperturbed skeleton")
	}
	if lat == occ {
		t.Fatal("LatJitter and OccJitter configurations must not share a skeleton")
	}
	if seed == lat {
		t.Fatal("changing the seed under nonzero jitter must rebuild the skeleton")
	}

	other := indepProg("skel-key-edges-other", isa.MustScalar("imul"), 8)
	if lookupSkeleton(other, 0, 0, 0) == base {
		t.Fatal("distinct program content must not share a skeleton")
	}
}

// TestSkeletonTablesResolvePerturbation: a perturbed skeleton's latency and
// occupancy columns must equal Perturb.Latency/Occupancy applied per µop —
// the draws are baked into the tables, never resolved per issue.
func TestSkeletonTablesResolvePerturbation(t *testing.T) {
	prog := chainProg("skel-tables", isa.MustScalar("imul"), 6)
	for _, seed := range []uint64{1, 7, 99} {
		p := &Perturb{Seed: seed, LatJitter: 0.5, OccJitter: 0.5}
		sk := lookupSkeleton(prog, 0.5, 0.5, seed)
		for i := range prog.Body {
			in := prog.Body[i].Instr
			if got, want := sk.lat[i], int32(p.Latency(in)); got != want {
				t.Fatalf("seed %d µop %d: skeleton lat %d, Perturb.Latency %d", seed, i, got, want)
			}
			if got, want := sk.occ[i], int32(p.Occupancy(in)); got != want {
				t.Fatalf("seed %d µop %d: skeleton occ %d, Perturb.Occupancy %d", seed, i, got, want)
			}
		}
	}
}

// TestSkeletonCacheHitMissCounters: a first lookup is a miss, repeats are
// hits, and the bind fast path (same sim, same program, same perturbation)
// counts as a hit without touching the map.
func TestSkeletonCacheHitMissCounters(t *testing.T) {
	prog := indepProg(skelTestName("skel-counters"), isa.MustScalar("add"), 4)
	h0, m0 := skelHits.Load(), skelMisses.Load()
	lookupSkeleton(prog, 0.1, 0, 3)
	if skelMisses.Load() != m0+1 {
		t.Fatalf("first lookup: misses %d, want %d", skelMisses.Load(), m0+1)
	}
	lookupSkeleton(prog, 0.1, 0, 3)
	if skelHits.Load() != h0+1 {
		t.Fatalf("second lookup: hits %d, want %d", skelHits.Load(), h0+1)
	}

	cpu := steadyCPUs(t)[0]
	s := NewSim(cpu)
	mustRun(t, s, prog, 64)
	h1 := skelHits.Load()
	mustRun(t, s, prog, 64)
	if skelHits.Load() != h1+1 {
		t.Fatalf("rebind of the bound skeleton: hits %d, want %d", skelHits.Load(), h1+1)
	}
}

// TestSkeletonPerturbSwitch drives one simulator through a perturbation
// change and back. The perturbed run must rebind to a different skeleton
// (stale latencies are the failure mode this cache must never produce), the
// return to the unperturbed model must hit the original cached skeleton and
// reproduce the original Result exactly, and the perturbed Result must be
// reproducible from a cold simulator sharing the process-wide cache.
func TestSkeletonPerturbSwitch(t *testing.T) {
	cpu := steadyCPUs(t)[0]
	prog := stackSpillProg("skel-switch", 6)
	jit := &Perturb{Seed: 7, LatJitter: 0.4, OccJitter: 0.4}

	// The cache hierarchy persists across Run calls on one simulator, so
	// every comparison below is between steady-state runs: one warm-up run
	// per configuration brings the program's (iteration-invariant) working
	// set resident.
	s := NewSim(cpu)
	mustRun(t, s, prog, 256)
	r0 := mustRun(t, s, prog, 256)
	sk0 := s.skel

	s.SetPerturb(jit)
	r1 := mustRun(t, s, prog, 256)
	if s.skel == sk0 {
		t.Fatal("perturbed run reused the unperturbed skeleton")
	}

	s.SetPerturb(nil)
	r2 := mustRun(t, s, prog, 256)
	if s.skel != sk0 {
		t.Fatal("removing the perturbation must hit the original cached skeleton")
	}
	if !reflect.DeepEqual(r0, r2) {
		t.Fatalf("result changed after a perturb round-trip:\n  before %+v\n  after  %+v", r0, r2)
	}

	cold := NewSim(cpu)
	cold.SetPerturb(&Perturb{Seed: 7, LatJitter: 0.4, OccJitter: 0.4})
	mustRun(t, cold, prog, 256)
	r3 := mustRun(t, cold, prog, 256)
	if !reflect.DeepEqual(r1, r3) {
		t.Fatalf("perturbed result not reproducible from a cold simulator:\n  warm %+v\n  cold %+v", r1, r3)
	}
}

// TestSkeletonNonTimingPerturbSharesSkeleton: port faults act per cycle and
// cache/frequency jitter act through a cloned CPU model, so none of them may
// key the skeleton — such runs share the unperturbed tables.
func TestSkeletonNonTimingPerturbSharesSkeleton(t *testing.T) {
	cpu := steadyCPUs(t)[0]
	prog := hotProbeProg("skel-nontiming")

	s := NewSim(cpu)
	mustRun(t, s, prog, 128)
	sk0 := s.skel

	for _, p := range []*Perturb{
		{Seed: 11, PortFaultRate: 0.2},
		{Seed: 11, CacheJitter: 0.3},
		{Seed: 11, FreqJitter: 0.3},
	} {
		s.SetPerturb(p)
		mustRun(t, s, prog, 128)
		if s.skel != sk0 {
			t.Fatalf("%+v must share the unperturbed skeleton", p)
		}
	}
}
