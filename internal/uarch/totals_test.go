package uarch

import (
	"testing"

	"hef/internal/isa"
)

// TestTotalsAccumulate: every completed run folds its retired instructions
// and cycle split into the process-wide counters, with fast+slow summing to
// total cycles.
func TestTotalsAccumulate(t *testing.T) {
	ResetTotals()
	cpu := isa.XeonSilver4110()
	prog := &Program{Name: "totals", NumRegs: 4, ElemsPerIter: 1, Body: []UOp{
		{Instr: isa.MustScalar("add"), Dst: 2, Srcs: [3]int16{0, 1, NoReg}},
		{Instr: isa.MustScalar("add"), Dst: 3, Srcs: [3]int16{2, 1, NoReg}},
	}}
	s := NewSim(cpu)
	const iters = 256
	res, err := s.Run(prog, iters)
	if err != nil {
		t.Fatal(err)
	}

	got := Totals()
	if got.Runs != 1 {
		t.Fatalf("runs = %d, want 1", got.Runs)
	}
	if got.Instructions != res.Instructions {
		t.Fatalf("instructions = %d, want %d", got.Instructions, res.Instructions)
	}
	if got.FastCycles+got.SlowCycles != res.Cycles {
		t.Fatalf("fast %d + slow %d != cycles %d", got.FastCycles, got.SlowCycles, res.Cycles)
	}

	if _, err := s.Run(prog, iters); err != nil {
		t.Fatal(err)
	}
	again := Totals()
	if again.Runs != 2 || again.Instructions != 2*res.Instructions {
		t.Fatalf("after second run: %+v", again)
	}
	ResetTotals()
	if z := Totals(); z != (SimTotals{}) {
		t.Fatalf("reset left %+v", z)
	}
}
