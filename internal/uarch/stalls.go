package uarch

import "hef/internal/isa"

// Top-down stall attribution. Every simulated cycle is classified by why
// the retirement stage made no progress, in the spirit of Yasin's top-down
// method over perf counters: the cycle either retired µops, or it is charged
// to the frontend (empty machine), to backend port contention, to the memory
// subsystem (cache/DRAM latency or full load/store/fill queues), or to
// dependency latency (an arithmetic producer chain). The invariant
// Stalls.Total() == Result.Cycles holds for every Run.

// stallKind indexes the per-cycle classification.
type stallKind uint8

const (
	stallRetiring stallKind = iota
	stallFrontend
	stallBackendPort
	stallMemory
	stallDependency
)

// Stalls is the cycle-attribution bucket set of one simulation.
type Stalls struct {
	// Retiring counts cycles in which at least one µop retired.
	Retiring uint64 `json:"retiring"`
	// Frontend counts cycles with an empty ROB: the front end had not
	// delivered work (pipeline fill and drain).
	Frontend uint64 `json:"frontend"`
	// BackendPort counts cycles the oldest instruction was ready but no
	// issue port accepting its class was free.
	BackendPort uint64 `json:"backend_port"`
	// Memory counts cycles the oldest instruction waited on the memory
	// subsystem: an in-flight load/gather/store, a blocking memory-class
	// producer, or a full load queue, store queue, or line-fill-buffer array.
	Memory uint64 `json:"memory"`
	// Dependency counts cycles the oldest instruction waited on the latency
	// of a non-memory producer chain.
	Dependency uint64 `json:"dependency"`
}

// Total sums all buckets; it equals Result.Cycles for a simulator run.
func (s *Stalls) Total() uint64 {
	return s.Retiring + s.Frontend + s.BackendPort + s.Memory + s.Dependency
}

func (s *Stalls) add(k stallKind, n uint64) {
	switch k {
	case stallRetiring:
		s.Retiring += n
	case stallFrontend:
		s.Frontend += n
	case stallBackendPort:
		s.BackendPort += n
	case stallMemory:
		s.Memory += n
	case stallDependency:
		s.Dependency += n
	}
}

// addStalls accumulates o into s bucket-wise.
func (s *Stalls) addStalls(o *Stalls) {
	s.Retiring += o.Retiring
	s.Frontend += o.Frontend
	s.BackendPort += o.BackendPort
	s.Memory += o.Memory
	s.Dependency += o.Dependency
}

// scale multiplies every bucket by f and then repairs the rounding residual
// against the target cycle count so the sum-equals-cycles invariant survives
// extrapolation. A zero bucket set (a hand-built Result) is left untouched.
func (s *Stalls) scale(f float64, targetCycles uint64) {
	if s.Total() == 0 {
		return
	}
	s.Retiring = uint64(float64(s.Retiring) * f)
	s.Frontend = uint64(float64(s.Frontend) * f)
	s.BackendPort = uint64(float64(s.BackendPort) * f)
	s.Memory = uint64(float64(s.Memory) * f)
	s.Dependency = uint64(float64(s.Dependency) * f)
	sum := s.Total()
	if sum >= targetCycles {
		return
	}
	// Per-bucket floors undershoot the floored total; charge the residual to
	// the largest bucket.
	residual := targetCycles - sum
	largest := &s.Retiring
	for _, b := range []*uint64{&s.Frontend, &s.BackendPort, &s.Memory, &s.Dependency} {
		if *b > *largest {
			largest = b
		}
	}
	*largest += residual
}

// OccBuckets is the resolution of the occupancy histograms.
const OccBuckets = 8

// OccHist is an occupancy histogram sampled once per cycle: bucket i counts
// cycles in which the occupancy fell in [i*Cap/OccBuckets, (i+1)*Cap/OccBuckets).
type OccHist struct {
	// Cap is the structure's capacity (ROB µops, load-queue slots).
	Cap     int                `json:"cap"`
	Buckets [OccBuckets]uint64 `json:"buckets"`
}

// Record charges cycles cycles at occupancy occ.
func (h *OccHist) Record(occ int, cycles uint64) {
	if h.Cap <= 0 {
		return
	}
	b := occ * OccBuckets / h.Cap
	if b >= OccBuckets {
		b = OccBuckets - 1
	}
	if b < 0 {
		b = 0
	}
	h.Buckets[b] += cycles
}

// Total sums the histogram; it equals Result.Cycles for a simulator run.
func (h *OccHist) Total() uint64 {
	var n uint64
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

func (h *OccHist) addHist(o *OccHist) {
	if o.Cap > h.Cap {
		h.Cap = o.Cap
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

func (h *OccHist) scale(f float64) {
	for i := range h.Buckets {
		h.Buckets[i] = uint64(float64(h.Buckets[i]) * f)
	}
}

// classifyStall attributes one non-retiring cycle. It inspects the oldest
// in-flight instruction — the one blocking retirement — mirroring the checks
// tryIssue performs, without mutating any state.
func (s *Sim) classifyStall(cycle int64) stallKind {
	if s.robCount == 0 {
		return stallFrontend
	}
	sk := s.skel
	h := s.robHead
	b := s.robBody[h]
	if s.robIssued[h] {
		// Executing: charge the wait to its result latency.
		if sk.class[b].IsMemory() {
			return stallMemory
		}
		return stallDependency
	}
	// Operand readiness, re-deriving each operand's slab cell from the
	// skeleton (the per-entry robSrc list is packed and drops the operand
	// slot, which the memory-producer attribution needs).
	iter := s.robIter[h]
	nr := sk.numRegs
	base := int(iter&regRingMask) * nr
	ready := true
	memBlocked := false
	for k := 0; k < 3; k++ {
		var o int
		switch sk.srcKind[int(b)*3+k] {
		case srcSame:
			o = base + int(sk.srcReg[int(b)*3+k])
		case srcCarried:
			if iter == 0 {
				continue
			}
			o = int((iter-1)&regRingMask)*nr + int(sk.srcReg[int(b)*3+k])
		default:
			continue
		}
		if v := s.slab[o]; v == notIssued || v > cycle {
			ready = false
			if sk.srcMem[int(b)*3+k] {
				memBlocked = true
			}
		}
	}
	if !ready {
		if memBlocked {
			return stallMemory
		}
		return stallDependency
	}
	// Operands ready: an execution resource is the blocker.
	switch sk.class[b] {
	case isa.Load:
		if len(s.loadQ) >= s.cpu.LoadQueue || len(s.lfb) >= s.cpu.LineFillBuffers {
			return stallMemory
		}
	case isa.GatherOp:
		if len(s.loadQ)+int(sk.lqSlots[b]) > s.cpu.LoadQueue || len(s.lfb) >= s.cpu.LineFillBuffers {
			return stallMemory
		}
	case isa.Store:
		if len(s.storeQ) >= s.cpu.StoreQueue {
			return stallMemory
		}
	}
	return stallBackendPort
}
