package uarch

import (
	"testing"

	"hef/internal/isa"
)

// BenchmarkSimulatorThroughput measures simulated instructions per second —
// the cost of the timing substrate itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cpu := isa.XeonSilver4110()
	p := indepProg("bench", isa.MustScalar("add"), 8)
	s := NewSim(cpu)
	const iters = 4096
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		if err := s.RunInto(&res, p, iters); err != nil {
			b.Fatal(err)
		}
		instrs += res.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// TestRunIntoAllocs pins the allocation hygiene of the hot loop: once a Sim
// and Result have been through one warm-up Run, steady-state RunInto calls
// must not allocate at all.
func TestRunIntoAllocs(t *testing.T) {
	cpu := isa.XeonSilver4110()
	progs := []*Program{
		indepProg("alloc-add", isa.MustScalar("add"), 8),
		stackSpillProg("alloc-spill", 4),
	}
	for _, p := range progs {
		s := NewSim(cpu)
		var res Result
		if err := s.RunInto(&res, p, 1024); err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(10, func() {
			if err := s.RunInto(&res, p, 1024); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 0 {
			t.Errorf("%s: RunInto allocates %.1f objects per call after warm-up, want 0", p.Name, avg)
		}
	}
}

func BenchmarkSimulatorGatherHeavy(b *testing.B) {
	cpu := isa.XeonSilver4110()
	g := isa.MustAVX512("vpgatherqq")
	p := &Program{Name: "gb", NumRegs: 3, ElemsPerIter: 16,
		VectorStatements: 1, VectorWidth: isa.W512,
		Body: []UOp{
			{Instr: g, Dst: 1, Srcs: [3]int16{0, NoReg, NoReg},
				Addr: AddrSpec{Kind: AddrRandom, Base: 1 << 33, Region: 1 << 22, Seed: 1}},
			{Instr: g, Dst: 2, Srcs: [3]int16{0, NoReg, NoReg},
				Addr: AddrSpec{Kind: AddrRandom, Base: 1 << 34, Region: 1 << 22, Seed: 2}},
		}}
	s := NewSim(cpu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(p, 2048); err != nil {
			b.Fatal(err)
		}
	}
}
