package uarch

import "fmt"

// SelfCheck verifies the conservation laws a freshly simulated Result must
// satisfy, returning a descriptive error naming the first violated law. The
// laws hold exactly for the counter deltas of one RunInto — including runs
// the steady-state fast path extrapolated — but not necessarily after Scale
// (floating-point extrapolation rounds) or Add with hand-built Results, so
// callers check at the simulator boundary, not downstream.
func (r *Result) SelfCheck() error {
	if got := r.Stalls.Total(); got != r.Cycles {
		return fmt.Errorf("uarch: selfcheck %q: stall buckets sum to %d, want cycles=%d", r.Name, got, r.Cycles)
	}
	var hist uint64
	for _, h := range r.Hist {
		hist += h
	}
	if hist != r.Cycles {
		return fmt.Errorf("uarch: selfcheck %q: issue histogram sums to %d, want cycles=%d", r.Name, hist, r.Cycles)
	}
	if r.IssuedUops != r.Uops {
		return fmt.Errorf("uarch: selfcheck %q: issued %d µops but retired %d", r.Name, r.IssuedUops, r.Uops)
	}
	for i, b := range r.PortBusy {
		if b > r.Cycles {
			return fmt.Errorf("uarch: selfcheck %q: port %d busy %d of %d cycles", r.Name, i, b, r.Cycles)
		}
	}
	if r.ROBOcc.Cap > 0 {
		if got := r.ROBOcc.Total(); got != r.Cycles {
			return fmt.Errorf("uarch: selfcheck %q: ROB occupancy histogram sums to %d, want cycles=%d", r.Name, got, r.Cycles)
		}
	}
	if r.LoadQOcc.Cap > 0 {
		if got := r.LoadQOcc.Total(); got != r.Cycles {
			return fmt.Errorf("uarch: selfcheck %q: load-queue occupancy histogram sums to %d, want cycles=%d", r.Name, got, r.Cycles)
		}
	}
	// The hierarchy's demand counters chain: every L1 miss is an L2 access,
	// every L2 miss an LLC access, every LLC miss a memory access. (Prefetch
	// fills are counted apart and do not enter the chain.)
	c := &r.Cache
	if c.L2Hits+c.L2Misses != c.L1Misses {
		return fmt.Errorf("uarch: selfcheck %q: L2 hits+misses = %d, want L1 misses = %d", r.Name, c.L2Hits+c.L2Misses, c.L1Misses)
	}
	if c.LLCHits+c.LLCMisses != c.L2Misses {
		return fmt.Errorf("uarch: selfcheck %q: LLC hits+misses = %d, want L2 misses = %d", r.Name, c.LLCHits+c.LLCMisses, c.L2Misses)
	}
	if c.MemAccesses != c.LLCMisses {
		return fmt.Errorf("uarch: selfcheck %q: %d memory accesses, want LLC misses = %d", r.Name, c.MemAccesses, c.LLCMisses)
	}
	return nil
}

// steadyDeltaCheck verifies the cycle-conservation laws on the counter
// delta the steady-state fast path is about to extrapolate: the d cycles
// between the matched boundary snapshots must be fully accounted for by the
// stall buckets, the issue histogram, and the occupancy histograms
// accumulated over them. Catching a skewed delta here — before it is
// multiplied by k periods — turns an invisible billion-cycle drift into an
// immediate, attributable failure.
func steadyDeltaCheck(res, base *Result, d int64) error {
	if got := res.Stalls.Total() - base.Stalls.Total(); got != uint64(d) {
		return fmt.Errorf("uarch: selfcheck steady delta: stall buckets account for %d of %d cycles", got, d)
	}
	var hist uint64
	for i := range res.Hist {
		hist += res.Hist[i] - base.Hist[i]
	}
	if hist != uint64(d) {
		return fmt.Errorf("uarch: selfcheck steady delta: issue histogram accounts for %d of %d cycles", hist, d)
	}
	if res.ROBOcc.Cap > 0 {
		if got := res.ROBOcc.Total() - base.ROBOcc.Total(); got != uint64(d) {
			return fmt.Errorf("uarch: selfcheck steady delta: ROB occupancy accounts for %d of %d cycles", got, d)
		}
	}
	if res.LoadQOcc.Cap > 0 {
		if got := res.LoadQOcc.Total() - base.LoadQOcc.Total(); got != uint64(d) {
			return fmt.Errorf("uarch: selfcheck steady delta: load-queue occupancy accounts for %d of %d cycles", got, d)
		}
	}
	return nil
}
