package uarch

import (
	"testing"

	"hef/internal/isa"
)

// Accumulator-style loop-carried dependences serialize across iterations.
func TestLoopCarriedAccumulator(t *testing.T) {
	cpu := isa.XeonSilver4110()
	// r0 = r0 * r1 each iteration: a serial imul chain at latency 3.
	p := &Program{Name: "acc", NumRegs: 2, ElemsPerIter: 1,
		Body: []UOp{{Instr: isa.MustScalar("imul"), Dst: 0, Srcs: [3]int16{0, 1, NoReg}}}}
	res := mustRun(t, NewSim(cpu), p, 3000)
	cpi := float64(res.Cycles) / 3000
	if cpi < 2.8 || cpi > 3.4 {
		t.Errorf("carried imul chain: %.2f cycles/iter, want ~3 (latency-bound)", cpi)
	}
}

// Stack (spill) accesses stay L1-resident and cheap.
func TestStackAccessesAreCheap(t *testing.T) {
	cpu := isa.XeonSilver4110()
	p := &Program{Name: "spills", NumRegs: 2, ElemsPerIter: 1,
		Body: []UOp{
			{Instr: isa.MustScalar("movq.st"), Dst: NoReg, Srcs: [3]int16{1, NoReg, NoReg},
				Addr: AddrSpec{Kind: AddrStack, Base: 1 << 40, Offset: 0}},
			{Instr: isa.MustScalar("movq"), Dst: 0, Srcs: [3]int16{NoReg, NoReg, NoReg},
				Addr: AddrSpec{Kind: AddrStack, Base: 1 << 40, Offset: 0}},
		}}
	res := mustRun(t, NewSim(cpu), p, 4000)
	if got := res.Cache.LLCMisses; got > 2 {
		t.Errorf("stack traffic caused %d LLC misses, want ~0", got)
	}
	if cpi := float64(res.Cycles) / 4000; cpi > 3 {
		t.Errorf("stack store+load loop: %.2f cycles/iter, want cheap", cpi)
	}
}

func TestResultAddAndScale(t *testing.T) {
	a := &Result{Cycles: 100, Instructions: 50, Uops: 60, Elems: 10, FreqGHz: 2}
	a.Hist[0] = 40
	a.Hist[2] = 60
	b := &Result{Cycles: 100, Instructions: 30, Uops: 35, Elems: 10}
	b.Hist[1] = 100
	a.Add(b)
	if a.Cycles != 200 || a.Instructions != 80 || a.Uops != 95 || a.Elems != 20 {
		t.Errorf("Add: %+v", a)
	}
	if a.Hist[0] != 40 || a.Hist[1] != 100 || a.Hist[2] != 60 {
		t.Errorf("Add histogram: %v", a.Hist)
	}
	a.Scale(0.5)
	if a.Cycles != 100 || a.Instructions != 40 || a.Elems != 10 {
		t.Errorf("Scale: %+v", a)
	}
	if a.Hist[1] != 50 {
		t.Errorf("Scale histogram: %v", a.Hist)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := &Result{Cycles: 200, Instructions: 100, Elems: 50, FreqGHz: 2}
	if r.IPC() != 0.5 {
		t.Errorf("IPC = %f", r.IPC())
	}
	if got := r.Seconds(); got != 1e-7 {
		t.Errorf("Seconds = %g", got)
	}
	if r.CyclesPerElem() != 4 {
		t.Errorf("CyclesPerElem = %f", r.CyclesPerElem())
	}
	empty := &Result{}
	if empty.IPC() != 0 || empty.Seconds() != 0 || empty.CyclesPerElem() != 0 {
		t.Error("zero-value result should return zero metrics")
	}
}

func TestUopsPerIterHelpers(t *testing.T) {
	p := &Program{Name: "h", NumRegs: 1, ElemsPerIter: 8,
		Body: []UOp{
			{Instr: isa.MustAVX512("vpmullq"), Dst: 0, Srcs: [3]int16{NoReg, NoReg, NoReg}},
			{Instr: isa.MustAVX512("vpaddq"), Dst: 0, Srcs: [3]int16{NoReg, NoReg, NoReg}},
		}}
	if p.InstructionsPerIter() != 2 {
		t.Errorf("InstructionsPerIter = %d", p.InstructionsPerIter())
	}
	if p.UopsPerIter() != 4 { // vpmullq is 3 uops
		t.Errorf("UopsPerIter = %d", p.UopsPerIter())
	}
}

// The governor must floor at MinGHz and only trigger on prefetch density.
func TestEffectiveFreqGovernor(t *testing.T) {
	cpu := isa.XeonSilver4110()
	prog := &Program{VectorStatements: 0}
	res := &Result{Instructions: 100, Uops: 120, PrefetchUops: 90, Cycles: 100}
	f := EffectiveFreq(cpu, prog, res)
	if f != cpu.Freq.MinGHz {
		t.Errorf("saturated prefetch density should floor at MinGHz, got %.2f", f)
	}
	res.PrefetchUops = 0
	if f := EffectiveFreq(cpu, prog, res); f != cpu.Freq.ScalarGHz {
		t.Errorf("no prefetch: want scalar turbo, got %.2f", f)
	}
}

// AVX2-width programs run at the AVX2 license.
func TestEffectiveFreqAVX2(t *testing.T) {
	cpu := isa.XeonSilver4110()
	prog := &Program{VectorStatements: 1, VectorWidth: isa.W256}
	res := &Result{Instructions: 100, Cycles: 100}
	if f := EffectiveFreq(cpu, prog, res); f != cpu.Freq.AVX2GHz {
		t.Errorf("AVX2 license: got %.2f, want %.2f", f, cpu.Freq.AVX2GHz)
	}
}

// A 256-bit vector program issues on any vector-capable port, not just the
// 512-bit units: throughput should exceed the 512-bit single-unit case on
// the Silver model.
func TestAVX2UsesAllVectorPorts(t *testing.T) {
	cpu := isa.XeonSilver4110()
	mk := func(in *isa.Instr) *Program {
		body := make([]UOp, 6)
		for i := range body {
			body[i] = UOp{Instr: in, Dst: int16(1 + i), Srcs: [3]int16{0, 0, NoReg}}
		}
		return &Program{Name: in.Name, NumRegs: 7, ElemsPerIter: in.Lanes * 6,
			VectorStatements: 1, VectorWidth: in.Width, Body: body}
	}
	r256 := mustRun(t, NewSim(cpu), mk(isa.MustAVX2("vpaddq.y")), 3000)
	r512 := mustRun(t, NewSim(cpu), mk(isa.MustAVX512("vpaddq")), 3000)
	c256 := float64(r256.Cycles) / 3000
	c512 := float64(r512.Cycles) / 3000
	// 6 x 256-bit adds spread over p0/p1/p5 (~2 cycles); 6 x 512-bit adds
	// serialize on the single 512-bit unit (~6 cycles).
	if c256 >= c512 {
		t.Errorf("256-bit adds (%.1f c/iter) should beat 512-bit on one unit (%.1f c/iter)", c256, c512)
	}
}

// Address generation must be deterministic and in-region.
func TestAddrSpecProperties(t *testing.T) {
	spec := AddrSpec{Kind: AddrRandom, Base: 1 << 30, Region: 4096, Seed: 9}
	for iter := int64(0); iter < 100; iter++ {
		for lane := 0; lane < 8; lane++ {
			a1 := spec.address(iter, lane, 8)
			a2 := spec.address(iter, lane, 8)
			if a1 != a2 {
				t.Fatal("random addresses must be deterministic")
			}
			if a1 < spec.Base || a1 >= spec.Base+spec.Region {
				t.Fatalf("address %#x outside region", a1)
			}
		}
	}
	st := AddrSpec{Kind: AddrStride, Base: 0x1000, Stride: 8, Offset: 2}
	if got := st.address(3, 1, 10); got != 0x1000+(3*10+2+1)*8 {
		t.Errorf("stride address = %#x", got)
	}
	zero := AddrSpec{Kind: AddrRandom, Base: 5, Region: 0}
	if zero.address(1, 1, 1) != 5 {
		t.Error("zero region should return base")
	}
}
