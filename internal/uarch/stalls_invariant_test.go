package uarch_test

// External-package tests: the stall-attribution invariant on real translated
// Murmur traces (the translator imports uarch, so these cannot live in
// package uarch).

import (
	"testing"

	"hef/internal/hashes"
	"hef/internal/isa"
	"hef/internal/translator"
	"hef/internal/uarch"
)

// runMurmur translates the Murmur template at node and simulates it.
func runMurmur(t *testing.T, cpuName string, node translator.Node) *uarch.Result {
	t.Helper()
	cpu, err := isa.ByName(cpuName)
	if err != nil {
		t.Fatal(err)
	}
	out, err := translator.Translate(hashes.MurmurTemplate(), node, translator.Options{CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	sim := uarch.NewSim(cpu)
	iters := int64(1<<13) / int64(out.ElemsPerIter)
	res, err := sim.Run(out.Program, iters)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStallAttributionInvariant checks, for scalar, SIMD, and hybrid Murmur
// traces on both paper CPUs (6 workload × CPU combinations), that the
// top-down buckets exactly cover the cycle count, that per-port busy cycles
// never exceed the run length (utilization <= 1 per port, and hence total
// utilization <= port count), and that the occupancy histograms account for
// every cycle.
func TestStallAttributionInvariant(t *testing.T) {
	nodes := map[string]translator.Node{
		"scalar": {V: 0, S: 1, P: 1},
		"simd":   {V: 1, S: 0, P: 1},
		"hybrid": {V: 1, S: 1, P: 3},
	}
	for _, cpuName := range []string{"silver", "gold"} {
		cpu, err := isa.ByName(cpuName)
		if err != nil {
			t.Fatal(err)
		}
		for label, node := range nodes {
			res := runMurmur(t, cpuName, node)
			name := cpuName + "/" + label

			if got := res.Stalls.Total(); got != res.Cycles {
				t.Errorf("%s: stall buckets sum to %d, want Cycles=%d (%+v)",
					name, got, res.Cycles, res.Stalls)
			}
			if len(res.PortBusy) != len(cpu.Ports) {
				t.Fatalf("%s: PortBusy has %d entries, want %d ports", name, len(res.PortBusy), len(cpu.Ports))
			}
			var totalUtil float64
			for i, busy := range res.PortBusy {
				if busy > res.Cycles {
					t.Errorf("%s: port %d busy %d cycles > total %d", name, i, busy, res.Cycles)
				}
				totalUtil += res.PortUtil(i)
			}
			if totalUtil > float64(len(cpu.Ports)) {
				t.Errorf("%s: total port utilization %.2f exceeds port count %d", name, totalUtil, len(cpu.Ports))
			}
			if got := res.ROBOcc.Total(); got != res.Cycles {
				t.Errorf("%s: ROB occupancy histogram covers %d cycles, want %d", name, got, res.Cycles)
			}
			if got := res.LoadQOcc.Total(); got != res.Cycles {
				t.Errorf("%s: load-queue occupancy histogram covers %d cycles, want %d", name, got, res.Cycles)
			}
			if res.Stalls.Retiring == 0 {
				t.Errorf("%s: no retiring cycles recorded over %d cycles", name, res.Cycles)
			}
		}
	}
}

// TestStallsAddAndScalePreserveInvariant checks the invariant survives the
// Add/Scale extrapolation pipeline the experiment drivers use.
func TestStallsAddAndScalePreserveInvariant(t *testing.T) {
	a := runMurmur(t, "silver", translator.Node{V: 1, S: 1, P: 3})
	b := runMurmur(t, "silver", translator.Node{V: 0, S: 1, P: 1})

	var sum uarch.Result
	sum.Add(a)
	sum.Add(b)
	if got := sum.Stalls.Total(); got != sum.Cycles {
		t.Errorf("after Add: stall buckets sum to %d, want %d", got, sum.Cycles)
	}

	a.Scale(1e9 / float64(a.Elems))
	if got := a.Stalls.Total(); got != a.Cycles {
		t.Errorf("after Scale: stall buckets sum to %d, want %d", got, a.Cycles)
	}
	for i, busy := range a.PortBusy {
		if busy > a.Cycles {
			t.Errorf("after Scale: port %d busy %d > cycles %d", i, busy, a.Cycles)
		}
	}
}

// TestTraceLogLifecycle checks the opt-in recorder captures a dispatch,
// issue, complete, and retire event for every retired instruction.
func TestTraceLogLifecycle(t *testing.T) {
	cpu, err := isa.ByName("silver")
	if err != nil {
		t.Fatal(err)
	}
	out, err := translator.Translate(hashes.MurmurTemplate(), translator.Node{V: 1, S: 1, P: 2}, translator.Options{CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	sim := uarch.NewSim(cpu)
	log := &uarch.TraceLog{}
	sim.SetTraceLog(log)
	res, err := sim.Run(out.Program, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uarch.TraceKind]uint64{}
	for _, ev := range log.Events {
		counts[ev.Kind]++
	}
	for _, k := range []uarch.TraceKind{uarch.TraceDispatch, uarch.TraceIssue, uarch.TraceComplete, uarch.TraceRetire} {
		if counts[k] != res.Instructions {
			t.Errorf("%v events = %d, want one per retired instruction (%d)", k, counts[k], res.Instructions)
		}
	}
	for _, ev := range log.Events {
		if ev.Kind == uarch.TraceIssue && ev.Port < 0 {
			t.Errorf("issue event for %s iter %d has no port", ev.Name, ev.Iter)
		}
	}

	// Detached: no further recording.
	sim.SetTraceLog(nil)
	n := len(log.Events)
	if _, err := sim.Run(out.Program, 4); err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != n {
		t.Errorf("recorder captured %d events after detach", len(log.Events)-n)
	}
}
