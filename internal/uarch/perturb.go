package uarch

import (
	"math"

	"hef/internal/isa"
)

// Perturb is a seeded, deterministic fault-injection model for sensitivity
// analysis. Every decision is a pure function of (Seed, inputs): two
// simulators configured with equal Perturb values make identical choices, so
// perturbed runs replay bit-for-bit. The jitter fields are half-widths of
// uniform relative perturbations: LatJitter = 0.05 draws each instruction's
// latency multiplier from [0.95, 1.05].
//
// Instruction latency/occupancy jitter and port faults act through
// Sim.SetPerturb; cache latencies and frequency licenses live in the CPU
// model, so those are perturbed by cloning the model with Perturb.CPU and
// building a simulator from the clone.
type Perturb struct {
	// Seed selects the perturbation draw. The same seed always produces
	// the same perturbed machine.
	Seed uint64

	// LatJitter perturbs each instruction's result latency by a relative
	// factor in [1-LatJitter, 1+LatJitter], fixed per instruction name.
	LatJitter float64
	// OccJitter perturbs each instruction's port occupancy (reciprocal
	// throughput) the same way.
	OccJitter float64
	// CacheJitter perturbs the L1/L2/LLC hit latencies and the memory
	// latency of a CPU model cloned with CPU.
	CacheJitter float64
	// FreqJitter perturbs the AVX-license frequency levels of a cloned
	// CPU model, moving the scalar/AVX2/AVX-512 transition points.
	FreqJitter float64
	// PortFaultRate is the probability that a given (port, cycle) pair is
	// transiently unavailable for issue. Faults last one cycle; the
	// scheduler simply retries, modelling contention from outside the
	// simulated loop (SMT sibling, interrupts).
	PortFaultRate float64
}

// mix64 is the splitmix64 finalizer: a cheap, statistically solid hash used
// to derive all perturbation draws.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a short string into the hash state (FNV-1a style, then
// finalized by mix64 at the call sites).
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

// unit maps a hash to a uniform float64 in [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// factor returns a deterministic multiplier in [1-jitter, 1+jitter] for the
// given domain-separated key.
func (p *Perturb) factor(key uint64, jitter float64) float64 {
	if jitter <= 0 {
		return 1
	}
	u := unit(mix64(p.Seed ^ key))
	return 1 + jitter*(2*u-1)
}

// scaleInt applies a relative factor to an integer cycle count, rounding to
// nearest and never dropping a positive value below 1 (a zero-latency table
// entry stays zero: the jitter models timing noise, not structural change).
func scaleInt(v int, f float64) int {
	if v <= 0 || f == 1 {
		return v
	}
	s := int(math.Round(float64(v) * f))
	if s < 1 {
		s = 1
	}
	return s
}

// latKey and occKey domain-separate the per-instruction draws.
const (
	latKey  = 0x4c41544a49545452 // "LATJITTR"
	occKey  = 0x4f43434a49545452 // "OCCJITTR"
	portKey = 0x504f52544641554c // "PORTFAUL"
)

// Latency returns the perturbed result latency for in. The draw is fixed
// per instruction name, modelling a mis-estimated table entry rather than
// cycle-to-cycle noise.
func (p *Perturb) Latency(in *isa.Instr) int {
	return scaleInt(in.Latency, p.factor(mix64(hashString(latKey, in.Name)), p.LatJitter))
}

// Occupancy returns the perturbed port occupancy for in.
func (p *Perturb) Occupancy(in *isa.Instr) int {
	return scaleInt(in.Occupancy, p.factor(mix64(hashString(occKey, in.Name)), p.OccJitter))
}

// PortFault reports whether port is transiently unavailable at cycle.
func (p *Perturb) PortFault(port int, cycle int64) bool {
	if p.PortFaultRate <= 0 {
		return false
	}
	h := mix64(p.Seed ^ portKey ^ uint64(cycle)<<8 ^ uint64(port))
	return unit(h) < p.PortFaultRate
}

// CPU returns a deep-enough clone of cpu with cache hit latencies, memory
// latency, and AVX-license frequencies jittered. The clone shares the
// (immutable) port descriptors; geometry fields other than latency are left
// intact so the cache contents model is unchanged.
func (p *Perturb) CPU(cpu *isa.CPU) *isa.CPU {
	c := *cpu
	c.Ports = append([]isa.Port(nil), cpu.Ports...)
	c.Vec512Ports = append([]int(nil), cpu.Vec512Ports...)

	if p.CacheJitter > 0 {
		c.L1D.Latency = scaleInt(c.L1D.Latency, p.factor(mix64(hashString(latKey, "L1D")), p.CacheJitter))
		c.L2.Latency = scaleInt(c.L2.Latency, p.factor(mix64(hashString(latKey, "L2")), p.CacheJitter))
		c.LLC.Latency = scaleInt(c.LLC.Latency, p.factor(mix64(hashString(latKey, "LLC")), p.CacheJitter))
		c.MemLatency = scaleInt(c.MemLatency, p.factor(mix64(hashString(latKey, "MEM")), p.CacheJitter))
	}
	if p.FreqJitter > 0 {
		fj := func(name string, ghz float64) float64 {
			if ghz <= 0 {
				return ghz
			}
			return ghz * p.factor(mix64(hashString(latKey, "FREQ:"+name)), p.FreqJitter)
		}
		c.Freq.ScalarGHz = fj("scalar", c.Freq.ScalarGHz)
		c.Freq.AVX2GHz = fj("avx2", c.Freq.AVX2GHz)
		c.Freq.AVX512GHz = fj("avx512", c.Freq.AVX512GHz)
		c.Freq.AVX512HeavyGHz = fj("avx512h", c.Freq.AVX512HeavyGHz)
		c.Freq.MinGHz = fj("min", c.Freq.MinGHz)
	}
	return &c
}
