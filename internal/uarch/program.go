// Package uarch is a cycle-approximate simulator of an out-of-order
// superscalar core: front-end decode bandwidth, a reorder buffer, a unified
// scheduler, port-constrained issue with per-instruction latency and
// occupancy, load/store queues, a simulated cache hierarchy, and an AVX
// frequency-license model. It substitutes for the paper's hardware testbeds
// (Xeon Silver 4110 / Gold 6240R measured via perf_event): the instruction
// traces produced by the HEF translator run on this model, and the counters
// it emits (instructions, cycles, IPC, LLC misses, µops-per-cycle histogram,
// effective frequency) regenerate the paper's tables and figures.
package uarch

import (
	"fmt"

	"hef/internal/fpenc"
	"hef/internal/isa"
)

// NoReg marks an unused register slot in a UOp.
const NoReg = int16(-1)

// AddrKind selects how a memory micro-operation computes its addresses.
type AddrKind uint8

const (
	// AddrNone marks non-memory operations.
	AddrNone AddrKind = iota
	// AddrStride is a sequential stream: element index advances with the
	// iteration, as in a columnar scan.
	AddrStride
	// AddrRandom is a uniform pseudo-random access into a region, as in a
	// hash-table probe. The paper's cache-residency effects (hash tables
	// spilling from L2 to LLC to memory across scale factors) come from
	// Region relative to the cache sizes.
	AddrRandom
	// AddrStack is a spill slot in the (always cache-resident) stack frame.
	AddrStack
)

// AddrSpec describes the address stream of a memory micro-operation.
type AddrSpec struct {
	Kind AddrKind
	// Base is the starting virtual address of the stream or region.
	Base uint64
	// Stride is the per-element byte stride for AddrStride.
	Stride uint64
	// Region is the byte size of the target region for AddrRandom.
	Region uint64
	// Offset is the element offset of this instance within an iteration
	// (AddrStride) or a per-instance diversifier (AddrRandom, AddrStack).
	Offset uint64
	// Seed perturbs the pseudo-random stream so distinct operations do not
	// collide on identical address sequences.
	Seed uint64
	// LaneSel selects which lane of a multi-lane random stream a
	// single-address operation (a software prefetch covering one gather
	// lane) addresses.
	LaneSel uint8
}

// address returns the virtual address accessed by lane in iteration iter,
// with elemsPerIter elements consumed per loop iteration.
func (a *AddrSpec) address(iter int64, lane int, elemsPerIter int) uint64 {
	switch a.Kind {
	case AddrStride:
		idx := uint64(iter)*uint64(elemsPerIter) + a.Offset + uint64(lane)
		return a.Base + idx*a.Stride
	case AddrRandom:
		h := splitmix64(uint64(iter)*0x9e3779b97f4a7c15 ^ a.Seed ^ uint64(lane)<<32 ^ a.Offset<<16)
		if a.Region == 0 {
			return a.Base
		}
		return a.Base + (h%a.Region)&^7
	case AddrStack:
		return a.Base + (a.Offset+uint64(lane))*8
	default:
		return a.Base
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// UOp is one instruction instance in a loop body. Register operands are
// virtual registers local to the body; the simulator renames them per
// iteration. A source register that is not written earlier in the body reads
// the previous iteration's instance (loop-carried) or, if the body never
// writes it, a loop-invariant value.
type UOp struct {
	// Instr is the static instruction description.
	Instr *isa.Instr
	// Dst is the destination virtual register, or NoReg.
	Dst int16
	// Srcs are source virtual registers; unused slots hold NoReg.
	Srcs [3]int16
	// Addr describes the memory access for Load/Store/Gather/Prefetch.
	Addr AddrSpec
	// Comment is an optional annotation used when printing traces.
	Comment string
}

// Program is a loop body plus the metadata the simulator and the frequency
// model need.
type Program struct {
	// Name identifies the program in reports.
	Name string
	// Body is the loop body in program order.
	Body []UOp
	// NumRegs is the number of virtual registers referenced by Body.
	NumRegs int
	// ElemsPerIter is the number of data elements one body iteration
	// processes: p*(v*lanes + s) for a translated HID template.
	ElemsPerIter int
	// VectorStatements is the v parameter of the generating candidate node;
	// the frequency-license model uses it together with the CPU's 512-bit
	// unit count.
	VectorStatements int
	// VectorWidth is the SIMD width used (0 if scalar-only).
	VectorWidth isa.Width

	// prepared dependency info, built lazily by prepare().
	deps []depInfo
	// fastEligible (built by prepare) marks a body whose every memory
	// address is independent of the iteration number, the precondition for
	// the steady-state fast path: AddrStride streams and region-random
	// accesses visit new addresses every iteration, so a recurring machine
	// state does not imply a recurring future for them.
	fastEligible bool
}

// depInfo caches, per body uop, where each source operand comes from.
type depInfo struct {
	// producer[k] is the body index of the uop producing source k in the
	// same iteration, or -1.
	producer [3]int32
	// carried[k] is the body index of the last writer of source k (previous
	// iteration), or -1 when the register is loop-invariant. Only consulted
	// when producer[k] < 0.
	carried [3]int32
}

// Validate checks internal consistency: register indices in range and
// memory specs present exactly on memory classes.
func (p *Program) Validate() error {
	if len(p.Body) == 0 {
		return fmt.Errorf("uarch: program %q has an empty body", p.Name)
	}
	if p.ElemsPerIter <= 0 {
		return fmt.Errorf("uarch: program %q has ElemsPerIter=%d", p.Name, p.ElemsPerIter)
	}
	for i := range p.Body {
		u := &p.Body[i]
		if u.Instr == nil {
			return fmt.Errorf("uarch: program %q body[%d] has nil Instr", p.Name, i)
		}
		if u.Dst != NoReg && (u.Dst < 0 || int(u.Dst) >= p.NumRegs) {
			return fmt.Errorf("uarch: program %q body[%d] dst r%d out of range [0,%d)", p.Name, i, u.Dst, p.NumRegs)
		}
		for _, s := range u.Srcs {
			if s != NoReg && (s < 0 || int(s) >= p.NumRegs) {
				return fmt.Errorf("uarch: program %q body[%d] src r%d out of range [0,%d)", p.Name, i, s, p.NumRegs)
			}
		}
		if u.Instr.Class.IsMemory() && u.Addr.Kind == AddrNone {
			return fmt.Errorf("uarch: program %q body[%d] (%s) is a memory op without an AddrSpec", p.Name, i, u.Instr.Name)
		}
	}
	return nil
}

// prepare resolves the static dependence structure of the body.
func (p *Program) prepare() {
	if p.deps != nil {
		return
	}
	lastWriter := make([]int32, p.NumRegs)
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	for i := range p.Body {
		if d := p.Body[i].Dst; d != NoReg {
			lastWriter[d] = int32(i)
		}
	}
	deps := make([]depInfo, len(p.Body))
	writtenSoFar := make([]int32, p.NumRegs)
	for i := range writtenSoFar {
		writtenSoFar[i] = -1
	}
	for i := range p.Body {
		u := &p.Body[i]
		for k, s := range u.Srcs {
			if s == NoReg {
				deps[i].producer[k] = -1
				deps[i].carried[k] = -1
				continue
			}
			deps[i].producer[k] = writtenSoFar[s]
			if writtenSoFar[s] < 0 {
				deps[i].carried[k] = lastWriter[s]
			} else {
				deps[i].carried[k] = -1
			}
		}
		if u.Dst != NoReg {
			writtenSoFar[u.Dst] = int32(i)
		}
	}
	p.deps = deps

	p.fastEligible = true
	for i := range p.Body {
		switch a := &p.Body[i].Addr; a.Kind {
		case AddrNone, AddrStack:
			// Iteration-invariant: no address, or a fixed spill slot.
		case AddrRandom:
			// Region 0 degenerates to the constant Base address.
			if a.Region != 0 {
				p.fastEligible = false
			}
		default:
			p.fastEligible = false
		}
	}
}

// AppendFingerprint appends the canonical content encoding of the program to
// e: every semantic field of every instruction, operand, and address stream.
// It is the program component of the memo fingerprint (internal/memo) and of
// the schedule-skeleton cache key, so its byte layout is pinned — changing it
// invalidates every persisted memo store.
func (p *Program) AppendFingerprint(e *fpenc.E) {
	e.Str(p.Name)
	e.Int(p.NumRegs)
	e.Int(p.ElemsPerIter)
	e.Int(p.VectorStatements)
	e.Int(int(p.VectorWidth))
	e.Int(len(p.Body))
	for i := range p.Body {
		u := &p.Body[i]
		in := u.Instr
		e.Str(in.Name)
		e.Int(int(in.Class))
		e.Int(int(in.Width))
		e.Int(in.Latency)
		e.Int(in.Occupancy)
		e.Int(in.Uops)
		e.Int(in.Lanes)
		e.Int(in.Argc)
		e.Int(int(u.Dst))
		for _, s := range u.Srcs {
			e.Int(int(s))
		}
		e.Int(int(u.Addr.Kind))
		e.U64(u.Addr.Base)
		e.U64(u.Addr.Stride)
		e.U64(u.Addr.Region)
		e.U64(u.Addr.Offset)
		e.U64(u.Addr.Seed)
		e.Int(int(u.Addr.LaneSel))
	}
}

// InstructionsPerIter returns the number of machine instructions per body
// iteration.
func (p *Program) InstructionsPerIter() int { return len(p.Body) }

// UopsPerIter returns the number of micro-operations per body iteration.
func (p *Program) UopsPerIter() int {
	n := 0
	for i := range p.Body {
		n += p.Body[i].Instr.Uops
	}
	return n
}
