package uarch

import (
	"math"
	"testing"

	"hef/internal/isa"
)

func TestPerturbDeterministic(t *testing.T) {
	in := isa.MustScalar("imul")
	a := &Perturb{Seed: 7, LatJitter: 0.1, OccJitter: 0.1}
	b := &Perturb{Seed: 7, LatJitter: 0.1, OccJitter: 0.1}
	for i := 0; i < 100; i++ {
		if a.Latency(in) != b.Latency(in) || a.Occupancy(in) != b.Occupancy(in) {
			t.Fatal("same seed must give identical draws")
		}
	}
	// Latencies of 1 can't move at small jitter, so check seed divergence on
	// the long-latency vector instructions across several seeds.
	a = &Perturb{Seed: 7, LatJitter: 0.3}
	diff := false
	for seed := uint64(8); seed < 16 && !diff; seed++ {
		c := &Perturb{Seed: seed, LatJitter: 0.3}
		for _, name := range []string{"vpmullq", "vpgatherqq", "vmovdqu64", "vpcmpq"} {
			in := isa.MustAVX512(name)
			if a.Latency(in) != c.Latency(in) {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds should perturb at least one instruction differently")
	}
}

func TestPerturbBounds(t *testing.T) {
	const jitter = 0.25
	p := &Perturb{Seed: 3, LatJitter: jitter, OccJitter: jitter}
	for _, name := range []string{"imul", "add", "xor", "shr", "lea", "movq", "cmp"} {
		in := isa.MustScalar(name)
		lat := p.Latency(in)
		lo := int(math.Floor(float64(in.Latency) * (1 - jitter)))
		hi := int(math.Ceil(float64(in.Latency) * (1 + jitter)))
		if lat < lo || lat > hi {
			t.Errorf("%s: perturbed latency %d outside [%d,%d] of base %d", name, lat, lo, hi, in.Latency)
		}
		if in.Latency > 0 && lat < 1 {
			t.Errorf("%s: perturbation drove latency to %d", name, lat)
		}
	}
}

func TestPerturbZeroJitterIsIdentity(t *testing.T) {
	p := &Perturb{Seed: 99}
	for _, name := range []string{"imul", "add", "movq"} {
		in := isa.MustScalar(name)
		if p.Latency(in) != in.Latency {
			t.Errorf("%s: zero jitter changed latency %d -> %d", name, in.Latency, p.Latency(in))
		}
	}
	if p.PortFault(0, 123) {
		t.Error("zero fault rate must never fault a port")
	}
	cpu := isa.XeonSilver4110()
	clone := p.CPU(cpu)
	if clone.L1D.Latency != cpu.L1D.Latency || clone.MemLatency != cpu.MemLatency ||
		clone.Freq.ScalarGHz != cpu.Freq.ScalarGHz {
		t.Error("zero jitter must clone the CPU unchanged")
	}
}

func TestPerturbCPUDoesNotMutateOriginal(t *testing.T) {
	cpu := isa.XeonSilver4110()
	l1 := cpu.L1D.Latency
	freq := cpu.Freq.AVX512GHz
	p := &Perturb{Seed: 5, CacheJitter: 0.3, FreqJitter: 0.3}
	clone := p.CPU(cpu)
	if cpu.L1D.Latency != l1 || cpu.Freq.AVX512GHz != freq {
		t.Fatal("Perturb.CPU mutated the shared model")
	}
	if clone == cpu {
		t.Fatal("Perturb.CPU must return a clone")
	}
	// With 30% jitter across five frequencies and four latencies, at least
	// one field should move.
	if clone.L1D.Latency == cpu.L1D.Latency && clone.L2.Latency == cpu.L2.Latency &&
		clone.LLC.Latency == cpu.LLC.Latency && clone.MemLatency == cpu.MemLatency &&
		clone.Freq == cpu.Freq {
		t.Error("30% jitter perturbed nothing")
	}
}

func TestPerturbPortFaultRate(t *testing.T) {
	p := &Perturb{Seed: 11, PortFaultRate: 0.2}
	faults := 0
	const n = 20000
	for cyc := int64(0); cyc < n/4; cyc++ {
		for port := 0; port < 4; port++ {
			if p.PortFault(port, cyc) {
				faults++
			}
		}
	}
	got := float64(faults) / n
	if got < 0.15 || got > 0.25 {
		t.Errorf("empirical fault rate %.3f far from configured 0.2", got)
	}
}

// TestSimWithPerturbRuns checks the simulator stays well-formed under heavy
// perturbation and port faults: it completes, processes every element, and
// the perturbed cycle count differs from the pristine one.
func TestSimWithPerturbRuns(t *testing.T) {
	cpu := isa.XeonSilver4110()
	prog := testProgramMul(t, cpu)

	base := NewSim(cpu)
	ref, err := base.Run(prog, 256)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	p := &Perturb{Seed: 21, LatJitter: 0.3, OccJitter: 0.3, PortFaultRate: 0.1}
	sim := NewSim(cpu)
	sim.SetPerturb(p)
	res, err := sim.Run(prog, 256)
	if err != nil {
		t.Fatalf("perturbed run: %v", err)
	}
	if res.Elems != ref.Elems {
		t.Fatalf("perturbation changed work: %d != %d elems", res.Elems, ref.Elems)
	}
	if res.Cycles == ref.Cycles {
		t.Error("30% jitter + 10% port faults left the cycle count unchanged")
	}

	// Identical perturbed runs must agree cycle for cycle.
	sim2 := NewSim(cpu)
	sim2.SetPerturb(&Perturb{Seed: 21, LatJitter: 0.3, OccJitter: 0.3, PortFaultRate: 0.1})
	res2, err := sim2.Run(prog, 256)
	if err != nil {
		t.Fatalf("perturbed rerun: %v", err)
	}
	if res2.Cycles != res.Cycles {
		t.Errorf("same perturbation seed gave %d then %d cycles", res.Cycles, res2.Cycles)
	}
}

// testProgramMul builds a small dependent-multiply program.
func testProgramMul(t *testing.T, cpu *isa.CPU) *Program {
	t.Helper()
	imul := isa.MustScalar("imul")
	mov := isa.MustScalar("movq")
	prog := &Program{
		Name:         "perturb-test",
		NumRegs:      4,
		ElemsPerIter: 1,
		Body: []UOp{
			{Instr: mov, Dst: 0, Srcs: [3]int16{NoReg, NoReg, NoReg},
				Addr: AddrSpec{Kind: AddrStride, Stride: 8}},
			{Instr: imul, Dst: 1, Srcs: [3]int16{0, NoReg, NoReg}},
			{Instr: imul, Dst: 2, Srcs: [3]int16{1, NoReg, NoReg}},
			{Instr: imul, Dst: 3, Srcs: [3]int16{2, NoReg, NoReg}},
		},
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("test program: %v", err)
	}
	return prog
}
