package uarch

// Per-instruction lifecycle tracing. The recorder is opt-in: attach a
// TraceLog to a Sim with SetTraceLog and every dynamic instruction instance
// emits dispatch, issue, complete, and retire events (with the issue port
// and the cache level that serviced memory operations). The obs package
// exports a log as Chrome trace-event JSON loadable in Perfetto.

// TraceKind enumerates the lifecycle stages recorded per instruction.
type TraceKind uint8

const (
	// TraceDispatch is the cycle the instruction entered the ROB.
	TraceDispatch TraceKind = iota
	// TraceIssue is the cycle the instruction claimed an execution port.
	TraceIssue
	// TraceComplete is the cycle the result became available.
	TraceComplete
	// TraceRetire is the cycle the instruction left the ROB.
	TraceRetire
)

func (k TraceKind) String() string {
	switch k {
	case TraceDispatch:
		return "dispatch"
	case TraceIssue:
		return "issue"
	case TraceComplete:
		return "complete"
	case TraceRetire:
		return "retire"
	}
	return "unknown"
}

// TraceEvent is one lifecycle event of one dynamic instruction instance.
type TraceEvent struct {
	Kind TraceKind
	// Cycle is when the event happened. Complete events are appended at
	// issue time, so a log is not sorted by Cycle; exporters sort.
	Cycle int64
	// Dur is, on issue events, the cycles until the result is available
	// (instruction latency plus cache effects).
	Dur int64
	// Iter and Body identify the dynamic instance: loop iteration and index
	// into the program body.
	Iter int64
	Body int32
	// Name is the instruction mnemonic.
	Name string
	// Port is the issue port claimed (issue events), or -1.
	Port int8
	// Level is the cache level that serviced a memory operation
	// (1 L1 .. 4 memory, as reported by cache.Hierarchy.Access), or 0.
	Level int8
}

// DefaultTraceLimit bounds a TraceLog that does not set its own Limit.
const DefaultTraceLimit = 1 << 20

// TraceLog accumulates lifecycle events up to a limit.
type TraceLog struct {
	Events []TraceEvent
	// Limit bounds len(Events); 0 selects DefaultTraceLimit.
	Limit int
	// Dropped counts events discarded after the limit was reached.
	Dropped uint64
}

func (t *TraceLog) add(ev TraceEvent) {
	limit := t.Limit
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	if len(t.Events) >= limit {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, ev)
}

// SetTraceLog attaches (or, with nil, detaches) a lifecycle recorder. The
// log accumulates across Run calls until replaced.
func (s *Sim) SetTraceLog(t *TraceLog) { s.trace = t }
