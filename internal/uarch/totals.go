package uarch

import "sync/atomic"

// Process-wide simulation totals, bumped once per completed RunInto. The
// telemetry layer polls these through Totals — keeping them as package
// atomics means the simulator stays dependency-free and the per-run cost is
// a handful of uncontended atomic adds, independent of the program size.
var (
	totalInstr         atomic.Uint64
	totalFastCycles    atomic.Uint64
	totalSlowCycles    atomic.Uint64
	totalRuns          atomic.Uint64
	totalIdleSkipped   atomic.Uint64
	totalReplayPeriods atomic.Uint64
)

// SimTotals is a snapshot of the process-wide simulation counters.
type SimTotals struct {
	// Instructions retired across every run.
	Instructions uint64
	// FastCycles were fast-forwarded through the steady-state detector;
	// SlowCycles were stepped one at a time. Their sum is total simulated
	// cycles.
	FastCycles, SlowCycles uint64
	// Runs counts completed RunInto calls.
	Runs uint64
	// IdleSkipped counts cycles the slow path's event-driven idle
	// fast-forward jumped over (they are accounted in SlowCycles: the jump
	// produces the identical counters a cycle-by-cycle walk would).
	IdleSkipped uint64
	// SkeletonHits and SkeletonMisses count schedule-skeleton cache lookups:
	// a hit binds a program without re-validating, re-deriving dependencies,
	// or re-resolving the perturbation; a miss builds the skeleton.
	SkeletonHits, SkeletonMisses uint64
	// ReplayPeriods counts loop periods fast-forwarded by response-verified
	// replay (replay.go): the core was extrapolated while the cache hierarchy
	// serviced the period's real access sequence.
	ReplayPeriods uint64
}

// Totals reports the counters accumulated since process start (or the last
// ResetTotals).
func Totals() SimTotals {
	return SimTotals{
		Instructions:   totalInstr.Load(),
		FastCycles:     totalFastCycles.Load(),
		SlowCycles:     totalSlowCycles.Load(),
		Runs:           totalRuns.Load(),
		IdleSkipped:    totalIdleSkipped.Load(),
		SkeletonHits:   skelHits.Load(),
		SkeletonMisses: skelMisses.Load(),
		ReplayPeriods:  totalReplayPeriods.Load(),
	}
}

// ResetTotals zeroes the process-wide counters. Test-only.
func ResetTotals() {
	totalInstr.Store(0)
	totalFastCycles.Store(0)
	totalSlowCycles.Store(0)
	totalRuns.Store(0)
	totalIdleSkipped.Store(0)
	totalReplayPeriods.Store(0)
	skelHits.Store(0)
	skelMisses.Store(0)
}

// recordTotals folds one finished run into the process-wide counters.
func recordTotals(res *Result, fastCycles, idleSkipped int64) {
	totalInstr.Add(res.Instructions)
	if fastCycles < 0 {
		fastCycles = 0
	}
	fast := uint64(fastCycles)
	if fast > res.Cycles {
		fast = res.Cycles
	}
	totalFastCycles.Add(fast)
	totalSlowCycles.Add(res.Cycles - fast)
	totalRuns.Add(1)
	if idleSkipped > 0 {
		totalIdleSkipped.Add(uint64(idleSkipped))
	}
}
