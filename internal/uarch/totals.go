package uarch

import "sync/atomic"

// Process-wide simulation totals, bumped once per completed RunInto. The
// telemetry layer polls these through Totals — keeping them as package
// atomics means the simulator stays dependency-free and the per-run cost is
// four uncontended atomic adds, independent of the program size.
var (
	totalInstr      atomic.Uint64
	totalFastCycles atomic.Uint64
	totalSlowCycles atomic.Uint64
	totalRuns       atomic.Uint64
)

// SimTotals is a snapshot of the process-wide simulation counters.
type SimTotals struct {
	// Instructions retired across every run.
	Instructions uint64
	// FastCycles were fast-forwarded through the steady-state detector;
	// SlowCycles were stepped one at a time. Their sum is total simulated
	// cycles.
	FastCycles, SlowCycles uint64
	// Runs counts completed RunInto calls.
	Runs uint64
}

// Totals reports the counters accumulated since process start (or the last
// ResetTotals).
func Totals() SimTotals {
	return SimTotals{
		Instructions: totalInstr.Load(),
		FastCycles:   totalFastCycles.Load(),
		SlowCycles:   totalSlowCycles.Load(),
		Runs:         totalRuns.Load(),
	}
}

// ResetTotals zeroes the process-wide counters. Test-only.
func ResetTotals() {
	totalInstr.Store(0)
	totalFastCycles.Store(0)
	totalSlowCycles.Store(0)
	totalRuns.Store(0)
}

// recordTotals folds one finished run into the process-wide counters.
func recordTotals(res *Result, fastCycles int64) {
	totalInstr.Add(res.Instructions)
	if fastCycles < 0 {
		fastCycles = 0
	}
	fast := uint64(fastCycles)
	if fast > res.Cycles {
		fast = res.Cycles
	}
	totalFastCycles.Add(fast)
	totalSlowCycles.Add(res.Cycles - fast)
	totalRuns.Add(1)
}
