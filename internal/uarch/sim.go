package uarch

import (
	"fmt"
	"math"
	"math/bits"

	"hef/internal/cache"
	"hef/internal/check"
	"hef/internal/isa"
)

const (
	// regRingSlots is the number of iterations whose register instances are
	// tracked concurrently. It exceeds the maximum number of in-flight
	// iterations (bounded by the ROB, 224 µops) with margin.
	regRingSlots = 512
	// regRingMask turns an iteration number into its ring slot (power of 2).
	regRingMask = regRingSlots - 1
	// notIssued marks a register instance whose producer has not issued.
	notIssued = int64(-1)
	// issueInstrCap bounds the instructions issued per cycle (port count).
	issueInstrCap = 8
	// HistBuckets is the size of the µops-per-cycle histogram; bucket i
	// counts cycles in which exactly i µops were issued, with the last
	// bucket collecting "or more".
	HistBuckets = 9
)

// Result is the counter set of one simulation, mirroring what the paper
// collects with perf_event.
type Result struct {
	Name string
	// Cycles is the total core cycles the trace took.
	Cycles uint64
	// Instructions is the number of retired machine instructions.
	Instructions uint64
	// Uops is the number of retired micro-operations.
	Uops uint64
	// IssuedUops is the number of µops sent to execution ports. The
	// simulator has no speculation or replay, so issued == retired at the
	// end of every run (a SelfCheck conservation law); the two counters are
	// accumulated by independent code paths precisely so drift between them
	// is detectable.
	IssuedUops uint64
	// Hist[i] counts cycles with exactly i issued µops (last bucket: >=).
	Hist [HistBuckets]uint64
	// Cache is the hierarchy counter snapshot delta for this run.
	Cache cache.Stats
	// Vec512Uops counts µops executed on 512-bit units.
	Vec512Uops uint64
	// PrefetchUops counts software prefetches.
	PrefetchUops uint64
	// FreqGHz is the effective clock from the license/governor model.
	FreqGHz float64
	// Elems is the number of data elements processed.
	Elems uint64
	// Stalls attributes every cycle top-down: retiring, frontend-bound,
	// backend-port-bound, memory-bound, or dependency-latency-bound.
	// Invariant: Stalls.Total() == Cycles.
	Stalls Stalls
	// PortBusy[i] counts cycles issue port i was occupied.
	PortBusy []uint64
	// ROBOcc and LoadQOcc are per-cycle occupancy histograms of the reorder
	// buffer (in µops) and the load queue (in slots).
	ROBOcc   OccHist
	LoadQOcc OccHist
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Seconds converts cycles to wall time at the effective frequency.
func (r *Result) Seconds() float64 {
	if r.FreqGHz <= 0 {
		return 0
	}
	return float64(r.Cycles) / (r.FreqGHz * 1e9)
}

// CyclesPerElem is the per-element cost, the scale-free quantity used to
// extrapolate sampled runs to full workload sizes.
func (r *Result) CyclesPerElem() float64 {
	if r.Elems == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Elems)
}

// PortUtil returns the utilization of issue port i over the run, in [0, 1].
func (r *Result) PortUtil(i int) float64 {
	if r.Cycles == 0 || i < 0 || i >= len(r.PortBusy) {
		return 0
	}
	return float64(r.PortBusy[i]) / float64(r.Cycles)
}

// Add accumulates another result into r (used when a query pipeline is the
// concatenation of per-stage traces). Histograms and cache stats add;
// frequency is recomputed by the caller.
func (r *Result) Add(o *Result) {
	r.Cycles += o.Cycles
	r.Instructions += o.Instructions
	r.Uops += o.Uops
	r.IssuedUops += o.IssuedUops
	for i := range r.Hist {
		r.Hist[i] += o.Hist[i]
	}
	r.Cache.L1Hits += o.Cache.L1Hits
	r.Cache.L1Misses += o.Cache.L1Misses
	r.Cache.L2Hits += o.Cache.L2Hits
	r.Cache.L2Misses += o.Cache.L2Misses
	r.Cache.LLCHits += o.Cache.LLCHits
	r.Cache.LLCMisses += o.Cache.LLCMisses
	r.Cache.MemAccesses += o.Cache.MemAccesses
	r.Cache.PrefetchFills += o.Cache.PrefetchFills
	r.Cache.HWPrefetchFills += o.Cache.HWPrefetchFills
	r.Cache.HWPrefetchMem += o.Cache.HWPrefetchMem
	r.Cache.SWPrefetchMem += o.Cache.SWPrefetchMem
	r.Vec512Uops += o.Vec512Uops
	r.PrefetchUops += o.PrefetchUops
	r.Elems += o.Elems
	r.Stalls.addStalls(&o.Stalls)
	if len(o.PortBusy) > len(r.PortBusy) {
		pb := make([]uint64, len(o.PortBusy))
		copy(pb, r.PortBusy)
		r.PortBusy = pb
	}
	for i := range o.PortBusy {
		r.PortBusy[i] += o.PortBusy[i]
	}
	r.ROBOcc.addHist(&o.ROBOcc)
	r.LoadQOcc.addHist(&o.LoadQOcc)
}

// Clone returns an independent deep copy of r. Callers that cache results
// (the evaluation memo) hand out clones so that Add/Scale on one consumer
// cannot corrupt another's counters.
func (r *Result) Clone() *Result {
	c := *r
	c.PortBusy = append([]uint64(nil), r.PortBusy...)
	return &c
}

// Scale multiplies all extensive counters by f, used to extrapolate a
// sampled batch to the nominal workload size.
func (r *Result) Scale(f float64) {
	r.Cycles = uint64(float64(r.Cycles) * f)
	r.Instructions = uint64(float64(r.Instructions) * f)
	r.Uops = uint64(float64(r.Uops) * f)
	r.IssuedUops = uint64(float64(r.IssuedUops) * f)
	for i := range r.Hist {
		r.Hist[i] = uint64(float64(r.Hist[i]) * f)
	}
	r.Cache.LLCMisses = uint64(float64(r.Cache.LLCMisses) * f)
	r.Cache.LLCHits = uint64(float64(r.Cache.LLCHits) * f)
	r.Cache.L2Misses = uint64(float64(r.Cache.L2Misses) * f)
	r.Cache.L2Hits = uint64(float64(r.Cache.L2Hits) * f)
	r.Cache.L1Misses = uint64(float64(r.Cache.L1Misses) * f)
	r.Cache.L1Hits = uint64(float64(r.Cache.L1Hits) * f)
	r.Cache.MemAccesses = uint64(float64(r.Cache.MemAccesses) * f)
	r.Cache.PrefetchFills = uint64(float64(r.Cache.PrefetchFills) * f)
	r.Cache.HWPrefetchFills = uint64(float64(r.Cache.HWPrefetchFills) * f)
	r.Cache.HWPrefetchMem = uint64(float64(r.Cache.HWPrefetchMem) * f)
	r.Cache.SWPrefetchMem = uint64(float64(r.Cache.SWPrefetchMem) * f)
	r.Vec512Uops = uint64(float64(r.Vec512Uops) * f)
	r.PrefetchUops = uint64(float64(r.PrefetchUops) * f)
	r.Elems = uint64(float64(r.Elems) * f)
	r.Stalls.scale(f, r.Cycles)
	for i := range r.PortBusy {
		r.PortBusy[i] = uint64(float64(r.PortBusy[i]) * f)
	}
	r.ROBOcc.scale(f)
	r.LoadQOcc.scale(f)
}

// minHeap is a small binary min-heap of completion cycles.
type minHeap []int64

func (h *minHeap) push(v int64) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *minHeap) pop() int64 {
	old := *h
	v := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && (*h)[l] < (*h)[m] {
			m = l
		}
		if r < n && (*h)[r] < (*h)[m] {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
	return v
}

// drain removes all heap entries <= cycle and returns how many were removed.
func (h *minHeap) drain(cycle int64) int {
	n := 0
	for len(*h) > 0 && (*h)[0] <= cycle {
		h.pop()
		n++
	}
	return n
}

func (h *minHeap) min() (int64, bool) {
	if len(*h) == 0 {
		return 0, false
	}
	return (*h)[0], true
}

// timedEntry pairs a scheduler entry with the cycle its operands are ready.
type timedEntry struct {
	at int64
	ei int32
}

// Sim runs programs on one CPU model, reusing internal buffers across runs.
//
// The in-flight state is structure-of-arrays: the reorder buffer is a set of
// parallel arrays indexed by ring position, and register readiness lives in
// one flat completion slab of regRingSlots × NumRegs cells. At dispatch each
// entry's operand cells are resolved to slab offsets (robSrc/robDst), so the
// per-cycle readiness check is a handful of indexed loads with no pointer
// chasing through the program structure. Every arena is sized at
// construction or bind time, so a warm Sim runs with zero allocations.
type Sim struct {
	cpu  *isa.CPU
	hier *cache.Hierarchy

	// Reorder buffer, SoA, ring-indexed by robHead/robTail.
	robBody       []int32
	robIter       []int64
	robCompletion []int64
	robIssued     []bool
	// robSrc[3*i ... 3*i+robSrcCnt[i]) are the slab offsets entry i's
	// tracked operands read; always-ready operands (none, loop-invariant,
	// iteration 0's loop-carried reads) are omitted at dispatch. robDst[i]
	// is the slab offset the entry writes its completion to, or -1.
	robSrc    []int32
	robSrcCnt []uint8
	robDst    []int32

	robHead   int
	robTail   int
	robCount  int
	uopsInROB int

	rs []int32 // indices into the ROB arrays, age order, waiting to issue

	// rsCount is the number of dispatched-but-unissued entries (the scheduler
	// occupancy). In event-scheduler mode the rs slice stays empty and the
	// waiting set lives in readySet/timeHeap/watcher lists instead.
	rsCount int

	// Event-driven scheduler state, used for skeleton.fastScan bodies. An
	// entry whose operands are all resolved has a final data-ready cycle
	// (single-writer bodies: a sampled producer completion can never change):
	// it waits in timeHeap until that cycle arrives, then moves to readySet,
	// which holds the data-ready entries in age order — the only entries a
	// scan must visit. Entries with unissued producers are parked on per-cell
	// watcher lists: watchHead[cell] heads a list threaded through watchNext
	// (node n watches the cell robSrc[n] names; n/3 is its ROB entry), and
	// the producer's issue walks the list, folds its completion into each
	// watcher's readyAt, and moves watchers whose last operand just resolved
	// (waitCnt reaches zero) into timeHeap.
	readySet  []int32
	timeHeap  []timedEntry
	waitCnt   []uint8
	readyAt   []int64
	watchHead []int32
	watchNext []int32

	// blockedGen/blockedRetry memoize, per body µop within one scan
	// (stamped by scanGen), a failed tryIssue's retry bound: execution
	// resources only shrink as a scan proceeds, so a later same-body entry
	// must fail identically and is skipped.
	blockedGen   []int64
	blockedRetry []int64
	scanGen      int64

	// slab is the register completion ring: cell (iter&regRingMask)*numRegs
	// + reg holds the completion cycle of that register instance, or
	// notIssued.
	slab []int64

	// rsNextReady is a lower bound on the next cycle at which any scheduler
	// entry could issue. Slab cells, port horizons, and memory queues change
	// only when an entry issues — which happens only inside a scan — so
	// after a scan that issued nothing the earliest data-ready/resource-free
	// time sampled during the scan stays exact until the next issue, and
	// whole scans below the bound are skipped. Every issue re-arms the bound
	// to cycle+1; dispatch lowers it with each new entry's own readiness
	// bound (entries with an unissued producer are excluded: they cannot
	// issue before a scan that issues the producer, which re-arms).
	rsNextReady int64
	// retryAt is set by a failed tryIssue to the earliest cycle the failing
	// conditions could clear (exact while no issue occurs, since all
	// resources are frozen between issues).
	retryAt int64
	// portMask is scan scratch: bit p set iff port p is free (and unfaulted)
	// at the scanned cycle; claims clear bits as the scan proceeds.
	portMask uint32

	portFree []int64

	loadQ, storeQ minHeap
	lfb           minHeap
	inflight      minHeap

	// Per-CPU issue tables, built once in NewSim: classPorts[c] lists the
	// ports accepting class c in ascending order (the same order the
	// previous per-port scans visited them); loadPortsList is classPorts for
	// loads, claimed wholesale by gathers. robOccLUT/loadQOccLUT map an
	// occupancy to its histogram bucket, replacing a per-cycle division.
	classPorts    [][]int8
	loadPortsList []int8
	// classPortMask[c]/loadPortsMask/vec512Mask are the same port sets as
	// bitmasks; the lowest set bit of classPortMask[c]&portMask is the same
	// port an ascending scan would pick.
	classPortMask []uint32
	loadPortsMask uint32
	vec512Mask    uint32
	robOccLUT     []uint8
	loadQOccLUT   []uint8

	// skel is the schedule skeleton bound by the last Run (see skeleton.go);
	// skelProg/skelLat/skelOcc/skelSeed identify it for the pointer-equality
	// fast path in bind.
	skel             *skeleton
	skelProg         *Program
	skelLat, skelOcc float64
	skelSeed         uint64

	// trace is the optional lifecycle recorder (SetTraceLog).
	trace *TraceLog
	// lastPort and lastLevel communicate the issue port and cache fill level
	// chosen by the most recent successful tryIssue to the trace hooks.
	lastPort  int8
	lastLevel int8

	// perturb, when non-nil, is the fault-injection model (SetPerturb).
	perturb *Perturb
	// hierErr records a cache-hierarchy construction failure; NewSim keeps
	// its infallible signature and Run surfaces the error instead.
	hierErr error

	// steady is the steady-state fast-path detector (see steady.go); its
	// scratch buffers persist across runs so hot sweep loops stay
	// allocation-free. fastOff disables the fast path (SetFastPath).
	steady  steadyState
	fastOff bool
}

// NewSim builds a simulator for a CPU with a fresh cache hierarchy. An
// invalid cache geometry does not fail here: the error is deferred and
// returned by the first Run (and exposed by Err), so call sites that
// construct simulators for the built-in CPU models stay non-fallible.
func NewSim(cpu *isa.CPU) *Sim {
	hier, err := cache.New(cpu)
	if err != nil {
		return &Sim{cpu: cpu, hierErr: fmt.Errorf("uarch: building cache hierarchy: %w", err)}
	}
	s := &Sim{cpu: cpu, hier: hier}

	robCap := cpu.ROBSize + 8
	s.robBody = make([]int32, robCap)
	s.robIter = make([]int64, robCap)
	s.robCompletion = make([]int64, robCap)
	s.robIssued = make([]bool, robCap)
	s.robSrc = make([]int32, 3*robCap)
	s.robSrcCnt = make([]uint8, robCap)
	s.robDst = make([]int32, robCap)
	rsCap := cpu.RSSize
	if rsCap < 1 {
		rsCap = 1
	}
	s.rs = make([]int32, 0, rsCap)
	s.portFree = make([]int64, len(cpu.Ports))
	s.loadQ = make(minHeap, 0, cpu.LoadQueue+1)
	s.storeQ = make(minHeap, 0, cpu.StoreQueue+1)
	// A gather checks only len < LineFillBuffers before pushing one entry
	// per missing lane, so the fill-buffer heap can briefly exceed its
	// nominal capacity; the margin keeps that growth allocation-free.
	s.lfb = make(minHeap, 0, cpu.LineFillBuffers+64)
	s.inflight = make(minHeap, 0, robCap)

	numClasses := len(isa.Port{}.Accepts)
	s.classPorts = make([][]int8, numClasses)
	s.classPortMask = make([]uint32, numClasses)
	for c := 0; c < numClasses; c++ {
		for i := range cpu.Ports {
			if cpu.Ports[i].CanRun(isa.Class(c)) {
				s.classPorts[c] = append(s.classPorts[c], int8(i))
				s.classPortMask[c] |= 1 << i
			}
		}
	}
	s.loadPortsList = s.classPorts[isa.Load]
	s.loadPortsMask = s.classPortMask[isa.Load]
	for _, p := range cpu.Vec512Ports {
		s.vec512Mask |= 1 << p
	}
	s.robOccLUT = occLUT(cpu.ROBSize)
	s.loadQOccLUT = occLUT(cpu.LoadQueue)

	s.waitCnt = make([]uint8, robCap)
	s.readyAt = make([]int64, robCap)
	s.watchNext = make([]int32, 3*robCap)
	s.readySet = make([]int32, 0, robCap)
	s.timeHeap = make([]timedEntry, 0, robCap)
	return s
}

// pushTimed adds entry ei, data-ready at cycle at, to the maturation heap.
func (s *Sim) pushTimed(at int64, ei int32) {
	h := append(s.timeHeap, timedEntry{at, ei})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].at <= h[i].at {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	s.timeHeap = h
}

func (s *Sim) popTimed() int32 {
	h := s.timeHeap
	ei := h[0].ei
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h[l].at < h[m].at {
			m = l
		}
		if r < n && h[r].at < h[m].at {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.timeHeap = h
	return ei
}

// insertReady places a matured entry into readySet at its age position, so
// the scan visits data-ready entries in exactly the order the exhaustive
// age-ordered scan would attempt them.
func (s *Sim) insertReady(ei int32) {
	bl := int64(s.skel.bodyLen)
	seq := s.robIter[ei]*bl + int64(s.robBody[ei])
	rdy := s.readySet
	lo, hi := 0, len(rdy)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := rdy[mid]
		if s.robIter[m]*bl+int64(s.robBody[m]) < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	rdy = append(rdy, 0)
	copy(rdy[lo+1:], rdy[lo:])
	rdy[lo] = ei
	s.readySet = rdy
}

// occLUT precomputes OccHist.Record's bucket for every occupancy 0..cap.
func occLUT(capacity int) []uint8 {
	if capacity <= 0 {
		return nil
	}
	lut := make([]uint8, capacity+1)
	for occ := 0; occ <= capacity; occ++ {
		b := occ * OccBuckets / capacity
		if b >= OccBuckets {
			b = OccBuckets - 1
		}
		lut[occ] = uint8(b)
	}
	return lut
}

// Err reports a deferred construction error (an invalid cache geometry in
// the CPU model). When non-nil, Hierarchy returns nil and Run fails.
func (s *Sim) Err() error { return s.hierErr }

// Hierarchy exposes the cache hierarchy (for warming working sets). It is
// nil when Err is non-nil.
func (s *Sim) Hierarchy() *cache.Hierarchy { return s.hier }

// SetPerturb installs (or, with nil, removes) a fault-injection model that
// jitters instruction latency/occupancy and injects transient
// port-unavailable cycles on every subsequent Run. Cache-latency and
// frequency-license jitter act through the CPU model instead: see
// Perturb.CPU.
func (s *Sim) SetPerturb(p *Perturb) { s.perturb = p }

// CPU returns the machine model.
func (s *Sim) CPU() *isa.CPU { return s.cpu }

// Run executes iters iterations of prog's loop body and returns the counter
// set. The cache hierarchy retains its contents across calls (reset it
// explicitly for a cold run); counters are deltas for this call.
func (s *Sim) Run(prog *Program, iters int64) (*Result, error) {
	res := &Result{}
	if err := s.RunInto(res, prog, iters); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run with caller-owned result storage: res is fully overwritten
// (its PortBusy backing array is reused when large enough), so hot sweep
// loops can run without per-call allocations.
func (s *Sim) RunInto(res *Result, prog *Program, iters int64) error {
	if s.hierErr != nil {
		return s.hierErr
	}
	if iters <= 0 {
		return fmt.Errorf("uarch: iters must be positive, got %d", iters)
	}
	if err := s.bind(prog); err != nil {
		return err
	}
	sk := s.skel
	s.reset()
	statsBefore := s.hier.Stats()

	cpu := s.cpu
	pb := res.PortBusy[:0]
	*res = Result{Name: prog.Name}
	if cap(pb) < len(cpu.Ports) {
		pb = make([]uint64, len(cpu.Ports))
	} else {
		pb = pb[:len(cpu.Ports)]
		clear(pb)
	}
	res.PortBusy = pb
	res.ROBOcc.Cap = cpu.ROBSize
	res.LoadQOcc.Cap = cpu.LoadQueue
	nr := sk.numRegs
	slab := s.slab
	bodyLen := sk.bodyLen

	var cycle int64
	var dispatchIter int64
	var dispatchIdx int
	var idleSkipped int64
	traceDone := false
	s.steady.begin(s, prog)

	for !traceDone || s.robCount > 0 {
		// Free memory-queue slots whose operations completed.
		s.loadQ.drain(cycle)
		s.storeQ.drain(cycle)
		s.lfb.drain(cycle)
		s.inflight.drain(cycle)

		// Steady-state fast path: at the first cycle observing each new
		// dispatch iteration (after the drains, so every queued completion
		// is in the future), look for an exact recurrence of the machine's
		// relative state and, on a match, extrapolate whole periods of the
		// loop at once.
		if s.steady.active && !traceDone && dispatchIter > s.steady.lastIter {
			s.steady.observe(s, res, &cycle, &dispatchIter, dispatchIdx, iters)
		}

		// Retire in order.
		retiredUops := 0
		for s.robCount > 0 {
			h := s.robHead
			if !s.robIssued[h] || s.robCompletion[h] > cycle {
				break
			}
			b := s.robBody[h]
			uops := int(sk.uops[b])
			// Instructions wider than the retire bandwidth (e.g. gathers)
			// retire alone; otherwise respect the per-cycle budget.
			if retiredUops > 0 && retiredUops+uops > cpu.RetireWidth {
				break
			}
			retiredUops += uops
			res.Instructions++
			res.Uops += uint64(uops)
			if s.trace != nil {
				s.trace.add(TraceEvent{Kind: TraceRetire, Cycle: cycle, Iter: s.robIter[h], Body: b, Name: sk.body[b].Instr.Name, Port: -1})
			}
			s.uopsInROB -= uops
			h++
			if h == len(s.robBody) {
				h = 0
			}
			s.robHead = h
			s.robCount--
		}

		// Top-down attribution: a cycle that retired µops is retiring; a
		// non-retiring cycle is charged to whatever blocks the oldest
		// in-flight instruction at this point (after retirement, before
		// issue, so the classification sees the state that stalled it).
		stall := stallRetiring
		if retiredUops == 0 {
			stall = s.classifyStall(cycle)
		}

		// Issue from the scheduler in age order. A scan below rsNextReady is
		// provably fruitless (no slab cell changed since the bound was
		// sampled) and is skipped wholesale; the cycle still accounts as an
		// ordinary zero-issue cycle.
		issuedUops := 0
		issuedInstrs := 0
		if cycle >= s.rsNextReady && (len(s.rs) > 0 || len(s.timeHeap) > 0 || len(s.readySet) > 0) {
			// Mature event-tracked entries whose data-ready cycle has arrived
			// into the age-ordered ready set.
			for len(s.timeHeap) > 0 && s.timeHeap[0].at <= cycle {
				s.insertReady(s.popTimed())
			}
			if len(s.rs) == 0 && len(s.readySet) == 0 {
				// Every waiting entry is event-tracked with a future ready
				// cycle: the heap minimum (non-empty here) is the exact next.
				s.rsNextReady = s.timeHeap[0].at
			} else {
				// Snapshot port availability once; claims clear bits as the
				// scan proceeds, and the lowest set bit of a class's masked
				// ports is exactly the port an ascending scan would pick.
				pm := uint32(0)
				for i, f := range s.portFree {
					if f <= cycle {
						pm |= 1 << i
					}
				}
				if s.perturb != nil && s.perturb.PortFaultRate > 0 {
					for m := pm; m != 0; m &= m - 1 {
						p := bits.TrailingZeros32(m)
						if s.perturb.PortFault(p, cycle) {
							pm &^= 1 << p
						}
					}
				}
				s.portMask = pm
				s.scanGen++
				gen := s.scanGen

				minNext := int64(math.MaxInt64)
				if len(s.timeHeap) > 0 {
					minNext = s.timeHeap[0].at
				}
				// Merge-walk the resampled list and the ready set in age
				// order, reproducing the attempt sequence of one exhaustive
				// age-ordered scan over all waiting entries (event-tracked
				// entries that are not yet ready are provably unissuable this
				// cycle and need no visit).
				bl := int64(bodyLen)
				rs := s.rs
				rdy := s.readySet
				ai, bi := 0, 0
				wa, wb := 0, 0
				aSeq, bSeq := int64(math.MaxInt64), int64(math.MaxInt64)
				if len(rs) > 0 {
					aSeq = s.robIter[rs[0]]*bl + int64(s.robBody[rs[0]])
				}
				if len(rdy) > 0 {
					bSeq = s.robIter[rdy[0]]*bl + int64(s.robBody[rdy[0]])
				}
				for ai < len(rs) || bi < len(rdy) {
					fromA := aSeq <= bSeq
					var ei int32
					if fromA {
						ei = rs[ai]
					} else {
						ei = rdy[bi]
					}
					issued := false
					if issuedInstrs < issueInstrCap {
						attempt := true
						if fromA {
							// Live-sample this entry's operand cells: its
							// watched registers can be rewritten (accumulator
							// redefinitions), so only current values decide.
							so := int(ei) * 3
							n := int(s.robSrcCnt[ei])
							var ready int64
							for k := 0; k < n; k++ {
								v := slab[s.robSrc[so+k]]
								if v == notIssued {
									attempt = false
									break
								}
								if v > ready {
									ready = v
								}
							}
							if attempt && ready > cycle {
								// Data-ready at a known future cycle: a
								// candidate for the scan-skip bound.
								if ready < minNext {
									minNext = ready
								}
								attempt = false
							}
						}
						if attempt {
							b := s.robBody[ei]
							if s.blockedGen[b] == gen {
								// A same-body entry already failed this scan
								// and resources only shrink within one: same
								// outcome, same bound.
								if s.blockedRetry[b] < minNext {
									minNext = s.blockedRetry[b]
								}
							} else if lat, ok := s.tryIssue(ei, b, cycle); !ok {
								// Blocked on execution resources: retryAt is
								// the earliest the failing conditions clear.
								s.blockedGen[b] = gen
								s.blockedRetry[b] = s.retryAt
								if s.retryAt < minNext {
									minNext = s.retryAt
								}
							} else {
								issued = true
								comp := cycle + int64(lat)
								s.robIssued[ei] = true
								s.robCompletion[ei] = comp
								s.rsCount--
								if o := s.robDst[ei]; o >= 0 {
									slab[o] = comp
									// Wake the consumers parked on this cell.
									for node := s.watchHead[o]; node >= 0; node = s.watchNext[node] {
										we := node / 3
										if comp > s.readyAt[we] {
											s.readyAt[we] = comp
										}
										s.waitCnt[we]--
										if s.waitCnt[we] == 0 {
											s.pushTimed(s.readyAt[we], we)
										}
									}
									s.watchHead[o] = -1
								}
								s.inflight.push(comp)
								if s.trace != nil {
									s.trace.add(TraceEvent{Kind: TraceIssue, Cycle: cycle, Dur: int64(lat), Iter: s.robIter[ei], Body: b, Name: sk.body[b].Instr.Name, Port: s.lastPort, Level: s.lastLevel})
									s.trace.add(TraceEvent{Kind: TraceComplete, Cycle: comp, Iter: s.robIter[ei], Body: b, Name: sk.body[b].Instr.Name, Port: s.lastPort, Level: s.lastLevel})
								}
								issuedUops += int(sk.uops[b])
								issuedInstrs++
								if sk.w512[b] {
									res.Vec512Uops += uint64(sk.uops[b])
								}
								if sk.class[b] == isa.Prefetch {
									res.PrefetchUops++
								}
							}
						}
					}
					if fromA {
						if !issued {
							rs[wa] = ei
							wa++
						}
						ai++
						if ai < len(rs) {
							aSeq = s.robIter[rs[ai]]*bl + int64(s.robBody[rs[ai]])
						} else {
							aSeq = int64(math.MaxInt64)
						}
					} else {
						if !issued {
							rdy[wb] = ei
							wb++
						}
						bi++
						if bi < len(rdy) {
							bSeq = s.robIter[rdy[bi]]*bl + int64(s.robBody[rdy[bi]])
						} else {
							bSeq = int64(math.MaxInt64)
						}
					}
				}
				s.rs = rs[:wa]
				s.readySet = rdy[:wb]
				if issuedInstrs > 0 || minNext == int64(math.MaxInt64) {
					// An issue rewrote the slab and resource horizons, so the
					// sampled bound is void (and the MaxInt64 case is a
					// defensive clamp against an all-blocked scan with no
					// finite retry bound).
					s.rsNextReady = cycle + 1
				} else {
					s.rsNextReady = minNext
				}
			}
		}
		if Debug && cycle < 300 {
			fmt.Printf("c%3d: rob=%d rs=%d issued=%d retired=%d dispIter=%d portFree=%v\n",
				cycle, s.robCount, s.rsCount, issuedInstrs, retiredUops, dispatchIter, s.portFree)
		}
		res.IssuedUops += uint64(issuedUops)
		if issuedUops >= HistBuckets {
			issuedUops = HistBuckets - 1
		}
		res.Hist[issuedUops]++

		// Dispatch new instructions into ROB + scheduler, resolving each
		// entry's operand cells to slab offsets as it enters.
		dispatched := 0
		budget := cpu.DecodeWidth
		for !traceDone && budget > 0 {
			b := dispatchIdx
			uops := int(sk.uops[b])
			if s.uopsInROB+uops > cpu.ROBSize || s.rsCount >= cpu.RSSize || s.robCount >= len(s.robBody) {
				break
			}
			sameBase := int(dispatchIter&regRingMask) * nr
			if b == 0 {
				cells := slab[sameBase : sameBase+nr]
				for i := range cells {
					cells[i] = notIssued
				}
				// The slot's watcher lists are dead along with its cells
				// (any live watcher's producer issued long before the ring
				// wrapped around to this slot).
				wh := s.watchHead[sameBase : sameBase+nr]
				for i := range wh {
					wh[i] = -1
				}
			}
			t := s.robTail
			s.robBody[t] = int32(b)
			s.robIter[t] = dispatchIter
			s.robIssued[t] = false
			if d := sk.dst[b]; d != NoReg {
				s.robDst[t] = int32(sameBase + int(d))
			} else {
				s.robDst[t] = -1
			}
			so := t * 3
			nsrc := 0
			waiting := 0
			safe := sk.srcSafe[b]
			var srcBound int64
			for k := 0; k < 3; k++ {
				var o int32
				switch sk.srcKind[b*3+k] {
				case srcSame:
					o = int32(sameBase + int(sk.srcReg[b*3+k]))
				case srcCarried:
					if dispatchIter == 0 {
						continue // pre-loop value, always ready
					}
					o = int32(int((dispatchIter-1)&regRingMask)*nr + int(sk.srcReg[b*3+k]))
				default:
					continue
				}
				s.robSrc[so+nsrc] = o
				if v := slab[o]; v == notIssued {
					if safe {
						// Park this operand on the producer cell's watcher
						// list; the producer's issue resolves it.
						node := int32(so + nsrc)
						s.watchNext[node] = s.watchHead[o]
						s.watchHead[o] = node
					}
					waiting++
				} else if v > srcBound {
					srcBound = v
				}
				nsrc++
			}
			s.robSrcCnt[t] = uint8(nsrc)
			// Fold the new entry into the scan-skip bound: an entry with an
			// unissued producer cannot issue before a scan that issues the
			// producer (which re-arms the bound), so only resolved entries
			// lower it. Sampled values stay exact until the next issue.
			if safe {
				s.waitCnt[t] = uint8(waiting)
				s.readyAt[t] = srcBound
				if waiting == 0 {
					s.pushTimed(srcBound, int32(t))
					if srcBound < cycle+1 {
						srcBound = cycle + 1
					}
					if srcBound < s.rsNextReady {
						s.rsNextReady = srcBound
					}
				}
			} else {
				if waiting == 0 {
					if srcBound < cycle+1 {
						srcBound = cycle + 1
					}
					if srcBound < s.rsNextReady {
						s.rsNextReady = srcBound
					}
				}
				s.rs = append(s.rs, int32(t))
			}
			s.rsCount++
			if s.trace != nil {
				s.trace.add(TraceEvent{Kind: TraceDispatch, Cycle: cycle, Iter: dispatchIter, Body: int32(b), Name: sk.body[b].Instr.Name, Port: -1})
			}
			t++
			if t == len(s.robBody) {
				t = 0
			}
			s.robTail = t
			s.robCount++
			s.uopsInROB += uops
			budget -= uops
			dispatched++
			dispatchIdx++
			if dispatchIdx == bodyLen {
				dispatchIdx = 0
				dispatchIter++
				if dispatchIter == iters {
					traceDone = true
				}
			}
		}
		// Per-cycle observability accounting: stall bucket, structure
		// occupancy, port busyness.
		res.Stalls.add(stall, 1)
		if s.robOccLUT != nil {
			res.ROBOcc.Buckets[s.robOccLUT[s.uopsInROB]]++
		}
		if s.loadQOccLUT != nil {
			res.LoadQOcc.Buckets[s.loadQOccLUT[len(s.loadQ)]]++
		}
		for i, f := range s.portFree {
			if f > cycle {
				res.PortBusy[i]++
			}
		}

		// Fast-forward through stall cycles.
		if issuedInstrs == 0 && dispatched == 0 && retiredUops == 0 {
			next := s.nextEvent(cycle)
			if next > cycle+1 {
				skipped := uint64(next - cycle - 1)
				idleSkipped += int64(skipped)
				res.Hist[0] += skipped
				// The skipped cycles stall for the same reason and at the
				// same occupancies as the current one.
				res.Stalls.add(stall, skipped)
				if s.robOccLUT != nil {
					res.ROBOcc.Buckets[s.robOccLUT[s.uopsInROB]] += skipped
				}
				if s.loadQOccLUT != nil {
					res.LoadQOcc.Buckets[s.loadQOccLUT[len(s.loadQ)]] += skipped
				}
				for i, f := range s.portFree {
					if b := min(f, next) - cycle - 1; b > 0 {
						res.PortBusy[i] += uint64(b)
					}
				}
				cycle = next
				continue
			}
		}
		cycle++
	}

	res.Cycles = uint64(cycle)
	res.Elems = uint64(iters) * uint64(sk.elemsPerIter)
	res.Cache = statsDelta(s.hier.Stats(), statsBefore)
	res.FreqGHz = EffectiveFreq(cpu, prog, res)
	recordTotals(res, s.steady.skippedCycles, idleSkipped)

	if check.Enabled() {
		if err := s.steady.invariantErr; err != nil {
			return err
		}
		if err := res.SelfCheck(); err != nil {
			return err
		}
		if want := uint64(iters) * uint64(bodyLen); res.Instructions != want {
			return fmt.Errorf("uarch: selfcheck %q: retired %d instructions, want iters*body = %d", prog.Name, res.Instructions, want)
		}
	}
	return nil
}

func statsDelta(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		L1Hits: a.L1Hits - b.L1Hits, L1Misses: a.L1Misses - b.L1Misses,
		L2Hits: a.L2Hits - b.L2Hits, L2Misses: a.L2Misses - b.L2Misses,
		LLCHits: a.LLCHits - b.LLCHits, LLCMisses: a.LLCMisses - b.LLCMisses,
		MemAccesses:     a.MemAccesses - b.MemAccesses,
		PrefetchFills:   a.PrefetchFills - b.PrefetchFills,
		HWPrefetchFills: a.HWPrefetchFills - b.HWPrefetchFills,
		HWPrefetchMem:   a.HWPrefetchMem - b.HWPrefetchMem,
		SWPrefetchMem:   a.SWPrefetchMem - b.SWPrefetchMem,
	}
}

// reset rewinds the pipeline state for a fresh run. The slab is not cleared:
// each iteration's cells are reset when it dispatches, before any read.
func (s *Sim) reset() {
	s.robHead, s.robTail, s.robCount, s.uopsInROB = 0, 0, 0, 0
	s.rs = s.rs[:0]
	s.rsCount = 0
	s.readySet = s.readySet[:0]
	s.timeHeap = s.timeHeap[:0]
	for i := range s.portFree {
		s.portFree[i] = 0
	}
	s.loadQ = s.loadQ[:0]
	s.storeQ = s.storeQ[:0]
	s.lfb = s.lfb[:0]
	s.inflight = s.inflight[:0]
	s.rsNextReady = 0
}

// tryIssue attempts to claim execution resources for ROB entry ei (body µop
// b) at cycle; on success it returns the total result latency (including
// cache effects). On failure it sets retryAt to the earliest cycle the
// failing conditions could clear — exact while nothing issues, since ports
// and queues only change at issues and at their own already-known horizons.
func (s *Sim) tryIssue(ei, b int32, cycle int64) (latency int, ok bool) {
	sk := s.skel
	baseLat := int(sk.lat[b])
	occ := int64(sk.occ[b])
	s.lastPort, s.lastLevel = -1, 0
	switch sk.class[b] {
	case isa.Load:
		if len(s.loadQ) >= s.cpu.LoadQueue || len(s.lfb) >= s.cpu.LineFillBuffers {
			t := cycle + 1
			if len(s.loadQ) >= s.cpu.LoadQueue && s.loadQ[0] > t {
				t = s.loadQ[0]
			}
			if len(s.lfb) >= s.cpu.LineFillBuffers && s.lfb[0] > t {
				t = s.lfb[0]
			}
			s.retryAt = t
			return 0, false
		}
		port, found := s.freePort(isa.Load, cycle)
		if !found {
			return 0, false
		}
		a := &sk.addr[b]
		addr := a.address(s.robIter[ei], int(a.LaneSel), sk.elemsPerIter)
		extra, lvl := s.cacheExtra(addr)
		if s.steady.recording {
			s.steady.record(b, s.robIter[ei], int(a.LaneSel), extra)
		}
		lat := baseLat + extra
		s.lastPort, s.lastLevel = int8(port), int8(lvl)
		s.claimPort(port, cycle, occ)
		s.loadQ.push(cycle + int64(lat))
		if extra > 0 {
			s.lfb.push(cycle + int64(lat))
		}
		return lat, true

	case isa.GatherOp:
		// A gather's lane loads coalesce into roughly lanes/2 load-buffer
		// entries (line-combining in the fill buffers) and keep both load
		// ports busy for the occupancy window.
		lqSlots := int(sk.lqSlots[b])
		if len(s.loadQ)+lqSlots > s.cpu.LoadQueue || len(s.lfb) >= s.cpu.LineFillBuffers {
			t := cycle + 1
			if len(s.loadQ)+lqSlots > s.cpu.LoadQueue && len(s.loadQ) > 0 && s.loadQ[0] > t {
				t = s.loadQ[0]
			}
			if len(s.lfb) >= s.cpu.LineFillBuffers && s.lfb[0] > t {
				t = s.lfb[0]
			}
			s.retryAt = t
			return 0, false
		}
		if s.loadPortsMask == 0 || s.portMask&s.loadPortsMask != s.loadPortsMask {
			// All load ports must be simultaneously free and unfaulted; the
			// bound is the latest busy port's horizon.
			t := cycle + 1
			if s.perturb == nil || s.perturb.PortFaultRate == 0 {
				for _, p := range s.loadPortsList {
					if f := s.portFree[p]; f > t {
						t = f
					}
				}
			}
			if s.loadPortsMask == 0 {
				t = int64(math.MaxInt64)
			}
			s.retryAt = t
			return 0, false
		}
		maxExtra := 0
		misses := 0
		s.lastLevel = 1
		a := &sk.addr[b]
		iter := s.robIter[ei]
		for lane := 0; lane < int(sk.lanes[b]); lane++ {
			addr := a.address(iter, lane, sk.elemsPerIter)
			extra, lvl := s.cacheExtra(addr)
			if s.steady.recording {
				s.steady.record(b, iter, lane, extra)
			}
			if extra > maxExtra {
				maxExtra = extra
				s.lastLevel = int8(lvl)
			}
			if extra > 0 {
				misses++
			}
		}
		lat := baseLat + maxExtra
		s.lastPort = s.loadPortsList[0]
		for _, p := range s.loadPortsList {
			s.portFree[p] = cycle + occ
		}
		if occ > 0 {
			s.portMask &^= s.loadPortsMask
		}
		done := cycle + int64(lat)
		for i := 0; i < lqSlots; i++ {
			s.loadQ.push(done)
		}
		for i := 0; i < misses; i++ {
			s.lfb.push(done)
		}
		return lat, true

	case isa.Store:
		if len(s.storeQ) >= s.cpu.StoreQueue {
			t := cycle + 1
			if len(s.storeQ) > 0 && s.storeQ[0] > t {
				t = s.storeQ[0]
			}
			s.retryAt = t
			return 0, false
		}
		port, found := s.freePort(isa.Store, cycle)
		if !found {
			return 0, false
		}
		a := &sk.addr[b]
		addr := a.address(s.robIter[ei], 0, sk.elemsPerIter)
		_, lvl := s.hier.Access(addr)
		if s.steady.recording {
			s.steady.record(b, s.robIter[ei], 0, 0)
		}
		s.lastPort, s.lastLevel = int8(port), int8(lvl)
		s.claimPort(port, cycle, occ)
		s.storeQ.push(cycle + int64(baseLat) + 4)
		return baseLat, true

	case isa.Prefetch:
		// Random-region prefetch fills consume line-fill buffers like
		// demand misses; a full LFB array stalls further prefetching (the
		// bandwidth bound that keeps prefetch-everything engines honest).
		// Sequential-stream prefetches are serviced by the L2 streamer path
		// and bypass the L1 fill buffers.
		isStream := sk.isStream[b]
		if !isStream && len(s.lfb) >= s.cpu.LineFillBuffers {
			t := cycle + 1
			if s.lfb[0] > t {
				t = s.lfb[0]
			}
			s.retryAt = t
			return 0, false
		}
		port, found := s.freePort(isa.Prefetch, cycle)
		if !found {
			return 0, false
		}
		a := &sk.addr[b]
		addr := a.address(s.robIter[ei], int(a.LaneSel), sk.elemsPerIter)
		lvl := s.hier.Prefetch(addr)
		if s.steady.recording {
			s.steady.record(b, s.robIter[ei], int(a.LaneSel), lvl)
		}
		if lvl > 0 {
			s.lastLevel = int8(lvl)
			if !isStream {
				// Prefetch fills are fire-and-forget: the buffer frees when
				// the line arrives, overlapping better than demand misses
				// that hold their buffer until the consumer is satisfied.
				s.lfb.push(cycle + int64(s.fillLatency(lvl))/2)
			}
		}
		s.lastPort = int8(port)
		s.claimPort(port, cycle, occ)
		return baseLat, true
	}

	// Arithmetic classes.
	if sk.w512[b] {
		return s.issue512(b, cycle)
	}
	port, found := s.freePort(sk.class[b], cycle)
	if !found {
		return 0, false
	}
	s.lastPort = int8(port)
	s.claimPort(port, cycle, occ)
	return baseLat, true
}

// issue512 places a 512-bit vector µop on one of the 512-bit unit ports.
// Shuffles run on the (always 512-bit-capable) shuffle unit instead.
func (s *Sim) issue512(b int32, cycle int64) (int, bool) {
	sk := s.skel
	lat := int(sk.lat[b])
	occ := int64(sk.occ[b])
	if sk.class[b] == isa.VecShuffle {
		m := s.classPortMask[isa.VecShuffle] & s.portMask
		if m == 0 {
			s.retryAt = s.portRetry(s.classPortMask[isa.VecShuffle], cycle)
			return 0, false
		}
		p := bits.TrailingZeros32(m)
		s.lastPort = int8(p)
		s.claimPort(p, cycle, occ)
		return lat, true
	}
	// Vec512Ports preserves the model's configured preference order, which
	// need not be ascending, so this scans the list rather than the mask.
	for _, p := range s.cpu.Vec512Ports {
		if s.portMask&(1<<p) != 0 {
			s.lastPort = int8(p)
			s.claimPort(p, cycle, occ)
			return lat, true
		}
	}
	s.retryAt = s.portRetry(s.vec512Mask, cycle)
	return 0, false
}

// freePort finds a free port that accepts class c at cycle: the lowest set
// bit of the masked availability snapshot is the same port the previous
// ascending portFree scan selected. On failure it sets retryAt.
func (s *Sim) freePort(c isa.Class, cycle int64) (int, bool) {
	m := s.classPortMask[c] & s.portMask
	if m == 0 {
		s.retryAt = s.portRetry(s.classPortMask[c], cycle)
		return 0, false
	}
	return bits.TrailingZeros32(m), true
}

// claimPort occupies port until cycle+occ and keeps the scan's availability
// snapshot in sync (a zero-occupancy claim leaves the port free this cycle,
// exactly as the portFree comparison would).
func (s *Sim) claimPort(port int, cycle, occ int64) {
	s.portFree[port] = cycle + occ
	if occ > 0 {
		s.portMask &^= 1 << port
	}
}

// portRetry bounds when any port in mask could next be claimable. With
// fault injection active a currently-faulted port may clear next cycle, so
// the bound degrades to cycle+1.
func (s *Sim) portRetry(mask uint32, cycle int64) int64 {
	if s.perturb != nil && s.perturb.PortFaultRate > 0 {
		return cycle + 1
	}
	t := int64(math.MaxInt64)
	for m := mask; m != 0; m &= m - 1 {
		if f := s.portFree[bits.TrailingZeros32(m)]; f < t {
			t = f
		}
	}
	if t <= cycle {
		t = cycle + 1
	}
	return t
}

// portFaulted reports whether fault injection holds port unavailable at
// cycle. A faulted port stays claimable on later cycles, so the scheduler
// retries and the fast-forward loop in nextEvent cannot live-lock.
func (s *Sim) portFaulted(port int, cycle int64) bool {
	return s.perturb != nil && s.perturb.PortFault(port, cycle)
}

// fillLatency maps a fill-source level to its line-fill-buffer hold time.
func (s *Sim) fillLatency(level int) int {
	switch level {
	case 2:
		return s.cpu.L2.Latency
	case 3:
		return s.cpu.LLC.Latency
	default:
		return s.cpu.MemLatency
	}
}

// cacheExtra returns the additional latency (beyond the L1-hit latency baked
// into the instruction table) for accessing addr.
func (s *Sim) cacheExtra(addr uint64) (extra, level int) {
	lat, lvl := s.hier.Access(addr)
	e := lat - s.cpu.L1D.Latency
	if e < 0 {
		e = 0
	}
	return e, lvl
}

// nextEvent returns the next cycle at which progress can occur.
func (s *Sim) nextEvent(cycle int64) int64 {
	next := int64(math.MaxInt64)
	if m, ok := s.inflight.min(); ok && m < next {
		next = m
	}
	for _, f := range s.portFree {
		if f > cycle && f < next {
			next = f
		}
	}
	if m, ok := s.loadQ.min(); ok && m < next {
		next = m
	}
	if m, ok := s.storeQ.min(); ok && m < next {
		next = m
	}
	if m, ok := s.lfb.min(); ok && m < next {
		next = m
	}
	if next == int64(math.MaxInt64) {
		return cycle + 1
	}
	return next
}

// heavy512UtilThreshold is the sustained 512-bit-unit µop throughput (µops
// per cycle) above which the core enters the heavy AVX-512 license. A single
// 512-bit unit cannot exceed 1.0, so only parts with two units (and code
// that keeps both busy — the paper's "two SIMD statements" case) downclock.
const heavy512UtilThreshold = 1.5

// EffectiveFreq applies the frequency-license model: scalar turbo for
// scalar-only code, the AVX2/AVX-512 license for vector code, the heavy
// AVX-512 license when sustained 512-bit utilisation keeps two 512-bit units
// busy (the paper's observation that two SIMD statements downclock the
// core), and an uncore governor penalty proportional to software-prefetch
// density (the bandwidth-saturated regime measured for Voila).
func EffectiveFreq(cpu *isa.CPU, prog *Program, res *Result) float64 {
	fl := cpu.Freq
	f := fl.ScalarGHz
	switch {
	case res.Vec512Uops > 0 && res.Cycles > 0:
		util := float64(res.Vec512Uops) / float64(res.Cycles)
		if util >= heavy512UtilThreshold && len(cpu.Vec512Ports) >= 2 {
			f = fl.AVX512HeavyGHz
		} else {
			f = fl.AVX512GHz
		}
	case prog.VectorWidth == isa.W256 && prog.VectorStatements > 0:
		f = fl.AVX2GHz
	}
	if res.Instructions > 0 && res.PrefetchUops > 0 {
		density := float64(res.PrefetchUops) / float64(res.Instructions)
		f *= 1 - fl.UncoreGovPenalty*density
	}
	if f < fl.MinGHz {
		f = fl.MinGHz
	}
	return f
}

// Debug enables per-cycle tracing for development diagnostics.
var Debug bool
