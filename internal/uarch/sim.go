package uarch

import (
	"fmt"
	"math"

	"hef/internal/cache"
	"hef/internal/check"
	"hef/internal/isa"
)

const (
	// regRingSlots is the number of iterations whose register instances are
	// tracked concurrently. It exceeds the maximum number of in-flight
	// iterations (bounded by the ROB, 224 µops) with margin.
	regRingSlots = 512
	// notIssued marks a register instance whose producer has not issued.
	notIssued = int64(-1)
	// issueInstrCap bounds the instructions issued per cycle (port count).
	issueInstrCap = 8
	// HistBuckets is the size of the µops-per-cycle histogram; bucket i
	// counts cycles in which exactly i µops were issued, with the last
	// bucket collecting "or more".
	HistBuckets = 9
)

// Result is the counter set of one simulation, mirroring what the paper
// collects with perf_event.
type Result struct {
	Name string
	// Cycles is the total core cycles the trace took.
	Cycles uint64
	// Instructions is the number of retired machine instructions.
	Instructions uint64
	// Uops is the number of retired micro-operations.
	Uops uint64
	// IssuedUops is the number of µops sent to execution ports. The
	// simulator has no speculation or replay, so issued == retired at the
	// end of every run (a SelfCheck conservation law); the two counters are
	// accumulated by independent code paths precisely so drift between them
	// is detectable.
	IssuedUops uint64
	// Hist[i] counts cycles with exactly i issued µops (last bucket: >=).
	Hist [HistBuckets]uint64
	// Cache is the hierarchy counter snapshot delta for this run.
	Cache cache.Stats
	// Vec512Uops counts µops executed on 512-bit units.
	Vec512Uops uint64
	// PrefetchUops counts software prefetches.
	PrefetchUops uint64
	// FreqGHz is the effective clock from the license/governor model.
	FreqGHz float64
	// Elems is the number of data elements processed.
	Elems uint64
	// Stalls attributes every cycle top-down: retiring, frontend-bound,
	// backend-port-bound, memory-bound, or dependency-latency-bound.
	// Invariant: Stalls.Total() == Cycles.
	Stalls Stalls
	// PortBusy[i] counts cycles issue port i was occupied.
	PortBusy []uint64
	// ROBOcc and LoadQOcc are per-cycle occupancy histograms of the reorder
	// buffer (in µops) and the load queue (in slots).
	ROBOcc   OccHist
	LoadQOcc OccHist
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Seconds converts cycles to wall time at the effective frequency.
func (r *Result) Seconds() float64 {
	if r.FreqGHz <= 0 {
		return 0
	}
	return float64(r.Cycles) / (r.FreqGHz * 1e9)
}

// CyclesPerElem is the per-element cost, the scale-free quantity used to
// extrapolate sampled runs to full workload sizes.
func (r *Result) CyclesPerElem() float64 {
	if r.Elems == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Elems)
}

// PortUtil returns the utilization of issue port i over the run, in [0, 1].
func (r *Result) PortUtil(i int) float64 {
	if r.Cycles == 0 || i < 0 || i >= len(r.PortBusy) {
		return 0
	}
	return float64(r.PortBusy[i]) / float64(r.Cycles)
}

// Add accumulates another result into r (used when a query pipeline is the
// concatenation of per-stage traces). Histograms and cache stats add;
// frequency is recomputed by the caller.
func (r *Result) Add(o *Result) {
	r.Cycles += o.Cycles
	r.Instructions += o.Instructions
	r.Uops += o.Uops
	r.IssuedUops += o.IssuedUops
	for i := range r.Hist {
		r.Hist[i] += o.Hist[i]
	}
	r.Cache.L1Hits += o.Cache.L1Hits
	r.Cache.L1Misses += o.Cache.L1Misses
	r.Cache.L2Hits += o.Cache.L2Hits
	r.Cache.L2Misses += o.Cache.L2Misses
	r.Cache.LLCHits += o.Cache.LLCHits
	r.Cache.LLCMisses += o.Cache.LLCMisses
	r.Cache.MemAccesses += o.Cache.MemAccesses
	r.Cache.PrefetchFills += o.Cache.PrefetchFills
	r.Cache.HWPrefetchFills += o.Cache.HWPrefetchFills
	r.Cache.HWPrefetchMem += o.Cache.HWPrefetchMem
	r.Cache.SWPrefetchMem += o.Cache.SWPrefetchMem
	r.Vec512Uops += o.Vec512Uops
	r.PrefetchUops += o.PrefetchUops
	r.Elems += o.Elems
	r.Stalls.addStalls(&o.Stalls)
	if len(o.PortBusy) > len(r.PortBusy) {
		pb := make([]uint64, len(o.PortBusy))
		copy(pb, r.PortBusy)
		r.PortBusy = pb
	}
	for i := range o.PortBusy {
		r.PortBusy[i] += o.PortBusy[i]
	}
	r.ROBOcc.addHist(&o.ROBOcc)
	r.LoadQOcc.addHist(&o.LoadQOcc)
}

// Clone returns an independent deep copy of r. Callers that cache results
// (the evaluation memo) hand out clones so that Add/Scale on one consumer
// cannot corrupt another's counters.
func (r *Result) Clone() *Result {
	c := *r
	c.PortBusy = append([]uint64(nil), r.PortBusy...)
	return &c
}

// Scale multiplies all extensive counters by f, used to extrapolate a
// sampled batch to the nominal workload size.
func (r *Result) Scale(f float64) {
	r.Cycles = uint64(float64(r.Cycles) * f)
	r.Instructions = uint64(float64(r.Instructions) * f)
	r.Uops = uint64(float64(r.Uops) * f)
	r.IssuedUops = uint64(float64(r.IssuedUops) * f)
	for i := range r.Hist {
		r.Hist[i] = uint64(float64(r.Hist[i]) * f)
	}
	r.Cache.LLCMisses = uint64(float64(r.Cache.LLCMisses) * f)
	r.Cache.LLCHits = uint64(float64(r.Cache.LLCHits) * f)
	r.Cache.L2Misses = uint64(float64(r.Cache.L2Misses) * f)
	r.Cache.L2Hits = uint64(float64(r.Cache.L2Hits) * f)
	r.Cache.L1Misses = uint64(float64(r.Cache.L1Misses) * f)
	r.Cache.L1Hits = uint64(float64(r.Cache.L1Hits) * f)
	r.Cache.MemAccesses = uint64(float64(r.Cache.MemAccesses) * f)
	r.Cache.PrefetchFills = uint64(float64(r.Cache.PrefetchFills) * f)
	r.Cache.HWPrefetchFills = uint64(float64(r.Cache.HWPrefetchFills) * f)
	r.Cache.HWPrefetchMem = uint64(float64(r.Cache.HWPrefetchMem) * f)
	r.Cache.SWPrefetchMem = uint64(float64(r.Cache.SWPrefetchMem) * f)
	r.Vec512Uops = uint64(float64(r.Vec512Uops) * f)
	r.PrefetchUops = uint64(float64(r.PrefetchUops) * f)
	r.Elems = uint64(float64(r.Elems) * f)
	r.Stalls.scale(f, r.Cycles)
	for i := range r.PortBusy {
		r.PortBusy[i] = uint64(float64(r.PortBusy[i]) * f)
	}
	r.ROBOcc.scale(f)
	r.LoadQOcc.scale(f)
}

// entry is one in-flight instruction in the ROB.
type entry struct {
	bodyIdx    int32
	iter       int64
	issued     bool
	completion int64
}

// minHeap is a small binary min-heap of completion cycles.
type minHeap []int64

func (h *minHeap) push(v int64) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *minHeap) pop() int64 {
	old := *h
	v := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && (*h)[l] < (*h)[m] {
			m = l
		}
		if r < n && (*h)[r] < (*h)[m] {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
	return v
}

// drain removes all heap entries <= cycle and returns how many were removed.
func (h *minHeap) drain(cycle int64) int {
	n := 0
	for len(*h) > 0 && (*h)[0] <= cycle {
		h.pop()
		n++
	}
	return n
}

func (h *minHeap) min() (int64, bool) {
	if len(*h) == 0 {
		return 0, false
	}
	return (*h)[0], true
}

// Sim runs programs on one CPU model, reusing internal buffers across runs.
type Sim struct {
	cpu  *isa.CPU
	hier *cache.Hierarchy

	rob       []entry
	robHead   int
	robTail   int
	robCount  int
	uopsInROB int

	rs []int32 // indices into rob, age order, waiting to issue

	regRing [][]int64 // [regRingSlots][NumRegs]

	portFree []int64

	loadQ, storeQ minHeap
	lfb           minHeap
	inflight      minHeap

	// trace is the optional lifecycle recorder (SetTraceLog).
	trace *TraceLog
	// lastPort and lastLevel communicate the issue port and cache fill level
	// chosen by the most recent successful tryIssue to the trace hooks.
	lastPort  int8
	lastLevel int8

	// perturb, when non-nil, is the fault-injection model (SetPerturb).
	perturb *Perturb
	// hierErr records a cache-hierarchy construction failure; NewSim keeps
	// its infallible signature and Run surfaces the error instead.
	hierErr error

	// steady is the steady-state fast-path detector (see steady.go); its
	// scratch buffers persist across runs so hot sweep loops stay
	// allocation-free. fastOff disables the fast path (SetFastPath).
	steady  steadyState
	fastOff bool
}

// NewSim builds a simulator for a CPU with a fresh cache hierarchy. An
// invalid cache geometry does not fail here: the error is deferred and
// returned by the first Run (and exposed by Err), so call sites that
// construct simulators for the built-in CPU models stay non-fallible.
func NewSim(cpu *isa.CPU) *Sim {
	hier, err := cache.New(cpu)
	if err != nil {
		return &Sim{cpu: cpu, hierErr: fmt.Errorf("uarch: building cache hierarchy: %w", err)}
	}
	return &Sim{cpu: cpu, hier: hier}
}

// Err reports a deferred construction error (an invalid cache geometry in
// the CPU model). When non-nil, Hierarchy returns nil and Run fails.
func (s *Sim) Err() error { return s.hierErr }

// Hierarchy exposes the cache hierarchy (for warming working sets). It is
// nil when Err is non-nil.
func (s *Sim) Hierarchy() *cache.Hierarchy { return s.hier }

// SetPerturb installs (or, with nil, removes) a fault-injection model that
// jitters instruction latency/occupancy and injects transient
// port-unavailable cycles on every subsequent Run. Cache-latency and
// frequency-license jitter act through the CPU model instead: see
// Perturb.CPU.
func (s *Sim) SetPerturb(p *Perturb) { s.perturb = p }

// CPU returns the machine model.
func (s *Sim) CPU() *isa.CPU { return s.cpu }

// Run executes iters iterations of prog's loop body and returns the counter
// set. The cache hierarchy retains its contents across calls (reset it
// explicitly for a cold run); counters are deltas for this call.
func (s *Sim) Run(prog *Program, iters int64) (*Result, error) {
	res := &Result{}
	if err := s.RunInto(res, prog, iters); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run with caller-owned result storage: res is fully overwritten
// (its PortBusy backing array is reused when large enough), so hot sweep
// loops can run without per-call allocations.
func (s *Sim) RunInto(res *Result, prog *Program, iters int64) error {
	if s.hierErr != nil {
		return s.hierErr
	}
	if err := prog.Validate(); err != nil {
		return err
	}
	if iters <= 0 {
		return fmt.Errorf("uarch: iters must be positive, got %d", iters)
	}
	prog.prepare()
	s.reset(prog)
	statsBefore := s.hier.Stats()

	cpu := s.cpu
	pb := res.PortBusy[:0]
	*res = Result{Name: prog.Name}
	if cap(pb) < len(cpu.Ports) {
		pb = make([]uint64, len(cpu.Ports))
	} else {
		pb = pb[:len(cpu.Ports)]
		clear(pb)
	}
	res.PortBusy = pb
	res.ROBOcc.Cap = cpu.ROBSize
	res.LoadQOcc.Cap = cpu.LoadQueue
	body := prog.Body
	deps := prog.deps

	var cycle int64
	var dispatchIter int64
	var dispatchIdx int
	traceDone := false
	s.steady.begin(s, prog)

	for !traceDone || s.robCount > 0 {
		// Free memory-queue slots whose operations completed.
		s.loadQ.drain(cycle)
		s.storeQ.drain(cycle)
		s.lfb.drain(cycle)
		s.inflight.drain(cycle)

		// Steady-state fast path: at the first cycle observing each new
		// dispatch iteration (after the drains, so every queued completion
		// is in the future), look for an exact recurrence of the machine's
		// relative state and, on a match, extrapolate whole periods of the
		// loop at once.
		if s.steady.active && !traceDone && dispatchIter > s.steady.lastIter {
			s.steady.observe(s, res, &cycle, &dispatchIter, dispatchIdx, iters)
		}

		// Retire in order.
		retiredUops := 0
		for s.robCount > 0 {
			head := &s.rob[s.robHead]
			if !head.issued || head.completion > cycle {
				break
			}
			u := &body[head.bodyIdx]
			// Instructions wider than the retire bandwidth (e.g. gathers)
			// retire alone; otherwise respect the per-cycle budget.
			if retiredUops > 0 && retiredUops+u.Instr.Uops > cpu.RetireWidth {
				break
			}
			retiredUops += u.Instr.Uops
			res.Instructions++
			res.Uops += uint64(u.Instr.Uops)
			if s.trace != nil {
				s.trace.add(TraceEvent{Kind: TraceRetire, Cycle: cycle, Iter: head.iter, Body: head.bodyIdx, Name: u.Instr.Name, Port: -1})
			}
			s.uopsInROB -= u.Instr.Uops
			s.robHead = (s.robHead + 1) % len(s.rob)
			s.robCount--
		}

		// Top-down attribution: a cycle that retired µops is retiring; a
		// non-retiring cycle is charged to whatever blocks the oldest
		// in-flight instruction at this point (after retirement, before
		// issue, so the classification sees the state that stalled it).
		stall := stallRetiring
		if retiredUops == 0 {
			stall = s.classifyStall(body, deps, cycle)
		}

		// Issue from the scheduler in age order.
		issuedUops := 0
		issuedInstrs := 0
		if len(s.rs) > 0 {
			w := 0
			for ri := 0; ri < len(s.rs); ri++ {
				ei := s.rs[ri]
				if issuedInstrs >= issueInstrCap {
					s.rs[w] = ei
					w++
					continue
				}
				e := &s.rob[ei]
				u := &body[e.bodyIdx]
				if !s.srcsReady(e, &deps[e.bodyIdx], body, cycle) {
					s.rs[w] = ei
					w++
					continue
				}
				lat, ok := s.tryIssue(e, u, prog, cycle)
				if !ok {
					s.rs[w] = ei
					w++
					continue
				}
				e.issued = true
				e.completion = cycle + int64(lat)
				if u.Dst != NoReg {
					s.regRing[e.iter%regRingSlots][u.Dst] = e.completion
				}
				s.inflight.push(e.completion)
				if s.trace != nil {
					s.trace.add(TraceEvent{Kind: TraceIssue, Cycle: cycle, Dur: int64(lat), Iter: e.iter, Body: e.bodyIdx, Name: u.Instr.Name, Port: s.lastPort, Level: s.lastLevel})
					s.trace.add(TraceEvent{Kind: TraceComplete, Cycle: e.completion, Iter: e.iter, Body: e.bodyIdx, Name: u.Instr.Name, Port: s.lastPort, Level: s.lastLevel})
				}
				issuedUops += u.Instr.Uops
				issuedInstrs++
				if u.Instr.Width == isa.W512 && u.Instr.Class.IsVector() {
					res.Vec512Uops += uint64(u.Instr.Uops)
				}
				if u.Instr.Class == isa.Prefetch {
					res.PrefetchUops++
				}
			}
			s.rs = s.rs[:w]
		}
		if Debug && cycle < 300 {
			fmt.Printf("c%3d: rob=%d rs=%d issued=%d retired=%d dispIter=%d portFree=%v\n",
				cycle, s.robCount, len(s.rs), issuedInstrs, retiredUops, dispatchIter, s.portFree)
		}
		res.IssuedUops += uint64(issuedUops)
		if issuedUops >= HistBuckets {
			issuedUops = HistBuckets - 1
		}
		res.Hist[issuedUops]++

		// Dispatch new instructions into ROB + scheduler.
		dispatched := 0
		budget := cpu.DecodeWidth
		for !traceDone && budget > 0 {
			u := &body[dispatchIdx]
			if s.uopsInROB+u.Instr.Uops > cpu.ROBSize || len(s.rs) >= cpu.RSSize || s.robCount >= len(s.rob) {
				break
			}
			if dispatchIdx == 0 {
				slot := s.regRing[dispatchIter%regRingSlots]
				for i := range slot {
					slot[i] = notIssued
				}
			}
			s.rob[s.robTail] = entry{bodyIdx: int32(dispatchIdx), iter: dispatchIter}
			s.rs = append(s.rs, int32(s.robTail))
			if s.trace != nil {
				s.trace.add(TraceEvent{Kind: TraceDispatch, Cycle: cycle, Iter: dispatchIter, Body: int32(dispatchIdx), Name: u.Instr.Name, Port: -1})
			}
			s.robTail = (s.robTail + 1) % len(s.rob)
			s.robCount++
			s.uopsInROB += u.Instr.Uops
			budget -= u.Instr.Uops
			dispatched++
			dispatchIdx++
			if dispatchIdx == len(body) {
				dispatchIdx = 0
				dispatchIter++
				if dispatchIter == iters {
					traceDone = true
				}
			}
		}

		// Per-cycle observability accounting: stall bucket, structure
		// occupancy, port busyness.
		res.Stalls.add(stall, 1)
		res.ROBOcc.Record(s.uopsInROB, 1)
		res.LoadQOcc.Record(len(s.loadQ), 1)
		for i, f := range s.portFree {
			if f > cycle {
				res.PortBusy[i]++
			}
		}

		// Fast-forward through stall cycles.
		if issuedInstrs == 0 && dispatched == 0 && retiredUops == 0 {
			next := s.nextEvent(cycle)
			if next > cycle+1 {
				skipped := uint64(next - cycle - 1)
				res.Hist[0] += skipped
				// The skipped cycles stall for the same reason and at the
				// same occupancies as the current one.
				res.Stalls.add(stall, skipped)
				res.ROBOcc.Record(s.uopsInROB, skipped)
				res.LoadQOcc.Record(len(s.loadQ), skipped)
				for i, f := range s.portFree {
					if b := min(f, next) - cycle - 1; b > 0 {
						res.PortBusy[i] += uint64(b)
					}
				}
				cycle = next
				continue
			}
		}
		cycle++
	}

	res.Cycles = uint64(cycle)
	res.Elems = uint64(iters) * uint64(prog.ElemsPerIter)
	res.Cache = statsDelta(s.hier.Stats(), statsBefore)
	res.FreqGHz = EffectiveFreq(cpu, prog, res)
	recordTotals(res, s.steady.skippedCycles)

	if check.Enabled() {
		if err := s.steady.invariantErr; err != nil {
			return err
		}
		if err := res.SelfCheck(); err != nil {
			return err
		}
		if want := uint64(iters) * uint64(len(body)); res.Instructions != want {
			return fmt.Errorf("uarch: selfcheck %q: retired %d instructions, want iters*body = %d", prog.Name, res.Instructions, want)
		}
	}
	return nil
}

func statsDelta(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		L1Hits: a.L1Hits - b.L1Hits, L1Misses: a.L1Misses - b.L1Misses,
		L2Hits: a.L2Hits - b.L2Hits, L2Misses: a.L2Misses - b.L2Misses,
		LLCHits: a.LLCHits - b.LLCHits, LLCMisses: a.LLCMisses - b.LLCMisses,
		MemAccesses:     a.MemAccesses - b.MemAccesses,
		PrefetchFills:   a.PrefetchFills - b.PrefetchFills,
		HWPrefetchFills: a.HWPrefetchFills - b.HWPrefetchFills,
		HWPrefetchMem:   a.HWPrefetchMem - b.HWPrefetchMem,
		SWPrefetchMem:   a.SWPrefetchMem - b.SWPrefetchMem,
	}
}

func (s *Sim) reset(prog *Program) {
	robCap := s.cpu.ROBSize + 8
	if cap(s.rob) < robCap {
		s.rob = make([]entry, robCap)
	}
	s.rob = s.rob[:robCap]
	s.robHead, s.robTail, s.robCount, s.uopsInROB = 0, 0, 0, 0
	s.rs = s.rs[:0]
	if len(s.regRing) != regRingSlots {
		s.regRing = make([][]int64, regRingSlots)
	}
	// Grow each ring slot in place: slots keep their backing arrays across
	// runs, so alternating programs of different register counts (a pruning
	// search) stop reallocating the whole ring. Stale values are harmless —
	// a slot is cleared when its iteration dispatches, before any read.
	for i := range s.regRing {
		if cap(s.regRing[i]) < prog.NumRegs {
			s.regRing[i] = make([]int64, prog.NumRegs)
		} else {
			s.regRing[i] = s.regRing[i][:prog.NumRegs]
		}
	}
	if len(s.portFree) != len(s.cpu.Ports) {
		s.portFree = make([]int64, len(s.cpu.Ports))
	}
	for i := range s.portFree {
		s.portFree[i] = 0
	}
	s.loadQ = s.loadQ[:0]
	s.storeQ = s.storeQ[:0]
	s.lfb = s.lfb[:0]
	s.inflight = s.inflight[:0]
}

// srcsReady reports whether every source operand of e is available at cycle.
func (s *Sim) srcsReady(e *entry, d *depInfo, body []UOp, cycle int64) bool {
	for k := 0; k < 3; k++ {
		src := body[e.bodyIdx].Srcs[k]
		if src == NoReg {
			continue
		}
		var ready int64
		switch {
		case d.producer[k] >= 0:
			ready = s.regRing[e.iter%regRingSlots][body[d.producer[k]].Dst]
		case d.carried[k] >= 0:
			if e.iter == 0 {
				continue // pre-loop value, ready at start
			}
			ready = s.regRing[(e.iter-1)%regRingSlots][body[d.carried[k]].Dst]
		default:
			continue // loop-invariant
		}
		if ready == notIssued || ready > cycle {
			return false
		}
	}
	return true
}

// tryIssue attempts to claim execution resources for u at cycle; on success
// it returns the total result latency (including cache effects).
func (s *Sim) tryIssue(e *entry, u *UOp, prog *Program, cycle int64) (latency int, ok bool) {
	in := u.Instr
	baseLat := s.instrLatency(in)
	occ := int64(s.instrOccupancy(in))
	s.lastPort, s.lastLevel = -1, 0
	switch in.Class {
	case isa.Load:
		if len(s.loadQ) >= s.cpu.LoadQueue || len(s.lfb) >= s.cpu.LineFillBuffers {
			return 0, false
		}
		port, found := s.freePort(in.Class, cycle)
		if !found {
			return 0, false
		}
		addr := u.Addr.address(e.iter, int(u.Addr.LaneSel), prog.ElemsPerIter)
		extra, lvl := s.cacheExtra(addr)
		lat := baseLat + extra
		s.lastPort, s.lastLevel = int8(port), int8(lvl)
		s.portFree[port] = cycle + occ
		s.loadQ.push(cycle + int64(lat))
		if extra > 0 {
			s.lfb.push(cycle + int64(lat))
		}
		return lat, true

	case isa.GatherOp:
		// A gather's lane loads coalesce into roughly lanes/2 load-buffer
		// entries (line-combining in the fill buffers) and keep both load
		// ports busy for the occupancy window.
		lqSlots := in.Lanes / 2
		if lqSlots < 1 {
			lqSlots = 1
		}
		if len(s.loadQ)+lqSlots > s.cpu.LoadQueue || len(s.lfb) >= s.cpu.LineFillBuffers {
			return 0, false
		}
		p2, ok2 := s.loadPorts(cycle)
		if !ok2 {
			return 0, false
		}
		maxExtra := 0
		misses := 0
		s.lastLevel = 1
		for lane := 0; lane < in.Lanes; lane++ {
			addr := u.Addr.address(e.iter, lane, prog.ElemsPerIter)
			extra, lvl := s.cacheExtra(addr)
			if extra > maxExtra {
				maxExtra = extra
				s.lastLevel = int8(lvl)
			}
			if extra > 0 {
				misses++
			}
		}
		lat := baseLat + maxExtra
		s.lastPort = int8(p2[0])
		for _, p := range p2 {
			s.portFree[p] = cycle + occ
		}
		done := cycle + int64(lat)
		for i := 0; i < lqSlots; i++ {
			s.loadQ.push(done)
		}
		for i := 0; i < misses; i++ {
			s.lfb.push(done)
		}
		return lat, true

	case isa.Store:
		if len(s.storeQ) >= s.cpu.StoreQueue {
			return 0, false
		}
		port, found := s.freePort(in.Class, cycle)
		if !found {
			return 0, false
		}
		addr := u.Addr.address(e.iter, 0, prog.ElemsPerIter)
		_, lvl := s.hier.Access(addr)
		s.lastPort, s.lastLevel = int8(port), int8(lvl)
		s.portFree[port] = cycle + occ
		s.storeQ.push(cycle + int64(baseLat) + 4)
		return baseLat, true

	case isa.Prefetch:
		// Random-region prefetch fills consume line-fill buffers like
		// demand misses; a full LFB array stalls further prefetching (the
		// bandwidth bound that keeps prefetch-everything engines honest).
		// Sequential-stream prefetches are serviced by the L2 streamer path
		// and bypass the L1 fill buffers.
		isStream := u.Addr.Kind == AddrStride
		if !isStream && len(s.lfb) >= s.cpu.LineFillBuffers {
			return 0, false
		}
		port, found := s.freePort(isa.Prefetch, cycle)
		if !found {
			return 0, false
		}
		addr := u.Addr.address(e.iter, int(u.Addr.LaneSel), prog.ElemsPerIter)
		if lvl := s.hier.Prefetch(addr); lvl > 0 {
			s.lastLevel = int8(lvl)
			if !isStream {
				// Prefetch fills are fire-and-forget: the buffer frees when
				// the line arrives, overlapping better than demand misses
				// that hold their buffer until the consumer is satisfied.
				s.lfb.push(cycle + int64(s.fillLatency(lvl))/2)
			}
		}
		s.lastPort = int8(port)
		s.portFree[port] = cycle + occ
		return baseLat, true
	}

	// Arithmetic classes.
	if in.Width == isa.W512 && in.Class.IsVector() {
		return s.issue512(in, cycle)
	}
	port, found := s.freePort(in.Class, cycle)
	if !found {
		return 0, false
	}
	s.lastPort = int8(port)
	s.portFree[port] = cycle + occ
	return baseLat, true
}

// issue512 places a 512-bit vector µop on one of the 512-bit unit ports.
// Shuffles run on the (always 512-bit-capable) shuffle unit instead.
func (s *Sim) issue512(in *isa.Instr, cycle int64) (int, bool) {
	lat := s.instrLatency(in)
	occ := int64(s.instrOccupancy(in))
	if in.Class == isa.VecShuffle {
		for i := range s.cpu.Ports {
			if s.cpu.Ports[i].CanRun(isa.VecShuffle) && s.portFree[i] <= cycle && !s.portFaulted(i, cycle) {
				s.lastPort = int8(i)
				s.portFree[i] = cycle + occ
				return lat, true
			}
		}
		return 0, false
	}
	for _, p := range s.cpu.Vec512Ports {
		if s.portFree[p] <= cycle && !s.portFaulted(p, cycle) {
			s.lastPort = int8(p)
			s.portFree[p] = cycle + occ
			return lat, true
		}
	}
	return 0, false
}

// freePort finds a free port that accepts class c at cycle.
func (s *Sim) freePort(c isa.Class, cycle int64) (int, bool) {
	for i := range s.cpu.Ports {
		if s.cpu.Ports[i].CanRun(c) && s.portFree[i] <= cycle && !s.portFaulted(i, cycle) {
			return i, true
		}
	}
	return 0, false
}

// loadPorts claims both load ports for a gather.
func (s *Sim) loadPorts(cycle int64) ([]int, bool) {
	var ports []int
	for i := range s.cpu.Ports {
		if s.cpu.Ports[i].CanRun(isa.Load) {
			if s.portFree[i] > cycle || s.portFaulted(i, cycle) {
				return nil, false
			}
			ports = append(ports, i)
		}
	}
	return ports, len(ports) > 0
}

// instrLatency is the instruction's result latency under the active
// perturbation (the table value when none is installed).
func (s *Sim) instrLatency(in *isa.Instr) int {
	if s.perturb == nil {
		return in.Latency
	}
	return s.perturb.Latency(in)
}

// instrOccupancy is the instruction's port-occupancy (reciprocal
// throughput) under the active perturbation.
func (s *Sim) instrOccupancy(in *isa.Instr) int {
	if s.perturb == nil {
		return in.Occupancy
	}
	return s.perturb.Occupancy(in)
}

// portFaulted reports whether fault injection holds port unavailable at
// cycle. A faulted port stays claimable on later cycles, so the scheduler
// retries and the fast-forward loop in nextEvent cannot live-lock.
func (s *Sim) portFaulted(port int, cycle int64) bool {
	return s.perturb != nil && s.perturb.PortFault(port, cycle)
}

// fillLatency maps a fill-source level to its line-fill-buffer hold time.
func (s *Sim) fillLatency(level int) int {
	switch level {
	case 2:
		return s.cpu.L2.Latency
	case 3:
		return s.cpu.LLC.Latency
	default:
		return s.cpu.MemLatency
	}
}

// cacheExtra returns the additional latency (beyond the L1-hit latency baked
// into the instruction table) for accessing addr.
func (s *Sim) cacheExtra(addr uint64) (extra, level int) {
	lat, lvl := s.hier.Access(addr)
	e := lat - s.cpu.L1D.Latency
	if e < 0 {
		e = 0
	}
	return e, lvl
}

// nextEvent returns the next cycle at which progress can occur.
func (s *Sim) nextEvent(cycle int64) int64 {
	next := int64(math.MaxInt64)
	if m, ok := s.inflight.min(); ok && m < next {
		next = m
	}
	for _, f := range s.portFree {
		if f > cycle && f < next {
			next = f
		}
	}
	if m, ok := s.loadQ.min(); ok && m < next {
		next = m
	}
	if m, ok := s.storeQ.min(); ok && m < next {
		next = m
	}
	if m, ok := s.lfb.min(); ok && m < next {
		next = m
	}
	if next == int64(math.MaxInt64) {
		return cycle + 1
	}
	return next
}

// heavy512UtilThreshold is the sustained 512-bit-unit µop throughput (µops
// per cycle) above which the core enters the heavy AVX-512 license. A single
// 512-bit unit cannot exceed 1.0, so only parts with two units (and code
// that keeps both busy — the paper's "two SIMD statements" case) downclock.
const heavy512UtilThreshold = 1.5

// EffectiveFreq applies the frequency-license model: scalar turbo for
// scalar-only code, the AVX2/AVX-512 license for vector code, the heavy
// AVX-512 license when sustained 512-bit utilisation keeps two 512-bit units
// busy (the paper's observation that two SIMD statements downclock the
// core), and an uncore governor penalty proportional to software-prefetch
// density (the bandwidth-saturated regime measured for Voila).
func EffectiveFreq(cpu *isa.CPU, prog *Program, res *Result) float64 {
	fl := cpu.Freq
	f := fl.ScalarGHz
	switch {
	case res.Vec512Uops > 0 && res.Cycles > 0:
		util := float64(res.Vec512Uops) / float64(res.Cycles)
		if util >= heavy512UtilThreshold && len(cpu.Vec512Ports) >= 2 {
			f = fl.AVX512HeavyGHz
		} else {
			f = fl.AVX512GHz
		}
	case prog.VectorWidth == isa.W256 && prog.VectorStatements > 0:
		f = fl.AVX2GHz
	}
	if res.Instructions > 0 && res.PrefetchUops > 0 {
		density := float64(res.PrefetchUops) / float64(res.Instructions)
		f *= 1 - fl.UncoreGovPenalty*density
	}
	if f < fl.MinGHz {
		f = fl.MinGHz
	}
	return f
}

// Debug enables per-cycle tracing for development diagnostics.
var Debug bool
