package uarch

import "hef/internal/isa"

// Response-verified period replay.
//
// The steady-state fast path in steady.go requires iteration-invariant
// addresses (Program.fastEligible): only then does a recurring machine state
// imply a recurring future, because the cache sees the same lines every
// iteration. Real translated operators — columnar scans, hash probes — are
// never eligible: their streams advance and their probes jump, so the
// hierarchy state never recurs and every iteration simulates cycle by cycle.
//
// Replay mode removes the eligibility requirement by splitting the machine
// in two. The core half (ROB, scheduler, register ring, port horizons,
// memory queues) contains no addresses: its relative state digests
// identically for any program, and between two equal boundary states the
// core's trajectory is a deterministic function of one external input — the
// sequence of cache responses feeding loads, gathers, and prefetches. So
// once the core-only digest recurs with period p, the simulator records one
// more period slowly, capturing every hierarchy call with its response, and
// verifies the digest recurs again. From then on it stops simulating the
// core entirely: each subsequent period issues only the recorded hierarchy
// calls — with true addresses recomputed for the advancing iteration — and
// compares the live responses against the recorded ones. While they match,
// the core must retrace the recorded period exactly (by induction from the
// boundary state), so its counters extrapolate by exact integer deltas and
// its state shifts by (p iterations, d cycles) per period, while the
// hierarchy advances genuinely — contents, counters, prefetcher and all —
// by servicing the real access sequence. A sequential stream that hits L1
// behind the hardware prefetcher replays for thousands of periods at the
// cost of a handful of cache probes each.
//
// When a response deviates — a stream crosses into a cold line, a probe
// misses where the recorded period hit — the deviating period's hierarchy
// mutations are rolled back through the cache journal, leaving the machine
// exactly at the last boundary, and the slow path resumes; detection then
// re-arms from the snapshot ring. Every path is bit-identical to the slow
// simulator: the differential suites in steady_test.go exercise both modes
// and the goldens pin the end-to-end bytes.

// recCall is one recorded hierarchy call: which body µop issued it, the
// iteration offset from the recording boundary, the lane addressed, and the
// response the core consumed (cache-extra latency for loads and gather
// lanes, fill level for prefetches; stores feed nothing back).
type recCall struct {
	b         int32
	iterDelta int32
	lane      int32
	want      int32
}

// record captures one hierarchy call during the recording window.
func (st *steadyState) record(b int32, iter int64, lane, want int) {
	st.recCalls = append(st.recCalls, recCall{
		b:         b,
		iterDelta: int32(iter - st.recStartIter),
		lane:      int32(lane),
		want:      int32(want),
	})
}

// startRecording arms the recording window at a boundary whose digest
// matched a ring snapshot with period p and cycle delta d.
func (st *steadyState) startRecording(res *Result, digest []byte, p, d, iter, cycle int64) {
	st.recording = true
	st.recStartIter, st.recStartCycle = iter, cycle
	st.recP, st.recD = p, d
	st.recDigest = append(st.recDigest[:0], digest...)
	st.recCalls = st.recCalls[:0]
	pb := st.recRes.PortBusy[:0]
	st.recRes = *res
	st.recRes.PortBusy = append(pb, res.PortBusy...)
}

// replayRun fast-forwards whole periods from a verified recording boundary:
// replay hierarchy calls period by period until the responses deviate or
// only the tail remains, then extrapolate the core across the replayed span.
func (st *steadyState) replayRun(s *Sim, res *Result, cycle, dispatchIter *int64, dispatchIdx int, minIter, iters int64) {
	p, d := st.recP, st.recD
	// Leave at least one iteration of tail so the loop-exit transition and
	// the ROB drain are simulated, not extrapolated.
	maxK := (iters - 1 - *dispatchIter) / p
	if maxK <= 0 {
		st.active = false
		return
	}
	base := *dispatchIter
	var k int64
	for k < maxK {
		s.hier.BeginJournal()
		if !st.replayPeriod(s, base+k*p) {
			s.hier.RollbackJournal()
			break
		}
		s.hier.CommitJournal()
		k++
	}
	if k > 0 {
		addScaledSelfDelta(res, &st.recRes, uint64(k))
		s.shiftSteady(k*p, k*d, minIter, *dispatchIter, dispatchIdx)
		*cycle += k * d
		*dispatchIter += k * p
		st.skippedIters += k * p
		st.skippedCycles += k * d
		totalReplayPeriods.Add(uint64(k))
	}
	if k == maxK {
		st.active = false
		return
	}
	// A response deviated: the deviating period was rolled back, the machine
	// sits exactly at the last good boundary, and the slow path resumes with
	// detection still armed.
}

// replayPeriod re-issues one period's recorded hierarchy calls with the true
// addresses of the period starting at baseIter, comparing each response the
// core would consume against the recording. It reports whether the whole
// period matched; on a mismatch the caller rolls back its mutations.
func (st *steadyState) replayPeriod(s *Sim, baseIter int64) bool {
	sk := s.skel
	epi := sk.elemsPerIter
	for i := range st.recCalls {
		c := &st.recCalls[i]
		a := &sk.addr[c.b]
		addr := a.address(baseIter+int64(c.iterDelta), int(c.lane), epi)
		switch class := sk.class[c.b]; {
		case class == isa.Store:
			// A store's response never reaches the core (its queue slot uses
			// the instruction latency alone), so the access only has to
			// advance the hierarchy.
			s.hier.Access(addr)
		case class == isa.Prefetch:
			lvl := s.hier.Prefetch(addr)
			if int32(lvl) != c.want && !sk.isStream[c.b] {
				return false
			}
		default: // a load, or one gather lane
			extra, _ := s.cacheExtra(addr)
			if int32(extra) != c.want {
				return false
			}
		}
	}
	return true
}
