package uarch

import (
	"sync"
	"sync/atomic"

	"hef/internal/fpenc"
	"hef/internal/isa"
)

// Schedule skeletons.
//
// Everything the per-cycle loop needs to know about a program that does not
// depend on the machine's dynamic state is a pure function of the program's
// content and of the (latency, occupancy) half of the active perturbation:
// instruction classes, perturb-resolved latencies and occupancies, µop
// counts, the dependence structure, and the address streams. A skeleton is
// that data flattened into structure-of-arrays form, so the hot loop indexes
// parallel slices instead of chasing Body → UOp → Instr pointers and
// re-hashing instruction names per issue under a perturbed model.
//
// Skeletons are immutable once built and shared process-wide through a
// content-addressed cache keyed by the program fingerprint (the same
// canonical encoding internal/memo keys measurements by) plus the normalized
// timing perturbation. Re-simulating one translated program under K
// perturbed CPU models — a hefsens sweep, robust.Analyze trials — decodes
// and binds it once per distinct (program, LatJitter, OccJitter, Seed)
// triple instead of once per run. Port-fault, cache, and frequency jitter do
// not enter the key: they act through dynamic per-cycle checks or through a
// cloned CPU model, never through the skeleton's tables.

// srcKind classifies where one source operand's value comes from.
const (
	srcNone    uint8 = iota // no operand, or loop-invariant: always ready
	srcSame                 // produced earlier in the same iteration
	srcCarried              // produced by the previous iteration (loop-carried)
)

// skeleton is the bound, machine-independent form of one program under one
// timing perturbation. All per-µop slices are indexed by body position;
// src-operand slices are flattened 3-wide.
type skeleton struct {
	// body aliases the Body of the program the skeleton was built from;
	// cold paths (trace events, debug printing) read instruction names and
	// comments through it. Two programs with identical content share a
	// skeleton, and identical content implies identical names.
	body []UOp

	class []isa.Class
	// lat and occ are the result latency and port occupancy with the
	// skeleton's LatJitter/OccJitter draws already applied.
	lat  []int32
	occ  []int32
	uops []int32
	// lqSlots is the gather load-queue footprint (Lanes/2, min 1); zero for
	// non-gather classes.
	lqSlots []int32
	lanes   []int32
	// isStream marks software prefetches with a sequential (AddrStride)
	// address pattern, which bypass the line-fill buffers.
	isStream []bool
	// w512 marks 512-bit vector µops (they issue on the Vec512 unit ports
	// and count toward the frequency license).
	w512 []bool
	addr []AddrSpec
	dst  []int16

	// srcKind/srcReg/srcMem describe operand k of body µop i at index i*3+k:
	// the dependence kind, the architectural register read (equal to the
	// producer's Dst for same-iteration and carried operands), and whether
	// the producer is a memory-class instruction (for stall attribution).
	srcKind []uint8
	srcReg  []int16
	srcMem  []bool

	numRegs      int
	bodyLen      int
	elemsPerIter int
	fastEligible bool
	// srcSafe marks body µops whose readiness the event-driven scheduler
	// tracks exactly: every tracked operand reads a register with exactly one
	// writer in the body (so the sampled producer completion is final — no
	// other writer can rewrite the watched cell while the consumer waits)
	// whose latency is at least 1 (so an issue can never make a dependent
	// ready within the same cycle's scan). Unsafe µops — accumulator chains
	// redefine their pinned register every unrolled pack — are instead
	// re-sampled exhaustively on every scan.
	srcSafe []bool
}

// skelKey identifies a skeleton: program content × normalized timing
// perturbation.
type skelKey [16]byte

// normalizePerturb reduces a perturbation to the triple that affects the
// skeleton's tables. With both timing jitters zero the seed is irrelevant
// (factor(·, 0) == 1), so all such runs — including pure port-fault or
// cache/frequency jitter configurations — share the unperturbed skeleton.
func normalizePerturb(p *Perturb) (lj, oj float64, seed uint64) {
	if p == nil || (p.LatJitter == 0 && p.OccJitter == 0) {
		return 0, 0, 0
	}
	return p.LatJitter, p.OccJitter, p.Seed
}

func skeletonKey(prog *Program, lj, oj float64, seed uint64) skelKey {
	var e fpenc.E
	e.Buf = make([]byte, 0, 512)
	e.F64(lj)
	e.F64(oj)
	e.U64(seed)
	prog.AppendFingerprint(&e)
	return fpenc.Sum128(e.Buf)
}

// The process-wide skeleton cache. Eviction is clear-on-full: skeletons are
// content-addressed and rebuild identically, so dropping the whole map on
// overflow is safe and keeps the policy trivial.
const skelCacheCap = 4096

var (
	skelMu    sync.RWMutex
	skelCache = make(map[skelKey]*skeleton)

	skelHits   atomic.Uint64
	skelMisses atomic.Uint64
)

// SkeletonCacheLen reports the number of cached skeletons. Test-only.
func SkeletonCacheLen() int {
	skelMu.RLock()
	defer skelMu.RUnlock()
	return len(skelCache)
}

// lookupSkeleton returns the shared skeleton for (prog, lj, oj, seed),
// building and caching it on first use.
func lookupSkeleton(prog *Program, lj, oj float64, seed uint64) *skeleton {
	key := skeletonKey(prog, lj, oj, seed)
	skelMu.RLock()
	sk := skelCache[key]
	skelMu.RUnlock()
	if sk != nil {
		skelHits.Add(1)
		return sk
	}
	skelMisses.Add(1)
	sk = buildSkeleton(prog, lj, oj, seed)
	skelMu.Lock()
	if have, ok := skelCache[key]; ok {
		sk = have // lost a build race; share the first one in
	} else {
		if len(skelCache) >= skelCacheCap {
			skelCache = make(map[skelKey]*skeleton)
		}
		skelCache[key] = sk
	}
	skelMu.Unlock()
	return sk
}

// buildSkeleton flattens prog into SoA form with the timing perturbation
// resolved. It runs once per distinct (program, perturbation) and is the only
// place instruction names are hashed.
func buildSkeleton(prog *Program, lj, oj float64, seed uint64) *skeleton {
	prog.prepare()
	var p *Perturb
	if lj != 0 || oj != 0 {
		p = &Perturb{Seed: seed, LatJitter: lj, OccJitter: oj}
	}
	n := len(prog.Body)
	sk := &skeleton{
		body:         prog.Body,
		class:        make([]isa.Class, n),
		lat:          make([]int32, n),
		occ:          make([]int32, n),
		uops:         make([]int32, n),
		lqSlots:      make([]int32, n),
		lanes:        make([]int32, n),
		isStream:     make([]bool, n),
		w512:         make([]bool, n),
		addr:         make([]AddrSpec, n),
		dst:          make([]int16, n),
		srcKind:      make([]uint8, 3*n),
		srcReg:       make([]int16, 3*n),
		srcMem:       make([]bool, 3*n),
		numRegs:      prog.NumRegs,
		bodyLen:      n,
		elemsPerIter: prog.ElemsPerIter,
		fastEligible: prog.fastEligible,
	}
	for i := range prog.Body {
		u := &prog.Body[i]
		in := u.Instr
		sk.class[i] = in.Class
		if p == nil {
			sk.lat[i] = int32(in.Latency)
			sk.occ[i] = int32(in.Occupancy)
		} else {
			sk.lat[i] = int32(p.Latency(in))
			sk.occ[i] = int32(p.Occupancy(in))
		}
		sk.uops[i] = int32(in.Uops)
		sk.lanes[i] = int32(in.Lanes)
		if in.Class == isa.GatherOp {
			lq := int32(in.Lanes / 2)
			if lq < 1 {
				lq = 1
			}
			sk.lqSlots[i] = lq
		}
		sk.isStream[i] = in.Class == isa.Prefetch && u.Addr.Kind == AddrStride
		sk.w512[i] = in.Width == isa.W512 && in.Class.IsVector()
		sk.addr[i] = u.Addr
		sk.dst[i] = u.Dst
		d := &prog.deps[i]
		for k := 0; k < 3; k++ {
			var prod int32
			switch {
			case d.producer[k] >= 0:
				sk.srcKind[i*3+k] = srcSame
				prod = d.producer[k]
			case d.carried[k] >= 0:
				sk.srcKind[i*3+k] = srcCarried
				prod = d.carried[k]
			default:
				sk.srcKind[i*3+k] = srcNone
				continue
			}
			sk.srcReg[i*3+k] = prog.Body[prod].Dst
			sk.srcMem[i*3+k] = prog.Body[prod].Instr.Class.IsMemory()
		}
	}
	writerCnt := make([]int32, prog.NumRegs)
	writerLat := make([]int32, prog.NumRegs)
	for i := range prog.Body {
		if d := prog.Body[i].Dst; d != NoReg {
			writerCnt[d]++
			writerLat[d] = sk.lat[i]
		}
	}
	sk.srcSafe = make([]bool, n)
	for i := 0; i < n; i++ {
		safe := true
		for k := 0; k < 3; k++ {
			if sk.srcKind[i*3+k] == srcNone {
				continue
			}
			if r := sk.srcReg[i*3+k]; writerCnt[r] != 1 || writerLat[r] < 1 {
				safe = false
				break
			}
		}
		sk.srcSafe[i] = safe
	}
	return sk
}

// bind attaches the skeleton for (prog, perturb) to the simulator and sizes
// the register slab for its register count. The common case — re-running the
// program bound last time under the same timing perturbation — is a pointer
// comparison: no validation, no hashing, no allocation.
func (s *Sim) bind(prog *Program) error {
	lj, oj, seed := normalizePerturb(s.perturb)
	if s.skel != nil && s.skelProg == prog && s.skelLat == lj && s.skelOcc == oj && s.skelSeed == seed {
		skelHits.Add(1)
		return nil
	}
	if err := prog.Validate(); err != nil {
		return err
	}
	sk := lookupSkeleton(prog, lj, oj, seed)
	s.skel = sk
	s.skelProg = prog
	s.skelLat, s.skelOcc, s.skelSeed = lj, oj, seed
	if need := regRingSlots * sk.numRegs; cap(s.slab) < need {
		s.slab = make([]int64, need)
		s.watchHead = make([]int32, need)
	} else {
		s.slab = s.slab[:need]
		s.watchHead = s.watchHead[:need]
	}
	if n := sk.bodyLen; cap(s.blockedGen) < n {
		s.blockedGen = make([]int64, n)
		s.blockedRetry = make([]int64, n)
	} else {
		s.blockedGen = s.blockedGen[:n]
		s.blockedRetry = s.blockedRetry[:n]
	}
	return nil
}
