package uarch

import (
	"bytes"
	"encoding/binary"
	"slices"

	"hef/internal/cache"
	"hef/internal/check"
	"hef/internal/isa"
)

// Steady-state fast path.
//
// A loop body whose memory addresses do not depend on the iteration number
// (Program.fastEligible) drives the machine into a periodic regime: once the
// pipeline's *relative* state — ROB contents, scheduler order, register
// readiness, port horizons, memory-queue completions, and the reachable
// cache/prefetcher state — recurs at an iteration-dispatch boundary, every
// subsequent period replays the same cycle-by-cycle trajectory shifted by a
// fixed (iterations, cycles) delta. Run therefore digests the relative state
// at each boundary; on an exact recurrence it adds k periods' worth of
// counter deltas, shifts the live state forward by k*(P iterations, D
// cycles), and resumes the normal loop for the tail. The result is
// bit-identical to the slow path (see steady_test.go's differential tests).
//
// The fast path turns itself off when a trace log is attached (events carry
// absolute cycles), when Debug printing is on, and when port-fault injection
// is active (faults hash the absolute cycle, so state recurrence does not
// imply trajectory recurrence). Latency/occupancy perturbation keys on the
// instruction name and is safe.

const (
	// steadyRing is how many recent boundary snapshots are kept: recurrences
	// with periods up to steadyRing iterations are detected.
	steadyRing = 8
	// steadyMaxBoundaries bounds the snapshot work on programs that never
	// settle; past it the detector gives up for the rest of the run.
	steadyMaxBoundaries = 512
)

// steadySnap is one stored boundary snapshot. Its buffers are reused across
// boundaries and runs.
type steadySnap struct {
	valid    bool
	iter     int64
	cycle    int64
	digest   []byte
	res      Result
	stats    cache.Stats
	accessNo uint64
}

// steadyState is the per-Sim detector; scratch persists across runs so the
// steady path itself allocates nothing once warm.
type steadyState struct {
	active   bool
	lastIter int64
	seen     int
	ring     [steadyRing]steadySnap
	next     int

	addrs   []uint64
	lines   []uint64
	buf     []byte
	heapTmp []int64
	regTmp  []int64

	skippedIters  int64
	skippedCycles int64

	// invariantErr records a steadyDeltaCheck violation found while
	// extrapolating (when self-checks are enabled); RunInto surfaces it as
	// the run's error.
	invariantErr error
}

// SetFastPath enables or disables the steady-state fast path (default
// enabled). Disabling forces every Run onto the full cycle-by-cycle path;
// the differential tests use it to check bit-identity.
func (s *Sim) SetFastPath(on bool) { s.fastOff = !on }

// FastForwarded reports how many iterations and cycles the most recent Run
// skipped by steady-state extrapolation (both zero when the full path ran).
func (s *Sim) FastForwarded() (iters, cycles int64) {
	return s.steady.skippedIters, s.steady.skippedCycles
}

// begin arms the detector for one Run and precomputes the cache lines the
// program (and the hardware prefetcher chasing it) can touch.
func (st *steadyState) begin(s *Sim, prog *Program) {
	st.skippedIters, st.skippedCycles = 0, 0
	st.active = false
	st.invariantErr = nil
	if s.fastOff || !prog.fastEligible || s.trace != nil || Debug {
		return
	}
	if s.perturb != nil && s.perturb.PortFaultRate > 0 {
		return
	}
	st.active = true
	st.lastIter = 0
	st.seen = 0
	st.next = 0
	for i := range st.ring {
		st.ring[i].valid = false
	}
	st.addrs = st.addrs[:0]
	for i := range prog.Body {
		u := &prog.Body[i]
		if !u.Instr.Class.IsMemory() {
			continue
		}
		// Eligibility makes every address iteration-invariant, so iteration
		// 0 enumerates the whole footprint.
		switch u.Instr.Class {
		case isa.GatherOp:
			for lane := 0; lane < u.Instr.Lanes; lane++ {
				st.addrs = append(st.addrs, u.Addr.address(0, lane, prog.ElemsPerIter))
			}
		case isa.Store:
			st.addrs = append(st.addrs, u.Addr.address(0, 0, prog.ElemsPerIter))
		default: // Load, Prefetch
			st.addrs = append(st.addrs, u.Addr.address(0, int(u.Addr.LaneSel), prog.ElemsPerIter))
		}
	}
	st.lines = s.hier.SteadyLines(st.addrs, st.lines[:0])
}

// observe runs at one iteration-dispatch boundary: digest the relative
// state, extrapolate on a recurrence, or remember the snapshot.
func (st *steadyState) observe(s *Sim, res *Result, cycle, dispatchIter *int64, dispatchIdx int, iters int64) {
	st.lastIter = *dispatchIter
	st.seen++
	if st.seen > steadyMaxBoundaries {
		st.active = false
		return
	}
	digest, minIter, ok := st.encode(s, *cycle, *dispatchIter, dispatchIdx)
	if !ok {
		return
	}
	for i := range st.ring {
		snap := &st.ring[i]
		if !snap.valid || !bytes.Equal(snap.digest, digest) {
			continue
		}
		p := *dispatchIter - snap.iter
		d := *cycle - snap.cycle
		if p <= 0 || d <= 0 {
			continue
		}
		// Leave at least one iteration of tail so the loop-exit transition
		// and the ROB drain are simulated, not extrapolated.
		k := (iters - 1 - *dispatchIter) / p
		if k <= 0 {
			st.active = false
			return
		}
		if check.Enabled() {
			// Audit the period's counter delta before multiplying it by k:
			// the fast path must extrapolate exactly what the slow path
			// would have accumulated.
			if err := steadyDeltaCheck(res, &snap.res, d); err != nil {
				st.invariantErr = err
			}
		}
		addScaledSelfDelta(res, &snap.res, uint64(k))
		s.hier.AdvanceSteady(k, statsDelta(s.hier.Stats(), snap.stats), s.hier.AccessNo()-snap.accessNo)
		s.shiftSteady(k*p, k*d, minIter, *dispatchIter, dispatchIdx)
		*cycle += k * d
		*dispatchIter += k * p
		st.skippedIters, st.skippedCycles = k*p, k*d
		st.active = false
		return
	}
	snap := &st.ring[st.next]
	st.next = (st.next + 1) % steadyRing
	snap.valid = true
	snap.iter, snap.cycle = *dispatchIter, *cycle
	snap.digest = append(snap.digest[:0], digest...)
	pb := snap.res.PortBusy[:0]
	snap.res = *res
	snap.res.PortBusy = append(pb, res.PortBusy...)
	snap.stats = s.hier.Stats()
	snap.accessNo = s.hier.AccessNo()
}

// encode canonicalises the machine state relative to (cycle, dispatchIter).
// Completion cycles at or before the current cycle are clamped to zero (all
// "already available" states behave identically), iteration numbers are
// taken relative to the dispatch front, and ROB positions relative to the
// head. It refuses (ok=false) while iteration 0 is still in flight, whose
// loop-carried reads are special-cased by srcsReady.
func (st *steadyState) encode(s *Sim, cycle, dispatchIter int64, dispatchIdx int) (digest []byte, minIter int64, ok bool) {
	buf := st.buf[:0]
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }

	minIter = dispatchIter
	u64(uint64(dispatchIdx))
	u64(uint64(s.robCount))
	for idx := 0; idx < s.robCount; idx++ {
		e := &s.rob[(s.robHead+idx)%len(s.rob)]
		if e.iter < minIter {
			minIter = e.iter
		}
		u64(uint64(e.bodyIdx))
		u64(uint64(dispatchIter - e.iter))
		if e.issued {
			c := e.completion - cycle
			if c < 0 {
				c = 0
			}
			u64(1)
			u64(uint64(c))
		} else {
			u64(0)
			u64(0)
		}
	}
	if minIter < 1 {
		st.buf = buf
		return nil, 0, false
	}
	u64(uint64(s.uopsInROB))
	u64(uint64(len(s.rs)))
	for _, ri := range s.rs {
		u64(uint64((int(ri) - s.robHead + len(s.rob)) % len(s.rob)))
	}
	for _, f := range s.portFree {
		c := f - cycle
		if c < 0 {
			c = 0
		}
		u64(uint64(c))
	}
	// Heap layout is irrelevant to behaviour (drain removes every entry at
	// or below the cycle, min only reads the minimum), so the multiset of
	// pending completions is the canonical form.
	for _, h := range []*minHeap{&s.loadQ, &s.storeQ, &s.lfb, &s.inflight} {
		u64(uint64(len(*h)))
		tmp := append(st.heapTmp[:0], *h...)
		slices.Sort(tmp)
		st.heapTmp = tmp
		for _, v := range tmp {
			u64(uint64(v - cycle))
		}
	}
	// Live register-ring window: slots minIter-1 (loop-carried reads of the
	// oldest in-flight iteration) up to the dispatch front. The front
	// iteration's slot is live only once its first instruction has
	// dispatched (which cleared it); before that it holds dead values from
	// regRingSlots iterations ago.
	hi := dispatchIter
	if dispatchIdx > 0 {
		hi = dispatchIter + 1
	}
	for j := minIter - 1; j < hi; j++ {
		for _, v := range s.regRing[j%regRingSlots] {
			switch {
			case v == notIssued:
				u64(^uint64(0))
			case v <= cycle:
				u64(0)
			default:
				u64(uint64(v - cycle))
			}
		}
	}
	buf = s.hier.AppendSteadyState(buf, st.lines)
	st.buf = buf
	return buf, minIter, true
}

// shiftSteady moves the live machine state forward by kp iterations and kd
// cycles without simulating them: every absolute cycle shifts by kd, every
// iteration number by kp, and the live register-ring window rotates to the
// slots its shifted iteration numbers index.
func (s *Sim) shiftSteady(kp, kd, minIter, dispatchIter int64, dispatchIdx int) {
	for idx := 0; idx < s.robCount; idx++ {
		e := &s.rob[(s.robHead+idx)%len(s.rob)]
		e.iter += kp
		if e.issued {
			e.completion += kd
		}
	}
	nr := 0
	if len(s.regRing) > 0 {
		nr = len(s.regRing[0])
	}
	hi := dispatchIter // exclusive upper slot is hi
	if dispatchIdx > 0 {
		hi = dispatchIter + 1
	}
	w := int(hi - minIter + 1)
	need := w * nr
	if cap(s.steady.regTmp) < need {
		s.steady.regTmp = make([]int64, need)
	}
	tmp := s.steady.regTmp[:need]
	for i := 0; i < w; i++ {
		copy(tmp[i*nr:(i+1)*nr], s.regRing[(minIter-1+int64(i))%regRingSlots])
	}
	for i := 0; i < w; i++ {
		dst := s.regRing[(minIter-1+int64(i)+kp)%regRingSlots]
		for r, v := range tmp[i*nr : (i+1)*nr] {
			if v != notIssued {
				v += kd
			}
			dst[r] = v
		}
	}
	for _, h := range []*minHeap{&s.loadQ, &s.storeQ, &s.lfb, &s.inflight} {
		for i := range *h {
			(*h)[i] += kd
		}
	}
	for i := range s.portFree {
		s.portFree[i] += kd
	}
}

// addScaledSelfDelta adds k times the counter delta accumulated since base
// (res - base) onto res, in exact integer arithmetic — the counter half of
// replaying k steady-state periods.
func addScaledSelfDelta(res, base *Result, k uint64) {
	res.Instructions += k * (res.Instructions - base.Instructions)
	res.Uops += k * (res.Uops - base.Uops)
	res.IssuedUops += k * (res.IssuedUops - base.IssuedUops)
	for i := range res.Hist {
		res.Hist[i] += k * (res.Hist[i] - base.Hist[i])
	}
	res.Vec512Uops += k * (res.Vec512Uops - base.Vec512Uops)
	res.PrefetchUops += k * (res.PrefetchUops - base.PrefetchUops)
	res.Stalls.Retiring += k * (res.Stalls.Retiring - base.Stalls.Retiring)
	res.Stalls.Frontend += k * (res.Stalls.Frontend - base.Stalls.Frontend)
	res.Stalls.BackendPort += k * (res.Stalls.BackendPort - base.Stalls.BackendPort)
	res.Stalls.Memory += k * (res.Stalls.Memory - base.Stalls.Memory)
	res.Stalls.Dependency += k * (res.Stalls.Dependency - base.Stalls.Dependency)
	for i := range res.PortBusy {
		res.PortBusy[i] += k * (res.PortBusy[i] - base.PortBusy[i])
	}
	for i := range res.ROBOcc.Buckets {
		res.ROBOcc.Buckets[i] += k * (res.ROBOcc.Buckets[i] - base.ROBOcc.Buckets[i])
	}
	for i := range res.LoadQOcc.Buckets {
		res.LoadQOcc.Buckets[i] += k * (res.LoadQOcc.Buckets[i] - base.LoadQOcc.Buckets[i])
	}
}
