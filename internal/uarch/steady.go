package uarch

import (
	"bytes"
	"encoding/binary"
	"slices"

	"hef/internal/cache"
	"hef/internal/check"
	"hef/internal/isa"
)

// Steady-state fast path.
//
// A loop body whose memory addresses do not depend on the iteration number
// (Program.fastEligible) drives the machine into a periodic regime: once the
// pipeline's *relative* state — ROB contents, scheduler order, register
// readiness, port horizons, memory-queue completions, and the reachable
// cache/prefetcher state — recurs at an iteration-dispatch boundary, every
// subsequent period replays the same cycle-by-cycle trajectory shifted by a
// fixed (iterations, cycles) delta. Run therefore digests the relative state
// at each boundary; on an exact recurrence it adds k periods' worth of
// counter deltas, shifts the live state forward by k*(P iterations, D
// cycles), and resumes the normal loop for the tail. The result is
// bit-identical to the slow path (see steady_test.go's differential tests).
//
// The fast path turns itself off when a trace log is attached (events carry
// absolute cycles), when Debug printing is on, and when port-fault injection
// is active (faults hash the absolute cycle, so state recurrence does not
// imply trajectory recurrence). Latency/occupancy perturbation keys on the
// instruction name and is safe.

const (
	// steadyRing is how many recent boundary snapshots are kept: recurrences
	// with periods up to steadyRing iterations are detected.
	steadyRing = 8
	// steadyMaxBoundaries bounds the snapshot work on programs that never
	// settle; past it the detector gives up for the rest of the run.
	steadyMaxBoundaries = 512
)

// steadySnap is one stored boundary snapshot. Its buffers are reused across
// boundaries and runs.
type steadySnap struct {
	valid    bool
	iter     int64
	cycle    int64
	digest   []byte
	res      Result
	stats    cache.Stats
	accessNo uint64
}

// steadyState is the per-Sim detector; scratch persists across runs so the
// steady path itself allocates nothing once warm.
type steadyState struct {
	active   bool
	lastIter int64
	seen     int
	ring     [steadyRing]steadySnap
	next     int

	addrs   []uint64
	lines   []uint64
	buf     []byte
	heapTmp []int64
	regTmp  []int64
	whTmp   []int32

	skippedIters  int64
	skippedCycles int64

	// replayMode marks a non-fastEligible run: the digest covers the core
	// alone and recurrences are exploited by response-verified period replay
	// (see replay.go) instead of a wholesale state jump.
	replayMode bool
	// recording is set while the period after a detected recurrence is
	// re-simulated slowly with every hierarchy call captured; tryIssue's
	// memory paths consult it.
	recording    bool
	recStartIter int64
	recStartCycle int64
	recP, recD   int64
	recDigest    []byte
	recRes       Result
	recCalls     []recCall

	// invariantErr records a steadyDeltaCheck violation found while
	// extrapolating (when self-checks are enabled); RunInto surfaces it as
	// the run's error.
	invariantErr error
}

// SetFastPath enables or disables the steady-state fast path (default
// enabled). Disabling forces every Run onto the full cycle-by-cycle path;
// the differential tests use it to check bit-identity.
func (s *Sim) SetFastPath(on bool) { s.fastOff = !on }

// FastForwarded reports how many iterations and cycles the most recent Run
// skipped by steady-state extrapolation (both zero when the full path ran).
func (s *Sim) FastForwarded() (iters, cycles int64) {
	return s.steady.skippedIters, s.steady.skippedCycles
}

// begin arms the detector for one Run and precomputes the cache lines the
// program (and the hardware prefetcher chasing it) can touch.
func (st *steadyState) begin(s *Sim, prog *Program) {
	st.skippedIters, st.skippedCycles = 0, 0
	st.active = false
	st.recording = false
	st.invariantErr = nil
	if s.fastOff || s.trace != nil || Debug {
		return
	}
	if s.perturb != nil && s.perturb.PortFaultRate > 0 {
		return
	}
	st.active = true
	// Eligibility is read from the bound skeleton: on a skeleton-cache hit
	// the program's own lazy prepare() never ran, so prog.fastEligible may be
	// stale-zero while the skeleton carries the prepared value. Ineligible
	// programs run in replay mode: core-only digests, response-verified
	// period replay instead of a state jump (see replay.go).
	st.replayMode = !s.skel.fastEligible
	st.lastIter = 0
	st.seen = 0
	st.next = 0
	for i := range st.ring {
		st.ring[i].valid = false
	}
	st.addrs = st.addrs[:0]
	if st.replayMode {
		st.lines = st.lines[:0]
		return
	}
	for i := range prog.Body {
		u := &prog.Body[i]
		if !u.Instr.Class.IsMemory() {
			continue
		}
		// Eligibility makes every address iteration-invariant, so iteration
		// 0 enumerates the whole footprint.
		switch u.Instr.Class {
		case isa.GatherOp:
			for lane := 0; lane < u.Instr.Lanes; lane++ {
				st.addrs = append(st.addrs, u.Addr.address(0, lane, prog.ElemsPerIter))
			}
		case isa.Store:
			st.addrs = append(st.addrs, u.Addr.address(0, 0, prog.ElemsPerIter))
		default: // Load, Prefetch
			st.addrs = append(st.addrs, u.Addr.address(0, int(u.Addr.LaneSel), prog.ElemsPerIter))
		}
	}
	st.lines = s.hier.SteadyLines(st.addrs, st.lines[:0])
}

// observe runs at one iteration-dispatch boundary: digest the relative
// state, extrapolate on a recurrence, or remember the snapshot.
func (st *steadyState) observe(s *Sim, res *Result, cycle, dispatchIter *int64, dispatchIdx int, iters int64) {
	st.lastIter = *dispatchIter
	wasRecording := st.recording
	if wasRecording && *dispatchIter < st.recStartIter+st.recP {
		return // mid-recording boundary: keep capturing the period
	}
	if !wasRecording {
		st.seen++
		if st.seen > steadyMaxBoundaries {
			st.active = false
			return
		}
	}
	digest, minIter, ok := st.encode(s, *cycle, *dispatchIter, dispatchIdx)
	if wasRecording {
		// The recording window just closed. If the boundary state recurred
		// at exactly p iterations (wide dispatch can overshoot a boundary,
		// which voids the window), the captured calls are one canonical
		// period — self-contained proof of periodicity regardless of the
		// originally detected cycle delta — and replay starts here.
		// Otherwise the trajectory shifted while recording; fall through to
		// ordinary detection at this boundary.
		st.recording = false
		if ok && *dispatchIter == st.recStartIter+st.recP && bytes.Equal(digest, st.recDigest) {
			st.recD = *cycle - st.recStartCycle
			if check.Enabled() {
				if err := steadyDeltaCheck(res, &st.recRes, st.recD); err != nil {
					st.invariantErr = err
				}
			}
			st.replayRun(s, res, cycle, dispatchIter, dispatchIdx, minIter, iters)
			return
		}
	}
	if !ok {
		return
	}
	for i := range st.ring {
		snap := &st.ring[i]
		if !snap.valid || !bytes.Equal(snap.digest, digest) {
			continue
		}
		p := *dispatchIter - snap.iter
		d := *cycle - snap.cycle
		if p <= 0 || d <= 0 {
			continue
		}
		// Leave at least one iteration of tail so the loop-exit transition
		// and the ROB drain are simulated, not extrapolated.
		k := (iters - 1 - *dispatchIter) / p
		if st.replayMode {
			// One period records, so at least one more must remain to
			// replay.
			if k < 2 {
				st.active = false
				return
			}
			st.startRecording(res, digest, p, d, *dispatchIter, *cycle)
			return
		}
		if k <= 0 {
			st.active = false
			return
		}
		if check.Enabled() {
			// Audit the period's counter delta before multiplying it by k:
			// the fast path must extrapolate exactly what the slow path
			// would have accumulated.
			if err := steadyDeltaCheck(res, &snap.res, d); err != nil {
				st.invariantErr = err
			}
		}
		addScaledSelfDelta(res, &snap.res, uint64(k))
		s.hier.AdvanceSteady(k, statsDelta(s.hier.Stats(), snap.stats), s.hier.AccessNo()-snap.accessNo)
		s.shiftSteady(k*p, k*d, minIter, *dispatchIter, dispatchIdx)
		*cycle += k * d
		*dispatchIter += k * p
		st.skippedIters += k * p
		st.skippedCycles += k * d
		st.active = false
		return
	}
	snap := &st.ring[st.next]
	st.next = (st.next + 1) % steadyRing
	snap.valid = true
	snap.iter, snap.cycle = *dispatchIter, *cycle
	snap.digest = append(snap.digest[:0], digest...)
	pb := snap.res.PortBusy[:0]
	snap.res = *res
	snap.res.PortBusy = append(pb, res.PortBusy...)
	snap.stats = s.hier.Stats()
	snap.accessNo = s.hier.AccessNo()
}

// encode canonicalises the machine state relative to (cycle, dispatchIter).
// Completion cycles at or before the current cycle are clamped to zero (all
// "already available" states behave identically), iteration numbers are
// taken relative to the dispatch front, and ROB positions relative to the
// head. It refuses (ok=false) while iteration 0 is still in flight, whose
// loop-carried reads are special-cased by srcsReady.
func (st *steadyState) encode(s *Sim, cycle, dispatchIter int64, dispatchIdx int) (digest []byte, minIter int64, ok bool) {
	buf := st.buf[:0]
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }

	minIter = dispatchIter
	u64(uint64(dispatchIdx))
	u64(uint64(s.robCount))
	robLen := len(s.robBody)
	for idx := 0; idx < s.robCount; idx++ {
		e := (s.robHead + idx) % robLen
		if s.robIter[e] < minIter {
			minIter = s.robIter[e]
		}
		u64(uint64(s.robBody[e]))
		u64(uint64(dispatchIter - s.robIter[e]))
		if s.robIssued[e] {
			c := s.robCompletion[e] - cycle
			if c < 0 {
				c = 0
			}
			u64(1)
			u64(uint64(c))
		} else {
			u64(0)
			u64(0)
		}
	}
	if minIter < 1 {
		st.buf = buf
		return nil, 0, false
	}
	u64(uint64(s.uopsInROB))
	// The waiting set needs no encoding of its own: entries leave the
	// scheduler exactly when they issue, so it is always the unissued ROB
	// entries in age order — fully determined by the per-entry issued flags
	// above, in both scheduler modes. (The event scheduler's watcher lists,
	// maturation heap, and ready set are equally derived from the ROB and
	// slab contents; states with equal digests replay identically however
	// that derived state is partitioned.)
	for _, f := range s.portFree {
		c := f - cycle
		if c < 0 {
			c = 0
		}
		u64(uint64(c))
	}
	// Heap layout is irrelevant to behaviour (drain removes every entry at
	// or below the cycle, min only reads the minimum), so the multiset of
	// pending completions is the canonical form.
	for _, h := range []*minHeap{&s.loadQ, &s.storeQ, &s.lfb, &s.inflight} {
		u64(uint64(len(*h)))
		tmp := append(st.heapTmp[:0], *h...)
		slices.Sort(tmp)
		st.heapTmp = tmp
		for _, v := range tmp {
			u64(uint64(v - cycle))
		}
	}
	// Live register-ring window: slots minIter-1 (loop-carried reads of the
	// oldest in-flight iteration) up to the dispatch front. The front
	// iteration's slot is live only once its first instruction has
	// dispatched (which cleared it); before that it holds dead values from
	// regRingSlots iterations ago.
	hi := dispatchIter
	if dispatchIdx > 0 {
		hi = dispatchIter + 1
	}
	nr := s.skel.numRegs
	for j := minIter - 1; j < hi; j++ {
		base := int(j&regRingMask) * nr
		for _, v := range s.slab[base : base+nr] {
			switch {
			case v == notIssued:
				u64(^uint64(0))
			case v <= cycle:
				u64(0)
			default:
				u64(uint64(v - cycle))
			}
		}
	}
	// In replay mode the hierarchy is deliberately absent from the digest:
	// its divergence is caught per access by response verification instead.
	if !st.replayMode {
		buf = s.hier.AppendSteadyState(buf, st.lines)
	}
	st.buf = buf
	return buf, minIter, true
}

// shiftSteady moves the live machine state forward by kp iterations and kd
// cycles without simulating them: every absolute cycle shifts by kd, every
// iteration number by kp, and the live register-ring window rotates to the
// slots its shifted iteration numbers index.
func (s *Sim) shiftSteady(kp, kd, minIter, dispatchIter int64, dispatchIdx int) {
	nr := s.skel.numRegs
	ringLen := regRingSlots * nr
	// The shifted iteration numbers index ring slots rotated by kp, so every
	// resolved slab offset rotates with them.
	rot := int(kp&regRingMask) * nr
	robLen := len(s.robBody)
	for idx := 0; idx < s.robCount; idx++ {
		e := (s.robHead + idx) % robLen
		s.robIter[e] += kp
		if s.robIssued[e] {
			s.robCompletion[e] += kd
		} else {
			// Resolved-operand completions folded so far are absolute cycles.
			s.readyAt[e] += kd
		}
		so := e * 3
		for k := 0; k < int(s.robSrcCnt[e]); k++ {
			o := s.robSrc[so+k] + int32(rot)
			if o >= int32(ringLen) {
				o -= int32(ringLen)
			}
			s.robSrc[so+k] = o
		}
		if o := s.robDst[e]; o >= 0 {
			o += int32(rot)
			if o >= int32(ringLen) {
				o -= int32(ringLen)
			}
			s.robDst[e] = o
		}
	}
	hi := dispatchIter // exclusive upper slot is hi
	if dispatchIdx > 0 {
		hi = dispatchIter + 1
	}
	w := int(hi - minIter + 1)
	need := w * nr
	if cap(s.steady.regTmp) < need {
		s.steady.regTmp = make([]int64, need)
	}
	tmp := s.steady.regTmp[:need]
	if cap(s.steady.whTmp) < need {
		s.steady.whTmp = make([]int32, need)
	}
	wtmp := s.steady.whTmp[:need]
	for i := 0; i < w; i++ {
		base := int((minIter-1+int64(i))&regRingMask) * nr
		copy(tmp[i*nr:(i+1)*nr], s.slab[base:base+nr])
		copy(wtmp[i*nr:(i+1)*nr], s.watchHead[base:base+nr])
	}
	for i := 0; i < w; i++ {
		base := int((minIter-1+int64(i)+kp)&regRingMask) * nr
		dst := s.slab[base : base+nr]
		for r, v := range tmp[i*nr : (i+1)*nr] {
			if v != notIssued {
				v += kd
			}
			dst[r] = v
		}
		// Watcher lists follow their cells (node ids are entry-based and
		// unaffected; only the cell → list-head mapping rotates).
		copy(s.watchHead[base:base+nr], wtmp[i*nr:(i+1)*nr])
	}
	for _, h := range []*minHeap{&s.loadQ, &s.storeQ, &s.lfb, &s.inflight} {
		for i := range *h {
			(*h)[i] += kd
		}
	}
	for i := range s.timeHeap {
		s.timeHeap[i].at += kd
	}
	for i := range s.portFree {
		s.portFree[i] += kd
	}
	// Slab values changed wholesale; any sampled scan-skip bound is void.
	s.rsNextReady = 0
}

// addScaledSelfDelta adds k times the counter delta accumulated since base
// (res - base) onto res, in exact integer arithmetic — the counter half of
// replaying k steady-state periods.
func addScaledSelfDelta(res, base *Result, k uint64) {
	res.Instructions += k * (res.Instructions - base.Instructions)
	res.Uops += k * (res.Uops - base.Uops)
	res.IssuedUops += k * (res.IssuedUops - base.IssuedUops)
	for i := range res.Hist {
		res.Hist[i] += k * (res.Hist[i] - base.Hist[i])
	}
	res.Vec512Uops += k * (res.Vec512Uops - base.Vec512Uops)
	res.PrefetchUops += k * (res.PrefetchUops - base.PrefetchUops)
	res.Stalls.Retiring += k * (res.Stalls.Retiring - base.Stalls.Retiring)
	res.Stalls.Frontend += k * (res.Stalls.Frontend - base.Stalls.Frontend)
	res.Stalls.BackendPort += k * (res.Stalls.BackendPort - base.Stalls.BackendPort)
	res.Stalls.Memory += k * (res.Stalls.Memory - base.Stalls.Memory)
	res.Stalls.Dependency += k * (res.Stalls.Dependency - base.Stalls.Dependency)
	for i := range res.PortBusy {
		res.PortBusy[i] += k * (res.PortBusy[i] - base.PortBusy[i])
	}
	for i := range res.ROBOcc.Buckets {
		res.ROBOcc.Buckets[i] += k * (res.ROBOcc.Buckets[i] - base.ROBOcc.Buckets[i])
	}
	for i := range res.LoadQOcc.Buckets {
		res.LoadQOcc.Buckets[i] += k * (res.LoadQOcc.Buckets[i] - base.LoadQOcc.Buckets[i])
	}
}
