package uarch

import "testing"

// mustRun runs prog for iters iterations on s, failing the test on error.
// It replaces the old library-side MustRun: known-good programs are a test
// concern, so the panic lives here rather than at a library edge.
func mustRun(t testing.TB, s *Sim, prog *Program, iters int64) *Result {
	t.Helper()
	r, err := s.Run(prog, iters)
	if err != nil {
		t.Fatalf("Run(%s, %d): %v", prog.Name, iters, err)
	}
	return r
}
