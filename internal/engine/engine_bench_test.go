package engine

import (
	"testing"

	"hef/internal/ssb"
)

// Functional micro-benchmarks of the runnable kernels (real Go wall time,
// complementary to the microarchitecture-model numbers).

func benchTable(n int) (*LinearTable, []uint64) {
	ht := NewLinearTable(n)
	for k := uint64(1); k <= uint64(n); k++ {
		ht.Insert(k, k*3)
	}
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = uint64(i*2+1)%uint64(2*n) + 1 // half hit, half miss
	}
	return ht, keys
}

func BenchmarkLinearTableLookupScalar(b *testing.B) {
	ht, keys := benchTable(1 << 14)
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	b.SetBytes(int64(len(keys) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.LookupBatch(keys, vals, found)
	}
}

func BenchmarkLinearTableLookupSIMD(b *testing.B) {
	ht, keys := benchTable(1 << 14)
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	b.SetBytes(int64(len(keys) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.LookupBatchSIMD(keys, vals, found)
	}
}

func BenchmarkLinearTableLookupHybrid(b *testing.B) {
	ht, keys := benchTable(1 << 14)
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	b.SetBytes(int64(len(keys) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.LookupBatchHybrid(keys, vals, found, HybridScalarLanes)
	}
}

func benchFilterTable() *ssb.Table {
	const n = 1 << 14
	t := ssb.NewTable("bench", n)
	a := make([]uint64, n)
	c := make([]uint64, n)
	for i := 0; i < n; i++ {
		a[i] = uint64(i % 1000)
		c[i] = uint64(i % 17)
	}
	t.MustAddCol("a", a)
	t.MustAddCol("b", c)
	return t
}

func benchFilter(b *testing.B, mode Mode) {
	t := benchFilterTable()
	preds := []Pred{Between("a", 100, 500), Eq("b", 3)}
	b.SetBytes(int64(t.N * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FilterTable(t, preds, mode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterScalar(b *testing.B) { benchFilter(b, Scalar) }
func BenchmarkFilterSIMD(b *testing.B)   { benchFilter(b, SIMD) }
func BenchmarkFilterHybrid(b *testing.B) { benchFilter(b, Hybrid) }

func BenchmarkBloomTest(b *testing.B) {
	bl := NewBloom(1 << 14)
	for k := uint64(1); k <= 1<<14; k++ {
		bl.Add(k)
	}
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = uint64(i * 3)
	}
	out := make([]bool, len(keys))
	b.SetBytes(int64(len(keys) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.TestBatchSIMD(keys, out)
	}
}
