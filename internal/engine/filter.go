package engine

import (
	"fmt"

	"hef/internal/ssb"
	"hef/internal/vec"
)

// Pred is an inclusive range predicate on a column: Lo <= col <= Hi.
// Equality predicates set Lo == Hi; set-membership over two values (SSB
// Q3.3/Q3.4's "city in (X, Y)") uses In.
type Pred struct {
	Col    string
	Lo, Hi uint64
	// In, when non-empty, overrides Lo/Hi with membership in the listed
	// values.
	In []uint64
}

// Eq builds an equality predicate.
func Eq(col string, v uint64) Pred { return Pred{Col: col, Lo: v, Hi: v} }

// Between builds an inclusive range predicate.
func Between(col string, lo, hi uint64) Pred { return Pred{Col: col, Lo: lo, Hi: hi} }

// OneOf builds a set-membership predicate.
func OneOf(col string, vs ...uint64) Pred { return Pred{Col: col, In: vs} }

func (p Pred) match(v uint64) bool {
	if len(p.In) > 0 {
		for _, x := range p.In {
			if v == x {
				return true
			}
		}
		return false
	}
	return v >= p.Lo && v <= p.Hi
}

func (p Pred) String() string {
	if len(p.In) > 0 {
		return fmt.Sprintf("%s in %v", p.Col, p.In)
	}
	if p.Lo == p.Hi {
		return fmt.Sprintf("%s = %d", p.Col, p.Lo)
	}
	return fmt.Sprintf("%d <= %s <= %d", p.Lo, p.Col, p.Hi)
}

// Mode selects the functional implementation flavour; all modes produce
// identical results.
type Mode int

const (
	// Scalar is the purely scalar implementation.
	Scalar Mode = iota
	// SIMD is the purely vectorized (8-lane) implementation.
	SIMD
	// Hybrid co-schedules one SIMD group with HybridScalarLanes scalar
	// elements per step, the functional shape of HEF's generated code.
	Hybrid
)

func (m Mode) String() string {
	switch m {
	case Scalar:
		return "scalar"
	case SIMD:
		return "simd"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// HybridScalarLanes is the number of scalar elements the hybrid functional
// flavour processes alongside each 8-lane SIMD group (s=1..3 in the paper's
// optima; the value does not affect results).
const HybridScalarLanes = 3

// FilterTable scans table rows 0..N against all predicates and returns the
// selected row indices. Mode selects the kernel.
func FilterTable(t *ssb.Table, preds []Pred, mode Mode) ([]uint32, error) {
	return FilterRange(t, preds, 0, t.N, mode)
}

// FilterRange scans rows [lo, hi) of the table, returning absolute selected
// row indices. It is the batch-wise form used by the pipelined fact scan.
func FilterRange(t *ssb.Table, preds []Pred, lo, hi int, mode Mode) ([]uint32, error) {
	if lo < 0 || hi > t.N || lo > hi {
		return nil, fmt.Errorf("engine: range [%d,%d) out of bounds for %s (N=%d)", lo, hi, t.Name, t.N)
	}
	cols := make([][]uint64, len(preds))
	for i, p := range preds {
		c, err := t.Column(p.Col)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		cols[i] = c
	}
	sel := make([]uint32, 0, (hi-lo)/4+8)
	if len(preds) == 0 {
		for r := lo; r < hi; r++ {
			sel = append(sel, uint32(r))
		}
		return sel, nil
	}
	switch mode {
	case Scalar:
		for r := lo; r < hi; r++ {
			if matchRow(preds, cols, r) {
				sel = append(sel, uint32(r))
			}
		}
	case SIMD:
		sel = filterSIMD(lo, hi, preds, cols, sel)
	case Hybrid:
		step := vec.Lanes + HybridScalarLanes
		r := lo
		for ; r+step <= hi; r += step {
			sel = filterSIMDRange(r, r+vec.Lanes, preds, cols, sel)
			for j := r + vec.Lanes; j < r+step; j++ {
				if matchRow(preds, cols, j) {
					sel = append(sel, uint32(j))
				}
			}
		}
		for ; r < hi; r++ {
			if matchRow(preds, cols, r) {
				sel = append(sel, uint32(r))
			}
		}
	default:
		return nil, fmt.Errorf("engine: unknown mode %v", mode)
	}
	return sel, nil
}

func matchRow(preds []Pred, cols [][]uint64, r int) bool {
	for i := range preds {
		if !preds[i].match(cols[i][r]) {
			return false
		}
	}
	return true
}

func filterSIMD(lo, hi int, preds []Pred, cols [][]uint64, sel []uint32) []uint32 {
	r := lo
	for ; r+vec.Lanes <= hi; r += vec.Lanes {
		sel = filterSIMDRange(r, r+vec.Lanes, preds, cols, sel)
	}
	for ; r < hi; r++ {
		if matchRow(preds, cols, r) {
			sel = append(sel, uint32(r))
		}
	}
	return sel
}

// filterSIMDRange evaluates one 8-lane group [r, r+8) with compare masks.
func filterSIMDRange(r, end int, preds []Pred, cols [][]uint64, sel []uint32) []uint32 {
	m := vec.MaskAll
	for i := range preds {
		v := vec.Load(cols[i][r:])
		if in := preds[i].In; len(in) > 0 {
			var pm vec.Mask
			for _, x := range in {
				pm |= vec.CmpEq(v, vec.Broadcast(x))
			}
			m &= pm
		} else {
			m &= vec.CmpGe(v, vec.Broadcast(preds[i].Lo))
			m &= vec.CmpLe(v, vec.Broadcast(preds[i].Hi))
		}
		if m == 0 {
			return sel
		}
	}
	for l := 0; l < end-r; l++ {
		if m.Test(l) {
			sel = append(sel, uint32(r+l))
		}
	}
	return sel
}

// GatherColumn copies col[sel[i]] into out for each selected row.
func GatherColumn(col []uint64, sel []uint32, out []uint64) {
	for i, s := range sel {
		out[i] = col[s]
	}
}
