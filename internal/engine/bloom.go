package engine

import (
	"fmt"

	"hef/internal/hid"
	"hef/internal/vec"
)

// Bloom filters are one of the SIMD-accelerated analytics operators the
// paper's related work calls out (Lu et al., "Ultra-Fast Bloom Filters
// Using SIMD Techniques"); engines place them in front of expensive hash
// joins. This implementation uses two multiplicative hash probes per key
// over a power-of-two bit array, with scalar, SIMD, and hybrid lookup
// kernels plus the HID template for the timing model.

// bloomMul2 is the second hash multiplier (first is hashMul).
const bloomMul2 = 0xc6a4a7935bd1e995

// Bloom is a blocked Bloom filter over 64-bit keys.
type Bloom struct {
	words []uint64
	mask  uint64 // bit-index mask
	n     int
}

// NewBloom sizes the filter for n keys at ~8 bits per key (false-positive
// rate a few percent with two probes).
func NewBloom(n int) *Bloom {
	bits := 8 * n
	if bits < 512 {
		bits = 512
	}
	size := 1
	for size < bits {
		size <<= 1
	}
	return &Bloom{words: make([]uint64, size/64), mask: uint64(size - 1)}
}

// hashes derives the two bit positions for a key.
func (b *Bloom) hashes(k uint64) (uint64, uint64) {
	h1 := (k * hashMul) >> 17
	h2 := (k * bloomMul2) >> 23
	return h1 & b.mask, h2 & b.mask
}

// Add inserts a key.
func (b *Bloom) Add(k uint64) {
	i1, i2 := b.hashes(k)
	b.words[i1/64] |= 1 << (i1 % 64)
	b.words[i2/64] |= 1 << (i2 % 64)
	b.n++
}

// Test reports whether the key may be present (no false negatives).
func (b *Bloom) Test(k uint64) bool {
	i1, i2 := b.hashes(k)
	return b.words[i1/64]&(1<<(i1%64)) != 0 && b.words[i2/64]&(1<<(i2%64)) != 0
}

// Len returns the number of inserted keys.
func (b *Bloom) Len() int { return b.n }

// Bytes returns the bit-array footprint.
func (b *Bloom) Bytes() uint64 { return uint64(len(b.words)) * 8 }

// TestBatch evaluates keys scalar-wise into out.
func (b *Bloom) TestBatch(keys []uint64, out []bool) {
	for i, k := range keys {
		out[i] = b.Test(k)
	}
}

// TestBatchSIMD evaluates 8 keys at a time with gathers over the word
// array; results equal TestBatch.
func (b *Bloom) TestBatchSIMD(keys []uint64, out []bool) {
	n := len(keys)
	i := 0
	m1 := vec.Broadcast(hashMul)
	m2 := vec.Broadcast(bloomMul2)
	bm := vec.Broadcast(b.mask)
	one := vec.Broadcast(1)
	low := vec.Broadcast(63)
	for ; i+vec.Lanes <= n; i += vec.Lanes {
		kv := vec.Load(keys[i:])
		i1 := vec.And(vec.Srl(vec.Mul(kv, m1), 17), bm)
		i2 := vec.And(vec.Srl(vec.Mul(kv, m2), 23), bm)
		w1 := vec.Gather(b.words, vec.Srl(i1, 6))
		w2 := vec.Gather(b.words, vec.Srl(i2, 6))
		t1 := vec.And(vec.Srlv(w1, vec.And(i1, low)), one)
		t2 := vec.And(vec.Srlv(w2, vec.And(i2, low)), one)
		hit := vec.CmpEq(vec.And(t1, t2), one)
		for l := 0; l < vec.Lanes; l++ {
			out[i+l] = hit.Test(l)
		}
	}
	for ; i < n; i++ {
		out[i] = b.Test(keys[i])
	}
}

// TestBatchHybrid interleaves one SIMD group with scalar lookups per step.
func (b *Bloom) TestBatchHybrid(keys []uint64, out []bool, scalarPerStep int) {
	if scalarPerStep < 0 {
		scalarPerStep = 0
	}
	step := vec.Lanes + scalarPerStep
	n := len(keys)
	i := 0
	for ; i+step <= n; i += step {
		b.TestBatchSIMD(keys[i:i+vec.Lanes], out[i:i+vec.Lanes])
		for j := i + vec.Lanes; j < i+step; j++ {
			out[j] = b.Test(keys[j])
		}
	}
	for ; i < n; i++ {
		out[i] = b.Test(keys[i])
	}
}

// BloomTemplate is the HID operator template for the Bloom probe: two
// multiplicative hashes, two gathers into the bit array, shift/and bit
// tests, and the combined mask store.
func BloomTemplate(filterBytes uint64) *hid.Template {
	if filterBytes < 64 {
		filterBytes = 64
	}
	b := hid.NewTemplate("bloom", hid.U64)
	keys := b.Stream("keys", hid.ReadStream)
	out := b.Stream("out", hid.WriteStream)
	words := b.Table("words", filterBytes)
	m1 := b.Const("m1", hashMul)
	m2 := b.Const("m2", bloomMul2)
	mask := b.Const("bitmask", filterBytes*8-1)
	one := b.Const("one", 1)
	low := b.Const("low", 63)

	k := b.Load("k", keys)
	h1 := b.Srl("h1", b.Mul("p1", k, m1), 17)
	i1 := b.And("i1", h1, mask)
	h2 := b.Srl("h2", b.Mul("p2", k, m2), 23)
	i2 := b.And("i2", h2, mask)
	w1 := b.Gather("w1", words, b.Srl("wi1", i1, 6))
	w2 := b.Gather("w2", words, b.Srl("wi2", i2, 6))
	s1 := b.And("s1", i1, low)
	s2 := b.And("s2", i2, low)
	t1 := b.And("t1", b.Op("r1", "srlv", w1, s1), one)
	t2 := b.And("t2", b.Op("r2", "srlv", w2, s2), one)
	hit := b.And("hit", t1, t2)
	b.Store(out, hit)
	return b.MustBuild(knownOp)
}

// String renders a summary for diagnostics.
func (b *Bloom) String() string {
	return fmt.Sprintf("bloom(%d keys, %d KiB)", b.n, b.Bytes()>>10)
}
