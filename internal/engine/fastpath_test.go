package engine

import (
	"reflect"
	"testing"

	"hef/internal/hid"
	"hef/internal/isa"
	"hef/internal/translator"
	"hef/internal/uarch"
)

// TestFastPathEngineTemplates is the end-to-end differential for the
// simulator's steady-state fast path: every engine template, translated at
// scalar, SIMD, and hybrid nodes, simulated on all four machine models with
// the evaluator's exact warm-then-measure sequence, must produce Results
// bit-identical to a fast-path-disabled simulator. Engagement is allowed to
// vary (templates with striding or region-random addresses legitimately
// decline), but the numbers may never differ.
func TestFastPathEngineTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("many translate+simulate combinations")
	}
	templates := []struct {
		label string
		tmpl  *hid.Template
	}{
		{"filter", FilterTemplate(2)},
		{"probe", ProbeTemplate(1 << 20)},
		{"sumagg", SumAggTemplate()},
		{"groupagg", GroupAggTemplate(64 << 10)},
		{"build", BuildTemplate(1 << 20)},
		{"bloom", BloomTemplate(1 << 18)},
	}
	nodes := []translator.Node{
		{V: 0, S: 1, P: 1},
		{V: 1, S: 0, P: 1},
		{V: 1, S: 1, P: 2},
	}
	const elems = 1 << 13
	for _, cpuName := range []string{"silver", "gold", "neoverse", "zen"} {
		cpu, err := isa.ByName(cpuName)
		if err != nil {
			t.Fatalf("cpu %q: %v", cpuName, err)
		}
		for _, tc := range templates {
			for _, node := range nodes {
				out, err := translator.Translate(tc.tmpl, node,
					translator.Options{Width: cpu.NativeWidth(), CPU: cpu})
				if err != nil {
					t.Fatalf("%s/%s at %v: translate: %v", cpuName, tc.label, node, err)
				}
				iters := int64(elems / out.ElemsPerIter)
				if iters < 1 {
					iters = 1
				}
				run := func(s *uarch.Sim) *uarch.Result {
					t.Helper()
					// Mirror SimEvaluator.Run: reset hierarchy, warm
					// LLC-resident random regions, one throwaway run to
					// settle the prefetcher, then measure.
					s.Hierarchy().Reset()
					for _, p := range tc.tmpl.Params {
						if p.Pattern == hid.RandomRegion && p.Region > 0 && p.Region <= uint64(cpu.LLC.SizeBytes) {
							s.Hierarchy().Warm(translator.ParamBase(tc.tmpl, p.Name), p.Region)
						}
					}
					if _, err := s.Run(out.Program, iters); err != nil {
						t.Fatalf("%s/%s at %v: warm run: %v", cpuName, tc.label, node, err)
					}
					res, err := s.Run(out.Program, iters)
					if err != nil {
						t.Fatalf("%s/%s at %v: run: %v", cpuName, tc.label, node, err)
					}
					return res
				}
				slowSim := uarch.NewSim(cpu)
				slowSim.SetFastPath(false)
				fastSim := uarch.NewSim(cpu)
				slow := run(slowSim)
				fast := run(fastSim)
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("%s/%s at %v: fast path diverged\nslow: %+v\nfast: %+v",
						cpuName, tc.label, node, slow, fast)
				}
			}
		}
	}
}
