package engine

import (
	"math/rand"
	"testing"

	"hef/internal/hid"
	"hef/internal/isa"
	"hef/internal/ssb"
	"hef/internal/translator"
	"hef/internal/uarch"
)

// The differential tests pin down the robustness contract the optimizer
// relies on: every functional flavour (scalar, SIMD, hybrid) of every engine
// kernel is bit-identical on the same inputs, and every engine template
// translates and simulates cleanly at scalar-only, SIMD-only, and hybrid
// nodes on all four machine models. A flavour that diverges would let the
// search trade correctness for speed without anyone noticing.

const diffElems = 1000

// TestDifferentialFilter checks the three filter flavours select identical
// row sets on 1k random rows across predicate shapes.
func TestDifferentialFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tbl := ssb.NewTable("diff", diffElems)
	a := make([]uint64, diffElems)
	b := make([]uint64, diffElems)
	for i := range a {
		a[i] = uint64(rng.Intn(100))
		b[i] = uint64(rng.Intn(1000))
	}
	tbl.MustAddCol("a", a)
	tbl.MustAddCol("b", b)

	predSets := map[string][]Pred{
		"eq":       {Eq("a", 7)},
		"between":  {Between("b", 100, 500)},
		"conjunct": {Between("a", 10, 60), Between("b", 200, 800)},
		"oneof":    {OneOf("a", 1, 2, 3, 5, 8, 13)},
		"empty":    {},
	}
	for name, preds := range predSets {
		ref, err := FilterTable(tbl, preds, Scalar)
		if err != nil {
			t.Fatalf("%s: scalar: %v", name, err)
		}
		for _, mode := range []Mode{SIMD, Hybrid} {
			got, err := FilterTable(tbl, preds, mode)
			if err != nil {
				t.Fatalf("%s: %v: %v", name, mode, err)
			}
			if len(got) != len(ref) {
				t.Fatalf("%s: %v selected %d rows, scalar %d", name, mode, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s: %v diverges at selection %d: %d != %d", name, mode, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestDifferentialHashLookup checks the three probe flavours agree on hits,
// misses, and payloads for 1k random probes (half present, half absent).
func TestDifferentialHashLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ht := NewLinearTable(diffElems)
	present := make([]uint64, 0, diffElems/2)
	for len(present) < diffElems/2 {
		k := rng.Uint64()%1e9 + 1
		if err := ht.Insert(k, k*3); err != nil {
			t.Fatalf("insert: %v", err)
		}
		present = append(present, k)
	}
	keys := make([]uint64, diffElems)
	for i := range keys {
		if i%2 == 0 {
			keys[i] = present[rng.Intn(len(present))]
		} else {
			keys[i] = rng.Uint64()%1e9 + 2e9 // disjoint from the inserted range
		}
	}

	refV, refF := make([]uint64, diffElems), make([]bool, diffElems)
	ht.LookupBatch(keys, refV, refF)
	check := func(label string, vals []uint64, found []bool) {
		t.Helper()
		for i := range keys {
			if found[i] != refF[i] || (found[i] && vals[i] != refV[i]) {
				t.Fatalf("%s diverges at key %d (#%d): got (%d,%v) want (%d,%v)",
					label, keys[i], i, vals[i], found[i], refV[i], refF[i])
			}
		}
	}

	v, f := make([]uint64, diffElems), make([]bool, diffElems)
	ht.LookupBatchSIMD(keys, v, f)
	check("simd", v, f)
	for _, s := range []int{1, 3, 7} {
		v, f = make([]uint64, diffElems), make([]bool, diffElems)
		ht.LookupBatchHybrid(keys, v, f, s)
		check("hybrid", v, f)
	}
}

// TestDifferentialBloom checks the three bloom-probe flavours return the
// same membership bits for 1k random probes.
func TestDifferentialBloom(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	bl := NewBloom(diffElems / 2)
	for i := 0; i < diffElems/2; i++ {
		bl.Add(rng.Uint64())
	}
	keys := make([]uint64, diffElems)
	for i := range keys {
		keys[i] = rng.Uint64()
	}

	ref := make([]bool, diffElems)
	bl.TestBatch(keys, ref)
	simd := make([]bool, diffElems)
	bl.TestBatchSIMD(keys, simd)
	for _, s := range []int{1, 2, 5} {
		hyb := make([]bool, diffElems)
		bl.TestBatchHybrid(keys, hyb, s)
		for i := range ref {
			if simd[i] != ref[i] {
				t.Fatalf("simd diverges at probe %d", i)
			}
			if hyb[i] != ref[i] {
				t.Fatalf("hybrid(s=%d) diverges at probe %d", s, i)
			}
		}
	}
}

// TestDifferentialTemplatesAcrossCPUs translates and simulates every engine
// template at a scalar-only, a SIMD-only, and a hybrid node on all four CPU
// models. Each combination must produce a valid program and a clean,
// element-processing simulation — no panics, no errors, no zero-work runs.
func TestDifferentialTemplatesAcrossCPUs(t *testing.T) {
	if testing.Short() {
		t.Skip("many translate+simulate combinations")
	}
	templates := []struct {
		label string
		tmpl  *hid.Template
	}{
		{"filter", FilterTemplate(2)},
		{"probe", ProbeTemplate(1 << 20)},
		{"agg", GroupAggTemplate(64 << 10)},
		{"bloom", BloomTemplate(1 << 18)},
	}
	nodes := []translator.Node{
		{V: 0, S: 1, P: 1}, // purely scalar
		{V: 1, S: 0, P: 1}, // purely SIMD
		{V: 1, S: 1, P: 2}, // hybrid
	}
	for _, cpuName := range []string{"silver", "gold", "neoverse", "zen"} {
		cpu, err := isa.ByName(cpuName)
		if err != nil {
			t.Fatalf("cpu %q: %v", cpuName, err)
		}
		for _, tc := range templates {
			for _, node := range nodes {
				out, err := translator.Translate(tc.tmpl, node,
					translator.Options{Width: cpu.NativeWidth(), CPU: cpu})
				if err != nil {
					t.Errorf("%s/%s at %v: translate: %v", cpuName, tc.label, node, err)
					continue
				}
				if err := out.Program.Validate(); err != nil {
					t.Errorf("%s/%s at %v: invalid program: %v", cpuName, tc.label, node, err)
					continue
				}
				sim := uarch.NewSim(cpu)
				if err := sim.Err(); err != nil {
					t.Fatalf("%s: %v", cpuName, err)
				}
				res, err := sim.Run(out.Program, 64)
				if err != nil {
					t.Errorf("%s/%s at %v: simulate: %v", cpuName, tc.label, node, err)
					continue
				}
				if res.Elems <= 0 || res.Cycles <= 0 {
					t.Errorf("%s/%s at %v: degenerate run (elems=%d cycles=%d)",
						cpuName, tc.label, node, res.Elems, res.Cycles)
				}
			}
		}
	}
}
