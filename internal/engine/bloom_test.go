package engine

import (
	"testing"
	"testing/quick"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1000)
	for k := uint64(1); k <= 1000; k++ {
		b.Add(k * 7919)
	}
	if b.Len() != 1000 {
		t.Errorf("Len = %d", b.Len())
	}
	for k := uint64(1); k <= 1000; k++ {
		if !b.Test(k * 7919) {
			t.Fatalf("false negative for key %d", k*7919)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(10000)
	for k := uint64(1); k <= 10000; k++ {
		b.Add(k)
	}
	fp := 0
	const probes = 20000
	for k := uint64(1_000_000); k < 1_000_000+probes; k++ {
		if b.Test(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.15 {
		t.Errorf("false positive rate %.3f too high for 8 bits/key", rate)
	}
}

// Property: the SIMD and hybrid kernels agree exactly with the scalar one.
func TestBloomKernelsAgree(t *testing.T) {
	f := func(adds []uint64, probes []uint64) bool {
		b := NewBloom(len(adds) + 1)
		for _, k := range adds {
			b.Add(k)
		}
		n := len(probes)
		s := make([]bool, n)
		v := make([]bool, n)
		h := make([]bool, n)
		b.TestBatch(probes, s)
		b.TestBatchSIMD(probes, v)
		b.TestBatchHybrid(probes, h, HybridScalarLanes)
		for i := range probes {
			if v[i] != s[i] || h[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBloomSizing(t *testing.T) {
	b := NewBloom(0)
	if b.Bytes() < 64 {
		t.Errorf("minimum filter size too small: %d bytes", b.Bytes())
	}
	big := NewBloom(1 << 20)
	if bits := big.Bytes() * 8; bits < 8<<20 {
		t.Errorf("filter for 1M keys has %d bits, want >= 8M", bits)
	}
	if got := b.String(); got == "" {
		t.Error("String should describe the filter")
	}
}

func TestBloomTemplateValidates(t *testing.T) {
	tmpl := BloomTemplate(1 << 16)
	if err := tmpl.Validate(knownOp); err != nil {
		t.Fatal(err)
	}
	gathers := 0
	for _, s := range tmpl.Body {
		if s.Op == "gather" {
			gathers++
		}
	}
	if gathers != 2 {
		t.Errorf("bloom template has %d gathers, want 2", gathers)
	}
	if p, _ := BloomTemplate(0).Param("words"); p.Region < 64 {
		t.Error("BloomTemplate should clamp tiny filters")
	}
}
