// Package engine provides the relational operators the SSB queries are
// assembled from — predicate filters, a linear-probe hash table for joins,
// and aggregation — each with scalar, SIMD, and hybrid functional
// implementations (bit-identical results) plus the HID operator templates
// that the translator and simulator use to time them. The linear-probe
// table follows the paper's setup: "we apply a large linear hash table for
// hash join to reduce the conflicts and avoid data access becoming the
// bottleneck".
package engine

import (
	"fmt"

	"hef/internal/vec"
)

// hashMul is the multiplicative hashing constant (golden-ratio based).
const hashMul = 0x9e3779b97f4a7c15

// LinearTable is an open-addressing hash table with linear probing over
// power-of-two buckets. Key 0 marks an empty bucket (SSB keys are 1-based).
type LinearTable struct {
	keys []uint64
	vals []uint64
	mask uint64
	n    int
}

// NewLinearTable sizes the table for n entries at 25% load factor (the
// paper's "large linear hash table").
func NewLinearTable(n int) *LinearTable {
	capacity := 4 * n
	if capacity < 16 {
		capacity = 16
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &LinearTable{
		keys: make([]uint64, size),
		vals: make([]uint64, size),
		mask: uint64(size - 1),
	}
}

// hashKey is the bucket hash: one multiply and one shift, the same mix the
// probe operator template models.
func (t *LinearTable) hashKey(k uint64) uint64 {
	return (k * hashMul) >> 32 & t.mask
}

// Insert adds or overwrites key k with value v. Inserting key 0 is invalid.
func (t *LinearTable) Insert(k, v uint64) error {
	if k == 0 {
		return fmt.Errorf("engine: key 0 is reserved for empty buckets")
	}
	if t.n >= len(t.keys) {
		return fmt.Errorf("engine: hash table full (%d buckets)", len(t.keys))
	}
	i := t.hashKey(k)
	for {
		switch t.keys[i] {
		case 0:
			t.keys[i] = k
			t.vals[i] = v
			t.n++
			return nil
		case k:
			t.vals[i] = v
			return nil
		}
		i = (i + 1) & t.mask
	}
}

// Lookup probes for k with scalar linear probing.
func (t *LinearTable) Lookup(k uint64) (uint64, bool) {
	i := t.hashKey(k)
	for {
		switch t.keys[i] {
		case k:
			return t.vals[i], true
		case 0:
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// Len returns the number of stored entries.
func (t *LinearTable) Len() int { return t.n }

// Buckets returns the bucket count.
func (t *LinearTable) Buckets() int { return len(t.keys) }

// Bytes returns the memory footprint of the key and value arrays — the
// working-set size the cache model sees during probes.
func (t *LinearTable) Bytes() uint64 { return uint64(len(t.keys)) * 16 }

// LookupBatch probes keys[0:n] one at a time (the purely scalar probe),
// writing values and a found bitmap.
func (t *LinearTable) LookupBatch(keys, vals []uint64, found []bool) {
	for i, k := range keys {
		v, ok := t.Lookup(k)
		vals[i] = v
		found[i] = ok
	}
}

// LookupBatchSIMD probes 8 keys at a time using gathers and compare masks,
// mirroring the vectorized probe kernel; the remainder tail is scalar. The
// results are identical to LookupBatch.
func (t *LinearTable) LookupBatchSIMD(keys, vals []uint64, found []bool) {
	n := len(keys)
	i := 0
	mulV := vec.Broadcast(hashMul)
	maskV := vec.Broadcast(t.mask)
	zero := vec.Broadcast(0)
	for ; i+vec.Lanes <= n; i += vec.Lanes {
		kv := vec.Load(keys[i:])
		idx := vec.And(vec.Srl(vec.Mul(kv, mulV), 32), maskV)
		var resV vec.U64x8
		var foundM, doneM vec.Mask
		for doneM != vec.MaskAll {
			bk := vec.MaskGather(zero, ^doneM, t.keys, idx)
			hit := vec.CmpEq(bk, kv) &^ doneM
			empty := vec.CmpEq(bk, zero) &^ doneM
			if hit != 0 {
				bv := vec.MaskGather(zero, hit, t.vals, idx)
				resV = vec.Blend(hit, resV, bv)
				foundM |= hit
			}
			doneM |= hit | empty
			idx = vec.And(vec.Add(idx, vec.Broadcast(1)), maskV)
		}
		resV.Store(vals[i:])
		for l := 0; l < vec.Lanes; l++ {
			found[i+l] = foundM.Test(l)
		}
	}
	for ; i < n; i++ {
		vals[i], found[i] = t.Lookup(keys[i])
	}
}

// LookupBatchHybrid interleaves one 8-lane SIMD probe group with s scalar
// probes per step — the functional shape of the hybrid execution the
// framework generates. Results are identical to LookupBatch.
func (t *LinearTable) LookupBatchHybrid(keys, vals []uint64, found []bool, scalarPerStep int) {
	if scalarPerStep < 0 {
		scalarPerStep = 0
	}
	n := len(keys)
	step := vec.Lanes + scalarPerStep
	i := 0
	for ; i+step <= n; i += step {
		t.LookupBatchSIMD(keys[i:i+vec.Lanes], vals[i:i+vec.Lanes], found[i:i+vec.Lanes])
		for j := i + vec.Lanes; j < i+step; j++ {
			vals[j], found[j] = t.Lookup(keys[j])
		}
	}
	for ; i < n; i++ {
		vals[i], found[i] = t.Lookup(keys[i])
	}
}
