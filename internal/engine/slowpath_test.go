package engine

import (
	"reflect"
	"testing"

	"hef/internal/hashes"
	"hef/internal/hid"
	"hef/internal/isa"
	"hef/internal/translator"
	"hef/internal/uarch"
)

// slowPathTemplates is every operator template the optimizer searches over —
// the four engine kernels plus the two hash kernels.
func slowPathTemplates() []struct {
	label string
	tmpl  *hid.Template
} {
	return []struct {
		label string
		tmpl  *hid.Template
	}{
		{"filter", FilterTemplate(2)},
		{"probe", ProbeTemplate(1 << 20)},
		{"agg", GroupAggTemplate(64 << 10)},
		{"bloom", BloomTemplate(1 << 18)},
		{"murmur", hashes.MurmurTemplate()},
		{"crc64", hashes.CRC64Template()},
	}
}

// TestSlowPathRunIntoZeroAllocs pins the slow path's allocation hygiene on
// production programs: after one warm-up run, RunInto on the translated
// hybrid form of every engine template must not allocate — on any machine
// model, with the steady-state machinery both off and on (the on case
// covers the replay recorder's arenas and the cache journal).
func TestSlowPathRunIntoZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("many warm-up simulations")
	}
	node := translator.Node{V: 1, S: 1, P: 2}
	for _, cpuName := range []string{"silver", "gold", "neoverse", "zen"} {
		cpu, err := isa.ByName(cpuName)
		if err != nil {
			t.Fatalf("cpu %q: %v", cpuName, err)
		}
		for _, tc := range slowPathTemplates() {
			out, err := translator.Translate(tc.tmpl, node,
				translator.Options{Width: cpu.NativeWidth(), CPU: cpu})
			if err != nil {
				t.Fatalf("%s/%s: translate: %v", cpuName, tc.label, err)
			}
			for _, fast := range []bool{false, true} {
				sim := uarch.NewSim(cpu)
				sim.SetFastPath(fast)
				var res uarch.Result
				// Several warm-up runs: reused arenas (ring digests, replay
				// recordings, journal save-sets) grow to their high-water
				// mark over the first few runs because random-address
				// programs draw fresh lines each run.
				for i := 0; i < 12; i++ {
					if err := sim.RunInto(&res, out.Program, 512); err != nil {
						t.Fatalf("%s/%s fast=%v: warm-up: %v", cpuName, tc.label, fast, err)
					}
				}
				avg := testing.AllocsPerRun(5, func() {
					if err := sim.RunInto(&res, out.Program, 512); err != nil {
						t.Fatal(err)
					}
				})
				if avg > 0 {
					t.Errorf("%s/%s fast=%v: RunInto allocates %.1f objects per call after warm-up, want 0",
						cpuName, tc.label, fast, avg)
				}
			}
		}
	}
}

// TestSlowPathReplayDifferential is the production-program counterpart of
// the uarch package's replay tests: on every engine template × machine
// model, back-to-back runs with the steady-state machinery enabled must
// match the cycle-by-cycle walk bit for bit — including the cache
// hierarchy's access clock, which the second run inherits from the first.
func TestSlowPathReplayDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("many slow-path simulations")
	}
	node := translator.Node{V: 1, S: 1, P: 2}
	const iters = 2048
	for _, cpuName := range []string{"silver", "gold", "neoverse", "zen"} {
		cpu, err := isa.ByName(cpuName)
		if err != nil {
			t.Fatalf("cpu %q: %v", cpuName, err)
		}
		for _, tc := range slowPathTemplates() {
			out, err := translator.Translate(tc.tmpl, node,
				translator.Options{Width: cpu.NativeWidth(), CPU: cpu})
			if err != nil {
				t.Fatalf("%s/%s: translate: %v", cpuName, tc.label, err)
			}
			ss := uarch.NewSim(cpu)
			ss.SetFastPath(false)
			fs := uarch.NewSim(cpu)
			for run := 0; run < 2; run++ {
				slow, err := ss.Run(out.Program, iters)
				if err != nil {
					t.Fatalf("%s/%s run %d: slow: %v", cpuName, tc.label, run, err)
				}
				fast, err := fs.Run(out.Program, iters)
				if err != nil {
					t.Fatalf("%s/%s run %d: fast: %v", cpuName, tc.label, run, err)
				}
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("%s/%s run %d: diverged\nslow: %+v\nfast: %+v",
						cpuName, tc.label, run, slow, fast)
				}
				if ss.Hierarchy().AccessNo() != fs.Hierarchy().AccessNo() {
					t.Errorf("%s/%s run %d: hierarchy access clocks diverged: slow %d fast %d",
						cpuName, tc.label, run, ss.Hierarchy().AccessNo(), fs.Hierarchy().AccessNo())
				}
			}
		}
	}
}
