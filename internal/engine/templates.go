package engine

import (
	"fmt"

	"hef/internal/hid"
	"hef/internal/isa"
)

// This file defines the HID operator templates the timing model uses for
// each pipeline stage. The functional operators in this package produce the
// results; these templates, translated at a candidate node and run on the
// simulator, produce the cycles, IPC, LLC misses, and µop histograms of the
// paper's tables and figures.

func knownOp(op string) bool {
	_, err := isa.Describe(op)
	return err == nil
}

// FilterTemplate models a scan applying nPreds inclusive range predicates:
// per predicate a column load and two compares combined into a mask, with
// the surviving selection written out (VIP-style selection vectors).
func FilterTemplate(nPreds int) *hid.Template {
	if nPreds < 1 {
		nPreds = 1
	}
	b := hid.NewTemplate(fmt.Sprintf("filter%d", nPreds), hid.U64)
	out := b.Stream("sel", hid.WriteStream)
	var mask hid.Operand
	for i := 0; i < nPreds; i++ {
		col := b.Stream(fmt.Sprintf("col%d", i), hid.ReadStream)
		lo := b.Const(fmt.Sprintf("lo%d", i), uint64(10+i))
		hi := b.Const(fmt.Sprintf("hi%d", i), uint64(1000+i))
		v := b.Load(fmt.Sprintf("v%d", i), col)
		ge := b.CmpGt(fmt.Sprintf("ge%d", i), v, lo)
		le := b.CmpLt(fmt.Sprintf("le%d", i), v, hi)
		m := b.And(fmt.Sprintf("m%d", i), ge, le)
		if i == 0 {
			mask = m
		} else {
			mask = b.And(fmt.Sprintf("acc%d", i), mask, m)
		}
	}
	b.Store(out, mask)
	return b.MustBuild(knownOp)
}

// ProbeTemplate models one linear-probe hash-join lookup: load the foreign
// key, one multiplicative hash (multiply + shift + mask), a gather into the
// bucket key array, the key compare, a gather into the value array, and the
// select writing the payload. htBytes sizes the randomly-accessed region —
// the variable that moves the working set between L2, LLC, and memory
// across scale factors.
// ProbeTemplate includes the VIP-style pipeline bookkeeping around the
// lookup itself: the incoming selection vector is loaded, the surviving
// lanes are compressed, and both the payload and the updated selection are
// written for the next operator.
func ProbeTemplate(htBytes uint64) *hid.Template {
	if htBytes < 64 {
		htBytes = 64
	}
	b := hid.NewTemplate("probe", hid.U64)
	fk := b.Stream("fk", hid.ReadStream)
	selv := b.Stream("selv", hid.ReadStream)
	out := b.Stream("out", hid.WriteStream)
	outSel := b.Stream("outsel", hid.WriteStream)
	htk := b.Table("htkeys", htBytes/2)
	htv := b.Table("htvals", htBytes/2)
	mul := b.Const("hmul", hashMul)
	mask := b.Const("hmask", (htBytes/16)-1)

	sel := b.Load("sel", selv)
	key := b.Load("key", fk)
	h1 := b.Mul("h1", key, mul)
	h2 := b.Srl("h2", h1, 32)
	idx := b.And("idx", h2, mask)
	bk := b.Gather("bk", htk, idx)
	hit := b.CmpEq("hit", bk, key)
	bv := b.Gather("bv", htv, idx)
	res := b.Select("res", hit, bv, bk)
	ns := b.And("ns", sel, hit)
	packed := b.Op("packed", "compress", res, ns)
	b.Store(out, packed)
	b.Store(outSel, ns)
	return b.MustBuild(knownOp)
}

// SumAggTemplate models the Q1-style aggregation sum(a*b) with a register
// accumulator.
func SumAggTemplate() *hid.Template {
	b := hid.NewTemplate("sumagg", hid.U64)
	a := b.Stream("a", hid.ReadStream)
	c := b.Stream("c", hid.ReadStream)
	acc := b.Acc("acc")
	x := b.Load("x", a)
	y := b.Load("y", c)
	m := b.Mul("m", x, y)
	b.Add("acc", acc, m)
	return b.MustBuild(knownOp)
}

// GroupAggTemplate models a grouped aggregation update: compute the group
// slot from the composed key, gather the current sum, add the measure, and
// scatter it back. groupBytes sizes the group table (small: it stays in L1
// for SSB's group-by cardinalities).
func GroupAggTemplate(groupBytes uint64) *hid.Template {
	if groupBytes < 64 {
		groupBytes = 64
	}
	b := hid.NewTemplate("groupagg", hid.U64)
	keys := b.Stream("keys", hid.ReadStream)
	meas := b.Stream("meas", hid.ReadStream)
	grp := b.Table("grp", groupBytes)
	mask := b.Const("gmask", (groupBytes/8)-1)

	k := b.Load("k", keys)
	v := b.Load("v", meas)
	slot := b.And("slot", k, mask)
	cur := b.Gather("cur", grp, slot)
	nv := b.Add("nv", cur, v)
	b.Store(grp, nv)
	return b.MustBuild(knownOp)
}

// BuildTemplate models the hash-join build side: hash the key and scatter
// key and payload into the bucket arrays.
func BuildTemplate(htBytes uint64) *hid.Template {
	if htBytes < 64 {
		htBytes = 64
	}
	b := hid.NewTemplate("build", hid.U64)
	keys := b.Stream("keys", hid.ReadStream)
	pay := b.Stream("pay", hid.ReadStream)
	ht := b.Table("ht", htBytes)
	mul := b.Const("hmul", hashMul)

	k := b.Load("k", keys)
	p := b.Load("p", pay)
	h1 := b.Mul("h1", k, mul)
	h2 := b.Srl("h2", h1, 32)
	x := b.Xor("x", h2, p)
	b.Store(ht, x)
	return b.MustBuild(knownOp)
}
