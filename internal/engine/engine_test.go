package engine

import (
	"testing"
	"testing/quick"

	"hef/internal/ssb"
)

func TestLinearTableBasics(t *testing.T) {
	ht := NewLinearTable(100)
	if ht.Buckets() < 400 || ht.Buckets()&(ht.Buckets()-1) != 0 {
		t.Errorf("buckets = %d, want power of two >= 4n", ht.Buckets())
	}
	for k := uint64(1); k <= 100; k++ {
		if err := ht.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	if ht.Len() != 100 {
		t.Errorf("Len = %d", ht.Len())
	}
	for k := uint64(1); k <= 100; k++ {
		v, ok := ht.Lookup(k)
		if !ok || v != k*10 {
			t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
		}
	}
	if _, ok := ht.Lookup(101); ok {
		t.Error("Lookup of absent key should miss")
	}
	if err := ht.Insert(0, 1); err == nil {
		t.Error("Insert(0) should be rejected")
	}
	// Overwrite.
	if err := ht.Insert(5, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := ht.Lookup(5); v != 99 {
		t.Errorf("overwrite failed: %d", v)
	}
	if ht.Len() != 100 {
		t.Errorf("overwrite should not grow Len: %d", ht.Len())
	}
	if ht.Bytes() != uint64(ht.Buckets())*16 {
		t.Errorf("Bytes = %d", ht.Bytes())
	}
}

func TestLinearTableFull(t *testing.T) {
	ht := NewLinearTable(2) // 16 buckets
	for k := uint64(1); k <= 16; k++ {
		if err := ht.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := ht.Insert(17, 17); err == nil {
		t.Error("inserting into a full table should fail")
	}
}

// Property: the SIMD and hybrid probe kernels agree exactly with the scalar
// kernel, including misses, for adversarial key sets that collide.
func TestProbeKernelsAgree(t *testing.T) {
	f := func(seedKeys []uint64, probe []uint64) bool {
		ht := NewLinearTable(len(seedKeys) + 1)
		want := map[uint64]uint64{}
		for i, k := range seedKeys {
			k = k%1000 + 1 // small range forces collisions
			ht.Insert(k, uint64(i)+1)
			want[k] = uint64(i) + 1
		}
		keys := make([]uint64, len(probe))
		for i, k := range probe {
			keys[i] = k%1500 + 1 // half the probes miss
		}
		n := len(keys)
		vs, vv, vh := make([]uint64, n), make([]uint64, n), make([]uint64, n)
		fs, fv, fh := make([]bool, n), make([]bool, n), make([]bool, n)
		ht.LookupBatch(keys, vs, fs)
		ht.LookupBatchSIMD(keys, vv, fv)
		ht.LookupBatchHybrid(keys, vh, fh, HybridScalarLanes)
		for i := range keys {
			wantV, wantOK := want[keys[i]]
			if fs[i] != wantOK || (wantOK && vs[i] != wantV) {
				return false
			}
			if fv[i] != fs[i] || fh[i] != fs[i] {
				return false
			}
			if fs[i] && (vv[i] != vs[i] || vh[i] != vs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func makeTestTable(n int) *ssb.Table {
	t := ssb.NewTable("t", n)
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i := 0; i < n; i++ {
		a[i] = uint64(i % 100)
		b[i] = uint64(i % 7)
	}
	t.MustAddCol("a", a)
	t.MustAddCol("b", b)
	return t
}

func TestFilterModesAgree(t *testing.T) {
	tab := makeTestTable(1000)
	preds := []Pred{Between("a", 10, 30), Eq("b", 3)}
	s, err := FilterTable(tab, preds, Scalar)
	if err != nil {
		t.Fatal(err)
	}
	v, err := FilterTable(tab, preds, SIMD)
	if err != nil {
		t.Fatal(err)
	}
	h, err := FilterTable(tab, preds, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) == 0 {
		t.Fatal("test predicates select nothing")
	}
	if len(v) != len(s) || len(h) != len(s) {
		t.Fatalf("lengths differ: scalar=%d simd=%d hybrid=%d", len(s), len(v), len(h))
	}
	for i := range s {
		if v[i] != s[i] || h[i] != s[i] {
			t.Fatalf("selection differs at %d", i)
		}
	}
}

func TestFilterOneOf(t *testing.T) {
	tab := makeTestTable(100)
	preds := []Pred{OneOf("b", 2, 5)}
	for _, mode := range []Mode{Scalar, SIMD, Hybrid} {
		sel, err := FilterTable(tab, preds, mode)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range sel {
			if b := tab.MustCol("b")[r]; b != 2 && b != 5 {
				t.Fatalf("%v selected row with b=%d", mode, b)
			}
		}
		want := 0
		for _, b := range tab.MustCol("b") {
			if b == 2 || b == 5 {
				want++
			}
		}
		if len(sel) != want {
			t.Fatalf("%v selected %d rows, want %d", mode, len(sel), want)
		}
	}
}

func TestFilterErrors(t *testing.T) {
	tab := makeTestTable(10)
	if _, err := FilterTable(tab, []Pred{Eq("nope", 1)}, Scalar); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := FilterRange(tab, nil, -1, 5, Scalar); err == nil {
		t.Error("negative lo should error")
	}
	if _, err := FilterRange(tab, nil, 0, 11, Scalar); err == nil {
		t.Error("hi beyond N should error")
	}
	if _, err := FilterTable(tab, []Pred{Eq("a", 1)}, Mode(99)); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestFilterRangeNoPreds(t *testing.T) {
	tab := makeTestTable(10)
	sel, err := FilterRange(tab, nil, 3, 7, Scalar)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 || sel[0] != 3 || sel[3] != 6 {
		t.Errorf("sel = %v", sel)
	}
}

func TestGatherColumn(t *testing.T) {
	col := []uint64{10, 11, 12, 13, 14}
	out := make([]uint64, 3)
	GatherColumn(col, []uint32{4, 0, 2}, out)
	if out[0] != 14 || out[1] != 10 || out[2] != 12 {
		t.Errorf("out = %v", out)
	}
}

func TestPredString(t *testing.T) {
	if Eq("a", 3).String() != "a = 3" {
		t.Error(Eq("a", 3).String())
	}
	if Between("a", 1, 5).String() != "1 <= a <= 5" {
		t.Error(Between("a", 1, 5).String())
	}
	if OneOf("a", 1, 2).String() != "a in [1 2]" {
		t.Error(OneOf("a", 1, 2).String())
	}
	if Scalar.String() != "scalar" || SIMD.String() != "simd" || Hybrid.String() != "hybrid" {
		t.Error("mode names")
	}
}

func TestOperatorTemplatesValidate(t *testing.T) {
	for _, tmpl := range []interface{ Validate(func(string) bool) error }{
		FilterTemplate(1), FilterTemplate(3), ProbeTemplate(1 << 20),
		SumAggTemplate(), GroupAggTemplate(4096), BuildTemplate(1 << 16),
	} {
		if err := tmpl.Validate(knownOp); err != nil {
			t.Errorf("template failed validation: %v", err)
		}
	}
	// Region clamps.
	p := ProbeTemplate(0)
	if prm, _ := p.Param("htkeys"); prm.Region == 0 {
		t.Error("ProbeTemplate should clamp tiny regions")
	}
}
