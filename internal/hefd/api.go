package hefd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hef/internal/httpapi"
)

// MaxBodyBytes caps a request body. It comfortably fits the largest valid
// spec (MaxHIDBytes plus JSON overhead) while keeping a hostile client from
// streaming gigabytes into the decoder.
const MaxBodyBytes = 1 << 20

// apiError is the shared JSON error envelope every non-2xx response
// carries (see internal/httpapi):
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": 1500}}
type apiError = httpapi.Error

// NewHandler builds the daemon's HTTP API around a Manager. tel, when
// non-nil, serves the telemetry endpoints (/metrics, /healthz, /readyz,
// /status) on the same listener, so one hardened server exposes both the
// job API and its own observability.
func NewHandler(m *Manager, tel http.Handler) http.Handler {
	// authTenant resolves the caller's tenant from the Authorization
	// header. When the daemon has no keyring, auth is off and every caller
	// acts as tenant "" (= unrestricted, the PR-7 behavior). With a
	// keyring, a missing or unknown key is a 401 — the same answer for
	// both, so a probe cannot distinguish "no key" from "wrong key" — and
	// a scope=ro key asking to mutate is a 403.
	authTenant := func(w http.ResponseWriter, r *http.Request, mutate bool) (string, bool) {
		ring := m.Keys()
		if ring.Len() == 0 {
			return "", true
		}
		key, found := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !found || key == "" {
			m.noteAuthDenied()
			writeErr(w, &AuthError{Code: AuthMissing, Message: "missing or unrecognized API key"})
			return "", false
		}
		entry, ok := ring.LookupEntry(key)
		if !ok {
			m.noteAuthDenied()
			writeErr(w, &AuthError{Code: AuthMissing, Message: "missing or unrecognized API key"})
			return "", false
		}
		if mutate && entry.ReadOnly {
			m.noteAuthDenied()
			writeErr(w, &AuthError{Code: AuthForbidden, Message: "key is read-only (scope=ro)"})
			return "", false
		}
		return entry.Tenant, true
	}
	// authJob additionally checks that the caller's tenant owns job id; a
	// cross-tenant id is a 403 (the id is real, and hiding that behind a
	// 404 would make the deterministic id scheme leak instead).
	authJob := func(w http.ResponseWriter, r *http.Request, id string, mutate bool) bool {
		tenant, ok := authTenant(w, r, mutate)
		if !ok {
			return false
		}
		if tenant == "" {
			return true
		}
		view, err := m.Get(id)
		if err != nil {
			return true // let the handler produce its own 404
		}
		if view.Tenant != tenant {
			m.noteAuthDenied()
			writeErr(w, &AuthError{Code: AuthForbidden, Message: fmt.Sprintf("job %q belongs to another tenant", id)})
			return false
		}
		return true
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		tenant, ok := authTenant(w, r, true)
		if !ok {
			return
		}
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
		if err := dec.Decode(&spec); err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, apiError{Code: "bad_json", Message: err.Error()})
			return
		}
		if tenant != "" {
			// The key decides the tenant. An explicit spec tenant may only
			// confirm it — claiming another tenant's identity is a 403.
			if spec.Tenant != "" && spec.Tenant != tenant {
				m.noteAuthDenied()
				writeErr(w, &AuthError{Code: AuthForbidden, Message: fmt.Sprintf("key is for tenant %q, spec says %q", tenant, spec.Tenant)})
				return
			}
			spec.Tenant = tenant
		}
		view, err := m.Submit(spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		httpapi.WriteJSON(w, http.StatusAccepted, view)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		tenant, ok := authTenant(w, r, false)
		if !ok {
			return
		}
		filter := r.URL.Query().Get("tenant")
		if tenant != "" {
			filter = tenant // an authenticated caller lists only its own jobs
		}
		views := m.List(filter)
		httpapi.WriteJSON(w, http.StatusOK, map[string]any{"jobs": views})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !authJob(w, r, r.PathValue("id"), false) {
			return
		}
		view, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		httpapi.WriteJSON(w, http.StatusOK, view)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		if !authJob(w, r, r.PathValue("id"), false) {
			return
		}
		data, err := m.Report(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		// The stored report bytes are served verbatim — no re-marshal — so
		// the byte-identity guarantee survives the HTTP layer.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !authJob(w, r, r.PathValue("id"), true) {
			return
		}
		view, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		httpapi.WriteJSON(w, http.StatusOK, view)
	})
	if tel != nil {
		for _, p := range []string{"/metrics", "/healthz", "/readyz", "/status"} {
			mux.Handle("GET "+p, tel)
		}
	}
	return mux
}

// writeErr maps the manager's typed errors onto the HTTP surface. Shed
// responses carry a Retry-After header (whole seconds, rounded up) so
// well-behaved clients back off exactly as the admission layer suggests.
func writeErr(w http.ResponseWriter, err error) {
	var shed *ShedError
	var auth *AuthError
	switch {
	case errors.As(err, &auth):
		httpapi.WriteAuth(w, auth)
	case errors.As(err, &shed):
		status := http.StatusTooManyRequests
		if shed.Code == ShedBreakerOpen || shed.Code == ShedDraining {
			status = http.StatusServiceUnavailable
		}
		body := apiError{Code: shed.Code, Message: shed.Message}
		if shed.RetryAfter > 0 {
			body.RetryAfterMS = shed.RetryAfter.Milliseconds()
			secs := int64((shed.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		}
		httpapi.WriteError(w, status, body)
	case errors.Is(err, ErrInvalidSpec):
		httpapi.WriteError(w, http.StatusBadRequest, apiError{Code: "invalid_spec", Message: err.Error()})
	case errors.Is(err, ErrStorage):
		httpapi.WriteError(w, http.StatusServiceUnavailable, apiError{Code: "storage_unavailable", Message: err.Error()})
	case errors.Is(err, ErrUnknownJob):
		httpapi.WriteError(w, http.StatusNotFound, apiError{Code: "unknown_job", Message: err.Error()})
	case errors.Is(err, ErrReportNotReady):
		httpapi.WriteError(w, http.StatusConflict, apiError{Code: "report_not_ready", Message: err.Error()})
	default:
		httpapi.WriteError(w, http.StatusInternalServerError, apiError{Code: "internal", Message: err.Error()})
	}
}
