package hefd

import (
	"sync"
	"time"
)

// QuotaConfig tunes the per-tenant token buckets. The zero value disables
// quotas entirely (every submission passes).
type QuotaConfig struct {
	// Rate is the sustained refill in jobs per second (<= 0 disables).
	Rate float64
	// Burst is the bucket capacity — how many submissions a tenant may make
	// back to back before the rate applies (<= 0 selects 1).
	Burst float64
}

// quotas is the per-tenant token-bucket table. Buckets are created lazily
// on first submission; the table is bounded by the number of distinct
// tenants ever seen, each entry two words — a hostile tenant churning
// through names costs bytes, not goroutines.
type quotas struct {
	cfg QuotaConfig

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(cfg QuotaConfig) *quotas {
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = 1
	}
	return &quotas{cfg: cfg, buckets: map[string]*bucket{}}
}

// take spends one token from tenant's bucket. When the bucket is dry it
// reports ok=false and how long until the next token accrues — the exact
// Retry-After for the 429.
func (q *quotas) take(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if q.cfg.Rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, found := q.buckets[tenant]
	if !found {
		b = &bucket{tokens: q.cfg.Burst, last: now}
		q.buckets[tenant] = b
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * q.cfg.Rate
		if b.tokens > q.cfg.Burst {
			b.tokens = q.cfg.Burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / q.cfg.Rate * float64(time.Second))
}
