package hefd

import (
	"sync"
	"time"
)

// QuotaConfig tunes the per-tenant token buckets. The zero value disables
// quotas entirely (every submission passes).
type QuotaConfig struct {
	// Rate is the sustained refill in jobs per second (<= 0 disables).
	Rate float64
	// Burst is the bucket capacity — how many submissions a tenant may make
	// back to back before the rate applies (<= 0 selects 1).
	Burst float64
}

// normalized returns the config with the burst default applied.
func (c QuotaConfig) normalized() QuotaConfig {
	if c.Rate > 0 && c.Burst <= 0 {
		c.Burst = 1
	}
	return c
}

// quotas is the per-tenant token-bucket table. Buckets are created lazily
// on first submission; the table is bounded by the number of distinct
// tenants ever seen, each entry two words — a hostile tenant churning
// through names costs bytes, not goroutines.
type quotas struct {
	cfg QuotaConfig

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(cfg QuotaConfig) *quotas {
	return &quotas{cfg: cfg.normalized(), buckets: map[string]*bucket{}}
}

// take spends one token from tenant's bucket. override, when non-nil, is
// the tenant's key-file quota (it replaces the global config for this
// tenant, and may enable quotas even when they are globally off). When the
// bucket is dry it reports ok=false and how long until the next token
// accrues — the exact Retry-After for the 429.
func (q *quotas) take(tenant string, now time.Time, override *QuotaConfig) (ok bool, retryAfter time.Duration) {
	cfg := q.cfg
	if override != nil {
		cfg = override.normalized()
	}
	if cfg.Rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, found := q.buckets[tenant]
	if !found {
		b = &bucket{tokens: cfg.Burst, last: now}
		q.buckets[tenant] = b
	}
	// Refill only for time that actually elapsed. The refill anchor never
	// moves backwards: a clock that steps back must not re-mint tokens for
	// an interval that was already credited once the clock recovers.
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * cfg.Rate
		if b.tokens > cfg.Burst {
			b.tokens = cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / cfg.Rate * float64(time.Second))
}

// snapshot serializes every bucket for the admission.state file.
func (q *quotas) snapshot() map[string]BucketState {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buckets) == 0 {
		return nil
	}
	out := make(map[string]BucketState, len(q.buckets))
	for tenant, b := range q.buckets {
		out[tenant] = BucketState{Tokens: b.tokens, LastMS: b.last.UnixMilli()}
	}
	return out
}

// restore replaces the bucket table with a loaded snapshot, so a restart
// neither refunds a dry bucket nor forgets a partially refilled one.
func (q *quotas) restore(states map[string]BucketState) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.buckets = make(map[string]*bucket, len(states))
	for tenant, s := range states {
		q.buckets[tenant] = &bucket{tokens: s.Tokens, last: time.UnixMilli(s.LastMS)}
	}
}
