package hefd

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"hef/internal/store"
)

// ErrStorage marks a write-ahead append that could not be made durable. A
// submission that cannot be logged is refused — the daemon's contract is
// that an acknowledged job survives kill -9, so it never acknowledges a job
// it could not persist.
var ErrStorage = errors.New("hefd: job log unavailable")

// JobLogName is the write-ahead log file inside the data directory.
const JobLogName = "jobs.log"

// walKind discriminates job-log records.
const (
	walSpec   = "spec"   // job accepted: carries the sequence number and full spec
	walState  = "state"  // lifecycle transition: carries the new state (and error)
	walReport = "report" // completion: carries the final RunReport bytes
	walTomb   = "tomb"   // retention: the job and its artifacts are expired
	walSeq    = "seq"    // compaction high-water mark: ids never restart below Seq
)

// walRecord is one framed record of the job log. Every record is appended
// and fsynced before the effect it describes is acknowledged, so the log
// replays to the daemon's accepted state after any crash.
type walRecord struct {
	Kind  string   `json:"kind"`
	ID    string   `json:"id,omitempty"`
	Seq   int      `json:"seq,omitempty"`
	Spec  *JobSpec `json:"spec,omitempty"`
	State JobState `json:"state,omitempty"`
	Error string   `json:"error,omitempty"`
	// Report holds the final obs.RunReport bytes verbatim, as a JSON string
	// rather than embedded JSON: json.Marshal compacts embedded RawMessage,
	// and byte-identical crash recovery needs the exact indented bytes back.
	Report string `json:"report,omitempty"`
	// AtMS timestamps terminal transitions (unix milliseconds) so the
	// retention sweep can age jobs out; zero means unknown — an unknown
	// terminal time counts as already aged when an age policy is active.
	AtMS int64 `json:"at_ms,omitempty"`
}

// walKindKnown reports whether kind is one of the closed record-kind set;
// hefdoctor uses it (through ScanJobLog) to classify job logs by content.
func walKindKnown(kind string) bool {
	switch kind {
	case walSpec, walState, walReport, walTomb, walSeq:
		return true
	}
	return false
}

// JobLogSummary describes the intact content of a job log, for hefdoctor.
type JobLogSummary struct {
	// Records counts valid framed records.
	Records int
	// Jobs counts distinct spec records (accepted jobs still in the log).
	Jobs int
	// Tombstones counts retention tombstones.
	Tombstones int
}

// ScanJobLog validates data as a job write-ahead log: CRC-framed records
// whose payloads decode as job-log records of a known kind. It returns a
// content summary, the length of the valid prefix, and the error that
// stopped the scan (nil when every byte checked out) — the verification
// primitive behind hefdoctor's job-log findings.
func ScanJobLog(data []byte) (JobLogSummary, int, error) {
	var sum JobLogSummary
	seen := map[string]bool{}
	validLen, err := store.ScanRecords(data, func(payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("%w: job log record: %v", store.ErrCorrupt, err)
		}
		if !walKindKnown(rec.Kind) {
			return fmt.Errorf("%w: job log record kind %q unknown", store.ErrCorrupt, rec.Kind)
		}
		sum.Records++
		switch rec.Kind {
		case walSpec:
			if !seen[rec.ID] {
				seen[rec.ID] = true
				sum.Jobs++
			}
		case walTomb:
			sum.Tombstones++
		}
		return nil
	})
	return sum, validLen, err
}

// JobLog is the append-only, CRC-framed write-ahead log of accepted jobs.
// Open salvages a torn tail (the kill -9 artifact) into a .quarantine
// sidecar exactly like the memo store's shards, so one interrupted append
// costs that record, never the log.
type JobLog struct {
	fs   store.FS
	path string

	mu       sync.Mutex
	f        store.File
	degraded string // first persistence failure; appends stop, reads keep serving
	salvaged int    // bytes quarantined at open
}

// OpenJobLog opens (creating if needed) the job log in dir and replays its
// records in append order through replay. A torn or corrupt tail is
// truncated to the longest valid prefix with the bad suffix preserved in
// jobs.log.quarantine.
func OpenJobLog(fsys store.FS, dir string, replay func(walRecord)) (*JobLog, error) {
	if fsys == nil {
		fsys = store.OS
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("hefd: job log dir: %w", err)
	}
	l := &JobLog{fs: fsys, path: filepath.Join(dir, JobLogName)}
	// A crash mid-compaction leaves the temp file behind; sweep it so the
	// directory stays bounded across any number of interrupted compactions.
	store.RemoveStaleTemps(fsys, l.path)

	data, err := fsys.ReadFile(l.path)
	if err != nil {
		// A missing log is a first boot; anything else (permission, I/O) is
		// fatal — silently starting empty would orphan accepted jobs.
		if _, statErr := fsys.Stat(l.path); statErr == nil {
			return nil, fmt.Errorf("hefd: job log read: %w", err)
		}
		data = nil
	}
	validLen, scanErr := store.ScanRecords(data, func(payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// CRC passed but JSON did not: a foreign or future record.
			// Refuse rather than guess — the log is the source of truth.
			return fmt.Errorf("%w: job log record: %v", store.ErrCorrupt, err)
		}
		if replay != nil {
			replay(rec)
		}
		return nil
	})
	if scanErr != nil {
		l.quarantine(data[validLen:], validLen, scanErr)
		if err := fsys.Truncate(l.path, int64(validLen)); err != nil {
			return nil, fmt.Errorf("hefd: job log truncate after salvage: %w", err)
		}
	}

	f, err := fsys.OpenAppend(l.path)
	if err != nil {
		return nil, fmt.Errorf("hefd: job log open: %w", err)
	}
	l.f = f
	return l, nil
}

// quarantine preserves the invalid suffix in a sidecar: a one-line JSON
// header describing the event, then the raw bytes.
func (l *JobLog) quarantine(bad []byte, offset int, cause error) {
	l.salvaged = len(bad)
	side, err := l.fs.OpenAppend(l.path + ".quarantine")
	if err != nil {
		return // salvage still happened; only the post-mortem copy is lost
	}
	meta, _ := json.Marshal(map[string]any{
		"offset": offset, "bytes": len(bad), "reason": cause.Error(),
	})
	_, _ = side.Write(append(append(meta, '\n'), bad...))
	_ = side.Close()
}

// Salvaged reports how many bytes the open scan quarantined (0 on a clean
// log).
func (l *JobLog) Salvaged() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.salvaged
}

// Degraded reports the first append failure ("" while healthy).
func (l *JobLog) Degraded() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

// Append frames, writes, and fsyncs one record. The first failure degrades
// the log — further appends return ErrStorage immediately — because a log
// that failed mid-write can no longer promise ordering.
func (l *JobLog) Append(rec walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("%w: marshal: %w", ErrStorage, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.degraded != "" {
		return fmt.Errorf("%w: %s", ErrStorage, l.degraded)
	}
	if l.f == nil {
		return fmt.Errorf("%w: closed", ErrStorage)
	}
	frame := store.AppendRecord(nil, payload)
	if _, err := l.f.Write(frame); err != nil {
		l.degraded = err.Error()
		return fmt.Errorf("%w: %w", ErrStorage, err)
	}
	if err := l.f.Sync(); err != nil {
		l.degraded = err.Error()
		return fmt.Errorf("%w: %w", ErrStorage, err)
	}
	return nil
}

// Compact rewrites the log so it holds exactly recs, in order, via the
// atomic temp+fsync+rename discipline: a kill -9 at any byte of the
// compaction leaves either the old log or the new log fully intact on
// disk, never a mix. On success the append handle points at the new log;
// on failure the old log is untouched and appending resumes against it.
// It returns the compacted log's size in bytes.
func (l *JobLog) Compact(recs []walRecord) (int, error) {
	var buf []byte
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			return 0, fmt.Errorf("hefd: compact marshal: %w", err)
		}
		buf = store.AppendRecord(buf, payload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.degraded != "" {
		return 0, fmt.Errorf("%w: %s", ErrStorage, l.degraded)
	}
	// The append handle must close before the rename replaces the inode:
	// a write through the old handle after the swap would vanish.
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return 0, fmt.Errorf("hefd: compact close: %w", err)
		}
		l.f = nil
	}
	rewriteErr := store.RewriteFile(l.fs, l.path, buf)
	f, openErr := l.fs.OpenAppend(l.path)
	if openErr != nil {
		// Whichever generation survived, it can no longer be appended to;
		// degrade exactly like a failed append.
		l.degraded = openErr.Error()
		if rewriteErr != nil {
			return 0, fmt.Errorf("%w: %v (reopen also failed: %v)", ErrStorage, rewriteErr, openErr)
		}
		return 0, fmt.Errorf("%w: reopen after compaction: %v", ErrStorage, openErr)
	}
	l.f = f
	if rewriteErr != nil {
		return 0, fmt.Errorf("hefd: compact: %w", rewriteErr)
	}
	return len(buf), nil
}

// Size reports the log's current on-disk size in bytes (0 when missing).
func (l *JobLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	info, err := l.fs.Stat(l.path)
	if err != nil {
		return 0
	}
	return info.Size()
}

// Close releases the append handle. Safe to call more than once.
func (l *JobLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}
