package hefd

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hef/internal/leakcheck"
	"hef/internal/obs"
)

// nThousand is the concurrent-submission scale of the load test: enough to
// prove the bounded-queue claim is structural, small enough for CI.
const nThousand = 2000

// Thousands of concurrent submissions against a small queue: admission
// must bound the accepted set at queue capacity, shed everyone else with a
// typed retryable error, lose none of the accepted jobs, and return the
// process to its starting goroutine population.
func TestLoadThousandsOfSubmissionsBoundedQueue(t *testing.T) {
	leakcheck.Check(t)
	release := make(chan struct{})
	const queueSize = 32
	m := newTestManager(t, Config{Workers: 4, QueueSize: queueSize, runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
		select {
		case <-release:
			return stubRun(ctx, spec, op)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted []string
		shed     atomic.Int64
	)
	for i := 0; i < nThousand; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Submit(JobSpec{Ops: []string{"murmur"}})
			if err == nil {
				mu.Lock()
				accepted = append(accepted, v.ID)
				mu.Unlock()
				return
			}
			var se *ShedError
			if !errors.As(err, &se) || se.Code != ShedQueueFull {
				t.Errorf("unexpected refusal: %v", err)
				return
			}
			if se.RetryAfter <= 0 {
				t.Error("shed without Retry-After")
			}
			shed.Add(1)
		}()
	}
	wg.Wait()

	if len(accepted) == 0 || len(accepted) > queueSize {
		t.Fatalf("accepted %d jobs with queue size %d", len(accepted), queueSize)
	}
	if int(shed.Load())+len(accepted) != nThousand {
		t.Fatalf("accounting hole: %d accepted + %d shed != %d", len(accepted), shed.Load(), nThousand)
	}
	c := m.Counts()
	if c.Accepted != len(accepted) || c.Shed != int(shed.Load()) {
		t.Fatalf("counters disagree with observations: %+v", c)
	}

	// Zero lost accepted jobs: every single one finishes and serves its
	// report once the overload passes.
	close(release)
	for _, id := range accepted {
		waitState(t, m, id, StateDone)
		if _, err := m.Report(id); err != nil {
			t.Fatalf("accepted job %s has no report: %v", id, err)
		}
	}
	// Admission recovered with the backlog gone.
	if _, err := m.Submit(JobSpec{Ops: []string{"crc64"}}); err != nil {
		t.Fatalf("post-load submit refused: %v", err)
	}
}

// A seeded storm of mixed-fate jobs across tenants, with quotas and
// breakers live: whatever the interleaving, every accepted job reaches a
// terminal state, reports exist exactly for the done ones, and shutdown
// leaks nothing.
func TestChaosMixedTenantsSeededOutcomes(t *testing.T) {
	leakcheck.Check(t)
	// Deterministic per-(tenant,op) fate from a seeded hash — no RNG state
	// shared across goroutines, same fates every run.
	fate := func(tenant, op string) uint32 {
		h := fnv.New32a()
		fmt.Fprintf(h, "seed42|%s|%s", tenant, op)
		return h.Sum32()
	}
	m := newTestManager(t, Config{
		Workers:   4,
		QueueSize: 64,
		Quota:     QuotaConfig{Rate: 1000, Burst: 40},
		Breaker:   BreakerConfig{Threshold: 8, Cooldown: time.Minute},
		runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
			switch fate(spec.Tenant, op) % 4 {
			case 0:
				return nil, errors.New("chaotic failure")
			case 1:
				time.Sleep(time.Millisecond)
			}
			return stubRun(ctx, spec, op)
		},
	})

	tenants := []string{"t0", "t1", "t2"}
	ops := [][]string{{"murmur"}, {"crc64", "probe"}, {"filter"}, {"agg", "bloom"}}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted []string
	)
	for i := 0; i < 200; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Submit(JobSpec{Tenant: tenants[i%len(tenants)], Ops: ops[i%len(ops)]})
			if err != nil {
				var se *ShedError
				if !errors.As(err, &se) {
					t.Errorf("untyped refusal: %v", err)
				}
				return
			}
			mu.Lock()
			accepted = append(accepted, v.ID)
			mu.Unlock()
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(30 * time.Second)
	for _, id := range accepted {
		for {
			v, err := m.Get(id)
			if err != nil {
				t.Fatalf("accepted job %s vanished: %v", id, err)
			}
			if v.State.Terminal() {
				// Reports exist exactly for done jobs.
				_, rerr := m.Report(id)
				if v.State == StateDone && rerr != nil {
					t.Fatalf("done job %s without report: %v", id, rerr)
				}
				if v.State != StateDone && !errors.Is(rerr, ErrReportNotReady) {
					t.Fatalf("%s job %s served a report", v.State, id)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, v.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// Drain under load: a manager with running and queued jobs closes
// gracefully — runners park, queued jobs park, nothing hangs, and the
// goroutine population returns to baseline (the satellite leak assertion
// on the drain path).
func TestDrainUnderLoadLeaksNothing(t *testing.T) {
	leakcheck.Check(t)
	m := newTestManager(t, Config{Workers: 2, QueueSize: 16, runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	var ids []string
	for i := 0; i < 8; i++ {
		v, err := m.Submit(JobSpec{Ops: []string{"murmur"}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}
	done := make(chan error, 1)
	go func() { done <- m.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain hung with blocked jobs")
	}
	for _, id := range ids {
		v, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateParked {
			t.Fatalf("job %s is %s after drain, want parked", id, v.State)
		}
	}
}
