package hefd

import (
	"testing"
	"time"
)

func TestQuotaDisabledByZeroConfig(t *testing.T) {
	q := newQuotas(QuotaConfig{})
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := q.take("anyone", now); !ok {
			t.Fatalf("submission %d refused with quotas disabled", i)
		}
	}
}

func TestQuotaBurstThenRefusal(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1, Burst: 3})
	now := time.Unix(100, 0)
	for i := 0; i < 3; i++ {
		if ok, _ := q.take("a", now); !ok {
			t.Fatalf("burst submission %d refused", i)
		}
	}
	ok, wait := q.take("a", now)
	if ok {
		t.Fatal("4th back-to-back submission admitted past the burst")
	}
	// The bucket is exactly empty: one token accrues in 1s at rate 1.
	if wait != time.Second {
		t.Fatalf("retry-after = %v, want 1s", wait)
	}
}

func TestQuotaRefillsAtRate(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 2, Burst: 2})
	now := time.Unix(100, 0)
	q.take("a", now)
	q.take("a", now)
	if ok, _ := q.take("a", now); ok {
		t.Fatal("bucket should be dry")
	}
	// 500ms at 2 jobs/s accrues exactly one token.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := q.take("a", now); !ok {
		t.Fatal("token not refilled after 500ms at rate 2")
	}
	if ok, _ := q.take("a", now); ok {
		t.Fatal("second token granted from a 500ms refill at rate 2")
	}
}

func TestQuotaCapsAtBurst(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1, Burst: 2})
	now := time.Unix(100, 0)
	q.take("a", now)
	// An hour idle must not accumulate an hour of tokens.
	now = now.Add(time.Hour)
	granted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := q.take("a", now); ok {
			granted++
		}
	}
	if granted != 2 {
		t.Fatalf("granted %d after long idle, want burst cap 2", granted)
	}
}

func TestQuotaTenantsAreIndependent(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1, Burst: 1})
	now := time.Unix(100, 0)
	if ok, _ := q.take("a", now); !ok {
		t.Fatal("tenant a refused its first submission")
	}
	if ok, _ := q.take("a", now); ok {
		t.Fatal("tenant a admitted past its burst")
	}
	if ok, _ := q.take("b", now); !ok {
		t.Fatal("tenant b shed by tenant a's consumption")
	}
}

func TestQuotaBurstDefaultsToOne(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1})
	now := time.Unix(100, 0)
	if ok, _ := q.take("a", now); !ok {
		t.Fatal("first submission refused")
	}
	if ok, _ := q.take("a", now); ok {
		t.Fatal("second back-to-back submission admitted with default burst 1")
	}
}
