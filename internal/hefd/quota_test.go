package hefd

import (
	"testing"
	"time"
)

func TestQuotaDisabledByZeroConfig(t *testing.T) {
	q := newQuotas(QuotaConfig{})
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := q.take("anyone", now, nil); !ok {
			t.Fatalf("submission %d refused with quotas disabled", i)
		}
	}
}

func TestQuotaBurstThenRefusal(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1, Burst: 3})
	now := time.Unix(100, 0)
	for i := 0; i < 3; i++ {
		if ok, _ := q.take("a", now, nil); !ok {
			t.Fatalf("burst submission %d refused", i)
		}
	}
	ok, wait := q.take("a", now, nil)
	if ok {
		t.Fatal("4th back-to-back submission admitted past the burst")
	}
	// The bucket is exactly empty: one token accrues in 1s at rate 1.
	if wait != time.Second {
		t.Fatalf("retry-after = %v, want 1s", wait)
	}
}

func TestQuotaRefillsAtRate(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 2, Burst: 2})
	now := time.Unix(100, 0)
	q.take("a", now, nil)
	q.take("a", now, nil)
	if ok, _ := q.take("a", now, nil); ok {
		t.Fatal("bucket should be dry")
	}
	// 500ms at 2 jobs/s accrues exactly one token.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := q.take("a", now, nil); !ok {
		t.Fatal("token not refilled after 500ms at rate 2")
	}
	if ok, _ := q.take("a", now, nil); ok {
		t.Fatal("second token granted from a 500ms refill at rate 2")
	}
}

func TestQuotaCapsAtBurst(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1, Burst: 2})
	now := time.Unix(100, 0)
	q.take("a", now, nil)
	// An hour idle must not accumulate an hour of tokens.
	now = now.Add(time.Hour)
	granted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := q.take("a", now, nil); ok {
			granted++
		}
	}
	if granted != 2 {
		t.Fatalf("granted %d after long idle, want burst cap 2", granted)
	}
}

func TestQuotaTenantsAreIndependent(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1, Burst: 1})
	now := time.Unix(100, 0)
	if ok, _ := q.take("a", now, nil); !ok {
		t.Fatal("tenant a refused its first submission")
	}
	if ok, _ := q.take("a", now, nil); ok {
		t.Fatal("tenant a admitted past its burst")
	}
	if ok, _ := q.take("b", now, nil); !ok {
		t.Fatal("tenant b shed by tenant a's consumption")
	}
}

func TestQuotaBurstDefaultsToOne(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1})
	now := time.Unix(100, 0)
	if ok, _ := q.take("a", now, nil); !ok {
		t.Fatal("first submission refused")
	}
	if ok, _ := q.take("a", now, nil); ok {
		t.Fatal("second back-to-back submission admitted with default burst 1")
	}
}

// A clock stepping backwards (NTP correction, VM migration) must not mint
// tokens: the refill anchor never moves back, so the interval between the
// step-back and the recovery is credited exactly once.
func TestQuotaBackwardsClockMintsNothing(t *testing.T) {
	q := newQuotas(QuotaConfig{Rate: 1, Burst: 1})
	now := time.Unix(100, 0)
	if ok, _ := q.take("a", now, nil); !ok {
		t.Fatal("first submission refused")
	}
	// Time steps back a minute. The dry bucket must stay dry.
	past := now.Add(-time.Minute)
	if ok, _ := q.take("a", past, nil); ok {
		t.Fatal("backwards clock minted a token")
	}
	// The clock recovers to its original reading: still no elapsed time
	// relative to the last refill anchor, so still dry. A naive
	// last-observation anchor would double-credit the minute here.
	if ok, _ := q.take("a", now, nil); ok {
		t.Fatal("clock recovery double-credited the backwards interval")
	}
	// Genuine progress past the anchor refills as usual.
	if ok, _ := q.take("a", now.Add(time.Second), nil); !ok {
		t.Fatal("refill refused after genuine elapsed time")
	}
}

// A key-file override replaces the global config for that tenant — and can
// enable quotas for a tenant even when the daemon-wide quota is off.
func TestQuotaOverridePerTenant(t *testing.T) {
	q := newQuotas(QuotaConfig{}) // globally off
	now := time.Unix(100, 0)
	ov := &QuotaConfig{Rate: 1, Burst: 2}
	if ok, _ := q.take("a", now, ov); !ok {
		t.Fatal("override tenant refused its burst")
	}
	if ok, _ := q.take("a", now, ov); !ok {
		t.Fatal("override tenant refused its second burst token")
	}
	ok, wait := q.take("a", now, ov)
	if ok {
		t.Fatal("override tenant admitted past its burst")
	}
	if wait != time.Second {
		t.Fatalf("override Retry-After = %v, want 1s at rate 1", wait)
	}
	// Tenants without an override still ride the (disabled) global config.
	if ok, _ := q.take("b", now, nil); !ok {
		t.Fatal("non-override tenant refused with global quotas off")
	}
}
