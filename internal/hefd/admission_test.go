package hefd

import (
	"sync"
	"testing"
	"time"
)

func TestShedBackoffDoublesAndResets(t *testing.T) {
	b := shedBackoff{base: 100 * time.Millisecond, max: 5 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond,
		5 * time.Second, 5 * time.Second, // capped
	}
	for i, w := range want {
		if got := b.next(); got != w {
			t.Fatalf("shed %d: retry-after %v, want %v", i, got, w)
		}
	}
	b.reset()
	if got := b.next(); got != 100*time.Millisecond {
		t.Fatalf("after reset: %v, want base again", got)
	}
}

func TestShedBackoffNeverOverflows(t *testing.T) {
	b := shedBackoff{base: time.Second, max: 30 * time.Second}
	for i := 0; i < 100; i++ {
		if d := b.next(); d <= 0 || d > 30*time.Second {
			t.Fatalf("shed %d: retry-after %v outside (0, 30s]", i, d)
		}
	}
}

func TestTenantBreakerDisabledByZeroThreshold(t *testing.T) {
	tb := newTenantBreakers(BreakerConfig{})
	now := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		tb.onResult("a", false, now)
	}
	if ok, _ := tb.allow("a", now); !ok {
		t.Fatal("disabled breaker shed a tenant")
	}
}

func TestTenantBreakerOpensAfterThreshold(t *testing.T) {
	tb := newTenantBreakers(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Second})
	now := time.Unix(100, 0)
	tb.onResult("a", false, now)
	tb.onResult("a", false, now)
	if ok, _ := tb.allow("a", now); !ok {
		t.Fatal("breaker opened below threshold")
	}
	tb.onResult("a", false, now)
	ok, wait := tb.allow("a", now.Add(4*time.Second))
	if ok {
		t.Fatal("breaker did not open at threshold")
	}
	if wait != 6*time.Second {
		t.Fatalf("retry-after = %v, want remaining cooldown 6s", wait)
	}
	// Another tenant is unaffected.
	if ok, _ := tb.allow("b", now); !ok {
		t.Fatal("tenant b shed by tenant a's breaker")
	}
}

func TestTenantBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	tb := newTenantBreakers(BreakerConfig{Threshold: 1, Cooldown: 10 * time.Second})
	now := time.Unix(100, 0)
	tb.onResult("a", false, now)
	after := now.Add(11 * time.Second)
	if ok, _ := tb.allow("a", after); !ok {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if ok, _ := tb.allow("a", after); ok {
		t.Fatal("second submission admitted while the probe is in flight")
	}
	// Probe success closes the circuit fully.
	tb.onResult("a", true, after)
	for i := 0; i < 3; i++ {
		if ok, _ := tb.allow("a", after); !ok {
			t.Fatalf("submission %d refused after the probe closed the circuit", i)
		}
	}
}

func TestTenantBreakerFailedProbeReopens(t *testing.T) {
	tb := newTenantBreakers(BreakerConfig{Threshold: 1, Cooldown: 10 * time.Second})
	now := time.Unix(100, 0)
	tb.onResult("a", false, now)
	after := now.Add(11 * time.Second)
	if ok, _ := tb.allow("a", after); !ok {
		t.Fatal("probe refused")
	}
	tb.onResult("a", false, after)
	// Re-opened for a fresh cooldown from the probe's failure.
	if ok, wait := tb.allow("a", after.Add(5*time.Second)); ok || wait != 5*time.Second {
		t.Fatalf("after failed probe: ok=%v wait=%v, want shed with 5s", ok, wait)
	}
	if ok, _ := tb.allow("a", after.Add(11*time.Second)); !ok {
		t.Fatal("next probe refused after the fresh cooldown")
	}
}

func TestTenantBreakerReleaseFreesTheProbeSlot(t *testing.T) {
	tb := newTenantBreakers(BreakerConfig{Threshold: 1, Cooldown: 10 * time.Second})
	now := time.Unix(100, 0)
	tb.onResult("a", false, now)
	after := now.Add(11 * time.Second)
	if ok, _ := tb.allow("a", after); !ok {
		t.Fatal("probe refused")
	}
	// The probe job was cancelled/parked: neutral, so the slot frees and
	// the next submission becomes the new probe instead of waiting out a
	// phantom cooldown.
	tb.release("a")
	if ok, _ := tb.allow("a", after); !ok {
		t.Fatal("probe slot not freed by release")
	}
}

func TestTenantBreakerConcurrentHalfOpenAdmitsExactlyOne(t *testing.T) {
	tb := newTenantBreakers(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	now := time.Unix(100, 0)
	tb.onResult("a", false, now)
	after := now.Add(2 * time.Second)

	var wg sync.WaitGroup
	admitted := make(chan bool, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, _ := tb.allow("a", after)
			admitted <- ok
		}()
	}
	wg.Wait()
	close(admitted)
	n := 0
	for ok := range admitted {
		if ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d concurrent submissions admitted in half-open, want exactly 1", n)
	}
}
