// Package hefd is the HEF-as-a-service layer: a fault-tolerant job manager
// and HTTP/JSON API that runs the offline optimization pipeline
// (candidate generation, pruning search, simulation) as a long-lived,
// multi-tenant daemon. Its contract is that it degrades gracefully and
// loses no work:
//
//   - Admission control sheds overload instead of queueing it unboundedly:
//     a full global queue or an exhausted per-tenant token bucket answers
//     HTTP 429 with a Retry-After derived from backoff state, and a tenant
//     whose jobs keep failing is shed by a circuit breaker with a typed
//     JSON error. Memory and goroutines stay bounded at any request rate.
//   - Every accepted job is persisted write-ahead to a CRC-framed job log
//     before the 202 acknowledgement, and its sweep progress checkpoints
//     after every operator. kill -9 mid-sweep followed by a restart
//     resumes every non-terminal job and produces an obs.RunReport
//     byte-identical to an uninterrupted run.
//   - SIGTERM drains gracefully: readiness flips to draining, new
//     submissions are refused, running jobs checkpoint and park, and the
//     next start picks them back up.
//
// The package composes the existing robustness libraries — internal/sched
// (supervised pool, retries, checkpoint/resume), internal/store (durable
// record logs), internal/telemetry (health, metrics) — behind cmd/hefd.
// DESIGN.md §11 specifies the API schemas and the job lifecycle state
// machine.
package hefd

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"

	"hef/internal/core"
	"hef/internal/experiments"
	"hef/internal/isa"
)

// ErrInvalidSpec wraps every job-spec validation failure; the API maps it
// to HTTP 400.
var ErrInvalidSpec = errors.New("hefd: invalid job spec")

// Service-protecting caps on a submitted spec. They bound the work and
// memory one job can claim, so a hostile or fat-fingered submission cannot
// take the daemon down; jobs needing more should be split.
const (
	// MaxOpsPerJob caps the operators one job may optimize.
	MaxOpsPerJob = 16
	// MaxElems caps the synthetic test size per evaluation.
	MaxElems = 1 << 22
	// MaxHIDBytes caps an inline HID template source.
	MaxHIDBytes = 64 << 10
	// MaxTenantLen caps the tenant identifier length.
	MaxTenantLen = 64
	// MaxParallel caps the per-search evaluator workers a job may request.
	MaxParallel = 64
)

// DefaultTenant is assumed when a submission names no tenant.
const DefaultTenant = "default"

// JobSpec is the body of POST /v1/jobs: one optimization job — a set of
// operators (built-in names, or template names resolved against an inline
// HID program) optimized on one CPU model.
type JobSpec struct {
	// Tenant identifies the submitter for quotas and the circuit breaker
	// ("" selects DefaultTenant).
	Tenant string `json:"tenant,omitempty"`
	// CPU names the processor model ("" selects "silver").
	CPU string `json:"cpu,omitempty"`
	// Ops lists the operators to optimize: built-in names (murmur, crc64,
	// probe, filter, agg, bloom), or template names defined in HID.
	Ops []string `json:"ops"`
	// HID, when non-empty, is an inline HID template source the Ops names
	// resolve against instead of the built-ins.
	HID string `json:"hid,omitempty"`
	// Elems is the synthetic test size per evaluation (0 selects 1<<14).
	Elems int64 `json:"elems,omitempty"`
	// Budget caps node evaluations per operator search (0 = unlimited); an
	// exhausted budget reports the deterministic best-so-far optimum.
	Budget int `json:"budget,omitempty"`
	// Parallel is the evaluator worker count per search (0 selects 1). The
	// report is byte-identical for every setting.
	Parallel int `json:"parallel,omitempty"`
	// DeadlineMS is the per-job wall-clock deadline in milliseconds
	// (0 = none). An exceeded deadline fails the job terminally.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Normalize fills defaults in place. It runs before Validate and before
// Fingerprint, so a spec submitted with explicit defaults and one submitted
// with zero values are the same job.
func (s *JobSpec) Normalize() {
	if s.Tenant == "" {
		s.Tenant = DefaultTenant
	}
	if s.CPU == "" {
		s.CPU = "silver"
	}
	if s.Elems == 0 {
		s.Elems = 1 << 14
	}
	if s.Parallel == 0 {
		s.Parallel = 1
	}
}

// Validate rejects a spec the daemon must not run: unknown CPU models or
// operators, over-cap sizes, and malformed tenants all wrap ErrInvalidSpec.
// Call Normalize first.
func (s *JobSpec) Validate() error {
	if err := validTenant(s.Tenant); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidSpec, err)
	}
	if _, err := isa.ByName(s.CPU); err != nil {
		return fmt.Errorf("%w: cpu: %w", ErrInvalidSpec, err)
	}
	if len(s.Ops) == 0 {
		return fmt.Errorf("%w: ops selects no operators", ErrInvalidSpec)
	}
	if len(s.Ops) > MaxOpsPerJob {
		return fmt.Errorf("%w: %d ops exceeds the per-job cap %d", ErrInvalidSpec, len(s.Ops), MaxOpsPerJob)
	}
	if len(s.HID) > MaxHIDBytes {
		return fmt.Errorf("%w: hid source %d bytes exceeds the cap %d", ErrInvalidSpec, len(s.HID), MaxHIDBytes)
	}
	if s.HID != "" {
		f, err := core.ParseTemplates(s.HID)
		if err != nil {
			return fmt.Errorf("%w: hid: %w", ErrInvalidSpec, err)
		}
		for _, op := range s.Ops {
			if _, err := f.Get(op); err != nil {
				return fmt.Errorf("%w: ops: %w", ErrInvalidSpec, err)
			}
		}
	} else {
		for _, op := range s.Ops {
			if _, err := experiments.OpTemplate(op); err != nil {
				return fmt.Errorf("%w: ops: %w", ErrInvalidSpec, err)
			}
		}
	}
	if s.Elems < 0 || s.Elems > MaxElems {
		return fmt.Errorf("%w: elems %d outside (0, %d]", ErrInvalidSpec, s.Elems, MaxElems)
	}
	if s.Budget < 0 {
		return fmt.Errorf("%w: budget must be non-negative, got %d", ErrInvalidSpec, s.Budget)
	}
	if s.Parallel < 0 || s.Parallel > MaxParallel {
		return fmt.Errorf("%w: parallel %d outside (0, %d]", ErrInvalidSpec, s.Parallel, MaxParallel)
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("%w: deadline_ms must be non-negative, got %d", ErrInvalidSpec, s.DeadlineMS)
	}
	return nil
}

// validTenant enforces a conservative identifier shape so tenants are safe
// in log lines, metric labels, and file names.
func validTenant(tenant string) error {
	if tenant == "" || len(tenant) > MaxTenantLen {
		return fmt.Errorf("tenant must be 1..%d characters", MaxTenantLen)
	}
	for _, c := range tenant {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("tenant %q: only [a-z0-9._-] allowed", tenant)
		}
	}
	return nil
}

// Fingerprint digests the result-shaping fields of a normalized spec. It
// binds a job's sweep checkpoint to its spec, exactly as the CLI tools bind
// checkpoints to their flags. Parallel and DeadlineMS are deliberately
// excluded: neither changes result bytes, so a parked job resumes cleanly
// after the operator count or deadline policy of the daemon changed.
func (s *JobSpec) Fingerprint() string {
	canonical := struct {
		Tenant string   `json:"tenant"`
		CPU    string   `json:"cpu"`
		Ops    []string `json:"ops"`
		HID    string   `json:"hid"`
		Elems  int64    `json:"elems"`
		Budget int      `json:"budget"`
	}{s.Tenant, s.CPU, s.Ops, s.HID, s.Elems, s.Budget}
	data, err := json.Marshal(canonical)
	if err != nil {
		// A struct of strings and integers cannot fail to marshal; keep the
		// edge panic-free regardless.
		return fmt.Sprintf("unmarshalable:%v", err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}
