package hefd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hef/internal/leakcheck"
	"hef/internal/obs"
	"hef/internal/sched"
	"hef/internal/store"
)

func TestRetentionAgeExpiresTerminalJobs(t *testing.T) {
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, Config{Clock: clock, Retention: RetentionConfig{Age: time.Minute}})
	v, err := m.Submit(JobSpec{Ops: []string{"murmur"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateDone)

	// Too young to expire.
	clock.Advance(30 * time.Second)
	if expired := m.Sweep(); len(expired) != 0 {
		t.Fatalf("sweep expired young job: %v", expired)
	}
	if _, err := m.Get(v.ID); err != nil {
		t.Fatalf("young job vanished: %v", err)
	}

	clock.Advance(31 * time.Second)
	if expired := m.Sweep(); len(expired) != 1 || expired[0] != v.ID {
		t.Fatalf("sweep = %v, want [%s]", expired, v.ID)
	}
	if _, err := m.Get(v.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("expired job still served: %v", err)
	}
	if c := m.Counts(); c.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", c.Expired)
	}
	// Idempotent: a second sweep finds nothing.
	if expired := m.Sweep(); len(expired) != 0 {
		t.Fatalf("re-sweep expired %v", expired)
	}
}

func TestRetentionNeverExpiresNonTerminalJobs(t *testing.T) {
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Config{
		Workers: 1, Clock: clock,
		Retention: RetentionConfig{Age: time.Millisecond, Count: 1},
		runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
			select {
			case <-release:
				return stubRun(ctx, spec, op)
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	running, err := m.Submit(JobSpec{Ops: []string{"murmur"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	queued, err := m.Submit(JobSpec{Ops: []string{"crc64"}})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	if expired := m.Sweep(); len(expired) != 0 {
		t.Fatalf("sweep expired live jobs: %v", expired)
	}
	for _, id := range []string{running.ID, queued.ID} {
		if _, err := m.Get(id); err != nil {
			t.Fatalf("non-terminal job %s expired: %v", id, err)
		}
	}
}

func TestRetentionCountKeepsNewestPerTenant(t *testing.T) {
	m := newTestManager(t, Config{Retention: RetentionConfig{Count: 1}})
	var ids []string
	for i, tenant := range []string{"alice", "alice", "alice", "bob"} {
		v, err := m.Submit(JobSpec{Tenant: tenant, Ops: []string{"murmur"}, Elems: int64(64 + i)})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, v.ID, StateDone)
		ids = append(ids, v.ID)
	}
	expired := m.Sweep()
	if len(expired) != 2 {
		t.Fatalf("sweep = %v, want alice's two oldest", expired)
	}
	for _, id := range ids[:2] {
		if _, err := m.Get(id); !errors.Is(err, ErrUnknownJob) {
			t.Fatalf("old job %s survived count policy: %v", id, err)
		}
	}
	// Alice's newest and bob's only job survive.
	for _, id := range ids[2:] {
		if _, err := m.Get(id); err != nil {
			t.Fatalf("retained job %s expired: %v", id, err)
		}
	}
}

// The retention goroutine must stop on Close — leakcheck fails the test if
// it survives — and a clock tick must actually trigger a sweep.
func TestRetentionSweepLoopRunsAndStopsOnClose(t *testing.T) {
	leakcheck.Check(t)
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, Config{Clock: clock, Retention: RetentionConfig{Age: time.Minute, Interval: time.Second}})
	v, err := m.Submit(JobSpec{Ops: []string{"murmur"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateDone)
	clock.Advance(2 * time.Minute) // past the age AND the sweep interval
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := m.Get(v.ID); errors.Is(err, ErrUnknownJob) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic sweep never expired the aged job")
		}
		clock.Advance(time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// dirSize sums the regular files under dir.
func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(_ string, info fs.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.Mode().IsRegular() {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", dir, err)
	}
	return total
}

// Startup compaction rewrites the log down to live jobs: after a campaign
// of expired jobs, a restart shrinks jobs.log and the surviving job's
// report is byte-identical.
func TestRecoveryAfterCompactionServesRetainedReports(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: stubRun, Retention: RetentionConfig{Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for i := 0; i < 8; i++ {
		v, err := m1.Submit(JobSpec{Ops: []string{"murmur"}, Elems: int64(64 + i)})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m1, v.ID, StateDone)
		last = v.ID
	}
	want, err := m1.Report(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(dir, JobLogName))
	if err != nil {
		t.Fatal(err)
	}

	// Restart: the sweep tombstones 7 jobs, the compaction sheds them.
	m2, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: stubRun, Retention: RetentionConfig{Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	after, err := os.Stat(filepath.Join(dir, JobLogName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before.Size(), after.Size())
	}
	if c := m2.Counts(); c.Compactions != 1 || c.Expired != 7 {
		t.Fatalf("counts after compacting restart: %+v", c)
	}
	got, err := m2.Report(last)
	if err != nil {
		t.Fatalf("retained report: %v", err)
	}
	if string(got) != string(want) {
		t.Fatal("retained report bytes differ after compaction")
	}

	// Sequence numbers never reuse: a new job's id continues past the
	// compaction high-water mark even though 7 earlier jobs are gone.
	v, err := m2.Submit(JobSpec{Ops: []string{"crc64"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v.ID, "j000008-") {
		t.Fatalf("post-compaction id %s reused an expired sequence number", v.ID)
	}
}

// budgetFS allows a fixed number of written bytes across all files, then
// fails every write — freezing the directory mid-compaction exactly where
// a kill -9 would.
type budgetFS struct {
	store.FS
	remaining int
}

type budgetFile struct {
	store.File
	fs *budgetFS
}

func (f *budgetFS) OpenAppend(path string) (store.File, error) {
	inner, err := f.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &budgetFile{File: inner, fs: f}, nil
}

func (f *budgetFS) CreateTemp(dir, pattern string) (store.File, error) {
	inner, err := f.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &budgetFile{File: inner, fs: f}, nil
}

func (f *budgetFile) Write(p []byte) (int, error) {
	if f.fs.remaining <= 0 {
		return 0, errors.New("injected: write budget exhausted")
	}
	if len(p) > f.fs.remaining {
		n := f.fs.remaining
		f.fs.remaining = 0
		m, _ := f.File.Write(p[:n]) // the torn half-write a crash leaves
		return m, errors.New("injected: write budget exhausted mid-record")
	}
	f.fs.remaining -= len(p)
	return f.File.Write(p)
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info fs.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy %s: %v", src, err)
	}
}

// The tentpole crash matrix: freeze a retention-sweep-plus-compaction
// startup at every write budget from zero bytes upward, then restart on
// what survived. At every freeze point the retained job's report must come
// back byte-identical and no non-terminal job may be lost; tombstoned jobs
// must stay gone once their tombstone was durable.
func TestCompactionChaosKillAtEveryByteBudget(t *testing.T) {
	seed := t.TempDir()
	// crc64 blocks until cancelled, so carol's job parks at close while the
	// murmur jobs finish normally.
	m0, err := New(Config{DataDir: seed, LogW: io.Discard, runOp: func(ctx context.Context, s JobSpec, op string) (*obs.RunReport, error) {
		if op == "crc64" {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return stubRun(ctx, s, op)
	}})
	if err != nil {
		t.Fatal(err)
	}
	reports := map[string][]byte{}
	for i, tenant := range []string{"alice", "alice", "bob", "bob"} {
		v, err := m0.Submit(JobSpec{Tenant: tenant, Ops: []string{"murmur"}, Elems: int64(64 + i)})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m0, v.ID, StateDone)
		reports[v.ID], _ = m0.Report(v.ID)
	}
	// One non-terminal job that must survive every freeze point.
	v, err := m0.Submit(JobSpec{Tenant: "carol", Ops: []string{"crc64"}})
	if err != nil {
		t.Fatal(err)
	}
	parked := v.ID
	waitState(t, m0, parked, StateRunning)
	if err := m0.Close(); err != nil {
		t.Fatal(err)
	}

	retain := RetentionConfig{Count: 1}
	for budget := 0; budget <= 4096; budget += 64 {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, seed, dir)
			// Frozen startup: retention + compaction against a disk that dies
			// after `budget` bytes. Warnings expected; opening must succeed.
			frozen, err := New(Config{DataDir: dir, LogW: io.Discard, FS: &budgetFS{FS: store.OS, remaining: budget}, Retention: retain, runOp: func(ctx context.Context, s JobSpec, op string) (*obs.RunReport, error) {
				<-ctx.Done() // never let the parked job finish under the dying disk
				return nil, ctx.Err()
			}})
			if err != nil {
				t.Fatalf("open under byte budget %d: %v", budget, err)
			}
			tombstoned := map[string]bool{}
			for id := range reports {
				if _, err := frozen.Get(id); errors.Is(err, ErrUnknownJob) {
					tombstoned[id] = true
				}
			}
			frozen.Close()

			// Restart on the frozen remains with a healthy disk.
			m, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: stubRun, Retention: retain})
			if err != nil {
				t.Fatalf("reopen after freeze at %d bytes: %v", budget, err)
			}
			defer m.Close()
			// The non-terminal job is never lost, at any freeze point.
			waitState(t, m, parked, StateDone)
			for id, want := range reports {
				got, err := m.Report(id)
				switch {
				case err == nil:
					if string(got) != string(want) {
						t.Fatalf("budget %d: report %s not byte-identical", budget, id)
					}
				case errors.Is(err, ErrUnknownJob):
					// Expired by retention — legitimate only for jobs the
					// policy targets, and irreversible once tombstoned.
					if tombstoned[id] {
						continue
					}
				default:
					t.Fatalf("budget %d: report %s: %v", budget, id, err)
				}
			}
			// Tombstones are one-way: a job dropped before the freeze must
			// not resurrect after recovery.
			for id := range tombstoned {
				if _, err := m.Get(id); !errors.Is(err, ErrUnknownJob) {
					t.Fatalf("budget %d: tombstoned job %s resurrected", budget, id)
				}
			}
		})
	}
}

// Bounded growth: a long campaign of short jobs under a count policy, with
// periodic sweeps and restart compactions, must hold the data directory
// under a fixed byte bound no matter how many jobs ran.
func TestRetentionChaosBoundsDataDirSize(t *testing.T) {
	dir := t.TempDir()
	retain := RetentionConfig{Count: 2}
	const rounds, perRound = 4, 12
	var lastID string
	for r := 0; r < rounds; r++ {
		m, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: stubRun, Retention: retain})
		if err != nil {
			t.Fatalf("round %d open: %v", r, err)
		}
		for i := 0; i < perRound; i++ {
			v, err := m.Submit(JobSpec{Ops: []string{"murmur"}, Elems: int64(64 + i)})
			if err != nil {
				t.Fatalf("round %d submit %d: %v", r, i, err)
			}
			waitState(t, m, v.ID, StateDone)
			lastID = v.ID
		}
		m.Sweep()
		if err := m.Close(); err != nil {
			t.Fatalf("round %d close: %v", r, err)
		}
	}
	// One more restart to compact the last round's tombstones away.
	m, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: stubRun, Retention: retain})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Report(lastID); err != nil {
		t.Fatalf("newest retained report: %v", err)
	}
	m.Close()

	const bound = 64 << 10 // two retained reports plus framing, with slack
	if size := dirSize(t, dir); size > bound {
		t.Fatalf("data dir grew to %d bytes after %d jobs; bound is %d", size, rounds*perRound, bound)
	}
	// No checkpoint residue: every terminal job's artifacts were removed.
	entries, err := os.ReadDir(filepath.Join(dir, "ckpt"))
	if err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".ckpt") || strings.HasSuffix(e.Name(), ".ckpt.bak") {
				t.Fatalf("leftover checkpoint artifact %s", e.Name())
			}
		}
	}
	// Stale compaction temps (the kill-mid-rewrite residue) are swept too.
	if matches, _ := filepath.Glob(filepath.Join(dir, JobLogName+".compact-*")); len(matches) != 0 {
		t.Fatalf("stale compaction temps: %v", matches)
	}
}

// Online compaction: once the job log outgrows WALMaxBytes it is rewritten
// in place while the daemon keeps serving — running jobs keep their spec,
// finished jobs keep their exact report bytes, and a restart on the
// compacted log recovers everything.
func TestOnlineCompactionBoundsWALWhileServing(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	m, err := New(Config{
		DataDir: dir, Workers: 2, LogW: io.Discard,
		WALMaxBytes: 1, // every finished job triggers the size check
		runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
			if op == "probe" {
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return stubRun(ctx, spec, op)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	running, err := m.Submit(JobSpec{Ops: []string{"probe"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)

	// Each finished job appends running/done states plus a report the
	// compactor can fold away; by the second one the log holds more records
	// than its minimal form and the online rewrite fires.
	var doneIDs []string
	for i := 0; i < 3; i++ {
		v, err := m.Submit(JobSpec{Ops: []string{"murmur"}, Elems: int64(64 + i)})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, v.ID, StateDone)
		doneIDs = append(doneIDs, v.ID)
	}
	if c := m.Counts(); c.Compactions == 0 {
		t.Fatal("no online compaction ran above the 1-byte threshold")
	}

	reports := map[string][]byte{}
	for _, id := range doneIDs {
		rep, err := m.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		reports[id] = rep
	}

	// The job that was mid-run during the compactions survives it.
	close(release)
	waitState(t, m, running.ID, StateDone)
	rep, err := m.Report(running.ID)
	if err != nil {
		t.Fatalf("job running through compaction lost its report: %v", err)
	}
	reports[running.ID] = rep

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the compacted log: every job and its exact bytes are back.
	m2 := newTestManager(t, Config{DataDir: dir})
	for id, want := range reports {
		got, err := m2.Report(id)
		if err != nil {
			t.Fatalf("after restart, report %s: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("report %s bytes changed across online compaction + restart", id)
		}
	}
}

// WALMaxBytes zero keeps the PR-9 behavior: the log only compacts at
// startup under retention, never while serving.
func TestOnlineCompactionDisabledByDefault(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	for i := 0; i < 3; i++ {
		v, err := m.Submit(JobSpec{Ops: []string{"murmur"}, Elems: int64(64 + i)})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, v.ID, StateDone)
	}
	if c := m.Counts(); c.Compactions != 0 {
		t.Fatalf("Compactions = %d with WALMaxBytes unset, want 0", c.Compactions)
	}
}

// A minimal log above the threshold (live jobs with big specs or reports)
// is left alone: rewriting it would shed nothing and only burn I/O.
func TestOnlineCompactionSkipsMinimalLog(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{DataDir: dir, Workers: 1, WALMaxBytes: 1})
	v, err := m.Submit(JobSpec{Ops: []string{"murmur"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateDone)
	// One finished job: 4 live records vs a 4-record minimal form — nothing
	// to shed yet even though the log is far beyond 1 byte.
	if c := m.Counts(); c.Compactions != 0 {
		t.Fatalf("Compactions = %d on a minimal log, want 0", c.Compactions)
	}
	size := m.WALSize()
	if size == 0 {
		t.Fatal("job log missing")
	}
	// The second job crosses the record-count line and the rewrite fires.
	v2, err := m.Submit(JobSpec{Ops: []string{"crc64"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v2.ID, StateDone)
	if c := m.Counts(); c.Compactions != 1 {
		t.Fatalf("Compactions = %d after second job, want 1", c.Compactions)
	}
}

// The retention loop pairs its sweeps with a compaction pass, so tombstoned
// jobs leave the log (not just the tables) without a restart.
func TestOnlineCompactionReclaimsTombstones(t *testing.T) {
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, Config{
		Workers: 1, Clock: clock, WALMaxBytes: 1,
		Retention: RetentionConfig{Age: time.Minute, Interval: time.Second},
	})
	for i := 0; i < 3; i++ {
		v, err := m.Submit(JobSpec{Ops: []string{"murmur"}, Elems: int64(64 + i)})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, v.ID, StateDone)
	}
	grown := m.WALSize()
	before := m.Counts()
	clock.Advance(2 * time.Minute) // past the age and the sweep interval
	deadline := time.Now().Add(10 * time.Second)
	for {
		c := m.Counts()
		if c.Expired == 3 && c.Compactions > before.Compactions {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retention-paired compaction never ran: %+v", c)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if shrunk := m.WALSize(); shrunk >= grown {
		t.Fatalf("log did not shrink after tombstone compaction: %d -> %d bytes", grown, shrunk)
	}
}
