package hefd

import (
	"fmt"
	"sync"
	"time"
)

// Shed codes: the typed reasons a submission is refused without entering
// the queue. The API maps them to HTTP statuses and a JSON error body.
const (
	// ShedQueueFull: the global bounded queue is at capacity (HTTP 429).
	ShedQueueFull = "queue_full"
	// ShedQuota: the tenant's token bucket is dry (HTTP 429).
	ShedQuota = "quota_exhausted"
	// ShedBreakerOpen: the tenant's circuit breaker is open after repeated
	// job failures (HTTP 503).
	ShedBreakerOpen = "tenant_breaker_open"
	// ShedDraining: the daemon is draining for shutdown (HTTP 503).
	ShedDraining = "draining"
)

// ShedError is the typed admission refusal. It never represents a server
// bug: the request was understood and deliberately shed to protect the
// service, and RetryAfter tells the client when trying again is useful.
type ShedError struct {
	// Code is one of the Shed* constants.
	Code string
	// Message is a human-readable explanation.
	Message string
	// RetryAfter is the suggested wait before resubmitting (0 = none
	// suggested, e.g. a drain that ends with the process).
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("hefd: %s: %s (retry after %v)", e.Code, e.Message, e.RetryAfter)
	}
	return fmt.Sprintf("hefd: %s: %s", e.Code, e.Message)
}

// shedBackoff derives the queue-full Retry-After from shed pressure: each
// consecutive shed doubles the suggested wait (base<<n, capped), and a
// successful admission resets it. Clients that honour the header therefore
// back off exponentially as overload persists, exactly like the runner's
// own retry backoff. Deliberately jitter-free: the value is advisory, and
// determinism keeps the overload tests exact.
type shedBackoff struct {
	base, max   time.Duration
	consecutive int
}

func (b *shedBackoff) next() time.Duration {
	d := b.base << min(b.consecutive, 16)
	if d > b.max || d <= 0 {
		d = b.max
	}
	b.consecutive++
	return d
}

func (b *shedBackoff) reset() { b.consecutive = 0 }

// BreakerConfig tunes the per-tenant admission circuit breaker. The zero
// value disables it.
type BreakerConfig struct {
	// Threshold is the consecutive terminal-failure count that opens a
	// tenant's breaker (<= 0 disables).
	Threshold int
	// Cooldown is how long an open breaker sheds the tenant before
	// half-opening to admit a single probe job (<= 0 selects 30s).
	Cooldown time.Duration
}

// tenantBreakers is the per-tenant circuit-breaker table guarding
// admission: a tenant whose jobs fail Threshold times in a row is shed at
// the door for Cooldown, then one probe job is admitted — success closes
// the circuit, failure re-opens it. It mirrors the sched-layer breaker but
// acts before the queue, so a tenant submitting poisoned specs cannot
// occupy workers at all.
type tenantBreakers struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*tenantBreaker
}

type tenantBreaker struct {
	failures int
	open     bool
	openedAt time.Time
	probing  bool // the half-open probe job is in flight
}

func newTenantBreakers(cfg BreakerConfig) *tenantBreakers {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	return &tenantBreakers{cfg: cfg, m: map[string]*tenantBreaker{}}
}

// allow reports whether tenant may submit at now; when shed it returns the
// remaining cooldown as the Retry-After.
func (t *tenantBreakers) allow(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if t == nil || t.cfg.Threshold <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.m[tenant]
	if b == nil || !b.open {
		return true, 0
	}
	if wait := t.cfg.Cooldown - now.Sub(b.openedAt); wait > 0 {
		return false, wait
	}
	// Cooldown elapsed: half-open. Exactly one probe job is admitted; the
	// tenant stays shed until that probe resolves.
	if b.probing {
		return false, t.cfg.Cooldown
	}
	b.probing = true
	return true, 0
}

// release clears a half-open probe without judging it, for probe jobs that
// ended neutrally (cancelled by the user, parked by a drain): the next
// submission becomes the new probe instead of the tenant staying shed.
func (t *tenantBreakers) release(tenant string) {
	if t == nil || t.cfg.Threshold <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if b := t.m[tenant]; b != nil {
		b.probing = false
	}
}

// snapshot serializes every breaker for the admission.state file. The
// half-open probing flag is deliberately not persisted: a probe in flight
// at crash time resolves as parked or lost, and on restart the next
// submission becomes the probe — persisting it would shed the tenant
// forever waiting on a probe that no longer exists.
func (t *tenantBreakers) snapshot() map[string]BreakerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) == 0 {
		return nil
	}
	out := make(map[string]BreakerState, len(t.m))
	for tenant, b := range t.m {
		s := BreakerState{Failures: b.failures, Open: b.open}
		if b.open {
			s.OpenedAtMS = b.openedAt.UnixMilli()
		}
		out[tenant] = s
	}
	return out
}

// restore replaces the breaker table with a loaded snapshot: an open
// breaker stays open for the remainder of its original cooldown, and a
// tenant one failure from the threshold is still one failure away.
func (t *tenantBreakers) restore(states map[string]BreakerState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = make(map[string]*tenantBreaker, len(states))
	for tenant, s := range states {
		b := &tenantBreaker{failures: s.Failures, open: s.Open}
		if s.Open {
			b.openedAt = time.UnixMilli(s.OpenedAtMS)
		}
		t.m[tenant] = b
	}
}

// onResult records a tenant job's terminal outcome. Cancellations and
// parks say nothing about the tenant's health and must not be reported.
func (t *tenantBreakers) onResult(tenant string, success bool, now time.Time) {
	if t == nil || t.cfg.Threshold <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.m[tenant]
	if b == nil {
		b = &tenantBreaker{}
		t.m[tenant] = b
	}
	if success {
		b.failures = 0
		b.open = false
		b.probing = false
		return
	}
	if b.open {
		// A failed probe re-opens for a fresh cooldown.
		b.openedAt = now
		b.probing = false
		return
	}
	b.failures++
	if b.failures >= t.cfg.Threshold {
		b.open = true
		b.openedAt = now
		b.probing = false
	}
}
