package hefd

import (
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// RetentionConfig bounds the data directory. The zero value retains
// everything forever (PR-7 behavior); enabling either knob starts the
// periodic sweep and the startup compaction.
type RetentionConfig struct {
	// Age expires terminal jobs (done/failed/cancelled) this long after
	// their terminal transition (<= 0 disables the age policy). Parked and
	// queued jobs never expire: they are accepted work the daemon still
	// owes a result for.
	Age time.Duration
	// Count keeps at most this many terminal jobs per tenant, newest
	// first by acceptance order (<= 0 disables the count policy).
	Count int
	// Interval is the sweep period (<= 0 selects 1m).
	Interval time.Duration
}

func (c RetentionConfig) enabled() bool { return c.Age > 0 || c.Count > 0 }

func (c RetentionConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return time.Minute
}

// Sweep applies the retention policy once: expired terminal jobs get a
// tombstone in the WAL, leave the in-memory tables, and lose their
// checkpoint artifacts. It returns the expired job ids. Exported so tests
// (and the chaos harness) can drive retention deterministically instead of
// waiting out the interval.
func (m *Manager) Sweep() []string {
	if !m.cfg.Retention.enabled() {
		return nil
	}
	now := m.clock.Now()

	m.mu.Lock()
	var expired []string
	perTenant := map[string]int{}
	// Newest-first by acceptance order, so the count policy keeps the most
	// recent Count terminal jobs of each tenant.
	for i := len(m.order) - 1; i >= 0; i-- {
		j := m.jobs[m.order[i]]
		if !j.state.Terminal() {
			continue
		}
		perTenant[j.spec.Tenant]++
		byCount := m.cfg.Retention.Count > 0 && perTenant[j.spec.Tenant] > m.cfg.Retention.Count
		// A zero terminalAt (a pre-retention log, or a record whose state
		// append was lost to degradation) counts as already aged: the job is
		// certainly older than any sweep that can see it.
		byAge := m.cfg.Retention.Age > 0 &&
			(j.terminalAt.IsZero() || now.Sub(j.terminalAt) >= m.cfg.Retention.Age)
		if byCount || byAge {
			expired = append(expired, j.id)
		}
	}
	// Tombstone before forgetting: replay drops the job only once the
	// tombstone is durable, so a crash between the two costs nothing.
	for _, id := range expired {
		m.walAppendLocked(walRecord{Kind: walTomb, ID: id, AtMS: now.UnixMilli()})
		delete(m.jobs, id)
		m.counts.Expired++
	}
	if len(expired) > 0 {
		keep := m.order[:0]
		for _, id := range m.order {
			if m.jobs[id] != nil {
				keep = append(keep, id)
			}
		}
		m.order = keep
	}
	m.mu.Unlock()

	// Artifact deletion happens outside the lock: it is idempotent (the
	// tombstone replays the deletion on the next start if a crash lands
	// here), and checkpoint directories can be slow.
	sort.Strings(expired)
	for _, id := range expired {
		m.removeJobArtifacts(id)
	}
	m.cleanOrphanArtifacts()
	return expired
}

// removeJobArtifacts deletes a job's checkpoint and its .bak rotation.
// Missing files are fine — terminal jobs usually had theirs removed when
// they finished.
func (m *Manager) removeJobArtifacts(id string) {
	ckpt := m.ckptPath(id)
	_ = m.fs.Remove(ckpt)
	_ = m.fs.Remove(ckpt + ".bak")
}

// cleanOrphanArtifacts removes checkpoints whose job no longer exists —
// the crash-window leftovers of a sweep or finish that tombstoned the job
// but died before the artifact deletion.
func (m *Manager) cleanOrphanArtifacts() {
	dir := m.ckptDir()
	entries, err := m.fs.ReadDir(dir)
	if err != nil {
		return
	}
	m.mu.Lock()
	var orphans []string
	for _, e := range entries {
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".ckpt")
		if !ok {
			id, ok = strings.CutSuffix(name, ".ckpt.bak")
		}
		if !ok || id == "" {
			continue // quarantine sidecars and foreign files are not ours to judge
		}
		if m.jobs[id] == nil {
			orphans = append(orphans, name)
		}
	}
	m.mu.Unlock()
	for _, name := range orphans {
		_ = m.fs.Remove(filepath.Join(dir, name))
	}
}

// retentionLoop runs Sweep every Retention.Interval until stop closes.
func (m *Manager) retentionLoop(stop <-chan struct{}) {
	defer m.wg.Done()
	for {
		select {
		case <-stop:
			return
		case <-m.clock.After(m.cfg.Retention.interval()):
			m.Sweep()
			// A sweep turns terminal jobs into tombstones the compactor can
			// shed; reclaim the space right away when a bound is set.
			m.maybeCompact()
		}
	}
}
