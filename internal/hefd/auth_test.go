package hefd

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hef/internal/leakcheck"
)

func TestParseKeyringAcceptsWellFormedFile(t *testing.T) {
	ring, err := ParseKeyring([]byte(`
# ops keys
alice-key-0001 alice rate=2 burst=5

bob-key-000002 bob
`))
	if err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ring.Len())
	}
	tenant, quota, ok := ring.Lookup("alice-key-0001")
	if !ok || tenant != "alice" {
		t.Fatalf("alice lookup: %q %v", tenant, ok)
	}
	if quota == nil || quota.Rate != 2 || quota.Burst != 5 {
		t.Fatalf("alice quota override: %+v", quota)
	}
	tenant, quota, ok = ring.Lookup("bob-key-000002")
	if !ok || tenant != "bob" || quota != nil {
		t.Fatalf("bob lookup: %q %+v %v", tenant, quota, ok)
	}
	if _, _, ok := ring.Lookup("stolen-key-guess"); ok {
		t.Fatal("unknown key resolved")
	}
	if q := ring.QuotaFor("alice"); q == nil || q.Rate != 2 {
		t.Fatalf("QuotaFor(alice) = %+v", q)
	}
	if q := ring.QuotaFor("bob"); q != nil {
		t.Fatalf("QuotaFor(bob) = %+v, want nil", q)
	}
}

// Any malformed line fails the whole file: a half-loaded keyring would
// silently lock out the tenants on the bad half.
func TestParseKeyringRejectsMalformedLines(t *testing.T) {
	for name, file := range map[string]string{
		"missing tenant":   "alice-key-0001\n",
		"short key":        "short alice\n",
		"bad tenant":       "alice-key-0001 Not/A/Tenant\n",
		"bare option":      "alice-key-0001 alice rate\n",
		"unknown option":   "alice-key-0001 alice ttl=5\n",
		"negative rate":    "alice-key-0001 alice rate=-1\n",
		"zero burst":       "alice-key-0001 alice burst=0\n",
		"non-numeric rate": "alice-key-0001 alice rate=fast\n",
		"duplicate key":    "alice-key-0001 alice\nalice-key-0001 bob\n",
		"no keys":          "# only a comment\n",
	} {
		if _, err := ParseKeyring([]byte(file)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// An empty (nil) keyring means auth is off: Len 0, every lookup misses.
func TestKeyringNilIsAuthOff(t *testing.T) {
	var ring *Keyring
	if ring.Len() != 0 {
		t.Fatalf("nil ring Len = %d", ring.Len())
	}
	if _, _, ok := ring.Lookup("anything-here"); ok {
		t.Fatal("nil ring resolved a key")
	}
	if q := ring.QuotaFor("alice"); q != nil {
		t.Fatalf("nil ring QuotaFor = %+v", q)
	}
}

// doJSONAuth is doJSON with a bearer key on the request.
func doJSONAuth(t *testing.T, method, url, key string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(data))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// writeKeyFile drops a key file into a temp dir and returns its path.
func writeKeyFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAPIAuthGatesEveryJobRoute(t *testing.T) {
	leakcheck.Check(t)
	keys := writeKeyFile(t, "alice-key-0001 alice\nbob-key-000002 bob\n")
	srv, m := newTestServer(t, Config{AuthKeys: keys})

	// No key and a wrong key are indistinguishable 401s with the typed code.
	for _, key := range []string{"", "stolen-key-guess"} {
		resp, data := doJSONAuth(t, "POST", srv.URL+"/v1/jobs", key, JobSpec{Ops: []string{"murmur"}})
		if resp.StatusCode != http.StatusUnauthorized || errCode(t, data) != AuthMissing {
			t.Fatalf("key %q: %d %s", key, resp.StatusCode, data)
		}
	}

	// A valid key stamps its tenant onto the accepted spec.
	resp, data := doJSONAuth(t, "POST", srv.URL+"/v1/jobs", "alice-key-0001", JobSpec{Ops: []string{"murmur"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("authed submit: %d\n%s", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil || v.Tenant != "alice" {
		t.Fatalf("accepted view tenant: %+v %v", v, err)
	}
	waitState(t, m, v.ID, StateDone)

	// A spec claiming a different tenant than its key is refused outright.
	resp, data = doJSONAuth(t, "POST", srv.URL+"/v1/jobs", "alice-key-0001", JobSpec{Tenant: "bob", Ops: []string{"murmur"}})
	if resp.StatusCode != http.StatusForbidden || errCode(t, data) != AuthForbidden {
		t.Fatalf("cross-tenant submit: %d %s", resp.StatusCode, data)
	}

	// Status, report, and cancel of another tenant's job are 403, not 404:
	// ids are deterministic, so hiding existence would leak by omission.
	for _, route := range []struct{ method, url string }{
		{"GET", srv.URL + "/v1/jobs/" + v.ID},
		{"GET", srv.URL + "/v1/jobs/" + v.ID + "/report"},
		{"DELETE", srv.URL + "/v1/jobs/" + v.ID},
	} {
		resp, data := doJSONAuth(t, route.method, route.url, "bob-key-000002", nil)
		if resp.StatusCode != http.StatusForbidden || errCode(t, data) != AuthForbidden {
			t.Fatalf("%s %s as bob: %d %s", route.method, route.url, resp.StatusCode, data)
		}
	}
	// The owner still reads it fine.
	resp, data = doJSONAuth(t, "GET", srv.URL+"/v1/jobs/"+v.ID, "alice-key-0001", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner status: %d %s", resp.StatusCode, data)
	}

	// The list is forced to the caller's tenant even when the query asks
	// for someone else's.
	resp, data = doJSONAuth(t, "GET", srv.URL+"/v1/jobs?tenant=alice", "bob-key-000002", nil)
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("list as bob: %d %s", resp.StatusCode, data)
	}
	for _, j := range list.Jobs {
		if j.Tenant != "bob" {
			t.Fatalf("bob's list leaked %s (tenant %q)", j.ID, j.Tenant)
		}
	}
}

// A key-file quota override is live even when the daemon-wide quota is off.
func TestAPIKeyFileQuotaOverride(t *testing.T) {
	leakcheck.Check(t)
	keys := writeKeyFile(t, "alice-key-0001 alice rate=0.001 burst=1\n")
	srv, _ := newTestServer(t, Config{AuthKeys: keys})

	resp, data := doJSONAuth(t, "POST", srv.URL+"/v1/jobs", "alice-key-0001", JobSpec{Ops: []string{"murmur"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("burst submit: %d\n%s", resp.StatusCode, data)
	}
	resp, data = doJSONAuth(t, "POST", srv.URL+"/v1/jobs", "alice-key-0001", JobSpec{Ops: []string{"murmur"}})
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, data) != ShedQuota {
		t.Fatalf("over-quota submit: %d %s", resp.StatusCode, data)
	}
}

// ReloadKeys swaps the ring atomically: new keys work, removed keys stop,
// and a broken file keeps the previous ring serving.
func TestReloadKeysSwapsRingAndSurvivesBadFile(t *testing.T) {
	leakcheck.Check(t)
	path := writeKeyFile(t, "alice-key-0001 alice\n")
	srv, m := newTestServer(t, Config{AuthKeys: path})

	submit := func(key string) int {
		resp, _ := doJSONAuth(t, "POST", srv.URL+"/v1/jobs", key, JobSpec{Ops: []string{"murmur"}})
		return resp.StatusCode
	}
	if code := submit("alice-key-0001"); code != http.StatusAccepted {
		t.Fatalf("original key: %d", code)
	}

	// Rotate: alice's key is replaced by carol's.
	if err := os.WriteFile(path, []byte("carol-key-0003 carol\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := m.ReloadKeys(); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if code := submit("alice-key-0001"); code != http.StatusUnauthorized {
		t.Fatalf("rotated-out key still admitted: %d", code)
	}
	if code := submit("carol-key-0003"); code != http.StatusAccepted {
		t.Fatalf("rotated-in key: %d", code)
	}

	// A broken file on the next reload is an error, and the previous ring
	// keeps serving — rotation never fails open or locks everyone out.
	if err := os.WriteFile(path, []byte("short x\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := m.ReloadKeys(); err == nil {
		t.Fatal("reload of a broken file reported success")
	}
	if code := submit("carol-key-0003"); code != http.StatusAccepted {
		t.Fatalf("previous ring dropped after failed reload: %d", code)
	}
	if m.Counts().KeyReloads != 1 {
		t.Fatalf("KeyReloads = %d, want 1 (failed reload must not count)", m.Counts().KeyReloads)
	}
}

// A daemon pointed at an unreadable or invalid key file refuses to start:
// silently serving unauthenticated would fail open.
func TestNewRefusesBadKeyFile(t *testing.T) {
	if _, err := New(Config{DataDir: t.TempDir(), LogW: io.Discard, runOp: stubRun,
		AuthKeys: filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Fatal("missing key file accepted")
	}
	bad := writeKeyFile(t, "short x\n")
	if _, err := New(Config{DataDir: t.TempDir(), LogW: io.Discard, runOp: stubRun,
		AuthKeys: bad}); err == nil {
		t.Fatal("malformed key file accepted")
	}
}

// scope=ro keys parse into read-only entries; scope=rw (and no scope) stay
// writable; anything else fails the file.
func TestParseKeyringScopes(t *testing.T) {
	ring, err := ParseKeyring([]byte(`
viewer-key-01 alice scope=ro
writer-key-01 alice scope=rw rate=2 burst=4
plain-key-001 bob
`))
	if err != nil {
		t.Fatal(err)
	}
	for key, wantRO := range map[string]bool{
		"viewer-key-01": true, "writer-key-01": false, "plain-key-001": false,
	} {
		e, ok := ring.LookupEntry(key)
		if !ok {
			t.Fatalf("LookupEntry(%q) missed", key)
		}
		if e.ReadOnly != wantRO {
			t.Fatalf("key %q ReadOnly = %v, want %v", key, e.ReadOnly, wantRO)
		}
	}
	// The ro/rw split does not disturb quota options on the same line.
	if q := ring.QuotaFor("alice"); q == nil || q.Rate != 2 || q.Burst != 4 {
		t.Fatalf("QuotaFor(alice) = %+v", q)
	}
	if _, err := ParseKeyring([]byte("some-key-0001 alice scope=admin\n")); err == nil {
		t.Fatal("unknown scope accepted")
	}
}

// A scope=ro key reads every job route but gets the typed 403 on POST and
// DELETE — and a SIGHUP-style reload can tighten or loosen the scope live.
func TestReadOnlyKeyGatesWritesAcrossReload(t *testing.T) {
	leakcheck.Check(t)
	path := writeKeyFile(t, "alice-key-0001 alice\n")
	srv, m := newTestServer(t, Config{AuthKeys: path})

	resp, data := doJSONAuth(t, "POST", srv.URL+"/v1/jobs", "alice-key-0001", JobSpec{Ops: []string{"murmur"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rw submit: %d\n%s", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateDone)

	// Reload demotes the same key to read-only; in-flight artifacts stay
	// readable, mutations stop.
	if err := os.WriteFile(path, []byte("alice-key-0001 alice scope=ro\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := m.ReloadKeys(); err != nil {
		t.Fatal(err)
	}
	for _, route := range []struct{ method, url string }{
		{"POST", srv.URL + "/v1/jobs"},
		{"DELETE", srv.URL + "/v1/jobs/" + v.ID},
	} {
		var body any
		if route.method == "POST" {
			body = JobSpec{Ops: []string{"murmur"}}
		}
		resp, data := doJSONAuth(t, route.method, route.url, "alice-key-0001", body)
		if resp.StatusCode != http.StatusForbidden || errCode(t, data) != AuthForbidden {
			t.Fatalf("%s as ro key: %d %s", route.method, resp.StatusCode, data)
		}
	}
	for _, url := range []string{
		srv.URL + "/v1/jobs",
		srv.URL + "/v1/jobs/" + v.ID,
		srv.URL + "/v1/jobs/" + v.ID + "/report",
	} {
		resp, data := doJSONAuth(t, "GET", url, "alice-key-0001", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s as ro key: %d %s", url, resp.StatusCode, data)
		}
	}

	// Reload can hand the scope back.
	if err := os.WriteFile(path, []byte("alice-key-0001 alice scope=rw\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := m.ReloadKeys(); err != nil {
		t.Fatal(err)
	}
	resp, data = doJSONAuth(t, "POST", srv.URL+"/v1/jobs", "alice-key-0001", JobSpec{Ops: []string{"crc64"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("re-promoted submit: %d\n%s", resp.StatusCode, data)
	}
	var v2 JobView
	if err := json.Unmarshal(data, &v2); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v2.ID, StateDone)
}
