package hefd

import (
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"strconv"
	"strings"

	"hef/internal/store"
)

// Auth codes: the typed reasons a request is refused before admission
// control. The API maps them to HTTP statuses through the same error
// envelope as every other refusal.
const (
	// AuthMissing: no (or unrecognized) API key on a daemon that requires
	// one (HTTP 401).
	AuthMissing = "unauthenticated"
	// AuthForbidden: a valid key addressing another tenant's resources
	// (HTTP 403).
	AuthForbidden = "forbidden"
)

// AuthError is the typed authentication/authorization refusal.
type AuthError struct {
	// Code is AuthMissing or AuthForbidden.
	Code string
	// Message is a human-readable explanation.
	Message string
}

func (e *AuthError) Error() string { return fmt.Sprintf("hefd: %s: %s", e.Code, e.Message) }

// MinKeyLen is the shortest admissible API key. Short keys are a key-file
// typo until proven otherwise, so loading refuses them outright.
const MinKeyLen = 8

// keyEntry is one authorized key. Only the SHA-256 digest of the key is
// kept in memory; the plaintext is dropped at parse time.
type keyEntry struct {
	digest [sha256.Size]byte
	tenant string
	quota  *QuotaConfig // per-tenant override, nil = global config
}

// Keyring maps API keys to tenants. Immutable once built: a SIGHUP reload
// constructs a fresh ring and swaps it atomically, so in-flight requests
// see either the old or the new ring, never a mix.
type Keyring struct {
	entries []keyEntry
}

// Len reports the number of keys.
func (k *Keyring) Len() int {
	if k == nil {
		return 0
	}
	return len(k.entries)
}

// Lookup resolves an API key to its tenant and quota override. The
// comparison is constant-time in both the key bytes and the match
// position: every entry is compared against the presented key's digest,
// with no early exit, so response timing reveals neither a near-miss nor
// where in the file the matching key lives.
func (k *Keyring) Lookup(key string) (tenant string, quota *QuotaConfig, ok bool) {
	if k == nil {
		return "", nil, false
	}
	digest := sha256.Sum256([]byte(key))
	match := -1
	for i := range k.entries {
		if subtle.ConstantTimeCompare(digest[:], k.entries[i].digest[:]) == 1 {
			match = i
		}
	}
	if match < 0 {
		return "", nil, false
	}
	return k.entries[match].tenant, k.entries[match].quota, true
}

// QuotaFor returns the first quota override declared for tenant (nil when
// the tenant has none): Submit consults it so a key-file quota applies
// even when the global -quota-rate is off.
func (k *Keyring) QuotaFor(tenant string) *QuotaConfig {
	if k == nil {
		return nil
	}
	for i := range k.entries {
		if k.entries[i].tenant == tenant && k.entries[i].quota != nil {
			return k.entries[i].quota
		}
	}
	return nil
}

// ParseKeyring parses a key file. Each non-blank, non-comment line is
//
//	<key> <tenant> [rate=R] [burst=B]
//
// where key is at least MinKeyLen characters, tenant follows the JobSpec
// tenant grammar, and rate/burst (jobs per second / bucket capacity)
// override the daemon-wide quota for that tenant. Any malformed line fails
// the whole file — a partially loaded keyring would silently lock out the
// tenants on the bad half.
func ParseKeyring(data []byte) (*Keyring, error) {
	ring := &Keyring{}
	seen := map[[sha256.Size]byte]int{}
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("hefd: key file line %d: want \"<key> <tenant> [rate=R] [burst=B]\"", lineNo+1)
		}
		key, tenant := fields[0], fields[1]
		if len(key) < MinKeyLen {
			return nil, fmt.Errorf("hefd: key file line %d: key shorter than %d characters", lineNo+1, MinKeyLen)
		}
		if err := validTenant(tenant); err != nil {
			return nil, fmt.Errorf("hefd: key file line %d: %v", lineNo+1, err)
		}
		entry := keyEntry{digest: sha256.Sum256([]byte(key)), tenant: tenant}
		var quota QuotaConfig
		for _, opt := range fields[2:] {
			name, val, found := strings.Cut(opt, "=")
			if !found {
				return nil, fmt.Errorf("hefd: key file line %d: option %q is not name=value", lineNo+1, opt)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return nil, fmt.Errorf("hefd: key file line %d: %s must be a positive number, got %q", lineNo+1, name, val)
			}
			switch name {
			case "rate":
				quota.Rate = f
			case "burst":
				quota.Burst = f
			default:
				return nil, fmt.Errorf("hefd: key file line %d: unknown option %q", lineNo+1, name)
			}
		}
		if quota.Rate > 0 || quota.Burst > 0 {
			entry.quota = &quota
		}
		if prev, dup := seen[entry.digest]; dup {
			return nil, fmt.Errorf("hefd: key file line %d: key already declared on line %d", lineNo+1, prev)
		}
		seen[entry.digest] = lineNo + 1
		ring.entries = append(ring.entries, entry)
	}
	if len(ring.entries) == 0 {
		return nil, fmt.Errorf("hefd: key file declares no keys")
	}
	return ring, nil
}

// LoadKeyring reads and parses a key file.
func LoadKeyring(fsys store.FS, path string) (*Keyring, error) {
	if fsys == nil {
		fsys = store.OS
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hefd: key file: %w", err)
	}
	return ParseKeyring(data)
}
