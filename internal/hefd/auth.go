package hefd

import (
	"fmt"
	"strconv"

	"hef/internal/httpapi"
	"hef/internal/store"
)

// Auth codes: the typed reasons a request is refused before admission
// control. They are the shared httpapi codes, re-exported so existing
// callers (and tests) keep reading naturally.
const (
	// AuthMissing: no (or unrecognized) API key on a daemon that requires
	// one (HTTP 401).
	AuthMissing = httpapi.AuthMissing
	// AuthForbidden: a valid key addressing another tenant's resources, or
	// a write through a read-only key (HTTP 403).
	AuthForbidden = httpapi.AuthForbidden
)

// AuthError is the typed authentication/authorization refusal, shared with
// the other HTTP services through internal/httpapi.
type AuthError = httpapi.AuthError

// MinKeyLen is the shortest admissible API key.
const MinKeyLen = httpapi.MinKeyLen

// Keyring maps API keys to tenants (and per-tenant quota overrides). It
// wraps the shared httpapi ring — digest-only storage, constant-time
// lookup, scope=ro support — with the daemon's quota typing. Immutable
// once built: a SIGHUP reload constructs a fresh ring and swaps it
// atomically, so in-flight requests see either the old or the new ring,
// never a mix.
type Keyring struct {
	ring *httpapi.Keyring
}

// Len reports the number of keys.
func (k *Keyring) Len() int {
	if k == nil {
		return 0
	}
	return k.ring.Len()
}

// Lookup resolves an API key to its tenant and quota override, in constant
// time (see httpapi.Keyring.Lookup for the timing contract).
func (k *Keyring) Lookup(key string) (tenant string, quota *QuotaConfig, ok bool) {
	e, ok := k.LookupEntry(key)
	if !ok {
		return "", nil, false
	}
	quota, _ = e.Ext.(*QuotaConfig)
	return e.Tenant, quota, true
}

// LookupEntry resolves an API key to its full entry (tenant, read-only
// scope, quota Ext); the API handler uses it to refuse writes through
// scope=ro keys.
func (k *Keyring) LookupEntry(key string) (*httpapi.Entry, bool) {
	if k == nil {
		return nil, false
	}
	return k.ring.Lookup(key)
}

// QuotaFor returns the first quota override declared for tenant (nil when
// the tenant has none): Submit consults it so a key-file quota applies
// even when the global -quota-rate is off.
func (k *Keyring) QuotaFor(tenant string) *QuotaConfig {
	if k == nil {
		return nil
	}
	e := k.ring.Find(func(e *httpapi.Entry) bool {
		return e.Tenant == tenant && e.Ext != nil
	})
	if e == nil {
		return nil
	}
	quota, _ := e.Ext.(*QuotaConfig)
	return quota
}

// quotaOption folds the daemon's rate= and burst= key-file options into a
// *QuotaConfig Ext.
func quotaOption(ext any, name, val string) (any, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || f <= 0 {
		return nil, fmt.Errorf("%s must be a positive number, got %q", name, val)
	}
	quota, _ := ext.(*QuotaConfig)
	if quota == nil {
		quota = &QuotaConfig{}
	}
	switch name {
	case "rate":
		quota.Rate = f
	case "burst":
		quota.Burst = f
	default:
		return nil, fmt.Errorf("unknown option %q", name)
	}
	return quota, nil
}

// ParseKeyring parses a key file. Each non-blank, non-comment line is
//
//	<key> <tenant> [scope=ro] [rate=R] [burst=B]
//
// where key is at least MinKeyLen characters, tenant follows the JobSpec
// tenant grammar, scope=ro makes the key read-only (GET only; POST and
// DELETE answer 403), and rate/burst (jobs per second / bucket capacity)
// override the daemon-wide quota for that tenant. Any malformed line fails
// the whole file — a partially loaded keyring would silently lock out the
// tenants on the bad half.
func ParseKeyring(data []byte) (*Keyring, error) {
	ring, err := httpapi.ParseKeyring(data, validTenant, quotaOption)
	if err != nil {
		return nil, fmt.Errorf("hefd: %w", err)
	}
	return &Keyring{ring: ring}, nil
}

// LoadKeyring reads and parses a key file.
func LoadKeyring(fsys store.FS, path string) (*Keyring, error) {
	if fsys == nil {
		fsys = store.OS
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hefd: key file: %w", err)
	}
	return ParseKeyring(data)
}
