package hefd

import (
	"context"
	"errors"
	"time"
)

// JobState is a job's position in the lifecycle state machine
// (DESIGN.md §11):
//
//	queued → running → done
//	               ↘ failed
//	               ↘ cancelled   (DELETE /v1/jobs/{id})
//	               ↘ parked      (graceful drain; re-queued at next start)
//	queued → cancelled
//
// done, failed, and cancelled are terminal. queued, running, and parked
// survive a restart: recovery re-queues them and their checkpoints make the
// re-run byte-identical.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateParked    JobState = "parked"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Typed lookup failures of the manager; the API maps them to 404/409.
var (
	// ErrUnknownJob marks an ID the daemon has never accepted.
	ErrUnknownJob = errors.New("hefd: unknown job")
	// ErrReportNotReady marks a report request for a job that has not
	// finished successfully.
	ErrReportNotReady = errors.New("hefd: report not ready")
)

// job is the manager's in-memory record of one accepted job. All fields
// are guarded by the manager's mutex; cancel is non-nil only while running.
type job struct {
	id    string
	seq   int
	spec  JobSpec
	state JobState
	// done/total track operator-level progress for GET status.
	done, total int
	errMsg      string
	report      []byte
	// terminalAt anchors the retention age policy; zero for non-terminal
	// jobs and for terminal transitions whose WAL record predates retention.
	terminalAt time.Time
	cancel     context.CancelFunc
	// cancelRequested distinguishes a DELETE-driven interruption from a
	// drain or deadline when the sweep unwinds.
	cancelRequested bool
}

// JobView is the API representation of a job (GET /v1/jobs/{id} and list
// entries).
type JobView struct {
	ID       string   `json:"id"`
	Tenant   string   `json:"tenant"`
	State    JobState `json:"state"`
	CPU      string   `json:"cpu"`
	Ops      []string `json:"ops"`
	OpsDone  int      `json:"ops_done"`
	OpsTotal int      `json:"ops_total"`
	Error    string   `json:"error,omitempty"`
}

// view snapshots a job for the API. Callers hold the manager's mutex.
func (j *job) view() JobView {
	return JobView{
		ID:       j.id,
		Tenant:   j.spec.Tenant,
		State:    j.state,
		CPU:      j.spec.CPU,
		Ops:      append([]string(nil), j.spec.Ops...),
		OpsDone:  j.done,
		OpsTotal: j.total,
		Error:    j.errMsg,
	}
}
