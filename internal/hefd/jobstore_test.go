package hefd

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hef/internal/store"
)

func mustAppend(t *testing.T, l *JobLog, rec walRecord) {
	t.Helper()
	if err := l.Append(rec); err != nil {
		t.Fatalf("append %+v: %v", rec, err)
	}
}

func replayAll(t *testing.T, dir string) (*JobLog, []walRecord) {
	t.Helper()
	var recs []walRecord
	l, err := OpenJobLog(store.OS, dir, func(r walRecord) { recs = append(recs, r) })
	if err != nil {
		t.Fatalf("open job log: %v", err)
	}
	return l, recs
}

func TestJobLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := replayAll(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	spec := &JobSpec{Tenant: "t1", CPU: "silver", Ops: []string{"murmur"}}
	mustAppend(t, l, walRecord{Kind: walSpec, ID: "j0", Seq: 0, Spec: spec})
	mustAppend(t, l, walRecord{Kind: walState, ID: "j0", State: StateRunning})
	mustAppend(t, l, walRecord{Kind: walReport, ID: "j0", Report: `{"ok":true}`})
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, recs := replayAll(t, dir)
	defer l2.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].Kind != walSpec || recs[0].Spec == nil || recs[0].Spec.Tenant != "t1" {
		t.Fatalf("spec record mangled: %+v", recs[0])
	}
	if recs[1].State != StateRunning {
		t.Fatalf("state record mangled: %+v", recs[1])
	}
	if recs[2].Report != `{"ok":true}` {
		t.Fatalf("report bytes mangled: %s", recs[2].Report)
	}
	if l2.Salvaged() != 0 {
		t.Fatalf("clean log reported %d salvaged bytes", l2.Salvaged())
	}
}

// A torn tail — the kill -9 artifact — must cost exactly the torn record:
// the valid prefix replays, the bad suffix is quarantined, and the log
// accepts appends again.
func TestJobLogTornTailSalvaged(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir)
	mustAppend(t, l, walRecord{Kind: walSpec, ID: "j0", Seq: 0, Spec: &JobSpec{Ops: []string{"murmur"}}})
	mustAppend(t, l, walRecord{Kind: walState, ID: "j0", State: StateRunning})
	l.Close()

	path := filepath.Join(dir, JobLogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-record: keep the first record plus half the second.
	torn := append([]byte(nil), data...)
	torn = torn[:len(torn)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs := replayAll(t, dir)
	if len(recs) != 1 || recs[0].Kind != walSpec {
		t.Fatalf("salvage replayed %d records (%+v), want the 1 intact spec", len(recs), recs)
	}
	if l2.Salvaged() == 0 {
		t.Fatal("salvage not reported")
	}
	side, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatalf("quarantine sidecar missing: %v", err)
	}
	if !strings.Contains(string(side), `"reason"`) {
		t.Fatalf("quarantine sidecar has no reason header: %q", side)
	}
	// The salvaged log keeps working.
	mustAppend(t, l2, walRecord{Kind: walState, ID: "j0", State: StateParked})
	l2.Close()
	_, recs = replayAll(t, dir)
	if len(recs) != 2 || recs[1].State != StateParked {
		t.Fatalf("post-salvage append lost: %+v", recs)
	}
}

// Valid CRC framing around non-JSON payload is foreign data, not a torn
// tail — it must still salvage, not crash or silently replay garbage.
func TestJobLogForeignRecordQuarantined(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, JobLogName)
	frame := store.AppendRecord(nil, []byte("not json"))
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs := replayAll(t, dir)
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("foreign record replayed: %+v", recs)
	}
	if l.Salvaged() == 0 {
		t.Fatal("foreign record not quarantined")
	}
}

// failAfterFS lets N appended file writes succeed, then fails every write.
type failAfterFS struct {
	store.FS
	remaining int
}

type failAfterFile struct {
	store.File
	fs *failAfterFS
}

func (f *failAfterFS) OpenAppend(path string) (store.File, error) {
	inner, err := f.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &failAfterFile{File: inner, fs: f}, nil
}

func (f *failAfterFile) Write(p []byte) (int, error) {
	if f.fs.remaining <= 0 {
		return 0, errors.New("injected: no space left on device")
	}
	f.fs.remaining--
	return f.File.Write(p)
}

func TestJobLogDegradesAfterWriteFailure(t *testing.T) {
	dir := t.TempDir()
	fsys := &failAfterFS{FS: store.OS, remaining: 1}
	l, err := OpenJobLog(fsys, dir, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	mustAppend(t, l, walRecord{Kind: walSpec, ID: "j0", Spec: &JobSpec{Ops: []string{"murmur"}}})
	if err := l.Append(walRecord{Kind: walSpec, ID: "j1"}); !errors.Is(err, ErrStorage) {
		t.Fatalf("failed append returned %v, want ErrStorage", err)
	}
	if l.Degraded() == "" {
		t.Fatal("log not marked degraded")
	}
	// Degradation is sticky: ordering can no longer be promised.
	if err := l.Append(walRecord{Kind: walSpec, ID: "j2"}); !errors.Is(err, ErrStorage) {
		t.Fatalf("append after degradation returned %v, want ErrStorage", err)
	}
	// The record written before the failure is still replayable.
	_, recs := replayAll(t, dir)
	if len(recs) != 1 || recs[0].ID != "j0" {
		t.Fatalf("pre-failure record lost: %+v", recs)
	}
}
