package hefd

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hef/internal/obs"
	"hef/internal/sched"
	"hef/internal/store"
)

// A dry token bucket survives the restart: the tenant is still shed with
// 429 immediately after the new instance comes up, instead of getting a
// fresh burst by crashing the daemon.
func TestAdmissionRecoveryKeepsBucketDry(t *testing.T) {
	dir := t.TempDir()
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	cfg := Config{DataDir: dir, LogW: io.Discard, runOp: stubRun, Clock: clock,
		Quota: QuotaConfig{Rate: 0.001, Burst: 1}}

	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Submit(JobSpec{Tenant: "alice", Ops: []string{"murmur"}}); err != nil {
		t.Fatalf("alice's burst submit: %v", err)
	}
	var shed *ShedError
	if _, err := m1.Submit(JobSpec{Tenant: "alice", Ops: []string{"murmur"}}); !errors.As(err, &shed) || shed.Code != ShedQuota {
		t.Fatalf("bucket not dry before restart: %v", err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.Submit(JobSpec{Tenant: "alice", Ops: []string{"murmur"}}); !errors.As(err, &shed) || shed.Code != ShedQuota {
		t.Fatalf("restart refunded the dry bucket: %v", err)
	}
	// A tenant that never spent is unaffected.
	if _, err := m2.Submit(JobSpec{Tenant: "bob", Ops: []string{"murmur"}}); err != nil {
		t.Fatalf("bob shed after restart: %v", err)
	}
}

// An open breaker survives the restart with its original cooldown anchor:
// the tenant stays shed with 503 and cannot close the circuit early by
// crashing the daemon.
func TestAdmissionRecoveryKeepsBreakerOpen(t *testing.T) {
	dir := t.TempDir()
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	failing := func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
		return nil, errors.New("poisoned spec")
	}
	cfg := Config{DataDir: dir, LogW: io.Discard, Clock: clock,
		Breaker: BreakerConfig{Threshold: 1, Cooldown: time.Hour}}

	cfg.runOp = failing
	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m1.Submit(JobSpec{Tenant: "mallory", Ops: []string{"murmur"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, v.ID, StateFailed)
	var shed *ShedError
	if _, err := m1.Submit(JobSpec{Tenant: "mallory", Ops: []string{"murmur"}}); !errors.As(err, &shed) || shed.Code != ShedBreakerOpen {
		t.Fatalf("breaker not open before restart: %v", err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart halfway through the cooldown: the remaining wait reflects the
	// ORIGINAL opening time, not the restart.
	clock.Advance(30 * time.Minute)
	cfg.runOp = stubRun
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.Submit(JobSpec{Tenant: "mallory", Ops: []string{"murmur"}}); !errors.As(err, &shed) || shed.Code != ShedBreakerOpen {
		t.Fatalf("restart closed the open breaker: %v", err)
	}
	if shed.RetryAfter > 30*time.Minute {
		t.Fatalf("cooldown restarted from scratch: Retry-After %v, want <= 30m", shed.RetryAfter)
	}
	// The rest of the cooldown elapses; the probe is admitted and closes
	// the circuit.
	clock.Advance(31 * time.Minute)
	probe, err := m2.Submit(JobSpec{Tenant: "mallory", Ops: []string{"murmur"}})
	if err != nil {
		t.Fatalf("probe refused after full cooldown: %v", err)
	}
	waitState(t, m2, probe.ID, StateDone)
}

// The snapshot format round-trips byte-identically: save, load, save must
// reproduce the same bytes (JSON maps marshal with sorted keys).
func TestAdmissionStateRoundTripByteIdentical(t *testing.T) {
	st := AdmissionState{
		Buckets: map[string]BucketState{
			"alice": {Tokens: 0.25, LastMS: 123456},
			"bob":   {Tokens: 3, LastMS: 99},
		},
		Breakers: map[string]BreakerState{
			"mallory": {Failures: 4, Open: true, OpenedAtMS: 5000},
			"trent":   {Failures: 1},
		},
	}
	first, err := EncodeAdmissionState(st)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseAdmissionState(first)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	second, err := EncodeAdmissionState(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-identical:\n%q\n%q", first, second)
	}
	if parsed.Breakers["mallory"].OpenedAtMS != 5000 || parsed.Buckets["alice"].Tokens != 0.25 {
		t.Fatalf("round trip lost fields: %+v", parsed)
	}
}

func TestParseAdmissionStateRejectsDamage(t *testing.T) {
	good, err := EncodeAdmissionState(AdmissionState{Buckets: map[string]BucketState{"a": {Tokens: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"torn tail":      good[:len(good)-3],
		"flipped byte":   append(append([]byte{}, good[:8]...), append([]byte{good[8] ^ 0xff}, good[9:]...)...),
		"trailing junk":  append(append([]byte{}, good...), 'x'),
		"double record":  append(append([]byte{}, good...), good...),
		"foreign record": store.AppendRecord(nil, []byte(`{"schema":"something.else"}`)),
	} {
		if _, err := ParseAdmissionState(data); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
	// Empty is the zero state, not damage.
	if st, err := ParseAdmissionState(nil); err != nil || len(st.Buckets) != 0 {
		t.Fatalf("empty state: %+v %v", st, err)
	}
}

// A torn snapshot on disk falls back to the zero state with a single
// warning; the daemon still serves.
func TestAdmissionRecoveryTornSnapshotFallsBackToZero(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, AdmissionStateName)
	good, err := EncodeAdmissionState(AdmissionState{Buckets: map[string]BucketState{"alice": {Tokens: 0, LastMS: 1000_000}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, good[:len(good)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	var log strings.Builder
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	m, err := New(Config{DataDir: dir, LogW: &log, runOp: stubRun, Clock: clock,
		Quota: QuotaConfig{Rate: 1, Burst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if n := strings.Count(log.String(), AdmissionStateName+" unusable"); n != 1 {
		t.Fatalf("want exactly one torn-snapshot warning, got %d:\n%s", n, log.String())
	}
	// Zero state: alice's recorded dry bucket was unreadable, so she gets
	// the configured burst — availability over a corrupt protection file.
	if _, err := m.Submit(JobSpec{Tenant: "alice", Ops: []string{"murmur"}}); err != nil {
		t.Fatalf("submit under zero fallback state: %v", err)
	}
}
