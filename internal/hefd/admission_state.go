package hefd

import (
	"encoding/json"
	"fmt"

	"hef/internal/store"
)

// AdmissionStateName is the admission snapshot file inside the data
// directory. It persists what the WAL deliberately does not: the token
// bucket levels and breaker circuits that would otherwise reset on every
// restart, letting a tenant refund a dry bucket or close an open breaker
// early just by crashing the daemon.
const AdmissionStateName = "admission.state"

// AdmissionStateSchema/Version identify the snapshot payload.
const (
	AdmissionStateSchema  = "hef.hefd.admission-state"
	AdmissionStateVersion = 1
)

// BucketState is one tenant's persisted token bucket.
type BucketState struct {
	// Tokens is the level at LastMS.
	Tokens float64 `json:"tokens"`
	// LastMS is the refill anchor (unix milliseconds).
	LastMS int64 `json:"last_ms"`
}

// BreakerState is one tenant's persisted circuit breaker.
type BreakerState struct {
	// Failures is the consecutive terminal-failure count.
	Failures int `json:"failures,omitempty"`
	// Open reports an open circuit; OpenedAtMS anchors its cooldown.
	Open       bool  `json:"open,omitempty"`
	OpenedAtMS int64 `json:"opened_at_ms,omitempty"`
}

// AdmissionState is the admission.state payload: a single CRC-framed
// record whose JSON body is this document. JSON maps marshal with sorted
// keys, so a save/load/save round trip is byte-identical — the property
// the persistence tests pin down.
type AdmissionState struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`

	Buckets  map[string]BucketState  `json:"buckets,omitempty"`
	Breakers map[string]BreakerState `json:"breakers,omitempty"`
}

// EncodeAdmissionState frames the snapshot for disk.
func EncodeAdmissionState(st AdmissionState) ([]byte, error) {
	st.Schema = AdmissionStateSchema
	st.Version = AdmissionStateVersion
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("hefd: admission state marshal: %w", err)
	}
	return store.AppendRecord(nil, payload), nil
}

// ParseAdmissionState decodes an admission.state file. Empty (or missing,
// read as nil) data is a first boot and yields the zero state. Anything
// that is not exactly one intact, schema-matched record is reported as
// corrupt: unlike the job log there is no salvageable prefix — the file is
// a snapshot, not a log — so the caller falls back to the zero state.
func ParseAdmissionState(data []byte) (AdmissionState, error) {
	var st AdmissionState
	if len(data) == 0 {
		st.Schema = AdmissionStateSchema
		st.Version = AdmissionStateVersion
		return st, nil
	}
	records := 0
	validLen, err := store.ScanRecords(data, func(payload []byte) error {
		records++
		if records > 1 {
			return fmt.Errorf("%w: admission state: more than one record", store.ErrCorrupt)
		}
		if err := json.Unmarshal(payload, &st); err != nil {
			return fmt.Errorf("%w: admission state: %v", store.ErrCorrupt, err)
		}
		if st.Schema != AdmissionStateSchema {
			return fmt.Errorf("%w: admission state schema %q", store.ErrCorrupt, st.Schema)
		}
		if st.Version != AdmissionStateVersion {
			return fmt.Errorf("%w: admission state version %d", store.ErrVersionSkew, st.Version)
		}
		return nil
	})
	if err != nil {
		return AdmissionState{}, err
	}
	if validLen != len(data) || records != 1 {
		return AdmissionState{}, fmt.Errorf("%w: admission state: trailing bytes", store.ErrCorrupt)
	}
	return st, nil
}
