package hefd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hef/internal/core"
	"hef/internal/experiments"
	"hef/internal/hef"
	"hef/internal/hid"
	"hef/internal/memo"
	"hef/internal/obs"
	"hef/internal/sched"
	"hef/internal/store"
	"hef/internal/telemetry"
	"hef/internal/translator"
)

// Config tunes a Manager. DataDir is required; every other zero value
// selects a sensible default.
type Config struct {
	// DataDir holds the write-ahead job log and the per-job sweep
	// checkpoints. It is the daemon's durable identity: restart with the
	// same directory and every accepted job is recovered.
	DataDir string
	// MemoDir, when non-empty, backs the shared measurement memo with a
	// durable store so measurements persist across restarts and deduplicate
	// across tenants ("" keeps the memo in memory only).
	MemoDir string
	// Workers is the number of jobs run concurrently (<= 0 selects 1).
	Workers int
	// QueueSize bounds accepted-but-unfinished jobs (queued + running);
	// beyond it submissions shed with 429 (<= 0 selects 64).
	QueueSize int
	// Retries caps per-operator re-executions inside a job (< 0 selects 0).
	Retries int
	// Quota configures the per-tenant token buckets (zero disables).
	Quota QuotaConfig
	// Breaker configures the per-tenant admission breaker (zero disables).
	Breaker BreakerConfig
	// Retention bounds the data directory: expired terminal jobs are
	// tombstoned by a periodic sweep and the WAL is compacted at startup
	// (zero retains everything forever).
	Retention RetentionConfig
	// WALMaxBytes compacts the job log in place, while the daemon is
	// serving, whenever it grows past this many bytes (0 disables online
	// compaction; the startup compaction under Retention still applies).
	// The rewrite is the same atomic old-or-new discipline as the startup
	// compaction, so a kill -9 mid-compaction costs nothing.
	WALMaxBytes int64
	// AuthKeys, when non-empty, is the API key file: requests must present
	// a listed key, and the key decides the tenant. Reloadable at runtime
	// via ReloadKeys (cmd/hefd wires it to SIGHUP). "" disables auth.
	AuthKeys string
	// Clock abstracts time for quota/breaker/backoff tests (nil = real).
	Clock sched.Clock
	// FS is the filesystem for the job log and checkpoints (nil = real).
	FS store.FS
	// LogW receives operational warnings (default os.Stderr).
	LogW io.Writer
	// SweepMetrics/Tracer thread the telemetry session's instruments into
	// each job's sweep; both are nil-safe.
	SweepMetrics *telemetry.SweepMetrics
	// Tracer records sweep lifecycle spans per job.
	Tracer *telemetry.Tracer

	// runOp replaces the production per-operator pipeline in tests (nil
	// selects the real optimizer). Unexported: only this package's tests
	// can reach it, and it is installed before the workers start so
	// recovered jobs see it too.
	runOp func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error)
}

// Counts is a snapshot of the manager's job population and admission
// counters, bridged into /metrics as gauges.
type Counts struct {
	Queued, Running, Parked            int
	Done, Failed, Cancelled            int
	Accepted, Shed, Recovered, Resumed int
	Expired, Compactions               int
	AuthDenied, KeyReloads             int
}

// Manager supervises the accepted jobs: admission, the bounded queue, the
// worker pool, write-ahead persistence, crash recovery, and graceful
// drain. Create with New, serve with the api handler, stop with Close.
type Manager struct {
	cfg      Config
	clock    sched.Clock
	fs       store.FS
	logW     io.Writer
	wal      *JobLog
	quotas   *quotas
	breakers *tenantBreakers
	cache    *memo.Cache
	mstore   *store.MemoStore

	// keys is the active API keyring (nil when auth is off). Swapped
	// atomically by ReloadKeys so requests never see a half-built ring.
	keys atomic.Pointer[Keyring]
	// persistAdm enables the admission.state snapshot: only set when
	// quotas or breakers can actually hold state worth persisting, so the
	// default configuration's I/O profile is unchanged.
	persistAdm bool
	admPath    string
	retainStop chan struct{}

	mu           sync.Mutex
	cond         *sync.Cond
	jobs         map[string]*job
	order        []string // job IDs in acceptance order
	pending      []*job   // FIFO of queued jobs
	seq          int
	runningN     int
	counts       Counts
	queueBackoff shedBackoff
	draining     bool
	closed       bool
	walWarned    bool
	admWarned    bool
	walRecords   int // live record count (replayed at open + appended since), for compaction decisions

	wg sync.WaitGroup

	// runOp executes one operator of one job; tests stub it to make
	// admission and chaos behavior deterministic without simulating.
	runOp func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error)
}

// New opens (or creates) the job log in cfg.DataDir, replays it, re-queues
// every non-terminal job, and starts the worker pool. The returned manager
// is serving: recovered jobs begin running immediately.
func New(cfg Config) (*Manager, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("hefd: DataDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Clock == nil {
		cfg.Clock = sched.RealClock{}
	}
	if cfg.FS == nil {
		cfg.FS = store.OS
	}
	if cfg.LogW == nil {
		cfg.LogW = os.Stderr
	}

	m := &Manager{
		cfg:          cfg,
		clock:        cfg.Clock,
		fs:           cfg.FS,
		logW:         cfg.LogW,
		quotas:       newQuotas(cfg.Quota),
		breakers:     newTenantBreakers(cfg.Breaker),
		cache:        memo.NewCache(),
		jobs:         map[string]*job{},
		queueBackoff: shedBackoff{base: 100 * time.Millisecond, max: 5 * time.Second},
	}
	m.cond = sync.NewCond(&m.mu)
	m.runOp = m.optimizeOp
	if cfg.runOp != nil {
		m.runOp = cfg.runOp
	}

	if cfg.AuthKeys != "" {
		ring, err := LoadKeyring(cfg.FS, cfg.AuthKeys)
		if err != nil {
			return nil, err
		}
		m.keys.Store(ring)
	}

	wal, err := OpenJobLog(cfg.FS, cfg.DataDir, m.replay)
	if err != nil {
		return nil, err
	}
	m.wal = wal
	if n := wal.Salvaged(); n > 0 {
		fmt.Fprintf(m.logW, "hefd: job log: quarantined %d bytes of torn tail\n", n)
	}
	// Tombstones replayed out of m.jobs leave dangling ids in the
	// acceptance order; drop them before anything walks it.
	keep := m.order[:0]
	for _, id := range m.order {
		if m.jobs[id] != nil {
			keep = append(keep, id)
		}
	}
	m.order = keep

	// Admission state restores before any request can spend from it. A
	// torn or foreign snapshot falls back to the zero state with one
	// warning — admission is a protection layer, not a source of truth,
	// so corruption here must never stop the daemon.
	m.persistAdm = cfg.Quota.Rate > 0 || cfg.Breaker.Threshold > 0 || m.Keys().Len() > 0
	m.admPath = filepath.Join(cfg.DataDir, AdmissionStateName)
	if m.persistAdm {
		store.RemoveStaleTemps(cfg.FS, m.admPath)
		if data, err := cfg.FS.ReadFile(m.admPath); err == nil {
			if st, perr := ParseAdmissionState(data); perr != nil {
				fmt.Fprintf(m.logW, "hefd: %s unusable, starting from zero admission state: %v\n", AdmissionStateName, perr)
			} else {
				m.quotas.restore(st.Buckets)
				m.breakers.restore(st.Breakers)
			}
		}
	}

	// Retention runs once before the compaction below, so a plain restart
	// is enough to enforce a newly tightened policy.
	if cfg.Retention.enabled() {
		m.Sweep()
		if err := m.compact(); err != nil {
			fmt.Fprintf(m.logW, "hefd: startup compaction skipped: %v\n", err)
		}
	}

	// One shared measurement memo across all tenants and jobs: identical
	// measurements deduplicate service-wide. Persistence failures degrade
	// to memory-only, exactly like the CLI tools.
	if cfg.MemoDir != "" {
		st, err := store.Open(cfg.MemoDir)
		if err != nil {
			fmt.Fprintf(m.logW, "hefd: -memo-dir %s unusable, continuing without persistence: %v\n", cfg.MemoDir, err)
		} else {
			m.mstore = st
			m.cache = st.Cache()
		}
	}

	// Re-queue every non-terminal job in acceptance order. Recovered jobs
	// were admitted before the crash, so they bypass admission control —
	// the queue bound applies to new work, never to the recovery backlog.
	for _, id := range m.order {
		j := m.jobs[id]
		if j.state.Terminal() {
			continue
		}
		j.state = StateQueued
		m.pending = append(m.pending, j)
		m.counts.Recovered++
	}

	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	if cfg.Retention.enabled() {
		m.retainStop = make(chan struct{})
		m.wg.Add(1)
		go m.retentionLoop(m.retainStop)
	}
	return m, nil
}

// replay applies one job-log record during OpenJobLog. Records arrive in
// append order, so the last state recorded wins.
func (m *Manager) replay(rec walRecord) {
	m.walRecords++
	switch rec.Kind {
	case walSpec:
		if rec.Spec == nil || rec.ID == "" {
			return
		}
		if _, dup := m.jobs[rec.ID]; dup {
			return
		}
		spec := *rec.Spec
		spec.Normalize()
		j := &job{id: rec.ID, seq: rec.Seq, spec: spec, state: StateQueued, total: len(spec.Ops)}
		m.jobs[rec.ID] = j
		m.order = append(m.order, rec.ID)
		if rec.Seq >= m.seq {
			m.seq = rec.Seq + 1
		}
	case walState:
		if j := m.jobs[rec.ID]; j != nil {
			j.state = rec.State
			j.errMsg = rec.Error
			if rec.AtMS > 0 {
				j.terminalAt = time.UnixMilli(rec.AtMS)
			}
		}
	case walReport:
		if j := m.jobs[rec.ID]; j != nil {
			j.report = []byte(rec.Report)
			j.done = j.total
		}
	case walTomb:
		// The job expired before the crash; its artifacts may or may not
		// have been deleted — the startup sweep's orphan pass finishes the
		// cleanup either way.
		delete(m.jobs, rec.ID)
	case walSeq:
		// Compaction high-water mark: ids never restart below it even when
		// every job it covered has since expired.
		if rec.Seq > m.seq {
			m.seq = rec.Seq
		}
	}
}

// compact rewrites the WAL down to the live jobs: one high-water sequence
// record, then per surviving job its spec, terminal state, and report.
// Tombstoned and superseded records vanish. The rewrite is atomic (old or
// new log, never a mix), so this is safe to run at every startup.
func (m *Manager) compact() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compactLocked()
}

// compactLocked is compact's body; callers hold m.mu.
func (m *Manager) compactLocked() error {
	recs := make([]walRecord, 0, 1+3*len(m.order))
	recs = append(recs, walRecord{Kind: walSeq, Seq: m.seq})
	for _, id := range m.order {
		j := m.jobs[id]
		recs = append(recs, walRecord{Kind: walSpec, ID: j.id, Seq: j.seq, Spec: &j.spec})
		// Non-terminal jobs re-queue on replay, so their spec alone is the
		// whole story; terminal jobs keep their final transition and report.
		if j.state.Terminal() {
			rec := walRecord{Kind: walState, ID: j.id, State: j.state, Error: j.errMsg}
			if !j.terminalAt.IsZero() {
				rec.AtMS = j.terminalAt.UnixMilli()
			}
			recs = append(recs, rec)
			if j.state == StateDone && j.report != nil {
				recs = append(recs, walRecord{Kind: walReport, ID: j.id, Report: string(j.report)})
			}
		}
	}
	if m.walRecords <= len(recs) {
		return nil // the log is already minimal; a rewrite would only burn I/O
	}
	if _, err := m.wal.Compact(recs); err != nil {
		return err
	}
	m.walRecords = len(recs)
	m.counts.Compactions++
	return nil
}

// maybeCompact compacts the job log in place once it has outgrown
// Config.WALMaxBytes. It runs after a job finishes and after a retention
// sweep — the two moments the log accretes shed-able records — never on
// the submission path, so admission latency stays bounded. A log already
// at its minimal record set is left alone even above the threshold (large
// live reports can legitimately exceed it; rewriting would only burn I/O).
func (m *Manager) maybeCompact() {
	if m.cfg.WALMaxBytes <= 0 || m.wal.Size() < m.cfg.WALMaxBytes {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.compactLocked(); err != nil {
		fmt.Fprintf(m.logW, "hefd: online compaction skipped: %v\n", err)
	}
}

// MemoStore exposes the durable memo store for telemetry bridging (nil
// when the memo is memory-only).
func (m *Manager) MemoStore() *store.MemoStore { return m.mstore }

// Counts snapshots the job population for gauges and tests.
func (m *Manager) Counts() Counts {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counts
	c.Queued = len(m.pending)
	c.Running = m.runningN
	for _, j := range m.jobs {
		switch j.state {
		case StateParked:
			c.Parked++
		case StateDone:
			c.Done++
		case StateFailed:
			c.Failed++
		case StateCancelled:
			c.Cancelled++
		}
	}
	return c
}

// Submit runs admission control and, when the job is accepted, persists it
// write-ahead and enqueues it. The error is nil (accepted), a wrapped
// ErrInvalidSpec (400), a *ShedError (429/503), or a wrapped ErrStorage
// (503): nothing here blocks, so submission latency is bounded at any
// load.
func (m *Manager) Submit(spec JobSpec) (JobView, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return JobView{}, err
	}
	seen := map[string]bool{}
	for _, op := range spec.Ops {
		if seen[op] {
			return JobView{}, fmt.Errorf("%w: duplicate op %q", ErrInvalidSpec, op)
		}
		seen[op] = true
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock.Now()
	if m.draining || m.closed {
		m.counts.Shed++
		return JobView{}, &ShedError{Code: ShedDraining, Message: "daemon is draining; resubmit to the next instance"}
	}
	if ok, wait := m.breakers.allow(spec.Tenant, now); !ok {
		m.counts.Shed++
		return JobView{}, &ShedError{
			Code:       ShedBreakerOpen,
			Message:    fmt.Sprintf("tenant %q circuit breaker is open after repeated job failures", spec.Tenant),
			RetryAfter: wait,
		}
	}
	if len(m.pending)+m.runningN >= m.cfg.QueueSize {
		m.counts.Shed++
		return JobView{}, &ShedError{
			Code:       ShedQueueFull,
			Message:    fmt.Sprintf("job queue at capacity (%d)", m.cfg.QueueSize),
			RetryAfter: m.queueBackoff.next(),
		}
	}
	ok, wait := m.quotas.take(spec.Tenant, now, m.Keys().QuotaFor(spec.Tenant))
	// Whether the take succeeded or not, the bucket moved (level or refill
	// anchor); persist it so a restart cannot refund it.
	m.saveAdmissionLocked()
	if !ok {
		m.counts.Shed++
		return JobView{}, &ShedError{
			Code:       ShedQuota,
			Message:    fmt.Sprintf("tenant %q quota exhausted", spec.Tenant),
			RetryAfter: wait,
		}
	}

	id := fmt.Sprintf("j%06d-%.8s", m.seq, spec.Fingerprint())
	j := &job{id: id, seq: m.seq, spec: spec, state: StateQueued, total: len(spec.Ops)}
	// Write-ahead: the job is durable before it is acknowledged, so a
	// kill -9 one instruction after the 202 cannot lose it.
	if err := m.wal.Append(walRecord{Kind: walSpec, ID: id, Seq: m.seq, Spec: &spec}); err != nil {
		return JobView{}, err
	}
	m.walRecords++
	m.seq++
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.pending = append(m.pending, j)
	m.counts.Accepted++
	m.queueBackoff.reset()
	m.cond.Signal()
	return j.view(), nil
}

// Get returns a job's status.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.view(), nil
}

// List returns every job (optionally filtered by tenant) in acceptance
// order.
func (m *Manager) List(tenant string) []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	views := make([]JobView, 0, len(m.order))
	for _, id := range m.order {
		j := m.jobs[id]
		if tenant != "" && j.spec.Tenant != tenant {
			continue
		}
		views = append(views, j.view())
	}
	return views
}

// Report returns the final RunReport bytes of a done job, verbatim as
// persisted — the byte-identity guarantee lives here.
func (m *Manager) Report(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if j.state != StateDone || j.report == nil {
		return nil, fmt.Errorf("%w: job %q is %s", ErrReportNotReady, id, j.state)
	}
	return append([]byte(nil), j.report...), nil
}

// Cancel requests a job's cancellation: a queued job is removed and
// terminal immediately, a running job's context is cancelled (its sweep
// drains, flushes its checkpoint, and the job resolves cancelled), and a
// terminal job is left untouched (idempotent).
func (m *Manager) Cancel(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch j.state {
	case StateQueued, StateParked:
		for i, p := range m.pending {
			if p == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		m.setTerminalLocked(j, StateCancelled, "cancelled before start")
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.view(), nil
}

// setTerminalLocked records a terminal (or parked) transition in memory
// and the WAL. Terminal jobs also lose their checkpoint right away — the
// report (or the failure) is the durable outcome now, and keeping the
// checkpoint would let the data dir grow with every finished job. Parked
// jobs keep theirs: it is exactly what the next start resumes from.
// Callers hold m.mu.
func (m *Manager) setTerminalLocked(j *job, state JobState, errMsg string) {
	j.state = state
	j.errMsg = errMsg
	rec := walRecord{Kind: walState, ID: j.id, State: state, Error: errMsg}
	if state.Terminal() {
		j.terminalAt = m.clock.Now()
		rec.AtMS = j.terminalAt.UnixMilli()
	}
	m.walAppendLocked(rec)
	if state.Terminal() {
		m.removeJobArtifacts(j.id)
	}
}

// walAppendLocked appends a non-admission record, degrading with a single
// warning instead of failing the job: the result is still in memory and the
// run completes, only durability of this transition is lost. (Submit's
// write-ahead append does NOT go through here — acceptance must be
// durable.)
func (m *Manager) walAppendLocked(rec walRecord) {
	err := m.wal.Append(rec)
	if err == nil {
		m.walRecords++
		return
	}
	if !m.walWarned {
		m.walWarned = true
		fmt.Fprintf(m.logW, "hefd: job log degraded, further transitions unpersisted: %v\n", err)
	}
}

// worker pulls queued jobs and runs them until the manager closes. During
// a drain workers stop pulling, so queued jobs park for the next start.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.closed && (len(m.pending) == 0 || m.draining) {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		m.runningN++
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		j.state = StateRunning
		m.walAppendLocked(walRecord{Kind: walState, ID: j.id, State: StateRunning})
		m.mu.Unlock()

		m.runJob(ctx, j)
		cancel()

		m.mu.Lock()
		j.cancel = nil
		m.runningN--
		m.cond.Broadcast()
		m.mu.Unlock()

		// Each finished job appended a state transition (and usually a
		// report); check whether the log has outgrown its bound.
		m.maybeCompact()
	}
}

// ckptDir holds the per-job sweep checkpoints.
func (m *Manager) ckptDir() string {
	return filepath.Join(m.cfg.DataDir, "ckpt")
}

// ckptPath is the job's sweep checkpoint file.
func (m *Manager) ckptPath(id string) string {
	return filepath.Join(m.ckptDir(), id+".ckpt")
}

// runJob executes one job as a checkpointed sweep over its operators and
// records the terminal (or parked) outcome.
func (m *Manager) runJob(ctx context.Context, j *job) {
	spec := j.spec
	if spec.DeadlineMS > 0 {
		// The deadline is per run: a parked job gets a fresh allowance when
		// it resumes, so a drain never converts parked work into failures.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.DeadlineMS)*time.Millisecond)
		defer cancel()
	}

	tasks := make([]sched.Task[*obs.RunReport], 0, len(spec.Ops))
	for _, op := range spec.Ops {
		op := op
		tasks = append(tasks, sched.Task[*obs.RunReport]{
			ID:  op,
			Key: spec.CPU,
			Run: func(jctx context.Context) (*obs.RunReport, error) {
				return m.runOp(jctx, spec, op)
			},
		})
	}

	ckpt := m.ckptPath(j.id)
	if err := m.fs.MkdirAll(filepath.Dir(ckpt)); err != nil {
		m.mu.Lock()
		m.finishLocked(j, StateFailed, fmt.Sprintf("checkpoint dir: %v", err))
		m.mu.Unlock()
		return
	}
	sweep := func(resume string) (*sched.SweepResult[*obs.RunReport], error) {
		return sched.RunSweep(ctx, sched.SweepConfig{
			Tool:           "hefd",
			Fingerprint:    spec.Fingerprint(),
			CheckpointPath: ckpt,
			ResumePath:     resume,
			FS:             m.fs,
			Runner: sched.Config{
				Workers:    1,
				MaxRetries: m.cfg.Retries,
				OnOutcome: func(o sched.Outcome) {
					if o.State == sched.StateDone {
						m.mu.Lock()
						j.done++
						m.mu.Unlock()
					}
				},
			},
			Metrics: m.cfg.SweepMetrics,
			Tracer:  m.cfg.Tracer,
		}, tasks)
	}

	resume := ""
	if _, err := m.fs.Stat(ckpt); err == nil {
		resume = ckpt
	}
	res, err := sweep(resume)
	if res == nil && err != nil && resume != "" {
		// The checkpoint (and its .bak) failed to load — corrupt beyond the
		// rotation's reach. The job itself is still perfectly runnable;
		// restart it from scratch rather than failing accepted work.
		fmt.Fprintf(m.logW, "hefd: job %s: checkpoint unusable (%v); restarting from scratch\n", j.id, err)
		res, err = sweep("")
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if res != nil {
		j.done = len(res.Results)
		m.counts.Resumed += res.Resumed
		if res.PersistWarning != "" && !m.walWarned {
			fmt.Fprintf(m.logW, "hefd: job %s: %s\n", j.id, res.PersistWarning)
		}
	}
	switch {
	case err == nil:
		reports := make([]*obs.RunReport, 0, len(tasks))
		for _, t := range tasks {
			reports = append(reports, res.Results[t.ID])
		}
		rep := reports[0]
		if len(reports) > 1 {
			rep = experiments.MergeReports("hefd", reports...)
		}
		data, merr := rep.MarshalIndent()
		if merr != nil {
			m.finishLocked(j, StateFailed, fmt.Sprintf("marshal report: %v", merr))
			return
		}
		j.report = data
		m.walAppendLocked(walRecord{Kind: walReport, ID: j.id, Report: string(data)})
		m.finishLocked(j, StateDone, "")
	case res != nil && res.Interrupted:
		switch {
		case j.cancelRequested:
			m.setTerminalLocked(j, StateCancelled, "cancelled while running")
			m.breakers.release(spec.Tenant)
		case m.draining:
			m.setTerminalLocked(j, StateParked, "")
			m.breakers.release(spec.Tenant)
		default:
			m.finishLocked(j, StateFailed, fmt.Sprintf("deadline exceeded after %dms", spec.DeadlineMS))
		}
	default:
		msg := err.Error()
		if errors.Is(err, sched.ErrJobsFailed) && len(res.Failed) > 0 {
			msg = fmt.Sprintf("%d/%d operators failed; first: %v", len(res.Failed), len(tasks), res.Failed[0].Err)
		}
		m.finishLocked(j, StateFailed, msg)
	}
}

// finishLocked records a job's terminal outcome and feeds the tenant
// breaker. Callers hold m.mu.
func (m *Manager) finishLocked(j *job, state JobState, errMsg string) {
	m.setTerminalLocked(j, state, errMsg)
	m.breakers.onResult(j.spec.Tenant, state == StateDone, m.clock.Now())
	// A breaker that opened (or stepped toward opening) must survive a
	// crash: a tenant cannot close its circuit by killing the daemon.
	m.saveAdmissionLocked()
}

// saveAdmissionLocked snapshots bucket and breaker state to
// admission.state via an atomic rewrite. Disabled configurations skip it
// entirely; a failing disk degrades to memory-only admission with a
// single warning, exactly like a degraded WAL. Callers hold m.mu.
func (m *Manager) saveAdmissionLocked() {
	if !m.persistAdm {
		return
	}
	buf, err := EncodeAdmissionState(AdmissionState{
		Buckets:  m.quotas.snapshot(),
		Breakers: m.breakers.snapshot(),
	})
	if err == nil {
		err = store.RewriteFile(m.fs, m.admPath, buf)
	}
	if err != nil && !m.admWarned {
		m.admWarned = true
		fmt.Fprintf(m.logW, "hefd: %s unwritable, admission state is memory-only: %v\n", AdmissionStateName, err)
	}
}

// Keys returns the active keyring (nil when auth is disabled).
func (m *Manager) Keys() *Keyring { return m.keys.Load() }

// ReloadKeys re-reads the key file (cmd/hefd calls this on SIGHUP). On
// error the previous ring stays active: a fat-fingered edit must not lock
// every tenant out. In-flight jobs are untouched either way — the ring
// only gates new requests.
func (m *Manager) ReloadKeys() error {
	if m.cfg.AuthKeys == "" {
		return nil
	}
	ring, err := LoadKeyring(m.fs, m.cfg.AuthKeys)
	if err != nil {
		fmt.Fprintf(m.logW, "hefd: key reload failed, keeping previous keyring: %v\n", err)
		return err
	}
	m.keys.Store(ring)
	m.mu.Lock()
	m.counts.KeyReloads++
	m.mu.Unlock()
	fmt.Fprintf(m.logW, "hefd: keyring reloaded: %d keys\n", ring.Len())
	return nil
}

// noteAuthDenied counts a 401/403 for the metrics bridge.
func (m *Manager) noteAuthDenied() {
	m.mu.Lock()
	m.counts.AuthDenied++
	m.mu.Unlock()
}

// WALSize reports the job log's on-disk size for the metrics bridge.
func (m *Manager) WALSize() int64 { return m.wal.Size() }

// optimizeOp is the production runOp: the hefopt pipeline for one operator
// — optimize, then measure the scalar, SIMD, and optimal implementations —
// rendered as a versioned RunReport. Deterministic for a fixed spec, which
// is what makes checkpoint resume byte-identical.
func (m *Manager) optimizeOp(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
	var tmpl *hid.Template
	var err error
	if spec.HID != "" {
		var f *hid.File
		if f, err = core.ParseTemplates(spec.HID); err == nil {
			tmpl, err = f.Get(op)
		}
	} else {
		tmpl, err = experiments.OpTemplate(op)
	}
	if err != nil {
		return nil, err
	}
	fw, err := core.New(spec.CPU, core.WithTestElems(spec.Elems))
	if err != nil {
		return nil, err
	}
	opt, err := fw.OptimizeOperatorContext(ctx, tmpl, core.OptimizeOptions{
		Budget: spec.Budget, Parallel: spec.Parallel, Memo: m.cache,
	})
	if err != nil {
		// Budget exhaustion is deterministic; its best-so-far partial result
		// is reported. Any other stop (cancellation, a broken model) fails
		// the operator so a resumed run re-does it in full.
		if opt == nil || !errors.Is(err, hef.ErrBudgetExhausted) {
			return nil, err
		}
	}

	measure := func(label string, n translator.Node) (obs.Run, error) {
		res, err := fw.MeasureWith(tmpl, n, m.cache)
		if err != nil {
			return obs.Run{}, err
		}
		return obs.RunFromResult(tmpl.Name, label, n.String(), res, res.Seconds()), nil
	}
	scalarRun, err := measure("Scalar", translator.Node{V: 0, S: 1, P: 1})
	if err != nil {
		return nil, err
	}
	simdRun, err := measure("SIMD", translator.Node{V: 1, S: 0, P: 1})
	if err != nil {
		return nil, err
	}
	optRun, err := measure("Optimum", opt.Node)
	if err != nil {
		return nil, err
	}

	rep := obs.NewReport("hefd")
	rep.CPU = fw.CPU().Name
	rep.Params["op"] = tmpl.Name
	rep.Runs = append(rep.Runs, scalarRun, simdRun, optRun)
	rep.Search = obs.SearchFromResult(opt.Search)
	return rep, nil
}

// StartDrain flips the manager into draining: new submissions shed with a
// typed error, workers stop pulling queued jobs, and every running job's
// context is cancelled so its sweep checkpoints and parks. Idempotent.
func (m *Manager) StartDrain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return
	}
	m.draining = true
	for _, j := range m.jobs {
		if j.state == StateRunning && j.cancel != nil {
			j.cancel()
		}
	}
	m.cond.Broadcast()
}

// Close drains, waits for the workers, parks still-queued jobs, and
// releases the job log and memo store. After Close the data directory is a
// complete, consistent snapshot a new manager resumes from.
func (m *Manager) Close() error {
	m.StartDrain()
	m.mu.Lock()
	alreadyClosed := m.closed
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	if !alreadyClosed && m.retainStop != nil {
		close(m.retainStop)
	}
	m.wg.Wait()

	m.mu.Lock()
	for _, j := range m.pending {
		m.setTerminalLocked(j, StateParked, "")
	}
	m.pending = nil
	// One final snapshot so the drain's last breaker/bucket movements are
	// what the next instance restores.
	m.saveAdmissionLocked()
	m.mu.Unlock()

	err := m.wal.Close()
	if m.mstore != nil {
		if cerr := m.mstore.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// sortViews orders views by ID for deterministic test output; exported
// behavior (List) is acceptance-ordered and does not use it.
func sortViews(v []JobView) {
	sort.Slice(v, func(i, j int) bool { return v[i].ID < v[j].ID })
}
