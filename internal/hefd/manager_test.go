package hefd

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hef/internal/obs"
	"hef/internal/sched"
	"hef/internal/store"
)

// stubRun is a deterministic runOp stand-in: the report depends only on
// (spec, op), exactly the determinism contract the real pipeline honours.
func stubRun(_ context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
	rep := obs.NewReport("hefd")
	rep.CPU = spec.CPU
	rep.Params["op"] = op
	return rep, nil
}

// newTestManager builds a manager on a temp data dir. cfg.runOp defaults
// to stubRun; it must be set in the Config (not after New) because workers
// start inside New.
func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.LogW == nil {
		cfg.LogW = io.Discard
	}
	if cfg.runOp == nil {
		cfg.runOp = stubRun
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("hefd.New: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if v.State == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (error %q), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitRunReportLifecycle(t *testing.T) {
	m := newTestManager(t, Config{})
	v, err := m.Submit(JobSpec{Ops: []string{"murmur", "crc64"}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v.State != StateQueued || v.OpsTotal != 2 || v.Tenant != DefaultTenant {
		t.Fatalf("unexpected accepted view: %+v", v)
	}
	done := waitState(t, m, v.ID, StateDone)
	if done.OpsDone != 2 {
		t.Fatalf("ops_done = %d, want 2", done.OpsDone)
	}
	data, err := m.Report(v.ID)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not a RunReport: %v\n%s", err, data)
	}
	if rep.Tool != "hefd" {
		t.Fatalf("report tool = %q, want hefd", rep.Tool)
	}
	// Listing shows the job; an unknown tenant filter hides it.
	if got := len(m.List("")); got != 1 {
		t.Fatalf("list all: %d jobs, want 1", got)
	}
	if got := len(m.List("nobody")); got != 0 {
		t.Fatalf("list nobody: %d jobs, want 0", got)
	}
}

func TestSubmitRejectsInvalidSpecs(t *testing.T) {
	m := newTestManager(t, Config{})
	for name, spec := range map[string]JobSpec{
		"no ops":         {},
		"unknown op":     {Ops: []string{"nosuchop"}},
		"unknown cpu":    {CPU: "copper", Ops: []string{"murmur"}},
		"duplicate op":   {Ops: []string{"murmur", "murmur"}},
		"bad tenant":     {Tenant: "No Spaces!", Ops: []string{"murmur"}},
		"negative pace":  {Ops: []string{"murmur"}, DeadlineMS: -1},
		"oversize elems": {Ops: []string{"murmur"}, Elems: MaxElems + 1},
	} {
		if _, err := m.Submit(spec); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: err = %v, want ErrInvalidSpec", name, err)
		}
	}
	if got := len(m.List("")); got != 0 {
		t.Fatalf("invalid specs entered the job table: %d", got)
	}
}

func TestQueueFullShedsWithGrowingRetryAfter(t *testing.T) {
	release := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1, QueueSize: 2, runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
		select {
		case <-release:
			return stubRun(ctx, spec, op)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	var accepted []string
	for i := 0; i < 2; i++ {
		v, err := m.Submit(JobSpec{Ops: []string{"murmur"}})
		if err != nil {
			t.Fatalf("submit %d within capacity: %v", i, err)
		}
		accepted = append(accepted, v.ID)
	}
	var shed *ShedError
	if _, err := m.Submit(JobSpec{Ops: []string{"murmur"}}); !errors.As(err, &shed) || shed.Code != ShedQueueFull {
		t.Fatalf("over-capacity submit: %v, want queue_full shed", err)
	}
	first := shed.RetryAfter
	if first <= 0 {
		t.Fatal("queue_full shed carries no Retry-After")
	}
	if _, err := m.Submit(JobSpec{Ops: []string{"murmur"}}); !errors.As(err, &shed) {
		t.Fatalf("second over-capacity submit: %v", err)
	}
	if shed.RetryAfter <= first {
		t.Fatalf("Retry-After did not grow under persistent overload: %v then %v", first, shed.RetryAfter)
	}

	close(release)
	for _, id := range accepted {
		waitState(t, m, id, StateDone)
	}
	// Capacity freed: admission works again and the backoff reset.
	v, err := m.Submit(JobSpec{Ops: []string{"crc64"}})
	if err != nil {
		t.Fatalf("submit after drain-down: %v", err)
	}
	waitState(t, m, v.ID, StateDone)
}

func TestQuotaShedsPerTenant(t *testing.T) {
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	m := newTestManager(t, Config{Quota: QuotaConfig{Rate: 1, Burst: 1}, Clock: clock})
	if _, err := m.Submit(JobSpec{Tenant: "alice", Ops: []string{"murmur"}}); err != nil {
		t.Fatalf("alice's first submit: %v", err)
	}
	var shed *ShedError
	if _, err := m.Submit(JobSpec{Tenant: "alice", Ops: []string{"murmur"}}); !errors.As(err, &shed) || shed.Code != ShedQuota {
		t.Fatalf("alice's burst-exceeding submit: %v, want quota shed", err)
	}
	if shed.RetryAfter != time.Second {
		t.Fatalf("quota Retry-After = %v, want 1s at rate 1", shed.RetryAfter)
	}
	// Another tenant is unaffected; time refills alice.
	if _, err := m.Submit(JobSpec{Tenant: "bob", Ops: []string{"murmur"}}); err != nil {
		t.Fatalf("bob shed by alice's quota: %v", err)
	}
	clock.Advance(time.Second)
	if _, err := m.Submit(JobSpec{Tenant: "alice", Ops: []string{"murmur"}}); err != nil {
		t.Fatalf("alice refused after refill: %v", err)
	}
}

func TestTenantBreakerShedsPoisonedTenant(t *testing.T) {
	clock := sched.NewFakeClock(time.Unix(1000, 0))
	var healthy atomic.Bool
	m := newTestManager(t, Config{
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 10 * time.Second},
		Clock:   clock,
		runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
			if healthy.Load() {
				return stubRun(ctx, spec, op)
			}
			return nil, errors.New("poisoned spec")
		},
	})
	for i := 0; i < 2; i++ {
		v, err := m.Submit(JobSpec{Tenant: "mallory", Ops: []string{"murmur"}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waitState(t, m, v.ID, StateFailed)
	}
	var shed *ShedError
	if _, err := m.Submit(JobSpec{Tenant: "mallory", Ops: []string{"murmur"}}); !errors.As(err, &shed) || shed.Code != ShedBreakerOpen {
		t.Fatalf("submit with open breaker: %v, want tenant_breaker_open", err)
	}
	if shed.RetryAfter != 10*time.Second {
		t.Fatalf("breaker Retry-After = %v, want full 10s cooldown", shed.RetryAfter)
	}
	// Other tenants keep working while mallory is shed.
	v, err := m.Submit(JobSpec{Tenant: "alice", Ops: []string{"murmur"}})
	if err != nil {
		t.Fatalf("alice shed by mallory's breaker: %v", err)
	}
	waitState(t, m, v.ID, StateFailed) // runOp still failing; alice fails on her own terms
	// Cooldown elapses; the probe succeeds and closes the circuit.
	healthy.Store(true)
	clock.Advance(11 * time.Second)
	probe, err := m.Submit(JobSpec{Tenant: "mallory", Ops: []string{"murmur"}})
	if err != nil {
		t.Fatalf("probe refused after cooldown: %v", err)
	}
	waitState(t, m, probe.ID, StateDone)
	if _, err := m.Submit(JobSpec{Tenant: "mallory", Ops: []string{"crc64"}}); err != nil {
		t.Fatalf("submit after closed circuit: %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Config{Workers: 1, QueueSize: 8, runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
		select {
		case <-release:
			return stubRun(ctx, spec, op)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	blocker, err := m.Submit(JobSpec{Ops: []string{"murmur"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	queued, err := m.Submit(JobSpec{Ops: []string{"crc64"}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if v.State != StateCancelled {
		t.Fatalf("cancelled queued job is %s", v.State)
	}
	// Idempotent on a terminal job.
	if v, err = m.Cancel(queued.ID); err != nil || v.State != StateCancelled {
		t.Fatalf("re-cancel: %v %+v", err, v)
	}
	if _, err := m.Report(queued.ID); !errors.Is(err, ErrReportNotReady) {
		t.Fatalf("report of cancelled job: %v, want ErrReportNotReady", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	m := newTestManager(t, Config{Workers: 1, runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	v, err := m.Submit(JobSpec{Ops: []string{"murmur"}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitState(t, m, v.ID, StateCancelled)
}

func TestDeadlineFailsJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	v, err := m.Submit(JobSpec{Ops: []string{"murmur"}, DeadlineMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, m, v.ID, StateFailed)
	if failed.Error == "" {
		t.Fatal("deadline failure carries no error message")
	}
}

func TestUnknownJobLookups(t *testing.T) {
	m := newTestManager(t, Config{})
	if _, err := m.Get("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("get: %v", err)
	}
	if _, err := m.Report("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("report: %v", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel: %v", err)
	}
}

func TestSubmitStorageFailureRefusesJob(t *testing.T) {
	m := newTestManager(t, Config{FS: &failAfterFS{FS: store.OS, remaining: 0}})
	_, err := m.Submit(JobSpec{Ops: []string{"murmur"}})
	if !errors.Is(err, ErrStorage) {
		t.Fatalf("submit on failed storage: %v, want ErrStorage", err)
	}
	// The refusal is complete: no ghost job exists.
	if got := len(m.List("")); got != 0 {
		t.Fatalf("refused job appeared in the table: %d entries", got)
	}
}

func TestDrainShedsSubmissions(t *testing.T) {
	m := newTestManager(t, Config{})
	m.StartDrain()
	var shed *ShedError
	if _, err := m.Submit(JobSpec{Ops: []string{"murmur"}}); !errors.As(err, &shed) || shed.Code != ShedDraining {
		t.Fatalf("submit while draining: %v, want draining shed", err)
	}
}

// The robustness centerpiece: a drain parks a half-done job with its
// checkpoint, and the next manager on the same data dir finishes it
// without re-running completed operators — emitting bytes identical to an
// uninterrupted run.
func TestDrainParksAndResumeIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Ops: []string{"murmur", "crc64"}}

	// Baseline: the uninterrupted run on a separate data dir. Job IDs are
	// deterministic (sequence + spec digest), so the IDs match too.
	baseline := newTestManager(t, Config{})
	bv, err := baseline.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, baseline, bv.ID, StateDone)
	want, err := baseline.Report(bv.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the second operator blocks until the drain cancels
	// it, so exactly one operator is checkpointed at park time.
	blocked := make(chan struct{}, 1)
	m1, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: func(ctx context.Context, s JobSpec, op string) (*obs.RunReport, error) {
		if op == "crc64" {
			blocked <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return stubRun(ctx, s, op)
	}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != bv.ID {
		t.Fatalf("job IDs diverge: %s vs baseline %s", v.ID, bv.ID)
	}
	<-blocked
	if err := m1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got, err := m1.Get(v.ID); err != nil || got.State != StateParked {
		t.Fatalf("after drain: %+v %v, want parked", got, err)
	}

	// Restart: the parked job resumes. The first operator must come from
	// the checkpoint, not a re-run.
	m2, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: func(ctx context.Context, s JobSpec, op string) (*obs.RunReport, error) {
		if op == "murmur" {
			return nil, errors.New("murmur re-ran despite its checkpoint")
		}
		return stubRun(ctx, s, op)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Counts().Recovered; got != 1 {
		t.Fatalf("recovered = %d, want 1", got)
	}
	waitState(t, m2, v.ID, StateDone)
	got, err := m2.Report(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed report differs from uninterrupted baseline:\n--- resumed\n%s\n--- baseline\n%s", got, want)
	}
}

// Recovery replays terminal jobs as history, not work: a done job's report
// serves without its operators re-running.
func TestRecoveryServesCompletedJobsWithoutRerun(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: stubRun})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m1.Submit(JobSpec{Ops: []string{"murmur"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, v.ID, StateDone)
	want, _ := m1.Report(v.ID)
	m1.Close()

	var reran atomic.Int32
	m2, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: func(ctx context.Context, s JobSpec, op string) (*obs.RunReport, error) {
		reran.Add(1)
		return stubRun(ctx, s, op)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, err := m2.Report(v.ID)
	if err != nil {
		t.Fatalf("recovered report: %v", err)
	}
	if string(got) != string(want) {
		t.Fatal("recovered report bytes differ")
	}
	if c := m2.Counts(); c.Recovered != 0 || c.Done != 1 {
		t.Fatalf("counts after recovery: %+v", c)
	}
	time.Sleep(20 * time.Millisecond)
	if reran.Load() != 0 {
		t.Fatalf("done job re-ran %d operators after recovery", reran.Load())
	}
}

// A corrupt job log salvages at open and the manager still comes up with
// every intact record's state.
func TestManagerOpensOnTornJobLog(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: stubRun})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m1.Submit(JobSpec{Ops: []string{"murmur"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, v.ID, StateDone)
	m1.Close()

	// Tear the tail: the trailing bytes of the last record vanish, as a
	// crash mid-append would leave them.
	path := filepath.Join(dir, JobLogName)
	data, err := store.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.OS.Truncate(path, int64(len(data)-5)); err != nil {
		t.Fatal(err)
	}

	m2, err := New(Config{DataDir: dir, LogW: io.Discard, runOp: stubRun})
	if err != nil {
		t.Fatalf("manager refused a salvageable log: %v", err)
	}
	defer m2.Close()
	// The torn record was a later transition; the job itself replayed and
	// is re-queued or done — either way it is known, not lost.
	if _, err := m2.Get(v.ID); err != nil {
		t.Fatalf("job lost to a torn tail: %v", err)
	}
	waitState(t, m2, v.ID, StateDone)
}
