package hefd

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hef/internal/leakcheck"
	"hef/internal/obs"
	"hef/internal/telemetry/mount"
)

// newTestServer wires a stub-backed manager behind the real handler on an
// httptest server, the same composition cmd/hefd serves.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := newTestManager(t, cfg)
	srv := httptest.NewServer(NewHandler(m, nil))
	t.Cleanup(srv.Close)
	return srv, m
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// errCode digs the typed code out of the JSON error body.
func errCode(t *testing.T, data []byte) string {
	t.Helper()
	var body struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("error body is not the typed shape: %v\n%s", err, data)
	}
	return body.Error.Code
}

func TestAPISubmitStatusReport(t *testing.T) {
	leakcheck.Check(t)
	srv, _ := newTestServer(t, Config{})
	resp, data := doJSON(t, "POST", srv.URL+"/v1/jobs", JobSpec{Ops: []string{"murmur", "crc64"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.OpsTotal != 2 {
		t.Fatalf("bad accepted view: %+v", v)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, data = doJSON(t, "GET", srv.URL+"/v1/jobs/"+v.ID, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d\n%s", resp.StatusCode, data)
		}
		var cur JobView
		if err := json.Unmarshal(data, &cur); err != nil {
			t.Fatal(err)
		}
		if cur.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, report := doJSON(t, "GET", srv.URL+"/v1/jobs/"+v.ID+"/report", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d\n%s", resp.StatusCode, report)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(report, &rep); err != nil {
		t.Fatalf("report is not a RunReport: %v", err)
	}
	// Byte-identity through HTTP: what the manager stores is exactly what
	// the wire carries.
	srvBytes, _ := doJSONManagerReport(t, srv, v.ID)
	if !bytes.Equal(report, srvBytes) {
		t.Fatal("report bytes changed across reads")
	}

	resp, data = doJSON(t, "GET", srv.URL+"/v1/jobs", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), v.ID) {
		t.Fatalf("list: %d\n%s", resp.StatusCode, data)
	}
	resp, data = doJSON(t, "GET", srv.URL+"/v1/jobs?tenant=nobody", nil)
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil || len(list.Jobs) != 0 {
		t.Fatalf("tenant filter leaked: %s", data)
	}
}

func doJSONManagerReport(t *testing.T, srv *httptest.Server, id string) ([]byte, int) {
	t.Helper()
	resp, data := doJSON(t, "GET", srv.URL+"/v1/jobs/"+id+"/report", nil)
	return data, resp.StatusCode
}

func TestAPIErrorMapping(t *testing.T) {
	leakcheck.Check(t)
	srv, m := newTestServer(t, Config{})

	// Malformed JSON → 400 bad_json.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != "bad_json" {
		t.Fatalf("malformed body: %d %s", resp.StatusCode, data)
	}

	// Invalid spec → 400 invalid_spec.
	resp2, data := doJSON(t, "POST", srv.URL+"/v1/jobs", JobSpec{Ops: []string{"nosuchop"}})
	if resp2.StatusCode != http.StatusBadRequest || errCode(t, data) != "invalid_spec" {
		t.Fatalf("invalid spec: %d %s", resp2.StatusCode, data)
	}

	// Unknown job → 404; report of a non-done job → 409.
	resp2, data = doJSON(t, "GET", srv.URL+"/v1/jobs/nope", nil)
	if resp2.StatusCode != http.StatusNotFound || errCode(t, data) != "unknown_job" {
		t.Fatalf("unknown job: %d %s", resp2.StatusCode, data)
	}
	v, err2 := m.Submit(JobSpec{Ops: []string{"murmur"}})
	if err2 != nil {
		t.Fatal(err2)
	}
	waitState(t, m, v.ID, StateDone)
	cv, _ := m.Submit(JobSpec{Ops: []string{"crc64"}})
	m.StartDrain() // freeze: queued jobs stop moving, so cv stays report-less
	if _, code := doJSONManagerReport(t, srv, cv.ID); code != http.StatusConflict {
		// cv may have finished before the drain; only assert when not done.
		if got, _ := m.Get(cv.ID); got.State != StateDone {
			t.Fatalf("report of unfinished job: %d", code)
		}
	}

	// Draining → 503 with the typed code.
	resp2, data = doJSON(t, "POST", srv.URL+"/v1/jobs", JobSpec{Ops: []string{"murmur"}})
	if resp2.StatusCode != http.StatusServiceUnavailable || errCode(t, data) != ShedDraining {
		t.Fatalf("draining submit: %d %s", resp2.StatusCode, data)
	}
}

func TestAPIQueueFullCarriesRetryAfter(t *testing.T) {
	leakcheck.Check(t)
	release := make(chan struct{})
	defer close(release)
	srv, _ := newTestServer(t, Config{Workers: 1, QueueSize: 1, runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
		select {
		case <-release:
			return stubRun(ctx, spec, op)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	resp, data := doJSON(t, "POST", srv.URL+"/v1/jobs", JobSpec{Ops: []string{"murmur"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d\n%s", resp.StatusCode, data)
	}
	resp, data = doJSON(t, "POST", srv.URL+"/v1/jobs", JobSpec{Ops: []string{"murmur"}})
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, data) != ShedQueueFull {
		t.Fatalf("over-capacity submit: %d %s", resp.StatusCode, data)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After header = %q, want a positive integer of seconds", ra)
	}
	var body struct {
		Error apiError `json:"error"`
	}
	if json.Unmarshal(data, &body); body.Error.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms missing from body: %s", data)
	}
}

func TestAPICancel(t *testing.T) {
	leakcheck.Check(t)
	release := make(chan struct{})
	defer close(release)
	srv, _ := newTestServer(t, Config{Workers: 1, QueueSize: 8, runOp: func(ctx context.Context, spec JobSpec, op string) (*obs.RunReport, error) {
		select {
		case <-release:
			return stubRun(ctx, spec, op)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	_, data := doJSON(t, "POST", srv.URL+"/v1/jobs", JobSpec{Ops: []string{"murmur"}})
	var blocker JobView
	json.Unmarshal(data, &blocker)
	_, data = doJSON(t, "POST", srv.URL+"/v1/jobs", JobSpec{Ops: []string{"crc64"}})
	var queued JobView
	json.Unmarshal(data, &queued)

	resp, data := doJSON(t, "DELETE", srv.URL+"/v1/jobs/"+queued.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d\n%s", resp.StatusCode, data)
	}
	var v JobView
	json.Unmarshal(data, &v)
	if v.State != StateCancelled {
		t.Fatalf("cancelled queued job is %s", v.State)
	}
}

// The embedded telemetry session mounts on the API handler: one listener
// serves jobs and observability, with readiness flipping on drain.
func TestAPIServesEmbeddedTelemetry(t *testing.T) {
	leakcheck.Check(t)
	tel, err := mount.Start(mount.Options{Tool: "hefd-test", Embedded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	m := newTestManager(t, Config{})
	srv := httptest.NewServer(NewHandler(m, tel.Handler()))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "# TYPE") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	// Starting state: not ready yet.
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady: %d", code)
	}
	tel.SetReady()
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after SetReady: %d", code)
	}
	tel.SetDraining()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz draining: %d %q", code, body)
	}
	if code, body := get("/status"); code != http.StatusOK || !strings.Contains(body, "hefd-test") {
		t.Fatalf("/status: %d %q", code, body)
	}
}
