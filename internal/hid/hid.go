// Package hid implements the paper's hybrid intermediate description: a
// hardware-independent intermediate representation of SIMD and scalar
// statements used "similarly as intrinsic SIMD functions" (Section III-B).
// Operator templates written against this IR are translated by
// internal/translator into concrete mixes of v SIMD and s scalar statements
// replicated into packs of size p.
package hid

import (
	"fmt"
	"sort"
)

// Type enumerates the variable types of Table II.
type Type uint8

const (
	I16 Type = iota
	U16
	I32
	U32
	I64
	U64
	F32
	F64
)

var typeNames = map[Type]string{
	I16: "vint16", U16: "vuint16",
	I32: "vint32", U32: "vuint32",
	I64: "vint64", U64: "vuint64",
	F32: "vfloat", F64: "vdouble",
}

func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Bits returns the element width in bits.
func (t Type) Bits() int {
	switch t {
	case I16, U16:
		return 16
	case I32, U32, F32:
		return 32
	default:
		return 64
	}
}

// Bytes returns the element width in bytes.
func (t Type) Bytes() int { return t.Bits() / 8 }

// MemPattern describes how a pointer parameter is accessed, which the
// simulator needs to model the cache behaviour of the workload.
type MemPattern uint8

const (
	// ReadStream is a sequential input column.
	ReadStream MemPattern = iota
	// WriteStream is a sequential output column.
	WriteStream
	// RandomRegion is uniformly random access within Region bytes, e.g. a
	// hash-table probe.
	RandomRegion
)

func (m MemPattern) String() string {
	switch m {
	case ReadStream:
		return "stream"
	case WriteStream:
		return "wstream"
	case RandomRegion:
		return "random"
	}
	return fmt.Sprintf("MemPattern(%d)", uint8(m))
}

// Param is a pointer parameter of an operator template.
type Param struct {
	Name    string
	Pattern MemPattern
	// Region is the byte size of the random-access region; the experiment
	// harness overrides it per scale factor.
	Region uint64
}

// OperandKind tags the three argument kinds of a HID statement.
type OperandKind uint8

const (
	// VarRef names a HID variable defined by an earlier statement.
	VarRef OperandKind = iota
	// ParamRef names a pointer parameter.
	ParamRef
	// ConstRef names a declared constant (unrolled to one scalar and one
	// broadcast vector register, per Section IV-B).
	ConstRef
	// ImmVal is an immediate literal (e.g. a shift count).
	ImmVal
)

// Operand is one argument of a HID statement.
type Operand struct {
	Kind  OperandKind
	Name  string
	Value uint64 // for ImmVal
}

func (o Operand) String() string {
	if o.Kind == ImmVal {
		return fmt.Sprintf("%d", o.Value)
	}
	return o.Name
}

// Var makes a variable operand.
func Var(name string) Operand { return Operand{Kind: VarRef, Name: name} }

// ParamOp makes a parameter operand.
func ParamOp(name string) Operand { return Operand{Kind: ParamRef, Name: name} }

// ConstOp makes a named-constant operand.
func ConstOp(name string) Operand { return Operand{Kind: ConstRef, Name: name} }

// Imm makes an immediate operand.
func Imm(v uint64) Operand { return Operand{Kind: ImmVal, Value: v} }

// Stmt is one hybrid-intermediate-description statement, e.g.
// "k = hi_mul_epi64(data, m)". Op names index the ISA description table.
type Stmt struct {
	// Dst is the defined variable; empty for store.
	Dst string
	// Op is the description-table operation ("load", "mul", "gather", ...).
	Op string
	// Args are the operands. Memory ops take the pointer parameter first.
	Args []Operand
}

func (s Stmt) String() string {
	if s.Dst == "" {
		return fmt.Sprintf("hi_%s(%s)", s.Op, joinOperands(s.Args))
	}
	return fmt.Sprintf("%s = hi_%s(%s)", s.Dst, s.Op, joinOperands(s.Args))
}

func joinOperands(ops []Operand) string {
	out := ""
	for i, o := range ops {
		if i > 0 {
			out += ", "
		}
		out += o.String()
	}
	return out
}

// Template is an operator template: the loop body of a data-parallel
// operator written once in HID, to be expanded into any (v, s, p)
// combination.
type Template struct {
	// Name identifies the operator.
	Name string
	// Elem is the element type processed per lane.
	Elem Type
	// Params are the pointer parameters in declaration order.
	Params []Param
	// Consts maps declared constant names to values.
	Consts map[string]uint64
	// Accs lists accumulator variables: loop-carried values (e.g. an
	// aggregation sum) that may be read before being written in the body.
	// Each statement instance receives its own accumulator instance, as in
	// an unrolled reduction.
	Accs []string
	// Body is the loop body in program order.
	Body []Stmt
}

// Accumulators returns the declared accumulator variable names.
func (t *Template) Accumulators() []string { return t.Accs }

// isAcc reports whether name is a declared accumulator.
func (t *Template) isAcc(name string) bool {
	for _, a := range t.Accs {
		if a == name {
			return true
		}
	}
	return false
}

// Param returns the parameter with the given name.
func (t *Template) Param(name string) (*Param, bool) {
	for i := range t.Params {
		if t.Params[i].Name == name {
			return &t.Params[i], true
		}
	}
	return nil, false
}

// SetRegion overrides the random-region size of a parameter, used by the
// experiment harness to model hash tables of different scale factors.
func (t *Template) SetRegion(param string, bytes uint64) error {
	p, ok := t.Param(param)
	if !ok {
		return fmt.Errorf("hid: template %q has no parameter %q", t.Name, param)
	}
	if p.Pattern != RandomRegion {
		return fmt.Errorf("hid: parameter %q of template %q is not a random region", param, t.Name)
	}
	p.Region = bytes
	return nil
}

// Validate checks the template: operations exist in the description table,
// variables are defined before use, parameters and constants resolve, and
// memory statements address pointer parameters.
func (t *Template) Validate(knownOps func(string) bool) error {
	if t.Name == "" {
		return fmt.Errorf("hid: template has no name")
	}
	if len(t.Body) == 0 {
		return fmt.Errorf("hid: template %q has an empty body", t.Name)
	}
	params := map[string]bool{}
	for _, p := range t.Params {
		if params[p.Name] {
			return fmt.Errorf("hid: template %q: duplicate parameter %q", t.Name, p.Name)
		}
		params[p.Name] = true
	}
	defined := map[string]bool{}
	for _, a := range t.Accs {
		if params[a] {
			return fmt.Errorf("hid: template %q: accumulator %q shadows a parameter", t.Name, a)
		}
		if _, ok := t.Consts[a]; ok {
			return fmt.Errorf("hid: template %q: accumulator %q shadows a constant", t.Name, a)
		}
		defined[a] = true // accumulators may be read before written
	}
	for i, s := range t.Body {
		if !knownOps(s.Op) {
			return fmt.Errorf("hid: template %q stmt %d: unknown op %q", t.Name, i, s.Op)
		}
		for _, a := range s.Args {
			switch a.Kind {
			case VarRef:
				if !defined[a.Name] {
					return fmt.Errorf("hid: template %q stmt %d: variable %q used before definition", t.Name, i, a.Name)
				}
			case ParamRef:
				if !params[a.Name] {
					return fmt.Errorf("hid: template %q stmt %d: unknown parameter %q", t.Name, i, a.Name)
				}
			case ConstRef:
				if _, ok := t.Consts[a.Name]; !ok {
					return fmt.Errorf("hid: template %q stmt %d: unknown constant %q", t.Name, i, a.Name)
				}
			}
		}
		switch s.Op {
		case "load", "gather":
			if len(s.Args) == 0 || s.Args[0].Kind != ParamRef {
				return fmt.Errorf("hid: template %q stmt %d: %s must address a pointer parameter", t.Name, i, s.Op)
			}
			if s.Dst == "" {
				return fmt.Errorf("hid: template %q stmt %d: %s must define a variable", t.Name, i, s.Op)
			}
		case "store":
			if len(s.Args) != 2 || s.Args[0].Kind != ParamRef {
				return fmt.Errorf("hid: template %q stmt %d: store takes (param, value)", t.Name, i)
			}
			if s.Dst != "" {
				return fmt.Errorf("hid: template %q stmt %d: store defines no variable", t.Name, i)
			}
		default:
			if s.Dst == "" {
				return fmt.Errorf("hid: template %q stmt %d: compute op %q must define a variable", t.Name, i, s.Op)
			}
		}
		if s.Dst != "" {
			if params[s.Dst] {
				return fmt.Errorf("hid: template %q stmt %d: %q shadows a parameter", t.Name, i, s.Dst)
			}
			if _, ok := t.Consts[s.Dst]; ok {
				return fmt.Errorf("hid: template %q stmt %d: %q shadows a constant", t.Name, i, s.Dst)
			}
			defined[s.Dst] = true
		}
	}
	return nil
}

// Clone returns a deep copy (so regions can be overridden per experiment
// without mutating shared templates).
func (t *Template) Clone() *Template {
	c := &Template{Name: t.Name, Elem: t.Elem}
	c.Params = append([]Param(nil), t.Params...)
	c.Accs = append([]string(nil), t.Accs...)
	c.Consts = make(map[string]uint64, len(t.Consts))
	for k, v := range t.Consts {
		c.Consts[k] = v
	}
	c.Body = make([]Stmt, len(t.Body))
	for i, s := range t.Body {
		c.Body[i] = Stmt{Dst: s.Dst, Op: s.Op, Args: append([]Operand(nil), s.Args...)}
	}
	return c
}

// String renders the template in the hi_* source form of Fig. 6(a).
func (t *Template) String() string {
	out := fmt.Sprintf("template %s(", t.Name)
	for i, p := range t.Params {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s:%s", p.Name, p.Pattern)
	}
	out += ") {\n"
	names := make([]string, 0, len(t.Consts))
	for k := range t.Consts {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		out += fmt.Sprintf("  const %s = %#x;\n", k, t.Consts[k])
	}
	for _, s := range t.Body {
		out += "  " + s.String() + ";\n"
	}
	return out + "}\n"
}
