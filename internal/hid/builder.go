package hid

import "fmt"

// Builder constructs operator templates programmatically with
// define-before-use enforced at Build time. It mirrors writing the operator
// with hi_* intrinsic-style calls (Fig. 6(a)).
type Builder struct {
	t   *Template
	err error
}

// NewTemplate starts a template for elements of type elem.
func NewTemplate(name string, elem Type) *Builder {
	return &Builder{t: &Template{Name: name, Elem: elem, Consts: map[string]uint64{}}}
}

// Stream declares a sequential pointer parameter and returns its operand.
func (b *Builder) Stream(name string, pattern MemPattern) Operand {
	b.t.Params = append(b.t.Params, Param{Name: name, Pattern: pattern})
	return ParamOp(name)
}

// Table declares a randomly-accessed pointer parameter (e.g. a hash table or
// lookup table) of the given byte size and returns its operand.
func (b *Builder) Table(name string, regionBytes uint64) Operand {
	b.t.Params = append(b.t.Params, Param{Name: name, Pattern: RandomRegion, Region: regionBytes})
	return ParamOp(name)
}

// Acc declares an accumulator variable: a loop-carried value (such as an
// aggregation sum or a CRC state) that may be read before it is written.
func (b *Builder) Acc(name string) Operand {
	b.t.Accs = append(b.t.Accs, name)
	return Var(name)
}

// Const declares a named constant and returns its operand.
func (b *Builder) Const(name string, value uint64) Operand {
	b.t.Consts[name] = value
	return ConstOp(name)
}

// Op appends dst = hi_<op>(args...) and returns the dst operand.
func (b *Builder) Op(dst, op string, args ...Operand) Operand {
	b.t.Body = append(b.t.Body, Stmt{Dst: dst, Op: op, Args: args})
	return Var(dst)
}

// Load appends dst = hi_load(param).
func (b *Builder) Load(dst string, param Operand) Operand { return b.Op(dst, "load", param) }

// Gather appends dst = hi_gather(table, idx).
func (b *Builder) Gather(dst string, table, idx Operand) Operand {
	return b.Op(dst, "gather", table, idx)
}

// Store appends hi_store(param, v).
func (b *Builder) Store(param, v Operand) {
	b.t.Body = append(b.t.Body, Stmt{Op: "store", Args: []Operand{param, v}})
}

// Add, Sub, Mul, And, Or, Xor append the respective binary operations.
func (b *Builder) Add(dst string, x, y Operand) Operand { return b.Op(dst, "add", x, y) }
func (b *Builder) Sub(dst string, x, y Operand) Operand { return b.Op(dst, "sub", x, y) }
func (b *Builder) Mul(dst string, x, y Operand) Operand { return b.Op(dst, "mul", x, y) }
func (b *Builder) And(dst string, x, y Operand) Operand { return b.Op(dst, "and", x, y) }
func (b *Builder) Or(dst string, x, y Operand) Operand  { return b.Op(dst, "or", x, y) }
func (b *Builder) Xor(dst string, x, y Operand) Operand { return b.Op(dst, "xor", x, y) }

// Srl and Sll append shifts by an immediate count.
func (b *Builder) Srl(dst string, x Operand, count uint64) Operand {
	return b.Op(dst, "srl", x, Imm(count))
}
func (b *Builder) Sll(dst string, x Operand, count uint64) Operand {
	return b.Op(dst, "sll", x, Imm(count))
}

// CmpEq, CmpGt, CmpLt append comparisons producing a mask variable.
func (b *Builder) CmpEq(dst string, x, y Operand) Operand { return b.Op(dst, "cmpeq", x, y) }
func (b *Builder) CmpGt(dst string, x, y Operand) Operand { return b.Op(dst, "cmpgt", x, y) }
func (b *Builder) CmpLt(dst string, x, y Operand) Operand { return b.Op(dst, "cmplt", x, y) }

// Select appends dst = mask ? x : y.
func (b *Builder) Select(dst string, mask, x, y Operand) Operand {
	return b.Op(dst, "select", mask, x, y)
}

// Build validates and returns the template.
func (b *Builder) Build(knownOps func(string) bool) (*Template, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.t.Validate(knownOps); err != nil {
		return nil, err
	}
	return b.t, nil
}

// MustBuild is Build that panics on error, for statically-known templates.
func (b *Builder) MustBuild(knownOps func(string) bool) *Template {
	t, err := b.Build(knownOps)
	if err != nil {
		panic(fmt.Sprintf("hid: MustBuild(%s): %v", b.t.Name, err))
	}
	return t
}
