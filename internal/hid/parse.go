package hid

import (
	"fmt"
	"strconv"
	"strings"
)

// File is a parsed operator-template file: the paper stores templates as
// strings with "an operator list and an operator dictionary" mapping names
// to implementations.
type File struct {
	// List holds template names in file order.
	List []string
	// Dict maps names to templates.
	Dict map[string]*Template
}

// Get returns a template by name.
func (f *File) Get(name string) (*Template, error) {
	t, ok := f.Dict[name]
	if !ok {
		return nil, fmt.Errorf("hid: no template named %q (have %v)", name, f.List)
	}
	return t, nil
}

// Parse reads operator templates from a textual description:
//
//	template murmur u64 (val:stream, out:wstream) {
//	    const m = 0xc6a4a7935bd1e995;
//	    data = load(val);
//	    k    = mul(data, m);
//	    kr   = srl(k, 47);
//	    h    = xor(kr, k);
//	    store(out, h);
//	}
//
// Parameter patterns are stream, wstream, or random[<bytes>]. '#' starts a
// comment. knownOps validates operation names against the description table.
func Parse(src string, knownOps func(string) bool) (*File, error) {
	f := &File{Dict: map[string]*Template{}}
	lines := strings.Split(src, "\n")
	var cur *Template
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "template "):
			if cur != nil {
				return nil, fmt.Errorf("hid: line %d: nested template (missing '}'?)", lineNo)
			}
			t, err := parseHeader(line, lineNo)
			if err != nil {
				return nil, err
			}
			cur = t
		case line == "}":
			if cur == nil {
				return nil, fmt.Errorf("hid: line %d: '}' outside template", lineNo)
			}
			if err := cur.Validate(knownOps); err != nil {
				return nil, fmt.Errorf("hid: line %d: %w", lineNo, err)
			}
			if _, dup := f.Dict[cur.Name]; dup {
				return nil, fmt.Errorf("hid: line %d: duplicate template %q", lineNo, cur.Name)
			}
			f.List = append(f.List, cur.Name)
			f.Dict[cur.Name] = cur
			cur = nil
		default:
			if cur == nil {
				return nil, fmt.Errorf("hid: line %d: statement outside template: %q", lineNo, line)
			}
			if err := parseStmt(cur, line, lineNo); err != nil {
				return nil, err
			}
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("hid: template %q not closed", cur.Name)
	}
	if len(f.List) == 0 {
		return nil, fmt.Errorf("hid: no templates found")
	}
	return f, nil
}

func parseHeader(line string, ln int) (*Template, error) {
	// template <name> <type> (<params>) {
	rest := strings.TrimPrefix(line, "template ")
	open := strings.IndexByte(rest, '(')
	close_ := strings.LastIndexByte(rest, ')')
	if open < 0 || close_ < open || !strings.HasSuffix(strings.TrimSpace(rest[close_+1:]), "{") {
		return nil, fmt.Errorf("hid: line %d: malformed template header %q", ln, line)
	}
	head := strings.Fields(strings.TrimSpace(rest[:open]))
	if len(head) != 2 {
		return nil, fmt.Errorf("hid: line %d: template header needs '<name> <type>', got %q", ln, rest[:open])
	}
	elem, err := parseType(head[1])
	if err != nil {
		return nil, fmt.Errorf("hid: line %d: %w", ln, err)
	}
	t := &Template{Name: head[0], Elem: elem, Consts: map[string]uint64{}}
	paramSrc := strings.TrimSpace(rest[open+1 : close_])
	if paramSrc != "" {
		for _, ps := range strings.Split(paramSrc, ",") {
			p, err := parseParam(strings.TrimSpace(ps))
			if err != nil {
				return nil, fmt.Errorf("hid: line %d: %w", ln, err)
			}
			t.Params = append(t.Params, p)
		}
	}
	return t, nil
}

func parseType(s string) (Type, error) {
	switch s {
	case "i16":
		return I16, nil
	case "u16":
		return U16, nil
	case "i32":
		return I32, nil
	case "u32":
		return U32, nil
	case "i64":
		return I64, nil
	case "u64":
		return U64, nil
	case "f32":
		return F32, nil
	case "f64":
		return F64, nil
	}
	return 0, fmt.Errorf("unknown element type %q", s)
}

func parseParam(s string) (Param, error) {
	name, spec, ok := strings.Cut(s, ":")
	if !ok {
		return Param{}, fmt.Errorf("parameter %q needs ':pattern'", s)
	}
	name, spec = strings.TrimSpace(name), strings.TrimSpace(spec)
	switch {
	case spec == "stream":
		return Param{Name: name, Pattern: ReadStream}, nil
	case spec == "wstream":
		return Param{Name: name, Pattern: WriteStream}, nil
	case strings.HasPrefix(spec, "random[") && strings.HasSuffix(spec, "]"):
		n, err := strconv.ParseUint(spec[len("random["):len(spec)-1], 0, 64)
		if err != nil {
			return Param{}, fmt.Errorf("parameter %q: bad region: %v", s, err)
		}
		return Param{Name: name, Pattern: RandomRegion, Region: n}, nil
	}
	return Param{}, fmt.Errorf("parameter %q: unknown pattern %q", s, spec)
}

func parseStmt(t *Template, line string, ln int) error {
	line = strings.TrimSuffix(line, ";")
	if strings.HasPrefix(line, "const ") {
		kv := strings.TrimPrefix(line, "const ")
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("hid: line %d: malformed const %q", ln, line)
		}
		v, err := strconv.ParseUint(strings.TrimSpace(val), 0, 64)
		if err != nil {
			return fmt.Errorf("hid: line %d: bad const value: %v", ln, err)
		}
		t.Consts[strings.TrimSpace(name)] = v
		return nil
	}
	if strings.HasPrefix(line, "acc ") {
		t.Accs = append(t.Accs, strings.TrimSpace(strings.TrimPrefix(line, "acc ")))
		return nil
	}
	dst := ""
	expr := line
	if name, rhs, ok := strings.Cut(line, "="); ok {
		dst = strings.TrimSpace(name)
		expr = strings.TrimSpace(rhs)
	}
	open := strings.IndexByte(expr, '(')
	if open < 0 || !strings.HasSuffix(expr, ")") {
		return fmt.Errorf("hid: line %d: malformed statement %q", ln, line)
	}
	op := strings.TrimSpace(expr[:open])
	op = strings.TrimPrefix(op, "hi_") // accept both load(...) and hi_load(...)
	var args []Operand
	argSrc := strings.TrimSpace(expr[open+1 : len(expr)-1])
	if argSrc != "" {
		for _, as := range strings.Split(argSrc, ",") {
			args = append(args, resolveOperand(t, strings.TrimSpace(as)))
		}
	}
	t.Body = append(t.Body, Stmt{Dst: dst, Op: op, Args: args})
	return nil
}

// resolveOperand classifies a textual argument as immediate, parameter,
// constant, or variable.
func resolveOperand(t *Template, s string) Operand {
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return Imm(v)
	}
	if _, ok := t.Param(s); ok {
		return ParamOp(s)
	}
	if _, ok := t.Consts[s]; ok {
		return ConstOp(s)
	}
	return Var(s)
}
