package hid

import (
	"strings"
	"testing"
)

func anyOp(string) bool { return true }

func realOps(op string) bool {
	switch op {
	case "load", "store", "gather", "add", "sub", "mul", "and", "or", "xor",
		"srl", "sll", "cmpeq", "cmpgt", "cmplt", "select", "broadcast", "prefetch":
		return true
	}
	return false
}

func buildSample(t *testing.T) *Template {
	t.Helper()
	b := NewTemplate("sample", U64)
	val := b.Stream("val", ReadStream)
	out := b.Stream("out", WriteStream)
	m := b.Const("m", 42)
	d := b.Load("d", val)
	x := b.Mul("x", d, m)
	y := b.Srl("y", x, 3)
	z := b.Xor("z", x, y)
	b.Store(out, z)
	tmpl, err := b.Build(realOps)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func TestBuilderProducesValidTemplate(t *testing.T) {
	tmpl := buildSample(t)
	if len(tmpl.Body) != 5 {
		t.Errorf("body has %d statements, want 5", len(tmpl.Body))
	}
	if tmpl.Elem != U64 {
		t.Errorf("elem = %v, want u64", tmpl.Elem)
	}
}

func TestValidateUseBeforeDef(t *testing.T) {
	tmpl := &Template{Name: "bad", Elem: U64,
		Params: []Param{{Name: "v", Pattern: ReadStream}},
		Body:   []Stmt{{Dst: "x", Op: "add", Args: []Operand{Var("y"), Var("y")}}}}
	if err := tmpl.Validate(anyOp); err == nil {
		t.Error("use-before-def should fail validation")
	}
}

func TestValidateAccumulatorMayReadBeforeWrite(t *testing.T) {
	tmpl := &Template{Name: "acc", Elem: U64,
		Params: []Param{{Name: "v", Pattern: ReadStream}},
		Accs:   []string{"sum"},
		Body: []Stmt{
			{Dst: "d", Op: "load", Args: []Operand{ParamOp("v")}},
			{Dst: "sum", Op: "add", Args: []Operand{Var("sum"), Var("d")}},
		}}
	if err := tmpl.Validate(anyOp); err != nil {
		t.Errorf("accumulator pattern should validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		tmpl *Template
	}{
		{"empty body", &Template{Name: "t", Elem: U64}},
		{"no name", &Template{Elem: U64, Body: []Stmt{{Dst: "x", Op: "add"}}}},
		{"unknown param", &Template{Name: "t", Elem: U64,
			Body: []Stmt{{Dst: "x", Op: "load", Args: []Operand{ParamOp("nope")}}}}},
		{"unknown const", &Template{Name: "t", Elem: U64,
			Params: []Param{{Name: "v", Pattern: ReadStream}},
			Body:   []Stmt{{Dst: "x", Op: "add", Args: []Operand{ConstOp("c"), ConstOp("c")}}}}},
		{"store with dst", &Template{Name: "t", Elem: U64,
			Params: []Param{{Name: "v", Pattern: WriteStream}},
			Body: []Stmt{
				{Dst: "d", Op: "load", Args: []Operand{ParamOp("v")}},
				{Dst: "x", Op: "store", Args: []Operand{ParamOp("v"), Var("d")}},
			}}},
		{"load without param", &Template{Name: "t", Elem: U64,
			Body: []Stmt{{Dst: "x", Op: "load", Args: []Operand{Imm(1)}}}}},
		{"compute without dst", &Template{Name: "t", Elem: U64,
			Params: []Param{{Name: "v", Pattern: ReadStream}},
			Body: []Stmt{
				{Dst: "d", Op: "load", Args: []Operand{ParamOp("v")}},
				{Op: "add", Args: []Operand{Var("d"), Var("d")}},
			}}},
		{"duplicate param", &Template{Name: "t", Elem: U64,
			Params: []Param{{Name: "v", Pattern: ReadStream}, {Name: "v", Pattern: ReadStream}},
			Body:   []Stmt{{Dst: "d", Op: "load", Args: []Operand{ParamOp("v")}}}}},
		{"dst shadows param", &Template{Name: "t", Elem: U64,
			Params: []Param{{Name: "v", Pattern: ReadStream}},
			Body:   []Stmt{{Dst: "v", Op: "load", Args: []Operand{ParamOp("v")}}}}},
	}
	for _, c := range cases {
		if c.tmpl.Consts == nil {
			c.tmpl.Consts = map[string]uint64{}
		}
		if err := c.tmpl.Validate(anyOp); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestValidateUnknownOp(t *testing.T) {
	tmpl := buildSample(t)
	if err := tmpl.Validate(func(op string) bool { return op != "mul" }); err == nil {
		t.Error("unknown op should fail validation")
	}
}

func TestSetRegion(t *testing.T) {
	b := NewTemplate("g", U64)
	b.Stream("val", ReadStream)
	tab := b.Table("tab", 1024)
	v := b.Load("v", ParamOp("val"))
	b.Gather("g", tab, v)
	b.Store(ParamOp("val"), Var("g")) // writes back for simplicity
	tmpl, err := b.Build(anyOp)
	if err == nil {
		// store to a ReadStream param is structurally fine in HID
		_ = tmpl
	} else {
		t.Fatal(err)
	}
	if err := tmpl.SetRegion("tab", 1<<20); err != nil {
		t.Fatal(err)
	}
	p, _ := tmpl.Param("tab")
	if p.Region != 1<<20 {
		t.Errorf("region = %d, want 1<<20", p.Region)
	}
	if err := tmpl.SetRegion("val", 1); err == nil {
		t.Error("SetRegion should reject non-random params")
	}
	if err := tmpl.SetRegion("nope", 1); err == nil {
		t.Error("SetRegion should reject unknown params")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tmpl := buildSample(t)
	c := tmpl.Clone()
	c.Consts["m"] = 7
	c.Params[0].Region = 99
	c.Body[0].Dst = "other"
	if tmpl.Consts["m"] == 7 || tmpl.Params[0].Region == 99 || tmpl.Body[0].Dst == "other" {
		t.Error("Clone should not share state with the original")
	}
}

func TestTemplateString(t *testing.T) {
	s := buildSample(t).String()
	for _, want := range []string{"template sample(", "val:stream", "out:wstream",
		"const m = 0x2a;", "d = hi_load(val);", "x = hi_mul(d, m);", "hi_store(out, z);"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
# MurmurHash-style kernel
template murmur u64 (val:stream, out:wstream, tab:random[2048]) {
    const m = 0xc6a4a7935bd1e995;
    acc h
    data = load(val);
    k  = mul(data, m);
    kr = srl(k, 47);
    k2 = xor(k, kr);
    h  = add(h, k2);
    g  = gather(tab, k2);
    x  = hi_xor(g, k2);   # hi_ prefix accepted
    store(out, x);
}
`
	f, err := Parse(src, realOps)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := f.Get("murmur")
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpl.Body) != 8 {
		t.Errorf("parsed %d statements, want 8", len(tmpl.Body))
	}
	if tmpl.Consts["m"] != 0xc6a4a7935bd1e995 {
		t.Errorf("const m = %#x", tmpl.Consts["m"])
	}
	if len(tmpl.Accs) != 1 || tmpl.Accs[0] != "h" {
		t.Errorf("accs = %v, want [h]", tmpl.Accs)
	}
	p, ok := tmpl.Param("tab")
	if !ok || p.Pattern != RandomRegion || p.Region != 2048 {
		t.Errorf("tab param = %+v", p)
	}
	if tmpl.Body[5].Op != "gather" || tmpl.Body[5].Args[0].Kind != ParamRef {
		t.Errorf("gather stmt parsed wrong: %+v", tmpl.Body[5])
	}
	if _, err := f.Get("nosuch"); err == nil {
		t.Error("Get should fail for unknown templates")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unclosed":        "template t u64 (v:stream) {\n x = load(v);\n",
		"nested":          "template a u64 (v:stream) {\ntemplate b u64 () {\n}\n}",
		"stray close":     "}\n",
		"stray stmt":      "x = load(v);\n",
		"bad header":      "template t u64 v:stream {\n}\n",
		"bad type":        "template t u128 (v:stream) {\n x = load(v);\n}",
		"bad pattern":     "template t u64 (v:zigzag) {\n x = load(v);\n}",
		"bad const":       "template t u64 (v:stream) {\n const m = xyz;\n x = load(v);\n}",
		"bad region":      "template t u64 (v:random[abc]) {\n x = load(v);\n}",
		"missing pattern": "template t u64 (v) {\n x = load(v);\n}",
		"malformed stmt":  "template t u64 (v:stream) {\n x = ;\n}",
		"empty file":      "# nothing here\n",
		"duplicate": `template t u64 (v:stream) {
 x = load(v);
}
template t u64 (v:stream) {
 x = load(v);
}`,
		"invalid body": "template t u64 (v:stream) {\n x = frob(v);\n}",
	}
	for name, src := range cases {
		if _, err := Parse(src, realOps); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestTypeProperties(t *testing.T) {
	bits := map[Type]int{I16: 16, U16: 16, I32: 32, U32: 32, I64: 64, U64: 64, F32: 32, F64: 64}
	for ty, want := range bits {
		if ty.Bits() != want {
			t.Errorf("%v.Bits() = %d, want %d", ty, ty.Bits(), want)
		}
		if ty.Bytes() != want/8 {
			t.Errorf("%v.Bytes() = %d, want %d", ty, ty.Bytes(), want/8)
		}
	}
	if U64.String() != "vuint64" || I32.String() != "vint32" {
		t.Errorf("type names: %v %v", U64.String(), I32.String())
	}
}

func TestOperandString(t *testing.T) {
	if Var("x").String() != "x" || Imm(7).String() != "7" || ConstOp("m").String() != "m" {
		t.Error("operand String() mismatch")
	}
	if ReadStream.String() != "stream" || WriteStream.String() != "wstream" || RandomRegion.String() != "random" {
		t.Error("MemPattern String() mismatch")
	}
	s := Stmt{Dst: "x", Op: "add", Args: []Operand{Var("a"), Var("b")}}
	if s.String() != "x = hi_add(a, b)" {
		t.Errorf("Stmt.String() = %q", s.String())
	}
}
