package hid

import (
	"strings"
	"testing"
)

// knownOpsForFuzz mirrors the description table's operation list without
// importing internal/isa (hid must stay dependency-free below isa).
var fuzzOps = map[string]bool{
	"add": true, "sub": true, "mul": true, "and": true, "or": true,
	"xor": true, "srl": true, "srlv": true, "sll": true, "cmpeq": true,
	"cmpgt": true, "cmplt": true, "select": true, "compress": true,
	"broadcast": true, "load": true, "store": true, "gather": true,
	"prefetch": true,
}

func knownOpsForFuzz(op string) bool { return fuzzOps[op] }

// FuzzBuilderBuild drives the template builder with operand wiring derived
// from arbitrary bytes and asserts the Build edge never panics: it either
// returns a valid template or a descriptive error. The byte string is
// interpreted as a little program — each byte selects an operation and which
// previously-built values feed it.
func FuzzBuilderBuild(f *testing.F) {
	f.Add([]byte{0x00, 0x12, 0x23, 0xff}, "nm", uint64(3))
	f.Add([]byte{0x41, 0x42}, "", uint64(0))
	f.Add([]byte{0x90, 0x91, 0x92, 0x93, 0x94, 0x95}, "op", uint64(1<<40))
	f.Fuzz(func(t *testing.T, prog []byte, name string, c uint64) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Builder.Build panicked: %v", r)
			}
		}()

		b := NewTemplate(name, U64)
		in := b.Stream("in", ReadStream)
		tab := b.Table("tab", 1<<16)
		con := b.Const("c", c)
		vals := []Operand{in, tab, con}
		names := []string{"v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"}
		binOps := []string{"add", "sub", "mul", "and", "or", "xor", "cmpeq", "frob"}

		for i, op := range prog {
			if i >= len(names) {
				break
			}
			x := vals[int(op>>4)%len(vals)]
			y := vals[int(op&0x0f)%len(vals)]
			var v Operand
			switch int(op) % 5 {
			case 0:
				v = b.Load(names[i], x)
			case 1:
				v = b.Gather(names[i], tab, y)
			case 2:
				v = b.Op(names[i], binOps[int(op>>2)%len(binOps)], x, y)
			case 3:
				v = b.Srl(names[i], x, uint64(op))
			default:
				v = b.Select(names[i], x, y, con)
			}
			vals = append(vals, v)
		}
		out := b.Stream("out", WriteStream)
		b.Store(out, vals[len(vals)-1])

		tmpl, err := b.Build(knownOpsForFuzz)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if tmpl.Name == "" && name != "" {
			t.Fatalf("template lost its name %q", name)
		}
		if len(tmpl.Body) == 0 {
			t.Fatal("accepted template has an empty body")
		}
	})
}

// FuzzParse feeds arbitrary text to the operator-template parser; it must
// reject garbage with an error, never a panic, and anything it accepts must
// round-trip through Get.
func FuzzParse(f *testing.F) {
	f.Add("template t u64 (a:stream, o:wstream) {\n x = load(a);\n store(o, x);\n}\n")
	f.Add("template x u32 (p:random[64]) {\n}\n")
	f.Add("# comment only\n")
	f.Add("template t u64 (a:stream) {\n x = mul(a, a);\n")
	f.Fuzz(func(t *testing.T, src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %q: %v", src, r)
			}
		}()
		file, err := Parse(src, knownOpsForFuzz)
		if err != nil {
			return
		}
		for _, name := range file.List {
			if _, err := file.Get(name); err != nil {
				t.Fatalf("listed template %q not in dict: %v", name, err)
			}
			if strings.TrimSpace(name) == "" {
				t.Fatalf("accepted unnamed template in %q", src)
			}
		}
	})
}
