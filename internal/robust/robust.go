// Package robust is the robustness layer of the reproduction: seeded fault
// injection over the machine model (uarch.Perturb), a sensitivity driver
// that re-runs the HEF pruning search across an ensemble of perturbed
// models and reports how stable the discovered optimum is, and the typed
// errors behind the framework's graceful-degradation paths.
//
// The motivating question is the one any simulator-backed auto-tuner must
// answer: the paper's optima (v, s, p) come out of a model with exact
// latencies and cache parameters — do those optima survive when the model
// is wrong by a few percent? Sensitivity quantifies that: optimum stability
// across perturbation draws, the cycle-cost regret of shipping the
// unperturbed pick onto a perturbed machine, and how much the candidate
// ranking churns.
package robust

import (
	"hef/internal/hef"
)

// ErrBudgetExhausted marks a search stopped by its node-evaluation budget;
// test with errors.Is. It aliases the sentinel in the search package so both
// spellings match the same errors.
var ErrBudgetExhausted = hef.ErrBudgetExhausted

// PanicError is an evaluator panic recovered by the search and surfaced as
// an error (alias of the search package's type, for errors.As).
type PanicError = hef.PanicError
