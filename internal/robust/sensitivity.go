package robust

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hef/internal/hef"
	"hef/internal/hid"
	"hef/internal/isa"
	"hef/internal/memo"
	"hef/internal/uarch"
)

// SensConfig configures one sensitivity analysis: an operator template, a
// CPU model, and the perturbation ensemble to re-run the pruning search
// under.
type SensConfig struct {
	// CPU is the unperturbed machine model.
	CPU *isa.CPU
	// Template is the operator under test.
	Template *hid.Template
	// Width is the SIMD width (0 selects the CPU's native width).
	Width isa.Width
	// Elems is the per-evaluation synthetic test size (0 selects the
	// search default).
	Elems int64
	// Bounds caps the search space ({} selects hef.DefaultBounds).
	Bounds hef.Bounds

	// Seed selects the perturbation ensemble; trial k draws from a hash of
	// (Seed, k), so the whole analysis is deterministic.
	Seed uint64
	// Trials is the ensemble size K (0 selects 20).
	Trials int
	// Jitter is the relative half-width applied to instruction latencies,
	// occupancies, cache hit latencies, and license frequencies
	// (0.05 = ±5%).
	Jitter float64
	// PortFaultRate injects transient port-unavailable cycles at this
	// probability per (port, cycle); zero disables port faults.
	PortFaultRate float64

	// Budget caps evaluations per search (0 = unlimited), so a sensitivity
	// sweep over many operators stays bounded even if a perturbed model
	// makes the search walk far.
	Budget int

	// Parallel selects the wave-based parallel search engine with that many
	// evaluator workers for the baseline and every trial search (0 keeps
	// the classic serial walk). The analysis is byte-identical for every
	// setting.
	Parallel int

	// Memo, when non-nil, is the measurement cache the analysis populates
	// and consults (a persistent store's cache under -memo-dir). Nil keeps
	// the classic private per-analysis cache. Entries are keyed by the
	// perturbed machine fingerprint, so sharing one cache across analyses
	// never mixes measurements from different models — it only lets
	// coinciding models (e.g. every Jitter=0 trial) reuse work.
	Memo *memo.Cache
}

// Trial is the outcome of the search on one perturbed model.
type Trial struct {
	// Seed is the derived per-trial perturbation seed.
	Seed uint64 `json:"seed"`
	// Best is the optimum found under this perturbation.
	Best string `json:"best"`
	// BestNSPerElem is its per-element cost on the perturbed model.
	BestNSPerElem float64 `json:"best_ns_per_elem"`
	// Tested counts evaluator invocations in this trial's search.
	Tested int `json:"tested"`
	// Moved is true when the optimum differs from the baseline pick.
	Moved bool `json:"moved"`
	// RegretPct is the relative cycle-cost penalty, in percent, of running
	// the baseline (unperturbed) pick on this perturbed machine instead of
	// the trial's own optimum: (cost(baseline) - cost(best)) / cost(best).
	RegretPct float64 `json:"regret_pct"`
	// RankChurn is the normalized Spearman footrule distance between the
	// baseline and trial rankings of the nodes both searches evaluated:
	// 0 = identical order, 1 = maximally shuffled.
	RankChurn float64 `json:"rank_churn"`
	// Partial is true when this trial's search was cut short by Budget.
	Partial bool `json:"partial,omitempty"`
}

// Sensitivity is the stability report for one (operator, CPU) pair.
type Sensitivity struct {
	Op  string `json:"op"`
	CPU string `json:"cpu"`
	// Baseline is the optimum on the unperturbed model and
	// BaselineNSPerElem its cost there.
	Baseline          string  `json:"baseline"`
	BaselineNSPerElem float64 `json:"baseline_ns_per_elem"`
	BaselineTested    int     `json:"baseline_tested"`

	Trials []Trial `json:"trials"`

	// Stability is the fraction of trials whose optimum equalled the
	// baseline pick.
	Stability float64 `json:"stability"`
	// MeanRegretPct and MaxRegretPct aggregate the per-trial regret of the
	// baseline pick.
	MeanRegretPct float64 `json:"mean_regret_pct"`
	MaxRegretPct  float64 `json:"max_regret_pct"`
	// MeanRankChurn aggregates per-trial rank churn.
	MeanRankChurn float64 `json:"mean_rank_churn"`
}

// trialSeed derives the perturbation seed for trial k from the ensemble
// seed, splitmix64-style so adjacent k give unrelated draws.
func trialSeed(seed uint64, k int) uint64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(k+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Analyze runs the full sensitivity analysis: one baseline search on the
// unperturbed model, then cfg.Trials searches on perturbed clones, scoring
// each against the baseline. ctx is threaded through the whole analysis:
// it cancels inside each trial's search (checked before every node
// evaluation), between trials, and before the per-trial regret
// measurement, so a deadline set at the CLI edge (hefsens -timeout) stops
// the analysis within one evaluation wherever it lands.
func Analyze(ctx context.Context, cfg SensConfig) (*Sensitivity, error) {
	if cfg.CPU == nil || cfg.Template == nil {
		return nil, fmt.Errorf("robust: SensConfig needs CPU and Template")
	}
	width := cfg.Width
	if width == 0 {
		width = cfg.CPU.NativeWidth()
	}
	bounds := cfg.Bounds
	if bounds == (hef.Bounds{}) {
		bounds = hef.DefaultBounds
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 20
	}

	initial, err := hef.InitialNode(cfg.CPU, cfg.Template, width)
	if err != nil {
		return nil, fmt.Errorf("robust: %w", err)
	}
	if !initial.Valid() || initial.V > bounds.VMax || initial.S > bounds.SMax || initial.P > bounds.PMax {
		return nil, fmt.Errorf("robust: initial node %v outside bounds %+v", initial, bounds)
	}

	// A budget-exhausted search still yields a usable (partial) result; any
	// other failure — cancellation, a broken model — aborts the analysis.
	opts := hef.SearchOpts{MaxEvaluations: cfg.Budget, Workers: cfg.Parallel}
	// One measurement memo for the whole analysis. Trials only share entries
	// when their perturbed machine actually coincides with another's (the
	// fingerprint normalizes a zero-rate perturbation to the nominal model,
	// so a Jitter=0 ensemble collapses onto the baseline's measurements);
	// within a trial it serves the regret re-measurement of already-searched
	// nodes. A caller-supplied cache (cfg.Memo) widens that sharing across
	// analyses — and across processes when it is backed by a store.
	cache := cfg.Memo
	if cache == nil {
		cache = memo.NewCache()
	}
	baseEval := hef.NewSimEvaluator(cfg.CPU, cfg.Template, width, cfg.Elems)
	baseEval.SetMemo(cache)
	baseRes, err := hef.SearchContext(ctx, baseEval, initial, bounds, opts)
	if err != nil && (baseRes == nil || !errors.Is(err, hef.ErrBudgetExhausted)) {
		return nil, fmt.Errorf("robust: baseline search: %w", err)
	}

	out := &Sensitivity{
		Op:                cfg.Template.Name,
		CPU:               cfg.CPU.Name,
		Baseline:          baseRes.Best.String(),
		BaselineNSPerElem: baseRes.BestSeconds * 1e9,
		BaselineTested:    baseRes.Tested,
	}
	baseCosts := traceCosts(baseRes)

	for k := 0; k < trials; k++ {
		// The search checks ctx per evaluation; this check covers the gap
		// between trials (and a pre-cancelled context before the first).
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("robust: cancelled before trial %d: %w", k, err)
		}
		p := &uarch.Perturb{
			Seed:          trialSeed(cfg.Seed, k),
			LatJitter:     cfg.Jitter,
			OccJitter:     cfg.Jitter,
			CacheJitter:   cfg.Jitter,
			FreqJitter:    cfg.Jitter,
			PortFaultRate: cfg.PortFaultRate,
		}
		// Cache and frequency jitter live in the machine model, so the
		// trial searches a perturbed clone; instruction jitter and port
		// faults hook into issue via SetPerturb.
		eval := hef.NewSimEvaluator(p.CPU(cfg.CPU), cfg.Template, width, cfg.Elems)
		eval.SetPerturb(p)
		eval.SetMemo(cache)
		res, err := hef.SearchContext(ctx, eval, initial, bounds, opts)
		if err != nil && (res == nil || !errors.Is(err, hef.ErrBudgetExhausted)) {
			return nil, fmt.Errorf("robust: trial %d: %w", k, err)
		}

		tr := Trial{
			Seed:          p.Seed,
			Best:          res.Best.String(),
			BestNSPerElem: res.BestSeconds * 1e9,
			Tested:        res.Tested,
			Moved:         res.Best != baseRes.Best,
			Partial:       res.Partial,
		}

		// Regret: cost of the baseline pick on this perturbed machine. The
		// search may not have visited it, so measure it directly — another
		// full simulation, so it too sits behind a cancellation point.
		costs := traceCosts(res)
		baseOnPerturbed, ok := costs[baseRes.Best]
		if !ok {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("robust: trial %d: cancelled before measuring baseline pick: %w", k, err)
			}
			baseOnPerturbed, err = eval.Evaluate(baseRes.Best)
			if err != nil {
				return nil, fmt.Errorf("robust: trial %d: measuring baseline pick: %w", k, err)
			}
		}
		if res.BestSeconds > 0 {
			tr.RegretPct = 100 * (baseOnPerturbed - res.BestSeconds) / res.BestSeconds
			if tr.RegretPct < 0 {
				tr.RegretPct = 0 // baseline pick can't beat this trial's own optimum by definition of regret
			}
		}
		tr.RankChurn = rankChurn(baseCosts, costs)

		out.Trials = append(out.Trials, tr)
	}

	// Aggregates.
	moved := 0
	var sumRegret, sumChurn float64
	for _, tr := range out.Trials {
		if tr.Moved {
			moved++
		}
		sumRegret += tr.RegretPct
		if tr.RegretPct > out.MaxRegretPct {
			out.MaxRegretPct = tr.RegretPct
		}
		sumChurn += tr.RankChurn
	}
	n := float64(len(out.Trials))
	if n > 0 {
		out.Stability = 1 - float64(moved)/n
		out.MeanRegretPct = sumRegret / n
		out.MeanRankChurn = sumChurn / n
	}
	return out, nil
}

// traceCosts extracts the per-node measured costs of a search.
func traceCosts(r *hef.Result) map[hef.Node]float64 {
	m := make(map[hef.Node]float64, len(r.Trace))
	for _, st := range r.Trace {
		m[st.Node] = st.Seconds
	}
	return m
}

// rankChurn is the normalized Spearman footrule distance between two cost
// rankings, computed over the nodes both searches evaluated. 0 means the
// common nodes rank identically; 1 is the maximum possible displacement.
func rankChurn(a, b map[hef.Node]float64) float64 {
	var common []hef.Node
	for n := range a {
		if _, ok := b[n]; ok {
			common = append(common, n)
		}
	}
	m := len(common)
	if m < 2 {
		return 0
	}
	rankIn := func(costs map[hef.Node]float64) map[hef.Node]int {
		ns := append([]hef.Node(nil), common...)
		sort.Slice(ns, func(i, j int) bool {
			if costs[ns[i]] != costs[ns[j]] {
				return costs[ns[i]] < costs[ns[j]]
			}
			// Tie-break on the node itself so ranking is deterministic.
			if ns[i].V != ns[j].V {
				return ns[i].V < ns[j].V
			}
			if ns[i].S != ns[j].S {
				return ns[i].S < ns[j].S
			}
			return ns[i].P < ns[j].P
		})
		r := make(map[hef.Node]int, len(ns))
		for i, n := range ns {
			r[n] = i
		}
		return r
	}
	ra, rb := rankIn(a), rankIn(b)
	sum := 0
	for _, n := range common {
		d := ra[n] - rb[n]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	// The footrule maximum is m²/2 for even m, (m²-1)/2 for odd.
	max := m * m / 2
	if m%2 == 1 {
		max = (m*m - 1) / 2
	}
	return float64(sum) / float64(max)
}
