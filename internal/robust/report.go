package robust

import (
	"bytes"
	"encoding/json"
)

const (
	// Schema identifies sensitivity-report documents, the robustness
	// companion to the obs run-report schema.
	Schema = "hef.robust.sensitivity-report"
	// SchemaVersion follows the obs policy: additive fields (new optional
	// keys) do not bump the version; renaming, removing, or re-typing a
	// field does.
	SchemaVersion = 1
)

// Report is the versioned JSON document hefsens emits: one Sensitivity per
// (operator, CPU) pair, plus the ensemble configuration. It contains no
// timestamps or other run-varying state, so identical inputs marshal to
// identical bytes — the determinism contract the sensitivity tooling is
// tested against.
type Report struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Seed, Trials, Jitter, and PortFaultRate record the ensemble the
	// analyses share.
	Seed          uint64  `json:"seed"`
	Trials        int     `json:"trials"`
	Jitter        float64 `json:"jitter"`
	PortFaultRate float64 `json:"port_fault_rate,omitempty"`

	Analyses []*Sensitivity `json:"analyses"`
}

// NewReport starts a report for one perturbation ensemble.
func NewReport(seed uint64, trials int, jitter, portFaultRate float64) *Report {
	return &Report{
		Schema: Schema, Version: SchemaVersion,
		Seed: seed, Trials: trials, Jitter: jitter, PortFaultRate: portFaultRate,
	}
}

// Add appends one analysis. Callers add analyses in a fixed order (the
// order is part of the byte-for-byte determinism contract).
func (r *Report) Add(s *Sensitivity) { r.Analyses = append(r.Analyses, s) }

// JSON marshals the report indented, without HTML escaping, trailing in a
// newline — the exact bytes hefsens writes.
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
