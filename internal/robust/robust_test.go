package robust

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"hef/internal/hashes"
	"hef/internal/hef"
	"hef/internal/isa"
)

func silverMurmurConfig() SensConfig {
	return SensConfig{
		CPU:      isa.XeonSilver4110(),
		Template: hashes.MurmurTemplate(),
		Elems:    1 << 9,
		Seed:     1,
		Trials:   3,
		Jitter:   0.05,
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	a, err := Analyze(context.Background(), silverMurmurConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(context.Background(), silverMurmurConfig())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Errorf("two identical analyses differ:\n%s\n%s", ja, jb)
	}
}

func TestAnalyzeShape(t *testing.T) {
	s, err := Analyze(context.Background(), silverMurmurConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Op != "murmur" || s.CPU == "" {
		t.Errorf("identity fields: op=%q cpu=%q", s.Op, s.CPU)
	}
	if len(s.Trials) != 3 {
		t.Fatalf("got %d trials, want 3", len(s.Trials))
	}
	if s.Baseline == "" || s.BaselineNSPerElem <= 0 || s.BaselineTested <= 0 {
		t.Errorf("baseline not recorded: %+v", s)
	}
	seeds := map[uint64]bool{}
	for i, tr := range s.Trials {
		if tr.Best == "" || tr.BestNSPerElem <= 0 || tr.Tested <= 0 {
			t.Errorf("trial %d incomplete: %+v", i, tr)
		}
		if tr.RegretPct < 0 || tr.RankChurn < 0 || tr.RankChurn > 1 {
			t.Errorf("trial %d metrics out of range: %+v", i, tr)
		}
		if tr.Moved != (tr.Best != s.Baseline) {
			t.Errorf("trial %d Moved inconsistent with Best", i)
		}
		seeds[tr.Seed] = true
	}
	if len(seeds) != 3 {
		t.Error("per-trial seeds should be distinct")
	}
	if s.Stability < 0 || s.Stability > 1 {
		t.Errorf("stability %v out of [0,1]", s.Stability)
	}
}

func TestAnalyzeSeedMatters(t *testing.T) {
	cfg := silverMurmurConfig()
	cfg.Jitter = 0.3 // large enough that the ensembles must differ
	a, err := Analyze(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Analyze(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Trials {
		if a.Trials[i].BestNSPerElem != b.Trials[i].BestNSPerElem {
			same = false
		}
	}
	if same {
		t.Error("different ensemble seeds produced identical trial costs at 30% jitter")
	}
}

func TestAnalyzeCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Analyze(ctx, silverMurmurConfig()); err == nil {
		t.Fatal("cancelled analysis should fail")
	}
}

// countdownCtx reports cancellation from its Nth Err() check onward, which
// pins the cancellation deterministically to one of Analyze's explicit
// per-trial checks (the search's own gate polls Done(), not Err()).
type countdownCtx struct {
	context.Context
	calls atomic.Int32
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestAnalyzeCancelsBetweenTrials(t *testing.T) {
	ctx := &countdownCtx{Context: context.Background()}
	ctx.calls.Store(1) // trial 0's check passes, trial 1's trips
	_, err := Analyze(ctx, silverMurmurConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Analyze returned %v, want a context.Canceled wrap", err)
	}
	if !strings.Contains(err.Error(), "before trial 1") {
		t.Errorf("cancellation did not land between trials: %v", err)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(context.Background(), SensConfig{}); err == nil {
		t.Error("empty config should be rejected")
	}
}

func TestReportJSONDeterministic(t *testing.T) {
	build := func() []byte {
		s, err := Analyze(context.Background(), silverMurmurConfig())
		if err != nil {
			t.Fatal(err)
		}
		r := NewReport(1, 3, 0.05, 0)
		r.Add(s)
		data, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Error("report JSON is not byte-deterministic")
	}

	var decoded Report
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if decoded.Schema != Schema || decoded.Version != SchemaVersion {
		t.Errorf("schema header %q v%d, want %q v%d", decoded.Schema, decoded.Version, Schema, SchemaVersion)
	}
	if len(decoded.Analyses) != 1 {
		t.Errorf("got %d analyses after round-trip", len(decoded.Analyses))
	}
}

func TestRankChurnProperties(t *testing.T) {
	type nodeCost = map[hef.Node]float64
	n := func(v, s, p int) hef.Node { return hef.Node{V: v, S: s, P: p} }
	a := nodeCost{n(1, 1, 1): 1, n(1, 2, 1): 2, n(2, 1, 1): 3, n(1, 1, 2): 4}
	if got := rankChurn(a, a); got != 0 {
		t.Errorf("identical rankings churn %v, want 0", got)
	}
	// Full reversal hits the footrule maximum.
	b := nodeCost{n(1, 1, 1): 4, n(1, 2, 1): 3, n(2, 1, 1): 2, n(1, 1, 2): 1}
	if got := rankChurn(a, b); got != 1 {
		t.Errorf("reversed rankings churn %v, want 1", got)
	}
	// Fewer than two common nodes: no churn measurable.
	if got := rankChurn(a, nodeCost{n(9, 9, 9): 1}); got != 0 {
		t.Errorf("disjoint rankings churn %v, want 0", got)
	}
}
