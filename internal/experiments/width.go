package experiments

import (
	"fmt"
	"strings"

	"hef/internal/hef"
	"hef/internal/isa"
	"hef/internal/translator"
)

// WidthRow is one (kernel, width) measurement of the ISA-portability study:
// the paper claims HEF "could be applied to other ISAs with vector support";
// the nearest in-model experiment is running the whole framework at AVX2
// (256-bit, 4 lanes) next to AVX-512 and checking the hybrid win persists.
type WidthRow struct {
	Bench    string
	Width    isa.Width
	Node     translator.Node
	Initial  translator.Node
	ScalarNS float64
	SIMDNS   float64
	HybridNS float64
}

// SpeedupScalar and SpeedupSIMD are the hybrid's gains at this width.
func (w WidthRow) SpeedupScalar() float64 { return safeDiv(w.ScalarNS, w.HybridNS) }
func (w WidthRow) SpeedupSIMD() float64   { return safeDiv(w.SIMDNS, w.HybridNS) }

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// RunWidthStudy optimizes the named kernel at both SIMD widths on one CPU.
func RunWidthStudy(cpuName, benchName string) ([]WidthRow, error) {
	cpu, err := isa.ByName(cpuName)
	if err != nil {
		return nil, err
	}
	tmpl, err := hashTemplate(benchName)
	if err != nil {
		return nil, err
	}
	var rows []WidthRow
	for _, width := range []isa.Width{isa.W512, isa.W256} {
		eval := hef.NewSimEvaluator(cpu, tmpl, width, 1<<13)
		initial, err := hef.InitialNode(cpu, tmpl, width)
		if err != nil {
			return nil, err
		}
		sr, err := hef.Search(eval, initial, hef.DefaultBounds)
		if err != nil {
			return nil, err
		}
		perElem := func(n translator.Node) (float64, error) {
			res, err := eval.Run(n)
			if err != nil {
				return 0, err
			}
			return res.Seconds() / float64(res.Elems) * 1e9, nil
		}
		scalarNS, err := perElem(translator.Node{V: 0, S: 1, P: 1})
		if err != nil {
			return nil, err
		}
		simdNS, err := perElem(translator.Node{V: 1, S: 0, P: 1})
		if err != nil {
			return nil, err
		}
		rows = append(rows, WidthRow{
			Bench: benchName, Width: width,
			Node: sr.Best, Initial: initial,
			ScalarNS: scalarNS, SIMDNS: simdNS,
			HybridNS: sr.BestSeconds * 1e9,
		})
	}
	return rows, nil
}

// FormatWidthStudy renders the study as a table.
func FormatWidthStudy(cpuName string, rows []WidthRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ISA width study on %s (ns/elem)\n", cpuName)
	fmt.Fprintf(&b, "%-8s %-8s %-16s %10s %10s %10s %12s %10s\n",
		"bench", "width", "optimum", "scalar", "SIMD", "hybrid", "hyb/scalar", "hyb/simd")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s AVX%-5d %-16s %10.3f %10.3f %10.3f %11.2fx %9.2fx\n",
			r.Bench, widthLabel(r.Width), r.Node.String(),
			r.ScalarNS, r.SIMDNS, r.HybridNS, r.SpeedupScalar(), r.SpeedupSIMD())
	}
	return b.String()
}

func widthLabel(w isa.Width) int {
	if w == isa.W256 {
		return 2
	}
	return 512
}
