package experiments

import (
	"fmt"
	"strings"

	"hef/internal/hashes"
	"hef/internal/hef"
	"hef/internal/hid"
	"hef/internal/isa"
	"hef/internal/translator"
	"hef/internal/uarch"
)

// HashElems is the paper's synthetic benchmark size: the hash of 10^9
// 64-bit integer elements (Section V-C).
const HashElems = 1_000_000_000

// HashRun is one implementation's measurement in a hash benchmark.
type HashRun struct {
	Label string
	Node  translator.Node
	Res   *uarch.Result
}

// TimeMS returns the extrapolated execution time in milliseconds.
func (h *HashRun) TimeMS() float64 { return h.Res.Seconds() * 1e3 }

// HistGE returns the fraction of cycles in which at least n µops executed —
// the "GE n" series of Figs. 11-14.
func (h *HashRun) HistGE(n int) float64 {
	if h.Res.Cycles == 0 {
		return 0
	}
	var ge uint64
	for i := n; i < uarch.HistBuckets; i++ {
		ge += h.Res.Hist[i]
	}
	return float64(ge) / float64(h.Res.Cycles)
}

// HashBench is the result of one synthetic benchmark (Tables VI-IX plus the
// µops-per-cycle distributions of Figs. 11-14).
type HashBench struct {
	Name   string
	CPU    *isa.CPU
	Scalar *HashRun
	SIMD   *HashRun
	Hybrid *HashRun
	// Search is the HEF search that produced the hybrid node.
	Search *hef.Result
}

// hashTemplate returns the named benchmark kernel.
func hashTemplate(name string) (*hid.Template, error) {
	switch name {
	case "murmur":
		return hashes.MurmurTemplate(), nil
	case "crc64":
		return hashes.CRC64Template(), nil
	}
	return nil, fmt.Errorf("experiments: unknown hash benchmark %q (want murmur or crc64)", name)
}

// RunHashBench measures the scalar and SIMD baselines and the HEF-found
// hybrid optimum for one kernel on one CPU, extrapolated to HashElems.
func RunHashBench(cpuName, benchName string, elems uint64) (*HashBench, error) {
	cpu, err := isa.ByName(cpuName)
	if err != nil {
		return nil, err
	}
	tmpl, err := hashTemplate(benchName)
	if err != nil {
		return nil, err
	}
	if elems == 0 {
		elems = HashElems
	}
	eval := hef.NewSimEvaluator(cpu, tmpl, 0, 1<<14)

	measure := func(label string, node translator.Node) (*HashRun, error) {
		res, err := eval.Run(node)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s %s: %w", benchName, label, err)
		}
		res.Scale(float64(elems) / float64(res.Elems))
		return &HashRun{Label: label, Node: node, Res: res}, nil
	}

	bench := &HashBench{Name: benchName, CPU: cpu}
	if bench.Scalar, err = measure("Scalar", translator.Node{V: 0, S: 1, P: 1}); err != nil {
		return nil, err
	}
	if bench.SIMD, err = measure("SIMD", translator.Node{V: 1, S: 0, P: 1}); err != nil {
		return nil, err
	}

	initial, err := hef.InitialNode(cpu, tmpl, 0)
	if err != nil {
		return nil, err
	}
	bench.Search, err = hef.Search(eval, initial, hef.DefaultBounds)
	if err != nil {
		return nil, err
	}
	if bench.Hybrid, err = measure("Hybrid", bench.Search.Best); err != nil {
		return nil, err
	}
	return bench, nil
}

// Table renders the Table VI-IX layout: execution time and IPC per
// implementation.
func (b *HashBench) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s on %s (hybrid node %v, HEF tested %d of %d nodes)\n",
		b.Name, b.CPU.Name, b.Hybrid.Node, b.Search.Tested, b.Search.SpaceSize)
	fmt.Fprintf(&sb, "%-12s %12s %12s %12s\n", "Attributes", "Scalar", "SIMD", "Hybrid")
	fmt.Fprintf(&sb, "%-12s %12.2f %12.2f %12.2f\n", "Time (ms)",
		b.Scalar.TimeMS(), b.SIMD.TimeMS(), b.Hybrid.TimeMS())
	fmt.Fprintf(&sb, "%-12s %12.2f %12.2f %12.2f\n", "IPC",
		b.Scalar.Res.IPC(), b.SIMD.Res.IPC(), b.Hybrid.Res.IPC())
	return sb.String()
}

// Histogram renders the Figs. 11-14 series: for each implementation, the
// fraction of cycles with >= 1..4 µops executed.
func (b *HashBench) Histogram() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "µops executed per cycle, %s on %s (fraction of cycles)\n", b.Name, b.CPU.Name)
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s\n", "", "Scalar", "SIMD", "Hybrid")
	for n := 1; n <= 4; n++ {
		fmt.Fprintf(&sb, "GE%-6d %9.1f%% %9.1f%% %9.1f%%\n", n,
			b.Scalar.HistGE(n)*100, b.SIMD.HistGE(n)*100, b.Hybrid.HistGE(n)*100)
	}
	return sb.String()
}
