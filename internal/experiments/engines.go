// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment combines a functional run (the query
// executor at a sampled scale factor, which yields correct answers and
// per-stage cardinalities) with the timing model (stage operator templates,
// translated per engine and run on the microarchitecture simulator with
// hash-table regions sized for the nominal scale factor), extrapolated
// linearly to nominal row counts. DESIGN.md's per-experiment index maps each
// paper artifact to its driver here.
package experiments

import (
	"fmt"

	"hef/internal/engine"
	"hef/internal/hid"
	"hef/internal/isa"
	"hef/internal/memo"
	"hef/internal/queries"
	"hef/internal/ssb"
	"hef/internal/translator"
	"hef/internal/uarch"
	"hef/internal/voila"
)

// EngineKind identifies the four execution engines of Figs. 8-10.
type EngineKind int

const (
	// KindScalar is the purely scalar implementation.
	KindScalar EngineKind = iota
	// KindSIMD is the purely AVX-512 implementation.
	KindSIMD
	// KindVoila is the Voila comparator model (vector(1024) FSM interpreter
	// with prefetch and materialised intermediates).
	KindVoila
	// KindHybrid is the HEF hybrid execution at the paper's SSB optimum,
	// one SIMD + one scalar statement with pack 3 (Section V-B).
	KindHybrid
)

// AllEngines lists the engines in the order the paper's figures plot them.
var AllEngines = []EngineKind{KindScalar, KindSIMD, KindVoila, KindHybrid}

func (k EngineKind) String() string {
	switch k {
	case KindScalar:
		return "Scalar"
	case KindSIMD:
		return "SIMD"
	case KindVoila:
		return "Voila"
	case KindHybrid:
		return "Hybrid"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// SSBHybridNode is the optimal SSB operator node the paper reports for
// AVX-512 ("one SIMD statement and one scalar statement, and the value of
// pack is three").
var SSBHybridNode = translator.Node{V: 1, S: 1, P: 3}

// nodeFor maps an engine to its candidate node.
func nodeFor(kind EngineKind) translator.Node {
	switch kind {
	case KindScalar:
		return translator.Node{V: 0, S: 1, P: 1}
	case KindHybrid:
		return SSBHybridNode
	default: // SIMD and Voila are purely vectorized
		return translator.Node{V: 1, S: 0, P: 1}
	}
}

// SampleElems caps the elements simulated per stage; counters are then
// scaled to the stage's nominal element count.
const SampleElems = 1 << 15

// fsmElemsPerBatch converts Voila's per-batch FSM dispatch cost into
// elements of the FSM template (~5 instructions each).
const fsmElemsPerBatch = voila.FSMInstrsPerBatch / 5

// Stage is one timed pipeline stage.
type Stage struct {
	Name     string
	Template *hid.Template
	// Elems is the nominal number of elements flowing through the stage.
	Elems uint64
	// Node overrides the engine's candidate node for this stage (used for
	// Voila's tuple-at-a-time FSM work, which is scalar).
	Node *translator.Node
}

// StageResult pairs a stage with its scaled simulation counters.
type StageResult struct {
	Stage   Stage
	Res     *uarch.Result
	Seconds float64
}

// QueryRun is the timing of one query on one engine and CPU.
type QueryRun struct {
	QueryID string
	Kind    EngineKind
	CPU     *isa.CPU
	// Total sums the scaled per-stage counters.
	Total uarch.Result
	// Seconds is the extrapolated wall time; FreqGHz the cycle-weighted
	// effective clock.
	Seconds float64
	FreqGHz float64
	Stages  []StageResult
}

// IPC is retired instructions per cycle over the whole query.
func (r *QueryRun) IPC() float64 { return r.Total.IPC() }

// htBytesFor mirrors engine.NewLinearTable's sizing for n entries.
func htBytesFor(n int) uint64 {
	capacity := 4 * n
	if capacity < 16 {
		capacity = 16
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return uint64(size) * 16
}

// nominalDim returns the nominal row count of a dimension at sf.
func nominalDim(name string, sf float64) (int, error) {
	sz := ssb.SizesFor(sf)
	switch name {
	case "date":
		return sz.Date, nil
	case "customer":
		return sz.Customer, nil
	case "supplier":
		return sz.Supplier, nil
	case "part":
		return sz.Part, nil
	}
	return 0, fmt.Errorf("experiments: unknown dimension %q", name)
}

// buildStages assembles the timed pipeline for one query and engine,
// scaling the sampled cardinalities to the nominal scale factor.
func buildStages(q queries.Query, st queries.Stats, nominalSF float64, kind EngineKind) ([]Stage, error) {
	nominalFact := ssb.SizesFor(nominalSF).Lineorder
	factScale := float64(nominalFact) / float64(st.FactRows)
	var stages []Stage

	scaleDim := func(i int) (rows, passed int, err error) {
		nom, err := nominalDim(q.Joins[i].Dim, nominalSF)
		if err != nil {
			return 0, 0, err
		}
		f := float64(nom) / float64(st.DimRows[i])
		return nom, int(float64(st.DimPassed[i])*f) + 1, nil
	}

	filterTmpl := func(n int) *hid.Template {
		if kind == KindVoila {
			return voila.FilterTemplate(n)
		}
		return engine.FilterTemplate(n)
	}

	// Dimension scans and hash-table builds.
	htBytes := make([]uint64, len(q.Joins))
	for i, j := range q.Joins {
		dimRows, dimPassed, err := scaleDim(i)
		if err != nil {
			return nil, err
		}
		// Hash tables are sized for the full dimension cardinality (the
		// paper's "large linear hash table"), not the filtered entry count.
		htBytes[i] = htBytesFor(dimRows)
		nPreds := len(j.Preds)
		if nPreds == 0 {
			nPreds = 1 // an unpredicated build still scans key and payload
		}
		stages = append(stages,
			Stage{Name: "scan:" + j.Dim, Template: filterTmpl(nPreds), Elems: uint64(dimRows)},
			Stage{Name: "build:" + j.Dim, Template: engine.BuildTemplate(htBytes[i]), Elems: uint64(dimPassed)},
		)
	}

	// Fact-local predicates (Q1.x only).
	if len(q.FactPreds) > 0 {
		stages = append(stages, Stage{
			Name:     "scan:lineorder",
			Template: filterTmpl(len(q.FactPreds)),
			Elems:    uint64(float64(st.FactRows) * factScale),
		})
	}

	// Probe pipeline. Voila's vectorized probes are prefetched and lean,
	// but every row that survives a probe is handed to the state machine
	// for tuple-at-a-time match handling across the remaining stages — the
	// source of its instruction blow-up when many rows survive ("enormous
	// instructions when the selectivity is low") and of its rapid collapse
	// on highly selective queries.
	scalarNode := translator.Node{V: 0, S: 1, P: 1}
	for i, j := range q.Joins {
		elems := uint64(float64(st.ProbeIn[i]) * factScale)
		var tmpl *hid.Template
		if kind == KindVoila {
			tmpl = voila.ProbeTemplate(htBytes[i])
			batches := elems/voila.BatchSize + 1
			stages = append(stages, Stage{
				Name:     "fsm:" + j.Dim,
				Template: voila.FSMTemplate(),
				Elems:    batches * fsmElemsPerBatch,
				Node:     &scalarNode,
			})
			if i > 0 {
				// Tuple-at-a-time handling of the rows that survived the
				// previous probes, over intermediate buffers whose footprint
				// grows with the survivor count.
				stages = append(stages, Stage{
					Name:     "tuples:" + j.Dim,
					Template: voila.TupleTemplate(elems * voila.BytesPerSurvivor),
					Elems:    elems * voila.TupleFSMElems,
					Node:     &scalarNode,
				})
			}
		} else {
			tmpl = engine.ProbeTemplate(htBytes[i])
		}
		stages = append(stages, Stage{Name: "probe:" + j.Dim, Template: tmpl, Elems: elems})
	}

	// Aggregation over the survivors.
	survivors := st.ProbeOut[len(st.ProbeOut)-1]
	out := uint64(float64(survivors) * factScale)
	if q.GroupBy() {
		groupBytes := htBytesFor(st.GroupCount) / 2
		if kind == KindVoila {
			stages = append(stages, Stage{Name: "agg", Template: voila.AggTemplate(groupBytes), Elems: out})
		} else {
			stages = append(stages, Stage{Name: "agg", Template: engine.GroupAggTemplate(groupBytes), Elems: out})
		}
	} else {
		stages = append(stages, Stage{Name: "agg", Template: engine.SumAggTemplate(), Elems: out})
	}
	return stages, nil
}

// stagePlan is one stage's translated, fingerprinted measurement: the
// inputs measurePlan needs plus the content key the memo cache stores the
// result under.
type stagePlan struct {
	prog  *uarch.Program
	iters int64
	warm  []memo.WarmRange
	key   memo.Key
}

// planStage translates a stage at the engine's node and computes the
// simulation parameters and content fingerprint of its measurement.
func planStage(cpu *isa.CPU, stage Stage, kind EngineKind) (*stagePlan, error) {
	node := nodeFor(kind)
	if stage.Node != nil {
		node = *stage.Node
	}
	out, err := translator.Translate(stage.Template, node, translator.Options{CPU: cpu})
	if err != nil {
		return nil, fmt.Errorf("experiments: stage %s: %w", stage.Name, err)
	}
	simElems := stage.Elems
	if simElems > SampleElems {
		simElems = SampleElems
	}
	iters := int64(simElems) / int64(out.ElemsPerIter)
	if iters < 1 {
		iters = 1
	}
	pl := &stagePlan{prog: out.Program, iters: iters}
	for _, p := range stage.Template.Params {
		if p.Pattern == hid.RandomRegion && p.Region <= uint64(cpu.LLC.SizeBytes) {
			pl.warm = append(pl.warm, memo.WarmRange{Base: translator.ParamBase(stage.Template, p.Name), Region: p.Region})
		}
	}
	pl.key = memo.Fingerprint(memo.ProtoStage, cpu, nil, out.Program, iters, pl.warm)
	return pl, nil
}

// measurePlan simulates one planned stage measurement: a fresh hierarchy
// with the LLC-fitting random regions warmed, then a single run — a pure
// function of the plan, which is what makes the memo cache exact.
func measurePlan(cpu *isa.CPU, name string, pl *stagePlan) (*uarch.Result, error) {
	sim := uarch.NewSim(cpu)
	if err := sim.Err(); err != nil {
		return nil, fmt.Errorf("experiments: stage %s: %w", name, err)
	}
	for _, w := range pl.warm {
		sim.Hierarchy().Warm(w.Base, w.Region)
	}
	res, err := sim.Run(pl.prog, pl.iters)
	if err != nil {
		return nil, fmt.Errorf("experiments: stage %s: %w", name, err)
	}
	return res, nil
}

// runStage translates and simulates one stage, scaling the counters to the
// stage's nominal element count. Random regions that fit in the LLC are
// warmed first so node comparisons reflect steady state. A non-nil cache
// serves repeat measurements (stages shared across queries and engines)
// from their fingerprint; a nil cache always simulates.
func runStage(cpu *isa.CPU, stage Stage, kind EngineKind, cache *memo.Cache) (*uarch.Result, error) {
	if stage.Elems == 0 {
		return &uarch.Result{Name: stage.Name, FreqGHz: cpu.Freq.ScalarGHz}, nil
	}
	pl, err := planStage(cpu, stage, kind)
	if err != nil {
		return nil, err
	}
	res, ok := cache.Get(pl.key)
	if !ok {
		if res, err = measurePlan(cpu, stage.Name, pl); err != nil {
			return nil, err
		}
		cache.Put(pl.key, res)
	}
	res.Name = stage.Name
	res.Scale(float64(stage.Elems) / float64(res.Elems))
	return res, nil
}

// TimeQuery produces the timing of one query for one engine on one CPU,
// from the sampled functional stats, extrapolated to nominalSF.
func TimeQuery(cpu *isa.CPU, q queries.Query, st queries.Stats, nominalSF float64, kind EngineKind) (*QueryRun, error) {
	return timeQuery(cpu, q, st, nominalSF, kind, nil)
}

// timeQuery is TimeQuery with an optional stage-measurement cache.
func timeQuery(cpu *isa.CPU, q queries.Query, st queries.Stats, nominalSF float64, kind EngineKind, cache *memo.Cache) (*QueryRun, error) {
	stages, err := buildStages(q, st, nominalSF, kind)
	if err != nil {
		return nil, err
	}
	run := &QueryRun{QueryID: q.ID, Kind: kind, CPU: cpu}
	for _, stage := range stages {
		res, err := runStage(cpu, stage, kind, cache)
		if err != nil {
			return nil, err
		}
		sec := res.Seconds()
		run.Total.Add(res)
		run.Seconds += sec
		run.Stages = append(run.Stages, StageResult{Stage: stage, Res: res, Seconds: sec})
	}
	if run.Seconds > 0 {
		run.FreqGHz = float64(run.Total.Cycles) / run.Seconds / 1e9
	}
	return run, nil
}
