package experiments

import (
	"strings"
	"testing"
)

// The pruning optimizer's premise (Section IV-C): past the optimum, adding
// pack depth increases runtime because register pressure forces spills.
func TestPackSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	pts, err := PackSweep("silver", "murmur", 1, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("want 10 points, got %d", len(pts))
	}
	// p=1 must not be the optimum (packing helps), and spills must appear
	// at some depth and grow monotonically after that.
	best := 0
	for i, p := range pts {
		if p.NSPerElem < pts[best].NSPerElem {
			best = i
		}
	}
	if best == 0 {
		t.Errorf("pack=1 should not be optimal (packing eliminates dependences); sweep: %+v", pts)
	}
	firstSpill := -1
	for i, p := range pts {
		if p.SpillStores > 0 {
			firstSpill = i
			break
		}
	}
	if firstSpill < 0 {
		t.Fatal("no spills up to pack 10; the register budget never binds")
	}
	for i := firstSpill + 1; i < len(pts); i++ {
		if pts[i].SpillStores < pts[i-1].SpillStores {
			t.Errorf("spills should grow with pack depth: p=%d has %d < p=%d's %d",
				pts[i].Node.P, pts[i].SpillStores, pts[i-1].Node.P, pts[i-1].SpillStores)
		}
	}
	// Deep packs with heavy spills must be slower than the optimum.
	if last := pts[len(pts)-1]; last.NSPerElem <= pts[best].NSPerElem {
		t.Errorf("deepest pack (%.3f ns) should be slower than the optimum (%.3f ns)",
			last.NSPerElem, pts[best].NSPerElem)
	}
	out := FormatPackSweep("murmur", pts)
	if !strings.Contains(out, "spills=") {
		t.Error("formatted sweep missing spill counts")
	}
}

// More line-fill buffers means more memory-level parallelism: the
// memory-resident probe must get monotonically faster (within tolerance).
func TestLFBSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	// 4 and 8 plateau (an 8-lane gather's fills drain as a unit); 12 and 24
	// add real gather-level overlap.
	pts, err := LFBSweep("silver", []int{4, 12, 24}, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	if !(pts[0].NSPerElem > pts[1].NSPerElem && pts[1].NSPerElem > pts[2].NSPerElem) {
		t.Errorf("probe time should fall with LFB count: %+v", pts)
	}
	// Tripling 4 -> 12 should give a substantial gain in the DRAM-bound regime.
	if r := pts[0].NSPerElem / pts[1].NSPerElem; r < 1.3 {
		t.Errorf("4->12 LFBs speedup = %.2f, want >= 1.3 (MLP-bound)", r)
	}
	if !strings.Contains(FormatLFBSweep(pts), "buffers") {
		t.Error("formatted LFB sweep malformed")
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := PackSweep("epyc", "murmur", 1, 1, 4); err == nil {
		t.Error("unknown CPU should error")
	}
	if _, err := PackSweep("silver", "sha", 1, 1, 4); err == nil {
		t.Error("unknown bench should error")
	}
	if _, err := PackSweep("silver", "murmur", 0, 0, 4); err == nil {
		t.Error("invalid (v,s) should error")
	}
	if _, err := LFBSweep("epyc", nil, 0); err == nil {
		t.Error("unknown CPU should error")
	}
}
