package experiments

import (
	"strings"
	"testing"
)

func TestFigureCSVAndMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fig := smallFigure(t, "silver", 10, "Q2.3")
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+4 { // header + 4 engines
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "sf,cpu,query,engine,time_ms") {
		t.Errorf("CSV header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 8 {
			t.Errorf("CSV row has %d commas, want 8: %q", got, l)
		}
	}

	md := fig.Markdown()
	for _, want := range []string{"| query |", "| Q2.3 |", "hyb/scalar"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestHashBenchCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("searches are slow")
	}
	b, err := RunHashBench("silver", "murmur", HashElems)
	if err != nil {
		t.Fatal(err)
	}
	csv := b.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 { // header + scalar + simd + hybrid
		t.Fatalf("hash CSV has %d lines:\n%s", len(lines), csv)
	}
	if !strings.Contains(lines[3], "Hybrid") {
		t.Errorf("last row should be the hybrid: %q", lines[3])
	}
}
