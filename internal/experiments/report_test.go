package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"hef/internal/obs"
)

func TestFigureCSVAndMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fig := smallFigure(t, "silver", 10, "Q2.3")
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+4 { // header + 4 engines
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "sf,cpu,query,engine,time_ms") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[0], ",cycles_per_elem") {
		t.Errorf("CSV header missing cycles_per_elem: %q", lines[0])
	}
	wantCommas := strings.Count(lines[0], ",")
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != wantCommas {
			t.Errorf("CSV row has %d commas, want %d: %q", got, wantCommas, l)
		}
	}

	md := fig.Markdown()
	for _, want := range []string{"| query |", "| Q2.3 |", "hyb/scalar"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}

	// The run report must round-trip through encoding/json with one run
	// per CSV data row and its stall buckets summing to the cycle count.
	rep := fig.Report()
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var got obs.RunReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != len(lines)-1 {
		t.Fatalf("report has %d runs, want %d", len(got.Runs), len(lines)-1)
	}
	for _, r := range got.Runs {
		if r.Stalls.Total() != r.Cycles {
			t.Errorf("run %s/%s: stall buckets sum to %d, want %d",
				r.Name, r.Engine, r.Stalls.Total(), r.Cycles)
		}
	}
}

func TestHashBenchCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("searches are slow")
	}
	b, err := RunHashBench("silver", "murmur", HashElems)
	if err != nil {
		t.Fatal(err)
	}
	csv := b.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 { // header + scalar + simd + hybrid
		t.Fatalf("hash CSV has %d lines:\n%s", len(lines), csv)
	}
	if !strings.Contains(lines[0], "cycles_per_elem") {
		t.Errorf("hash CSV header missing cycles_per_elem: %q", lines[0])
	}
	if !strings.Contains(lines[3], "Hybrid") {
		t.Errorf("last row should be the hybrid: %q", lines[3])
	}

	// The run report must round-trip and carry the pruning search.
	rep := b.Report()
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var got obs.RunReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 3 {
		t.Fatalf("report has %d runs, want 3", len(got.Runs))
	}
	if got.Search == nil || got.Search.Best != b.Hybrid.Node.String() {
		t.Errorf("report search = %+v, want best %s", got.Search, b.Hybrid.Node)
	}

	merged := MergeReports("uopshist", rep, rep)
	if len(merged.Runs) != 6 || merged.CPU != rep.CPU {
		t.Errorf("merged report has %d runs on %q, want 6 on %q",
			len(merged.Runs), merged.CPU, rep.CPU)
	}
}
